package taurus

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// checkpointConfig is durableConfig plus small log segments, so
// watermark-driven GC has sealed segments to reclaim.
func checkpointConfig(dir string) Config {
	cfg := durableConfig(dir)
	cfg.LogSegmentBytes = 2048
	return cfg
}

func sumApplied(db *DB) (applied, skipped uint64) {
	for _, st := range db.PageStoreStats() {
		applied += st.LogRecordsApplied
		skipped += st.LogRecordsSkipped
	}
	return applied, skipped
}

// TestCheckpointFastPath is the core recovery fast path: kill-and-reopen
// with a checkpoint present must not re-apply records at or below the
// checkpoint LSN — recovery replays only the log tail, which the Page
// Store apply/skip counters prove.
func TestCheckpointFastPath(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 300)
	res, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Watermark == 0 || res.SlicesWritten == 0 || res.PagesWritten == 0 {
		t.Fatalf("checkpoint result = %+v", res)
	}
	// A second checkpoint with no new writes is a no-op (all clean).
	res2, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res2.SlicesWritten != 0 || res2.SlicesClean == 0 {
		t.Fatalf("idle checkpoint rewrote slices: %+v", res2)
	}
	insertWorkers(t, db, 300, 50)
	// Crash: no Close, no flush.
	db = nil

	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	sum := db2.RecoverySummary()
	if sum.CheckpointLSN != res.Watermark {
		t.Fatalf("recovered from LSN %d, checkpoint wrote %d", sum.CheckpointLSN, res.Watermark)
	}
	if sum.RestoredSlices == 0 || sum.RestoredPages == 0 || sum.CorruptCheckpoints != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.TailRecords == 0 || sum.TailRecords > 200 {
		t.Fatalf("tail = %d records, want the post-checkpoint suffix only", sum.TailRecords)
	}
	// The fast path must not re-deliver the checkpointed prefix: every
	// record a Page Store saw (applied or skipped as idempotent
	// redelivery) came from the tail, in triplicate.
	applied, skipped := sumApplied(db2)
	if applied == 0 {
		t.Fatal("no tail records applied")
	}
	if applied+skipped > uint64(sum.TailRecords)*3 {
		t.Fatalf("page stores processed %d+%d records for a %d-record tail — prefix re-applied",
			applied, skipped, sum.TailRecords)
	}
	if got := countWorkers(t, db2); got != 350 {
		t.Fatalf("post-recovery count = %d, want 350", got)
	}
	res3 := mustExec(t, db2, "SELECT name FROM worker WHERE id = 327")
	if len(res3.Rows) != 1 || res3.Rows[0][0].S != "w327" {
		t.Fatalf("row 327 = %v", res3.Rows)
	}
	// The recovered database keeps working.
	insertWorkers(t, db2, 350, 25)
	if got := countWorkers(t, db2); got != 375 {
		t.Fatalf("post-recovery insert count = %d", got)
	}
}

// TestLogTruncatedBelowCheckpointStillRecovers is the acceptance
// scenario: the watermark-driven TruncateBelow reclaims log segments the
// checkpoint covers, the on-disk log genuinely shrinks, and a reopen
// over the truncated log still recovers every row — from the checkpoint
// plus the surviving tail.
func TestLogTruncatedBelowCheckpointStillRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(checkpointConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	for b := 0; b < 6; b++ {
		insertWorkers(t, db, b*100, 100)
	}
	before := db.LogStoreStats()
	if before[0].Segments < 3 {
		t.Fatalf("workload too small to rotate segments: %+v", before[0])
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	removed, err := db.TruncateLogs()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("GC reclaimed nothing")
	}
	after := db.LogStoreStats()
	for i := range after {
		if after[i].Segments >= before[i].Segments {
			t.Fatalf("log %s did not shrink: %d -> %d segments",
				after[i].Name, before[i].Segments, after[i].Segments)
		}
		if after[i].Records >= before[i].Records {
			t.Fatalf("log %s records did not shrink: %d -> %d",
				after[i].Name, before[i].Records, after[i].Records)
		}
		if after[i].TruncatedLSN == 0 || after[i].Log.GCBytes == 0 {
			t.Fatalf("log %s GC stats empty: %+v", after[i].Name, after[i])
		}
	}
	// Crash over the truncated log.
	db = nil

	db2, err := Open(checkpointConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countWorkers(t, db2); got != 600 {
		t.Fatalf("count over truncated log = %d, want 600", got)
	}
	res := mustExec(t, db2, "SELECT name, age FROM worker WHERE id = 42")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "w42" || res.Rows[0][1].I != 20+42%45 {
		t.Fatalf("row 42 = %v", res.Rows)
	}
	// The surviving log alone cannot rebuild the database — proof the
	// recovery actually came from the checkpoints.
	if recs := db2.LogStoreStats()[0].Records; recs >= 600 {
		t.Fatalf("log still holds %d records; GC did not bite", recs)
	}
}

// corruptOne flips a byte in the middle of the first file matching the
// glob pattern.
func corruptOne(t *testing.T, pattern string) string {
	t.Helper()
	files, err := filepath.Glob(pattern)
	if err != nil || len(files) == 0 {
		t.Fatalf("no files match %s: %v", pattern, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	return files[0]
}

// TestCorruptSliceCheckpointFallsBackToFullReplay damages one slice
// checkpoint file; recovery must detect it (CRC), ignore the whole
// checkpoint set's fast path, and rebuild from the full log.
func TestCorruptSliceCheckpointFallsBackToFullReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 200)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db = nil

	corruptOne(t, filepath.Join(dir, "pagestore-1", "slice-*.ckpt"))
	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery must tolerate a corrupt checkpoint: %v", err)
	}
	defer db2.Close()
	sum := db2.RecoverySummary()
	if sum.CorruptCheckpoints == 0 {
		t.Fatalf("corruption not detected: %+v", sum)
	}
	if sum.TailRecords < 200 {
		t.Fatalf("tail = %d records, want full replay", sum.TailRecords)
	}
	if got := countWorkers(t, db2); got != 200 {
		t.Fatalf("count after corrupt checkpoint = %d, want 200", got)
	}
}

// TestCorruptCheckpointAfterGCFailsLoudly: once watermark GC has
// collected the log prefix, a corrupt slice checkpoint is unrecoverable
// from this node's disk — Open must refuse rather than silently serve
// a replica missing acknowledged rows.
func TestCorruptCheckpointAfterGCFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(checkpointConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	for b := 0; b < 6; b++ {
		insertWorkers(t, db, b*100, 100)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	removed, err := db.TruncateLogs()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("GC reclaimed nothing; scenario needs a collected prefix")
	}
	db = nil

	corruptOne(t, filepath.Join(dir, "pagestore-1", "slice-*.ckpt"))
	if _, err := Open(checkpointConfig(dir)); err == nil {
		t.Fatal("Open must fail: corrupt checkpoint and GC'd log prefix")
	} else if !strings.Contains(err.Error(), "garbage-collected") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestCorruptMetaCheckpointFallsBackToFullReplay damages the frontend's
// meta checkpoint: recovery loses the fast path entirely but the full
// log still rebuilds everything.
func TestCorruptMetaCheckpointFallsBackToFullReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 150)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db = nil

	corruptOne(t, filepath.Join(dir, "frontend", "meta.ckpt"))
	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery must tolerate a corrupt meta checkpoint: %v", err)
	}
	defer db2.Close()
	sum := db2.RecoverySummary()
	if sum.CheckpointLSN != 0 {
		t.Fatalf("corrupt meta still used: %+v", sum)
	}
	if got := countWorkers(t, db2); got != 150 {
		t.Fatalf("count = %d, want 150", got)
	}
}

// TestBackgroundCheckpointerShrinksLog runs the configured interval
// end to end: under a steady write load the ticker checkpoints and
// garbage-collects, so the on-disk log stops growing — the long-lived
// node scenario from the ROADMAP.
func TestBackgroundCheckpointerShrinksLog(t *testing.T) {
	dir := t.TempDir()
	cfg := checkpointConfig(dir)
	cfg.CheckpointInterval = 10 * time.Millisecond
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	deadline := time.Now().Add(10 * time.Second)
	rows := 0
	gcSeen := false
	for time.Now().Before(deadline) {
		insertWorkers(t, db, rows, 50)
		rows += 50
		time.Sleep(15 * time.Millisecond)
		st := db.LogStoreStats()
		if st[0].Log.GCBytes > 0 && st[0].TruncatedLSN > 0 {
			gcSeen = true
			break
		}
	}
	if !gcSeen {
		t.Fatal("background checkpointer never garbage-collected the log")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The truncated log + final checkpoint still recover everything.
	db2, err := Open(checkpointConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countWorkers(t, db2); got != int64(rows) {
		t.Fatalf("count = %d, want %d", got, rows)
	}
}

// TestCloseTakesFinalCheckpoint: with the checkpointer enabled, a clean
// Close leaves a checkpoint covering everything, so the next Open
// replays no tail at all.
func TestCloseTakesFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.CheckpointInterval = time.Hour // only the close-time checkpoint fires
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 120)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	sum := db2.RecoverySummary()
	if sum.CheckpointLSN == 0 || sum.TailRecords != 0 {
		t.Fatalf("close checkpoint not used: %+v", sum)
	}
	applied, _ := sumApplied(db2)
	if applied != 0 {
		t.Fatalf("%d records re-applied after a clean close checkpoint", applied)
	}
	if got := countWorkers(t, db2); got != 120 {
		t.Fatalf("count = %d, want 120", got)
	}
	// Secondary DDL after a checkpointed recovery still works (the
	// allocators resumed from the meta checkpoint, not the log).
	if _, err := db2.Engine().CreateSecondaryIndex("worker", "worker_age", []int{1}); err != nil {
		t.Fatal(err)
	}
	insertWorkers(t, db2, 120, 30)
	if got := countWorkers(t, db2); got != 150 {
		t.Fatalf("post-DDL count = %d", got)
	}
}

// TestCheckpointUnderSustainedWriters is the snapshot-barrier regression
// test: with continuous writers keeping the pipeline's pending count
// nonzero, DB.Checkpoint must still complete (the old SAL.Flush drain
// waited for pending == 0, a moment that may never come, starving the
// background checkpointer into full-replay recoveries).
func TestCheckpointUnderSustainedWriters(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 50)
	stop := make(chan struct{})
	writers := 4
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := fmt.Sprintf("INSERT INTO worker VALUES (%d, 30, DATE '2015-01-01', 100.00, 'w')",
					1000000+w*10000000+i)
				if _, err := db.Exec(q); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	// Give the writers a head start so the pipeline is saturated.
	time.Sleep(50 * time.Millisecond)
	type ckRes struct {
		res *CheckpointResult
		err error
	}
	done := make(chan ckRes, 1)
	go func() {
		res, err := db.Checkpoint()
		done <- ckRes{res, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.res.SlicesWritten == 0 {
			t.Fatalf("checkpoint wrote nothing under load: %+v", r.res)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Checkpoint starved under sustained writers")
	}
	// A second one keeps working too (the background checkpointer path).
	go func() {
		res, err := db.Checkpoint()
		done <- ckRes{res, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("second Checkpoint starved")
	}
	close(stop)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The checkpoints were real: reopening recovers from one.
	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.RecoverySummary().CheckpointLSN == 0 {
		t.Fatalf("recovery ignored the under-load checkpoints: %+v", db2.RecoverySummary())
	}
}
