package pagestore

import (
	"fmt"
	"time"

	"taurus/internal/health"
)

// SetHealth attaches the monitor that answers MsgPing status and
// MsgHealthReport. Pair with RegisterHealth, which installs the store's
// invariant probes on it.
func (s *Store) SetHealth(m *health.Monitor) { s.health = m }

// healthReport builds the MsgHealthReport payload. Without a monitor it
// still identifies the node.
func (s *Store) healthReport() health.Report {
	if s.health == nil {
		return health.Report{Node: s.name, Role: "pagestore",
			Time: time.Now(), Ready: true}
	}
	return s.health.Report()
}

// RegisterHealth installs the Page Store's invariant probes on m.
// ckptInterval is the deployment's checkpoint cadence (what the
// checkpoint-age check is judged against); <= 0 disables that check, as
// does running without persistence.
//
//   - pagestore.checkpoint_age (RB-CHECKPOINT-AGE): a persistent store
//     must produce a checkpoint at most ~every CheckpointInterval. Age
//     beyond 2x the interval warns, beyond 4x is critical — log GC and
//     replica checkpoint-resyncs both key off checkpoint recency.
//     Before the first checkpoint the age is measured from store start.
//   - pagestore.version_pin (RB-VERSION-PIN): a pinned version floor
//     must ride the apply frontier upward (subscribed replicas re-pin
//     as their visible LSN advances). A floor frozen while the applied
//     LSN moved far past it means a wedged reader is pinning version
//     chains and retention is bloating.
func (s *Store) RegisterHealth(m *health.Monitor, ckptInterval time.Duration) {
	start := time.Now()
	m.AddProbe(func() health.Check {
		const name, rb = "pagestore.checkpoint_age", "RB-CHECKPOINT-AGE"
		if !s.Persistent() || ckptInterval <= 0 {
			return health.Checkf(name, rb, health.StatusOK, nil,
				"not persistent / checkpointing disabled")
		}
		last := s.LastCheckpoint()
		age := time.Since(start)
		if !last.IsZero() {
			age = time.Since(last)
		}
		ev := map[string]string{
			"age":      age.Round(time.Millisecond).String(),
			"interval": ckptInterval.String(),
		}
		switch {
		case age > 4*ckptInterval:
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"no checkpoint for %s (interval %s); log GC and replica resync are starving", age.Round(time.Second), ckptInterval)
		case age > 2*ckptInterval:
			return health.Checkf(name, rb, health.StatusWarn, ev,
				"checkpoint overdue: age %s vs interval %s", age.Round(time.Second), ckptInterval)
		}
		return health.Checkf(name, rb, health.StatusOK, ev, "age %s", age.Round(time.Second))
	})

	// pinDriftRecords is how far the applied LSN may run past a frozen
	// pin floor before the pin is considered wedged.
	const pinDriftRecords = 50000
	var lastFloor, floorApplied uint64
	m.AddProbe(func() health.Check {
		const name, rb = "pagestore.version_pin", "RB-VERSION-PIN"
		floor := s.VersionPinFloor()
		pins := s.VersionPins()
		_, applied, _ := s.LSNInfo(0)
		ev := map[string]string{
			"pins":        fmt.Sprintf("%d", pins),
			"pin_floor":   fmt.Sprintf("%d", floor),
			"applied_lsn": fmt.Sprintf("%d", applied),
		}
		if pins == 0 || floor == 0 {
			lastFloor, floorApplied = floor, applied
			return health.Checkf(name, rb, health.StatusOK, ev, "no pins")
		}
		if floor != lastFloor {
			// Floor moved: reset the drift baseline.
			lastFloor, floorApplied = floor, applied
			return health.Checkf(name, rb, health.StatusOK, ev, "pin floor advancing")
		}
		drift := applied - floorApplied
		ev["drift_records"] = fmt.Sprintf("%d", drift)
		switch {
		case drift > 4*pinDriftRecords:
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"pin floor frozen at %d while applied LSN advanced %d records; a reader is wedged", floor, drift)
		case drift > pinDriftRecords:
			return health.Checkf(name, rb, health.StatusWarn, ev,
				"pin floor %d not advancing (%d records behind the apply frontier)", floor, drift)
		}
		return health.Checkf(name, rb, health.StatusOK, ev, "pin floor tracking")
	})
}
