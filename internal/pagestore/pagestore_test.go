package pagestore

import (
	"bytes"
	"testing"

	"taurus/internal/cluster"
	"taurus/internal/core"
	"taurus/internal/core/ir"
	"taurus/internal/expr"
	"taurus/internal/obs"
	"taurus/internal/page"
	"taurus/internal/types"
	"taurus/internal/wal"
)

var idvSchema = types.NewSchema(
	types.Column{Name: "id", Kind: types.KindInt},
	types.Column{Name: "v", Kind: types.KindInt},
)

// seedSlice formats nPages pages with rows via the redo path, exactly as
// a SAL would.
func seedSlice(t testing.TB, s *Store, tenant, sliceID uint32, nPages, rowsPerPage int) uint64 {
	t.Helper()
	s.CreateSlice(tenant, sliceID)
	var lsn uint64
	var buf []byte
	id := int64(0)
	for p := 0; p < nPages; p++ {
		lsn++
		rec := wal.Record{LSN: lsn, Type: wal.TypeFormatPage, PageID: uint64(p + 1), IndexID: 1}
		buf = rec.Encode(buf)
		for r := 0; r < rowsPerPage; r++ {
			lsn++
			key := types.EncodeKey(nil, types.Row{types.NewInt(id)})
			row := types.EncodeRow(nil, idvSchema, types.Row{types.NewInt(id), types.NewInt(id % 10)})
			ins := wal.Record{
				LSN: lsn, Type: wal.TypeInsertRec, PageID: uint64(p + 1),
				Off: wal.OffAppend, TrxID: 5, Payload: page.EncodeLeafPayload(nil, key, row),
			}
			buf = ins.Encode(buf)
			id++
		}
	}
	if _, err := s.WriteLogs(tenant, sliceID, buf); err != nil {
		t.Fatal(err)
	}
	return lsn
}

func descWithPredicate(t testing.TB, threshold int64) []byte {
	t.Helper()
	prog, err := ir.Compile(expr.GE(expr.Col(1, "v"), expr.ConstInt(threshold)), 2)
	if err != nil {
		t.Fatal(err)
	}
	d := &core.Descriptor{
		IndexID:      1,
		Cols:         []types.Kind{types.KindInt, types.KindInt},
		FixedLens:    []uint16{0, 0},
		Predicate:    prog.Encode(),
		LowWatermark: 100,
	}
	return d.Encode()
}

func TestWriteLogsAndReadPage(t *testing.T) {
	s := New("ps1")
	lsn := seedSlice(t, s, 1, 0, 3, 10)
	raw, err := s.ReadPage(1, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := page.FromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumRecords() != 10 || pg.ID() != 2 {
		t.Fatalf("page 2 has %d records", pg.NumRecords())
	}
	if pg.LSN() == 0 || pg.LSN() > lsn {
		t.Errorf("page LSN %d out of range", pg.LSN())
	}
	// Unknown page and slice.
	if _, err := s.ReadPage(1, 0, 99, 0); err == nil {
		t.Error("unknown page should fail")
	}
	if _, err := s.ReadPage(9, 9, 1, 0); err == nil {
		t.Error("unknown slice should fail")
	}
	// Stats recorded.
	if snap := s.Snapshot(); snap.LogRecordsApplied == 0 || snap.PageReads != 1 {
		t.Errorf("stats = %+v", snap)
	}
}

func TestLSNVersionedReads(t *testing.T) {
	s := New("ps1")
	s.CreateSlice(1, 0)
	// Format a page at LSN 1, insert at LSN 2 and 3.
	var buf []byte
	buf = (&wal.Record{LSN: 1, Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}).Encode(buf)
	key := types.EncodeKey(nil, types.Row{types.NewInt(1)})
	row := types.EncodeRow(nil, idvSchema, types.Row{types.NewInt(1), types.NewInt(1)})
	payload := page.EncodeLeafPayload(nil, key, row)
	buf = (&wal.Record{LSN: 2, Type: wal.TypeInsertRec, PageID: 1, Off: wal.OffAppend, TrxID: 1, Payload: payload}).Encode(buf)
	buf = (&wal.Record{LSN: 3, Type: wal.TypeInsertRec, PageID: 1, Off: wal.OffAppend, TrxID: 1, Payload: payload}).Encode(buf)
	if _, err := s.WriteLogs(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	// Version at LSN 2 has 1 record; at LSN 3 (and latest) has 2.
	for _, tc := range []struct {
		lsn  uint64
		want int
	}{{2, 1}, {3, 2}, {0, 2}} {
		raw, err := s.ReadPage(1, 0, 1, tc.lsn)
		if err != nil {
			t.Fatalf("lsn %d: %v", tc.lsn, err)
		}
		pg, _ := page.FromBytes(raw)
		if pg.NumRecords() != tc.want {
			t.Errorf("lsn %d: %d records, want %d", tc.lsn, pg.NumRecords(), tc.want)
		}
	}
	// "The Page Store only returns those page versions matching the LSN
	// value": version at LSN 1 exists (empty page).
	raw, err := s.ReadPage(1, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := page.FromBytes(raw)
	if pg.NumRecords() != 0 {
		t.Errorf("lsn 1 should be the empty page, has %d", pg.NumRecords())
	}
}

func TestIdempotentRedelivery(t *testing.T) {
	s := New("ps1")
	lsn := seedSlice(t, s, 1, 0, 1, 5)
	raw1, _ := s.ReadPage(1, 0, 1, 0)
	// Redeliver the same log batch; page must not change.
	var buf []byte
	rec := wal.Record{LSN: lsn, Type: wal.TypeCompact, PageID: 1}
	buf = rec.Encode(buf)
	if _, err := s.WriteLogs(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	raw2, _ := s.ReadPage(1, 0, 1, 0)
	if string(raw1) != string(raw2) {
		t.Error("redelivered record with old LSN must be ignored")
	}
}

func TestBatchReadPlain(t *testing.T) {
	s := New("ps1")
	seedSlice(t, s, 1, 0, 4, 8)
	resp, err := s.BatchRead(&cluster.BatchReadReq{
		Tenant: 1, SliceID: 0, PageIDs: []uint64{3, 1, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Pages) != 3 {
		t.Fatalf("got %d pages", len(resp.Pages))
	}
	for i, want := range []uint64{3, 1, 4} {
		pg, err := page.FromBytes(resp.Pages[i])
		if err != nil {
			t.Fatal(err)
		}
		if pg.ID() != want {
			t.Errorf("page %d: id %d want %d", i, pg.ID(), want)
		}
		if pg.IsNDP() {
			t.Error("plain batch read must return regular pages")
		}
	}
}

func TestBatchReadNDP(t *testing.T) {
	s := New("ps1")
	seedSlice(t, s, 1, 0, 4, 20)
	desc := descWithPredicate(t, 8) // keeps v ∈ {8,9}: 20% of rows
	resp, err := s.BatchRead(&cluster.BatchReadReq{
		Tenant: 1, SliceID: 0, PageIDs: []uint64{1, 2, 3, 4}, Desc: desc, Plugin: PluginInnoDB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Processed != 4 || resp.Skipped != 0 {
		t.Fatalf("processed/skipped = %d/%d", resp.Processed, resp.Skipped)
	}
	totalRecs := 0
	totalBytes := 0
	for _, raw := range resp.Pages {
		pg, err := page.FromBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !pg.IsNDP() {
			t.Error("NDP batch read must return NDP pages")
		}
		totalRecs += pg.NumRecords()
		totalBytes += len(raw)
	}
	if totalRecs != 16 { // 80 rows, 20% pass
		t.Errorf("filtered records = %d, want 16", totalRecs)
	}
	if totalBytes >= 4*page.Size/4 {
		t.Errorf("NDP pages total %d bytes; expected strong reduction", totalBytes)
	}
	// Descriptor cache: second call hits.
	if _, err := s.BatchRead(&cluster.BatchReadReq{
		Tenant: 1, SliceID: 0, PageIDs: []uint64{1}, Desc: desc, Plugin: PluginInnoDB,
	}); err != nil {
		t.Fatal(err)
	}
	hits, misses := s.DescCacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache hits/misses = %d/%d", hits, misses)
	}
}

func TestBatchReadBestEffortSkip(t *testing.T) {
	rc := NewResourceControl(2, 4)
	rc.SetForceSkip(true)
	s := New("ps1", WithResourceControl(rc))
	seedSlice(t, s, 1, 0, 3, 10)
	desc := descWithPredicate(t, 5)
	resp, err := s.BatchRead(&cluster.BatchReadReq{
		Tenant: 1, SliceID: 0, PageIDs: []uint64{1, 2, 3}, Desc: desc, Plugin: PluginInnoDB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Skipped != 3 || resp.Processed != 0 {
		t.Fatalf("skipped/processed = %d/%d", resp.Skipped, resp.Processed)
	}
	for _, raw := range resp.Pages {
		pg, err := page.FromBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !pg.IsNDPSkipped() || pg.IsNDP() {
			t.Error("skipped pages must be regular images flagged NDP-skipped")
		}
		if pg.NumRecords() != 10 {
			t.Error("skipped pages must be unprocessed")
		}
	}
	// Partial skip: every 2nd page.
	rc.SetForceSkip(false)
	rc.SetSkipEvery(2)
	resp, err = s.BatchRead(&cluster.BatchReadReq{
		Tenant: 1, SliceID: 0, PageIDs: []uint64{1, 2, 3}, Desc: desc, Plugin: PluginInnoDB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Skipped == 0 || resp.Processed == 0 {
		t.Errorf("page-scoped throttling should mix outcomes, got %d/%d", resp.Processed, resp.Skipped)
	}
}

func TestMultiTenantIsolation(t *testing.T) {
	s := New("ps1")
	seedSlice(t, s, 1, 0, 1, 3)
	seedSlice(t, s, 2, 0, 1, 7)
	p1, err := s.ReadPage(1, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.ReadPage(2, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pg1, _ := page.FromBytes(p1)
	pg2, _ := page.FromBytes(p2)
	if pg1.NumRecords() != 3 || pg2.NumRecords() != 7 {
		t.Error("tenants must have separate slices")
	}
}

func TestHandleDispatch(t *testing.T) {
	s := New("ps1")
	if _, err := s.Handle(&cluster.CreateSliceReq{Tenant: 1, SliceID: 0}); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = (&wal.Record{LSN: 1, Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}).Encode(buf)
	resp, err := s.Handle(&cluster.WriteLogsReq{Tenant: 1, SliceID: 0, Recs: buf})
	if err != nil || resp.(*cluster.Ack).LSN != 1 {
		t.Fatalf("WriteLogs: %v %v", resp, err)
	}
	if _, err := s.Handle(&cluster.ReadPageReq{Tenant: 1, SliceID: 0, PageID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Handle(&cluster.BatchReadReq{Tenant: 1, SliceID: 0, PageIDs: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Handle("garbage"); err == nil {
		t.Error("unknown request should fail")
	}
	// Unknown plugin.
	if _, err := s.Handle(&cluster.BatchReadReq{
		Tenant: 1, SliceID: 0, PageIDs: []uint64{1}, Desc: []byte("x"), Plugin: "no-such-db",
	}); err == nil {
		t.Error("unknown plugin should fail")
	}
}

func TestDescriptorCacheDisable(t *testing.T) {
	c := NewDescriptorCache(4)
	c.Disable()
	p := innoDBPlugin{}
	desc := descWithPredicate(t, 1)
	for i := 0; i < 3; i++ {
		if _, err := c.Get(p, desc); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 3 {
		t.Errorf("disabled cache: hits=%d misses=%d", hits, misses)
	}
}

func TestDescriptorCacheEviction(t *testing.T) {
	c := NewDescriptorCache(1)
	p := innoDBPlugin{}
	d1 := descWithPredicate(t, 1)
	d2 := descWithPredicate(t, 2)
	c.Get(p, d1)
	c.Get(p, d2) // evicts d1
	c.Get(p, d2) // hit
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestResourceControlAdmission(t *testing.T) {
	rc := NewResourceControl(1, 0)
	rel, ok := rc.TryAdmit()
	if !ok {
		t.Fatal("first admit should succeed")
	}
	// Queue (cap workers+0 = 1) is full; next admit must skip.
	if _, ok := rc.TryAdmit(); ok {
		t.Fatal("second admit should be rejected while slot held")
	}
	rel()
	if rel2, ok := rc.TryAdmit(); !ok {
		t.Fatal("admit after release should succeed")
	} else {
		rel2()
	}
}

// TestNodeStatsDescCacheAndQueueDepth covers the observability surface
// scan routing leans on: descriptor-cache hit/miss counts and the NDP
// admission queue depth appear in NodeStats and as metric families.
func TestNodeStatsDescCacheAndQueueDepth(t *testing.T) {
	reg := obs.NewRegistry()
	s := New("ps1", WithMetrics(reg))
	seedSlice(t, s, 1, 0, 4, 20)
	desc := descWithPredicate(t, 8)
	for i := 0; i < 2; i++ { // first compiles (miss), second hits
		if _, err := s.BatchRead(&cluster.BatchReadReq{
			Tenant: 1, SliceID: 0, PageIDs: []uint64{1, 2, 3, 4}, Desc: desc, Plugin: PluginInnoDB,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ns := s.NodeStats()
	if ns.DescCacheHits != 1 || ns.DescCacheMisses != 1 {
		t.Errorf("NodeStats desc cache hits/misses = %d/%d, want 1/1",
			ns.DescCacheHits, ns.DescCacheMisses)
	}
	if ns.NDPQueueDepth != 0 {
		t.Errorf("NDPQueueDepth = %d between requests, want 0", ns.NDPQueueDepth)
	}
	// While a worker slot is held, the depth is visible.
	rel, ok := s.control.TryAdmit()
	if !ok {
		t.Fatal("admit failed on an idle store")
	}
	if got := s.NodeStats().NDPQueueDepth; got != 1 {
		t.Errorf("NDPQueueDepth = %d with one admission held, want 1", got)
	}
	rel()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families, err := obs.ValidateExposition(buf.String())
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		"taurus_pagestore_desc_cache_hits_total",
		"taurus_pagestore_desc_cache_misses_total",
		"taurus_pagestore_ndp_queue_depth",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("family %s missing from exposition", want)
		}
	}
}
