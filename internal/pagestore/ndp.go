package pagestore

import (
	"fmt"
	"sync"

	"taurus/internal/cluster"
	"taurus/internal/core"
	"taurus/internal/page"
)

// Plugin is the DBMS-specific NDP hook: "the Page Store NDP framework
// accepts an NDP descriptor as a type-less byte stream, which an NDP
// plugin interprets" (§IV-D). Plugins must be safe for concurrent use.
type Plugin interface {
	// Name identifies the frontend DBMS flavour (e.g. "innodb").
	Name() string
	// Compile turns descriptor bytes into a reusable page processor.
	Compile(desc []byte) (PageProcessor, error)
}

// PageProcessor transforms regular pages into NDP pages. Implementations
// must be safe for concurrent ProcessPage calls.
type PageProcessor interface {
	// ProcessPage returns the NDP page for src without modifying src.
	ProcessPage(src *page.Page) (*page.Page, core.PageStats, error)
	// MergeBatch performs cross-page (scalar) aggregation over the NDP
	// pages of one batch request, in request order.
	MergeBatch(pages []*page.Page) error
}

// PluginInnoDB is the plugin name the Taurus MySQL frontend uses.
const PluginInnoDB = "innodb"

// innoDBPlugin adapts internal/core to the plugin interface.
type innoDBPlugin struct{}

func (innoDBPlugin) Name() string { return PluginInnoDB }

func (innoDBPlugin) Compile(desc []byte) (PageProcessor, error) {
	proc, err := core.NewProcessor(desc)
	if err != nil {
		return nil, err
	}
	return innoDBProcessor{proc}, nil
}

type innoDBProcessor struct{ proc *core.Processor }

func (p innoDBProcessor) ProcessPage(src *page.Page) (*page.Page, core.PageStats, error) {
	return p.proc.ProcessPage(src)
}

func (p innoDBProcessor) MergeBatch(pages []*page.Page) error {
	return p.proc.MergeScalarBatch(pages)
}

// DescriptorCache caches compiled processors keyed by the descriptor
// hash. "Instead of decoding descriptors and converting LLVM bitcode for
// each NDP request, the first request caches the result which is reused
// subsequently" (§IV-D1). Without it, every batch read pays descriptor
// decode + IR validation + JIT; BenchmarkDescriptorCache quantifies the
// difference.
type DescriptorCache struct {
	mu      sync.Mutex
	entries map[uint64]PageProcessor
	cap     int
	hits    uint64
	misses  uint64
	// disabled turns the cache off for ablation runs.
	disabled bool
}

// NewDescriptorCache creates a cache bounded to cap entries.
func NewDescriptorCache(cap int) *DescriptorCache {
	if cap < 1 {
		cap = 1
	}
	return &DescriptorCache{entries: make(map[uint64]PageProcessor), cap: cap}
}

// Disable turns caching off (every request recompiles).
func (c *DescriptorCache) Disable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.disabled = true
}

// Get returns the cached processor for (plugin, desc), compiling on miss.
func (c *DescriptorCache) Get(p Plugin, desc []byte) (PageProcessor, error) {
	key := core.HashBytes(desc)
	c.mu.Lock()
	if !c.disabled {
		if e, ok := c.entries[key]; ok {
			c.hits++
			c.mu.Unlock()
			return e, nil
		}
	}
	c.misses++
	c.mu.Unlock()
	// Compile outside the lock; duplicate compilation on a race is
	// harmless.
	proc, err := p.Compile(desc)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.disabled {
		if len(c.entries) >= c.cap {
			// Evict an arbitrary entry; descriptor churn is low.
			for k := range c.entries {
				delete(c.entries, k)
				break
			}
		}
		c.entries[key] = proc
	}
	return proc, nil
}

// Stats reports hit/miss counts.
func (c *DescriptorCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// ResourceControl is the NDP throttle of §IV-D2: "a dedicated thread pool
// was introduced to control the number of NDP pages processed
// concurrently. New NDP page read requests are added to a queue, and wait
// for their turn... If the Page Store has enough resources to complete an
// NDP request without undue waiting, the NDP processing of a page is
// done; otherwise, it is skipped, and the frontend node completes it."
//
// Admission is page-scoped: a single batch can have some pages processed
// and others skipped, so "NDP benefit to a query is not all-or-nothing".
type ResourceControl struct {
	// workers bounds concurrent NDP page processing.
	workers chan struct{}
	// queue bounds how many pages may wait; beyond it, pages are
	// skipped instead of blocking regular reads.
	queue chan struct{}
	// forceSkip makes every admission fail (fault injection / the
	// paper's "Page Store is free to ignore an NDP processing request").
	mu        sync.Mutex
	forceSkip bool
	skipEvery int // skip every Nth page (deterministic partial-skip tests)
	counter   int
}

// NewResourceControl builds a controller with the given worker and queue
// capacities.
func NewResourceControl(workers, queueDepth int) *ResourceControl {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &ResourceControl{
		workers: make(chan struct{}, workers),
		queue:   make(chan struct{}, workers+queueDepth),
	}
}

// QueueDepth reports how many NDP pages are currently admitted —
// queued or processing. Frontends export it per store so scan routing
// imbalance is visible from /stats.
func (rc *ResourceControl) QueueDepth() int { return len(rc.queue) }

// SetForceSkip makes all (or none) admissions fail.
func (rc *ResourceControl) SetForceSkip(v bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.forceSkip = v
}

// SetSkipEvery makes every nth admission fail (0 disables).
func (rc *ResourceControl) SetSkipEvery(n int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.skipEvery = n
	rc.counter = 0
}

// TryAdmit attempts to reserve a processing slot without blocking beyond
// the queue bound. It returns a release function on success, or false if
// the page should be skipped.
func (rc *ResourceControl) TryAdmit() (func(), bool) {
	rc.mu.Lock()
	if rc.forceSkip {
		rc.mu.Unlock()
		return nil, false
	}
	if rc.skipEvery > 0 {
		rc.counter++
		if rc.counter%rc.skipEvery == 0 {
			rc.mu.Unlock()
			return nil, false
		}
	}
	rc.mu.Unlock()
	select {
	case rc.queue <- struct{}{}:
	default:
		return nil, false // queue full: best-effort skip
	}
	rc.workers <- struct{}{} // wait for a worker slot
	return func() {
		<-rc.workers
		<-rc.queue
	}, true
}

// BatchRead serves an NDP (or plain) batch read: fetch each page at the
// stamped LSN, run best-effort NDP processing in parallel across worker
// slots, then cross-page merge. Pages return in request order.
func (s *Store) BatchRead(req *cluster.BatchReadReq) (*cluster.BatchReadResp, error) {
	sl, err := s.slice(req.Tenant, req.SliceID)
	if err != nil {
		return nil, err
	}
	s.stats.mu.Lock()
	s.stats.BatchReads++
	s.stats.mu.Unlock()

	// Fetch page versions at the request LSN.
	raw := make([]*page.Page, len(req.PageIDs))
	sl.mu.RLock()
	for i, id := range req.PageIDs {
		pv, ok := sl.pages[id]
		if !ok {
			sl.mu.RUnlock()
			return nil, fmt.Errorf("pagestore %s: page %d not in slice", s.name, id)
		}
		var pg *page.Page
		if req.LSN == 0 {
			pg = pv.latest()
		} else {
			pg = pv.at(req.LSN)
		}
		if pg == nil {
			sl.mu.RUnlock()
			return nil, fmt.Errorf("pagestore %s: page %d has no version at lsn %d", s.name, id, req.LSN)
		}
		raw[i] = pg
	}
	sl.mu.RUnlock()

	resp := &cluster.BatchReadResp{Pages: make([][]byte, len(raw))}
	if len(req.Desc) == 0 {
		// Plain batch read.
		for i, pg := range raw {
			resp.Pages[i] = append([]byte(nil), pg.Bytes()...)
		}
		return resp, nil
	}

	pluginName := req.Plugin
	if pluginName == "" {
		pluginName = PluginInnoDB
	}
	s.mu.RLock()
	plugin, ok := s.plugins[pluginName]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pagestore %s: no NDP plugin %q", s.name, pluginName)
	}
	proc, err := s.descCache.Get(plugin, req.Desc)
	if err != nil {
		return nil, err
	}

	// Process pages in parallel ("multiple threads undertake NDP
	// processing of pages concurrently, independently, and in any
	// order"), skipping under resource pressure.
	processed := make([]*page.Page, len(raw))
	skipped := make([]bool, len(raw))
	var wg sync.WaitGroup
	errs := make([]error, len(raw))
	for i := range raw {
		release, ok := s.control.TryAdmit()
		if !ok {
			skipped[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, release func()) {
			defer wg.Done()
			defer release()
			ndpPage, stats, err := proc.ProcessPage(raw[i])
			if err != nil {
				errs[i] = err
				return
			}
			processed[i] = ndpPage
			s.stats.mu.Lock()
			s.stats.NDPPagesProcessed++
			s.stats.NDPRecordsIn += uint64(stats.RecordsIn)
			s.stats.NDPRecordsOut += uint64(stats.RecordsOut)
			s.stats.mu.Unlock()
		}(i, release)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	// Cross-page aggregation over the successfully processed pages, in
	// request order (§V-C: batch reads enable it).
	mergeable := make([]*page.Page, 0, len(processed))
	for _, pg := range processed {
		if pg != nil {
			mergeable = append(mergeable, pg)
		}
	}
	if err := proc.MergeBatch(mergeable); err != nil {
		return nil, err
	}
	for i := range raw {
		if skipped[i] {
			// Return the raw page flagged so the frontend completes
			// the NDP work (§IV-D2).
			cp := raw[i].Clone()
			cp.SetFlags(page.FlagNDPSkipped)
			resp.Pages[i] = cp.Bytes()
			resp.Skipped++
			s.stats.mu.Lock()
			s.stats.NDPPagesSkipped++
			s.stats.mu.Unlock()
		} else {
			resp.Pages[i] = processed[i].Bytes()
			resp.Processed++
		}
	}
	return resp, nil
}

// InnoDBPlugin returns the built-in InnoDB NDP plugin, for benchmarks
// and custom deployments that construct caches directly.
func InnoDBPlugin() Plugin { return innoDBPlugin{} }
