package pagestore

import (
	"time"

	"taurus/internal/obs"
)

// WithMetrics registers the store's counters as scrape-time metric
// families and arms the apply/read latency histograms. Pass it to New
// after the store has its name (options run after construction).
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Store) { s.registerMetrics(reg) }
}

func (s *Store) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	labels := []obs.Label{obs.L("node", s.name)}
	s.applyHist = reg.Histogram("taurus_pagestore_apply_seconds",
		"Redo-record batch apply latency (one WriteLogs call).", nil, labels...)
	s.readHist = reg.Histogram("taurus_pagestore_read_seconds",
		"Single-page read latency.", nil, labels...)
	counter := func(name, help string, pick func(StatsSnapshot) uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(pick(s.Snapshot())) }, labels...)
	}
	counter("taurus_pagestore_records_applied_total", "Redo records applied.",
		func(st StatsSnapshot) uint64 { return st.LogRecordsApplied })
	counter("taurus_pagestore_records_skipped_total", "Idempotent redeliveries dropped.",
		func(st StatsSnapshot) uint64 { return st.LogRecordsSkipped })
	counter("taurus_pagestore_page_reads_total", "Single-page reads served.",
		func(st StatsSnapshot) uint64 { return st.PageReads })
	counter("taurus_pagestore_batch_reads_total", "Batch reads served.",
		func(st StatsSnapshot) uint64 { return st.BatchReads })
	counter("taurus_pagestore_ndp_pages_processed_total", "Pages processed by NDP pushdown.",
		func(st StatsSnapshot) uint64 { return st.NDPPagesProcessed })
	counter("taurus_pagestore_ndp_pages_skipped_total", "Pages NDP skipped under resource control.",
		func(st StatsSnapshot) uint64 { return st.NDPPagesSkipped })
	reg.GaugeFunc("taurus_pagestore_applied_lsn", "Node-wide minimum applied LSN across slices.",
		func() float64 { _, applied, _ := s.LSNInfo(0); return float64(applied) }, labels...)
	reg.GaugeFunc("taurus_pagestore_persisted_lsn", "Node-wide minimum checkpointed LSN across slices.",
		func() float64 { _, _, persisted := s.LSNInfo(0); return float64(persisted) }, labels...)
	reg.GaugeFunc("taurus_pagestore_slices", "Slices hosted.",
		func() float64 { n, _, _ := s.LSNInfo(0); return float64(n) }, labels...)
	reg.CounterFunc("taurus_pagestore_desc_cache_hits_total",
		"NDP descriptor cache hits (descriptor resolved by id, no re-send).",
		func() float64 { h, _ := s.DescCacheStats(); return float64(h) }, labels...)
	reg.CounterFunc("taurus_pagestore_desc_cache_misses_total",
		"NDP descriptor cache misses (descriptor decoded and compiled).",
		func() float64 { _, m := s.DescCacheStats(); return float64(m) }, labels...)
	reg.GaugeFunc("taurus_pagestore_ndp_queue_depth",
		"NDP pages admitted right now (queued or processing) under resource control.",
		func() float64 { return float64(s.NDPQueueDepth()) }, labels...)
	reg.GaugeFunc("taurus_pagestore_version_pins", "Active replica version pins.",
		func() float64 { return float64(s.VersionPins()) }, labels...)
	reg.GaugeFunc("taurus_pagestore_version_pin_floor", "Lowest pinned version LSN (0 = unpinned).",
		func() float64 { return float64(s.VersionPinFloor()) }, labels...)
}

// observeInto returns a completion func feeding h, or a no-op when the
// histogram is disarmed.
func observeInto(h *obs.Histogram) func() {
	if h == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { h.ObserveDuration(time.Since(t0)) }
}
