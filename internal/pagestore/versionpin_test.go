package pagestore

import (
	"testing"

	"taurus/internal/cluster"
	"taurus/internal/page"
	"taurus/internal/types"
	"taurus/internal/wal"
)

// pinWrite applies one insert record to page 1 at the given LSN,
// creating a new COW version.
func pinWrite(t *testing.T, s *Store, lsn uint64) {
	t.Helper()
	key := types.EncodeKey(nil, types.Row{types.NewInt(int64(lsn))})
	row := types.EncodeRow(nil, idvSchema, types.Row{types.NewInt(int64(lsn)), types.NewInt(1)})
	rec := wal.Record{
		LSN: lsn, Type: wal.TypeInsertRec, PageID: 1,
		Off: wal.OffAppend, TrxID: 1, Payload: page.EncodeLeafPayload(nil, key, row),
	}
	if _, err := s.WriteLogs(1, 0, rec.Encode(nil)); err != nil {
		t.Fatal(err)
	}
}

// TestVersionPinRetention: a replica's version pin keeps the snapshot
// version it reads at alive past the retention window; clearing the pin
// resumes normal pruning.
func TestVersionPinRetention(t *testing.T) {
	s := New("ps1")
	s.CreateSlice(1, 0)
	format := wal.Record{LSN: 1, Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}
	if _, err := s.WriteLogs(1, 0, format.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	// A replica pins its snapshot at LSN 2, then the master writes far
	// past the retention window.
	s.SetVersionPin("replica-1", 2)
	for lsn := uint64(2); lsn <= 2+3*VersionRetention; lsn++ {
		pinWrite(t, s, lsn)
	}
	if _, err := s.ReadPage(1, 0, 1, 2); err != nil {
		t.Fatalf("pinned snapshot version dropped: %v", err)
	}
	// Clearing the pin lets retention prune the old version again.
	s.SetVersionPin("replica-1", 0)
	last := 2 + 3*uint64(VersionRetention)
	for lsn := last + 1; lsn <= last+VersionRetention+1; lsn++ {
		pinWrite(t, s, lsn)
	}
	if _, err := s.ReadPage(1, 0, 1, 2); err == nil {
		t.Fatal("unpinned version survived retention")
	}
	// The newest version always serves.
	if _, err := s.ReadPage(1, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

// TestVersionPinFloorAccounting: the effective floor is the minimum
// across pinned replicas, and pins are cleared per node.
func TestVersionPinFloorAccounting(t *testing.T) {
	s := New("ps1")
	s.SetVersionPin("r1", 5)
	s.SetVersionPin("r2", 3)
	if s.VersionPins() != 2 || s.VersionPinFloor() != 3 {
		t.Fatalf("pins=%d floor=%d, want 2/3", s.VersionPins(), s.VersionPinFloor())
	}
	// Re-pinning a node replaces its floor; clearing one leaves the rest.
	s.SetVersionPin("r2", 9)
	if s.VersionPinFloor() != 5 {
		t.Fatalf("floor=%d after repin, want 5", s.VersionPinFloor())
	}
	s.SetVersionPin("r1", 0)
	if s.VersionPins() != 1 || s.VersionPinFloor() != 9 {
		t.Fatalf("pins=%d floor=%d after clear, want 1/9", s.VersionPins(), s.VersionPinFloor())
	}
	s.SetVersionPin("r2", 0)
	if s.VersionPins() != 0 || s.VersionPinFloor() != 0 {
		t.Fatalf("pins=%d floor=%d after full clear, want 0/0", s.VersionPins(), s.VersionPinFloor())
	}
	// The RPC form dispatches through Handle.
	resp, err := s.Handle(&cluster.VersionPinReq{Tenant: 1, Node: "r3", LSN: 7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*cluster.Ack).LSN != 7 || s.VersionPinFloor() != 7 {
		t.Fatalf("Handle pin: floor=%d", s.VersionPinFloor())
	}
}
