// Package pagestore implements the Page Store service of §II and §IV-D:
// a multi-tenant storage node that hosts slices from multiple database
// frontends, keeps pages up to date by applying redo log records, serves
// page reads at requested LSNs, and performs best-effort NDP processing
// through DBMS-specific plugins.
package pagestore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/health"
	"taurus/internal/obs"
	"taurus/internal/page"
	"taurus/internal/pstore"
	"taurus/internal/wal"
)

// VersionRetention is how many historical versions of a page a store
// keeps so that LSN-stamped batch reads can be served while writers move
// the page forward (§IV-C4's LSN versioning).
const VersionRetention = 8

type sliceKey struct {
	tenant  uint32
	sliceID uint32
}

// pageVersions is the per-page version chain, ascending LSN.
type pageVersions struct {
	versions []*page.Page
}

func (pv *pageVersions) latest() *page.Page {
	if len(pv.versions) == 0 {
		return nil
	}
	return pv.versions[len(pv.versions)-1]
}

// at returns the newest version with LSN <= lsn (or nil).
func (pv *pageVersions) at(lsn uint64) *page.Page {
	for i := len(pv.versions) - 1; i >= 0; i-- {
		if pv.versions[i].LSN() <= lsn {
			return pv.versions[i]
		}
	}
	return nil
}

// maxPinnedVersions hard-caps a chain even under a version pin. A stale
// pin (a replica that died without clearing it) must not grow memory
// without bound; past the cap the pinned reader falls back to
// refresh-and-retry, which is the pre-pinning behaviour.
const maxPinnedVersions = 64

// push appends a version and trims the chain's tail. floor is the lowest
// LSN any pinned reader may still request (0 = no pin): the oldest
// version is only dropped once the next one already satisfies the floor,
// so a pinned replica's reads keep hitting instead of racing retention.
func (pv *pageVersions) push(pg *page.Page, floor uint64) {
	pv.versions = append(pv.versions, pg)
	for len(pv.versions) > VersionRetention {
		if floor != 0 && len(pv.versions) <= maxPinnedVersions && pv.versions[1].LSN() > floor {
			break // dropping versions[0] would orphan the pinned reader
		}
		pv.versions = pv.versions[1:]
	}
}

// slice holds the pages of one 10 GB database segment (scaled down here;
// slice sizing is the SAL's concern).
type slice struct {
	mu         sync.RWMutex
	pages      map[uint64]*pageVersions
	appliedLSN uint64
	// persistedLSN is the applied LSN covered by the slice's newest
	// durable checkpoint (0 = never checkpointed). Records at or below
	// it survive a crash without log replay.
	persistedLSN uint64
}

// Store is one Page Store node.
type Store struct {
	name string

	mu     sync.RWMutex
	slices map[sliceKey]*slice

	// ckpt is the persistent checkpoint store; nil keeps the node
	// memory-only (the simulated experiments' configuration). ckptMu
	// serializes Checkpoint calls: two interleaved checkpoints could
	// otherwise rename an older slice snapshot over a newer file while
	// persistedLSN keeps the newer value — and the GC watermark would
	// then overstate what disk holds.
	ckpt   *pstore.Store
	ckptMu sync.Mutex

	// NDP machinery.
	descCache *DescriptorCache
	control   *ResourceControl
	plugins   map[string]Plugin

	// Metrics.
	stats Stats
	// Optional latency instruments, armed by WithMetrics; nil is inert.
	applyHist *obs.Histogram
	readHist  *obs.Histogram

	// tracer records server-side spans for sampled requests; events is
	// the flight recorder (checkpoint completions). Both nil-inert.
	tracer *obs.Tracer
	events *obs.EventRing
	// health answers MsgPing/MsgHealthReport; nil answers pings with an
	// empty OK report. Armed by SetHealth.
	health *health.Monitor

	// Version pins: subscribed replicas pin the version floor they may
	// still read at, so lagging replicas don't lose the race against
	// VersionRetention and fall into refresh-and-retry storms. pinFloor
	// caches the minimum for the apply hot path.
	pinMu    sync.Mutex
	pins     map[string]uint64
	pinFloor atomic.Uint64
}

// Stats counts Page Store activity.
type Stats struct {
	mu                sync.Mutex
	LogRecordsApplied uint64
	// LogRecordsSkipped counts idempotent redeliveries: records at or
	// below a slice's applied LSN, dropped without touching a page.
	// After a checkpoint-based recovery this stays at zero for the
	// checkpointed prefix — those records are never re-sent at all.
	LogRecordsSkipped uint64
	PageReads         uint64
	BatchReads        uint64
	NDPPagesProcessed uint64
	NDPPagesSkipped   uint64
	NDPRecordsIn      uint64
	NDPRecordsOut     uint64
}

// StatsSnapshot is a copy of the counters.
type StatsSnapshot struct {
	LogRecordsApplied uint64
	LogRecordsSkipped uint64
	PageReads         uint64
	BatchReads        uint64
	NDPPagesProcessed uint64
	NDPPagesSkipped   uint64
	NDPRecordsIn      uint64
	NDPRecordsOut     uint64
}

// Option configures a Store.
type Option func(*Store)

// WithResourceControl replaces the default NDP resource controller.
func WithResourceControl(rc *ResourceControl) Option {
	return func(s *Store) { s.control = rc }
}

// WithDescriptorCache replaces the default descriptor cache (useful for
// the cache-ablation benchmark).
func WithDescriptorCache(c *DescriptorCache) Option {
	return func(s *Store) { s.descCache = c }
}

// WithCheckpoints attaches a persistent checkpoint store: Restore loads
// its slice checkpoints at startup, and Checkpoint persists the node's
// slices to it.
func WithCheckpoints(cs *pstore.Store) Option {
	return func(s *Store) { s.ckpt = cs }
}

// WithTracer arms server-side span recording for sampled requests.
func WithTracer(t *obs.Tracer) Option {
	return func(s *Store) { s.tracer = t }
}

// WithEvents arms flight-recorder event recording.
func WithEvents(r *obs.EventRing) Option {
	return func(s *Store) { s.events = r }
}

// New creates a Page Store node. The InnoDB plugin is pre-registered
// under PluginInnoDB, mirroring how "DBMS-specific shared libraries can
// be loaded as plugins into the Page Stores".
func New(name string, opts ...Option) *Store {
	s := &Store{
		name:      name,
		slices:    make(map[sliceKey]*slice),
		descCache: NewDescriptorCache(256),
		control:   NewResourceControl(4, 1024),
		plugins:   make(map[string]Plugin),
	}
	s.RegisterPlugin(innoDBPlugin{})
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name returns the node name.
func (s *Store) Name() string { return s.name }

// RegisterPlugin installs a DBMS-specific NDP plugin.
func (s *Store) RegisterPlugin(p Plugin) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plugins[p.Name()] = p
}

// HandleTraced implements cluster.TracedHandler: Handle wrapped in a
// server-side child span naming the Page Store operation.
func (s *Store) HandleTraced(tc obs.TraceContext, req any) (any, error) {
	name := "pagestore.handle"
	switch req.(type) {
	case *cluster.WriteLogsReq:
		name = "pagestore.apply"
	case *cluster.ReadPageReq:
		name = "pagestore.read"
	case *cluster.BatchReadReq:
		name = "pagestore.batchread"
	case *cluster.SliceLSNReq:
		name = "pagestore.slicelsn"
	case *cluster.VersionPinReq:
		name = "pagestore.pin"
	}
	sp := s.tracer.StartSpan(tc, name)
	resp, err := s.Handle(req)
	if sp != nil {
		if ack, ok := resp.(*cluster.Ack); ok && err == nil {
			sp.Annotate("lsn=%d", ack.LSN)
		}
		if err != nil {
			sp.Annotate("err=%v", err)
		}
		sp.End()
	}
	return resp, err
}

// Handle implements cluster.Handler.
func (s *Store) Handle(req any) (any, error) {
	switch m := req.(type) {
	case *cluster.CreateSliceReq:
		s.CreateSlice(m.Tenant, m.SliceID)
		return &cluster.Ack{}, nil
	case *cluster.WriteLogsReq:
		lsn, err := s.WriteLogs(m.Tenant, m.SliceID, m.Recs)
		if err != nil {
			return nil, err
		}
		return &cluster.Ack{LSN: lsn}, nil
	case *cluster.ReadPageReq:
		pg, err := s.ReadPage(m.Tenant, m.SliceID, m.PageID, m.LSN)
		if err != nil {
			return nil, err
		}
		return &cluster.PageResp{Page: pg}, nil
	case *cluster.BatchReadReq:
		return s.BatchRead(m)
	case *cluster.PageLSNReq:
		slices, applied, persisted := s.LSNInfo(m.Tenant)
		return &cluster.PageLSNResp{
			Slices: uint32(slices), AppliedLSN: applied, PersistedLSN: persisted,
		}, nil
	case *cluster.SliceLSNReq:
		resp := &cluster.SliceLSNResp{}
		for _, sl := range s.SliceLSNs(m.Tenant) {
			resp.Slices = append(resp.Slices, cluster.SliceLSNEntry{
				SliceID: sl.SliceID, AppliedLSN: sl.AppliedLSN,
			})
		}
		return resp, nil
	case *cluster.VersionPinReq:
		s.SetVersionPin(m.Node, m.LSN)
		return &cluster.Ack{LSN: m.LSN}, nil
	case *cluster.PingReq:
		return &cluster.PingResp{Node: s.name, Role: "pagestore",
			Seq: m.Seq, Status: s.health.Worst()}, nil
	case *cluster.HealthReportReq:
		return &cluster.HealthReportResp{Report: s.healthReport()}, nil
	default:
		return nil, fmt.Errorf("pagestore %s: unsupported request %T", s.name, req)
	}
}

// SetVersionPin records (lsn > 0) or clears (lsn == 0) node's version
// floor: the store will not drop a page version a reader at that LSN
// still needs, up to maxPinnedVersions per page. Subscribed replicas pin
// at attach and re-pin as their visible LSN advances.
func (s *Store) SetVersionPin(node string, lsn uint64) {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	if s.pins == nil {
		s.pins = make(map[string]uint64)
	}
	if lsn == 0 {
		delete(s.pins, node)
	} else {
		s.pins[node] = lsn
	}
	var min uint64
	for _, v := range s.pins {
		if min == 0 || v < min {
			min = v
		}
	}
	s.pinFloor.Store(min)
}

// VersionPinFloor returns the lowest pinned LSN across readers (0 =
// unpinned).
func (s *Store) VersionPinFloor() uint64 { return s.pinFloor.Load() }

// VersionPins returns the number of active pins.
func (s *Store) VersionPins() int {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	return len(s.pins)
}

// CreateSlice provisions an empty slice; idempotent.
func (s *Store) CreateSlice(tenant, sliceID uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := sliceKey{tenant, sliceID}
	if _, ok := s.slices[k]; !ok {
		s.slices[k] = &slice{pages: make(map[uint64]*pageVersions)}
	}
}

func (s *Store) slice(tenant, sliceID uint32) (*slice, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sl, ok := s.slices[sliceKey{tenant, sliceID}]
	if !ok {
		return nil, fmt.Errorf("pagestore %s: no slice %d/%d", s.name, tenant, sliceID)
	}
	return sl, nil
}

// WriteLogs applies a batch of encoded redo records to the slice's pages,
// in order, creating new page versions. Returns the applied LSN.
func (s *Store) WriteLogs(tenant, sliceID uint32, encoded []byte) (uint64, error) {
	defer observeInto(s.applyHist)()
	sl, err := s.slice(tenant, sliceID)
	if err != nil {
		return 0, err
	}
	recs, err := wal.DecodeAll(encoded)
	if err != nil {
		return 0, err
	}
	pinFloor := s.pinFloor.Load()
	sl.mu.Lock()
	defer sl.mu.Unlock()
	for i := range recs {
		rec := &recs[i]
		if rec.LSN <= sl.appliedLSN {
			s.stats.mu.Lock()
			s.stats.LogRecordsSkipped++
			s.stats.mu.Unlock()
			continue // idempotent redelivery
		}
		if rec.Type == wal.TypeCatalog {
			// Catalog records are frontend-only; a replayed stream may
			// still carry them. They advance the LSN but touch no page.
			sl.appliedLSN = rec.LSN
			continue
		}
		if rec.Type == wal.TypeFormatPage {
			pg := page.New(rec.PageID, rec.IndexID, rec.Level)
			pg.SetLSN(rec.LSN)
			pv := &pageVersions{}
			pv.push(pg, 0)
			sl.pages[rec.PageID] = pv
		} else {
			pv, ok := sl.pages[rec.PageID]
			if !ok {
				return 0, fmt.Errorf("pagestore %s: log for unknown page %d", s.name, rec.PageID)
			}
			// Copy-on-write: clone the latest version, apply, push.
			next := pv.latest().Clone()
			if err := wal.Apply(next, rec); err != nil {
				return 0, err
			}
			pv.push(next, pinFloor)
		}
		sl.appliedLSN = rec.LSN
		s.stats.mu.Lock()
		s.stats.LogRecordsApplied++
		s.stats.mu.Unlock()
	}
	return sl.appliedLSN, nil
}

// ReadPage returns the encoded page image at the requested LSN (0 =
// latest).
func (s *Store) ReadPage(tenant, sliceID uint32, pageID, lsn uint64) ([]byte, error) {
	defer observeInto(s.readHist)()
	sl, err := s.slice(tenant, sliceID)
	if err != nil {
		return nil, err
	}
	sl.mu.RLock()
	pv, ok := sl.pages[pageID]
	var pg *page.Page
	if ok {
		if lsn == 0 {
			pg = pv.latest()
		} else {
			pg = pv.at(lsn)
		}
	}
	sl.mu.RUnlock()
	if pg == nil {
		return nil, fmt.Errorf("pagestore %s: page %d not found (lsn %d)", s.name, pageID, lsn)
	}
	s.stats.mu.Lock()
	s.stats.PageReads++
	s.stats.mu.Unlock()
	// Return a copy: callers must never alias internal versions.
	return append([]byte(nil), pg.Bytes()...), nil
}

// Snapshot returns a copy of the store's statistics.
func (s *Store) Snapshot() StatsSnapshot {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	return StatsSnapshot{
		LogRecordsApplied: s.stats.LogRecordsApplied,
		LogRecordsSkipped: s.stats.LogRecordsSkipped,
		PageReads:         s.stats.PageReads,
		BatchReads:        s.stats.BatchReads,
		NDPPagesProcessed: s.stats.NDPPagesProcessed,
		NDPPagesSkipped:   s.stats.NDPPagesSkipped,
		NDPRecordsIn:      s.stats.NDPRecordsIn,
		NDPRecordsOut:     s.stats.NDPRecordsOut,
	}
}

// Persistent reports whether a checkpoint store is attached.
func (s *Store) Persistent() bool { return s.ckpt != nil }

// LastCheckpoint returns when the node last wrote (or, after a restart,
// found) a checkpoint artifact; zero without persistence.
func (s *Store) LastCheckpoint() time.Time {
	if s.ckpt == nil {
		return time.Time{}
	}
	return s.ckpt.LastCheckpoint()
}

// LSNInfo reports the tenant's LSN frontier on this node: the number of
// hosted slices and the minimum applied and checkpoint-persisted LSNs
// across them. A persisted minimum of 0 means at least one slice has no
// durable checkpoint — nothing below it may be garbage-collected.
func (s *Store) LSNInfo(tenant uint32) (slices int, appliedMin, persistedMin uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, sl := range s.slices {
		if tenant != 0 && k.tenant != tenant {
			continue
		}
		sl.mu.RLock()
		applied, persisted := sl.appliedLSN, sl.persistedLSN
		sl.mu.RUnlock()
		if slices == 0 || applied < appliedMin {
			appliedMin = applied
		}
		if slices == 0 || persisted < persistedMin {
			persistedMin = persisted
		}
		slices++
	}
	return slices, appliedMin, persistedMin
}

// SliceLSN is one slice's LSN frontier on this node, for stats
// endpoints and the bench harness (confirming per-slice write lanes
// advance independently: one slice's applied LSN keeps moving while a
// slow sibling's lags).
type SliceLSN struct {
	Tenant       uint32
	SliceID      uint32
	AppliedLSN   uint64
	PersistedLSN uint64
}

// SliceLSNs reports every hosted slice's applied/persisted LSNs (all
// tenants when tenant is 0), sorted by tenant then slice.
func (s *Store) SliceLSNs(tenant uint32) []SliceLSN {
	s.mu.RLock()
	out := make([]SliceLSN, 0, len(s.slices))
	for k, sl := range s.slices {
		if tenant != 0 && k.tenant != tenant {
			continue
		}
		sl.mu.RLock()
		out = append(out, SliceLSN{
			Tenant: k.tenant, SliceID: k.sliceID,
			AppliedLSN: sl.appliedLSN, PersistedLSN: sl.persistedLSN,
		})
		sl.mu.RUnlock()
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].SliceID < out[j].SliceID
	})
	return out
}

// RestoreStats reports what Restore loaded from the checkpoint store.
type RestoreStats struct {
	Slices  int
	Pages   int
	Corrupt int
	// MinAppliedLSN is the lowest restored applied LSN (0 when nothing
	// was restored); log replay must start at or below it.
	MinAppliedLSN uint64
}

// Restore loads every valid slice checkpoint into memory. It must run
// on a fresh store, before any slice is created. Corrupt checkpoint
// files are skipped (counted in the stats): those slices fall back to
// full log replay.
func (s *Store) Restore() (RestoreStats, error) {
	var st RestoreStats
	if s.ckpt == nil {
		return st, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.slices) > 0 {
		return st, fmt.Errorf("pagestore %s: Restore on a non-empty store", s.name)
	}
	cks, corrupt, err := s.ckpt.LoadSlices()
	if err != nil {
		return st, fmt.Errorf("pagestore %s: %w", s.name, err)
	}
	st.Corrupt = len(corrupt)
	for _, ck := range cks {
		sl := &slice{
			pages:        make(map[uint64]*pageVersions, len(ck.Pages)),
			appliedLSN:   ck.AppliedLSN,
			persistedLSN: ck.AppliedLSN,
		}
		for _, img := range ck.Pages {
			pg, err := page.FromBytes(append([]byte(nil), img.Data...))
			if err != nil {
				return st, fmt.Errorf("pagestore %s: checkpointed page %d: %w", s.name, img.PageID, err)
			}
			pv := &pageVersions{}
			pv.push(pg, 0)
			sl.pages[img.PageID] = pv
		}
		s.slices[sliceKey{ck.Tenant, ck.SliceID}] = sl
		st.Slices++
		st.Pages += len(ck.Pages)
		if st.Slices == 1 || ck.AppliedLSN < st.MinAppliedLSN {
			st.MinAppliedLSN = ck.AppliedLSN
		}
	}
	return st, nil
}

// CheckpointStats reports one Checkpoint call.
type CheckpointStats struct {
	// SlicesWritten counts slices whose checkpoint file was (re)written;
	// SlicesClean counts slices already persisted at their applied LSN.
	SlicesWritten int
	SlicesClean   int
	Pages         int
	Bytes         int64
	// PersistedLSN is the node's minimum persisted LSN across all
	// slices after the checkpoint (0 when the node hosts no slices).
	PersistedLSN uint64
}

// Checkpoint persists every dirty slice (applied LSN ahead of the last
// checkpoint) to the attached checkpoint store: the latest version of
// each page plus the applied LSN, written atomically per slice. Page
// images are copy-on-write, so the snapshot is taken under a short read
// lock and written to disk outside it.
func (s *Store) Checkpoint() (CheckpointStats, error) {
	var st CheckpointStats
	if s.ckpt == nil {
		return st, fmt.Errorf("pagestore %s: no checkpoint store attached", s.name)
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.RLock()
	keys := make([]sliceKey, 0, len(s.slices))
	for k := range s.slices {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	// Deterministic order keeps directory churn (and tests) predictable.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tenant != keys[j].tenant {
			return keys[i].tenant < keys[j].tenant
		}
		return keys[i].sliceID < keys[j].sliceID
	})
	first := true
	for _, k := range keys {
		s.mu.RLock()
		sl := s.slices[k]
		s.mu.RUnlock()
		if sl == nil {
			continue
		}
		sl.mu.RLock()
		applied, persisted := sl.appliedLSN, sl.persistedLSN
		var snap *pstore.SliceCheckpoint
		if applied > persisted {
			snap = &pstore.SliceCheckpoint{
				Tenant: k.tenant, SliceID: k.sliceID, AppliedLSN: applied,
			}
			for id, pv := range sl.pages {
				if pg := pv.latest(); pg != nil {
					// Bytes aliases the immutable version buffer; the
					// apply path clones before mutating, so writing it
					// outside the lock is safe.
					snap.Pages = append(snap.Pages, pstore.PageImage{PageID: id, Data: pg.Bytes()})
				}
			}
		}
		sl.mu.RUnlock()
		if snap == nil {
			st.SlicesClean++
		} else {
			sort.Slice(snap.Pages, func(i, j int) bool { return snap.Pages[i].PageID < snap.Pages[j].PageID })
			n, err := s.ckpt.WriteSlice(snap)
			if err != nil {
				return st, fmt.Errorf("pagestore %s: %w", s.name, err)
			}
			st.SlicesWritten++
			st.Pages += len(snap.Pages)
			st.Bytes += n
			sl.mu.Lock()
			if applied > sl.persistedLSN {
				sl.persistedLSN = applied
			}
			persisted = sl.persistedLSN
			sl.mu.Unlock()
		}
		if first || persisted < st.PersistedLSN {
			st.PersistedLSN = persisted
		}
		first = false
	}
	if st.SlicesWritten > 0 {
		s.events.Record(obs.EventCheckpoint, "%s: %d slices, %d pages, %d bytes, persisted LSN %d",
			s.name, st.SlicesWritten, st.Pages, st.Bytes, st.PersistedLSN)
	}
	return st, nil
}

// DescCacheStats exposes descriptor cache statistics.
func (s *Store) DescCacheStats() (hits, misses uint64) {
	return s.descCache.Stats()
}

// NDPQueueDepth reports how many NDP pages are admitted right now
// (queued or processing) — the store-side load signal behind the
// frontend's least-loaded scan routing.
func (s *Store) NDPQueueDepth() int { return s.control.QueueDepth() }

// NodeStats is one Page Store's observable state, for stats endpoints
// and operator tooling.
type NodeStats struct {
	Name       string
	Persistent bool
	Slices     int
	// AppliedLSN/PersistedLSN are the node-wide minimums across slices
	// (all tenants).
	AppliedLSN   uint64
	PersistedLSN uint64
	// LastCheckpoint is when the newest checkpoint artifact was written
	// (zero without persistence or before the first checkpoint);
	// CheckpointAgeSeconds is the derived age, -1 when unknown.
	LastCheckpoint       time.Time
	CheckpointAgeSeconds float64
	Stats                StatsSnapshot
	// DescCacheHits/DescCacheMisses count NDP descriptor cache lookups
	// ("Page Store caches the descriptors ... the database sends only
	// the descriptor's identifier with each request"); NDPQueueDepth is
	// the current resource-control admission count (queued +
	// processing).
	DescCacheHits   uint64
	DescCacheMisses uint64
	NDPQueueDepth   int
	// PerSlice breaks the LSN frontier down by hosted slice.
	PerSlice []SliceLSN
}

// NodeStats snapshots the store's observable state.
func (s *Store) NodeStats() NodeStats {
	slices, applied, persisted := s.LSNInfo(0)
	ns := NodeStats{
		Name:                 s.name,
		Persistent:           s.Persistent(),
		Slices:               slices,
		AppliedLSN:           applied,
		PersistedLSN:         persisted,
		LastCheckpoint:       s.LastCheckpoint(),
		CheckpointAgeSeconds: -1,
		Stats:                s.Snapshot(),
		NDPQueueDepth:        s.NDPQueueDepth(),
		PerSlice:             s.SliceLSNs(0),
	}
	ns.DescCacheHits, ns.DescCacheMisses = s.DescCacheStats()
	if !ns.LastCheckpoint.IsZero() {
		ns.CheckpointAgeSeconds = time.Since(ns.LastCheckpoint).Seconds()
	}
	return ns
}
