// Package pagestore implements the Page Store service of §II and §IV-D:
// a multi-tenant storage node that hosts slices from multiple database
// frontends, keeps pages up to date by applying redo log records, serves
// page reads at requested LSNs, and performs best-effort NDP processing
// through DBMS-specific plugins.
package pagestore

import (
	"fmt"
	"sync"

	"taurus/internal/cluster"
	"taurus/internal/page"
	"taurus/internal/wal"
)

// VersionRetention is how many historical versions of a page a store
// keeps so that LSN-stamped batch reads can be served while writers move
// the page forward (§IV-C4's LSN versioning).
const VersionRetention = 8

type sliceKey struct {
	tenant  uint32
	sliceID uint32
}

// pageVersions is the per-page version chain, ascending LSN.
type pageVersions struct {
	versions []*page.Page
}

func (pv *pageVersions) latest() *page.Page {
	if len(pv.versions) == 0 {
		return nil
	}
	return pv.versions[len(pv.versions)-1]
}

// at returns the newest version with LSN <= lsn (or nil).
func (pv *pageVersions) at(lsn uint64) *page.Page {
	for i := len(pv.versions) - 1; i >= 0; i-- {
		if pv.versions[i].LSN() <= lsn {
			return pv.versions[i]
		}
	}
	return nil
}

func (pv *pageVersions) push(pg *page.Page) {
	pv.versions = append(pv.versions, pg)
	if len(pv.versions) > VersionRetention {
		pv.versions = pv.versions[len(pv.versions)-VersionRetention:]
	}
}

// slice holds the pages of one 10 GB database segment (scaled down here;
// slice sizing is the SAL's concern).
type slice struct {
	mu         sync.RWMutex
	pages      map[uint64]*pageVersions
	appliedLSN uint64
}

// Store is one Page Store node.
type Store struct {
	name string

	mu     sync.RWMutex
	slices map[sliceKey]*slice

	// NDP machinery.
	descCache *DescriptorCache
	control   *ResourceControl
	plugins   map[string]Plugin

	// Metrics.
	stats Stats
}

// Stats counts Page Store activity.
type Stats struct {
	mu                sync.Mutex
	LogRecordsApplied uint64
	PageReads         uint64
	BatchReads        uint64
	NDPPagesProcessed uint64
	NDPPagesSkipped   uint64
	NDPRecordsIn      uint64
	NDPRecordsOut     uint64
}

// StatsSnapshot is a copy of the counters.
type StatsSnapshot struct {
	LogRecordsApplied uint64
	PageReads         uint64
	BatchReads        uint64
	NDPPagesProcessed uint64
	NDPPagesSkipped   uint64
	NDPRecordsIn      uint64
	NDPRecordsOut     uint64
}

// Option configures a Store.
type Option func(*Store)

// WithResourceControl replaces the default NDP resource controller.
func WithResourceControl(rc *ResourceControl) Option {
	return func(s *Store) { s.control = rc }
}

// WithDescriptorCache replaces the default descriptor cache (useful for
// the cache-ablation benchmark).
func WithDescriptorCache(c *DescriptorCache) Option {
	return func(s *Store) { s.descCache = c }
}

// New creates a Page Store node. The InnoDB plugin is pre-registered
// under PluginInnoDB, mirroring how "DBMS-specific shared libraries can
// be loaded as plugins into the Page Stores".
func New(name string, opts ...Option) *Store {
	s := &Store{
		name:      name,
		slices:    make(map[sliceKey]*slice),
		descCache: NewDescriptorCache(256),
		control:   NewResourceControl(4, 1024),
		plugins:   make(map[string]Plugin),
	}
	s.RegisterPlugin(innoDBPlugin{})
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name returns the node name.
func (s *Store) Name() string { return s.name }

// RegisterPlugin installs a DBMS-specific NDP plugin.
func (s *Store) RegisterPlugin(p Plugin) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plugins[p.Name()] = p
}

// Handle implements cluster.Handler.
func (s *Store) Handle(req any) (any, error) {
	switch m := req.(type) {
	case *cluster.CreateSliceReq:
		s.CreateSlice(m.Tenant, m.SliceID)
		return &cluster.Ack{}, nil
	case *cluster.WriteLogsReq:
		lsn, err := s.WriteLogs(m.Tenant, m.SliceID, m.Recs)
		if err != nil {
			return nil, err
		}
		return &cluster.Ack{LSN: lsn}, nil
	case *cluster.ReadPageReq:
		pg, err := s.ReadPage(m.Tenant, m.SliceID, m.PageID, m.LSN)
		if err != nil {
			return nil, err
		}
		return &cluster.PageResp{Page: pg}, nil
	case *cluster.BatchReadReq:
		return s.BatchRead(m)
	default:
		return nil, fmt.Errorf("pagestore %s: unsupported request %T", s.name, req)
	}
}

// CreateSlice provisions an empty slice; idempotent.
func (s *Store) CreateSlice(tenant, sliceID uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := sliceKey{tenant, sliceID}
	if _, ok := s.slices[k]; !ok {
		s.slices[k] = &slice{pages: make(map[uint64]*pageVersions)}
	}
}

func (s *Store) slice(tenant, sliceID uint32) (*slice, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sl, ok := s.slices[sliceKey{tenant, sliceID}]
	if !ok {
		return nil, fmt.Errorf("pagestore %s: no slice %d/%d", s.name, tenant, sliceID)
	}
	return sl, nil
}

// WriteLogs applies a batch of encoded redo records to the slice's pages,
// in order, creating new page versions. Returns the applied LSN.
func (s *Store) WriteLogs(tenant, sliceID uint32, encoded []byte) (uint64, error) {
	sl, err := s.slice(tenant, sliceID)
	if err != nil {
		return 0, err
	}
	recs, err := wal.DecodeAll(encoded)
	if err != nil {
		return 0, err
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	for i := range recs {
		rec := &recs[i]
		if rec.LSN <= sl.appliedLSN {
			continue // idempotent redelivery
		}
		if rec.Type == wal.TypeCatalog {
			// Catalog records are frontend-only; a replayed stream may
			// still carry them. They advance the LSN but touch no page.
			sl.appliedLSN = rec.LSN
			continue
		}
		if rec.Type == wal.TypeFormatPage {
			pg := page.New(rec.PageID, rec.IndexID, rec.Level)
			pg.SetLSN(rec.LSN)
			pv := &pageVersions{}
			pv.push(pg)
			sl.pages[rec.PageID] = pv
		} else {
			pv, ok := sl.pages[rec.PageID]
			if !ok {
				return 0, fmt.Errorf("pagestore %s: log for unknown page %d", s.name, rec.PageID)
			}
			// Copy-on-write: clone the latest version, apply, push.
			next := pv.latest().Clone()
			if err := wal.Apply(next, rec); err != nil {
				return 0, err
			}
			pv.push(next)
		}
		sl.appliedLSN = rec.LSN
		s.stats.mu.Lock()
		s.stats.LogRecordsApplied++
		s.stats.mu.Unlock()
	}
	return sl.appliedLSN, nil
}

// ReadPage returns the encoded page image at the requested LSN (0 =
// latest).
func (s *Store) ReadPage(tenant, sliceID uint32, pageID, lsn uint64) ([]byte, error) {
	sl, err := s.slice(tenant, sliceID)
	if err != nil {
		return nil, err
	}
	sl.mu.RLock()
	pv, ok := sl.pages[pageID]
	var pg *page.Page
	if ok {
		if lsn == 0 {
			pg = pv.latest()
		} else {
			pg = pv.at(lsn)
		}
	}
	sl.mu.RUnlock()
	if pg == nil {
		return nil, fmt.Errorf("pagestore %s: page %d not found (lsn %d)", s.name, pageID, lsn)
	}
	s.stats.mu.Lock()
	s.stats.PageReads++
	s.stats.mu.Unlock()
	// Return a copy: callers must never alias internal versions.
	return append([]byte(nil), pg.Bytes()...), nil
}

// Snapshot returns a copy of the store's statistics.
func (s *Store) Snapshot() StatsSnapshot {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	return StatsSnapshot{
		LogRecordsApplied: s.stats.LogRecordsApplied,
		PageReads:         s.stats.PageReads,
		BatchReads:        s.stats.BatchReads,
		NDPPagesProcessed: s.stats.NDPPagesProcessed,
		NDPPagesSkipped:   s.stats.NDPPagesSkipped,
		NDPRecordsIn:      s.stats.NDPRecordsIn,
		NDPRecordsOut:     s.stats.NDPRecordsOut,
	}
}

// DescCacheStats exposes descriptor cache statistics.
func (s *Store) DescCacheStats() (hits, misses uint64) {
	return s.descCache.Stats()
}
