package plan

import (
	"fmt"
	"strings"

	"taurus/internal/core"
	"taurus/internal/core/ir"
	"taurus/internal/engine"
	"taurus/internal/exec"
	"taurus/internal/expr"
	"taurus/internal/types"
)

// AccessSpec describes one table access in a finalized plan, the unit
// the NDP post-processor works on.
type AccessSpec struct {
	Table string
	Index *engine.Index
	// Predicate is the complete single-table condition (index schema
	// ordinals); the classical pushdown has already moved it into the
	// table access. Cross-table predicates never appear here (§V-B1).
	Predicate *expr.Expr
	// Output lists the index-schema ordinals the query needs.
	Output []int
	// Range optionally bounds the scan on the leading key column
	// (inclusive); derived from Predicate by the caller.
	Range *KeyRange
	// PointLookup marks accesses that read only a few rows; NDP is
	// never considered for them (§IV-B).
	PointLookup bool
	// LastInBlock marks the last table accessed in its query block —
	// a precondition for aggregation pushdown (§V-C).
	LastInBlock bool
	// Aggs describe the block's aggregates (candidates for pushdown)
	// when LastInBlock. GroupBy uses output-layout ordinals.
	Aggs    []AggCandidate
	GroupBy []int
	// Residual, set by Decide, holds predicate conjuncts that could not
	// be pushed (evaluated by the executor).
	Residual *expr.Expr
}

// AggCandidate is one aggregate the block computes.
type AggCandidate struct {
	Fn core.AggFn
	// AvgOf marks a pseudo-candidate produced by AVG decomposition (not
	// set by callers; used by BuildAggScan).
	// ArgCol is the argument ordinal in the scan output layout (-1 for
	// COUNT(*)).
	ArgCol int
	// ArgExpr optionally computes the argument from the output layout
	// (e.g. l_extendedprice * (1 - l_discount)); it must be
	// IR-compilable to push.
	ArgExpr *expr.Expr
	// Avg marks AVG aggregates: decomposed into SUM+COUNT for pushdown.
	Avg  bool
	Name string
}

// KeyRange bounds the leading key column.
type KeyRange struct {
	Start, End         types.Row // encoded via types.EncodeKey at build
	StartOpen, EndOpen bool      // reserved; bounds are inclusive
}

// Decision is the outcome of the NDP post-processing for one access.
type Decision struct {
	Projection  bool
	Predicate   bool
	Aggregation bool
	// EstimatedIOPages is the estimate against the threshold.
	EstimatedIOPages int64
	// Selectivity is the estimated predicate selectivity.
	Selectivity float64
	// WidthRatio is projected/full width.
	WidthRatio float64
	// Reasons collects human-readable rationale for EXPLAIN/debugging.
	Reasons []string
}

// NDPEnabled reports whether the access becomes an NDP scan at all.
func (d Decision) NDPEnabled() bool { return d.Projection || d.Predicate || d.Aggregation }

// Decide runs the paper's post-processing rules for one table access.
// "For each table access in the final plan, the optimizer considers NDP
// column projection and NDP predicate evaluation. For the last table
// access in a query block, the optimizer also considers NDP aggregation
// ... If the optimizer enables any of the three NDP features, the table
// access is marked as an 'NDP scan'" (§IV-B).
func (c *Catalog) Decide(a *AccessSpec) Decision {
	var d Decision
	note := func(f string, args ...any) { d.Reasons = append(d.Reasons, fmt.Sprintf(f, args...)) }

	if a.PointLookup {
		note("point lookup: NDP not considered")
		a.Residual = nil
		return d
	}
	st := c.Stats(a.Table)
	if st == nil {
		note("no statistics: NDP not considered")
		return d
	}
	// Estimated I/O = estimated scan pages − buffer-resident pages for
	// this index (§VII-C footnote: "if 5,000 of the table's pages are
	// in the buffer pool, only about 9,000 I/O's can be expected").
	scanPages := st.LeafPages
	d.Selectivity = c.Selectivity(a.Table, a.Index, a.Predicate)
	if a.Range != nil {
		// A range scan touches roughly the selectivity fraction of the
		// leaf level.
		scanPages = int64(float64(scanPages)*rangeFraction(c, a)) + 1
	}
	resident := int64(c.Eng.Pool().ResidentByIndex()[a.Index.ID])
	d.EstimatedIOPages = scanPages - resident
	if d.EstimatedIOPages < 0 {
		d.EstimatedIOPages = 0
	}
	if d.EstimatedIOPages < c.NDPPageThreshold {
		note("estimated I/O %d pages below threshold %d (scan %d, resident %d)",
			d.EstimatedIOPages, c.NDPPageThreshold, scanPages, resident)
		return d
	}

	// Projection rule (§V-A): compare needed width against full width.
	fullW := indexWidth(a.Index, st, nil)
	projW := indexWidth(a.Index, st, a.Output)
	if fullW > 0 {
		d.WidthRatio = float64(projW) / float64(fullW)
	}
	if len(a.Output) > 0 && len(a.Output) < a.Index.Schema.Len() && d.WidthRatio <= c.ProjectionBenefit {
		d.Projection = true
		note("projection pushed: width ratio %.2f ≤ %.2f", d.WidthRatio, c.ProjectionBenefit)
	} else if len(a.Output) > 0 && len(a.Output) < a.Index.Schema.Len() {
		note("projection not pushed: width ratio %.2f", d.WidthRatio)
	}

	// Predicate rule (§V-B1): split conjuncts into NDP-eligible and
	// residual; push only if sufficiently selective — unless pushing
	// unlocks aggregation pushdown, which collapses the data stream
	// regardless of filter selectivity (the Q001 COUNT(*) pattern).
	var pushable, residual []*expr.Expr
	for _, cj := range expr.Conjuncts(a.Predicate) {
		if ir.Eligible(cj) {
			pushable = append(pushable, cj)
		} else {
			residual = append(residual, cj)
		}
	}
	aggPossible := len(a.Aggs) > 0 && a.LastInBlock && len(residual) == 0 &&
		(len(a.GroupBy) == 0 || groupSatisfiedByIndex(a)) && aggsPushable(a)
	switch {
	case len(pushable) > 0 && d.Selectivity <= c.MaxNDPSelectivity:
		d.Predicate = true
		note("predicate pushed: selectivity %.3f ≤ %.2f (%d conjuncts, %d residual)",
			d.Selectivity, c.MaxNDPSelectivity, len(pushable), len(residual))
	case len(pushable) > 0 && aggPossible:
		d.Predicate = true
		note("predicate pushed despite selectivity %.3f: enables aggregation pushdown",
			d.Selectivity)
	case len(pushable) > 0:
		note("predicate not pushed: selectivity %.3f", d.Selectivity)
		residual = append(pushable, residual...)
		pushable = nil
	}
	a.Residual = expr.AndAll(residual...)

	// Aggregation rule (§V-C): last table in the block, no residual
	// predicates, grouping satisfied by the index order.
	if len(a.Aggs) > 0 {
		switch {
		case !a.LastInBlock:
			note("aggregation not pushed: not the last table in the query block")
		case a.Residual != nil:
			note("aggregation not pushed: residual predicates remain")
		case len(a.GroupBy) > 0 && !groupSatisfiedByIndex(a):
			note("aggregation not pushed: index does not satisfy GROUP BY order")
		case !aggsPushable(a):
			note("aggregation not pushed: aggregate not supported by Page Stores")
		default:
			d.Aggregation = true
			note("aggregation pushed: %d aggregates", len(a.Aggs))
		}
	}
	return d
}

// rangeFraction estimates what fraction of the leaf level a bounded scan
// touches.
func rangeFraction(c *Catalog, a *AccessSpec) float64 {
	st := c.Stats(a.Table)
	if st == nil || a.Range == nil {
		return 1
	}
	keyOrd := a.Index.KeyCols[0]
	tblOrd := a.Index.TableOrds[keyOrd]
	if tblOrd >= len(st.Cols) {
		return 1
	}
	cs := st.Cols[tblOrd]
	if cs.Min.IsNull() || cs.Max.IsNull() || cs.Min.K == types.KindString {
		return 1
	}
	lo, hi := cs.Min.Float(), cs.Max.Float()
	if hi <= lo {
		return 1
	}
	s, e := lo, hi
	if len(a.Range.Start) > 0 {
		s = a.Range.Start[0].Float()
	}
	if len(a.Range.End) > 0 {
		e = a.Range.End[0].Float()
	}
	return clamp01((e - s) / (hi - lo))
}

// indexWidth estimates the stored width of the given ordinals (nil =
// all) using stats-backed average lengths.
func indexWidth(idx *engine.Index, st *TableStats, ords []int) int {
	w := 0
	use := ords
	if use == nil {
		use = make([]int, idx.Schema.Len())
		for i := range use {
			use[i] = i
		}
	}
	for _, o := range use {
		col := idx.Schema.Cols[o]
		cw := col.Width()
		if col.Kind == types.KindString {
			if t := idx.TableOrds[o]; st != nil && t < len(st.Cols) && st.Cols[t].AvgLen > 0 {
				cw = st.Cols[t].AvgLen
			}
		}
		w += cw
	}
	return w
}

// groupSatisfiedByIndex checks that the GROUP BY columns are a prefix of
// the index key in order. GroupBy ordinals address the output layout, so
// map back through Output first.
func groupSatisfiedByIndex(a *AccessSpec) bool {
	if len(a.GroupBy) > len(a.Index.KeyCols) {
		return false
	}
	for i, g := range a.GroupBy {
		ord := g
		if len(a.Output) > 0 {
			if g >= len(a.Output) {
				return false
			}
			ord = a.Output[g]
		}
		if a.Index.KeyCols[i] != ord {
			return false
		}
	}
	return true
}

// aggsPushable verifies every aggregate candidate can be expressed as a
// core.AggSpec (IR-compilable argument or plain column).
func aggsPushable(a *AccessSpec) bool {
	for _, ag := range a.Aggs {
		if ag.ArgExpr != nil && !ir.Eligible(ag.ArgExpr) {
			return false
		}
	}
	return true
}

// BuildScan materializes the access as an executor operator according to
// the decision. Residual predicates are evaluated by a Filter placed
// directly above the scan ("the residual non-NDP predicates are
// evaluated by the SQL executor", §V-B1); the columns they reference are
// appended to the projected output so the executor can see them, leaving
// the caller's requested ordinals unchanged. Aggregation-pushed accesses
// return an NDPAggScan.
func (c *Catalog) BuildScan(a *AccessSpec, d Decision) (exec.Operator, error) {
	outCols := a.Output
	if len(outCols) == 0 {
		outCols = make([]int, a.Index.Schema.Len())
		for i := range outCols {
			outCols[i] = i
		}
	}
	// Extend the read set with residual-predicate columns (appended so
	// existing ordinals stay stable) and remap the residual onto the
	// output layout.
	var residual *expr.Expr
	if a.Residual != nil {
		pos := make(map[int]int, len(outCols))
		for i, o := range outCols {
			pos[o] = i
		}
		remap := make(map[int]int)
		for col := range a.Residual.ColumnSet() {
			if p, ok := pos[col]; ok {
				remap[col] = p
				continue
			}
			outCols = append(outCols, col)
			pos[col] = len(outCols) - 1
			remap[col] = len(outCols) - 1
		}
		residual = a.Residual.Remap(remap)
	}
	names := make([]string, len(outCols))
	for i, o := range outCols {
		names[i] = a.Index.Schema.Cols[o].Name
	}
	withResidual := func(op exec.Operator) exec.Operator {
		if residual == nil {
			return op
		}
		return &exec.Filter{Input: op, Pred: residual}
	}
	opts := engine.ScanOptions{
		Index:      a.Index,
		Predicate:  a.Predicate,
		Projection: outCols,
	}
	if a.Range != nil {
		if len(a.Range.Start) > 0 {
			opts.Start = types.EncodeKey(nil, a.Range.Start)
		}
		if len(a.Range.End) > 0 {
			// Bounds are prefix-inclusive: composite index keys that
			// extend the End prefix must still fall inside the range
			// (exact row-level filtering is the predicate's job).
			opts.End = append(types.EncodeKey(nil, a.Range.End), 0xFF)
		}
	}
	if !d.NDPEnabled() {
		return withResidual(&exec.TableScan{Opts: opts, Cols: names}), nil
	}
	// Aggregation pushdown requires the descriptor's layout to match
	// the scan's projected output layout, so it implies projection.
	ndp := &engine.NDPPush{
		PushPredicate:  d.Predicate,
		PushProjection: d.Projection || d.Aggregation,
	}
	opts.NDP = ndp
	if !d.Aggregation {
		return withResidual(&exec.TableScan{Opts: opts, Cols: names}), nil
	}
	// Aggregation pushdown: translate candidates to core specs with AVG
	// decomposition.
	specs, outputs, err := translateAggs(a, outCols)
	if err != nil {
		return nil, err
	}
	ndp.Aggs = specs
	ndp.GroupBy = a.GroupBy
	return &exec.NDPAggScan{Opts: opts, Outputs: outputs}, nil
}

// translateAggs converts candidates into pushed core.AggSpecs plus the
// executor-side finalization mapping. AVG(x) becomes SUM(x)+COUNT(x):
// "AVG is computed by keeping SUM and COUNT values" (§III).
func translateAggs(a *AccessSpec, outCols []int) ([]core.AggSpec, []exec.AggOutput, error) {
	var specs []core.AggSpec
	var outputs []exec.AggOutput
	addSpec := func(fn core.AggFn, cand AggCandidate) (int, error) {
		spec := core.AggSpec{Fn: fn, ArgCol: int32(cand.ArgCol)}
		if cand.ArgExpr != nil {
			prog, err := ir.Compile(cand.ArgExpr, len(outCols))
			if err != nil {
				return 0, err
			}
			spec.ArgIR = prog.Encode()
			spec.ArgCol = -1
		}
		specs = append(specs, spec)
		return len(specs) - 1, nil
	}
	for _, cand := range a.Aggs {
		if cand.Avg {
			sumIdx, err := addSpec(core.AggSum, cand)
			if err != nil {
				return nil, nil, err
			}
			cntFn := core.AggCount
			if cand.ArgCol < 0 && cand.ArgExpr == nil {
				cntFn = core.AggCountStar
			}
			cntIdx, err := addSpec(cntFn, cand)
			if err != nil {
				return nil, nil, err
			}
			outputs = append(outputs, exec.AggOutput{Spec: sumIdx, AvgCount: cntIdx, Name: cand.Name})
			continue
		}
		idx, err := addSpec(cand.Fn, cand)
		if err != nil {
			return nil, nil, err
		}
		outputs = append(outputs, exec.AggOutput{Spec: idx, AvgCount: -1, Name: cand.Name})
	}
	return specs, outputs, nil
}

// BuildAccess is the one-stop entry: it runs the NDP decision (when ndp
// is true), builds the scan, and — when the access carries aggregates
// that were NOT pushed — tops it with the executor HashAgg fallback, so
// callers get identical semantics with NDP on or off. having filters
// final aggregate rows (output-layout ordinals).
func (c *Catalog) BuildAccess(a *AccessSpec, ndp bool, having *expr.Expr) (exec.Operator, Decision, error) {
	var dec Decision
	if ndp {
		dec = c.Decide(a)
	} else {
		a.Residual = nil
	}
	op, err := c.BuildScan(a, dec)
	if err != nil {
		return nil, dec, err
	}
	if len(a.Aggs) == 0 {
		return op, dec, nil
	}
	if dec.Aggregation {
		op.(*exec.NDPAggScan).Having = having
		return op, dec, nil
	}
	groupExprs := make([]*expr.Expr, len(a.GroupBy))
	groupNames := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groupExprs[i] = expr.Col(g, "")
		groupNames[i] = a.Index.Schema.Cols[a.Output[g]].Name
	}
	defs := make([]exec.AggDef, len(a.Aggs))
	for i, cand := range a.Aggs {
		def := exec.AggDef{Name: cand.Name}
		switch {
		case cand.Avg:
			def.Fn = exec.AggFnAvg
		case cand.Fn == core.AggCountStar:
			def.Fn = exec.AggFnCountStar
		case cand.Fn == core.AggCount:
			def.Fn = exec.AggFnCount
		case cand.Fn == core.AggSum:
			def.Fn = exec.AggFnSum
		case cand.Fn == core.AggMin:
			def.Fn = exec.AggFnMin
		default:
			def.Fn = exec.AggFnMax
		}
		if cand.ArgExpr != nil {
			def.Arg = cand.ArgExpr
		} else if cand.ArgCol >= 0 {
			def.Arg = expr.Col(cand.ArgCol, "")
		}
		defs[i] = def
	}
	return &exec.HashAgg{
		Input: op, GroupBy: groupExprs, GroupNames: groupNames,
		Aggs: defs, Having: having,
	}, dec, nil
}

// ExplainExtras renders the Listing 2 EXPLAIN extras for one access.
func ExplainExtras(a *AccessSpec, d Decision) string {
	var parts []string
	if d.Predicate && a.Predicate != nil {
		pushed := make([]*expr.Expr, 0)
		for _, cj := range expr.Conjuncts(a.Predicate) {
			if ir.Eligible(cj) {
				pushed = append(pushed, cj)
			}
		}
		parts = append(parts, fmt.Sprintf("Using pushed NDP condition (%s)", expr.AndAll(pushed...)))
	}
	if d.Projection {
		parts = append(parts, "Using pushed NDP columns")
	}
	if d.Aggregation {
		parts = append(parts, "Using pushed NDP aggregate")
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, "; ")
}
