// Package plan implements the query-planning layer above the executor:
// table statistics, selectivity estimation, and — the paper's §IV-B
// contribution — the NDP post-processing step that decides, per table
// access, whether to push projection, predicates, and aggregation to
// Page Stores. "Treat NDP as a query plan post-processing step: finalize
// a query plan without considering NDP, and then consider enabling NDP
// for each of the table accesses in the plan."
package plan

import (
	"fmt"
	"sync"

	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/expr"
	"taurus/internal/page"
	"taurus/internal/types"
)

// ColStats summarizes one column.
type ColStats struct {
	Distinct int64
	Min, Max types.Datum
	// AvgLen is the average encoded width (variable-length columns).
	AvgLen int
}

// TableStats summarizes one table (primary index).
type TableStats struct {
	Rows int64
	// LeafPages estimates the primary index leaf page count.
	LeafPages int64
	Cols      []ColStats
}

// Catalog holds statistics and optimizer thresholds. The stats map is
// guarded so concurrent sessions (the pipelined write path commits DML
// from many goroutines, each refreshing statistics) can Analyze and
// plan at the same time.
type Catalog struct {
	Eng     *engine.Engine
	statsMu sync.RWMutex
	stats   map[string]*TableStats

	// NDPPageThreshold is the minimum estimated I/O (in pages) for a
	// scan to qualify for NDP: "NDP is enabled on a scan only if the
	// scan is estimated to cause at least 10,000 pages of I/O"
	// (§VII-C). Scaled-down databases scale this down too.
	NDPPageThreshold int64
	// ProjectionBenefit is the maximum projected/full width ratio that
	// still enables NDP column projection (§V-A: "when the width
	// reduction is high enough").
	ProjectionBenefit float64
	// MaxNDPSelectivity is the largest estimated predicate selectivity
	// that still enables NDP filtering (§V-B1: "enables NDP only if the
	// predicates are sufficiently selective").
	MaxNDPSelectivity float64
}

// NewCatalog creates a catalog with the paper's defaults.
func NewCatalog(eng *engine.Engine) *Catalog {
	return &Catalog{
		Eng:               eng,
		stats:             make(map[string]*TableStats),
		NDPPageThreshold:  10000,
		ProjectionBenefit: 0.8,
		MaxNDPSelectivity: 0.75,
	}
}

// SetStats installs externally computed statistics (the TPC-H loader
// knows exact counts).
func (c *Catalog) SetStats(table string, s *TableStats) {
	c.statsMu.Lock()
	c.stats[table] = s
	c.statsMu.Unlock()
}

// Stats returns statistics for a table (nil if unknown).
func (c *Catalog) Stats(table string) *TableStats {
	c.statsMu.RLock()
	defer c.statsMu.RUnlock()
	return c.stats[table]
}

// Analyze computes statistics with a full scan, like ANALYZE TABLE.
func (c *Catalog) Analyze(table string) (*TableStats, error) {
	tbl, err := c.Eng.Table(table)
	if err != nil {
		return nil, err
	}
	n := tbl.Schema.Len()
	st := &TableStats{Cols: make([]ColStats, n)}
	distinct := make([]map[string]bool, n)
	lenSum := make([]int64, n)
	for i := range distinct {
		distinct[i] = make(map[string]bool)
	}
	err = c.Eng.Scan(engine.ScanOptions{Index: tbl.Primary}, func(row types.Row, _ []core.AggState) error {
		st.Rows++
		for i, d := range row {
			if d.IsNull() {
				continue
			}
			cs := &st.Cols[i]
			if cs.Min.IsNull() || types.Compare(d, cs.Min) < 0 {
				cs.Min = d
			}
			if cs.Max.IsNull() || types.Compare(d, cs.Max) > 0 {
				cs.Max = d
			}
			if len(distinct[i]) < 65536 {
				distinct[i][string(types.EncodeKey(nil, types.Row{d}))] = true
			}
			if d.K == types.KindString {
				lenSum[i] += int64(len(d.S))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range st.Cols {
		st.Cols[i].Distinct = int64(len(distinct[i]))
		if st.Rows > 0 && tbl.Schema.Cols[i].Kind == types.KindString {
			st.Cols[i].AvgLen = int(lenSum[i] / st.Rows)
		}
	}
	st.LeafPages = EstimateLeafPages(tbl.Schema, st)
	c.SetStats(table, st)
	return st, nil
}

// EstimateLeafPages estimates the primary leaf page count from row width
// and cardinality.
func EstimateLeafPages(schema *types.Schema, st *TableStats) int64 {
	width := int64(0)
	for i, col := range schema.Cols {
		w := int64(col.Width())
		if col.Kind == types.KindString && i < len(st.Cols) && st.Cols[i].AvgLen > 0 {
			w = int64(st.Cols[i].AvgLen) + 1
		}
		width += w
	}
	// Record overhead: header + key prefix.
	width += 24
	perPage := int64(page.Size-page.HeaderSize) / width
	if perPage < 1 {
		perPage = 1
	}
	pages := (st.Rows + perPage - 1) / perPage
	if pages < 1 {
		pages = 1
	}
	return pages
}

// Selectivity estimates the fraction of rows satisfying pred over the
// given table's columns (ordinals into the index schema mapped to table
// ordinals via idx.TableOrds). Unknown shapes fall back to conservative
// constants, as real optimizers do.
func (c *Catalog) Selectivity(table string, idx *engine.Index, pred *expr.Expr) float64 {
	st := c.Stats(table)
	if pred == nil {
		return 1
	}
	return c.selectivity(st, idx, pred)
}

func (c *Catalog) selectivity(st *TableStats, idx *engine.Index, e *expr.Expr) float64 {
	const defaultSel = 0.3
	switch e.Op {
	case expr.OpAnd:
		return clamp01(c.selectivity(st, idx, e.Kids[0]) * c.selectivity(st, idx, e.Kids[1]))
	case expr.OpOr:
		a, b := c.selectivity(st, idx, e.Kids[0]), c.selectivity(st, idx, e.Kids[1])
		return clamp01(a + b - a*b)
	case expr.OpNot:
		return clamp01(1 - c.selectivity(st, idx, e.Kids[0]))
	case expr.OpEQ:
		if cs := c.colStatsOf(st, idx, e.Kids[0]); cs != nil && cs.Distinct > 0 {
			return clamp01(1 / float64(cs.Distinct))
		}
		return 0.1
	case expr.OpNE:
		return 0.9
	case expr.OpLT, expr.OpLE, expr.OpGT, expr.OpGE:
		return c.rangeSelectivity(st, idx, e)
	case expr.OpBetween:
		lo := expr.GE(e.Kids[0], e.Kids[1])
		hi := expr.LE(e.Kids[0], e.Kids[2])
		return clamp01(c.rangeSelectivity(st, idx, lo) + c.rangeSelectivity(st, idx, hi) - 1)
	case expr.OpIn:
		if cs := c.colStatsOf(st, idx, e.Kids[0]); cs != nil && cs.Distinct > 0 {
			return clamp01(float64(len(e.Kids)-1) / float64(cs.Distinct))
		}
		return clamp01(0.1 * float64(len(e.Kids)-1))
	case expr.OpLike:
		if len(e.Kids) == 2 && e.Kids[1].Op == expr.OpConst {
			p := e.Kids[1].Val.S
			if len(p) > 0 && p[0] != '%' {
				return 0.05 // prefix match
			}
		}
		return 0.15
	case expr.OpNotLike:
		return 0.85
	case expr.OpIsNull:
		return 0.05
	case expr.OpIsNotNull:
		return 0.95
	default:
		return defaultSel
	}
}

// rangeSelectivity estimates a single comparison against a constant
// using min/max interpolation.
func (c *Catalog) rangeSelectivity(st *TableStats, idx *engine.Index, e *expr.Expr) float64 {
	col, konst := e.Kids[0], e.Kids[1]
	op := e.Op
	if col.Op != expr.OpCol || konst.Op != expr.OpConst {
		if col.Op == expr.OpConst && konst.Op == expr.OpCol {
			col, konst = konst, col
			switch op {
			case expr.OpLT:
				op = expr.OpGT
			case expr.OpLE:
				op = expr.OpGE
			case expr.OpGT:
				op = expr.OpLT
			case expr.OpGE:
				op = expr.OpLE
			}
		} else {
			return 0.3
		}
	}
	cs := c.colStatsOf(st, idx, col)
	if cs == nil || cs.Min.IsNull() || cs.Max.IsNull() {
		return 0.3
	}
	if cs.Min.K == types.KindString {
		return 0.3
	}
	lo, hi, v := cs.Min.Float(), cs.Max.Float(), konst.Val.Float()
	if hi <= lo {
		return 0.5
	}
	frac := (v - lo) / (hi - lo)
	switch op {
	case expr.OpLT, expr.OpLE:
		return clamp01(frac)
	default:
		return clamp01(1 - frac)
	}
}

func (c *Catalog) colStatsOf(st *TableStats, idx *engine.Index, e *expr.Expr) *ColStats {
	if st == nil || e.Op != expr.OpCol {
		return nil
	}
	ord := e.Col
	if idx != nil && ord < len(idx.TableOrds) {
		ord = idx.TableOrds[ord]
	}
	if ord < 0 || ord >= len(st.Cols) {
		return nil
	}
	return &st.Cols[ord]
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// String renders stats for debugging.
func (s *TableStats) String() string {
	return fmt.Sprintf("rows=%d leafPages=%d cols=%d", s.Rows, s.LeafPages, len(s.Cols))
}
