package plan

import (
	"strings"
	"testing"

	"taurus/internal/core"
	"taurus/internal/exec"
	"taurus/internal/expr"
	"taurus/internal/testutil"
	"taurus/internal/types"
)

func workerCatalog(t testing.TB, rows int) (*testutil.Cluster, *Catalog) {
	t.Helper()
	c, err := testutil.NewCluster(testutil.Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadWorkers(rows); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(c.Engine)
	cat.NDPPageThreshold = 4 // scaled for tiny test tables
	if _, err := cat.Analyze("worker"); err != nil {
		t.Fatal(err)
	}
	return c, cat
}

func TestAnalyzeStats(t *testing.T) {
	_, cat := workerCatalog(t, 500)
	st := cat.Stats("worker")
	if st.Rows != 500 {
		t.Fatalf("rows = %d", st.Rows)
	}
	if st.Cols[0].Distinct != 500 {
		t.Errorf("id distinct = %d", st.Cols[0].Distinct)
	}
	if st.Cols[0].Min.I != 0 || st.Cols[0].Max.I != 499 {
		t.Errorf("id range = [%v, %v]", st.Cols[0].Min, st.Cols[0].Max)
	}
	if st.Cols[1].Min.I < 20 || st.Cols[1].Max.I > 59 {
		t.Errorf("age range = [%v, %v]", st.Cols[1].Min, st.Cols[1].Max)
	}
	if st.LeafPages < 1 {
		t.Error("leaf pages estimate missing")
	}
	if st.Cols[4].AvgLen == 0 {
		t.Error("string avg len missing")
	}
}

func TestSelectivityEstimates(t *testing.T) {
	c, cat := workerCatalog(t, 1000)
	tbl, _ := c.Engine.Table("worker")
	idx := tbl.Primary
	cases := []struct {
		pred   *expr.Expr
		lo, hi float64
	}{
		// id = const: 1/1000
		{expr.EQ(expr.Col(0, "id"), expr.ConstInt(5)), 0.0005, 0.01},
		// age < 30: ~25% of [20,59]
		{expr.LT(expr.Col(1, "age"), expr.ConstInt(30)), 0.1, 0.45},
		// age between 25 and 30: narrow
		{expr.Between(expr.Col(1, "age"), expr.ConstInt(25), expr.ConstInt(30)), 0.02, 0.35},
		// AND multiplies
		{expr.And(expr.LT(expr.Col(1, "age"), expr.ConstInt(30)), expr.EQ(expr.Col(0, "id"), expr.ConstInt(5))), 0, 0.01},
		// NOT complements
		{expr.Not(expr.LT(expr.Col(1, "age"), expr.ConstInt(30))), 0.5, 1},
		// LIKE prefix
		{expr.Like(expr.Col(4, "name"), expr.ConstString("worker-0001%")), 0.01, 0.1},
		// IN over distinct ages
		{expr.In(expr.Col(1, "age"), expr.ConstInt(25), expr.ConstInt(26)), 0.01, 0.2},
	}
	for _, tc := range cases {
		got := cat.Selectivity("worker", idx, tc.pred)
		if got < tc.lo || got > tc.hi {
			t.Errorf("Selectivity(%s) = %.4f, want [%.4f, %.4f]", tc.pred, got, tc.lo, tc.hi)
		}
	}
	if cat.Selectivity("worker", idx, nil) != 1 {
		t.Error("nil predicate must have selectivity 1")
	}
}

func TestDecideEnablesAllThree(t *testing.T) {
	c, cat := workerCatalog(t, 3000)
	tbl, _ := c.Engine.Table("worker")
	c.Engine.Pool().Clear() // cold pool → full estimated I/O
	a := &AccessSpec{
		Table: "worker", Index: tbl.Primary,
		Predicate:   expr.LT(expr.Col(1, "age"), expr.ConstInt(30)),
		Output:      []int{0, 3},
		LastInBlock: true,
		Aggs:        []AggCandidate{{Fn: core.AggSum, ArgCol: 1, Name: "sum_salary"}},
	}
	d := cat.Decide(a)
	if !d.Projection || !d.Predicate || !d.Aggregation {
		t.Fatalf("decision = %+v (%v)", d, d.Reasons)
	}
	if a.Residual != nil {
		t.Errorf("no residual expected, got %s", a.Residual)
	}
	extras := ExplainExtras(a, d)
	for _, want := range []string{"Using pushed NDP condition", "Using pushed NDP columns", "Using pushed NDP aggregate"} {
		if !strings.Contains(extras, want) {
			t.Errorf("extras missing %q: %s", want, extras)
		}
	}
}

func TestDecideThresholdBlocksSmallScans(t *testing.T) {
	c, cat := workerCatalog(t, 200)
	tbl, _ := c.Engine.Table("worker")
	cat.NDPPageThreshold = 10000 // paper default; tiny table fails it
	c.Engine.Pool().Clear()
	a := &AccessSpec{
		Table: "worker", Index: tbl.Primary,
		Predicate: expr.LT(expr.Col(1, "age"), expr.ConstInt(30)),
		Output:    []int{0},
	}
	d := cat.Decide(a)
	if d.NDPEnabled() {
		t.Fatalf("small scan must not qualify: %+v", d.Reasons)
	}
	if len(d.Reasons) == 0 || !strings.Contains(d.Reasons[0], "below threshold") {
		t.Errorf("reasons = %v", d.Reasons)
	}
}

func TestDecideBufferResidencyDeduction(t *testing.T) {
	// The Q11/Q17/Q19/Q20 effect: a table whose pages are mostly in the
	// buffer pool is estimated under the threshold (§VII-C footnote).
	c, err := testutil.NewCluster(testutil.Options{PoolPages: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadWorkers(3000); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(c.Engine)
	cat.NDPPageThreshold = 4
	if _, err := cat.Analyze("worker"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := c.Engine.Table("worker")
	// Pool is warm from Analyze's full scan: resident pages ≈ leaf pages.
	a := &AccessSpec{
		Table: "worker", Index: tbl.Primary,
		Predicate: expr.LT(expr.Col(1, "age"), expr.ConstInt(30)),
		Output:    []int{0},
	}
	d := cat.Decide(a)
	if d.NDPEnabled() {
		t.Fatalf("warm-pool scan should be under threshold: IO=%d reasons=%v",
			d.EstimatedIOPages, d.Reasons)
	}
	// Cold pool: same access qualifies.
	c.Engine.Pool().Clear()
	d = cat.Decide(a)
	if !d.NDPEnabled() {
		t.Fatalf("cold-pool scan should qualify: %v", d.Reasons)
	}
}

func TestDecidePointLookupNeverNDP(t *testing.T) {
	c, cat := workerCatalog(t, 1000)
	tbl, _ := c.Engine.Table("worker")
	c.Engine.Pool().Clear()
	a := &AccessSpec{
		Table: "worker", Index: tbl.Primary,
		Predicate:   expr.EQ(expr.Col(0, "id"), expr.ConstInt(7)),
		PointLookup: true,
	}
	if d := cat.Decide(a); d.NDPEnabled() {
		t.Fatal("point lookups must never be NDP scans")
	}
}

func TestDecideResidualSplit(t *testing.T) {
	c, cat := workerCatalog(t, 3000)
	tbl, _ := c.Engine.Table("worker")
	c.Engine.Pool().Clear()
	// SUBSTRING is not NDP-eligible; it must stay residual while the
	// age conjunct is pushed.
	residual := expr.EQ(
		expr.New(expr.OpSubstr, expr.Col(4, "name"), expr.ConstInt(1), expr.ConstInt(6)),
		expr.ConstString("worker"))
	a := &AccessSpec{
		Table: "worker", Index: tbl.Primary,
		Predicate: expr.And(expr.LT(expr.Col(1, "age"), expr.ConstInt(30)), residual),
		Output:    []int{0, 1, 4},
	}
	d := cat.Decide(a)
	if !d.Predicate {
		t.Fatalf("pushable conjunct should be pushed: %v", d.Reasons)
	}
	if a.Residual == nil || !strings.Contains(a.Residual.String(), "SUBSTRING") {
		t.Fatalf("residual = %v", a.Residual)
	}
	// Aggregation must be blocked by the residual.
	a.LastInBlock = true
	a.Aggs = []AggCandidate{{Fn: core.AggCountStar, ArgCol: -1, Name: "cnt"}}
	d = cat.Decide(a)
	if d.Aggregation {
		t.Fatal("aggregation must not push with residual predicates")
	}
}

func TestDecideGroupByIndexOrder(t *testing.T) {
	c, cat := workerCatalog(t, 3000)
	tbl, _ := c.Engine.Table("worker")
	c.Engine.Pool().Clear()
	// GROUP BY id (key prefix through output mapping) pushes; GROUP BY
	// age does not.
	a := &AccessSpec{
		Table: "worker", Index: tbl.Primary,
		Output: []int{0, 3}, LastInBlock: true,
		Aggs:    []AggCandidate{{Fn: core.AggSum, ArgCol: 1, Name: "s"}},
		GroupBy: []int{0}, // output ordinal 0 → index ordinal 0 = key
	}
	if d := cat.Decide(a); !d.Aggregation {
		t.Fatalf("key-prefix grouping should push: %v", d.Reasons)
	}
	b := &AccessSpec{
		Table: "worker", Index: tbl.Primary,
		Output: []int{1, 3}, LastInBlock: true,
		Aggs:    []AggCandidate{{Fn: core.AggSum, ArgCol: 1, Name: "s"}},
		GroupBy: []int{0}, // output ordinal 0 → index ordinal 1 = age (not key)
	}
	if d := cat.Decide(b); d.Aggregation {
		t.Fatal("non-key grouping must not push")
	}
}

func TestBuildScanEndToEnd(t *testing.T) {
	c, cat := workerCatalog(t, 2000)
	tbl, _ := c.Engine.Table("worker")
	c.Engine.Pool().Clear()
	a := &AccessSpec{
		Table: "worker", Index: tbl.Primary,
		Predicate: expr.LT(expr.Col(1, "age"), expr.ConstInt(30)),
		Output:    []int{0, 1},
	}
	d := cat.Decide(a)
	op, err := cat.BuildScan(a, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewCtx(c.Engine)
	rows, err := exec.Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	// Reference without NDP.
	c.Engine.Pool().Clear()
	ref, err := cat.BuildScan(a, Decision{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) || len(rows) == 0 {
		t.Fatalf("NDP scan %d rows, regular %d", len(rows), len(want))
	}
	for i := range rows {
		if rows[i][0].I != want[i][0].I {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestBuildScanAvgDecomposition(t *testing.T) {
	c, cat := workerCatalog(t, 3000)
	tbl, _ := c.Engine.Table("worker")
	c.Engine.Pool().Clear()
	a := &AccessSpec{
		Table: "worker", Index: tbl.Primary,
		Predicate:   expr.LT(expr.Col(1, "age"), expr.ConstInt(40)),
		Output:      []int{0, 3},
		LastInBlock: true,
		Aggs: []AggCandidate{
			{ArgCol: 1, Avg: true, Name: "avg_salary"},
			{Fn: core.AggCountStar, ArgCol: -1, Name: "cnt"},
		},
	}
	d := cat.Decide(a)
	if !d.Aggregation {
		t.Fatalf("aggregation should push: %v", d.Reasons)
	}
	op, err := cat.BuildScan(a, d)
	if err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewCtx(c.Engine)
	rows, err := exec.Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("scalar agg rows = %d", len(rows))
	}
	avg, cnt := rows[0][0], rows[0][1]
	// Reference computation.
	var sum, n int64
	refOp, _ := cat.BuildScan(&AccessSpec{Table: "worker", Index: tbl.Primary,
		Predicate: a.Predicate, Output: []int{3}}, Decision{})
	refRows, err := exec.Run(ctx, refOp)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refRows {
		sum += r[0].I
		n++
	}
	wantAvg := types.NewDecimal(sum * types.DecimalScale / (n * types.DecimalScale) * 1)
	_ = wantAvg
	gotAvgScaled := avg.I
	wantScaled := sum / n // decimal arithmetic: sum(scaled) * 100 / n... compare via float
	_ = wantScaled
	if cnt.I != n {
		t.Fatalf("count = %d, want %d", cnt.I, n)
	}
	wantAvgF := float64(sum) / types.DecimalScale / float64(n)
	if got := avg.Float(); got < wantAvgF*0.999 || got > wantAvgF*1.001 {
		t.Fatalf("avg = %v (%f), want ≈ %f", gotAvgScaled, got, wantAvgF)
	}
}
