package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Row binary codec.
//
// Rows are stored inside pages (and shipped inside NDP pages) in a compact
// binary format loosely modelled on InnoDB's COMPACT row format:
//
//	[null bitmap][col 0][col 1]...
//
// The null bitmap has one bit per column (rounded up to whole bytes).
// Fixed-width kinds are stored as fixed-size little-endian payloads;
// strings are stored as a uvarint length followed by the bytes. The codec
// is schema-driven: decoding requires the same ordered column kinds that
// were used for encoding, exactly as an InnoDB record can only be parsed
// with its index metadata (which is why the NDP descriptor carries the
// column type list, §IV-C1).

// EncodeRow appends the encoded row to dst and returns the extended slice.
func EncodeRow(dst []byte, schema *Schema, row Row) []byte {
	if len(row) != len(schema.Cols) {
		panic(fmt.Sprintf("types: row arity %d != schema arity %d", len(row), len(schema.Cols)))
	}
	nb := (len(row) + 7) / 8
	bitmapAt := len(dst)
	for i := 0; i < nb; i++ {
		dst = append(dst, 0)
	}
	var scratch [8]byte
	for i, d := range row {
		if d.IsNull() {
			dst[bitmapAt+i/8] |= 1 << uint(i%8)
			continue
		}
		switch schema.Cols[i].Kind {
		case KindInt, KindDecimal:
			binary.LittleEndian.PutUint64(scratch[:], uint64(d.I))
			dst = append(dst, scratch[:8]...)
		case KindFloat:
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(d.F))
			dst = append(dst, scratch[:8]...)
		case KindDate:
			binary.LittleEndian.PutUint32(scratch[:4], uint32(int32(d.I)))
			dst = append(dst, scratch[:4]...)
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(d.S)))
			dst = append(dst, d.S...)
		default:
			panic(fmt.Sprintf("types: cannot encode kind %v", schema.Cols[i].Kind))
		}
	}
	return dst
}

// DecodeRow decodes one row from buf into out (which must have schema
// arity) and returns the number of bytes consumed.
func DecodeRow(buf []byte, schema *Schema, out Row) (int, error) {
	n := len(schema.Cols)
	if len(out) != n {
		return 0, fmt.Errorf("types: out arity %d != schema arity %d", len(out), n)
	}
	nb := (n + 7) / 8
	if len(buf) < nb {
		return 0, fmt.Errorf("types: row truncated in null bitmap")
	}
	bitmap := buf[:nb]
	off := nb
	for i := 0; i < n; i++ {
		if bitmap[i/8]&(1<<uint(i%8)) != 0 {
			out[i] = Null()
			continue
		}
		switch schema.Cols[i].Kind {
		case KindInt, KindDecimal:
			if len(buf) < off+8 {
				return 0, fmt.Errorf("types: row truncated in column %d", i)
			}
			v := int64(binary.LittleEndian.Uint64(buf[off:]))
			out[i] = Datum{K: schema.Cols[i].Kind, I: v}
			off += 8
		case KindFloat:
			if len(buf) < off+8 {
				return 0, fmt.Errorf("types: row truncated in column %d", i)
			}
			out[i] = NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		case KindDate:
			if len(buf) < off+4 {
				return 0, fmt.Errorf("types: row truncated in column %d", i)
			}
			out[i] = NewDate(int32(binary.LittleEndian.Uint32(buf[off:])))
			off += 4
		case KindString:
			l, n2 := binary.Uvarint(buf[off:])
			if n2 <= 0 || len(buf) < off+n2+int(l) {
				return 0, fmt.Errorf("types: row truncated in string column %d", i)
			}
			off += n2
			out[i] = NewString(string(buf[off : off+int(l)]))
			off += int(l)
		default:
			return 0, fmt.Errorf("types: cannot decode kind %v", schema.Cols[i].Kind)
		}
	}
	return off, nil
}

// EncodedLen returns the exact encoded size of the row without encoding it.
func EncodedLen(schema *Schema, row Row) int {
	n := (len(row) + 7) / 8
	for i, d := range row {
		if d.IsNull() {
			continue
		}
		switch schema.Cols[i].Kind {
		case KindInt, KindDecimal, KindFloat:
			n += 8
		case KindDate:
			n += 4
		case KindString:
			n += uvarintLen(uint64(len(d.S))) + len(d.S)
		}
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Key encoding.
//
// Index keys need a memcmp-comparable encoding so the B+ tree can compare
// keys as byte strings. Integers are encoded big-endian with the sign bit
// flipped; dates likewise; strings are length-terminated with an 0x00 0x01
// escape (like MyRocks/CockroachDB) so that prefixes order correctly.

// EncodeKey appends a memcmp-comparable encoding of the datums to dst.
func EncodeKey(dst []byte, key Row) []byte {
	for _, d := range key {
		dst = encodeKeyDatum(dst, d)
	}
	return dst
}

func encodeKeyDatum(dst []byte, d Datum) []byte {
	switch d.K {
	case KindNull:
		return append(dst, 0x00)
	case KindInt, KindDecimal, KindDate:
		var b [9]byte
		b[0] = 0x02
		binary.BigEndian.PutUint64(b[1:], uint64(d.I)^(1<<63))
		return append(dst, b[:]...)
	case KindFloat:
		bits := math.Float64bits(d.F)
		if d.F >= 0 {
			bits |= 1 << 63
		} else {
			bits = ^bits
		}
		var b [9]byte
		b[0] = 0x03
		binary.BigEndian.PutUint64(b[1:], bits)
		return append(dst, b[:]...)
	case KindString:
		dst = append(dst, 0x04)
		for i := 0; i < len(d.S); i++ {
			c := d.S[i]
			if c == 0x00 {
				dst = append(dst, 0x00, 0xFF)
				continue
			}
			dst = append(dst, c)
		}
		return append(dst, 0x00, 0x01)
	default:
		panic(fmt.Sprintf("types: cannot key-encode kind %v", d.K))
	}
}
