package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Self-describing single-datum codec, used by NDP descriptors and by the
// aggregate-state blobs attached to REC_STATUS_NDP_AGGREGATE records.

// EncodeDatum appends a kind-tagged encoding of d to dst.
func EncodeDatum(dst []byte, d Datum) []byte {
	dst = append(dst, byte(d.K))
	switch d.K {
	case KindNull:
	case KindInt, KindDecimal, KindDate:
		dst = binary.AppendVarint(dst, d.I)
	case KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(d.F))
		dst = append(dst, b[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(d.S)))
		dst = append(dst, d.S...)
	}
	return dst
}

// DecodeDatum parses one kind-tagged datum, returning it and the bytes
// consumed.
func DecodeDatum(buf []byte) (Datum, int, error) {
	if len(buf) == 0 {
		return Null(), 0, fmt.Errorf("types: empty datum")
	}
	k := Kind(buf[0])
	off := 1
	switch k {
	case KindNull:
		return Null(), off, nil
	case KindInt, KindDecimal, KindDate:
		v, n := binary.Varint(buf[off:])
		if n <= 0 {
			return Null(), 0, fmt.Errorf("types: truncated datum int")
		}
		return Datum{K: k, I: v}, off + n, nil
	case KindFloat:
		if len(buf) < off+8 {
			return Null(), 0, fmt.Errorf("types: truncated datum float")
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))), off + 8, nil
	case KindString:
		l, n := binary.Uvarint(buf[off:])
		if n <= 0 || len(buf) < off+n+int(l) {
			return Null(), 0, fmt.Errorf("types: truncated datum string")
		}
		off += n
		return NewString(string(buf[off : off+int(l)])), off + int(l), nil
	default:
		return Null(), 0, fmt.Errorf("types: unknown datum kind %d", k)
	}
}
