package types

import "fmt"

// Column describes one column of a table or index schema.
type Column struct {
	Name string
	Kind Kind
	// FixedLen is the byte length for fixed-width string columns (CHAR);
	// zero means variable length (VARCHAR). Non-string kinds ignore it.
	FixedLen int
	// AvgLen is the average stored width used by the optimizer's
	// projection-benefit rule for variable-width columns (§V-A: "for
	// variable-sized columns, average sizes—calculated using table
	// statistics—are used"). Zero falls back to a kind-based default.
	AvgLen int
	// NotNull marks columns that can never hold NULL. All TPC-H columns
	// are NOT NULL, which lets the row codec skip null bitmaps for them.
	NotNull bool
}

// Width returns the estimated stored width in bytes of this column, used
// by the NDP projection decision.
func (c Column) Width() int {
	switch c.Kind {
	case KindInt, KindDecimal:
		return 8
	case KindFloat:
		return 8
	case KindDate:
		return 4
	case KindString:
		if c.FixedLen > 0 {
			return c.FixedLen
		}
		if c.AvgLen > 0 {
			return c.AvgLen
		}
		return 16
	default:
		return 8
	}
}

// Schema is an ordered set of columns.
type Schema struct {
	Cols []Column
	// byName accelerates ColIndex; built lazily by NewSchema.
	byName map[string]int
}

// NewSchema builds a schema and its name index.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.byName[c.Name] = i
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex returns the ordinal of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	if s.byName != nil {
		if i, ok := s.byName[name]; ok {
			return i
		}
		return -1
	}
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex that panics on unknown names; used when the
// planner has already validated the column set.
func (s *Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("types: unknown column %q", name))
	}
	return i
}

// Project returns a new schema containing the given ordinals in order.
func (s *Schema) Project(ordinals []int) *Schema {
	cols := make([]Column, len(ordinals))
	for i, o := range ordinals {
		cols[i] = s.Cols[o]
	}
	return NewSchema(cols...)
}

// RowWidth returns the estimated total stored width of a full row.
func (s *Schema) RowWidth() int {
	w := 0
	for _, c := range s.Cols {
		w += c.Width()
	}
	return w
}
