package types

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDatumConstructorsAndString(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{Null(), "NULL"},
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewDecimal(12345), "123.45"},
		{NewDecimal(-205), "-2.05"},
		{NewDecimal(7), "0.07"},
		{DateFromYMD(2010, 1, 1), "2010-01-01"},
		{NewString("hello"), "hello"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestDecimalFromFloat(t *testing.T) {
	if d := DecimalFromFloat(123.456); d.I != 12346 {
		t.Errorf("DecimalFromFloat(123.456) = %d, want 12346", d.I)
	}
	if d := DecimalFromFloat(-0.005); d.I != -1 {
		t.Errorf("DecimalFromFloat(-0.005) = %d, want -1", d.I)
	}
}

func TestParseDateRoundTrip(t *testing.T) {
	d, err := ParseDate("2010-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "2010-01-01" {
		t.Fatalf("round trip = %q", d.String())
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Fatal("expected error for bad date")
	}
}

func TestDateArithmetic(t *testing.T) {
	d := DateFromYMD(2010, 1, 1)
	if got := d.AddMonths(12).String(); got != "2011-01-01" {
		t.Errorf("AddMonths(12) = %s", got)
	}
	if got := d.AddMonths(3).String(); got != "2010-04-01" {
		t.Errorf("AddMonths(3) = %s", got)
	}
	if got := d.AddDays(31).String(); got != "2010-02-01" {
		t.Errorf("AddDays(31) = %s", got)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewDecimal(100), NewInt(1), 0},      // 1.00 == 1
		{NewDecimal(150), NewFloat(1.25), 1}, // 1.50 > 1.25
		{NewFloat(0.5), NewDecimal(100), -1}, // 0.5 < 1.00
		{NewString("a"), NewString("b"), -1},
		{NewString("abc"), NewString("abc"), 0},
		{Null(), NewInt(0), -1},
		{NewInt(0), Null(), 1},
		{Null(), Null(), 0},
		{DateFromYMD(2010, 1, 1), DateFromYMD(2010, 6, 1), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareMixedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic comparing string with int")
		}
	}()
	Compare(NewString("x"), NewInt(1))
}

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Kind: KindInt, NotNull: true},
		Column{Name: "price", Kind: KindDecimal},
		Column{Name: "ship", Kind: KindDate},
		Column{Name: "comment", Kind: KindString},
		Column{Name: "ratio", Kind: KindFloat},
	)
}

func TestRowCodecRoundTrip(t *testing.T) {
	s := testSchema()
	rows := []Row{
		{NewInt(1), NewDecimal(9999), DateFromYMD(1998, 7, 1), NewString("hello world"), NewFloat(0.25)},
		{NewInt(-5), Null(), Null(), NewString(""), Null()},
		{Null(), NewDecimal(0), DateFromYMD(1970, 1, 1), NewString(string([]byte{0, 1, 2, 255})), NewFloat(-1e300)},
	}
	for _, r := range rows {
		buf := EncodeRow(nil, s, r)
		if len(buf) != EncodedLen(s, r) {
			t.Errorf("EncodedLen mismatch: got %d want %d", EncodedLen(s, r), len(buf))
		}
		out := make(Row, s.Len())
		n, err := DecodeRow(buf, s, out)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Errorf("consumed %d of %d bytes", n, len(buf))
		}
		for i := range r {
			if !Equal(r[i], out[i]) || r[i].K != out[i].K {
				t.Errorf("col %d: got %v want %v", i, out[i], r[i])
			}
		}
	}
}

func TestDecodeRowTruncation(t *testing.T) {
	s := testSchema()
	r := Row{NewInt(1), NewDecimal(2), DateFromYMD(2000, 1, 1), NewString("abc"), NewFloat(1)}
	buf := EncodeRow(nil, s, r)
	out := make(Row, s.Len())
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeRow(buf[:cut], s, out); err == nil {
			t.Fatalf("expected truncation error at %d bytes", cut)
		}
	}
}

func randomDatum(r *rand.Rand, k Kind) Datum {
	switch k {
	case KindInt:
		return NewInt(r.Int63n(1<<40) - (1 << 39))
	case KindDecimal:
		return NewDecimal(r.Int63n(1<<32) - (1 << 31))
	case KindDate:
		return NewDate(int32(r.Intn(20000)))
	case KindFloat:
		return NewFloat(r.NormFloat64() * 1e6)
	case KindString:
		b := make([]byte, r.Intn(24))
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return NewString(string(b))
	default:
		return Null()
	}
}

// Property: the row codec round-trips random rows.
func TestRowCodecQuick(t *testing.T) {
	s := testSchema()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		row := make(Row, s.Len())
		for i, c := range s.Cols {
			if r.Intn(5) == 0 {
				row[i] = Null()
			} else {
				row[i] = randomDatum(r, c.Kind)
			}
		}
		buf := EncodeRow(nil, s, row)
		out := make(Row, s.Len())
		if _, err := DecodeRow(buf, s, out); err != nil {
			return false
		}
		for i := range row {
			if !Equal(row[i], out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: EncodeKey ordering matches Compare ordering for same-kind keys.
func TestKeyEncodingOrderQuick(t *testing.T) {
	kinds := []Kind{KindInt, KindDecimal, KindDate, KindFloat, KindString}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := kinds[r.Intn(len(kinds))]
		a, b := randomDatum(r, k), randomDatum(r, k)
		ka := EncodeKey(nil, Row{a})
		kb := EncodeKey(nil, Row{b})
		cmp := Compare(a, b)
		bcmp := bytes.Compare(ka, kb)
		if cmp < 0 {
			return bcmp < 0
		}
		if cmp > 0 {
			return bcmp > 0
		}
		return bcmp == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyEncodingCompositeOrder(t *testing.T) {
	// (1, "b") < (2, "a"), and ("a", 2) < ("ab", 1): composite keys order
	// column-by-column even with variable-length strings.
	a := EncodeKey(nil, Row{NewInt(1), NewString("b")})
	b := EncodeKey(nil, Row{NewInt(2), NewString("a")})
	if bytes.Compare(a, b) >= 0 {
		t.Error("(1,b) should sort before (2,a)")
	}
	c := EncodeKey(nil, Row{NewString("a"), NewInt(2)})
	d := EncodeKey(nil, Row{NewString("ab"), NewInt(1)})
	if bytes.Compare(c, d) >= 0 {
		t.Error("(a,2) should sort before (ab,1)")
	}
	// Embedded NUL must not break prefix ordering.
	e := EncodeKey(nil, Row{NewString("a\x00")})
	g := EncodeKey(nil, Row{NewString("a\x00b")})
	if bytes.Compare(e, g) >= 0 {
		t.Error("a\\0 should sort before a\\0b")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := testSchema()
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ColIndex("ship") != 2 {
		t.Errorf("ColIndex(ship) = %d", s.ColIndex("ship"))
	}
	if s.ColIndex("nope") != -1 {
		t.Errorf("ColIndex(nope) = %d", s.ColIndex("nope"))
	}
	p := s.Project([]int{3, 0})
	if p.Len() != 2 || p.Cols[0].Name != "comment" || p.Cols[1].Name != "id" {
		t.Errorf("Project result wrong: %+v", p.Cols)
	}
	if s.RowWidth() <= 0 {
		t.Error("RowWidth should be positive")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColIndex should panic on unknown column")
		}
	}()
	s.MustColIndex("nope")
}

func TestColumnWidth(t *testing.T) {
	cases := []struct {
		c    Column
		want int
	}{
		{Column{Kind: KindInt}, 8},
		{Column{Kind: KindDate}, 4},
		{Column{Kind: KindString, FixedLen: 25}, 25},
		{Column{Kind: KindString, AvgLen: 40}, 40},
		{Column{Kind: KindString}, 16},
	}
	for _, c := range cases {
		if got := c.c.Width(); got != c.want {
			t.Errorf("Width(%+v) = %d, want %d", c.c, got, c.want)
		}
	}
}

func TestRowCloneAndString(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].I != 1 {
		t.Error("Clone aliases original")
	}
	if got := r.String(); got != "(1, x)" {
		t.Errorf("Row.String() = %q", got)
	}
}
