// Package types defines the value model shared by every layer of the
// reproduction: the SQL frontend, the InnoDB-like storage engine, and the
// Page Store NDP plugins. A Datum is a single column value; a Row is a
// slice of datums laid out according to a Schema.
//
// The supported kinds mirror the subset of MySQL types the paper's NDP
// implementation allows to be pushed down (§V-B1 keeps explicit lists of
// allowed data types): 64-bit integers, doubles, fixed-point decimals,
// dates, and character strings.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the column types understood by the engine.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL literal.
	KindNull Kind = iota
	// KindInt is a signed 64-bit integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 double.
	KindFloat
	// KindDecimal is a fixed-point decimal stored as a scaled integer.
	// All decimals in the engine use DecimalScale fractional digits,
	// matching TPC-H's DECIMAL(15,2) columns.
	KindDecimal
	// KindDate is a calendar date stored as days since 1970-01-01.
	KindDate
	// KindString is a CHAR/VARCHAR value.
	KindString
)

// DecimalScale is the number of fractional digits carried by KindDecimal
// values. TPC-H uses DECIMAL(15,2) everywhere, so a single global scale
// keeps arithmetic exact without a full decimal library.
const DecimalScale = 100

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindDecimal:
		return "DECIMAL"
	case KindDate:
		return "DATE"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Datum is one column value. The zero Datum is SQL NULL.
type Datum struct {
	K Kind
	I int64   // KindInt, KindDecimal (scaled), KindDate (epoch days)
	F float64 // KindFloat
	S string  // KindString
}

// Null returns the SQL NULL datum.
func Null() Datum { return Datum{} }

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{K: KindInt, I: v} }

// NewFloat returns a double datum.
func NewFloat(v float64) Datum { return Datum{K: KindFloat, F: v} }

// NewDecimal returns a decimal datum from an already-scaled integer, i.e.
// NewDecimal(12345) represents 123.45.
func NewDecimal(scaled int64) Datum { return Datum{K: KindDecimal, I: scaled} }

// DecimalFromFloat converts a float to the fixed-point representation,
// rounding half away from zero.
func DecimalFromFloat(v float64) Datum {
	return NewDecimal(int64(math.Round(v * DecimalScale)))
}

// NewDate returns a date datum from days since the Unix epoch.
func NewDate(epochDays int32) Datum { return Datum{K: KindDate, I: int64(epochDays)} }

// DateFromYMD builds a date datum from a calendar date.
func DateFromYMD(y, m, d int) Datum {
	t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	return NewDate(int32(t.Unix() / 86400))
}

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{K: KindString, S: v} }

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.K == KindNull }

// Int returns the integer payload (valid for int/decimal/date kinds).
func (d Datum) Int() int64 { return d.I }

// Float returns the value as a float64, converting decimals and ints.
func (d Datum) Float() float64 {
	switch d.K {
	case KindFloat:
		return d.F
	case KindDecimal:
		return float64(d.I) / DecimalScale
	case KindInt, KindDate:
		return float64(d.I)
	default:
		return 0
	}
}

// String renders the datum for display and EXPLAIN output.
func (d Datum) String() string {
	switch d.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(d.I, 10)
	case KindFloat:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case KindDecimal:
		neg := ""
		v := d.I
		if v < 0 {
			neg, v = "-", -v
		}
		return fmt.Sprintf("%s%d.%02d", neg, v/DecimalScale, v%DecimalScale)
	case KindDate:
		t := time.Unix(d.I*86400, 0).UTC()
		return t.Format("2006-01-02")
	case KindString:
		return d.S
	default:
		return fmt.Sprintf("Datum(%d)", uint8(d.K))
	}
}

// ParseDate parses a YYYY-MM-DD literal into a date datum.
func ParseDate(s string) (Datum, error) {
	t, err := time.Parse("2006-01-02", strings.TrimSpace(s))
	if err != nil {
		return Null(), fmt.Errorf("types: bad date %q: %w", s, err)
	}
	return NewDate(int32(t.Unix() / 86400)), nil
}

// AddMonths returns the date advanced by n months, as MySQL's
// DATE_ADD(.., INTERVAL n MONTH) does.
func (d Datum) AddMonths(n int) Datum {
	t := time.Unix(d.I*86400, 0).UTC().AddDate(0, n, 0)
	return NewDate(int32(t.Unix() / 86400))
}

// AddDays returns the date advanced by n days.
func (d Datum) AddDays(n int) Datum {
	return NewDate(int32(d.I) + int32(n))
}

// Compare orders two datums. NULL sorts before every non-NULL value, which
// is only used for sorting; SQL comparison semantics (NULL is unknown) are
// handled in the expression layer. Numeric kinds compare by value across
// int/decimal/float; strings compare bytewise; comparing a string with a
// numeric kind panics because the planner never produces such a pair.
func Compare(a, b Datum) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.K == KindString || b.K == KindString {
		if a.K != KindString || b.K != KindString {
			panic(fmt.Sprintf("types: comparing %v with %v", a.K, b.K))
		}
		return strings.Compare(a.S, b.S)
	}
	// Numeric-ish kinds. Fast path: identical kinds compare on raw payload.
	if a.K == b.K && a.K != KindFloat {
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
	af, bf := a.Float(), b.Float()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// Equal reports datum equality under Compare semantics.
func Equal(a, b Datum) bool { return Compare(a, b) == 0 }

// Row is an ordered list of column values.
type Row []Datum

// Clone returns a deep-enough copy of the row (datums are value types).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for debugging.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.String())
	}
	b.WriteByte(')')
	return b.String()
}
