package sql

import (
	"fmt"
	"strconv"
	"strings"

	"taurus/internal/types"
)

// AST types.

// Stmt is a parsed statement.
type Stmt interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col TYPE, ..., PRIMARY KEY(...)).
type CreateTableStmt struct {
	Name   string
	Cols   []ColDef
	PKCols []string
}

// ColDef is one column definition.
type ColDef struct {
	Name string
	Type string // INT, BIGINT, DECIMAL, DOUBLE/FLOAT, DATE, VARCHAR/CHAR
	Len  int
}

// InsertStmt is INSERT INTO name VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Value
}

// Value is a literal.
type Value struct {
	Kind  tokKind // tokNumber or tokString
	Text  string
	IsNeg bool
	// Date marks DATE 'yyyy-mm-dd' literals.
	Date bool
	Null bool
}

// SelectStmt is a single-table SELECT.
type SelectStmt struct {
	Explain bool
	Items   []SelectItem
	Table   string
	Where   Expr
	GroupBy []string
	OrderBy []OrderItem
	Limit   int // -1 = none
}

// SelectItem is one projection item: a column, * or an aggregate call.
type SelectItem struct {
	Star bool
	Col  string
	Agg  string // COUNT/SUM/AVG/MIN/MAX; empty for plain columns
	// AggArg is the aggregate argument expression; nil for COUNT(*).
	AggArg Expr
	Alias  string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  string
	Desc bool
}

// Expr is the parsed expression AST (converted later to expr.Expr).
type Expr interface{ expr() }

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string // AND OR = <> < <= > >= + - * / LIKE
	L, R Expr
}

// NotExpr negates.
type NotExpr struct{ E Expr }

// ColRef references a column.
type ColRef struct{ Name string }

// Lit is a literal.
type Lit struct{ V Value }

// BetweenExpr is x BETWEEN a AND b.
type BetweenExpr struct{ E, Lo, Hi Expr }

// InExpr is x IN (a, b, ...), possibly negated.
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// CallExpr is YEAR(x) / SUBSTRING(x, a, b).
type CallExpr struct {
	Fn   string
	Args []Expr
}

func (CreateTableStmt) stmt() {}
func (InsertStmt) stmt()      {}
func (SelectStmt) stmt()      {}
func (BinExpr) expr()         {}
func (NotExpr) expr()         {}
func (ColRef) expr()          {}
func (Lit) expr()             {}
func (BetweenExpr) expr()     {}
func (InExpr) expr()          {}
func (CallExpr) expr()        {}

type parser struct {
	toks []token
	pos  int
}

// Parse parses one statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var s Stmt
	switch {
	case p.peekKw("CREATE"):
		s, err = p.parseCreate()
	case p.peekKw("INSERT"):
		s, err = p.parseInsert()
	case p.peekKw("SELECT"), p.peekKw("EXPLAIN"):
		s, err = p.parseSelect()
	default:
		return nil, fmt.Errorf("sql: expected CREATE, INSERT, SELECT, or EXPLAIN")
	}
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at %q", p.cur().text)
	}
	return s, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) peekKw(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKw(kw string) bool {
	if p.peekKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("sql: expected %s near %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	t := p.cur()
	if t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("sql: expected %q near %q", op, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier near %q", t.text)
	}
	p.pos++
	return strings.ToLower(t.text), nil
}

func (p *parser) parseCreate() (Stmt, error) {
	p.acceptKw("CREATE")
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	s := &CreateTableStmt{Name: name}
	for {
		if p.acceptKw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				s.PKCols = append(s.PKCols, c)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			cname, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := p.ident()
			if err != nil {
				return nil, err
			}
			cd := ColDef{Name: cname, Type: strings.ToUpper(typ)}
			if p.acceptOp("(") {
				n := p.next()
				if n.kind != tokNumber {
					return nil, fmt.Errorf("sql: expected length near %q", n.text)
				}
				cd.Len, _ = strconv.Atoi(n.text)
				// DECIMAL(p,s): ignore the scale (fixed global scale).
				if p.acceptOp(",") {
					p.next()
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			// Swallow NOT NULL.
			if p.acceptKw("NOT") {
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
			}
			s.Cols = append(s.Cols, cd)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if len(s.PKCols) == 0 {
		return nil, fmt.Errorf("sql: CREATE TABLE requires PRIMARY KEY")
	}
	return s, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	p.acceptKw("INSERT")
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	s := &InsertStmt{Table: name}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Value
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return s, nil
}

func (p *parser) parseValue() (Value, error) {
	if p.acceptKw("NULL") {
		return Value{Null: true}, nil
	}
	if p.acceptKw("DATE") {
		t := p.next()
		if t.kind != tokString {
			return Value{}, fmt.Errorf("sql: DATE needs a string literal")
		}
		return Value{Kind: tokString, Text: t.text, Date: true}, nil
	}
	neg := false
	if p.acceptOp("-") {
		neg = true
	}
	t := p.next()
	switch t.kind {
	case tokNumber:
		return Value{Kind: tokNumber, Text: t.text, IsNeg: neg}, nil
	case tokString:
		if neg {
			return Value{}, fmt.Errorf("sql: cannot negate a string")
		}
		return Value{Kind: tokString, Text: t.text}, nil
	default:
		return Value{}, fmt.Errorf("sql: expected literal near %q", t.text)
	}
}

// Datum converts a Value to a typed datum given the column kind.
func (v Value) Datum(kind types.Kind) (types.Datum, error) {
	if v.Null {
		return types.Null(), nil
	}
	if v.Date || kind == types.KindDate {
		return types.ParseDate(v.Text)
	}
	switch kind {
	case types.KindInt:
		n, err := strconv.ParseInt(v.Text, 10, 64)
		if err != nil {
			return types.Null(), err
		}
		if v.IsNeg {
			n = -n
		}
		return types.NewInt(n), nil
	case types.KindDecimal:
		f, err := strconv.ParseFloat(v.Text, 64)
		if err != nil {
			return types.Null(), err
		}
		if v.IsNeg {
			f = -f
		}
		return types.DecimalFromFloat(f), nil
	case types.KindFloat:
		f, err := strconv.ParseFloat(v.Text, 64)
		if err != nil {
			return types.Null(), err
		}
		if v.IsNeg {
			f = -f
		}
		return types.NewFloat(f), nil
	case types.KindString:
		return types.NewString(v.Text), nil
	default:
		return types.Null(), fmt.Errorf("sql: cannot convert %q", v.Text)
	}
}

func (p *parser) parseSelect() (Stmt, error) {
	s := &SelectStmt{Limit: -1}
	if p.acceptKw("EXPLAIN") {
		s.Explain = true
	}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Table = tbl
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Col: c}
			if p.acceptKw("DESC") {
				it.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, it)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: LIMIT needs a number")
		}
		s.Limit, _ = strconv.Atoi(t.text)
	}
	return s, nil
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	t := p.cur()
	if t.kind == tokIdent && aggNames[strings.ToUpper(t.text)] {
		fn := strings.ToUpper(t.text)
		p.pos++
		if err := p.expectOp("("); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Agg: fn}
		if p.acceptOp("*") {
			if fn != "COUNT" {
				return SelectItem{}, fmt.Errorf("sql: only COUNT(*) is allowed")
			}
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return SelectItem{}, err
			}
			item.AggArg = arg
		}
		if err := p.expectOp(")"); err != nil {
			return SelectItem{}, err
		}
		item.Alias = p.parseAlias()
		return item, nil
	}
	c, err := p.ident()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: c, Alias: p.parseAlias()}, nil
}

func (p *parser) parseAlias() string {
	if p.acceptKw("AS") {
		if a, err := p.ident(); err == nil {
			return a
		}
	}
	return ""
}

// Expression grammar: or → and → not → cmp → add → mul → unary → primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// BETWEEN / IN / LIKE.
	if p.acceptKw("BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return BetweenExpr{E: l, Lo: lo, Hi: hi}, nil
	}
	notIn := false
	if p.peekKw("NOT") {
		// Lookahead for NOT IN / NOT LIKE.
		save := p.pos
		p.pos++
		if p.peekKw("IN") || p.peekKw("LIKE") {
			notIn = true
		} else {
			p.pos = save
		}
	}
	if p.acceptKw("IN") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := InExpr{E: l, Not: notIn}
		for {
			e, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	if p.acceptKw("LIKE") {
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		op := "LIKE"
		if notIn {
			op = "NOT LIKE"
		}
		return BinExpr{Op: op, L: l, R: r}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.acceptOp(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			// DATE + INTERVAL n (DAY|MONTH|YEAR)
			if iv, ok := p.maybeInterval(r); ok {
				l = iv(l)
				continue
			}
			l = BinExpr{Op: "+", L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = BinExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

// maybeInterval recognizes the pattern produced by parsing
// "INTERVAL 'n' YEAR" (the INTERVAL keyword is handled in parsePrimary,
// which returns a CallExpr); this hook rewrites date + interval.
func (p *parser) maybeInterval(r Expr) (func(Expr) Expr, bool) {
	call, ok := r.(CallExpr)
	if !ok || call.Fn != "INTERVAL" {
		return nil, false
	}
	return func(l Expr) Expr {
		return CallExpr{Fn: "DATE_ADD_" + call.Args[1].(ColRef).Name, Args: []Expr{l, call.Args[0]}}
	}, true
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = BinExpr{Op: "*", L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = BinExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: "-", L: Lit{Value{Kind: tokNumber, Text: "0"}}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	if p.acceptOp("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		return Lit{Value{Kind: tokNumber, Text: t.text}}, nil
	case tokString:
		p.pos++
		return Lit{Value{Kind: tokString, Text: t.text}}, nil
	case tokIdent:
		up := strings.ToUpper(t.text)
		switch up {
		case "DATE":
			p.pos++
			st := p.next()
			if st.kind != tokString {
				return nil, fmt.Errorf("sql: DATE needs a string literal")
			}
			return Lit{Value{Kind: tokString, Text: st.text, Date: true}}, nil
		case "INTERVAL":
			p.pos++
			amt := p.next()
			if amt.kind != tokString && amt.kind != tokNumber {
				return nil, fmt.Errorf("sql: INTERVAL needs an amount")
			}
			unit, err := p.ident()
			if err != nil {
				return nil, err
			}
			return CallExpr{Fn: "INTERVAL", Args: []Expr{
				Lit{Value{Kind: tokNumber, Text: amt.text}},
				ColRef{Name: strings.ToUpper(unit)},
			}}, nil
		case "YEAR", "SUBSTRING":
			if p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "(" {
				p.pos += 2
				call := CallExpr{Fn: up}
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
		case "NULL":
			p.pos++
			return Lit{Value{Null: true}}, nil
		}
		p.pos++
		return ColRef{Name: strings.ToLower(t.text)}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected token %q", t.text)
	}
}
