package sql

import (
	"fmt"
	"strings"

	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/exec"
	"taurus/internal/expr"
	"taurus/internal/obs"
	"taurus/internal/plan"
	"taurus/internal/types"
)

// Session executes SQL statements against one engine.
type Session struct {
	Eng *engine.Engine
	Cat *plan.Catalog
	// NDP toggles near-data processing, like the server flag the paper's
	// experiments flip.
	NDP bool
	// ReadOnly rejects DDL and DML with a clear error — the read-replica
	// frontend's mode.
	ReadOnly bool
	// Slow, when armed, logs a per-stage breakdown of every statement
	// whose total time meets its threshold. Nil disables tracing.
	Slow *obs.SlowOpLog
	// Tracer, when set, opens a root span per sampled statement and
	// propagates its context through the write path and across RPCs.
	// Nil disables distributed tracing.
	Tracer *obs.Tracer
}

// NewSession creates a session with a fresh catalog.
func NewSession(eng *engine.Engine) *Session {
	return &Session{Eng: eng, Cat: plan.NewCatalog(eng), NDP: true}
}

// Result is a statement result.
type Result struct {
	Columns []string
	Rows    []types.Row
	// Explain holds EXPLAIN output (rows empty then).
	Explain string
	// Message describes DDL/DML outcomes.
	Message string
}

// Exec parses and executes one statement.
func (s *Session) Exec(sqlText string) (*Result, error) {
	res, _, err := s.ExecTraced(sqlText, false)
	return res, err
}

// ExecTraced executes one statement and reports the trace ID it ran under
// (0 when unsampled). When force is set a trace is opened regardless of the
// tracer's sampling rate — the `taurus-sql -trace` path. The returned ID
// keys the per-node span rings: assemble with obs.AssembleTrace over the
// spans each node collected for it.
func (s *Session) ExecTraced(sqlText string, force bool) (*Result, uint64, error) {
	// Traces exist only when the slow-op log is armed; every Step below
	// is a nil-safe no-op otherwise. The trace is a local (not a Session
	// field) because sessions are shared across goroutines.
	// slowTraceID is filled once the root span exists, so a SLOW-OP line
	// for a sampled statement carries the trace ID it can be joined on.
	var tr *obs.Trace
	var slowTraceID uint64
	if s.Slow.Enabled() {
		tr = obs.NewTrace(opSummary(sqlText))
		defer func() { s.Slow.ObserveTraced(tr, slowTraceID) }()
	}
	// The root statement span. Everything downstream — SAL window seals,
	// Log Store appends, Page Store applies — hangs off its context.
	var root *obs.SpanHandle
	if force {
		root = s.Tracer.StartTrace("sql:" + opSummary(sqlText))
	} else {
		root = s.Tracer.MaybeTrace("sql:" + opSummary(sqlText))
	}
	tc := root.Context()
	slowTraceID = tc.TraceID
	res, err := s.exec(sqlText, tr, tc)
	if err != nil {
		root.Annotate("err=%v", err)
	}
	root.End()
	return res, tc.TraceID, err
}

func (s *Session) exec(sqlText string, tr *obs.Trace, tc obs.TraceContext) (*Result, error) {
	stmt, err := Parse(sqlText)
	tr.Step("parse")
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *CreateTableStmt:
		if s.ReadOnly {
			return nil, fmt.Errorf("sql: replica is read-only: CREATE TABLE rejected (run DDL on the master)")
		}
		return s.execCreate(st, tr)
	case *InsertStmt:
		if s.ReadOnly {
			return nil, fmt.Errorf("sql: replica is read-only: INSERT rejected (write to the master)")
		}
		return s.execInsert(st, tr, tc)
	case *SelectStmt:
		return s.execSelect(st, tr, tc)
	default:
		return nil, fmt.Errorf("sql: unsupported statement")
	}
}

// opSummary compacts a statement for the slow-op line: collapsed
// whitespace, capped length.
func opSummary(sqlText string) string {
	s := strings.Join(strings.Fields(sqlText), " ")
	const max = 80
	if len(s) > max {
		s = s[:max] + "..."
	}
	return s
}

func typeToKind(c ColDef) (types.Column, error) {
	col := types.Column{Name: c.Name}
	switch c.Type {
	case "INT", "BIGINT", "INTEGER", "SMALLINT":
		col.Kind = types.KindInt
	case "DECIMAL", "NUMERIC":
		col.Kind = types.KindDecimal
	case "DOUBLE", "FLOAT", "REAL":
		col.Kind = types.KindFloat
	case "DATE":
		col.Kind = types.KindDate
	case "VARCHAR", "TEXT":
		col.Kind = types.KindString
	case "CHAR":
		col.Kind = types.KindString
		col.FixedLen = c.Len
	default:
		return col, fmt.Errorf("sql: unsupported type %s", c.Type)
	}
	return col, nil
}

func (s *Session) execCreate(st *CreateTableStmt, tr *obs.Trace) (*Result, error) {
	cols := make([]types.Column, len(st.Cols))
	for i, c := range st.Cols {
		col, err := typeToKind(c)
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}
	schema := types.NewSchema(cols...)
	var pk []int
	for _, name := range st.PKCols {
		o := schema.ColIndex(name)
		if o < 0 {
			return nil, fmt.Errorf("sql: unknown primary key column %q", name)
		}
		pk = append(pk, o)
	}
	if _, err := s.Eng.CreateTable(st.Name, schema, pk); err != nil {
		return nil, err
	}
	tr.Step("create")
	return &Result{Message: fmt.Sprintf("table %s created", st.Name)}, nil
}

func (s *Session) execInsert(st *InsertStmt, tr *obs.Trace, tc obs.TraceContext) (*Result, error) {
	tbl, err := s.Eng.Table(st.Table)
	if err != nil {
		return nil, err
	}
	tx := s.Eng.Txm().Begin()
	if tc.Valid() {
		// Attribute every record this transaction stages to the statement's
		// trace: the B-tree layer only carries the transaction ID, so SAL
		// resolves trace contexts through this registration.
		tx.SetTrace(tc)
		if sc := s.Eng.SAL(); sc != nil {
			sc.SetTxnTrace(tx.ID, tc)
			defer sc.ClearTxnTrace(tx.ID)
		}
	}
	n := 0
	for _, vals := range st.Rows {
		if len(vals) != tbl.Schema.Len() {
			return nil, fmt.Errorf("sql: %d values for %d columns", len(vals), tbl.Schema.Len())
		}
		row := make(types.Row, len(vals))
		for i, v := range vals {
			d, err := v.Datum(tbl.Schema.Cols[i].Kind)
			if err != nil {
				return nil, err
			}
			row[i] = d
		}
		if err := s.Eng.Insert(tbl, tx, row); err != nil {
			return nil, err
		}
		n++
	}
	tr.Step("apply")
	// Commit = durable on the Log Stores; Page Store application is
	// asynchronous (reads wait on applied LSNs as needed).
	if err := s.Eng.Commit(tx); err != nil {
		return nil, err
	}
	tr.Step("commit")
	// Keep statistics fresh so NDP decisions see the data.
	if _, err := s.Cat.Analyze(st.Table); err != nil {
		return nil, err
	}
	tr.Step("analyze")
	return &Result{Message: fmt.Sprintf("%d rows inserted", n)}, nil
}

// exprBuilder converts AST expressions to executable expressions with a
// name→ordinal resolver.
type exprBuilder struct {
	schema  *types.Schema
	resolve func(name string) (int, error)
}

func (b *exprBuilder) kindOf(name string) types.Kind {
	if o := b.schema.ColIndex(name); o >= 0 {
		return b.schema.Cols[o].Kind
	}
	return types.KindNull
}

// litKindHint guides literal typing from the sibling column.
func siblingColumn(e Expr) string {
	switch t := e.(type) {
	case ColRef:
		return t.Name
	case BinExpr:
		if c := siblingColumn(t.L); c != "" {
			return c
		}
		return siblingColumn(t.R)
		// CallExpr deliberately yields no hint: YEAR(dt) = 1995 compares
		// integers even though dt is a date.
	}
	return ""
}

func (b *exprBuilder) build(e Expr, hintCol string) (*expr.Expr, error) {
	switch t := e.(type) {
	case ColRef:
		o, err := b.resolve(t.Name)
		if err != nil {
			return nil, err
		}
		return expr.Col(o, t.Name), nil
	case Lit:
		kind := types.KindInt
		if t.V.Date {
			kind = types.KindDate
		} else if t.V.Kind == tokString {
			kind = types.KindString
		} else if strings.Contains(t.V.Text, ".") {
			kind = types.KindDecimal
		}
		if hintCol != "" {
			if k := b.kindOf(hintCol); k != types.KindNull && t.V.Kind == tokNumber {
				kind = k
			}
		}
		d, err := t.V.Datum(kind)
		if err != nil {
			return nil, err
		}
		return expr.Const(d), nil
	case BinExpr:
		hint := siblingColumn(t.L)
		if hint == "" {
			hint = siblingColumn(t.R)
		}
		l, err := b.build(t.L, hint)
		if err != nil {
			return nil, err
		}
		r, err := b.build(t.R, hint)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "AND":
			return expr.And(l, r), nil
		case "OR":
			return expr.Or(l, r), nil
		case "=":
			return expr.EQ(l, r), nil
		case "<>":
			return expr.NE(l, r), nil
		case "<":
			return expr.LT(l, r), nil
		case "<=":
			return expr.LE(l, r), nil
		case ">":
			return expr.GT(l, r), nil
		case ">=":
			return expr.GE(l, r), nil
		case "+":
			return expr.Add(l, r), nil
		case "-":
			return expr.Sub(l, r), nil
		case "*":
			return expr.Mul(l, r), nil
		case "/":
			return expr.Div(l, r), nil
		case "LIKE":
			return expr.Like(l, r), nil
		case "NOT LIKE":
			return expr.NotLikeE(l, r), nil
		default:
			return nil, fmt.Errorf("sql: unsupported operator %s", t.Op)
		}
	case NotExpr:
		inner, err := b.build(t.E, hintCol)
		if err != nil {
			return nil, err
		}
		return expr.Not(inner), nil
	case BetweenExpr:
		hint := siblingColumn(t.E)
		x, err := b.build(t.E, hint)
		if err != nil {
			return nil, err
		}
		lo, err := b.build(t.Lo, hint)
		if err != nil {
			return nil, err
		}
		hi, err := b.build(t.Hi, hint)
		if err != nil {
			return nil, err
		}
		return expr.Between(x, lo, hi), nil
	case InExpr:
		hint := siblingColumn(t.E)
		x, err := b.build(t.E, hint)
		if err != nil {
			return nil, err
		}
		list := make([]*expr.Expr, 0, len(t.List))
		for _, le := range t.List {
			l, err := b.build(le, hint)
			if err != nil {
				return nil, err
			}
			list = append(list, l)
		}
		in := expr.In(x, list...)
		if t.Not {
			return expr.Not(in), nil
		}
		return in, nil
	case CallExpr:
		switch t.Fn {
		case "YEAR":
			a, err := b.build(t.Args[0], hintCol)
			if err != nil {
				return nil, err
			}
			return expr.Year(a), nil
		case "SUBSTRING":
			args := make([]*expr.Expr, 3)
			for i, ae := range t.Args {
				a, err := b.build(ae, "")
				if err != nil {
					return nil, err
				}
				args[i] = a
			}
			return expr.New(expr.OpSubstr, args...), nil
		case "DATE_ADD_DAY", "DATE_ADD_MONTH", "DATE_ADD_YEAR":
			base, err := b.build(t.Args[0], hintCol)
			if err != nil {
				return nil, err
			}
			amt, err := b.build(t.Args[1], "")
			if err != nil {
				return nil, err
			}
			if base.Op != expr.OpConst || amt.Op != expr.OpConst {
				return nil, fmt.Errorf("sql: INTERVAL arithmetic needs constant operands")
			}
			n := int(amt.Val.I)
			switch t.Fn {
			case "DATE_ADD_DAY":
				return expr.Const(base.Val.AddDays(n)), nil
			case "DATE_ADD_MONTH":
				return expr.Const(base.Val.AddMonths(n)), nil
			default:
				return expr.Const(base.Val.AddMonths(12 * n)), nil
			}
		default:
			return nil, fmt.Errorf("sql: unsupported function %s", t.Fn)
		}
	default:
		return nil, fmt.Errorf("sql: unsupported expression")
	}
}

// collectCols gathers column names referenced by an AST expression.
func collectCols(e Expr, into map[string]bool) {
	switch t := e.(type) {
	case ColRef:
		into[t.Name] = true
	case BinExpr:
		collectCols(t.L, into)
		collectCols(t.R, into)
	case NotExpr:
		collectCols(t.E, into)
	case BetweenExpr:
		collectCols(t.E, into)
		collectCols(t.Lo, into)
		collectCols(t.Hi, into)
	case InExpr:
		collectCols(t.E, into)
		for _, l := range t.List {
			collectCols(l, into)
		}
	case CallExpr:
		for _, a := range t.Args {
			collectCols(a, into)
		}
	}
}

func (s *Session) execSelect(st *SelectStmt, tr *obs.Trace, tc obs.TraceContext) (*Result, error) {
	tbl, err := s.Eng.Table(st.Table)
	if err != nil {
		return nil, err
	}
	idx := tbl.Primary
	schema := tbl.Schema

	// Expand * into all columns.
	items := st.Items
	if len(items) == 1 && items[0].Star {
		items = nil
		for _, c := range schema.Cols {
			items = append(items, SelectItem{Col: c.Name})
		}
	}

	// Determine the scan's output column set: plain select columns,
	// group columns, aggregate-argument columns, order columns, and —
	// as the paper's NDP projection always does — the primary key.
	need := map[string]bool{}
	for _, it := range items {
		if it.Col != "" {
			need[it.Col] = true
		}
		if it.AggArg != nil {
			collectCols(it.AggArg, need)
		}
	}
	for _, g := range st.GroupBy {
		need[g] = true
	}
	for _, o := range st.OrderBy {
		// Order keys that name select aliases are resolved later.
		if schema.ColIndex(o.Col) >= 0 {
			need[o.Col] = true
		}
	}
	for _, k := range tbl.PKCols {
		need[schema.Cols[k].Name] = true
	}
	var output []int
	outPos := map[string]int{}
	for i, c := range schema.Cols {
		if need[c.Name] {
			outPos[c.Name] = len(output)
			output = append(output, i)
		}
	}

	// WHERE over the full schema.
	fullBuilder := &exprBuilder{schema: schema, resolve: func(name string) (int, error) {
		o := schema.ColIndex(name)
		if o < 0 {
			return 0, fmt.Errorf("sql: unknown column %q", name)
		}
		return o, nil
	}}
	var where *expr.Expr
	if st.Where != nil {
		if where, err = fullBuilder.build(st.Where, ""); err != nil {
			return nil, err
		}
	}

	// Aggregates over the output layout.
	outSchema := schema.Project(output)
	outBuilder := &exprBuilder{schema: outSchema, resolve: func(name string) (int, error) {
		p, ok := outPos[name]
		if !ok {
			return 0, fmt.Errorf("sql: column %q not available after projection", name)
		}
		return p, nil
	}}

	spec := &plan.AccessSpec{
		Table: st.Table, Index: idx,
		Predicate: where, Output: output, LastInBlock: true,
	}
	hasAgg := false
	for _, it := range items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	if hasAgg {
		for _, g := range st.GroupBy {
			p, ok := outPos[g]
			if !ok {
				return nil, fmt.Errorf("sql: unknown GROUP BY column %q", g)
			}
			spec.GroupBy = append(spec.GroupBy, p)
		}
		for _, it := range items {
			if it.Agg == "" {
				// Plain columns must be grouping columns.
				found := false
				for _, g := range st.GroupBy {
					if g == it.Col {
						found = true
					}
				}
				if !found {
					return nil, fmt.Errorf("sql: column %q must appear in GROUP BY", it.Col)
				}
				continue
			}
			cand := plan.AggCandidate{Name: itemName(it), ArgCol: -1}
			switch it.Agg {
			case "COUNT":
				if it.AggArg == nil {
					cand.Fn = core.AggCountStar
				} else {
					cand.Fn = core.AggCount
				}
			case "SUM":
				cand.Fn = core.AggSum
			case "MIN":
				cand.Fn = core.AggMin
			case "MAX":
				cand.Fn = core.AggMax
			case "AVG":
				cand.Avg = true
			}
			if it.AggArg != nil {
				arg, err := outBuilder.build(it.AggArg, "")
				if err != nil {
					return nil, err
				}
				if arg.Op == expr.OpCol {
					cand.ArgCol = arg.Col
				} else {
					cand.ArgExpr = arg
				}
			}
			spec.Aggs = append(spec.Aggs, cand)
		}
	}

	if st.Explain {
		dec := s.Cat.Decide(spec)
		return &Result{Explain: renderExplain(st, idx, spec, dec)}, nil
	}

	op, _, err := s.Cat.BuildAccess(spec, s.NDP, nil)
	if err != nil {
		return nil, err
	}
	tr.Step("plan")

	// Final projection to the SELECT item order.
	var finalExprs []*expr.Expr
	var finalNames []string
	if hasAgg {
		// BuildAccess output layout: group cols (spec.GroupBy order)
		// then aggregates (spec.Aggs order).
		aggBase := len(spec.GroupBy)
		aggIdx := 0
		for _, it := range items {
			if it.Agg == "" {
				for gi, g := range st.GroupBy {
					if g == it.Col {
						finalExprs = append(finalExprs, expr.Col(gi, it.Col))
					}
				}
				finalNames = append(finalNames, itemName(it))
				continue
			}
			finalExprs = append(finalExprs, expr.Col(aggBase+aggIdx, itemName(it)))
			finalNames = append(finalNames, itemName(it))
			aggIdx++
		}
	} else {
		for _, it := range items {
			p, ok := outPos[it.Col]
			if !ok {
				return nil, fmt.Errorf("sql: unknown column %q", it.Col)
			}
			finalExprs = append(finalExprs, expr.Col(p, it.Col))
			finalNames = append(finalNames, itemName(it))
		}
	}
	op = &exec.Project{Input: op, Exprs: finalExprs, Names: finalNames}

	if len(st.OrderBy) > 0 {
		keys := make([]exec.OrderKey, len(st.OrderBy))
		for i, o := range st.OrderBy {
			pos := -1
			for j, n := range finalNames {
				if n == o.Col {
					pos = j
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("sql: ORDER BY column %q must appear in SELECT", o.Col)
			}
			keys[i] = exec.OrderKey{Expr: expr.Col(pos, o.Col), Desc: o.Desc}
		}
		op = &exec.Sort{Input: op, Keys: keys}
	}
	if st.Limit >= 0 {
		op = &exec.Limit{Input: op, N: st.Limit}
	}

	ctx := exec.NewCtx(s.Eng)
	ctx.Trace = tc
	rows, err := exec.Run(ctx, op)
	if err != nil {
		return nil, err
	}
	tr.Step("execute")
	return &Result{Columns: finalNames, Rows: rows}, nil
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != "" {
		if it.AggArg == nil {
			return strings.ToLower(it.Agg) + "(*)"
		}
		if c, ok := it.AggArg.(ColRef); ok {
			return strings.ToLower(it.Agg) + "(" + c.Name + ")"
		}
		return strings.ToLower(it.Agg)
	}
	return it.Col
}

// renderExplain produces the Listing 2 style EXPLAIN output.
func renderExplain(st *SelectStmt, idx *engine.Index, spec *plan.AccessSpec, dec plan.Decision) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "-> Index scan on %s using %s", st.Table, idx.Name)
	if dec.NDPEnabled() {
		fmt.Fprintf(&sb, " (NDP scan)")
	}
	sb.WriteByte('\n')
	if extras := plan.ExplainExtras(spec, dec); extras != "" {
		fmt.Fprintf(&sb, "   %s\n", extras)
	}
	if spec.Residual != nil {
		fmt.Fprintf(&sb, "   Residual condition: %s\n", spec.Residual)
	}
	for _, r := range dec.Reasons {
		fmt.Fprintf(&sb, "   note: %s\n", r)
	}
	return sb.String()
}
