package sql

import (
	"strings"
	"testing"

	"taurus/internal/testutil"
)

func newSession(t testing.TB) *Session {
	t.Helper()
	c, err := testutil.NewCluster(testutil.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(c.Engine)
	s.Cat.NDPPageThreshold = 1 // tiny tables still demonstrate NDP
	return s
}

// loadWorker creates the paper's Listing 1 Worker table.
func loadWorker(t testing.TB, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE worker (
		id BIGINT NOT NULL, age INT, join_date DATE, salary DECIMAL(15,2),
		name VARCHAR, PRIMARY KEY(id))`)
	// Insert a few thousand rows in batches.
	var sb strings.Builder
	sb.WriteString("INSERT INTO worker VALUES ")
	n := 0
	for y := 2005; y <= 2014; y++ {
		for i := 0; i < 60; i++ {
			if n > 0 {
				sb.WriteString(", ")
			}
			age := 20 + (n*7)%40
			sb.WriteString(strings.Join([]string{
				"(", itoa(n), ",", itoa(age), ", DATE '", ymd(y, 1+i%12, 1+i%28),
				"', ", itoa(3000 + n%5000), ".50, 'w", itoa(n), "')",
			}, ""))
			n++
		}
	}
	mustExec(t, s, sb.String())
}

func itoa(n int) string {
	return strings.TrimSpace(strings.Replace(strings.Repeat(" ", 0)+fmtInt(n), " ", "", -1))
}

func fmtInt(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		b = append([]byte{'-'}, b...)
	}
	return string(b)
}

func ymd(y, m, d int) string {
	pad := func(v int) string {
		if v < 10 {
			return "0" + fmtInt(v)
		}
		return fmtInt(v)
	}
	return fmtInt(y) + "-" + pad(m) + "-" + pad(d)
}

func mustExec(t testing.TB, s *Session, q string) *Result {
	t.Helper()
	r, err := s.Exec(q)
	if err != nil {
		t.Fatalf("exec %q: %v", q[:min(len(q), 80)], err)
	}
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCreateInsertSelect(t *testing.T) {
	s := newSession(t)
	loadWorker(t, s)
	r := mustExec(t, s, "SELECT COUNT(*) FROM worker")
	if len(r.Rows) != 1 || r.Rows[0][0].I != 600 {
		t.Fatalf("count = %v", r.Rows)
	}
	r = mustExec(t, s, "SELECT id, age FROM worker WHERE age < 25 ORDER BY id LIMIT 5")
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Columns[0] != "id" || r.Columns[1] != "age" {
		t.Fatalf("columns = %v", r.Columns)
	}
	for _, row := range r.Rows {
		if row[1].I >= 25 {
			t.Fatalf("filter failed: %v", row)
		}
	}
}

// TestListing1SalaryQuery runs the paper's example query end to end.
func TestListing1SalaryQuery(t *testing.T) {
	s := newSession(t)
	loadWorker(t, s)
	q := `SELECT AVG(salary) FROM worker
	      WHERE age < 40 AND
	            join_date >= DATE '2010-01-01' AND
	            join_date < DATE '2010-01-01' + INTERVAL '1' YEAR`
	r := mustExec(t, s, q)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][0].IsNull() {
		t.Fatal("average should not be NULL")
	}
	// NDP off must agree.
	s.NDP = false
	r2 := mustExec(t, s, q)
	if r.Rows[0][0].Float() != r2.Rows[0][0].Float() {
		t.Fatalf("NDP on %v vs off %v", r.Rows[0][0], r2.Rows[0][0])
	}
}

// TestListing2Explain checks the EXPLAIN extras match the paper's
// Listing 2 shape.
func TestListing2Explain(t *testing.T) {
	s := newSession(t)
	loadWorker(t, s)
	s.Eng.Pool().Clear()
	r := mustExec(t, s, `EXPLAIN SELECT AVG(salary) FROM worker
	      WHERE age < 40 AND
	            join_date >= DATE '2010-01-01' AND
	            join_date < DATE '2010-01-01' + INTERVAL '1' YEAR`)
	for _, want := range []string{
		"Using pushed NDP condition",
		"join_date >= DATE'2010-01-01'",
		"join_date < DATE'2011-01-01'",
		"(age < 40)",
		"Using pushed NDP columns",
		"Using pushed NDP aggregate",
	} {
		if !strings.Contains(r.Explain, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, r.Explain)
		}
	}
}

func TestGroupByOrderBy(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE kv (g INT, i INT, v INT, PRIMARY KEY(g, i))")
	mustExec(t, s, "INSERT INTO kv VALUES (1,1,10),(1,2,20),(2,1,5),(2,2,7),(3,1,1)")
	r := mustExec(t, s, "SELECT g, SUM(v) AS total, COUNT(*) FROM kv GROUP BY g ORDER BY total DESC")
	if len(r.Rows) != 3 {
		t.Fatalf("groups = %d", len(r.Rows))
	}
	if r.Rows[0][0].I != 1 || r.Rows[0][1].I != 30 || r.Rows[0][2].I != 2 {
		t.Fatalf("first group = %v", r.Rows[0])
	}
	if r.Rows[2][0].I != 3 {
		t.Fatalf("last group = %v", r.Rows[2])
	}
}

func TestSelectStar(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE p (id INT, v VARCHAR, PRIMARY KEY(id))")
	mustExec(t, s, "INSERT INTO p VALUES (1, 'a'), (2, 'b')")
	r := mustExec(t, s, "SELECT * FROM p ORDER BY id")
	if len(r.Rows) != 2 || len(r.Columns) != 2 || r.Rows[1][1].S != "b" {
		t.Fatalf("star select = %v %v", r.Columns, r.Rows)
	}
}

func TestWhereVariants(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE w (id INT, v INT, nm VARCHAR, PRIMARY KEY(id))")
	mustExec(t, s, "INSERT INTO w VALUES (1, 5, 'alpha'), (2, 10, 'beta'), (3, 15, 'alpine'), (4, 20, 'gamma')")
	cases := []struct {
		where string
		want  int
	}{
		{"v BETWEEN 10 AND 15", 2},
		{"v IN (5, 20)", 2},
		{"v NOT IN (5, 20)", 2},
		{"nm LIKE 'alp%'", 2},
		{"nm NOT LIKE 'alp%'", 2},
		{"NOT v = 5", 3},
		{"v > 5 AND v < 20", 2},
		{"v = 5 OR nm = 'gamma'", 2},
		{"v * 2 = 20", 1},
		{"SUBSTRING(nm, 1, 1) = 'a'", 2},
	}
	for _, c := range cases {
		r := mustExec(t, s, "SELECT id FROM w WHERE "+c.where)
		if len(r.Rows) != c.want {
			t.Errorf("WHERE %s: %d rows, want %d", c.where, len(r.Rows), c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	s := newSession(t)
	for _, q := range []string{
		"SELEC 1",
		"SELECT FROM",
		"CREATE TABLE t (id INT)", // no primary key
		"SELECT id FROM nosuch",
		"INSERT INTO nosuch VALUES (1)",
		"SELECT id FROM worker WHERE (id",
		"SELECT MIN(*) FROM worker",
		"",
	} {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestYearFunction(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE d (id INT, dt DATE, PRIMARY KEY(id))")
	mustExec(t, s, "INSERT INTO d VALUES (1, DATE '1995-06-17'), (2, DATE '1996-01-02')")
	r := mustExec(t, s, "SELECT id FROM d WHERE YEAR(dt) = 1995")
	if len(r.Rows) != 1 || r.Rows[0][0].I != 1 {
		t.Fatalf("YEAR filter = %v", r.Rows)
	}
}
