// Package sql implements a small SQL front end over the engine: a lexer
// and recursive-descent parser for the dialect the examples and the
// interactive shell use (CREATE TABLE / INSERT / single-table SELECT
// with aggregation), a planner that routes table accesses through the
// NDP post-processing optimizer, and EXPLAIN output that reproduces the
// paper's Listing 2 extras ("Using pushed NDP condition ...; Using
// pushed NDP columns; Using pushed NDP aggregate").
package sql

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input; SQL keywords are returned as tokIdent and
// matched case-insensitively by the parser.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		case c >= '0' && c <= '9':
			start := l.pos
			seenDot := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch == '.' && !seenDot {
					seenDot = true
					l.pos++
					continue
				}
				if ch < '0' || ch > '9' {
					break
				}
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sql: unterminated string at %d", l.pos)
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{tokString, sb.String(), l.pos})
		default:
			start := l.pos
			two := ""
			if l.pos+2 <= len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				l.pos += 2
				l.toks = append(l.toks, token{tokOp, two, start})
				continue
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '<', '>', '=', ';', '.':
				l.pos++
				l.toks = append(l.toks, token{tokOp, string(c), start})
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
