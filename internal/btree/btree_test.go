package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"taurus/internal/page"
	"taurus/internal/types"
	"taurus/internal/wal"
)

// memPager is an in-memory Pager double: a page map plus an LSN counter.
// The engine's real implementation additionally distributes records to
// Log Stores and Page Stores.
type memPager struct {
	pages   map[uint64]*page.Page
	nextID  uint64
	lsn     atomic.Uint64
	applied []wal.Record
}

func newMemPager() *memPager {
	return &memPager{pages: make(map[uint64]*page.Page), nextID: 1}
}

func (m *memPager) Read(pageID uint64) (*page.Page, error) {
	pg, ok := m.pages[pageID]
	if !ok {
		return nil, fmt.Errorf("memPager: page %d not found", pageID)
	}
	return pg, nil
}

func (m *memPager) Allocate() uint64 {
	id := m.nextID
	m.nextID++
	return id
}

func (m *memPager) Apply(rec *wal.Record) (*page.Page, error) {
	rec.LSN = m.lsn.Add(1)
	m.applied = append(m.applied, *rec)
	if rec.Type == wal.TypeFormatPage {
		pg := page.New(rec.PageID, rec.IndexID, rec.Level)
		pg.SetLSN(rec.LSN)
		m.pages[rec.PageID] = pg
		return pg, nil
	}
	pg, err := m.Read(rec.PageID)
	if err != nil {
		return nil, err
	}
	if err := wal.Apply(pg, rec); err != nil {
		return nil, err
	}
	return pg, nil
}

func (m *memPager) CurrentLSN() uint64 { return m.lsn.Load() }

func intKey(v int64) []byte {
	return types.EncodeKey(nil, types.Row{types.NewInt(v)})
}

// collectAll walks the leaf chain from the first leaf and returns every
// (key, row) pair in order.
func collectAll(t *testing.T, pgr Pager, tree *Tree) (keys [][]byte, rows [][]byte) {
	t.Helper()
	leafID, err := tree.FirstLeaf()
	if err != nil {
		t.Fatal(err)
	}
	for leafID != page.InvalidPageID {
		pg, err := pgr.Read(leafID)
		if err != nil {
			t.Fatal(err)
		}
		pg.Iter(func(r page.Record) bool {
			if r.Deleted {
				return true
			}
			k, row, err := page.SplitLeafPayload(r.Payload)
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, append([]byte(nil), k...))
			rows = append(rows, append([]byte(nil), row...))
			return true
		})
		leafID = pg.NextPage()
	}
	return keys, rows
}

func TestCreateEmptyTree(t *testing.T) {
	m := newMemPager()
	tree, err := Create(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Height() != 1 {
		t.Fatalf("height = %d", tree.Height())
	}
	root, err := m.Read(tree.Root())
	if err != nil {
		t.Fatal(err)
	}
	if root.Level() != 0 || root.IndexID() != 5 {
		t.Fatal("root should be an empty leaf for index 5")
	}
	leaf, err := tree.FirstLeaf()
	if err != nil || leaf != tree.Root() {
		t.Fatalf("FirstLeaf = %d, %v", leaf, err)
	}
}

func TestInsertAndScanSorted(t *testing.T) {
	m := newMemPager()
	tree, _ := Create(m, 1)
	// Insert shuffled keys.
	n := 500
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, v := range perm {
		row := []byte(fmt.Sprintf("row-%d", v))
		if _, err := tree.Insert(intKey(int64(v)), row, 42); err != nil {
			t.Fatal(err)
		}
	}
	keys, rows := collectAll(t, m, tree)
	if len(keys) != n {
		t.Fatalf("scanned %d keys, want %d", len(keys), n)
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) > 0 {
			t.Fatalf("keys out of order at %d", i)
		}
	}
	for i, r := range rows {
		if want := fmt.Sprintf("row-%d", i); string(r) != want {
			t.Fatalf("row %d = %q, want %q", i, r, want)
		}
	}
}

func TestSortedBulkInsertGrowsRight(t *testing.T) {
	m := newMemPager()
	tree, _ := Create(m, 1)
	row := bytes.Repeat([]byte("x"), 100)
	n := 2000
	for i := 0; i < n; i++ {
		if _, err := tree.Insert(intKey(int64(i)), row, 1); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Height() < 2 {
		t.Fatalf("tree should have grown, height=%d", tree.Height())
	}
	keys, _ := collectAll(t, m, tree)
	if len(keys) != n {
		t.Fatalf("got %d keys", len(keys))
	}
	// Sorted loads should fill pages well: with ~140 rows/page at 100%
	// fill, 2000 rows need ~15 leaves; a half-split strategy would use
	// ~2x. Count leaves.
	leaves := 0
	leafID, _ := tree.FirstLeaf()
	for leafID != page.InvalidPageID {
		pg, _ := m.Read(leafID)
		leaves++
		leafID = pg.NextPage()
	}
	if leaves > 20 {
		t.Errorf("sorted load used %d leaves; rightmost-split fast path not engaged", leaves)
	}
}

func TestSeekLeaf(t *testing.T) {
	m := newMemPager()
	tree, _ := Create(m, 1)
	for i := 0; i < 1000; i++ {
		tree.Insert(intKey(int64(i*2)), []byte("r"), 1)
	}
	// Seek an existing key and a missing key; the leaf must contain the
	// right range.
	for _, probe := range []int64{0, 500, 999, 1998} {
		leafID, err := tree.SeekLeaf(intKey(probe))
		if err != nil {
			t.Fatal(err)
		}
		pg, _ := m.Read(leafID)
		lo, hi := leafKeyRange(t, pg)
		pk := intKey(probe)
		if bytes.Compare(pk, lo) < 0 && leafID != mustFirstLeaf(t, tree) {
			t.Errorf("probe %d before leaf range", probe)
		}
		_ = hi
	}
}

func mustFirstLeaf(t *testing.T, tree *Tree) uint64 {
	t.Helper()
	id, err := tree.FirstLeaf()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func leafKeyRange(t *testing.T, pg *page.Page) (lo, hi []byte) {
	t.Helper()
	pg.Iter(func(r page.Record) bool {
		k, _, err := page.SplitLeafPayload(r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if lo == nil {
			lo = append([]byte(nil), k...)
		}
		hi = append(hi[:0], k...)
		return true
	})
	return lo, hi
}

func TestCollectBatchFullScan(t *testing.T) {
	m := newMemPager()
	tree, _ := Create(m, 1)
	row := bytes.Repeat([]byte("y"), 64)
	n := 3000
	for i := 0; i < n; i++ {
		tree.Insert(intKey(int64(i)), row, 1)
	}
	if tree.Height() < 2 {
		t.Skip("tree too small for batch collection")
	}
	batch, err := tree.CollectBatch(nil, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if batch.LSN != m.CurrentLSN() {
		t.Errorf("batch LSN %d != current %d", batch.LSN, m.CurrentLSN())
	}
	// The batch must cover exactly the leaf chain.
	var chain []uint64
	leafID, _ := tree.FirstLeaf()
	for leafID != page.InvalidPageID {
		pg, _ := m.Read(leafID)
		chain = append(chain, leafID)
		leafID = pg.NextPage()
	}
	if len(batch.LeafIDs) != len(chain) {
		t.Fatalf("batch has %d leaves, chain has %d", len(batch.LeafIDs), len(chain))
	}
	for i := range chain {
		if batch.LeafIDs[i] != chain[i] {
			t.Fatalf("batch[%d] = %d, chain %d", i, batch.LeafIDs[i], chain[i])
		}
	}
}

func TestCollectBatchRangeBoundaries(t *testing.T) {
	m := newMemPager()
	tree, _ := Create(m, 1)
	row := bytes.Repeat([]byte("z"), 128)
	n := 4000
	for i := 0; i < n; i++ {
		tree.Insert(intKey(int64(i)), row, 1)
	}
	// Range [1000, 1500]: the batch must include every leaf that could
	// hold those keys and stop well short of the full chain.
	batch, err := tree.CollectBatch(intKey(1000), intKey(1500), 10000)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := tree.CollectBatch(nil, nil, 10000)
	if len(batch.LeafIDs) >= len(full.LeafIDs) {
		t.Errorf("range batch (%d) should be smaller than full scan (%d)", len(batch.LeafIDs), len(full.LeafIDs))
	}
	// Verify coverage: every key in [1000,1500] lives in a batched leaf.
	inBatch := map[uint64]bool{}
	for _, id := range batch.LeafIDs {
		inBatch[id] = true
	}
	for k := int64(1000); k <= 1500; k++ {
		leafID, err := tree.SeekLeaf(intKey(k))
		if err != nil {
			t.Fatal(err)
		}
		if !inBatch[leafID] {
			t.Fatalf("leaf %d for key %d missing from batch", leafID, k)
		}
	}
}

func TestCollectBatchMaxPages(t *testing.T) {
	m := newMemPager()
	tree, _ := Create(m, 1)
	row := bytes.Repeat([]byte("w"), 128)
	for i := 0; i < 4000; i++ {
		tree.Insert(intKey(int64(i)), row, 1)
	}
	batch, err := tree.CollectBatch(nil, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.LeafIDs) != 3 {
		t.Fatalf("maxPages=3 returned %d leaves", len(batch.LeafIDs))
	}
	// Resume from the first key of the leaf after the batch: a second
	// batch continues the chain.
	lastPg, _ := m.Read(batch.LeafIDs[len(batch.LeafIDs)-1])
	next := lastPg.NextPage()
	if next == page.InvalidPageID {
		t.Fatal("expected more leaves")
	}
	nextPg, _ := m.Read(next)
	lo, _ := leafKeyRange(t, nextPg)
	b2, err := tree.CollectBatch(lo, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.LeafIDs) == 0 || b2.LeafIDs[0] != next {
		t.Fatalf("resume batch starts at %v, want %d", b2.LeafIDs, next)
	}
}

func TestDuplicateKeysPreserved(t *testing.T) {
	m := newMemPager()
	tree, _ := Create(m, 1)
	for i := 0; i < 50; i++ {
		if _, err := tree.Insert(intKey(7), []byte(fmt.Sprintf("dup-%d", i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	keys, _ := collectAll(t, m, tree)
	if len(keys) != 50 {
		t.Fatalf("got %d duplicate keys", len(keys))
	}
}

// Property: random insert workloads keep the scan sorted and complete,
// across random page pressure (varying row sizes force splits).
func TestTreeInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := newMemPager()
		tree, err := Create(m, 1)
		if err != nil {
			return false
		}
		n := 50 + r.Intn(400)
		inserted := map[int64]bool{}
		for i := 0; i < n; i++ {
			k := r.Int63n(10000)
			for inserted[k] {
				k = r.Int63n(10000)
			}
			inserted[k] = true
			row := bytes.Repeat([]byte("r"), 1+r.Intn(300))
			if _, err := tree.Insert(intKey(k), row, 1); err != nil {
				return false
			}
		}
		keys, _ := collectAll(t, m, tree)
		if len(keys) != len(inserted) {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if bytes.Compare(keys[i-1], keys[i]) >= 0 {
				return false
			}
		}
		// Every key seeks to a leaf that actually holds it.
		for k := range inserted {
			leafID, err := tree.SeekLeaf(intKey(k))
			if err != nil {
				return false
			}
			pg, err := m.Read(leafID)
			if err != nil {
				return false
			}
			found := false
			pg.Iter(func(rec page.Record) bool {
				kk, _, _ := page.SplitLeafPayload(rec.Payload)
				if bytes.Equal(kk, intKey(k)) {
					found = true
					return false
				}
				return true
			})
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Replaying the redo stream on a fresh page map must produce an identical
// tree — the replication invariant Page Stores depend on.
func TestRedoReplayConvergence(t *testing.T) {
	m := newMemPager()
	tree, _ := Create(m, 1)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 800; i++ {
		tree.Insert(intKey(r.Int63n(100000)), bytes.Repeat([]byte("p"), 1+r.Intn(200)), 9)
	}
	// Replay.
	replica := map[uint64]*page.Page{}
	for i := range m.applied {
		rec := &m.applied[i]
		if rec.Type == wal.TypeFormatPage {
			pg := page.New(rec.PageID, rec.IndexID, rec.Level)
			pg.SetLSN(rec.LSN)
			replica[rec.PageID] = pg
			continue
		}
		if err := wal.Apply(replica[rec.PageID], rec); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	if len(replica) != len(m.pages) {
		t.Fatalf("replica has %d pages, primary %d", len(replica), len(m.pages))
	}
	for id, pg := range m.pages {
		if !bytes.Equal(pg.Bytes(), replica[id].Bytes()) {
			t.Fatalf("page %d diverged after replay", id)
		}
	}
}
