// Package btree implements the B+ tree that backs every table and index
// access: "An InnoDB table is always accessed by scanning an index
// (primary or secondary) in forward or reverse order" (§IV-A).
//
// Trees are page-based. Interior records are node pointers (key, child
// page id); leaf records hold (key, row) payloads. Leaves are chained
// with prev/next links. Every structural mutation is expressed as a redo
// log record handed to the Pager, which assigns an LSN, makes the record
// durable, distributes it to the Page Stores hosting the slice, and
// applies it to the locally cached page — so the compute node's view and
// the storage replicas converge on identical page images.
//
// The batch-read machinery of §IV-C4 lives here too: CollectBatch
// traverses the share-locked sub-tree down to level 1, extracts the child
// leaf page IDs within the scan boundaries, and returns them with the LSN
// stamped at collection time.
package btree

import (
	"bytes"
	"fmt"
	"sync"

	"taurus/internal/page"
	"taurus/internal/wal"
)

// Pager supplies pages to the tree and carries mutations to storage.
type Pager interface {
	// Read returns the current cached copy of a page for traversal. The
	// returned page is shared; the tree only mutates it through Apply.
	Read(pageID uint64) (*page.Page, error)
	// Allocate reserves a fresh page ID.
	Allocate() uint64
	// Apply logs the mutation (assigning the record's LSN), applies it
	// to the cached copy, and distributes it to storage. For
	// TypeFormatPage it creates the page. It returns the affected page.
	Apply(rec *wal.Record) (*page.Page, error)
	// CurrentLSN returns the latest assigned LSN; batch reads are
	// stamped with it.
	CurrentLSN() uint64
}

// Tree is one B+ tree (a primary or secondary index).
type Tree struct {
	IndexID uint64

	mu     sync.RWMutex
	pager  Pager
	rootID uint64
	height int // 1 = root is a leaf
}

// Create builds an empty tree with a fresh leaf root.
func Create(pager Pager, indexID uint64) (*Tree, error) {
	t, _, err := CreateAt(pager, indexID)
	return t, err
}

// CreateAt is Create returning also the LSN assigned to the root's
// FormatPage record, so DDL can wait for exactly its own records to
// become durable instead of a global allocator snapshot.
func CreateAt(pager Pager, indexID uint64) (*Tree, uint64, error) {
	rootID := pager.Allocate()
	rec := &wal.Record{
		Type: wal.TypeFormatPage, PageID: rootID, IndexID: indexID, Level: 0,
	}
	if _, err := pager.Apply(rec); err != nil {
		return nil, 0, err
	}
	return &Tree{IndexID: indexID, pager: pager, rootID: rootID, height: 1}, rec.LSN, nil
}

// Attach re-binds a tree to pages that already exist in storage — the
// recovery path, where the root page ID and height are reconstructed
// from the durable log's FormatPage records rather than created fresh.
func Attach(pager Pager, indexID, rootID uint64, height int) *Tree {
	return &Tree{IndexID: indexID, pager: pager, rootID: rootID, height: height}
}

// SetRoot re-binds the tree to a new root page — the read-replica path,
// where a tailed FormatPage record at a higher level announces that the
// master split the root. Height is 1 for a leaf root.
func (t *Tree) SetRoot(rootID uint64, height int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rootID = rootID
	t.height = height
}

// Root returns the current root page ID.
func (t *Tree) Root() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rootID
}

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// descend returns the path of (pageID, recOff-of-chosen-child) from the
// root to the leaf that may contain key. The last element is the leaf.
type pathEntry struct {
	pageID uint64
	// chosenOff is the heap offset of the node-pointer record followed
	// (interior levels only).
	chosenOff int
}

func (t *Tree) descendLocked(key []byte) ([]pathEntry, error) {
	var path []pathEntry
	cur := t.rootID
	for {
		pg, err := t.pager.Read(cur)
		if err != nil {
			return nil, err
		}
		path = append(path, pathEntry{pageID: cur})
		if pg.Level() == 0 {
			return path, nil
		}
		// Choose the last node pointer with key <= search key; default
		// to the first child for keys before every separator.
		chosen := 0
		var chosenChild uint64
		first := true
		stop := false
		pg.Iter(func(r page.Record) bool {
			k, child, err2 := page.SplitNodePtr(r.Payload)
			if err2 != nil {
				err = err2
				return false
			}
			if first {
				chosen, chosenChild, first = r.Off, child, false
				if bytes.Compare(k, key) > 0 {
					stop = true
					return false
				}
				return true
			}
			if bytes.Compare(k, key) > 0 {
				stop = true
				return false
			}
			chosen, chosenChild = r.Off, child
			return true
		})
		_ = stop
		if err != nil {
			return nil, err
		}
		if first {
			return nil, fmt.Errorf("btree: interior page %d is empty", cur)
		}
		path[len(path)-1].chosenOff = chosen
		cur = chosenChild
	}
}

// Insert adds a (key, row) pair with the given transaction ID. Duplicate
// keys are appended after existing equal keys, preserving insertion order
// among duplicates (secondary indexes append the primary key to make keys
// unique, so exact duplicates only occur transiently).
//
// It returns the LSN assigned to the insert's own log record. LSNs are
// allocated in order and the row record is always the operation's last,
// so this LSN also covers every structural record (splits, sibling
// links, node pointers) the insert caused — waiting for it durably
// covers the whole operation.
func (t *Tree) Insert(key, row []byte, trxID uint64) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	path, err := t.descendLocked(key)
	if err != nil {
		return 0, err
	}
	leafID := path[len(path)-1].pageID
	leaf, err := t.pager.Read(leafID)
	if err != nil {
		return 0, err
	}
	payload := page.EncodeLeafPayload(nil, key, row)
	if !leaf.HasRoomFor(len(payload)) {
		leaf, err = t.splitLocked(path, key)
		if err != nil {
			return 0, err
		}
		if !leaf.HasRoomFor(len(payload)) {
			return 0, fmt.Errorf("btree: record of %d bytes cannot fit a page", len(payload))
		}
	}
	prev := findInsertPos(leaf, key)
	rec := &wal.Record{
		Type: wal.TypeInsertRec, PageID: leaf.ID(), Off: uint32(prev),
		RecType: page.RecOrdinary, TrxID: trxID, Payload: payload,
	}
	if _, err := t.pager.Apply(rec); err != nil {
		return 0, err
	}
	return rec.LSN, nil
}

// findInsertPos returns the heap offset of the record after which key
// should be inserted (0 = head).
func findInsertPos(leaf *page.Page, key []byte) int {
	prev := 0
	for off := leaf.FirstRecord(); off != 0; {
		r := leaf.RecordAt(off)
		k, _, err := page.SplitLeafPayload(r.Payload)
		if err != nil || bytes.Compare(k, key) > 0 {
			break
		}
		prev = off
		off = r.Next()
	}
	return prev
}

func lastPos(pg *page.Page) int {
	last := 0
	for off := pg.FirstRecord(); off != 0; {
		r := pg.RecordAt(off)
		last = off
		off = r.Next()
	}
	return last
}

// splitLocked splits the leaf at the end of path (splitting ancestors as
// needed) and returns the leaf that should now receive key.
func (t *Tree) splitLocked(path []pathEntry, key []byte) (*page.Page, error) {
	leafID := path[len(path)-1].pageID
	leaf, err := t.pager.Read(leafID)
	if err != nil {
		return nil, err
	}
	// Fast path for sorted (bulk) inserts: when the full leaf is the
	// rightmost and the key sorts after everything in it, open a fresh
	// rightmost leaf instead of half-splitting — pages load ~100% full.
	if leaf.NextPage() == page.InvalidPageID {
		if lk, err := lastKeyOf(leaf); err == nil && lk != nil && bytes.Compare(key, lk) >= 0 {
			newID := t.pager.Allocate()
			if _, err := t.pager.Apply(&wal.Record{
				Type: wal.TypeFormatPage, PageID: newID, IndexID: t.IndexID, Level: 0,
			}); err != nil {
				return nil, err
			}
			if err := t.linkSiblings(leafID, newID); err != nil {
				return nil, err
			}
			if err := t.insertNodePtr(path[:len(path)-1], append([]byte(nil), key...), newID, 0); err != nil {
				return nil, err
			}
			return t.pager.Read(newID)
		}
	}
	newLeafID, sepKey, err := t.splitPage(leafID)
	if err != nil {
		return nil, err
	}
	if err := t.insertNodePtr(path[:len(path)-1], sepKey, newLeafID, 0); err != nil {
		return nil, err
	}
	// Decide which half receives the key.
	target := leafID
	if bytes.Compare(key, sepKey) >= 0 {
		target = newLeafID
	}
	return t.pager.Read(target)
}

// splitPage moves the upper half of pg's records to a fresh page,
// returning the new page ID and the separator key (first key of the new
// page). Works for leaves and interior pages.
func (t *Tree) splitPage(pageID uint64) (uint64, []byte, error) {
	pg, err := t.pager.Read(pageID)
	if err != nil {
		return 0, nil, err
	}
	recs := pg.Records()
	if len(recs) < 2 {
		return 0, nil, fmt.Errorf("btree: cannot split page %d with %d records", pageID, len(recs))
	}
	mid := len(recs) / 2
	newID := t.pager.Allocate()
	if _, err := t.pager.Apply(&wal.Record{
		Type: wal.TypeFormatPage, PageID: newID, IndexID: t.IndexID, Level: pg.Level(),
	}); err != nil {
		return 0, nil, err
	}
	// Copy upper half to the new page (append order preserves key
	// order), then delete-mark and compact the old page. The separator
	// key must be captured first: record payloads alias the old page's
	// buffer, which Compact rewrites.
	moved := recs[mid:]
	sepKey, err := splitSepKey(pg, moved[0])
	if err != nil {
		return 0, nil, err
	}
	for _, r := range moved {
		if _, err := t.pager.Apply(&wal.Record{
			Type: wal.TypeInsertRec, PageID: newID, Off: wal.OffAppend,
			RecType: r.Type, TrxID: r.TrxID, Payload: append([]byte(nil), r.Payload...),
		}); err != nil {
			return 0, nil, err
		}
	}
	for _, r := range moved {
		if _, err := t.pager.Apply(&wal.Record{
			Type: wal.TypeDeleteMark, PageID: pageID, Off: uint32(r.Off), Flag: 1,
		}); err != nil {
			return 0, nil, err
		}
	}
	if _, err := t.pager.Apply(&wal.Record{Type: wal.TypeCompact, PageID: pageID}); err != nil {
		return 0, nil, err
	}
	// Fix the sibling chain links. Leaves need them for range scans;
	// level-1 pages need them so batch collection can walk across
	// level-1 siblings (§IV-C4).
	if err := t.linkSiblings(pageID, newID); err != nil {
		return 0, nil, err
	}
	return newID, sepKey, nil
}

// linkSiblings splices newID into the chain right after oldID.
func (t *Tree) linkSiblings(oldID, newID uint64) error {
	pg, err := t.pager.Read(oldID)
	if err != nil {
		return err
	}
	oldNext := pg.NextPage()
	if _, err := t.pager.Apply(&wal.Record{
		Type: wal.TypeSetLinks, PageID: newID, Prev: oldID, Next: oldNext,
	}); err != nil {
		return err
	}
	if _, err := t.pager.Apply(&wal.Record{
		Type: wal.TypeSetLinks, PageID: oldID, Prev: pg.PrevPage(), Next: newID,
	}); err != nil {
		return err
	}
	if oldNext != page.InvalidPageID {
		nxt, err := t.pager.Read(oldNext)
		if err != nil {
			return err
		}
		if _, err := t.pager.Apply(&wal.Record{
			Type: wal.TypeSetLinks, PageID: oldNext, Prev: newID, Next: nxt.NextPage(),
		}); err != nil {
			return err
		}
	}
	return nil
}

func splitSepKey(pg *page.Page, moved page.Record) ([]byte, error) {
	if pg.Level() == 0 {
		k, _, err := page.SplitLeafPayload(moved.Payload)
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), k...), nil
	}
	k, _, err := page.SplitNodePtr(moved.Payload)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), k...), nil
}

// insertNodePtr inserts a (sepKey -> child) pointer into the parent at
// the end of path, splitting upward as needed. An empty path means the
// root split: a new root is created one level up.
func (t *Tree) insertNodePtr(path []pathEntry, sepKey []byte, child uint64, childLevel uint16) error {
	payload := page.EncodeNodePtr(nil, sepKey, child)
	if len(path) == 0 {
		// Root split: new root points at old root and the new child.
		oldRoot := t.rootID
		oldPg, err := t.pager.Read(oldRoot)
		if err != nil {
			return err
		}
		newRootID := t.pager.Allocate()
		if _, err := t.pager.Apply(&wal.Record{
			Type: wal.TypeFormatPage, PageID: newRootID, IndexID: t.IndexID, Level: oldPg.Level() + 1,
		}); err != nil {
			return err
		}
		// Leftmost pointer uses the old root's first key.
		firstKey, err := firstKeyOf(oldPg)
		if err != nil {
			return err
		}
		if _, err := t.pager.Apply(&wal.Record{
			Type: wal.TypeInsertRec, PageID: newRootID, Off: wal.OffAppend,
			RecType: page.RecNodePtr, Payload: page.EncodeNodePtr(nil, firstKey, oldRoot),
		}); err != nil {
			return err
		}
		if _, err := t.pager.Apply(&wal.Record{
			Type: wal.TypeInsertRec, PageID: newRootID, Off: wal.OffAppend,
			RecType: page.RecNodePtr, Payload: payload,
		}); err != nil {
			return err
		}
		t.rootID = newRootID
		t.height++
		return nil
	}
	parentID := path[len(path)-1].pageID
	parent, err := t.pager.Read(parentID)
	if err != nil {
		return err
	}
	if !parent.HasRoomFor(len(payload)) {
		newID, parentSep, err := t.splitPage(parentID)
		if err != nil {
			return err
		}
		if err := t.insertNodePtr(path[:len(path)-1], parentSep, newID, parent.Level()); err != nil {
			return err
		}
		if bytes.Compare(sepKey, parentSep) >= 0 {
			parentID = newID
		}
		parent, err = t.pager.Read(parentID)
		if err != nil {
			return err
		}
	}
	prev := findNodeInsertPos(parent, sepKey)
	_, err = t.pager.Apply(&wal.Record{
		Type: wal.TypeInsertRec, PageID: parentID, Off: uint32(prev),
		RecType: page.RecNodePtr, Payload: payload,
	})
	return err
}

func findNodeInsertPos(pg *page.Page, key []byte) int {
	prev := 0
	for off := pg.FirstRecord(); off != 0; {
		r := pg.RecordAt(off)
		k, _, err := page.SplitNodePtr(r.Payload)
		if err != nil || bytes.Compare(k, key) > 0 {
			break
		}
		prev = off
		off = r.Next()
	}
	return prev
}

func lastKeyOf(pg *page.Page) ([]byte, error) {
	last := lastPos(pg)
	if last == 0 {
		return nil, nil
	}
	r := pg.RecordAt(last)
	if pg.Level() == 0 {
		k, _, err := page.SplitLeafPayload(r.Payload)
		return append([]byte(nil), k...), err
	}
	k, _, err := page.SplitNodePtr(r.Payload)
	return append([]byte(nil), k...), err
}

func firstKeyOf(pg *page.Page) ([]byte, error) {
	off := pg.FirstRecord()
	if off == 0 {
		return nil, nil // empty page: empty key sorts first
	}
	r := pg.RecordAt(off)
	if pg.Level() == 0 {
		k, _, err := page.SplitLeafPayload(r.Payload)
		return append([]byte(nil), k...), err
	}
	k, _, err := page.SplitNodePtr(r.Payload)
	return append([]byte(nil), k...), err
}

// SeekLeaf returns the page ID of the leaf that may contain key.
func (t *Tree) SeekLeaf(key []byte) (uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	path, err := t.descendLocked(key)
	if err != nil {
		return 0, err
	}
	return path[len(path)-1].pageID, nil
}

// FirstLeaf returns the leftmost leaf's page ID.
func (t *Tree) FirstLeaf() (uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cur := t.rootID
	for {
		pg, err := t.pager.Read(cur)
		if err != nil {
			return 0, err
		}
		if pg.Level() == 0 {
			return cur, nil
		}
		off := pg.FirstRecord()
		if off == 0 {
			return 0, fmt.Errorf("btree: empty interior page %d", cur)
		}
		_, child, err := page.SplitNodePtr(pg.RecordAt(off).Payload)
		if err != nil {
			return 0, err
		}
		cur = child
	}
}

// Batch is the result of a batch-read collection (§IV-C4): the child leaf
// page IDs extracted from level-1 pages within the scan boundary, plus
// the LSN stamped while the sub-tree was share-locked. "The Page Store
// only returns those page versions matching the LSN value, and thus, the
// batch read is shielded from the concurrent B-tree modifications."
type Batch struct {
	LeafIDs []uint64
	LSN     uint64
}

// CollectBatch gathers up to maxPages leaf page IDs covering keys in
// [startKey, endKey] (nil endKey = unbounded), starting from startKey.
// The traversal holds the tree's shared lock from the root to the level-1
// pages, stamps the current LSN, and releases — the caller then issues
// the batch read against storage at that LSN without blocking writers.
// The follow-up call should pass the last returned leaf's high key as the
// next startKey; resume is driven by the scan cursor in the engine.
//
// "A batch read is aware of scan boundaries ... the batch read will not
// read leaf pages beyond the range because level-1 pages store
// 'boundary' values" (§IV-C4).
func (t *Tree) CollectBatch(startKey, endKey []byte, maxPages int) (Batch, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	b := Batch{LSN: t.pager.CurrentLSN()}
	if maxPages <= 0 {
		maxPages = 1
	}
	if t.height == 1 {
		// Root is the only leaf.
		b.LeafIDs = []uint64{t.rootID}
		return b, nil
	}
	// Descend to the level-1 page covering startKey.
	cur := t.rootID
	for {
		pg, err := t.pager.Read(cur)
		if err != nil {
			return b, err
		}
		if pg.Level() == 1 {
			break
		}
		next, err := chooseChild(pg, startKey)
		if err != nil {
			return b, err
		}
		cur = next
	}
	// Walk level-1 pages left to right, collecting children whose key
	// range intersects [startKey, endKey].
	for cur != page.InvalidPageID && len(b.LeafIDs) < maxPages {
		pg, err := t.pager.Read(cur)
		if err != nil {
			return b, err
		}
		var iterErr error
		stop := false
		var prevChild uint64
		var prevKey []byte
		havePrev := false
		flushPrev := func(nextKey []byte) {
			// prevChild covers [prevKey, nextKey); include it if that
			// range may contain keys >= startKey and <= endKey.
			if endKey != nil && prevKey != nil && bytes.Compare(prevKey, endKey) > 0 {
				stop = true
				return
			}
			if nextKey != nil && startKey != nil && bytes.Compare(nextKey, startKey) <= 0 {
				return // entirely before the scan start
			}
			b.LeafIDs = append(b.LeafIDs, prevChild)
		}
		pg.Iter(func(r page.Record) bool {
			k, child, err2 := page.SplitNodePtr(r.Payload)
			if err2 != nil {
				iterErr = err2
				return false
			}
			if havePrev {
				flushPrev(k)
				if stop || len(b.LeafIDs) >= maxPages {
					return false
				}
			}
			prevChild, prevKey, havePrev = child, append(prevKey[:0], k...), true
			return true
		})
		if iterErr != nil {
			return b, iterErr
		}
		if stop {
			break
		}
		if havePrev && len(b.LeafIDs) < maxPages {
			flushPrev(nil)
		}
		if stop || len(b.LeafIDs) >= maxPages {
			break
		}
		cur = pg.NextPage()
		// Interior pages do not maintain next links below the root
		// split path; stop at the end of this level-1 page if so.
		if cur == page.InvalidPageID || cur == 0 {
			break
		}
	}
	return b, nil
}

func chooseChild(pg *page.Page, key []byte) (uint64, error) {
	var chosen uint64
	first := true
	var err error
	pg.Iter(func(r page.Record) bool {
		k, child, err2 := page.SplitNodePtr(r.Payload)
		if err2 != nil {
			err = err2
			return false
		}
		if first {
			chosen, first = child, false
			return !(key != nil && bytes.Compare(k, key) > 0)
		}
		if key != nil && bytes.Compare(k, key) > 0 {
			return false
		}
		chosen = child
		return true
	})
	if err != nil {
		return 0, err
	}
	if first {
		return 0, fmt.Errorf("btree: empty interior page %d", pg.ID())
	}
	return chosen, nil
}
