package logstore

import (
	"fmt"
	"time"

	"taurus/internal/health"
)

// SetHealth attaches the monitor that answers MsgPing status and
// MsgHealthReport. Pair with RegisterHealth, which installs the store's
// invariant probes on it.
func (s *Store) SetHealth(m *health.Monitor) { s.health = m }

// healthReport builds the MsgHealthReport payload. Without a monitor it
// still identifies the node, so a bare test store answers sensibly.
func (s *Store) healthReport() health.Report {
	if s.health == nil {
		return health.Report{Node: s.name, Role: "logstore",
			Time: time.Now(), Ready: true}
	}
	return s.health.Report()
}

// Durations a degrading condition must persist before a verdict
// escalates. Time-based, not probe-count-based: evaluation cadence is
// whatever pollers drive (/health, /ready, heartbeat responder, the 1s
// loop), so counting evaluations would shrink the wall-clock window
// under heavy polling.
const (
	degradeWarnAfter     = 2 * time.Second
	degradeCriticalAfter = 4 * time.Second
)

// RegisterHealth installs the Log Store's invariant probes on m. Probes
// compare successive NodeStats snapshots, so every "stuck" verdict
// requires the condition to hold across real time, not one noisy
// sample:
//
//   - logstore.stream (RB-STREAM-STALL): with subscribers attached, the
//     slowest subscriber's lag must not grow monotonically while the
//     durable LSN also advances — that shape means the push stream is
//     not draining, not merely that writes are bursty.
//   - logstore.holes (RB-LOG-HOLES): LSNs below the durable watermark
//     waiting for another lane's batch must not persist while durable
//     progress has stopped — after a crash that is a torn multi-lane
//     write needing peer catch-up.
func (s *Store) RegisterHealth(m *health.Monitor) {
	// growSince marks when the stream lag was first observed growing
	// under an advancing durable LSN; any non-growing sample resets it.
	var lastLag, lastDurable uint64
	var growSince time.Time
	m.AddProbe(func() health.Check {
		st := s.NodeStats()
		const name, rb = "logstore.stream", "RB-STREAM-STALL"
		ev := map[string]string{
			"subscribers": fmt.Sprintf("%d", st.Subscribers),
			"stream_lag":  fmt.Sprintf("%d", st.StreamLag),
			"durable_lsn": fmt.Sprintf("%d", st.DurableLSN),
		}
		growing := st.Subscribers > 0 && st.StreamLag > lastLag &&
			st.DurableLSN > lastDurable && lastDurable != 0
		lastLag, lastDurable = st.StreamLag, st.DurableLSN
		if !growing {
			growSince = time.Time{}
			return health.Checkf(name, rb, health.StatusOK, ev,
				"%d subscriber(s), lag %d", st.Subscribers, st.StreamLag)
		}
		if growSince.IsZero() {
			growSince = time.Now()
		}
		held := time.Since(growSince)
		ev["growing_for"] = held.Round(time.Millisecond).String()
		switch {
		case held >= degradeCriticalAfter:
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"stream lag grew for %s; slowest subscriber is not draining", held.Round(time.Second))
		case held >= degradeWarnAfter:
			return health.Checkf(name, rb, health.StatusWarn, ev,
				"stream lag growing for %s", held.Round(time.Second))
		}
		return health.Checkf(name, rb, health.StatusOK, ev,
			"%d subscriber(s), lag %d (growing %s)", st.Subscribers, st.StreamLag, held.Round(time.Millisecond))
	})

	var holeDurable uint64
	var holeSince time.Time
	m.AddProbe(func() health.Check {
		st := s.NodeStats()
		const name, rb = "logstore.holes", "RB-LOG-HOLES"
		ev := map[string]string{
			"pending_holes": fmt.Sprintf("%d", st.PendingHoles),
			"durable_lsn":   fmt.Sprintf("%d", st.DurableLSN),
		}
		stuck := st.PendingHoles > 0 && st.DurableLSN == holeDurable
		holeDurable = st.DurableLSN
		if !stuck {
			holeSince = time.Time{}
			return health.Checkf(name, rb, health.StatusOK, ev, "no stuck holes")
		}
		if holeSince.IsZero() {
			holeSince = time.Now()
		}
		held := time.Since(holeSince)
		ev["stuck_for"] = held.Round(time.Millisecond).String()
		switch {
		case held >= degradeCriticalAfter:
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"%d hole(s) below the durable watermark with no durable progress for %s; run peer catch-up", st.PendingHoles, held.Round(time.Second))
		case held >= degradeWarnAfter:
			return health.Checkf(name, rb, health.StatusWarn, ev,
				"%d pending hole(s) while durable LSN is stalled (%s)", st.PendingHoles, held.Round(time.Second))
		}
		return health.Checkf(name, rb, health.StatusOK, ev,
			"%d pending hole(s), watching (%s)", st.PendingHoles, held.Round(time.Millisecond))
	})
}
