package logstore

import (
	"fmt"
	"time"

	"taurus/internal/health"
)

// SetHealth attaches the monitor that answers MsgPing status and
// MsgHealthReport. Pair with RegisterHealth, which installs the store's
// invariant probes on it.
func (s *Store) SetHealth(m *health.Monitor) { s.health = m }

// healthReport builds the MsgHealthReport payload. Without a monitor it
// still identifies the node, so a bare test store answers sensibly.
func (s *Store) healthReport() health.Report {
	if s.health == nil {
		return health.Report{Node: s.name, Role: "logstore",
			Time: time.Now(), Ready: true}
	}
	return s.health.Report()
}

// RegisterHealth installs the Log Store's invariant probes on m. Probes
// compare successive NodeStats snapshots, so every "stuck" verdict
// requires the condition to hold across real time, not one noisy
// sample:
//
//   - logstore.stream (RB-STREAM-STALL): with subscribers attached, the
//     slowest subscriber's lag must not grow monotonically while the
//     durable LSN also advances — that shape means the push stream is
//     not draining, not merely that writes are bursty.
//   - logstore.holes (RB-LOG-HOLES): LSNs below the durable watermark
//     waiting for another lane's batch must not persist while durable
//     progress has stopped — after a crash that is a torn multi-lane
//     write needing peer catch-up.
func (s *Store) RegisterHealth(m *health.Monitor) {
	// streak counts consecutive probe evaluations where the stream lag
	// strictly grew under an advancing durable LSN.
	var lastLag, lastDurable uint64
	var streak int
	m.AddProbe(func() health.Check {
		st := s.NodeStats()
		const name, rb = "logstore.stream", "RB-STREAM-STALL"
		ev := map[string]string{
			"subscribers": fmt.Sprintf("%d", st.Subscribers),
			"stream_lag":  fmt.Sprintf("%d", st.StreamLag),
			"durable_lsn": fmt.Sprintf("%d", st.DurableLSN),
		}
		growing := st.Subscribers > 0 && st.StreamLag > lastLag &&
			st.DurableLSN > lastDurable && lastDurable != 0
		if growing {
			streak++
		} else {
			streak = 0
		}
		lastLag, lastDurable = st.StreamLag, st.DurableLSN
		switch {
		case streak >= 4:
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"stream lag grew %d probes in a row; slowest subscriber is not draining", streak)
		case streak >= 2:
			return health.Checkf(name, rb, health.StatusWarn, ev,
				"stream lag growing (%d probes)", streak)
		}
		return health.Checkf(name, rb, health.StatusOK, ev,
			"%d subscriber(s), lag %d", st.Subscribers, st.StreamLag)
	})

	var holeDurable uint64
	var holeStreak int
	m.AddProbe(func() health.Check {
		st := s.NodeStats()
		const name, rb = "logstore.holes", "RB-LOG-HOLES"
		ev := map[string]string{
			"pending_holes": fmt.Sprintf("%d", st.PendingHoles),
			"durable_lsn":   fmt.Sprintf("%d", st.DurableLSN),
		}
		stuck := st.PendingHoles > 0 && st.DurableLSN == holeDurable
		if stuck {
			holeStreak++
		} else {
			holeStreak = 0
		}
		holeDurable = st.DurableLSN
		switch {
		case holeStreak >= 4:
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"%d hole(s) below the durable watermark with no durable progress; run peer catch-up", st.PendingHoles)
		case holeStreak >= 2:
			return health.Checkf(name, rb, health.StatusWarn, ev,
				"%d pending hole(s) while durable LSN is stalled", st.PendingHoles)
		}
		return health.Checkf(name, rb, health.StatusOK, ev, "no stuck holes")
	})
}
