// Push-based log subscription streams. Instead of every read replica
// pull-tailing the store (MsgLogRead polling), the store runs one
// sequential log reader per stream that encodes each new record batch
// once and multicasts the framed batch (MsgLogBatch) to every
// subscriber over the regular cluster transport. Frames piggyback the
// master SAL's durable watermark and per-slice applied frontier
// (relayed via MsgFrontier), so subscribers advance their visible LSN
// without MsgSliceLSN polling either.
//
// Flow control is a bounded per-subscriber queue: the multicast never
// blocks on a slow consumer — a subscriber whose queue overflows is
// disconnected (it resubscribes and catches up from its last
// contiguous LSN, or from a checkpoint if log GC passed it by). Active
// subscriptions pin the store's GC watermark so a merely-slow
// subscriber is never overrun mid-stream.
package logstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"taurus/internal/cluster"
	"taurus/internal/obs"
)

// maxStreamBatch bounds one pushed frame's record count; a large
// catch-up is chunked into several frames.
const maxStreamBatch = 4096

// defaultStreamWindow is the per-subscriber queue depth when the
// subscription does not name one: how many pushed frames a consumer may
// fall behind before the hub disconnects it.
const defaultStreamWindow = 32

// subscriber is one attached stream consumer.
type subscriber struct {
	node   string
	tenant uint32
	// next is the next LSN this subscriber needs. Owned by its sender
	// goroutine; read by the hub (GC pinning, lag gauge).
	next  atomic.Uint64
	queue chan *cluster.LogBatchReq
	stop  chan struct{}
	done  chan struct{}
}

// hub is the store's stream multicaster: one goroutine watches the
// contiguous durable frontier and frontier relays, encodes new records
// once, and fans the frame out to every subscriber's queue.
type hub struct {
	s  *Store
	tr cluster.Transport

	mu   sync.Mutex
	subs map[string]*subscriber
	// Relayed master frontier (MsgFrontier), piggybacked on frames.
	masterDurable uint64
	frontier      map[uint32]uint64
	// cursor is the highest LSN the multicast has framed so far.
	cursor uint64
	// pendingTC is the most recent sampled append's trace context; the
	// next multicast round's pushes become children of that append
	// (best effort — coalesced rounds keep the newest).
	pendingTC obs.TraceContext

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// SetPushTransport arms the subscription hub: the transport is how the
// store reaches subscriber nodes (the same fabric replicas use to reach
// the store). Must be called before the first MsgLogSubscribe; calling
// it on a store that already has a hub is a no-op.
func (s *Store) SetPushTransport(tr cluster.Transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hub != nil {
		return
	}
	h := &hub{
		s: s, tr: tr,
		subs:     make(map[string]*subscriber),
		frontier: make(map[uint32]uint64),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.hub = h
	go h.run()
}

// kickHub nudges the multicast loop (new durable records, frontier
// advance, or a fresh subscriber needing a sync frame).
func (s *Store) kickHub() {
	s.mu.Lock()
	h := s.hub
	s.mu.Unlock()
	if h == nil {
		return
	}
	select {
	case h.kick <- struct{}{}:
	default:
	}
}

// stashStreamTrace remembers a sampled append's context so the pushes
// it triggers join its trace tree.
func (s *Store) stashStreamTrace(tc obs.TraceContext) {
	if !tc.Valid() {
		return
	}
	s.mu.Lock()
	h := s.hub
	s.mu.Unlock()
	if h == nil {
		return
	}
	h.mu.Lock()
	h.pendingTC = tc
	h.mu.Unlock()
}

// contiguousLocked returns the hole-free durable prefix: the largest
// LSN such that every record at or below it is present. Caller holds
// s.mu.
func (s *Store) contiguousLocked() uint64 {
	c := s.durableLSN
	for lsn := range s.holes {
		if lsn-1 < c {
			c = lsn - 1
		}
	}
	return c
}

// ContiguousLSN is the exported hole-free durable prefix.
func (s *Store) ContiguousLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.contiguousLocked()
}

// subscribe attaches a node to the stream. If log GC already collected
// records above FromLSN the subscription is refused (TruncatedLSN in
// the response tells the replica to checkpoint-resync first).
func (s *Store) subscribe(m *cluster.LogSubscribeReq) (*cluster.LogSubscribeResp, error) {
	s.mu.Lock()
	h := s.hub
	durable := s.durableLSN
	truncated := s.truncatedLSN
	s.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("logstore %s: no push transport (pull-tail instead)", s.name)
	}
	resp := &cluster.LogSubscribeResp{DurableLSN: durable, TruncatedLSN: truncated}
	if truncated > m.FromLSN {
		// The gap (FromLSN, truncated] is gone from this store; the
		// replica must bootstrap the missing range from a checkpoint.
		return resp, nil
	}
	window := int(m.Window)
	if window <= 0 {
		window = defaultStreamWindow
	}
	sub := &subscriber{
		node:   m.Node,
		tenant: m.Tenant,
		queue:  make(chan *cluster.LogBatchReq, window),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	sub.next.Store(m.FromLSN + 1)
	h.mu.Lock()
	if old := h.subs[m.Node]; old != nil {
		close(old.stop)
	}
	h.subs[m.Node] = sub
	if h.cursor == 0 {
		// First subscriber on an idle hub: the multicast starts at the
		// live edge; anything older is this subscriber's catch-up read.
		h.cursor = s.ContiguousLSN()
	}
	// Seed the fresh queue with a sync frame so the sender gap-fills up
	// to the cursor even if the store stays quiet after the attach.
	sync := &cluster.LogBatchReq{
		Tenant: sub.tenant, StreamLSN: h.cursor, MasterDurableLSN: h.masterDurable,
		TruncatedLSN: truncated,
	}
	for sliceID, lsn := range h.frontier {
		sync.Frontier = append(sync.Frontier, cluster.SliceLSNEntry{SliceID: sliceID, AppliedLSN: lsn})
	}
	sub.queue <- sync
	h.mu.Unlock()
	go h.sender(sub)
	s.mSubscribes.Inc()
	s.events.Record(obs.EventStreamAttach, "%s: %s subscribed from LSN %d (window %d)",
		s.name, m.Node, m.FromLSN, window)
	// And nudge the multicast loop for anything newly durable.
	s.kickHub()
	return resp, nil
}

// unsubscribe detaches a node (replica shutdown). Unknown nodes are a
// no-op so retries are idempotent.
func (s *Store) unsubscribe(node string) {
	s.mu.Lock()
	h := s.hub
	s.mu.Unlock()
	if h == nil {
		return
	}
	h.mu.Lock()
	sub := h.subs[node]
	delete(h.subs, node)
	h.mu.Unlock()
	if sub != nil {
		close(sub.stop)
		s.events.Record(obs.EventStreamDetach, "%s: %s unsubscribed", s.name, node)
	}
}

// updateFrontier records the SAL's relayed frontier; the next multicast
// round piggybacks it (possibly on an empty, records-less frame).
func (s *Store) updateFrontier(m *cluster.FrontierReq) {
	s.mu.Lock()
	h := s.hub
	s.mu.Unlock()
	if h == nil {
		return
	}
	h.mu.Lock()
	changed := false
	if m.DurableLSN > h.masterDurable {
		h.masterDurable = m.DurableLSN
		changed = true
	}
	for _, e := range m.Slices {
		if e.AppliedLSN > h.frontier[e.SliceID] {
			h.frontier[e.SliceID] = e.AppliedLSN
			changed = true
		}
	}
	h.mu.Unlock()
	if changed {
		s.kickHub()
	}
}

// subscriberFloor returns the lowest LSN any active subscriber still
// needs, or 0 when there are none — the stream's GC pin.
func (s *Store) subscriberFloor() uint64 {
	s.mu.Lock()
	h := s.hub
	s.mu.Unlock()
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var floor uint64
	for _, sub := range h.subs {
		if n := sub.next.Load(); floor == 0 || n < floor {
			floor = n
		}
	}
	return floor
}

// Subscribers counts active stream consumers.
func (s *Store) Subscribers() int {
	s.mu.Lock()
	h := s.hub
	s.mu.Unlock()
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// StreamLag is the record distance between the store's contiguous
// durable prefix and the slowest subscriber (0 with no subscribers).
func (s *Store) StreamLag() uint64 {
	floor := s.subscriberFloor()
	if floor == 0 {
		return 0
	}
	if c := s.ContiguousLSN(); c+1 > floor {
		return c + 1 - floor
	}
	return 0
}

// closeHub stops the multicast loop and every sender.
func (s *Store) closeHub() {
	s.mu.Lock()
	h := s.hub
	s.hub = nil
	s.mu.Unlock()
	if h == nil {
		return
	}
	close(h.stop)
	<-h.done
	h.mu.Lock()
	subs := h.subs
	h.subs = map[string]*subscriber{}
	h.mu.Unlock()
	for _, sub := range subs {
		close(sub.stop)
	}
}

// run is the multicast loop: on every kick, frame the records between
// the cursor and the contiguous durable prefix (encoded once, shared by
// all subscribers) and offer the frame to every queue; when only the
// frontier moved, push an empty frame so subscribers advance their
// visible LSN without records.
func (h *hub) run() {
	defer close(h.done)
	var lastDurable, lastCursor uint64
	var lastFrontierLen int
	for {
		select {
		case <-h.stop:
			return
		case <-h.kick:
		}
		for {
			contiguous := h.s.ContiguousLSN()
			h.mu.Lock()
			synced := false
			if h.cursor == 0 && len(h.subs) > 0 && contiguous > 0 {
				// First frame: the multicast starts at the live edge;
				// anything older is each subscriber's catch-up read. The
				// empty sync frame below announces the jump so senders
				// whose subscriber attached before these records existed
				// gap-fill up to the new cursor.
				h.cursor = contiguous
				synced = true
			}
			cursor := h.cursor
			h.mu.Unlock()
			if synced {
				h.multicast(nil, 0)
			}
			if cursor >= contiguous {
				break
			}
			n := contiguous - cursor
			if n > maxStreamBatch {
				n = maxStreamBatch
			}
			enc, count := h.s.ReadEncodedFrom(cursor, int(n))
			if count == 0 {
				// The range is durable but not yet readable (shouldn't
				// happen — contiguous is derived from the log); bail
				// rather than spin.
				break
			}
			h.mu.Lock()
			h.cursor = cursor + uint64(count)
			h.mu.Unlock()
			h.multicast(enc, uint32(count))
		}
		// Frontier-only advance: no new records framed this round but
		// the relayed watermarks moved — push an empty frame.
		h.mu.Lock()
		cursor, durable, flen := h.cursor, h.masterDurable, len(h.frontier)
		h.mu.Unlock()
		if cursor == lastCursor && (durable > lastDurable || flen != lastFrontierLen) {
			h.multicast(nil, 0)
		}
		lastCursor, lastDurable, lastFrontierLen = cursor, durable, flen
	}
}

// multicast builds one frame and offers it to every subscriber's
// queue. A full queue means the consumer is too slow for its window:
// it is disconnected (never blocking the stream) and will resubscribe.
func (h *hub) multicast(enc []byte, count uint32) {
	h.mu.Lock()
	frame := &cluster.LogBatchReq{
		Recs: enc, Count: count,
		StreamLSN:        h.cursor,
		MasterDurableLSN: h.masterDurable,
		TruncatedLSN:     h.s.TruncatedLSN(),
	}
	for sliceID, lsn := range h.frontier {
		frame.Frontier = append(frame.Frontier, cluster.SliceLSNEntry{SliceID: sliceID, AppliedLSN: lsn})
	}
	var slow []*subscriber
	for _, sub := range h.subs {
		sub := sub
		f := frame
		if f.Tenant != sub.tenant {
			c := *frame
			c.Tenant = sub.tenant
			f = &c
		}
		select {
		case sub.queue <- f:
		default:
			slow = append(slow, sub)
		}
	}
	for _, sub := range slow {
		delete(h.subs, sub.node)
	}
	h.mu.Unlock()
	for _, sub := range slow {
		close(sub.stop)
		h.s.mStreamDisconnects.Inc()
		h.s.events.Record(obs.EventStreamDisconnect,
			"%s: %s disconnected (flow control: queue of %d frames full at LSN %d)",
			h.s.name, sub.node, cap(sub.queue), sub.next.Load())
	}
}

// sender drains one subscriber's queue, filling any gap between the
// subscriber's own cursor and a frame's records with direct store reads
// (the attach-time catch-up path), and pushes frames over the
// transport. A push error disconnects the subscriber — the replica's
// watchdog resubscribes.
func (h *hub) sender(sub *subscriber) {
	defer close(sub.done)
	for {
		select {
		case <-sub.stop:
			return
		case frame := <-sub.queue:
			// Catch up to the frame: records in (next-1, frameFrom)
			// are read straight from the log. frameFrom is implicit:
			// StreamLSN - Count records end at StreamLSN.
			next := sub.next.Load()
			from := frame.StreamLSN + 1 - uint64(frame.Count)
			for next < from {
				want := from - next
				if want > maxStreamBatch {
					want = maxStreamBatch
				}
				enc, count := h.s.ReadEncodedFrom(next-1, int(want))
				if count == 0 {
					break // GC'd or torn below; frame records still flow
				}
				cf := &cluster.LogBatchReq{
					Tenant: sub.tenant, Recs: enc, Count: uint32(count),
					StreamLSN:        next - 1 + uint64(count),
					MasterDurableLSN: frame.MasterDurableLSN,
					TruncatedLSN:     frame.TruncatedLSN,
					Frontier:         frame.Frontier,
				}
				if !h.push(sub, cf) {
					return
				}
				next += uint64(count)
				sub.next.Store(next)
			}
			if !h.push(sub, frame) {
				return
			}
			if frame.StreamLSN+1 > sub.next.Load() {
				sub.next.Store(frame.StreamLSN + 1)
			}
		}
	}
}

// push sends one frame to the subscriber node, wrapped in a server-side
// span when a sampled append triggered this round. Returns false (and
// removes the subscriber) on transport error.
func (h *hub) push(sub *subscriber, frame *cluster.LogBatchReq) bool {
	h.mu.Lock()
	tc := h.pendingTC
	h.pendingTC = obs.TraceContext{}
	h.mu.Unlock()
	sp := h.s.tracer.StartSpan(tc, "logstore.stream_push")
	if sp != nil {
		sp.Annotate("to=%s recs=%d stream_lsn=%d", sub.node, frame.Count, frame.StreamLSN)
	}
	_, err := cluster.CallTraced(h.tr, spanCtx(sp, tc), sub.node, frame)
	sp.End()
	if err != nil {
		h.mu.Lock()
		if h.subs[sub.node] == sub {
			delete(h.subs, sub.node)
		}
		h.mu.Unlock()
		h.s.mStreamPushErrors.Inc()
		h.s.events.Record(obs.EventStreamDisconnect, "%s: %s disconnected (push: %v)",
			h.s.name, sub.node, err)
		return false
	}
	h.s.mStreamBatches.Inc()
	h.s.mStreamRecords.Add(uint64(frame.Count))
	return true
}

// spanCtx returns the span's context when one was opened, else the
// fallback.
func spanCtx(sp *obs.SpanHandle, fallback obs.TraceContext) obs.TraceContext {
	if sp != nil {
		return sp.Context()
	}
	return fallback
}
