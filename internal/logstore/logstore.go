// Package logstore implements the Log Store service: "a service executing
// in the storage layer responsible for storing log records durably. Once
// all of the log records belonging to a transaction have been made
// durable, transaction completion can be acknowledged ... They also serve
// log records to read replicas" (§II).
//
// The SAL writes each log batch to three Log Stores and waits for all
// three acknowledgements ("synchronously writing log records, in
// triplicate, to durable storage").
package logstore

import (
	"fmt"
	"sync"

	"taurus/internal/cluster"
	"taurus/internal/wal"
)

// Store is one Log Store node.
type Store struct {
	name string

	mu         sync.Mutex
	log        []wal.Record
	durableLSN uint64
}

// New creates a named Log Store.
func New(name string) *Store {
	return &Store{name: name}
}

// Handle implements cluster.Handler for MsgLogAppend.
func (s *Store) Handle(req any) (any, error) {
	switch m := req.(type) {
	case *cluster.LogAppendReq:
		lsn, err := s.Append(m.Recs)
		if err != nil {
			return nil, err
		}
		return &cluster.Ack{LSN: lsn}, nil
	default:
		return nil, fmt.Errorf("logstore %s: unsupported request %T", s.name, req)
	}
}

// Append decodes and durably stores a batch of encoded records, returning
// the highest LSN made durable.
func (s *Store) Append(encoded []byte) (uint64, error) {
	recs, err := wal.DecodeAll(encoded)
	if err != nil {
		return 0, fmt.Errorf("logstore %s: %w", s.name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		if r.LSN <= s.durableLSN {
			// Idempotent re-delivery (SAL retries) is tolerated.
			continue
		}
		s.log = append(s.log, r)
		s.durableLSN = r.LSN
	}
	return s.durableLSN, nil
}

// DurableLSN returns the highest durable LSN.
func (s *Store) DurableLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durableLSN
}

// ReadFrom returns all records with LSN > after, serving read replicas.
func (s *Store) ReadFrom(after uint64) []wal.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []wal.Record
	for _, r := range s.log {
		if r.LSN > after {
			out = append(out, r)
		}
	}
	return out
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}
