// Package logstore implements the Log Store service: "a service executing
// in the storage layer responsible for storing log records durably. Once
// all of the log records belonging to a transaction have been made
// durable, transaction completion can be acknowledged ... They also serve
// log records to read replicas" (§II).
//
// The SAL writes each log batch to three Log Stores and waits for all
// three acknowledgements ("synchronously writing log records, in
// triplicate, to durable storage").
//
// A Store runs in one of two modes. New creates the in-memory store the
// simulated experiments use; Open backs the same interface with a
// persistent segmented log (internal/plog), so acknowledged batches
// survive a crash and a restarted node (or a restarted embedded
// deployment) can replay them. Appends in disk mode do not acknowledge
// until the batch is covered by an fsync — plog's group commit batches
// those syncs across concurrent appenders.
package logstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/health"
	"taurus/internal/obs"
	"taurus/internal/plog"
	"taurus/internal/wal"
)

// Store is one Log Store node.
type Store struct {
	name string

	mu         sync.Mutex
	log        []wal.Record
	durableLSN uint64
	// truncatedLSN is the GC watermark: records at or below it have
	// been dropped from memory (and their sealed segments reclaimed).
	truncatedLSN uint64
	// holes tracks LSNs below durableLSN that no accepted batch has
	// carried yet. The SAL's per-slice write lanes append their windows
	// concurrently, so batches from different lanes interleave in LSN
	// space and can arrive out of order: accepting [6,8] before [5,7]
	// must not make the [5,7] batch look like an idempotent duplicate.
	// LSNs are allocated densely, so every LSN between the old and the
	// new watermark that the advancing batch did not carry is a pending
	// hole; a record is a duplicate only if it is at or below the
	// watermark AND not a pending hole. The set is bounded by the
	// lanes' in-flight windows.
	holes map[uint64]struct{}
	// failed is the sticky disk-failure state: once a persist fails,
	// the in-memory watermark may overstate what is on disk, so the
	// store stops acknowledging anything rather than let a retried
	// batch be filtered as a "duplicate" and falsely acked.
	failed error

	// disk is the persistent log; nil in memory mode. dir is its
	// directory (the GC watermark marker lives beside the segments).
	disk *plog.Log
	dir  string

	// hub is the push-stream multicaster; nil until SetPushTransport
	// arms it (pull-tailing stores never have one).
	hub *hub

	// Optional instruments, armed by RegisterMetrics; nil is inert.
	appendHist *obs.Histogram
	appendRecs *obs.Counter
	// Stream instruments (nil-safe obs counters).
	mSubscribes        *obs.Counter
	mStreamBatches     *obs.Counter
	mStreamRecords     *obs.Counter
	mStreamDisconnects *obs.Counter
	mStreamPushErrors  *obs.Counter

	// tracer records server-side spans for sampled requests; events is
	// the flight recorder for structural transitions (GC truncations).
	// Both nil by default (inert); armed by SetTracer/SetEvents.
	tracer *obs.Tracer
	events *obs.EventRing
	// health answers MsgPing/MsgHealthReport; nil (no monitor) answers
	// pings with an empty OK report. Armed by SetHealth.
	health *health.Monitor
}

// gcMarkFile persists the truncation watermark: plog GC deletes only
// whole segments, so records below the watermark can survive on disk in
// mixed segments, and without the marker a reopened store would
// misread the gaps GC left (acknowledged, collected records) as pending
// lane holes that no peer can ever fill.
const gcMarkFile = "gcmark"

// Option configures a disk-backed Store.
type Option func(*plog.Options)

// WithFlushInterval sets the group-commit window.
func WithFlushInterval(d time.Duration) Option {
	return func(o *plog.Options) { o.FlushInterval = d }
}

// WithSegmentBytes sets the segment rotation size.
func WithSegmentBytes(n int64) Option {
	return func(o *plog.Options) { o.SegmentBytes = n }
}

// WithSyncEveryAppend forces an fsync per append (no group commit).
func WithSyncEveryAppend() Option {
	return func(o *plog.Options) { o.SyncEveryAppend = true }
}

// WithNoSync disables fsync (volatile disk mode, for benchmarks).
func WithNoSync() Option {
	return func(o *plog.Options) { o.NoSync = true }
}

// New creates a named in-memory Log Store (no durability).
func New(name string) *Store {
	return &Store{name: name}
}

// Open creates or recovers a disk-backed Log Store in dir. Batches
// previously acknowledged are replayed into memory; a torn final entry
// (interrupted append) is detected by CRC and discarded.
func Open(name, dir string, opts ...Option) (*Store, error) {
	po := plog.Options{Dir: dir}
	for _, o := range opts {
		o(&po)
	}
	disk, err := plog.Open(po)
	if err != nil {
		return nil, fmt.Errorf("logstore %s: %w", name, err)
	}
	s := &Store{name: name, disk: disk, dir: dir}
	if b, err := os.ReadFile(filepath.Join(dir, gcMarkFile)); err == nil {
		if mark, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64); err == nil {
			s.truncatedLSN = mark
		}
	}
	var all []wal.Record
	err = disk.Replay(func(mark uint64, payload []byte) error {
		recs, err := wal.DecodeAll(payload)
		if err != nil {
			return fmt.Errorf("logstore %s: replaying durable batch: %w", name, err)
		}
		all = append(all, recs...)
		return nil
	})
	if err != nil {
		disk.Close()
		return nil, err
	}
	// Entries land on disk in append order — per-lane FIFO streams, so
	// NOT necessarily LSN order; sort + dedupe so recovery never
	// depends on it.
	sort.SliceStable(all, func(i, j int) bool { return all[i].LSN < all[j].LSN })
	for _, r := range all {
		if r.LSN <= s.durableLSN {
			continue
		}
		// LSNs are dense (allocated from 1), so a gap in the surviving
		// records is a pending hole another lane's batch (or a peer's
		// CatchUp) may still fill — rebuild the hole set the crash wiped
		// out, or a retried batch would be misfiled as a duplicate. Gaps
		// at or below the persisted GC watermark are not holes — segment
		// GC collected those acknowledged records on purpose — so the
		// scan skips that prefix wholesale (never iterating the
		// potentially huge collected range) but otherwise starts at
		// LSN 1 rather than the first surviving record: a hole at the
		// very FRONT of the retained log — above the GC watermark but
		// below everything that survived — is detected too, and CatchUp
		// can backfill it from a peer.
		from := s.durableLSN + 1
		if from <= s.truncatedLSN {
			from = s.truncatedLSN + 1
		}
		for lsn := from; lsn < r.LSN; lsn++ {
			if s.holes == nil {
				s.holes = make(map[uint64]struct{})
			}
			s.holes[lsn] = struct{}{}
		}
		s.log = append(s.log, r)
		s.durableLSN = r.LSN
	}
	return s, nil
}

// Durable reports whether the store persists batches to disk.
func (s *Store) Durable() bool { return s.disk != nil }

// Recovery reports what Open found on disk (zero value in memory mode).
func (s *Store) Recovery() plog.RecoveryInfo {
	if s.disk == nil {
		return plog.RecoveryInfo{}
	}
	return s.disk.Recovery()
}

// LogStats exposes the persistent log's counters (zero in memory mode).
func (s *Store) LogStats() plog.Stats {
	if s.disk == nil {
		return plog.Stats{}
	}
	return s.disk.Snapshot()
}

// SetTracer arms server-side span recording for sampled requests.
func (s *Store) SetTracer(t *obs.Tracer) { s.tracer = t }

// SetEvents arms flight-recorder event recording.
func (s *Store) SetEvents(r *obs.EventRing) { s.events = r }

// HandleTraced implements cluster.TracedHandler: the same dispatch as
// Handle, wrapped in a server-side child span so an assembled trace
// shows where inside the Log Store a request's time went (the append
// span covers the fsync wait).
func (s *Store) HandleTraced(tc obs.TraceContext, req any) (any, error) {
	name := "logstore.handle"
	switch req.(type) {
	case *cluster.LogAppendReq:
		name = "logstore.append"
		// The pushes this append triggers become children of its span
		// (the full push path shows up in /trace/<id>).
		s.stashStreamTrace(tc)
	case *cluster.LogReadReq:
		name = "logstore.read"
	case *cluster.LogTruncateReq:
		name = "logstore.truncate"
	case *cluster.LogSubscribeReq:
		name = "logstore.subscribe"
	case *cluster.FrontierReq:
		name = "logstore.frontier"
	}
	sp := s.tracer.StartSpan(tc, name)
	resp, err := s.Handle(req)
	if sp != nil {
		if ack, ok := resp.(*cluster.Ack); ok && err == nil {
			sp.Annotate("lsn=%d", ack.LSN)
		}
		if err != nil {
			sp.Annotate("err=%v", err)
		}
		sp.End()
	}
	return resp, err
}

// Handle implements cluster.Handler for MsgLogAppend and MsgLogTruncate.
func (s *Store) Handle(req any) (any, error) {
	switch m := req.(type) {
	case *cluster.LogAppendReq:
		lsn, err := s.Append(m.Recs)
		if err != nil {
			return nil, err
		}
		return &cluster.Ack{LSN: lsn}, nil
	case *cluster.LogTruncateReq:
		removed, bytes, err := s.TruncateBelow(m.Watermark)
		if err != nil {
			return nil, err
		}
		return &cluster.LogGCResp{Removed: uint32(removed), Bytes: bytes}, nil
	case *cluster.LogReadReq:
		enc, count := s.ReadEncodedFrom(m.AfterLSN, int(m.MaxRecords))
		return &cluster.LogReadResp{
			Recs: enc, Count: uint32(count),
			DurableLSN: s.DurableLSN(), TruncatedLSN: s.TruncatedLSN(),
		}, nil
	case *cluster.LogSubscribeReq:
		return s.subscribe(m)
	case *cluster.LogUnsubscribeReq:
		s.unsubscribe(m.Node)
		return &cluster.Ack{LSN: s.DurableLSN()}, nil
	case *cluster.FrontierReq:
		s.updateFrontier(m)
		return &cluster.Ack{LSN: m.DurableLSN}, nil
	case *cluster.PingReq:
		return &cluster.PingResp{Node: s.name, Role: "logstore",
			Seq: m.Seq, Status: s.health.Worst()}, nil
	case *cluster.HealthReportReq:
		return &cluster.HealthReportResp{Report: s.healthReport()}, nil
	default:
		return nil, fmt.Errorf("logstore %s: unsupported request %T", s.name, req)
	}
}

// Append decodes and durably stores a batch of encoded records, returning
// the highest LSN made durable. In disk mode it does not return until the
// surviving records are persisted and fsynced (group commit); re-delivered
// records (SAL retries) are filtered before hitting the disk, so
// redelivery is idempotent in both modes.
func (s *Store) Append(encoded []byte) (uint64, error) {
	done := s.observeAppend()
	freshN := 0
	defer func() { done(freshN) }()
	recs, err := wal.DecodeAll(encoded)
	if err != nil {
		return 0, fmt.Errorf("logstore %s: %w", s.name, err)
	}
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return 0, err
	}
	// Filter records already durable (idempotent re-delivery) and keep
	// only the fresh ones. A record at or below the watermark is fresh
	// when it fills a pending hole left by an out-of-order lane batch;
	// anything else below the watermark is a duplicate.
	var fresh []wal.Record
	var freshEnc []byte
	batchLSNs := make(map[uint64]struct{}, len(recs))
	maxLSN := s.durableLSN
	for i := range recs {
		r := &recs[i]
		if r.LSN <= s.durableLSN {
			if _, pending := s.holes[r.LSN]; !pending {
				continue
			}
			delete(s.holes, r.LSN)
		}
		fresh = append(fresh, *r)
		batchLSNs[r.LSN] = struct{}{}
		if s.disk != nil {
			freshEnc = r.Encode(freshEnc)
		}
		if r.LSN > maxLSN {
			maxLSN = r.LSN
		}
	}
	if len(fresh) == 0 {
		lsn := s.durableLSN
		s.mu.Unlock()
		return lsn, nil
	}
	freshN = len(fresh)
	// Advancing the watermark past LSNs this batch did not carry leaves
	// them as pending holes other lanes' batches will fill.
	if maxLSN > s.durableLSN {
		if s.holes == nil {
			s.holes = make(map[uint64]struct{})
		}
		for lsn := s.durableLSN + 1; lsn < maxLSN; lsn++ {
			if _, ok := batchLSNs[lsn]; !ok {
				s.holes[lsn] = struct{}{}
			}
		}
	}
	if s.disk == nil {
		s.insertSortedLocked(fresh)
		s.durableLSN = maxLSN
		s.mu.Unlock()
		s.kickHub()
		return maxLSN, nil
	}
	// Disk mode: write the batch into the segment while still holding
	// the lock, so the on-disk order matches LSN order and a concurrent
	// redelivery is filtered; then wait for the fsync outside the lock,
	// letting concurrent appenders share one group commit.
	_, token, err := s.disk.AppendAsync(maxLSN, freshEnc)
	if err != nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("logstore %s: %w", s.name, err)
	}
	s.insertSortedLocked(fresh)
	s.durableLSN = maxLSN
	disk := s.disk
	s.mu.Unlock()
	if err := disk.WaitDurable(token); err != nil {
		// The batch may not be on disk but the in-memory watermark
		// already covers it; poison the store so no retry of this (or
		// any later) batch can be mistaken for an idempotent duplicate
		// and acknowledged without durability.
		werr := fmt.Errorf("logstore %s: %w", s.name, err)
		s.mu.Lock()
		if s.failed == nil {
			s.failed = werr
		}
		s.mu.Unlock()
		return 0, werr
	}
	s.kickHub()
	return maxLSN, nil
}

// insertSortedLocked splices a batch (itself in LSN order) into the
// in-memory log, keeping it sorted so ReadFrom serves recovery in LSN
// order even when lane batches were accepted out of order. The common
// case — the batch extends the tail — stays a plain append; a
// hole-filling batch merges into the short suffix it overlaps.
func (s *Store) insertSortedLocked(fresh []wal.Record) {
	if len(s.log) == 0 || fresh[0].LSN > s.log[len(s.log)-1].LSN {
		s.log = append(s.log, fresh...)
		return
	}
	i := sort.Search(len(s.log), func(i int) bool { return s.log[i].LSN > fresh[0].LSN })
	suffix := append([]wal.Record(nil), s.log[i:]...)
	s.log = s.log[:i]
	for len(suffix) > 0 && len(fresh) > 0 {
		if suffix[0].LSN < fresh[0].LSN {
			s.log = append(s.log, suffix[0])
			suffix = suffix[1:]
		} else {
			s.log = append(s.log, fresh[0])
			fresh = fresh[1:]
		}
	}
	s.log = append(append(s.log, suffix...), fresh...)
}

// DurableLSN returns the highest durable LSN.
func (s *Store) DurableLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durableLSN
}

// PendingHoles reports LSNs below the durable watermark still awaiting
// another write lane's batch (0 at rest).
func (s *Store) PendingHoles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.holes)
}

// TruncatedLSN returns the GC watermark (0 = nothing truncated).
func (s *Store) TruncatedLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.truncatedLSN
}

// ReadFrom returns all records with LSN > after, serving read replicas.
func (s *Store) ReadFrom(after uint64) []wal.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []wal.Record
	for _, r := range s.log {
		if r.LSN > after {
			out = append(out, r)
		}
	}
	return out
}

// ReadEncodedFrom returns up to max records with LSN > after in their
// wire encoding (LSN order), serving read-replica tails. max <= 0
// means unbounded. Only the record headers are copied under the store
// lock; the encoding happens outside it, so frequent replica tails do
// not stall concurrent Appends (record payloads are immutable once
// stored, and hole-filling merges rebuild the slice rather than
// mutating payload bytes).
func (s *Store) ReadEncodedFrom(after uint64, max int) ([]byte, int) {
	s.mu.Lock()
	// The log is sorted by LSN; binary-search the tail start.
	i := sort.Search(len(s.log), func(i int) bool { return s.log[i].LSN > after })
	n := len(s.log) - i
	if max > 0 && n > max {
		n = max
	}
	recs := make([]wal.Record, n)
	copy(recs, s.log[i:i+n])
	s.mu.Unlock()
	var enc []byte
	for j := range recs {
		enc = recs[j].Encode(enc)
	}
	return enc, n
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// TruncateBelow garbage-collects records with LSN < watermark: they are
// dropped from memory, and sealed on-disk segments living entirely below
// the watermark are deleted. Callers must only pass watermarks at or
// below the LSN every consumer (Page Store replica, read replica) has
// durably applied — in Taurus, "log records can be purged once all slice
// replicas have applied them". Returns the segments removed and the
// disk bytes reclaimed.
func (s *Store) TruncateBelow(watermark uint64) (int, uint64, error) {
	// Active subscription streams pin GC: a merely-slow subscriber must
	// never find records it still needs collected mid-stream. (A
	// DETACHED replica can still be overrun — that is the checkpoint-
	// resync path at resubscribe.)
	if floor := s.subscriberFloor(); floor > 0 && floor < watermark {
		watermark = floor
	}
	s.mu.Lock()
	kept := s.log[:0]
	for _, r := range s.log {
		if r.LSN >= watermark {
			kept = append(kept, r)
		}
	}
	dropped := len(s.log) - len(kept)
	s.log = append([]wal.Record(nil), kept...)
	for lsn := range s.holes {
		if lsn < watermark {
			delete(s.holes, lsn)
		}
	}
	if watermark > 0 && watermark-1 > s.truncatedLSN {
		s.truncatedLSN = watermark - 1
	}
	disk := s.disk
	dir := s.dir
	mark := s.truncatedLSN
	s.mu.Unlock()
	if dropped > 0 {
		s.events.Record(obs.EventLogGC, "%s: truncated below %d, %d records dropped",
			s.name, watermark, dropped)
	}
	if disk == nil {
		return 0, 0, nil
	}
	// Persist the (monotone) watermark before deleting segments: a
	// reopen must be able to tell GC'd gaps from pending lane holes.
	if mark > 0 {
		tmp := filepath.Join(dir, gcMarkFile+".tmp")
		if err := os.WriteFile(tmp, []byte(strconv.FormatUint(mark, 10)), 0o644); err != nil {
			return 0, 0, fmt.Errorf("logstore %s: %w", s.name, err)
		}
		if err := os.Rename(tmp, filepath.Join(dir, gcMarkFile)); err != nil {
			return 0, 0, fmt.Errorf("logstore %s: %w", s.name, err)
		}
	}
	before := disk.Snapshot().GCBytes
	removed, err := disk.TruncateBelow(watermark)
	if err != nil {
		return removed, 0, fmt.Errorf("logstore %s: %w", s.name, err)
	}
	bytes := disk.Snapshot().GCBytes - before
	if removed > 0 || bytes > 0 {
		s.events.Record(obs.EventLogGC, "%s: reclaimed %d segments, %d bytes below %d",
			s.name, removed, bytes, watermark)
	}
	return removed, bytes, nil
}

// Segments returns the persistent log's on-disk segment count (0 in
// memory mode) — the observable that shrinks when watermark-driven GC
// reclaims sealed segments.
func (s *Store) Segments() int {
	if s.disk == nil {
		return 0
	}
	return s.disk.Segments()
}

// CatchUp is the Log Store replica repair skeleton: a lagging replica
// pulls the batches it is missing straight out of a peer's persistent
// log (plog.Replay streams them in append order) instead of waiting for
// the SAL's triplicate writes to be retried. The durable tail is
// repaired (batches whose highest LSN exceeds this store's durable
// LSN), and so are tracked pending holes below the watermark — LSN
// gaps left by interleaved lane batches, rebuilt from gaps at Open. A
// torn middle the peer ALSO lacks still needs full replica rebuild,
// tracked in ROADMAP. Returns the number of records appended.
func (s *Store) CatchUp(peer *Store) (int, error) {
	if peer == nil || !peer.Durable() {
		return 0, fmt.Errorf("logstore %s: catch-up needs a disk-backed peer", s.name)
	}
	appended := 0
	err := peer.disk.Replay(func(mark uint64, payload []byte) error {
		// mark is the batch's highest LSN; skip batches we already have
		// without decoding them — unless this store has pending holes
		// below its watermark (interleaved lane batches lost in a
		// crash), in which case a below-watermark peer batch may be
		// exactly the filler and Append's hole-aware filter must see
		// it.
		s.mu.Lock()
		pendingHoles := len(s.holes)
		s.mu.Unlock()
		if mark <= s.DurableLSN() && pendingHoles == 0 {
			return nil
		}
		before := s.Len()
		if _, err := s.Append(payload); err != nil {
			return err
		}
		appended += s.Len() - before
		return nil
	})
	if err != nil {
		return appended, fmt.Errorf("logstore %s: catch-up from %s: %w", s.name, peer.name, err)
	}
	return appended, nil
}

// NodeStats is one Log Store's observable state, for stats endpoints
// and operator tooling.
type NodeStats struct {
	Name         string
	Durable      bool
	DurableLSN   uint64
	TruncatedLSN uint64
	Records      int
	// PendingHoles counts LSNs below the durable watermark still
	// awaiting another write lane's batch (normally 0 at rest).
	PendingHoles int
	// Subscribers and StreamLag describe the push stream: attached
	// consumers and the record distance to the slowest one.
	Subscribers int
	StreamLag   uint64
	// Segments counts on-disk segment files (0 in memory mode); Log
	// holds the persistent log's counters, including GCBytes reclaimed
	// by watermark-driven truncation.
	Segments int
	Log      plog.Stats
}

// NodeStats snapshots the store's observable state.
func (s *Store) NodeStats() NodeStats {
	s.mu.Lock()
	pendingHoles := len(s.holes)
	s.mu.Unlock()
	return NodeStats{
		Name:         s.name,
		Durable:      s.Durable(),
		DurableLSN:   s.DurableLSN(),
		TruncatedLSN: s.TruncatedLSN(),
		Records:      s.Len(),
		PendingHoles: pendingHoles,
		Subscribers:  s.Subscribers(),
		StreamLag:    s.StreamLag(),
		Segments:     s.Segments(),
		Log:          s.LogStats(),
	}
}

// Sync forces pending disk writes to storage (no-op in memory mode).
func (s *Store) Sync() error {
	if s.disk == nil {
		return nil
	}
	return s.disk.Sync()
}

// Close stops the subscription hub and releases the persistent log.
func (s *Store) Close() error {
	s.closeHub()
	if s.disk == nil {
		return nil
	}
	return s.disk.Close()
}
