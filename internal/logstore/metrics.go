package logstore

import (
	"time"

	"taurus/internal/obs"
)

// RegisterMetrics surfaces the store's watermarks as scrape-time gauges
// and arms the append-latency histogram (covering decode, dedupe, disk
// write, and the group-commit fsync wait). No-op when reg is nil.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	labels := []obs.Label{obs.L("node", s.name)}
	s.appendHist = reg.Histogram("taurus_logstore_append_seconds",
		"Log Store append latency including the group-commit fsync wait.", nil, labels...)
	s.appendRecs = reg.Counter("taurus_logstore_records_total",
		"Fresh records accepted (idempotent redeliveries excluded).", labels...)
	reg.GaugeFunc("taurus_logstore_durable_lsn", "Durable watermark.",
		func() float64 { return float64(s.DurableLSN()) }, labels...)
	reg.GaugeFunc("taurus_logstore_truncated_lsn", "GC watermark.",
		func() float64 { return float64(s.TruncatedLSN()) }, labels...)
	reg.GaugeFunc("taurus_logstore_records", "Records held in memory.",
		func() float64 { return float64(s.Len()) }, labels...)
	reg.GaugeFunc("taurus_logstore_pending_holes", "LSNs below the watermark awaiting another lane's batch.",
		func() float64 { return float64(s.PendingHoles()) }, labels...)
	reg.GaugeFunc("taurus_logstore_segments", "On-disk segment files.",
		func() float64 { return float64(s.Segments()) }, labels...)
	// Subscription-stream families (push-based replica distribution).
	reg.GaugeFunc("taurus_logstore_stream_subscribers", "Active push-stream subscribers.",
		func() float64 { return float64(s.Subscribers()) }, labels...)
	reg.GaugeFunc("taurus_logstore_stream_lag_records", "Records between the contiguous durable prefix and the slowest subscriber.",
		func() float64 { return float64(s.StreamLag()) }, labels...)
	s.mSubscribes = reg.Counter("taurus_logstore_stream_subscribes_total",
		"Subscriptions accepted (attaches and resubscribes).", labels...)
	s.mStreamBatches = reg.Counter("taurus_logstore_stream_batches_total",
		"Pushed stream frames (including frontier-only empties).", labels...)
	s.mStreamRecords = reg.Counter("taurus_logstore_stream_records_total",
		"Log records pushed to subscribers.", labels...)
	s.mStreamDisconnects = reg.Counter("taurus_logstore_stream_disconnects_total",
		"Subscribers disconnected by flow control (queue overflow).", labels...)
	s.mStreamPushErrors = reg.Counter("taurus_logstore_stream_push_errors_total",
		"Pushed frames that failed at the transport (subscriber dropped).", labels...)
}

// observeAppend times one Append call; returns a no-op when metrics are
// disarmed.
func (s *Store) observeAppend() func(freshRecords int) {
	if s.appendHist == nil {
		return func(int) {}
	}
	t0 := time.Now()
	return func(fresh int) {
		s.appendHist.ObserveDuration(time.Since(t0))
		s.appendRecs.Add(uint64(fresh))
	}
}
