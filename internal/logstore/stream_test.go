package logstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/wal"
)

// streamSink is a test transport for the push hub: it collects the
// frames pushed to subscriber nodes and can be switched to fail (dead
// subscriber) or block (stalled subscriber) mid-test.
type streamSink struct {
	mu     sync.Mutex
	frames []*cluster.LogBatchReq
	fail   bool
	block  chan struct{}
}

func (t *streamSink) Call(node string, req any) (any, error) {
	t.mu.Lock()
	block := t.block
	t.mu.Unlock()
	if block != nil {
		<-block
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fail {
		return nil, fmt.Errorf("sink: %s unreachable", node)
	}
	if m, ok := req.(*cluster.LogBatchReq); ok {
		t.frames = append(t.frames, m)
	}
	return &cluster.Ack{}, nil
}

func (t *streamSink) setFail(fail bool) {
	t.mu.Lock()
	t.fail = fail
	t.mu.Unlock()
}

// deliveredLSNs decodes every collected frame and returns the set of
// record LSNs pushed so far, plus the total including duplicates.
func (t *streamSink) deliveredLSNs() (map[uint64]int, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[uint64]int)
	total := 0
	for _, f := range t.frames {
		if len(f.Recs) == 0 {
			continue
		}
		recs, err := wal.DecodeAll(f.Recs)
		if err != nil {
			continue
		}
		for _, r := range recs {
			seen[r.LSN]++
			total++
		}
	}
	return seen, total
}

func waitCond(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

func compactRecs(from, to uint64) []byte {
	var recs []wal.Record
	for lsn := from; lsn <= to; lsn++ {
		recs = append(recs, wal.Record{LSN: lsn, Type: wal.TypeCompact, PageID: 1})
	}
	return encodeRecs(recs...)
}

// covered reports whether every LSN in [from, to] was delivered.
func covered(seen map[uint64]int, from, to uint64) bool {
	for lsn := from; lsn <= to; lsn++ {
		if seen[lsn] == 0 {
			return false
		}
	}
	return true
}

// TestStreamPushDeliversContiguously: a subscriber attaching behind the
// durable frontier catches up via gap-fill frames and then rides the
// live multicast — every record exactly once, no gaps.
func TestStreamPushDeliversContiguously(t *testing.T) {
	s := New("log1")
	sink := &streamSink{}
	s.SetPushTransport(sink)
	defer s.closeHub()
	if _, err := s.Append(compactRecs(1, 3)); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Handle(&cluster.LogSubscribeReq{Tenant: 1, Node: "r1", FromLSN: 0})
	if err != nil {
		t.Fatal(err)
	}
	sub := resp.(*cluster.LogSubscribeResp)
	if sub.TruncatedLSN != 0 || sub.DurableLSN != 3 {
		t.Fatalf("subscribe resp: %+v", sub)
	}
	waitCond(t, 5*time.Second, func() bool {
		seen, _ := sink.deliveredLSNs()
		return covered(seen, 1, 3)
	}, "attach-time catch-up never delivered LSNs 1..3")
	if _, err := s.Append(compactRecs(4, 5)); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool {
		seen, _ := sink.deliveredLSNs()
		return covered(seen, 1, 5)
	}, "live records 4..5 never pushed")
	seen, total := sink.deliveredLSNs()
	if total != 5 {
		t.Fatalf("delivered %d records for 5 LSNs (duplicates): %v", total, seen)
	}
	if s.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", s.Subscribers())
	}
	waitCond(t, 5*time.Second, func() bool { return s.StreamLag() == 0 },
		"stream lag never drained")
}

// TestStreamSlowSubscriberDisconnect: a subscriber that stops consuming
// overflows its flow-control window and is disconnected rather than
// stalling the stream.
func TestStreamSlowSubscriberDisconnect(t *testing.T) {
	s := New("log1")
	sink := &streamSink{block: make(chan struct{})}
	s.SetPushTransport(sink)
	defer s.closeHub()
	if _, err := s.Handle(&cluster.LogSubscribeReq{Tenant: 1, Node: "r1", FromLSN: 0, Window: 1}); err != nil {
		t.Fatal(err)
	}
	// The sender is stuck pushing the attach sync frame; each append
	// multicasts another frame into the 1-deep queue until it overflows.
	var lsn uint64
	deadline := time.Now().Add(5 * time.Second)
	for s.Subscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow subscriber never disconnected")
		}
		lsn++
		if _, err := s.Append(compactRecs(lsn, lsn)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(sink.block) // release the stuck sender goroutine
}

// TestStreamSubscribeRefusedAfterGC: log GC past the requested start
// refuses the subscription and reports the truncation watermark so the
// replica checkpoint-resyncs first.
func TestStreamSubscribeRefusedAfterGC(t *testing.T) {
	s := New("log1")
	sink := &streamSink{}
	s.SetPushTransport(sink)
	defer s.closeHub()
	if _, err := s.Append(compactRecs(1, 5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.TruncateBelow(4); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Handle(&cluster.LogSubscribeReq{Tenant: 1, Node: "r1", FromLSN: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub := resp.(*cluster.LogSubscribeResp); sub.TruncatedLSN != 3 {
		t.Fatalf("refusal watermark = %d, want 3", sub.TruncatedLSN)
	}
	if s.Subscribers() != 0 {
		t.Fatal("refused subscription still attached")
	}
	// Resubscribing at the watermark is accepted and streams the rest.
	if _, err := s.Handle(&cluster.LogSubscribeReq{Tenant: 1, Node: "r1", FromLSN: 3}); err != nil {
		t.Fatal(err)
	}
	if s.Subscribers() != 1 {
		t.Fatal("post-resync subscription not attached")
	}
	waitCond(t, 5*time.Second, func() bool {
		seen, _ := sink.deliveredLSNs()
		return covered(seen, 4, 5)
	}, "surviving records 4..5 never pushed")
}

// TestStreamPinsGC: an attached (merely slow) subscriber pins the GC
// watermark, so records it still needs are never collected mid-stream.
func TestStreamPinsGC(t *testing.T) {
	s := New("log1")
	sink := &streamSink{block: make(chan struct{})}
	s.SetPushTransport(sink)
	defer s.closeHub()
	if _, err := s.Handle(&cluster.LogSubscribeReq{Tenant: 1, Node: "r1", FromLSN: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(compactRecs(1, 5)); err != nil {
		t.Fatal(err)
	}
	// The subscriber is stalled at LSN 1; a GC sweep aimed far past it
	// must clamp to the subscriber floor and collect nothing.
	if _, _, err := s.TruncateBelow(100); err != nil {
		t.Fatal(err)
	}
	if s.TruncatedLSN() != 0 || s.Len() != 5 {
		t.Fatalf("GC overran an attached subscriber: truncated=%d len=%d", s.TruncatedLSN(), s.Len())
	}
	close(sink.block)
	waitCond(t, 5*time.Second, func() bool {
		seen, _ := sink.deliveredLSNs()
		return covered(seen, 1, 5)
	}, "pinned records never delivered after the stall cleared")
}

// TestStreamPushErrorResubscribe: a dead subscriber is dropped on the
// first failed push; resubscribing from the last delivered LSN resumes
// the stream without a gap.
func TestStreamPushErrorResubscribe(t *testing.T) {
	s := New("log1")
	sink := &streamSink{}
	s.SetPushTransport(sink)
	defer s.closeHub()
	if _, err := s.Handle(&cluster.LogSubscribeReq{Tenant: 1, Node: "r1", FromLSN: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(compactRecs(1, 3)); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool {
		seen, _ := sink.deliveredLSNs()
		return covered(seen, 1, 3)
	}, "initial records never pushed")
	sink.setFail(true)
	if _, err := s.Append(compactRecs(4, 4)); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool { return s.Subscribers() == 0 },
		"dead subscriber never dropped")
	sink.setFail(false)
	// The replica resubscribes from its contiguous tail (LSN 3).
	if _, err := s.Handle(&cluster.LogSubscribeReq{Tenant: 1, Node: "r1", FromLSN: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(compactRecs(5, 5)); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool {
		seen, _ := sink.deliveredLSNs()
		return covered(seen, 1, 5)
	}, "stream did not resume after resubscribe")
}
