package logstore

import (
	"testing"

	"taurus/internal/cluster"
	"taurus/internal/wal"
)

func encodeRecs(recs ...wal.Record) []byte {
	var buf []byte
	for i := range recs {
		buf = recs[i].Encode(buf)
	}
	return buf
}

func TestAppendAndDurableLSN(t *testing.T) {
	s := New("log1")
	lsn, err := s.Append(encodeRecs(
		wal.Record{LSN: 1, Type: wal.TypeFormatPage, PageID: 1, IndexID: 1},
		wal.Record{LSN: 2, Type: wal.TypeCompact, PageID: 1},
	))
	if err != nil || lsn != 2 {
		t.Fatalf("append: lsn=%d err=%v", lsn, err)
	}
	if s.DurableLSN() != 2 || s.Len() != 2 {
		t.Fatalf("durable=%d len=%d", s.DurableLSN(), s.Len())
	}
	// Idempotent redelivery: same records ignored.
	lsn, err = s.Append(encodeRecs(wal.Record{LSN: 2, Type: wal.TypeCompact, PageID: 1}))
	if err != nil || lsn != 2 || s.Len() != 2 {
		t.Fatalf("redelivery changed state: lsn=%d len=%d", lsn, s.Len())
	}
	// Corrupt input rejected.
	if _, err := s.Append([]byte{1, 2, 3}); err == nil {
		t.Fatal("corrupt log batch should fail")
	}
}

func TestReadFromServesReplicas(t *testing.T) {
	s := New("log1")
	s.Append(encodeRecs(
		wal.Record{LSN: 1, Type: wal.TypeFormatPage, PageID: 1, IndexID: 1},
		wal.Record{LSN: 2, Type: wal.TypeCompact, PageID: 1},
		wal.Record{LSN: 3, Type: wal.TypeCompact, PageID: 1},
	))
	recs := s.ReadFrom(1)
	if len(recs) != 2 || recs[0].LSN != 2 || recs[1].LSN != 3 {
		t.Fatalf("ReadFrom(1) = %v", recs)
	}
	if got := s.ReadFrom(3); len(got) != 0 {
		t.Fatalf("ReadFrom(3) = %v", got)
	}
}

func TestHandleDispatch(t *testing.T) {
	s := New("log1")
	resp, err := s.Handle(&cluster.LogAppendReq{
		Recs: encodeRecs(wal.Record{LSN: 5, Type: wal.TypeCompact, PageID: 9}),
	})
	if err != nil || resp.(*cluster.Ack).LSN != 5 {
		t.Fatalf("handle: %v %v", resp, err)
	}
	if _, err := s.Handle("bogus"); err == nil {
		t.Fatal("unknown request should fail")
	}
}
