package logstore

import (
	"sync"
	"testing"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/wal"
)

func encodeRecs(recs ...wal.Record) []byte {
	var buf []byte
	for i := range recs {
		buf = recs[i].Encode(buf)
	}
	return buf
}

func TestAppendAndDurableLSN(t *testing.T) {
	s := New("log1")
	lsn, err := s.Append(encodeRecs(
		wal.Record{LSN: 1, Type: wal.TypeFormatPage, PageID: 1, IndexID: 1},
		wal.Record{LSN: 2, Type: wal.TypeCompact, PageID: 1},
	))
	if err != nil || lsn != 2 {
		t.Fatalf("append: lsn=%d err=%v", lsn, err)
	}
	if s.DurableLSN() != 2 || s.Len() != 2 {
		t.Fatalf("durable=%d len=%d", s.DurableLSN(), s.Len())
	}
	// Idempotent redelivery: same records ignored.
	lsn, err = s.Append(encodeRecs(wal.Record{LSN: 2, Type: wal.TypeCompact, PageID: 1}))
	if err != nil || lsn != 2 || s.Len() != 2 {
		t.Fatalf("redelivery changed state: lsn=%d len=%d", lsn, s.Len())
	}
	// Corrupt input rejected.
	if _, err := s.Append([]byte{1, 2, 3}); err == nil {
		t.Fatal("corrupt log batch should fail")
	}
}

func TestReadFromServesReplicas(t *testing.T) {
	s := New("log1")
	s.Append(encodeRecs(
		wal.Record{LSN: 1, Type: wal.TypeFormatPage, PageID: 1, IndexID: 1},
		wal.Record{LSN: 2, Type: wal.TypeCompact, PageID: 1},
		wal.Record{LSN: 3, Type: wal.TypeCompact, PageID: 1},
	))
	recs := s.ReadFrom(1)
	if len(recs) != 2 || recs[0].LSN != 2 || recs[1].LSN != 3 {
		t.Fatalf("ReadFrom(1) = %v", recs)
	}
	if got := s.ReadFrom(3); len(got) != 0 {
		t.Fatalf("ReadFrom(3) = %v", got)
	}
}

func TestHandleDispatch(t *testing.T) {
	s := New("log1")
	resp, err := s.Handle(&cluster.LogAppendReq{
		Recs: encodeRecs(wal.Record{LSN: 5, Type: wal.TypeCompact, PageID: 9}),
	})
	if err != nil || resp.(*cluster.Ack).LSN != 5 {
		t.Fatalf("handle: %v %v", resp, err)
	}
	if _, err := s.Handle("bogus"); err == nil {
		t.Fatal("unknown request should fail")
	}
}

func TestOutOfOrderLSNBatches(t *testing.T) {
	for _, durable := range []bool{false, true} {
		name := "memory"
		if durable {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			var s *Store
			if durable {
				var err error
				s, err = Open("log1", t.TempDir(), WithNoSync())
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
			} else {
				s = New("log1")
			}
			// A later lane's batch arrives first: the watermark advances
			// and the skipped LSNs become pending holes.
			if lsn, err := s.Append(encodeRecs(
				wal.Record{LSN: 5, Type: wal.TypeCompact, PageID: 1},
				wal.Record{LSN: 6, Type: wal.TypeCompact, PageID: 1},
			)); err != nil || lsn != 6 {
				t.Fatalf("first batch: lsn=%d err=%v", lsn, err)
			}
			if holes := s.NodeStats().PendingHoles; holes != 4 {
				t.Fatalf("pending holes = %d, want 4 (LSNs 1-4)", holes)
			}
			// Another lane's batch below the watermark fills its holes —
			// it must NOT be dropped as a duplicate.
			if lsn, err := s.Append(encodeRecs(
				wal.Record{LSN: 3, Type: wal.TypeCompact, PageID: 1},
				wal.Record{LSN: 4, Type: wal.TypeCompact, PageID: 1},
			)); err != nil || lsn != 6 {
				t.Fatalf("hole-filling batch: lsn=%d err=%v", lsn, err)
			}
			if s.Len() != 4 {
				t.Fatalf("hole-filling batch dropped: len=%d", s.Len())
			}
			if holes := s.NodeStats().PendingHoles; holes != 2 {
				t.Fatalf("pending holes = %d, want 2 (LSNs 1-2)", holes)
			}
			// Re-delivering the same records IS a duplicate.
			if lsn, err := s.Append(encodeRecs(
				wal.Record{LSN: 3, Type: wal.TypeCompact, PageID: 1},
				wal.Record{LSN: 4, Type: wal.TypeCompact, PageID: 1},
			)); err != nil || lsn != 6 {
				t.Fatalf("redelivered batch: lsn=%d err=%v", lsn, err)
			}
			if s.Len() != 4 {
				t.Fatalf("redelivered batch stored: len=%d", s.Len())
			}
			// A batch straddling the watermark keeps only the fresh suffix.
			if lsn, err := s.Append(encodeRecs(
				wal.Record{LSN: 6, Type: wal.TypeCompact, PageID: 1},
				wal.Record{LSN: 7, Type: wal.TypeCompact, PageID: 1},
			)); err != nil || lsn != 7 {
				t.Fatalf("straddling batch: lsn=%d err=%v", lsn, err)
			}
			if s.Len() != 5 || s.DurableLSN() != 7 {
				t.Fatalf("len=%d durable=%d", s.Len(), s.DurableLSN())
			}
			recs := s.ReadFrom(0)
			for i := 1; i < len(recs); i++ {
				if recs[i].LSN <= recs[i-1].LSN {
					t.Fatalf("log not LSN-sorted: %d after %d", recs[i].LSN, recs[i-1].LSN)
				}
			}
		})
	}
}

func TestConcurrentIdempotentRedelivery(t *testing.T) {
	s, err := Open("log1", t.TempDir(), WithFlushInterval(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// 10 batches of 10 records; every batch re-delivered by 4 goroutines
	// concurrently, as a retrying SAL would.
	const batches, per, senders = 10, 10, 4
	enc := make([][]byte, batches)
	for b := 0; b < batches; b++ {
		var recs []wal.Record
		for i := 0; i < per; i++ {
			recs = append(recs, wal.Record{
				LSN: uint64(b*per + i + 1), Type: wal.TypeCompact, PageID: uint64(b + 1),
			})
		}
		enc[b] = encodeRecs(recs...)
	}
	var wg sync.WaitGroup
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if _, err := s.Append(enc[b]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != batches*per || s.DurableLSN() != batches*per {
		t.Fatalf("len=%d durable=%d, want %d records exactly once", s.Len(), s.DurableLSN(), batches*per)
	}
}

func TestDiskModeSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open("log1", dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Durable() != true {
		t.Fatal("disk mode not durable?")
	}
	if _, err := s.Append(encodeRecs(
		wal.Record{LSN: 1, Type: wal.TypeFormatPage, PageID: 1, IndexID: 1},
		wal.Record{LSN: 2, Type: wal.TypeInsertRec, PageID: 1, TrxID: 9, Payload: []byte("row")},
	)); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a crash right after the acknowledged append.
	s2, err := Open("log1", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 || s2.DurableLSN() != 2 {
		t.Fatalf("after reopen: len=%d durable=%d", s2.Len(), s2.DurableLSN())
	}
	recs := s2.ReadFrom(0)
	if recs[1].TrxID != 9 || string(recs[1].Payload) != "row" {
		t.Fatalf("payload lost: %+v", recs[1])
	}
	if memory := New("mem"); memory.Durable() {
		t.Fatal("memory mode claims durability")
	}
}

func TestTruncateBelowDropsPrefix(t *testing.T) {
	s, err := Open("log1", t.TempDir(), WithNoSync(), WithSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for lsn := uint64(1); lsn <= 40; lsn++ {
		if _, err := s.Append(encodeRecs(wal.Record{LSN: lsn, Type: wal.TypeCompact, PageID: lsn})); err != nil {
			t.Fatal(err)
		}
	}
	removed, bytes, err := s.TruncateBelow(30)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || bytes == 0 {
		t.Fatalf("GC reclaimed removed=%d bytes=%d", removed, bytes)
	}
	if s.TruncatedLSN() != 29 {
		t.Fatalf("truncatedLSN = %d", s.TruncatedLSN())
	}
	recs := s.ReadFrom(0)
	if len(recs) != 11 || recs[0].LSN != 30 {
		t.Fatalf("after GC: %d records, first LSN %d", len(recs), recs[0].LSN)
	}
	// DurableLSN is unaffected by GC.
	if s.DurableLSN() != 40 {
		t.Fatalf("durable = %d", s.DurableLSN())
	}
	if s.LogStats().GCBytes == 0 {
		t.Fatal("no segments reclaimed")
	}
}

// TestCatchUpFromPeer is the replica-repair scenario: a replica that
// missed batches (down during writes) streams the missing tail out of a
// peer's persistent log and converges to the same durable state.
func TestCatchUpFromPeer(t *testing.T) {
	peer, err := Open("log1", t.TempDir(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	lag, err := Open("log2", t.TempDir(), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer lag.Close()
	lsn := uint64(0)
	appendBatch := func(s *Store, n int) {
		t.Helper()
		var recs []wal.Record
		for i := 0; i < n; i++ {
			lsn++
			recs = append(recs, wal.Record{LSN: lsn, Type: wal.TypeCompact, PageID: lsn})
		}
		if _, err := s.Append(encodeRecs(recs...)); err != nil {
			t.Fatal(err)
		}
	}
	// Both replicas see the first batch; the laggard misses the rest.
	var first []wal.Record
	for i := 0; i < 10; i++ {
		lsn++
		first = append(first, wal.Record{LSN: lsn, Type: wal.TypeCompact, PageID: lsn})
	}
	enc := encodeRecs(first...)
	if _, err := peer.Append(enc); err != nil {
		t.Fatal(err)
	}
	if _, err := lag.Append(enc); err != nil {
		t.Fatal(err)
	}
	appendBatch(peer, 15)
	appendBatch(peer, 15)
	if lag.DurableLSN() >= peer.DurableLSN() {
		t.Fatal("laggard is not lagging")
	}
	n, err := lag.CatchUp(peer)
	if err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("caught up %d records, want 30", n)
	}
	if lag.DurableLSN() != peer.DurableLSN() || lag.Len() != peer.Len() {
		t.Fatalf("not converged: lsn %d/%d len %d/%d",
			lag.DurableLSN(), peer.DurableLSN(), lag.Len(), peer.Len())
	}
	// CatchUp is idempotent.
	if n, err := lag.CatchUp(peer); err != nil || n != 0 {
		t.Fatalf("second catch-up appended %d (err %v)", n, err)
	}
	// The repaired records are durable: a restart still has them.
	dir := lag.disk.Dir()
	if err := lag.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open("log2", dir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.DurableLSN() != peer.DurableLSN() {
		t.Fatalf("restart lost repaired records: %d vs %d", re.DurableLSN(), peer.DurableLSN())
	}
	// A memory-mode peer cannot serve catch-up.
	if _, err := re.CatchUp(New("mem")); err == nil {
		t.Fatal("catch-up from a memory peer must fail")
	}
}

// TestCatchUpFillsHoles verifies replica repair across interleaved lane
// batches: a replica that missed an earlier lane's batch (a pending
// hole below its durable watermark) pulls it from a peer — including
// after a restart, when the hole set is rebuilt from the LSN gaps.
func TestCatchUpFillsHoles(t *testing.T) {
	peerDir, replicaDir := t.TempDir(), t.TempDir()
	peer, err := Open("peer", peerDir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	replica, err := Open("replica", replicaDir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	laneA := encodeRecs(
		wal.Record{LSN: 1, Type: wal.TypeCompact, PageID: 1},
		wal.Record{LSN: 2, Type: wal.TypeCompact, PageID: 1},
	)
	laneB := encodeRecs(
		wal.Record{LSN: 3, Type: wal.TypeCompact, PageID: 9},
		wal.Record{LSN: 4, Type: wal.TypeCompact, PageID: 9},
	)
	laneC := encodeRecs(
		wal.Record{LSN: 5, Type: wal.TypeCompact, PageID: 1},
		wal.Record{LSN: 6, Type: wal.TypeCompact, PageID: 1},
	)
	for _, batch := range [][]byte{laneA, laneB, laneC} {
		if _, err := peer.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	// The replica got lanes A and C but lost lane B's batch in between.
	for _, batch := range [][]byte{laneA, laneC} {
		if _, err := replica.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	if replica.PendingHoles() != 2 || replica.DurableLSN() != 6 {
		t.Fatalf("replica holes=%d durable=%d", replica.PendingHoles(), replica.DurableLSN())
	}
	// Restart the replica: the hole set must be rebuilt from the gap.
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	replica, err = Open("replica", replicaDir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	if replica.PendingHoles() != 2 {
		t.Fatalf("holes not rebuilt on open: %d", replica.PendingHoles())
	}
	// CatchUp must not skip the below-watermark hole-filling batch.
	appended, err := replica.CatchUp(peer)
	if err != nil {
		t.Fatal(err)
	}
	if appended != 2 || replica.PendingHoles() != 0 || replica.Len() != 6 {
		t.Fatalf("after catch-up: appended=%d holes=%d len=%d",
			appended, replica.PendingHoles(), replica.Len())
	}
	recs := replica.ReadFrom(0)
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("log not LSN-sorted after repair: %v", recs[i].LSN)
		}
	}
}

// TestGCMarkSurvivesReopen pins the persisted GC watermark: segment GC
// deletes whole segments, so collected records can leave gaps between
// surviving mixed segments — a reopened store must not reconstruct
// those gaps as pending lane holes (no peer can ever fill them), and
// the truncation watermark itself must survive the restart.
func TestGCMarkSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open("log1", dir, WithNoSync(), WithSegmentBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	for lsn := uint64(1); lsn <= 40; lsn++ {
		if _, err := s.Append(encodeRecs(wal.Record{LSN: lsn, Type: wal.TypeCompact, PageID: lsn})); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.TruncateBelow(30); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open("log1", dir, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.TruncatedLSN() != 29 {
		t.Fatalf("truncation watermark lost on reopen: %d", s2.TruncatedLSN())
	}
	// Surviving mixed segments may still start below the watermark; any
	// gap at or below it is a GC artifact, not a pending hole.
	if s2.PendingHoles() != 0 {
		t.Fatalf("GC'd prefix reconstructed as %d pending holes", s2.PendingHoles())
	}
	if s2.DurableLSN() != 40 {
		t.Fatalf("durable = %d", s2.DurableLSN())
	}
}

// TestFrontHoleDetectedOnReopen pins the last piece of hole repair: a
// hole at the very FRONT of the retained log. Segment GC deleted the
// prefix below the persisted watermark, the batch just above the
// watermark was lost in a crash (its holes map died with the process),
// and the surviving records start later. With the GC watermark on disk
// the gap between it and the first surviving record is provably loss —
// Open must rebuild those pending holes so CatchUp can backfill them
// from a peer.
func TestFrontHoleDetectedOnReopen(t *testing.T) {
	dir := t.TempDir()
	// Peer holds the full log.
	peer, err := Open("peer", dir+"/peer", WithSegmentBytes(64), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	batchA := []wal.Record{}
	for lsn := uint64(1); lsn <= 5; lsn++ {
		batchA = append(batchA, wal.Record{LSN: lsn, Type: wal.TypeCompact, PageID: 1})
	}
	batchB := []wal.Record{}
	for lsn := uint64(6); lsn <= 10; lsn++ {
		batchB = append(batchB, wal.Record{LSN: lsn, Type: wal.TypeCompact, PageID: 1})
	}
	batchC := []wal.Record{}
	for lsn := uint64(11); lsn <= 15; lsn++ {
		batchC = append(batchC, wal.Record{LSN: lsn, Type: wal.TypeCompact, PageID: 1})
	}
	for _, b := range [][]wal.Record{batchA, batchB, batchC} {
		if _, err := peer.Append(encodeRecs(b...)); err != nil {
			t.Fatal(err)
		}
	}
	// The lagging replica got batches A and C; B (an interleaved lane
	// batch) never arrived before the crash. Tiny segments make every
	// batch its own sealed segment, so GC below 6 fully deletes A.
	lag, err := Open("lag", dir+"/lag", WithSegmentBytes(64), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lag.Append(encodeRecs(batchA...)); err != nil {
		t.Fatal(err)
	}
	if _, err := lag.Append(encodeRecs(batchC...)); err != nil {
		t.Fatal(err)
	}
	if lag.PendingHoles() != 5 {
		t.Fatalf("runtime holes = %d, want 5", lag.PendingHoles())
	}
	if _, _, err := lag.TruncateBelow(6); err != nil {
		t.Fatal(err)
	}
	if err := lag.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash + reopen: the in-memory holes map is gone; the retained log
	// now STARTS at LSN 11 with the GC watermark at 5. LSNs 6..10 are a
	// front hole — above the watermark, below everything surviving.
	lag, err = Open("lag", dir+"/lag", WithSegmentBytes(64), WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer lag.Close()
	if lag.TruncatedLSN() != 5 {
		t.Fatalf("truncated = %d, want 5", lag.TruncatedLSN())
	}
	if first := lag.ReadFrom(0); len(first) == 0 || first[0].LSN != 11 {
		t.Fatalf("retained log should start at 11, got %v", first)
	}
	if lag.PendingHoles() != 5 {
		t.Fatalf("front hole not rebuilt: PendingHoles = %d, want 5", lag.PendingHoles())
	}
	// And the hole is repairable from the peer.
	appended, err := lag.CatchUp(peer)
	if err != nil {
		t.Fatal(err)
	}
	if appended != 5 {
		t.Fatalf("CatchUp appended %d records, want 5", appended)
	}
	if lag.PendingHoles() != 0 {
		t.Fatalf("holes remain after catch-up: %d", lag.PendingHoles())
	}
	recs := lag.ReadFrom(5)
	if len(recs) != 10 || recs[0].LSN != 6 || recs[9].LSN != 15 {
		t.Fatalf("log not contiguous after repair: %d records, first %d", len(recs), recs[0].LSN)
	}
}
