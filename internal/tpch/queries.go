package tpch

import (
	"fmt"

	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/exec"
	"taurus/internal/expr"
	"taurus/internal/plan"
	"taurus/internal/types"
)

// Env is the per-run query environment: it carries the database, whether
// NDP is enabled, and collects per-access NDP decisions for reporting.
type Env struct {
	DB  *DB
	NDP bool

	// Reports records every table access and its NDP decision.
	Reports []AccessReport
	err     error
}

// AccessReport pairs an access spec with its optimizer decision.
type AccessReport struct {
	Spec *plan.AccessSpec
	Dec  plan.Decision
}

// NewEnv creates an environment.
func NewEnv(db *DB, ndp bool) *Env { return &Env{DB: db, NDP: ndp} }

// Err returns the first plan-construction error.
func (e *Env) Err() error { return e.err }

func (e *Env) fail(err error) exec.Operator {
	if e.err == nil {
		e.err = err
	}
	return &exec.Values{}
}

// scan builds a table access through the NDP post-processing optimizer.
func (e *Env) scan(spec *plan.AccessSpec) exec.Operator {
	var dec plan.Decision
	if e.NDP {
		dec = e.DB.Cat.Decide(spec)
	} else {
		// Without NDP the whole predicate is residual-free at the scan
		// (classical pushdown evaluates it in the storage engine).
		spec.Residual = nil
	}
	e.Reports = append(e.Reports, AccessReport{Spec: spec, Dec: dec})
	op, err := e.DB.Cat.BuildScan(spec, dec)
	if err != nil {
		return e.fail(err)
	}
	return op
}

// aggScan builds a table access whose query block aggregates directly
// over it: when the optimizer pushes aggregation this becomes an
// NDPAggScan; otherwise a plain scan topped by an executor HashAgg. The
// group columns are the leading output ordinals listed in spec.GroupBy.
func (e *Env) aggScan(spec *plan.AccessSpec, having *expr.Expr) exec.Operator {
	op, dec, err := e.DB.Cat.BuildAccess(spec, e.NDP, having)
	e.Reports = append(e.Reports, AccessReport{Spec: spec, Dec: dec})
	if err != nil {
		return e.fail(err)
	}
	return op
}

// lookupByPrefix returns rows of idx whose leading key column equals v,
// projected to outCols (index-schema ordinals). This is the point/range
// lookup path for which "NDP is not considered" (§IV-B).
func lookupByPrefix(ctx *exec.Ctx, idx *engine.Index, v types.Datum, outCols []int) ([]types.Row, error) {
	key := types.EncodeKey(nil, types.Row{v})
	var out []types.Row
	err := ctx.Eng.Scan(engine.ScanOptions{
		Index:      idx,
		Start:      key,
		End:        append(append([]byte(nil), key...), 0xFF), // all keys with this prefix
		Projection: outCols,
	}, func(row types.Row, _ []core.AggState) error {
		out = append(out, row.Clone())
		return nil
	})
	return out, err
}

// lineitemByPartkey resolves full lineitem rows for one partkey: a
// secondary-index lookup followed by primary-key lookups, exactly as
// InnoDB serves secondary range reads. outCols are lineitem ordinals.
func (e *Env) lineitemByPartkey(ctx *exec.Ctx, partkey types.Datum, outCols []int) ([]types.Row, error) {
	// Secondary layout: (l_partkey, l_orderkey, l_linenumber).
	refs, err := lookupByPrefix(ctx, e.DB.LineitemByPart, partkey, []int{1, 2})
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(refs))
	for _, ref := range refs {
		rows, err := lookupByPrefix2(ctx, e.DB.Lineitem.Primary, ref[0], ref[1], outCols)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// lookupByPrefix2 looks up rows whose two leading key columns equal
// (a, b).
func lookupByPrefix2(ctx *exec.Ctx, idx *engine.Index, a, b types.Datum, outCols []int) ([]types.Row, error) {
	key := types.EncodeKey(nil, types.Row{a, b})
	var out []types.Row
	err := ctx.Eng.Scan(engine.ScanOptions{
		Index: idx, Start: key,
		End:        append(append([]byte(nil), key...), 0xFF),
		Projection: outCols,
	}, func(row types.Row, _ []core.AggState) error {
		out = append(out, row.Clone())
		return nil
	})
	return out, err
}

// Small expression helpers keep the query definitions readable.

func col(i int, name string) *expr.Expr { return expr.Col(i, name) }
func dateConst(y, m, d int) *expr.Expr  { return expr.Const(types.DateFromYMD(y, m, d)) }
func decConst(scaled int64) *expr.Expr  { return expr.Const(types.NewDecimal(scaled)) }
func strConst(s string) *expr.Expr      { return expr.ConstString(s) }
func intConst(v int64) *expr.Expr       { return expr.ConstInt(v) }

// revenue is extendedprice * (1 - discount) with the given ordinals.
func revenue(priceOrd, discOrd int) *expr.Expr {
	return expr.Mul(col(priceOrd, "l_extendedprice"),
		expr.Sub(decConst(100), col(discOrd, "l_discount")))
}

// Query identifies one of the 22 queries plus the Listing 5
// micro-benchmark variants.
type Query struct {
	Name string
	// Build assembles the physical plan in the environment. Scalar
	// subqueries (Q11's total, Q17/Q22's averages) execute eagerly
	// through ctx during Build, the way MySQL materializes
	// uncorrelated subqueries before the outer block runs.
	Build func(e *Env, ctx *exec.Ctx) exec.Operator
}

// Queries lists all 22 TPC-H queries in order.
func Queries() []Query {
	return []Query{
		{"Q1", Q1}, {"Q2", Q2}, {"Q3", Q3}, {"Q4", Q4}, {"Q5", Q5},
		{"Q6", Q6}, {"Q7", Q7}, {"Q8", Q8}, {"Q9", Q9}, {"Q10", Q10},
		{"Q11", Q11}, {"Q12", Q12}, {"Q13", Q13}, {"Q14", Q14}, {"Q15", Q15},
		{"Q16", Q16}, {"Q17", Q17}, {"Q18", Q18}, {"Q19", Q19}, {"Q20", Q20},
		{"Q21", Q21}, {"Q22", Q22},
	}
}

// QueryByName resolves a query.
func QueryByName(name string) (Query, error) {
	for _, q := range Queries() {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("tpch: unknown query %q", name)
}

// Run executes a query under the environment and returns its rows.
func Run(e *Env, ctx *exec.Ctx, q Query) ([]types.Row, error) {
	op := q.Build(e, ctx)
	if e.err != nil {
		return nil, e.err
	}
	return exec.Run(ctx, op)
}

// runSub executes a scalar subquery plan during Build.
func (e *Env) runSub(ctx *exec.Ctx, op exec.Operator) []types.Row {
	if e.err != nil {
		return nil
	}
	rows, err := exec.Run(ctx, op)
	if err != nil {
		e.fail(err)
		return nil
	}
	return rows
}
