package tpch

import (
	"fmt"

	"taurus/internal/engine"
	"taurus/internal/plan"
)

// Attach binds an already-populated engine — typically a read replica
// whose tables arrived through the tailed catalog records — into a DB
// handle with the same catalog statistics and NDP threshold Load
// computes on the master. The engine must hold all eight TPC-H tables
// and the four secondary indexes before the call (wait for the
// replica's visible LSN to cover the load first).
func Attach(eng *engine.Engine, sf float64) (*DB, error) {
	db := &DB{Eng: eng, SF: sf, Cat: plan.NewCatalog(eng)}
	tables := []struct {
		name string
		dst  **engine.Table
	}{
		{"region", &db.Region},
		{"nation", &db.Nation},
		{"supplier", &db.Supplier},
		{"customer", &db.Customer},
		{"part", &db.Part},
		{"partsupp", &db.PartSupp},
		{"orders", &db.Orders},
		{"lineitem", &db.Lineitem},
	}
	for _, d := range tables {
		t, err := eng.Table(d.name)
		if err != nil {
			return nil, fmt.Errorf("tpch: attach: %w", err)
		}
		*d.dst = t
	}
	secondary := func(t *engine.Table, name string, dst **engine.Index) error {
		for _, idx := range t.Secondaries {
			if idx.Name == name {
				*dst = idx
				return nil
			}
		}
		return fmt.Errorf("tpch: attach: table %s has no index %q", t.Name, name)
	}
	if err := secondary(db.Lineitem, "l_suppkey_idx", &db.LineitemBySupp); err != nil {
		return nil, err
	}
	if err := secondary(db.Lineitem, "l_partkey_idx", &db.LineitemByPart); err != nil {
		return nil, err
	}
	if err := secondary(db.Orders, "o_custkey_idx", &db.OrdersByCust); err != nil {
		return nil, err
	}
	if err := secondary(db.PartSupp, "ps_suppkey_idx", &db.PartSuppBySupp); err != nil {
		return nil, err
	}
	for _, d := range tables {
		if _, err := db.Cat.Analyze(d.name); err != nil {
			return nil, err
		}
	}
	// Same 10% ratio as Load so the same queries qualify for pushdown.
	liPages := db.Cat.Stats("lineitem").LeafPages
	db.Cat.NDPPageThreshold = liPages / 10
	if db.Cat.NDPPageThreshold < 4 {
		db.Cat.NDPPageThreshold = 4
	}
	eng.Pool().Clear()
	return db, nil
}
