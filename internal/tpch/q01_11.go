package tpch

import (
	"taurus/internal/core"
	"taurus/internal/exec"
	"taurus/internal/expr"
	"taurus/internal/plan"
	"taurus/internal/types"
)

// The 22 TPC-H queries as physical plans. Every base-table access goes
// through Env.scan, i.e. through the NDP post-processing optimizer, so a
// single boolean (Env.NDP) switches the whole workload between the
// paper's NDP-on and NDP-off configurations. Plans follow the shapes the
// paper describes (hash joins for the big joins; NL index-lookup joins
// for Q4/Q14/Q17/Q19/Q20; dimension filters on small tables that fail
// the 10,000-page rule).

// Q1: pricing summary report. Lineitem scan; GROUP BY
// (l_returnflag, l_linestatus) is not an index prefix, so aggregation
// stays on the SQL node; projection (and classically the filter) pushes.
func Q1(e *Env, _ *exec.Ctx) exec.Operator {
	// Output layout: 0=rf 1=ls 2=qty 3=price 4=disc 5=tax.
	spec := &plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate:   expr.LE(col(LShipdate, "l_shipdate"), dateConst(1998, 9, 2)),
		Output:      []int{LReturnflag, LLinestatus, LQuantity, LExtendedprice, LDiscount, LTax},
		LastInBlock: true,
		Aggs:        []plan.AggCandidate{{Fn: core.AggSum, ArgCol: 2, Name: "sum_qty"}},
		GroupBy:     []int{0, 1},
	}
	scan := e.scan(spec)
	agg := &exec.HashAgg{
		Input:      scan,
		GroupBy:    []*expr.Expr{col(0, "l_returnflag"), col(1, "l_linestatus")},
		GroupNames: []string{"l_returnflag", "l_linestatus"},
		Aggs: []exec.AggDef{
			{Fn: exec.AggFnSum, Arg: col(2, "l_quantity"), Name: "sum_qty"},
			{Fn: exec.AggFnSum, Arg: col(3, "l_extendedprice"), Name: "sum_base_price"},
			{Fn: exec.AggFnSum, Arg: expr.Div(revenue(3, 4), decConst(100)), Name: "sum_disc_price"},
			{Fn: exec.AggFnSum, Arg: expr.Div(expr.Mul(expr.Div(revenue(3, 4), decConst(100)),
				expr.Add(decConst(100), col(5, "l_tax"))), decConst(100)), Name: "sum_charge"},
			{Fn: exec.AggFnAvg, Arg: col(2, "l_quantity"), Name: "avg_qty"},
			{Fn: exec.AggFnAvg, Arg: col(3, "l_extendedprice"), Name: "avg_price"},
			{Fn: exec.AggFnAvg, Arg: col(4, "l_discount"), Name: "avg_disc"},
			{Fn: exec.AggFnCountStar, Name: "count_order"},
		},
	}
	return &exec.Sort{Input: agg, Keys: []exec.OrderKey{
		{Expr: col(0, "l_returnflag")}, {Expr: col(1, "l_linestatus")},
	}}
}

// q2MinCostJoin builds the shared PART⋈PARTSUPP⋈SUPPLIER⋈NATION⋈REGION
// tree for Q2.
// Combined layout (14+2 wide): see inline comments.
func Q2(e *Env, ctx *exec.Ctx) exec.Operator {
	// region EUROPE → nation list.
	region := e.scan(&plan.AccessSpec{
		Table: "region", Index: e.DB.Region.Primary,
		Predicate: expr.EQ(col(RName, "r_name"), strConst("EUROPE")),
		Output:    []int{RRegionkey},
	})
	nation := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Output: []int{NNationkey, NName, NRegionkey},
	})
	// euroNation: 0=n_nationkey 1=n_name 2=n_regionkey 3=r_regionkey
	euroNation := &exec.HashJoin{
		Kind: exec.JoinInner, Build: region, Probe: nation,
		BuildKeys: []int{0}, ProbeKeys: []int{2},
	}
	supplier := e.scan(&plan.AccessSpec{
		Table: "supplier", Index: e.DB.Supplier.Primary,
		Output: []int{SSuppkey, SName, SAddress, SNationkey, SPhone, SAcctbal, SComment},
	})
	// euroSupp: 0=s_suppkey 1=s_name 2=s_address 3=s_nationkey 4=s_phone
	// 5=s_acctbal 6=s_comment 7=n_nationkey 8=n_name ...
	euroSupp := &exec.HashJoin{
		Kind: exec.JoinInner, Build: euroNation, Probe: supplier,
		BuildKeys: []int{0}, ProbeKeys: []int{3},
	}
	partsupp := e.scan(&plan.AccessSpec{
		Table: "partsupp", Index: e.DB.PartSupp.Primary,
		Output: []int{PSPartkey, PSSuppkey, PSSupplycost},
	})
	// psSupp: 0=ps_partkey 1=ps_suppkey 2=ps_supplycost 3=s_suppkey
	// 4=s_name 5=s_address 6=s_nationkey 7=s_phone 8=s_acctbal
	// 9=s_comment 10=n_nationkey 11=n_name ...
	psSupp := &exec.HashJoin{
		Kind: exec.JoinInner, Build: euroSupp, Probe: partsupp,
		BuildKeys: []int{0}, ProbeKeys: []int{1},
	}
	part := e.scan(&plan.AccessSpec{
		Table: "part", Index: e.DB.Part.Primary,
		Predicate: expr.And(
			expr.EQ(col(PSize, "p_size"), intConst(15)),
			expr.Like(col(PType, "p_type"), strConst("%BRASS"))),
		Output: []int{PPartkey, PMfgr},
	})
	// joined: psSupp(14) ++ part(2): 14=p_partkey 15=p_mfgr.
	joined := &exec.HashJoin{
		Kind: exec.JoinInner, Build: part, Probe: psSupp,
		BuildKeys: []int{0}, ProbeKeys: []int{0},
	}
	rows := e.runSub(ctx, joined)
	names := joined.Columns()
	base1 := &exec.Values{Rows: rows, Names: names}
	base2 := &exec.Values{Rows: rows, Names: names}
	// Minimum supply cost per part.
	minCost := &exec.HashAgg{
		Input:      base1,
		GroupBy:    []*expr.Expr{col(14, "p_partkey")},
		GroupNames: []string{"p_partkey"},
		Aggs:       []exec.AggDef{{Fn: exec.AggFnMin, Arg: col(2, "ps_supplycost"), Name: "min_cost"}},
	}
	// Keep rows at the minimum: join back on (partkey, cost).
	winners := &exec.HashJoin{
		Kind: exec.JoinInner, Build: minCost, Probe: base2,
		BuildKeys: []int{0, 1}, ProbeKeys: []int{14, 2},
	}
	sorted := &exec.Sort{Input: winners, Keys: []exec.OrderKey{
		{Expr: col(8, "s_acctbal"), Desc: true},
		{Expr: col(11, "n_name")},
		{Expr: col(4, "s_name")},
		{Expr: col(14, "p_partkey")},
	}}
	proj := &exec.Project{
		Input: &exec.Limit{Input: sorted, N: 100},
		Exprs: []*expr.Expr{col(8, ""), col(4, ""), col(11, ""), col(14, ""),
			col(15, ""), col(0, ""), col(7, "s_phone"), col(9, "")},
		Names: []string{"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr",
			"ps_partkey", "s_phone", "s_comment"},
	}
	return proj
}

// Q3: shipping priority. customer(BUILDING) ⋈ orders(<date) ⋈
// lineitem(>date); top 10 by revenue.
func Q3(e *Env, _ *exec.Ctx) exec.Operator {
	customer := e.scan(&plan.AccessSpec{
		Table: "customer", Index: e.DB.Customer.Primary,
		Predicate: expr.EQ(col(CMktsegment, "c_mktsegment"), strConst("BUILDING")),
		Output:    []int{CCustkey},
	})
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Predicate: expr.LT(col(OOrderdate, "o_orderdate"), dateConst(1995, 3, 15)),
		Output:    []int{OOrderkey, OCustkey, OOrderdate, OShippriority},
	})
	// co: 0=o_orderkey 1=o_custkey 2=o_orderdate 3=o_shippriority 4=c_custkey
	co := &exec.HashJoin{
		Kind: exec.JoinInner, Build: customer, Probe: orders,
		BuildKeys: []int{0}, ProbeKeys: []int{1},
	}
	lineitem := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate: expr.GT(col(LShipdate, "l_shipdate"), dateConst(1995, 3, 15)),
		Output:    []int{LOrderkey, LExtendedprice, LDiscount},
	})
	// col: lineitem(3) ++ co(5): 0=l_orderkey 1=price 2=disc 3=o_orderkey
	// 4=o_custkey 5=o_orderdate 6=o_shippriority
	all := &exec.HashJoin{
		Kind: exec.JoinInner, Build: co, Probe: lineitem,
		BuildKeys: []int{0}, ProbeKeys: []int{0},
	}
	agg := &exec.HashAgg{
		Input: all,
		GroupBy: []*expr.Expr{col(0, "l_orderkey"), col(5, "o_orderdate"),
			col(6, "o_shippriority")},
		GroupNames: []string{"l_orderkey", "o_orderdate", "o_shippriority"},
		Aggs: []exec.AggDef{{Fn: exec.AggFnSum,
			Arg: expr.Div(revenue(1, 2), decConst(100)), Name: "revenue"}},
	}
	sorted := &exec.Sort{Input: agg, Keys: []exec.OrderKey{
		{Expr: col(3, "revenue"), Desc: true},
		{Expr: col(1, "o_orderdate")},
	}}
	return &exec.Limit{Input: sorted, N: 10}
}

// Q4: order priority checking. Orders scan; EXISTS(lineitem with
// commitdate < receiptdate) via an index-lookup semi join on the
// lineitem primary key — the point-lookup path that NDP skips and that
// warms the buffer pool (the §VII-D Q4 experiment).
func Q4(e *Env, _ *exec.Ctx) exec.Operator {
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Predicate: expr.And(
			expr.GE(col(OOrderdate, "o_orderdate"), dateConst(1993, 7, 1)),
			expr.LT(col(OOrderdate, "o_orderdate"), dateConst(1993, 10, 1))),
		Output: []int{OOrderkey, OOrderpriority},
	})
	db := e.DB
	semi := &exec.IndexLookupJoin{
		Outer: orders, Kind: exec.JoinSemi,
		InnerCols: []string{"l_commitdate", "l_receiptdate"},
		Lookup: func(ctx *exec.Ctx, outer types.Row) ([]types.Row, error) {
			return lookupByPrefix(ctx, db.Lineitem.Primary, outer[0],
				[]int{LCommitdate, LReceiptdate})
		},
		On: expr.LT(col(2, "l_commitdate"), col(3, "l_receiptdate")),
	}
	agg := &exec.HashAgg{
		Input:      semi,
		GroupBy:    []*expr.Expr{col(1, "o_orderpriority")},
		GroupNames: []string{"o_orderpriority"},
		Aggs:       []exec.AggDef{{Fn: exec.AggFnCountStar, Name: "order_count"}},
	}
	return &exec.Sort{Input: agg, Keys: []exec.OrderKey{{Expr: col(0, "o_orderpriority")}}}
}

// Q5: local supplier volume (region ASIA, 1994). The c_nationkey =
// s_nationkey correlation is enforced as a post-join filter.
func Q5(e *Env, _ *exec.Ctx) exec.Operator {
	region := e.scan(&plan.AccessSpec{
		Table: "region", Index: e.DB.Region.Primary,
		Predicate: expr.EQ(col(RName, "r_name"), strConst("ASIA")),
		Output:    []int{RRegionkey},
	})
	nation := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Output: []int{NNationkey, NName, NRegionkey},
	})
	// asiaNation: 0=n_nationkey 1=n_name 2=n_regionkey 3=r_regionkey
	asiaNation := &exec.HashJoin{Kind: exec.JoinInner, Build: region, Probe: nation,
		BuildKeys: []int{0}, ProbeKeys: []int{2}}
	supplier := e.scan(&plan.AccessSpec{
		Table: "supplier", Index: e.DB.Supplier.Primary,
		Output: []int{SSuppkey, SNationkey},
	})
	// supp: 0=s_suppkey 1=s_nationkey 2=n_nationkey 3=n_name 4..
	supp := &exec.HashJoin{Kind: exec.JoinInner, Build: asiaNation, Probe: supplier,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	lineitem := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Output: []int{LOrderkey, LSuppkey, LExtendedprice, LDiscount},
	})
	// ls: lineitem(4) ++ supp(6): 0=l_orderkey 1=l_suppkey 2=price 3=disc
	// 4=s_suppkey 5=s_nationkey 6=n_nationkey 7=n_name
	ls := &exec.HashJoin{Kind: exec.JoinInner, Build: supp, Probe: lineitem,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Predicate: expr.And(
			expr.GE(col(OOrderdate, "o_orderdate"), dateConst(1994, 1, 1)),
			expr.LT(col(OOrderdate, "o_orderdate"), dateConst(1995, 1, 1))),
		Output: []int{OOrderkey, OCustkey},
	})
	// lso: ls(8) ++ orders(2): 8=o_orderkey 9=o_custkey
	lso := &exec.HashJoin{Kind: exec.JoinInner, Build: orders, Probe: ls,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	customer := e.scan(&plan.AccessSpec{
		Table: "customer", Index: e.DB.Customer.Primary,
		Output: []int{CCustkey, CNationkey},
	})
	// lsoc: lso(10) ++ customer(2): 10=c_custkey 11=c_nationkey
	lsoc := &exec.HashJoin{Kind: exec.JoinInner, Build: customer, Probe: lso,
		BuildKeys: []int{0}, ProbeKeys: []int{9}}
	filtered := &exec.Filter{Input: lsoc,
		Pred: expr.EQ(col(11, "c_nationkey"), col(5, "s_nationkey"))}
	agg := &exec.HashAgg{
		Input:      filtered,
		GroupBy:    []*expr.Expr{col(7, "n_name")},
		GroupNames: []string{"n_name"},
		Aggs: []exec.AggDef{{Fn: exec.AggFnSum,
			Arg: expr.Div(revenue(2, 3), decConst(100)), Name: "revenue"}},
	}
	return &exec.Sort{Input: agg, Keys: []exec.OrderKey{{Expr: col(1, "revenue"), Desc: true}}}
}

// Q6: forecasting revenue change — the paper's flagship NDP query (99%
// network and 91% CPU reduction): scalar SUM with every conjunct and the
// aggregate argument pushable.
func Q6(e *Env, _ *exec.Ctx) exec.Operator {
	// Output layout: 0=price 1=disc.
	spec := &plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate: expr.AndAll(
			expr.GE(col(LShipdate, "l_shipdate"), dateConst(1994, 1, 1)),
			expr.LT(col(LShipdate, "l_shipdate"), dateConst(1995, 1, 1)),
			expr.Between(col(LDiscount, "l_discount"), decConst(5), decConst(7)),
			expr.LT(col(LQuantity, "l_quantity"), decConst(2400)),
		),
		Output:      []int{LExtendedprice, LDiscount},
		LastInBlock: true,
		Aggs: []plan.AggCandidate{{
			Fn: core.AggSum,
			ArgExpr: expr.Div(expr.Mul(col(0, "l_extendedprice"), col(1, "l_discount")),
				decConst(100)),
			ArgCol: -1, Name: "revenue",
		}},
	}
	return e.aggScan(spec, nil)
}

// Q7: volume shipping between FRANCE and GERMANY, 1995–1996.
func Q7(e *Env, _ *exec.Ctx) exec.Operator {
	nation := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Predicate: expr.Or(
			expr.EQ(col(NName, "n_name"), strConst("FRANCE")),
			expr.EQ(col(NName, "n_name"), strConst("GERMANY"))),
		Output: []int{NNationkey, NName},
	})
	supplier := e.scan(&plan.AccessSpec{
		Table: "supplier", Index: e.DB.Supplier.Primary,
		Output: []int{SSuppkey, SNationkey},
	})
	// supp: 0=s_suppkey 1=s_nationkey 2=n_nationkey 3=supp_nation
	supp := &exec.HashJoin{Kind: exec.JoinInner, Build: nation, Probe: supplier,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	lineitem := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate: expr.Between(col(LShipdate, "l_shipdate"),
			dateConst(1995, 1, 1), dateConst(1996, 12, 31)),
		Output: []int{LOrderkey, LSuppkey, LExtendedprice, LDiscount, LShipdate},
	})
	// ls: 0=l_orderkey 1=l_suppkey 2=price 3=disc 4=shipdate 5=s_suppkey
	// 6=s_nationkey 7=n_nationkey 8=supp_nation
	ls := &exec.HashJoin{Kind: exec.JoinInner, Build: supp, Probe: lineitem,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Output: []int{OOrderkey, OCustkey},
	})
	// lso: ls(9) ++ orders(2): 9=o_orderkey 10=o_custkey
	lso := &exec.HashJoin{Kind: exec.JoinInner, Build: orders, Probe: ls,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	nation2 := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Predicate: expr.Or(
			expr.EQ(col(NName, "n_name"), strConst("FRANCE")),
			expr.EQ(col(NName, "n_name"), strConst("GERMANY"))),
		Output: []int{NNationkey, NName},
	})
	customer := e.scan(&plan.AccessSpec{
		Table: "customer", Index: e.DB.Customer.Primary,
		Output: []int{CCustkey, CNationkey},
	})
	// cust: 0=c_custkey 1=c_nationkey 2=n_nationkey 3=cust_nation
	cust := &exec.HashJoin{Kind: exec.JoinInner, Build: nation2, Probe: customer,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	// all: lso(11) ++ cust(4): 11=c_custkey 12=c_nationkey 13=n2key 14=cust_nation
	all := &exec.HashJoin{Kind: exec.JoinInner, Build: cust, Probe: lso,
		BuildKeys: []int{0}, ProbeKeys: []int{10}}
	// (supp FRANCE and cust GERMANY) or vice versa.
	cross := &exec.Filter{Input: all, Pred: expr.Or(
		expr.And(expr.EQ(col(8, "supp_nation"), strConst("FRANCE")),
			expr.EQ(col(14, "cust_nation"), strConst("GERMANY"))),
		expr.And(expr.EQ(col(8, "supp_nation"), strConst("GERMANY")),
			expr.EQ(col(14, "cust_nation"), strConst("FRANCE"))))}
	agg := &exec.HashAgg{
		Input: cross,
		GroupBy: []*expr.Expr{col(8, "supp_nation"), col(14, "cust_nation"),
			expr.Year(col(4, "l_shipdate"))},
		GroupNames: []string{"supp_nation", "cust_nation", "l_year"},
		Aggs: []exec.AggDef{{Fn: exec.AggFnSum,
			Arg: expr.Div(revenue(2, 3), decConst(100)), Name: "revenue"}},
	}
	return &exec.Sort{Input: agg, Keys: []exec.OrderKey{
		{Expr: col(0, "supp_nation")}, {Expr: col(1, "cust_nation")}, {Expr: col(2, "l_year")},
	}}
}

// Q8: national market share of BRAZIL in AMERICA for ECONOMY ANODIZED
// STEEL parts.
func Q8(e *Env, _ *exec.Ctx) exec.Operator {
	part := e.scan(&plan.AccessSpec{
		Table: "part", Index: e.DB.Part.Primary,
		Predicate: expr.EQ(col(PType, "p_type"), strConst("ECONOMY ANODIZED STEEL")),
		Output:    []int{PPartkey},
	})
	lineitem := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Output: []int{LOrderkey, LPartkey, LSuppkey, LExtendedprice, LDiscount},
	})
	// lp: 0=l_orderkey 1=l_partkey 2=l_suppkey 3=price 4=disc 5=p_partkey
	lp := &exec.HashJoin{Kind: exec.JoinInner, Build: part, Probe: lineitem,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Predicate: expr.Between(col(OOrderdate, "o_orderdate"),
			dateConst(1995, 1, 1), dateConst(1996, 12, 31)),
		Output: []int{OOrderkey, OCustkey, OOrderdate},
	})
	// lpo: lp(6) ++ orders(3): 6=o_orderkey 7=o_custkey 8=o_orderdate
	lpo := &exec.HashJoin{Kind: exec.JoinInner, Build: orders, Probe: lp,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	region := e.scan(&plan.AccessSpec{
		Table: "region", Index: e.DB.Region.Primary,
		Predicate: expr.EQ(col(RName, "r_name"), strConst("AMERICA")),
		Output:    []int{RRegionkey},
	})
	nation := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Output: []int{NNationkey, NName, NRegionkey},
	})
	amNation := &exec.HashJoin{Kind: exec.JoinInner, Build: region, Probe: nation,
		BuildKeys: []int{0}, ProbeKeys: []int{2}}
	customer := e.scan(&plan.AccessSpec{
		Table: "customer", Index: e.DB.Customer.Primary,
		Output: []int{CCustkey, CNationkey},
	})
	// amCust: 0=c_custkey 1=c_nationkey 2=n_nationkey 3=n_name 4=n_regionkey 5=r_regionkey
	amCust := &exec.HashJoin{Kind: exec.JoinInner, Build: amNation, Probe: customer,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	// lpoc: lpo(9) ++ amCust(6): 9=c_custkey ...
	lpoc := &exec.HashJoin{Kind: exec.JoinInner, Build: amCust, Probe: lpo,
		BuildKeys: []int{0}, ProbeKeys: []int{7}}
	// supplier nation for the numerator.
	nation2 := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Output: []int{NNationkey, NName},
	})
	supplier := e.scan(&plan.AccessSpec{
		Table: "supplier", Index: e.DB.Supplier.Primary,
		Output: []int{SSuppkey, SNationkey},
	})
	// supp: 0=s_suppkey 1=s_nationkey 2=n_nationkey 3=supp_nation
	supp := &exec.HashJoin{Kind: exec.JoinInner, Build: nation2, Probe: supplier,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	// all: lpoc(15) ++ supp(4): 15=s_suppkey 16=s_nationkey 17=n2key 18=supp_nation
	all := &exec.HashJoin{Kind: exec.JoinInner, Build: supp, Probe: lpoc,
		BuildKeys: []int{0}, ProbeKeys: []int{2}}
	agg := &exec.HashAgg{
		Input:      all,
		GroupBy:    []*expr.Expr{expr.Year(col(8, "o_orderdate"))},
		GroupNames: []string{"o_year"},
		Aggs: []exec.AggDef{
			{Fn: exec.AggFnSum, Arg: expr.New(expr.OpCase,
				expr.EQ(col(18, "supp_nation"), strConst("BRAZIL")),
				expr.Div(revenue(3, 4), decConst(100)),
				decConst(0)), Name: "brazil_volume"},
			{Fn: exec.AggFnSum, Arg: expr.Div(revenue(3, 4), decConst(100)), Name: "volume"},
		},
	}
	share := &exec.Project{
		Input: agg,
		Exprs: []*expr.Expr{col(0, "o_year"),
			expr.Div(expr.Mul(col(1, "brazil_volume"), decConst(100)), col(2, "volume"))},
		Names: []string{"o_year", "mkt_share"},
	}
	return &exec.Sort{Input: share, Keys: []exec.OrderKey{{Expr: col(0, "o_year")}}}
}

// Q9: product type profit measure — the paper's example of
// projection-only NDP on three scans (orders, lineitem, partsupp).
func Q9(e *Env, _ *exec.Ctx) exec.Operator {
	part := e.scan(&plan.AccessSpec{
		Table: "part", Index: e.DB.Part.Primary,
		Predicate: expr.Like(col(PName, "p_name"), strConst("%green%")),
		Output:    []int{PPartkey},
	})
	lineitem := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Output: []int{LOrderkey, LPartkey, LSuppkey, LQuantity, LExtendedprice, LDiscount},
	})
	// lp: 0=l_orderkey 1=l_partkey 2=l_suppkey 3=qty 4=price 5=disc 6=p_partkey
	lp := &exec.HashJoin{Kind: exec.JoinInner, Build: part, Probe: lineitem,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	partsupp := e.scan(&plan.AccessSpec{
		Table: "partsupp", Index: e.DB.PartSupp.Primary,
		Output: []int{PSPartkey, PSSuppkey, PSSupplycost},
	})
	// lps: lp(7) ++ ps(3): 7=ps_partkey 8=ps_suppkey 9=ps_supplycost
	lps := &exec.HashJoin{Kind: exec.JoinInner, Build: partsupp, Probe: lp,
		BuildKeys: []int{0, 1}, ProbeKeys: []int{1, 2}}
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Output: []int{OOrderkey, OOrderdate},
	})
	// lpso: lps(10) ++ orders(2): 10=o_orderkey 11=o_orderdate
	lpso := &exec.HashJoin{Kind: exec.JoinInner, Build: orders, Probe: lps,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	nation := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Output: []int{NNationkey, NName},
	})
	supplier := e.scan(&plan.AccessSpec{
		Table: "supplier", Index: e.DB.Supplier.Primary,
		Output: []int{SSuppkey, SNationkey},
	})
	// supp: 0=s_suppkey 1=s_nationkey 2=n_nationkey 3=n_name
	supp := &exec.HashJoin{Kind: exec.JoinInner, Build: nation, Probe: supplier,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	// all: lpso(12) ++ supp(4): 12=s_suppkey 13=s_nationkey 14=nkey 15=n_name
	all := &exec.HashJoin{Kind: exec.JoinInner, Build: supp, Probe: lpso,
		BuildKeys: []int{0}, ProbeKeys: []int{2}}
	// profit = price*(1-disc) - supplycost*qty
	profit := expr.Sub(
		expr.Div(revenue(4, 5), decConst(100)),
		expr.Div(expr.Mul(col(9, "ps_supplycost"), col(3, "l_quantity")), decConst(100)))
	agg := &exec.HashAgg{
		Input:      all,
		GroupBy:    []*expr.Expr{col(15, "n_name"), expr.Year(col(11, "o_orderdate"))},
		GroupNames: []string{"nation", "o_year"},
		Aggs:       []exec.AggDef{{Fn: exec.AggFnSum, Arg: profit, Name: "sum_profit"}},
	}
	return &exec.Sort{Input: agg, Keys: []exec.OrderKey{
		{Expr: col(0, "nation")}, {Expr: col(1, "o_year"), Desc: true},
	}}
}

// Q10: returned item reporting — top 20 customers by lost revenue.
func Q10(e *Env, _ *exec.Ctx) exec.Operator {
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Predicate: expr.And(
			expr.GE(col(OOrderdate, "o_orderdate"), dateConst(1993, 10, 1)),
			expr.LT(col(OOrderdate, "o_orderdate"), dateConst(1994, 1, 1))),
		Output: []int{OOrderkey, OCustkey},
	})
	lineitem := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate: expr.EQ(col(LReturnflag, "l_returnflag"), strConst("R")),
		Output:    []int{LOrderkey, LExtendedprice, LDiscount},
	})
	// lo: 0=l_orderkey 1=price 2=disc 3=o_orderkey 4=o_custkey
	lo := &exec.HashJoin{Kind: exec.JoinInner, Build: orders, Probe: lineitem,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	customer := e.scan(&plan.AccessSpec{
		Table: "customer", Index: e.DB.Customer.Primary,
		Output: []int{CCustkey, CName, CAcctbal, CPhone, CNationkey, CAddress, CComment},
	})
	// loc: lo(5) ++ cust(7): 5=c_custkey 6=c_name 7=c_acctbal 8=c_phone
	// 9=c_nationkey 10=c_address 11=c_comment
	loc := &exec.HashJoin{Kind: exec.JoinInner, Build: customer, Probe: lo,
		BuildKeys: []int{0}, ProbeKeys: []int{4}}
	nation := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Output: []int{NNationkey, NName},
	})
	// all: loc(12) ++ nation(2): 12=n_nationkey 13=n_name
	all := &exec.HashJoin{Kind: exec.JoinInner, Build: nation, Probe: loc,
		BuildKeys: []int{0}, ProbeKeys: []int{9}}
	agg := &exec.HashAgg{
		Input: all,
		GroupBy: []*expr.Expr{col(5, "c_custkey"), col(6, "c_name"), col(7, "c_acctbal"),
			col(8, "c_phone"), col(13, "n_name"), col(10, "c_address"), col(11, "c_comment")},
		GroupNames: []string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
			"c_address", "c_comment"},
		Aggs: []exec.AggDef{{Fn: exec.AggFnSum,
			Arg: expr.Div(revenue(1, 2), decConst(100)), Name: "revenue"}},
	}
	sorted := &exec.Sort{Input: agg, Keys: []exec.OrderKey{{Expr: col(7, "revenue"), Desc: true}}}
	return &exec.Limit{Input: sorted, N: 20}
}

// Q11: important stock identification. The plan drives from the GERMANY
// suppliers and reaches PARTSUPP through per-supplier index lookups, so
// the only NDP-eligible scan is the tiny NATION table — reproducing the
// paper's "no NDP applied" outcome for Q11.
func Q11(e *Env, ctx *exec.Ctx) exec.Operator {
	nation := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Predicate: expr.EQ(col(NName, "n_name"), strConst("GERMANY")),
		Output:    []int{NNationkey},
	})
	supplier := e.scan(&plan.AccessSpec{
		Table: "supplier", Index: e.DB.Supplier.Primary,
		Output: []int{SSuppkey, SNationkey},
	})
	// supp: 0=s_suppkey 1=s_nationkey 2=n_nationkey
	supp := &exec.HashJoin{Kind: exec.JoinInner, Build: nation, Probe: supplier,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	db := e.DB
	// value rows: supp(3) ++ partsupp(3): 3=ps_partkey 4=ps_availqty 5=ps_supplycost
	pairs := &exec.IndexLookupJoin{
		Outer:     supp,
		InnerCols: []string{"ps_partkey", "ps_availqty", "ps_supplycost"},
		Lookup: func(ctx *exec.Ctx, outer types.Row) ([]types.Row, error) {
			// Secondary layout: (ps_suppkey, ps_partkey, ps_suppkey);
			// fetch partkeys, then the primary rows.
			refs, err := lookupByPrefix(ctx, db.PartSuppBySupp, outer[0], []int{1})
			if err != nil {
				return nil, err
			}
			var out []types.Row
			for _, ref := range refs {
				rows, err := lookupByPrefix2(ctx, db.PartSupp.Primary, ref[0], outer[0],
					[]int{PSPartkey, PSAvailqty, PSSupplycost})
				if err != nil {
					return nil, err
				}
				out = append(out, rows...)
			}
			return out, nil
		},
	}
	rows := e.runSub(ctx, pairs)
	value := expr.Mul(col(5, "ps_supplycost"), col(4, "ps_availqty"))
	// Total value (scalar pass).
	totalAgg := &exec.HashAgg{
		Input: &exec.Values{Rows: rows, Names: pairs.Columns()},
		Aggs:  []exec.AggDef{{Fn: exec.AggFnSum, Arg: value, Name: "total"}},
	}
	totalRows := e.runSub(ctx, totalAgg)
	threshold := types.Null()
	if len(totalRows) == 1 && !totalRows[0][0].IsNull() {
		threshold = types.NewDecimal(totalRows[0][0].I / 10000) // fraction 0.0001
	}
	grouped := &exec.HashAgg{
		Input:      &exec.Values{Rows: rows, Names: pairs.Columns()},
		GroupBy:    []*expr.Expr{col(3, "ps_partkey")},
		GroupNames: []string{"ps_partkey"},
		Aggs:       []exec.AggDef{{Fn: exec.AggFnSum, Arg: value, Name: "value"}},
		Having:     expr.GT(col(1, "value"), expr.Const(threshold)),
	}
	return &exec.Sort{Input: grouped, Keys: []exec.OrderKey{{Expr: col(1, "value"), Desc: true}}}
}
