package tpch

import (
	"fmt"
	"math/rand"

	"taurus/internal/types"
)

// Cardinalities at scale factor 1, per the TPC-H specification.
const (
	sfSupplier = 10000
	sfCustomer = 150000
	sfPart     = 200000
	sfOrders   = 1500000
)

// Gen is a deterministic TPC-H data generator.
type Gen struct {
	SF  float64
	rng *rand.Rand

	NSupplier int
	NCustomer int
	NPart     int
	NOrders   int
}

// NewGen creates a generator for the scale factor.
func NewGen(sf float64) *Gen {
	g := &Gen{SF: sf, rng: rand.New(rand.NewSource(19920401))}
	g.NSupplier = scaled(sfSupplier, sf, 10)
	g.NCustomer = scaled(sfCustomer, sf, 30)
	g.NPart = scaled(sfPart, sf, 40)
	g.NOrders = scaled(sfOrders, sf, 150)
	return g
}

func scaled(base int, sf float64, floor int) int {
	n := int(float64(base) * sf)
	if n < floor {
		n = floor
	}
	return n
}

var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
		"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ",
		"JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES"}
	nationRegion = []int{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes   = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	typeSyl1    = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2    = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3    = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	nameWords   = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
		"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
		"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green",
		"grey", "honeydew", "hot", "hotpink", "indian", "ivory", "khaki",
		"lace", "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
		"maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin",
		"navajo", "navy", "olive", "orange", "orchid", "pale", "papaya", "peach",
		"peru", "pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy",
		"royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky", "slate",
		"smoke", "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise",
		"violet", "wheat", "white", "yellow"}
	commentWords = []string{"carefully", "quickly", "slyly", "furiously", "blithely",
		"deposits", "requests", "packages", "foxes", "ideas", "accounts",
		"pinto", "beans", "instructions", "theodolites", "dependencies",
		"excuses", "platelets", "asymptotes", "courts", "dolphins", "special",
		"express", "regular", "final", "ironic", "even", "bold", "pending",
		"unusual", "silent", "sleep", "wake", "nag", "haggle", "cajole", "detect"}
)

// epochDays converts y/m/d to days since 1970-01-01.
func epochDays(y, m, d int) int32 {
	return int32(types.DateFromYMD(y, m, d).I)
}

var (
	// Order date range per spec: 1992-01-01 .. 1998-08-02.
	dateLo = epochDays(1992, 1, 1)
	dateHi = epochDays(1998, 8, 2)
)

func (g *Gen) words(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += commentWords[g.rng.Intn(len(commentWords))]
	}
	return out
}

func (g *Gen) phone() string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+g.rng.Intn(25),
		100+g.rng.Intn(900), 100+g.rng.Intn(900), 1000+g.rng.Intn(9000))
}

// Regions yields the REGION rows.
func (g *Gen) Regions() []types.Row {
	out := make([]types.Row, len(regions))
	for i, name := range regions {
		out[i] = types.Row{
			types.NewInt(int64(i)), types.NewString(name), types.NewString(g.words(3)),
		}
	}
	return out
}

// Nations yields the NATION rows.
func (g *Gen) Nations() []types.Row {
	out := make([]types.Row, len(nations))
	for i, name := range nations {
		out[i] = types.Row{
			types.NewInt(int64(i)), types.NewString(name),
			types.NewInt(int64(nationRegion[i])), types.NewString(g.words(4)),
		}
	}
	return out
}

// Suppliers yields the SUPPLIER rows.
func (g *Gen) Suppliers() []types.Row {
	out := make([]types.Row, g.NSupplier)
	for i := range out {
		k := int64(i + 1)
		comment := g.words(4)
		// ~5 per 10000 suppliers carry the Q16/Q20 complaint marker.
		if g.rng.Intn(2000) == 0 {
			comment += " Customer Complaints " + g.words(2)
		}
		out[i] = types.Row{
			types.NewInt(k),
			types.NewString(fmt.Sprintf("Supplier#%09d", k)),
			types.NewString(g.words(2)),
			types.NewInt(int64(g.rng.Intn(len(nations)))),
			types.NewString(g.phone()),
			types.NewDecimal(int64(g.rng.Intn(1100000)) - 100000), // -999.99..9999.99
			types.NewString(comment),
		}
	}
	return out
}

// Customers yields the CUSTOMER rows.
func (g *Gen) Customers() []types.Row {
	out := make([]types.Row, g.NCustomer)
	for i := range out {
		k := int64(i + 1)
		out[i] = types.Row{
			types.NewInt(k),
			types.NewString(fmt.Sprintf("Customer#%09d", k)),
			types.NewString(g.words(2)),
			types.NewInt(int64(g.rng.Intn(len(nations)))),
			types.NewString(g.phone()),
			types.NewDecimal(int64(g.rng.Intn(1100000)) - 100000),
			types.NewString(segments[g.rng.Intn(len(segments))]),
			types.NewString(g.words(6)),
		}
	}
	return out
}

// Parts yields the PART rows.
func (g *Gen) Parts() []types.Row {
	out := make([]types.Row, g.NPart)
	for i := range out {
		k := int64(i + 1)
		m, n := 1+g.rng.Intn(5), 1+g.rng.Intn(5)
		name := nameWords[g.rng.Intn(len(nameWords))] + " " +
			nameWords[g.rng.Intn(len(nameWords))] + " " +
			nameWords[g.rng.Intn(len(nameWords))] + " " +
			nameWords[g.rng.Intn(len(nameWords))] + " " +
			nameWords[g.rng.Intn(len(nameWords))]
		ptype := typeSyl1[g.rng.Intn(6)] + " " + typeSyl2[g.rng.Intn(5)] + " " + typeSyl3[g.rng.Intn(5)]
		container := containers1[g.rng.Intn(5)] + " " + containers2[g.rng.Intn(8)]
		out[i] = types.Row{
			types.NewInt(k),
			types.NewString(name),
			types.NewString(fmt.Sprintf("Manufacturer#%d", m)),
			types.NewString(fmt.Sprintf("Brand#%d%d", m, n)),
			types.NewString(ptype),
			types.NewInt(int64(1 + g.rng.Intn(50))),
			types.NewString(container),
			types.NewDecimal(90000 + k%20000), // ~900..1100
			types.NewString(g.words(2)),
		}
	}
	return out
}

// PartSupps yields PARTSUPP rows: 4 suppliers per part.
func (g *Gen) PartSupps() []types.Row {
	out := make([]types.Row, 0, g.NPart*4)
	for p := 1; p <= g.NPart; p++ {
		for s := 0; s < 4; s++ {
			suppkey := int64((p+s*(g.NSupplier/4+1))%g.NSupplier) + 1
			out = append(out, types.Row{
				types.NewInt(int64(p)),
				types.NewInt(suppkey),
				types.NewInt(int64(1 + g.rng.Intn(9999))),
				types.NewDecimal(int64(100 + g.rng.Intn(99900))), // 1.00..1000.00
				types.NewString(g.words(10)),
			})
		}
	}
	return out
}

// Order and its Lineitems are generated together so dates correlate per
// spec (l_shipdate = o_orderdate + 1..121 days, etc.).

// Orders yields ORDERS rows plus the matching LINEITEM rows.
func (g *Gen) Orders() (orders []types.Row, lineitems []types.Row) {
	orders = make([]types.Row, 0, g.NOrders)
	lineitems = make([]types.Row, 0, g.NOrders*4)
	for o := 1; o <= g.NOrders; o++ {
		orderdate := dateLo + int32(g.rng.Intn(int(dateHi-dateLo-121)))
		custkey := int64(g.rng.Intn(g.NCustomer)) + 1
		nLines := 1 + g.rng.Intn(7)
		var total int64
		status := "O"
		nF, nO := 0, 0
		lines := make([]types.Row, 0, nLines)
		for ln := 1; ln <= nLines; ln++ {
			partkey := int64(g.rng.Intn(g.NPart)) + 1
			suppkey := int64((int(partkey)+(ln%4)*(g.NSupplier/4+1))%g.NSupplier) + 1
			qty := int64(1 + g.rng.Intn(50))
			price := (90000 + partkey%20000) * qty / 100 * 100 // qty * retailprice-ish, scaled
			discount := int64(g.rng.Intn(11))                  // 0.00..0.10
			tax := int64(g.rng.Intn(9))                        // 0.00..0.08
			shipdate := orderdate + int32(1+g.rng.Intn(121))
			commitdate := orderdate + int32(30+g.rng.Intn(61))
			receiptdate := shipdate + int32(1+g.rng.Intn(30))
			returnflag := "N"
			if receiptdate <= epochDays(1995, 6, 17) {
				if g.rng.Intn(2) == 0 {
					returnflag = "R"
				} else {
					returnflag = "A"
				}
			}
			linestatus := "O"
			if shipdate <= epochDays(1995, 6, 17) {
				linestatus = "F"
				nF++
			} else {
				nO++
			}
			total += price
			lines = append(lines, types.Row{
				types.NewInt(int64(o)),
				types.NewInt(int64(ln)),
				types.NewInt(partkey),
				types.NewInt(suppkey),
				types.NewDecimal(qty * 100),
				types.NewDecimal(price),
				types.NewDecimal(discount),
				types.NewDecimal(tax),
				types.NewString(returnflag),
				types.NewString(linestatus),
				types.NewDate(shipdate),
				types.NewDate(commitdate),
				types.NewDate(receiptdate),
				types.NewString(instructs[g.rng.Intn(len(instructs))]),
				types.NewString(shipmodes[g.rng.Intn(len(shipmodes))]),
				types.NewString(g.words(4)),
			})
		}
		switch {
		case nO == 0:
			status = "F"
		case nF > 0:
			status = "P"
		}
		comment := g.words(6)
		if g.rng.Intn(100) == 0 {
			comment = "special " + g.words(2) + " requests " + g.words(2)
		}
		orders = append(orders, types.Row{
			types.NewInt(int64(o)),
			types.NewInt(custkey),
			types.NewString(status),
			types.NewDecimal(total),
			types.NewDate(orderdate),
			types.NewString(priorities[g.rng.Intn(len(priorities))]),
			types.NewString(fmt.Sprintf("Clerk#%09d", 1+g.rng.Intn(1000))),
			types.NewInt(0),
			types.NewString(comment),
		})
		lineitems = append(lineitems, lines...)
	}
	return orders, lineitems
}
