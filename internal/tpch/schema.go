// Package tpch generates TPC-H-shaped data and builds the 22 benchmark
// queries as physical plans over the Taurus engine, so the paper's
// evaluation (100 GB TPC-H, §VII) can be replayed at configurable scale.
// Distributions follow the TPC-H specification closely enough that
// predicate selectivities, projection width ratios, and join fan-outs —
// the quantities the NDP optimizer keys on — keep their shape.
package tpch

import "taurus/internal/types"

// Schemas for the eight TPC-H tables. Column order matters: plans
// reference ordinals through these definitions.

// RegionSchema is REGION.
var RegionSchema = types.NewSchema(
	types.Column{Name: "r_regionkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "r_name", Kind: types.KindString, FixedLen: 25, NotNull: true},
	types.Column{Name: "r_comment", Kind: types.KindString, NotNull: true},
)

// NationSchema is NATION.
var NationSchema = types.NewSchema(
	types.Column{Name: "n_nationkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "n_name", Kind: types.KindString, FixedLen: 25, NotNull: true},
	types.Column{Name: "n_regionkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "n_comment", Kind: types.KindString, NotNull: true},
)

// SupplierSchema is SUPPLIER.
var SupplierSchema = types.NewSchema(
	types.Column{Name: "s_suppkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "s_name", Kind: types.KindString, FixedLen: 25, NotNull: true},
	types.Column{Name: "s_address", Kind: types.KindString, NotNull: true},
	types.Column{Name: "s_nationkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "s_phone", Kind: types.KindString, FixedLen: 15, NotNull: true},
	types.Column{Name: "s_acctbal", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "s_comment", Kind: types.KindString, NotNull: true},
)

// CustomerSchema is CUSTOMER.
var CustomerSchema = types.NewSchema(
	types.Column{Name: "c_custkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "c_name", Kind: types.KindString, NotNull: true},
	types.Column{Name: "c_address", Kind: types.KindString, NotNull: true},
	types.Column{Name: "c_nationkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "c_phone", Kind: types.KindString, FixedLen: 15, NotNull: true},
	types.Column{Name: "c_acctbal", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "c_mktsegment", Kind: types.KindString, FixedLen: 10, NotNull: true},
	types.Column{Name: "c_comment", Kind: types.KindString, NotNull: true},
)

// PartSchema is PART.
var PartSchema = types.NewSchema(
	types.Column{Name: "p_partkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "p_name", Kind: types.KindString, NotNull: true},
	types.Column{Name: "p_mfgr", Kind: types.KindString, FixedLen: 25, NotNull: true},
	types.Column{Name: "p_brand", Kind: types.KindString, FixedLen: 10, NotNull: true},
	types.Column{Name: "p_type", Kind: types.KindString, NotNull: true},
	types.Column{Name: "p_size", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "p_container", Kind: types.KindString, FixedLen: 10, NotNull: true},
	types.Column{Name: "p_retailprice", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "p_comment", Kind: types.KindString, NotNull: true},
)

// PartSuppSchema is PARTSUPP.
var PartSuppSchema = types.NewSchema(
	types.Column{Name: "ps_partkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "ps_suppkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "ps_availqty", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "ps_supplycost", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "ps_comment", Kind: types.KindString, NotNull: true},
)

// OrdersSchema is ORDERS.
var OrdersSchema = types.NewSchema(
	types.Column{Name: "o_orderkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "o_custkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "o_orderstatus", Kind: types.KindString, FixedLen: 1, NotNull: true},
	types.Column{Name: "o_totalprice", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "o_orderdate", Kind: types.KindDate, NotNull: true},
	types.Column{Name: "o_orderpriority", Kind: types.KindString, FixedLen: 15, NotNull: true},
	types.Column{Name: "o_clerk", Kind: types.KindString, FixedLen: 15, NotNull: true},
	types.Column{Name: "o_shippriority", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "o_comment", Kind: types.KindString, NotNull: true},
)

// LineitemSchema is LINEITEM. Ordinal constants below are used widely by
// the query plans.
var LineitemSchema = types.NewSchema(
	types.Column{Name: "l_orderkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "l_linenumber", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "l_partkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "l_suppkey", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "l_quantity", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "l_extendedprice", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "l_discount", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "l_tax", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "l_returnflag", Kind: types.KindString, FixedLen: 1, NotNull: true},
	types.Column{Name: "l_linestatus", Kind: types.KindString, FixedLen: 1, NotNull: true},
	types.Column{Name: "l_shipdate", Kind: types.KindDate, NotNull: true},
	types.Column{Name: "l_commitdate", Kind: types.KindDate, NotNull: true},
	types.Column{Name: "l_receiptdate", Kind: types.KindDate, NotNull: true},
	types.Column{Name: "l_shipinstruct", Kind: types.KindString, FixedLen: 25, NotNull: true},
	types.Column{Name: "l_shipmode", Kind: types.KindString, FixedLen: 10, NotNull: true},
	types.Column{Name: "l_comment", Kind: types.KindString, NotNull: true},
)

// Lineitem column ordinals.
const (
	LOrderkey = iota
	LLinenumber
	LPartkey
	LSuppkey
	LQuantity
	LExtendedprice
	LDiscount
	LTax
	LReturnflag
	LLinestatus
	LShipdate
	LCommitdate
	LReceiptdate
	LShipinstruct
	LShipmode
	LComment
)

// Orders column ordinals.
const (
	OOrderkey = iota
	OCustkey
	OOrderstatus
	OTotalprice
	OOrderdate
	OOrderpriority
	OClerk
	OShippriority
	OComment
)

// Part column ordinals.
const (
	PPartkey = iota
	PName
	PMfgr
	PBrand
	PType
	PSize
	PContainer
	PRetailprice
	PComment
)

// Customer column ordinals.
const (
	CCustkey = iota
	CName
	CAddress
	CNationkey
	CPhone
	CAcctbal
	CMktsegment
	CComment
)

// Supplier column ordinals.
const (
	SSuppkey = iota
	SName
	SAddress
	SNationkey
	SPhone
	SAcctbal
	SComment
)

// Partsupp column ordinals.
const (
	PSPartkey = iota
	PSSuppkey
	PSAvailqty
	PSSupplycost
	PSComment
)

// Nation / Region ordinals.
const (
	NNationkey = iota
	NName
	NRegionkey
	NComment
)

const (
	RRegionkey = iota
	RName
	RComment
)
