package tpch

import (
	"fmt"
	"testing"

	"taurus/internal/exec"
	"taurus/internal/testutil"
	"taurus/internal/types"
)

var sharedDB *DB

// testDB loads a small TPC-H database once per test binary.
func testDB(t testing.TB) *DB {
	t.Helper()
	if sharedDB != nil {
		return sharedDB
	}
	c, err := testutil.NewCluster(testutil.Options{
		PoolPages: 512, PagesPerSlice: 32, LookAhead: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Load(c.Engine, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	sharedDB = db
	return db
}

func TestGeneratorShapes(t *testing.T) {
	g := NewGen(0.002)
	if g.NSupplier < 10 || g.NCustomer < 30 || g.NPart < 40 || g.NOrders < 150 {
		t.Fatalf("floors not applied: %+v", g)
	}
	orders, lines := g.Orders()
	if len(orders) != g.NOrders {
		t.Fatalf("orders = %d", len(orders))
	}
	if len(lines) < len(orders) {
		t.Fatal("each order needs at least one lineitem")
	}
	// Date correlation: l_shipdate > o_orderdate for every line.
	od := map[int64]int64{}
	for _, o := range orders {
		od[o[OOrderkey].I] = o[OOrderdate].I
	}
	for _, l := range lines[:100] {
		if l[LShipdate].I <= od[l[LOrderkey].I] {
			t.Fatal("l_shipdate must follow o_orderdate")
		}
	}
	// Discounts in 0.00..0.10 (scaled).
	for _, l := range lines[:200] {
		if l[LDiscount].I < 0 || l[LDiscount].I > 10 {
			t.Fatalf("discount out of range: %v", l[LDiscount])
		}
	}
}

func TestLoadBuildsCatalog(t *testing.T) {
	db := testDB(t)
	for _, tbl := range []string{"region", "nation", "supplier", "customer",
		"part", "partsupp", "orders", "lineitem"} {
		st := db.Cat.Stats(tbl)
		if st == nil || st.Rows == 0 {
			t.Errorf("missing stats for %s", tbl)
		}
	}
	if db.Cat.Stats("region").Rows != 5 || db.Cat.Stats("nation").Rows != 25 {
		t.Error("region/nation cardinalities wrong")
	}
	li := db.Cat.Stats("lineitem")
	if li.Rows < 300 {
		t.Errorf("lineitem rows = %d", li.Rows)
	}
	if db.Cat.NDPPageThreshold < 4 {
		t.Error("threshold not scaled")
	}
}

// TestAllQueriesNDPEquivalence is the workload-level correctness check:
// every TPC-H query returns identical rows with NDP on and off.
func TestAllQueriesNDPEquivalence(t *testing.T) {
	db := testDB(t)
	all := append(Queries(), MicroQueries()[:3]...)
	for _, q := range all {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			db.Eng.Pool().Clear()
			envOff := NewEnv(db, false)
			off, err := Run(envOff, exec.NewCtx(db.Eng), q)
			if err != nil {
				t.Fatalf("NDP off: %v", err)
			}
			db.Eng.Pool().Clear()
			envOn := NewEnv(db, true)
			on, err := Run(envOn, exec.NewCtx(db.Eng), q)
			if err != nil {
				t.Fatalf("NDP on: %v", err)
			}
			if len(off) != len(on) {
				t.Fatalf("row counts differ: off=%d on=%d", len(off), len(on))
			}
			for i := range off {
				if len(off[i]) != len(on[i]) {
					t.Fatalf("row %d arity differs", i)
				}
				for c := range off[i] {
					if off[i][c].IsNull() != on[i][c].IsNull() ||
						(!off[i][c].IsNull() && types.Compare(off[i][c], on[i][c]) != 0) {
						t.Fatalf("row %d col %d: off=%v on=%v", i, c, off[i][c], on[i][c])
					}
				}
			}
		})
	}
}

// TestNDPDecisionPattern verifies the paper's per-query NDP outcomes
// (§VII-C): Q6/Q12/Q14/Q15 push on lineitem; Q11/Q17/Q19/Q20 get no NDP.
func TestNDPDecisionPattern(t *testing.T) {
	db := testDB(t)
	ndpOn := func(q Query) (anyNDP bool, reports []AccessReport) {
		db.Eng.Pool().Clear()
		env := NewEnv(db, true)
		if _, err := Run(env, exec.NewCtx(db.Eng), q); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		for _, r := range env.Reports {
			if r.Dec.NDPEnabled() {
				anyNDP = true
			}
		}
		return anyNDP, env.Reports
	}
	for _, name := range []string{"Q6", "Q12", "Q14", "Q15"} {
		q, _ := QueryByName(name)
		on, reports := ndpOn(q)
		if !on {
			var why []string
			for _, r := range reports {
				why = append(why, fmt.Sprintf("%s: %v", r.Spec.Table, r.Dec.Reasons))
			}
			t.Errorf("%s should use NDP; reasons: %v", name, why)
		}
	}
	for _, name := range []string{"Q11", "Q17", "Q19", "Q20"} {
		q, _ := QueryByName(name)
		on, reports := ndpOn(q)
		if on {
			for _, r := range reports {
				if r.Dec.NDPEnabled() {
					t.Errorf("%s: unexpected NDP on %s (%+v)", name, r.Spec.Table, r.Dec)
				}
			}
		}
	}
}

func TestQ6PushesAllThree(t *testing.T) {
	db := testDB(t)
	db.Eng.Pool().Clear()
	env := NewEnv(db, true)
	rows, err := Run(env, exec.NewCtx(db.Eng), Query{"Q6", Q6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("Q6 rows = %d", len(rows))
	}
	found := false
	for _, r := range env.Reports {
		if r.Spec.Table == "lineitem" {
			found = true
			if !r.Dec.Predicate || !r.Dec.Aggregation {
				t.Errorf("Q6 lineitem decision = %+v (%v)", r.Dec, r.Dec.Reasons)
			}
		}
	}
	if !found {
		t.Fatal("no lineitem access recorded")
	}
}

func TestQueryByName(t *testing.T) {
	if _, err := QueryByName("Q7"); err != nil {
		t.Fatal(err)
	}
	if _, err := QueryByName("Q99"); err == nil {
		t.Fatal("unknown query should fail")
	}
	if len(Queries()) != 22 {
		t.Fatalf("expected 22 queries, got %d", len(Queries()))
	}
	if len(MicroQueries()) != 5 {
		t.Fatal("micro workload should have 5 queries")
	}
}
