package tpch

import (
	"taurus/internal/core"
	"taurus/internal/exec"
	"taurus/internal/expr"
	"taurus/internal/plan"
	"taurus/internal/types"
)

// The Listing 5 micro-benchmark: three COUNT(*) variants whose
// "performance ... is a perennial problem in MySQL, and NDP provides
// immediate customer benefits" (§VII-A).

// Q0: SELECT COUNT(*) FROM lineitem — full primary (table) scan.
func Q0(e *Env, _ *exec.Ctx) exec.Operator {
	return e.aggScan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Output:      []int{LOrderkey},
		LastInBlock: true,
		Aggs:        []plan.AggCandidate{{Fn: core.AggCountStar, ArgCol: -1, Name: "count(*)"}},
	}, nil)
}

// Q001: SELECT COUNT(*) FROM lineitem WHERE l_shipdate < '1998-07-01' —
// a filtered table scan.
func Q001(e *Env, _ *exec.Ctx) exec.Operator {
	return e.aggScan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate:   expr.LT(col(LShipdate, "l_shipdate"), dateConst(1998, 7, 1)),
		Output:      []int{LOrderkey, LShipdate},
		LastInBlock: true,
		Aggs:        []plan.AggCandidate{{Fn: core.AggCountStar, ArgCol: -1, Name: "count(*)"}},
	}, nil)
}

// Q002: SELECT COUNT(*) FROM lineitem WHERE l_suppkey <= K — a covering
// secondary index range scan. K is chosen as ~60% of the supplier domain
// so the scaled query keeps the original's selectivity character.
func Q002(e *Env, _ *exec.Ctx) exec.Operator {
	maxSupp := int64(1)
	if st := e.DB.Cat.Stats("supplier"); st != nil {
		maxSupp = st.Rows
	}
	k := maxSupp * 6 / 10
	idx := e.DB.LineitemBySupp
	// Secondary layout: 0=l_suppkey 1=l_orderkey 2=l_linenumber.
	return e.aggScan(&plan.AccessSpec{
		Table: "lineitem", Index: idx,
		Predicate:   expr.LE(col(0, "l_suppkey"), intConst(k)),
		Range:       &plan.KeyRange{End: types.Row{types.NewInt(k)}},
		Output:      []int{0},
		LastInBlock: true,
		Aggs:        []plan.AggCandidate{{Fn: core.AggCountStar, ArgCol: -1, Name: "count(*)"}},
	}, nil)
}

// Q1G is a Q1-style pricing summary grouped by l_orderkey instead of
// (l_returnflag, l_linestatus). The group key is the primary-key prefix,
// so the whole grouped aggregation pushes to the Page Stores — the
// parallel-scan benchmark uses it to exercise the cross-partition
// grouped merge (groups split across slice boundaries).
func Q1G(e *Env, _ *exec.Ctx) exec.Operator {
	// Output layout: 0=okey 1=qty 2=price 3=disc.
	return e.aggScan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate:   expr.LE(col(LShipdate, "l_shipdate"), dateConst(1998, 9, 2)),
		Output:      []int{LOrderkey, LQuantity, LExtendedprice, LDiscount},
		LastInBlock: true,
		Aggs: []plan.AggCandidate{
			{Fn: core.AggSum, ArgCol: 1, Name: "sum_qty"},
			{Fn: core.AggSum, ArgCol: -1, Name: "sum_disc_price",
				ArgExpr: expr.Div(revenue(2, 3), decConst(100))},
			{Fn: core.AggCountStar, ArgCol: -1, Name: "count_order"},
		},
		GroupBy: []int{0},
	}, nil)
}

// MicroQueries lists the Fig. 5/6 workload: the three COUNT(*) variants
// plus TPC-H Q1 and Q6.
func MicroQueries() []Query {
	return []Query{
		{"Q0", Q0}, {"Q001", Q001}, {"Q002", Q002}, {"Q1", Q1}, {"Q6", Q6},
	}
}
