package tpch

import (
	"fmt"

	"taurus/internal/engine"
	"taurus/internal/plan"
	"taurus/internal/types"
)

// DB bundles the loaded TPC-H database: tables, secondary indexes, and a
// statistics catalog ready for planning.
type DB struct {
	Eng *engine.Engine
	Cat *plan.Catalog
	SF  float64

	Region   *engine.Table
	Nation   *engine.Table
	Supplier *engine.Table
	Customer *engine.Table
	Part     *engine.Table
	PartSupp *engine.Table
	Orders   *engine.Table
	Lineitem *engine.Table

	// LineitemBySupp is the secondary index used by the Q002
	// micro-benchmark ("secondary index scan", Listing 5).
	LineitemBySupp *engine.Index
	// LineitemByPart serves Q17/Q19-style partkey lookups.
	LineitemByPart *engine.Index
	// OrdersByCust serves Q13/Q22-style custkey access.
	OrdersByCust *engine.Index
	// PartSuppBySupp lets Q11 reach PARTSUPP through per-supplier
	// lookups (keeping Q11 free of NDP-eligible scans, as in the paper).
	PartSuppBySupp *engine.Index
}

// Load generates and loads a TPC-H database at the given scale factor,
// builds secondary indexes, and computes catalog statistics.
func Load(eng *engine.Engine, sf float64) (*DB, error) {
	g := NewGen(sf)
	db := &DB{Eng: eng, SF: sf, Cat: plan.NewCatalog(eng)}

	type tableDef struct {
		name   string
		schema *types.Schema
		pk     []int
		dst    **engine.Table
	}
	defs := []tableDef{
		{"region", RegionSchema, []int{0}, &db.Region},
		{"nation", NationSchema, []int{0}, &db.Nation},
		{"supplier", SupplierSchema, []int{0}, &db.Supplier},
		{"customer", CustomerSchema, []int{0}, &db.Customer},
		{"part", PartSchema, []int{0}, &db.Part},
		{"partsupp", PartSuppSchema, []int{0, 1}, &db.PartSupp},
		{"orders", OrdersSchema, []int{0}, &db.Orders},
		{"lineitem", LineitemSchema, []int{0, 1}, &db.Lineitem},
	}
	for _, d := range defs {
		t, err := eng.CreateTable(d.name, d.schema, d.pk)
		if err != nil {
			return nil, err
		}
		*d.dst = t
	}
	var err error
	if db.LineitemBySupp, err = eng.CreateSecondaryIndex("lineitem", "l_suppkey_idx", []int{LSuppkey}); err != nil {
		return nil, err
	}
	if db.LineitemByPart, err = eng.CreateSecondaryIndex("lineitem", "l_partkey_idx", []int{LPartkey}); err != nil {
		return nil, err
	}
	if db.OrdersByCust, err = eng.CreateSecondaryIndex("orders", "o_custkey_idx", []int{OCustkey}); err != nil {
		return nil, err
	}
	if db.PartSuppBySupp, err = eng.CreateSecondaryIndex("partsupp", "ps_suppkey_idx", []int{PSSuppkey}); err != nil {
		return nil, err
	}

	tx := eng.Txm().Begin()
	load := func(t *engine.Table, rows []types.Row) error {
		for _, r := range rows {
			if err := eng.Insert(t, tx, r); err != nil {
				return fmt.Errorf("tpch: loading %s: %w", t.Name, err)
			}
		}
		return nil
	}
	if err := load(db.Region, g.Regions()); err != nil {
		return nil, err
	}
	if err := load(db.Nation, g.Nations()); err != nil {
		return nil, err
	}
	if err := load(db.Supplier, g.Suppliers()); err != nil {
		return nil, err
	}
	if err := load(db.Customer, g.Customers()); err != nil {
		return nil, err
	}
	if err := load(db.Part, g.Parts()); err != nil {
		return nil, err
	}
	if err := load(db.PartSupp, g.PartSupps()); err != nil {
		return nil, err
	}
	orders, lineitems := g.Orders()
	if err := load(db.Orders, orders); err != nil {
		return nil, err
	}
	if err := load(db.Lineitem, lineitems); err != nil {
		return nil, err
	}
	tx.Commit()
	if err := eng.SAL().Flush(); err != nil {
		return nil, err
	}

	for _, d := range defs {
		if _, err := db.Cat.Analyze(d.name); err != nil {
			return nil, err
		}
	}
	// Scale the paper's 10,000-page threshold with the database: at SF
	// 1 lineitem is ~100k leaf pages and the threshold is 10% of that;
	// keep the same 10% ratio so the same queries qualify.
	liPages := db.Cat.Stats("lineitem").LeafPages
	db.Cat.NDPPageThreshold = liPages / 10
	if db.Cat.NDPPageThreshold < 4 {
		db.Cat.NDPPageThreshold = 4
	}
	// Loading warmed the buffer pool with every page; experiments start
	// cold unless they explicitly warm it.
	eng.Pool().Clear()
	return db, nil
}
