package tpch

import (
	"taurus/internal/core"
	"taurus/internal/exec"
	"taurus/internal/expr"
	"taurus/internal/plan"
	"taurus/internal/types"
)

// Q12: shipping modes and order priority. NDP on both inputs (the paper
// calls out Q12's hash join "applying NDP to both inputs").
func Q12(e *Env, _ *exec.Ctx) exec.Operator {
	lineitem := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate: expr.AndAll(
			expr.In(col(LShipmode, "l_shipmode"), strConst("MAIL"), strConst("SHIP")),
			expr.LT(col(LCommitdate, "l_commitdate"), col(LReceiptdate, "l_receiptdate")),
			expr.LT(col(LShipdate, "l_shipdate"), col(LCommitdate, "l_commitdate")),
			expr.GE(col(LReceiptdate, "l_receiptdate"), dateConst(1994, 1, 1)),
			expr.LT(col(LReceiptdate, "l_receiptdate"), dateConst(1995, 1, 1)),
		),
		Output: []int{LOrderkey, LShipmode},
	})
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Output: []int{OOrderkey, OOrderpriority},
	})
	// lo: 0=l_orderkey 1=l_shipmode 2=o_orderkey 3=o_orderpriority
	lo := &exec.HashJoin{Kind: exec.JoinInner, Build: orders, Probe: lineitem,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	high := expr.Or(
		expr.EQ(col(3, "o_orderpriority"), strConst("1-URGENT")),
		expr.EQ(col(3, "o_orderpriority"), strConst("2-HIGH")))
	agg := &exec.HashAgg{
		Input:      lo,
		GroupBy:    []*expr.Expr{col(1, "l_shipmode")},
		GroupNames: []string{"l_shipmode"},
		Aggs: []exec.AggDef{
			{Fn: exec.AggFnSum, Arg: expr.New(expr.OpCase, high, intConst(1), intConst(0)), Name: "high_line_count"},
			{Fn: exec.AggFnSum, Arg: expr.New(expr.OpCase, high, intConst(0), intConst(1)), Name: "low_line_count"},
		},
	}
	return &exec.Sort{Input: agg, Keys: []exec.OrderKey{{Expr: col(0, "l_shipmode")}}}
}

// Q13: customer distribution — left outer join with a NOT LIKE filter on
// the orders side.
func Q13(e *Env, _ *exec.Ctx) exec.Operator {
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Predicate: expr.NotLikeE(col(OComment, "o_comment"), strConst("%special%requests%")),
		Output:    []int{OOrderkey, OCustkey},
	})
	customer := e.scan(&plan.AccessSpec{
		Table: "customer", Index: e.DB.Customer.Primary,
		Output: []int{CCustkey},
	})
	// co: 0=c_custkey 1=o_orderkey 2=o_custkey
	co := &exec.HashJoin{Kind: exec.JoinLeftOuter, Build: orders, Probe: customer,
		BuildKeys: []int{1}, ProbeKeys: []int{0}}
	perCust := &exec.HashAgg{
		Input:      co,
		GroupBy:    []*expr.Expr{col(0, "c_custkey")},
		GroupNames: []string{"c_custkey"},
		Aggs:       []exec.AggDef{{Fn: exec.AggFnCount, Arg: col(1, "o_orderkey"), Name: "c_count"}},
	}
	dist := &exec.HashAgg{
		Input:      perCust,
		GroupBy:    []*expr.Expr{col(1, "c_count")},
		GroupNames: []string{"c_count"},
		Aggs:       []exec.AggDef{{Fn: exec.AggFnCountStar, Name: "custdist"}},
	}
	return &exec.Sort{Input: dist, Keys: []exec.OrderKey{
		{Expr: col(1, "custdist"), Desc: true}, {Expr: col(0, "c_count"), Desc: true},
	}}
}

// Q14: promotion effect — NDP on the lineitem scan, NL join into PART
// via primary-key point lookups ("Q14 applies NDP on a scan of the
// Lineitem table, and joins the remaining rows with Part using an NL
// join", §VII-C).
func Q14(e *Env, _ *exec.Ctx) exec.Operator {
	lineitem := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate: expr.And(
			expr.GE(col(LShipdate, "l_shipdate"), dateConst(1995, 9, 1)),
			expr.LT(col(LShipdate, "l_shipdate"), dateConst(1995, 10, 1))),
		Output: []int{LPartkey, LExtendedprice, LDiscount},
	})
	db := e.DB
	// lp: 0=l_partkey 1=price 2=disc 3=p_type
	lp := &exec.IndexLookupJoin{
		Outer:     lineitem,
		InnerCols: []string{"p_type"},
		Lookup: func(ctx *exec.Ctx, outer types.Row) ([]types.Row, error) {
			return lookupByPrefix(ctx, db.Part.Primary, outer[0], []int{PType})
		},
	}
	rev := expr.Div(revenue(1, 2), decConst(100))
	agg := &exec.HashAgg{
		Input: lp,
		Aggs: []exec.AggDef{
			{Fn: exec.AggFnSum, Arg: expr.New(expr.OpCase,
				expr.Like(col(3, "p_type"), strConst("PROMO%")), rev, decConst(0)),
				Name: "promo_revenue"},
			{Fn: exec.AggFnSum, Arg: rev, Name: "total_revenue"},
		},
	}
	return &exec.Project{
		Input: agg,
		Exprs: []*expr.Expr{expr.Div(expr.Mul(col(0, "promo"), decConst(10000)), col(1, "total"))},
		Names: []string{"promo_revenue_pct"},
	}
}

// Q15: top supplier. The revenue view is a grouped aggregation over a
// filtered lineitem scan; grouping by l_suppkey is not an index prefix,
// so aggregation stays on the SQL node while filtering and projection
// push down (98% network reduction in the paper).
func Q15(e *Env, ctx *exec.Ctx) exec.Operator {
	lineitem := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate: expr.And(
			expr.GE(col(LShipdate, "l_shipdate"), dateConst(1996, 1, 1)),
			expr.LT(col(LShipdate, "l_shipdate"), dateConst(1996, 4, 1))),
		Output: []int{LSuppkey, LExtendedprice, LDiscount},
	})
	revView := &exec.HashAgg{
		Input:      lineitem,
		GroupBy:    []*expr.Expr{col(0, "l_suppkey")},
		GroupNames: []string{"supplier_no"},
		Aggs: []exec.AggDef{{Fn: exec.AggFnSum,
			Arg: expr.Div(revenue(1, 2), decConst(100)), Name: "total_revenue"}},
	}
	revRows := e.runSub(ctx, revView)
	// Scalar max over the view.
	maxAgg := &exec.HashAgg{
		Input: &exec.Values{Rows: revRows, Names: []string{"supplier_no", "total_revenue"}},
		Aggs:  []exec.AggDef{{Fn: exec.AggFnMax, Arg: col(1, "total_revenue"), Name: "max_rev"}},
	}
	maxRows := e.runSub(ctx, maxAgg)
	maxRev := types.Null()
	if len(maxRows) == 1 {
		maxRev = maxRows[0][0]
	}
	winners := &exec.Filter{
		Input: &exec.Values{Rows: revRows, Names: []string{"supplier_no", "total_revenue"}},
		Pred:  expr.EQ(col(1, "total_revenue"), expr.Const(maxRev)),
	}
	supplier := e.scan(&plan.AccessSpec{
		Table: "supplier", Index: e.DB.Supplier.Primary,
		Output: []int{SSuppkey, SName, SAddress, SPhone},
	})
	// joined: winners(2) ++ supplier(4): 2=s_suppkey 3=s_name 4=s_address 5=s_phone
	joined := &exec.HashJoin{Kind: exec.JoinInner, Build: supplier, Probe: winners,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	return &exec.Sort{Input: joined, Keys: []exec.OrderKey{{Expr: col(0, "supplier_no")}}}
}

// Q16: parts/supplier relationship — over 90% network reduction in the
// paper from the wide PARTSUPP scan.
func Q16(e *Env, _ *exec.Ctx) exec.Operator {
	partsupp := e.scan(&plan.AccessSpec{
		Table: "partsupp", Index: e.DB.PartSupp.Primary,
		Output: []int{PSPartkey, PSSuppkey},
	})
	part := e.scan(&plan.AccessSpec{
		Table: "part", Index: e.DB.Part.Primary,
		Predicate: expr.AndAll(
			expr.NE(col(PBrand, "p_brand"), strConst("Brand#45")),
			expr.NotLikeE(col(PType, "p_type"), strConst("MEDIUM POLISHED%")),
			expr.In(col(PSize, "p_size"), intConst(49), intConst(14), intConst(23),
				intConst(45), intConst(19), intConst(3), intConst(36), intConst(9))),
		Output: []int{PPartkey, PBrand, PType, PSize},
	})
	// pp: 0=ps_partkey 1=ps_suppkey 2=p_partkey 3=p_brand 4=p_type 5=p_size
	pp := &exec.HashJoin{Kind: exec.JoinInner, Build: part, Probe: partsupp,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	complaints := e.scan(&plan.AccessSpec{
		Table: "supplier", Index: e.DB.Supplier.Primary,
		Predicate: expr.Like(col(SComment, "s_comment"), strConst("%Customer%Complaints%")),
		Output:    []int{SSuppkey},
	})
	clean := &exec.HashJoin{Kind: exec.JoinAnti, Build: complaints, Probe: pp,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	agg := &exec.HashAgg{
		Input:      clean,
		GroupBy:    []*expr.Expr{col(3, "p_brand"), col(4, "p_type"), col(5, "p_size")},
		GroupNames: []string{"p_brand", "p_type", "p_size"},
		Aggs: []exec.AggDef{{Fn: exec.AggFnCount, Arg: col(1, "ps_suppkey"),
			Distinct: true, Name: "supplier_cnt"}},
	}
	return &exec.Sort{Input: agg, Keys: []exec.OrderKey{
		{Expr: col(3, "supplier_cnt"), Desc: true},
		{Expr: col(0, "p_brand")}, {Expr: col(1, "p_type")}, {Expr: col(2, "p_size")},
	}}
}

// Q17: small-quantity-order revenue. The part filter selects a handful
// of parts; lineitem is reached via partkey index lookups — no
// NDP-eligible scan survives the 10,000-page rule, as in the paper.
func Q17(e *Env, ctx *exec.Ctx) exec.Operator {
	part := e.scan(&plan.AccessSpec{
		Table: "part", Index: e.DB.Part.Primary,
		Predicate: expr.And(
			expr.EQ(col(PBrand, "p_brand"), strConst("Brand#23")),
			expr.EQ(col(PContainer, "p_container"), strConst("MED BOX"))),
		Output: []int{PPartkey},
	})
	// pairs: 0=p_partkey 1=l_quantity 2=l_extendedprice
	pairs := &exec.IndexLookupJoin{
		Outer:     part,
		InnerCols: []string{"l_quantity", "l_extendedprice"},
		Lookup: func(ctx *exec.Ctx, outer types.Row) ([]types.Row, error) {
			return e.lineitemByPartkey(ctx, outer[0], []int{LQuantity, LExtendedprice})
		},
	}
	rows := e.runSub(ctx, pairs)
	names := []string{"p_partkey", "l_quantity", "l_extendedprice"}
	avgQty := &exec.HashAgg{
		Input:      &exec.Values{Rows: rows, Names: names},
		GroupBy:    []*expr.Expr{col(0, "p_partkey")},
		GroupNames: []string{"p_partkey"},
		Aggs:       []exec.AggDef{{Fn: exec.AggFnAvg, Arg: col(1, "l_quantity"), Name: "avg_qty"}},
	}
	// joined: pairs(3) ++ avg(2): 3=p_partkey 4=avg_qty
	joined := &exec.HashJoin{
		Kind:  exec.JoinInner,
		Build: avgQty, Probe: &exec.Values{Rows: rows, Names: names},
		BuildKeys: []int{0}, ProbeKeys: []int{0},
	}
	small := &exec.Filter{Input: joined, Pred: expr.LT(col(1, "l_quantity"),
		expr.Div(expr.Mul(col(4, "avg_qty"), decConst(20)), decConst(100)))}
	agg := &exec.HashAgg{
		Input: small,
		Aggs:  []exec.AggDef{{Fn: exec.AggFnSum, Arg: col(2, "l_extendedprice"), Name: "sum_price"}},
	}
	return &exec.Project{
		Input: agg,
		Exprs: []*expr.Expr{expr.Div(col(0, "sum_price"), decConst(700))},
		Names: []string{"avg_yearly"},
	}
}

// Q18: large volume customers. The inner block groups lineitem by
// l_orderkey — an index prefix — so with no residual predicates the
// optimizer may push the whole aggregation to Page Stores (our optimizer
// pushes it; the paper's applied projection-only NDP here).
func Q18(e *Env, ctx *exec.Ctx) exec.Operator {
	bigOrders := e.aggScan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Output:      []int{LOrderkey, LQuantity},
		LastInBlock: true,
		Aggs:        []plan.AggCandidate{{Fn: core.AggSum, ArgCol: 1, Name: "sum_qty"}},
		GroupBy:     []int{0},
	}, expr.GT(col(1, "sum_qty"), decConst(30000)))
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Output: []int{OOrderkey, OCustkey, OOrderdate, OTotalprice},
	})
	// ob: orders(4) ++ big(2): 4=big_orderkey 5=sum_qty
	ob := &exec.HashJoin{Kind: exec.JoinInner, Build: bigOrders, Probe: orders,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	customer := e.scan(&plan.AccessSpec{
		Table: "customer", Index: e.DB.Customer.Primary,
		Output: []int{CCustkey, CName},
	})
	// obc: ob(6) ++ cust(2): 6=c_custkey 7=c_name
	obc := &exec.HashJoin{Kind: exec.JoinInner, Build: customer, Probe: ob,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	lineitem := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Output: []int{LOrderkey, LQuantity},
	})
	// all: lineitem(2) ++ obc(8): 2=o_orderkey 3=o_custkey 4=o_orderdate
	// 5=o_totalprice 6=big_orderkey 7=sum_qty 8=c_custkey 9=c_name
	all := &exec.HashJoin{Kind: exec.JoinInner, Build: obc, Probe: lineitem,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	agg := &exec.HashAgg{
		Input: all,
		GroupBy: []*expr.Expr{col(9, "c_name"), col(3, "c_custkey"), col(2, "o_orderkey"),
			col(4, "o_orderdate"), col(5, "o_totalprice")},
		GroupNames: []string{"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
		Aggs:       []exec.AggDef{{Fn: exec.AggFnSum, Arg: col(1, "l_quantity"), Name: "sum_qty"}},
	}
	sorted := &exec.Sort{Input: agg, Keys: []exec.OrderKey{
		{Expr: col(4, "o_totalprice"), Desc: true}, {Expr: col(3, "o_orderdate")},
	}}
	return &exec.Limit{Input: sorted, N: 100}
}

// Q19: discounted revenue — the paper's detailed no-NDP example: the
// PART scan is too small/cached, and lineitem is reached through partkey
// index lookups ("an index lookup on l_partkey provides an efficient
// access path", §VII-C).
func Q19(e *Env, _ *exec.Ctx) exec.Operator {
	part := e.scan(&plan.AccessSpec{
		Table: "part", Index: e.DB.Part.Primary,
		Predicate: expr.Or(expr.Or(
			expr.And(expr.EQ(col(PBrand, "p_brand"), strConst("Brand#12")),
				expr.Between(col(PSize, "p_size"), intConst(1), intConst(5))),
			expr.And(expr.EQ(col(PBrand, "p_brand"), strConst("Brand#23")),
				expr.Between(col(PSize, "p_size"), intConst(1), intConst(10)))),
			expr.And(expr.EQ(col(PBrand, "p_brand"), strConst("Brand#34")),
				expr.Between(col(PSize, "p_size"), intConst(1), intConst(15)))),
		Output: []int{PPartkey, PBrand, PContainer},
	})
	// pl: 0=p_partkey 1=p_brand 2=p_container 3=l_quantity 4=l_shipinstruct
	// 5=l_shipmode 6=l_extendedprice 7=l_discount
	cond := func(brand string, qlo, qhi int64, containers ...string) *expr.Expr {
		cs := make([]*expr.Expr, 0, len(containers))
		for _, c := range containers {
			cs = append(cs, strConst(c))
		}
		return expr.AndAll(
			expr.EQ(col(1, "p_brand"), strConst(brand)),
			expr.In(col(2, "p_container"), cs...),
			expr.Between(col(3, "l_quantity"), decConst(qlo*100), decConst(qhi*100)),
		)
	}
	on := expr.AndAll(
		expr.Or(expr.Or(
			cond("Brand#12", 1, 11, "SM CASE", "SM BOX", "SM PACK", "SM PKG"),
			cond("Brand#23", 10, 20, "MED BAG", "MED BOX", "MED PKG", "MED PACK")),
			cond("Brand#34", 20, 30, "LG CASE", "LG BOX", "LG PACK", "LG PKG")),
		expr.In(col(5, "l_shipmode"), strConst("AIR"), strConst("REG AIR")),
		expr.EQ(col(4, "l_shipinstruct"), strConst("DELIVER IN PERSON")),
	)
	pl := &exec.IndexLookupJoin{
		Outer: part,
		InnerCols: []string{"l_quantity", "l_shipinstruct", "l_shipmode",
			"l_extendedprice", "l_discount"},
		Lookup: func(ctx *exec.Ctx, outer types.Row) ([]types.Row, error) {
			return e.lineitemByPartkey(ctx, outer[0],
				[]int{LQuantity, LShipinstruct, LShipmode, LExtendedprice, LDiscount})
		},
		On: on,
	}
	return &exec.HashAgg{
		Input: pl,
		Aggs: []exec.AggDef{{Fn: exec.AggFnSum,
			Arg: expr.Div(revenue(6, 7), decConst(100)), Name: "revenue"}},
	}
}

// Q20: potential part promotion — all lookups, no NDP (as in the paper).
func Q20(e *Env, ctx *exec.Ctx) exec.Operator {
	part := e.scan(&plan.AccessSpec{
		Table: "part", Index: e.DB.Part.Primary,
		Predicate: expr.Like(col(PName, "p_name"), strConst("forest%")),
		Output:    []int{PPartkey},
	})
	db := e.DB
	// pairs: 0=p_partkey 1=ps_suppkey 2=ps_availqty
	pairs := &exec.IndexLookupJoin{
		Outer:     part,
		InnerCols: []string{"ps_suppkey", "ps_availqty"},
		Lookup: func(ctx *exec.Ctx, outer types.Row) ([]types.Row, error) {
			return lookupByPrefix(ctx, db.PartSupp.Primary, outer[0], []int{PSSuppkey, PSAvailqty})
		},
	}
	// Per (part, supp): lineitem quantities shipped in 1994.
	// pl: pairs(3) ++ li(3): 3=l_suppkey 4=l_shipdate 5=l_quantity
	pl := &exec.IndexLookupJoin{
		Outer:     pairs,
		InnerCols: []string{"l_suppkey", "l_shipdate", "l_quantity"},
		Lookup: func(ctx *exec.Ctx, outer types.Row) ([]types.Row, error) {
			return e.lineitemByPartkey(ctx, outer[0], []int{LSuppkey, LShipdate, LQuantity})
		},
		On: expr.AndAll(
			expr.EQ(col(3, "l_suppkey"), col(1, "ps_suppkey")),
			expr.GE(col(4, "l_shipdate"), dateConst(1994, 1, 1)),
			expr.LT(col(4, "l_shipdate"), dateConst(1995, 1, 1)),
		),
	}
	perPair := &exec.HashAgg{
		Input: pl,
		GroupBy: []*expr.Expr{col(0, "p_partkey"), col(1, "ps_suppkey"),
			col(2, "ps_availqty")},
		GroupNames: []string{"p_partkey", "ps_suppkey", "ps_availqty"},
		Aggs:       []exec.AggDef{{Fn: exec.AggFnSum, Arg: col(5, "l_quantity"), Name: "sum_qty"}},
		// availqty > 0.5 * sum(qty)  ⇔  2*availqty > sum(qty)
		Having: expr.GT(expr.Mul(intConst(2), col(2, "ps_availqty")), col(3, "sum_qty")),
	}
	nation := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Predicate: expr.EQ(col(NName, "n_name"), strConst("CANADA")),
		Output:    []int{NNationkey},
	})
	supplier := e.scan(&plan.AccessSpec{
		Table: "supplier", Index: e.DB.Supplier.Primary,
		Output: []int{SSuppkey, SName, SAddress, SNationkey},
	})
	// canSupp: 0=s_suppkey 1=s_name 2=s_address 3=s_nationkey 4=n_nationkey
	canSupp := &exec.HashJoin{Kind: exec.JoinInner, Build: nation, Probe: supplier,
		BuildKeys: []int{0}, ProbeKeys: []int{3}}
	// Semi: suppliers with at least one qualifying pair.
	result := &exec.HashJoin{Kind: exec.JoinSemi, Build: perPair, Probe: canSupp,
		BuildKeys: []int{1}, ProbeKeys: []int{0}}
	return &exec.Sort{Input: result, Keys: []exec.OrderKey{{Expr: col(1, "s_name")}}}
}

// Q21: suppliers who kept orders waiting — semi and anti joins with the
// s2.suppkey <> s1.suppkey inequality as an extra hash-join condition.
func Q21(e *Env, _ *exec.Ctx) exec.Operator {
	nation := e.scan(&plan.AccessSpec{
		Table: "nation", Index: e.DB.Nation.Primary,
		Predicate: expr.EQ(col(NName, "n_name"), strConst("SAUDI ARABIA")),
		Output:    []int{NNationkey},
	})
	supplier := e.scan(&plan.AccessSpec{
		Table: "supplier", Index: e.DB.Supplier.Primary,
		Output: []int{SSuppkey, SName, SNationkey},
	})
	// saSupp: 0=s_suppkey 1=s_name 2=s_nationkey 3=n_nationkey
	saSupp := &exec.HashJoin{Kind: exec.JoinInner, Build: nation, Probe: supplier,
		BuildKeys: []int{0}, ProbeKeys: []int{2}}
	l1 := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate: expr.GT(col(LReceiptdate, "l_receiptdate"), col(LCommitdate, "l_commitdate")),
		Output:    []int{LOrderkey, LSuppkey},
	})
	// ls: l1(2) ++ saSupp(4): 0=l_orderkey 1=l_suppkey 2=s_suppkey 3=s_name ...
	ls := &exec.HashJoin{Kind: exec.JoinInner, Build: saSupp, Probe: l1,
		BuildKeys: []int{0}, ProbeKeys: []int{1}}
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Predicate: expr.EQ(col(OOrderstatus, "o_orderstatus"), strConst("F")),
		Output:    []int{OOrderkey},
	})
	// lso: ls(6) ++ orders(1): 6=o_orderkey
	lso := &exec.HashJoin{Kind: exec.JoinInner, Build: orders, Probe: ls,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	// EXISTS l2: another supplier on the same order.
	l2 := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Output: []int{LOrderkey, LSuppkey},
	})
	// semi combined: lso(7) ++ l2(2): 7=l2_orderkey 8=l2_suppkey
	withOther := &exec.HashJoin{Kind: exec.JoinSemi, Build: l2, Probe: lso,
		BuildKeys: []int{0}, ProbeKeys: []int{0},
		ExtraCond: expr.NE(col(8, "l2_suppkey"), col(1, "l_suppkey"))}
	// NOT EXISTS l3: another supplier also late on the same order.
	l3 := e.scan(&plan.AccessSpec{
		Table: "lineitem", Index: e.DB.Lineitem.Primary,
		Predicate: expr.GT(col(LReceiptdate, "l_receiptdate"), col(LCommitdate, "l_commitdate")),
		Output:    []int{LOrderkey, LSuppkey},
	})
	noOtherLate := &exec.HashJoin{Kind: exec.JoinAnti, Build: l3, Probe: withOther,
		BuildKeys: []int{0}, ProbeKeys: []int{0},
		ExtraCond: expr.NE(col(8, "l3_suppkey"), col(1, "l_suppkey"))}
	agg := &exec.HashAgg{
		Input:      noOtherLate,
		GroupBy:    []*expr.Expr{col(3, "s_name")},
		GroupNames: []string{"s_name"},
		Aggs:       []exec.AggDef{{Fn: exec.AggFnCountStar, Name: "numwait"}},
	}
	sorted := &exec.Sort{Input: agg, Keys: []exec.OrderKey{
		{Expr: col(1, "numwait"), Desc: true}, {Expr: col(0, "s_name")},
	}}
	return &exec.Limit{Input: sorted, N: 100}
}

// Q22: global sales opportunity. The country-code SUBSTRING is not
// NDP-eligible (explicit allowed-function list, §V-B1) so the customer
// filter stays residual.
func Q22(e *Env, ctx *exec.Ctx) exec.Operator {
	ccOf := func(phoneOrd int) *expr.Expr {
		cc := expr.New(expr.OpSubstr, col(phoneOrd, "c_phone"), intConst(1), intConst(2))
		return expr.In(cc, strConst("13"), strConst("31"), strConst("23"),
			strConst("29"), strConst("30"), strConst("18"), strConst("17"))
	}
	ccIn := ccOf(CPhone) // index-schema layout, for scan predicates
	// Average positive balance among those customers (scalar subquery).
	custForAvg := e.scan(&plan.AccessSpec{
		Table: "customer", Index: e.DB.Customer.Primary,
		Predicate: expr.And(ccOf(CPhone), expr.GT(col(CAcctbal, "c_acctbal"), decConst(0))),
		Output:    []int{CCustkey, CPhone, CAcctbal},
	})
	avgOp := &exec.HashAgg{
		Input: custForAvg,
		Aggs:  []exec.AggDef{{Fn: exec.AggFnAvg, Arg: col(2, "c_acctbal"), Name: "avg_bal"}},
	}
	avgRows := e.runSub(ctx, avgOp)
	avgBal := types.Null()
	if len(avgRows) == 1 {
		avgBal = avgRows[0][0]
	}
	customer := e.scan(&plan.AccessSpec{
		Table: "customer", Index: e.DB.Customer.Primary,
		Predicate: expr.And(ccIn, expr.GT(col(CAcctbal, "c_acctbal"), expr.Const(avgBal))),
		Output:    []int{CCustkey, CPhone, CAcctbal},
	})
	orders := e.scan(&plan.AccessSpec{
		Table: "orders", Index: e.DB.Orders.Primary,
		Output: []int{OCustkey},
	})
	noOrders := &exec.HashJoin{Kind: exec.JoinAnti, Build: orders, Probe: customer,
		BuildKeys: []int{0}, ProbeKeys: []int{0}}
	agg := &exec.HashAgg{
		Input:      noOrders,
		GroupBy:    []*expr.Expr{expr.New(expr.OpSubstr, col(1, "c_phone"), intConst(1), intConst(2))},
		GroupNames: []string{"cntrycode"},
		Aggs: []exec.AggDef{
			{Fn: exec.AggFnCountStar, Name: "numcust"},
			{Fn: exec.AggFnSum, Arg: col(2, "c_acctbal"), Name: "totacctbal"},
		},
	}
	return &exec.Sort{Input: agg, Keys: []exec.OrderKey{{Expr: col(0, "cntrycode")}}}
}
