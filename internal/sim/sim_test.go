package sim

import "testing"

func TestRuntimeBottlenecks(t *testing.T) {
	m := Model{
		NetBytesPerSec: 100, NetLatencyPerReq: 0.001,
		CPUUnitsPerSec: 100, StoreRecordsPerSec: 100, StoreParallelism: 2,
	}
	// Pure CPU work divides by DOP.
	w := Work{ParallelCPUUnits: 100}
	if got := m.Runtime(w, 1); got != 1.0 {
		t.Fatalf("dop1 = %v", got)
	}
	if got := m.Runtime(w, 4); got != 0.25 {
		t.Fatalf("dop4 = %v", got)
	}
	// Serial work never divides.
	w = Work{SerialCPUUnits: 100, ParallelCPUUnits: 100}
	if got := m.Runtime(w, 100); got <= 1.0 {
		t.Fatalf("serial floor violated: %v", got)
	}
	// Network bandwidth is a DOP-independent floor.
	w = Work{ParallelCPUUnits: 100, NetBytes: 1000} // net = 10s
	if got := m.Runtime(w, 100); got != 10.0 {
		t.Fatalf("net floor = %v", got)
	}
	// Request latency divides with DOP (parallel lookups).
	w = Work{NetRequests: 1000} // 1s of latency
	if got := m.Runtime(w, 10); got != 0.1 {
		t.Fatalf("latency/dop = %v", got)
	}
	// Storage time uses store parallelism, not DOP.
	w = Work{StoreRecords: 1000} // 1000/100/2 = 5s
	if got := m.Runtime(w, 64); got != 5.0 {
		t.Fatalf("store floor = %v", got)
	}
	// dop < 1 clamps.
	if m.Runtime(Work{ParallelCPUUnits: 100}, 0) != 1.0 {
		t.Fatal("dop clamp")
	}
}

func TestReduction(t *testing.T) {
	if Reduction(10, 5) != 50 {
		t.Fatal("50% expected")
	}
	if Reduction(0, 5) != 0 {
		t.Fatal("zero base guards")
	}
	if Reduction(10, 10) != 0 {
		t.Fatal("no change → 0")
	}
}

func TestDefaultModelCalibration(t *testing.T) {
	m := DefaultModel()
	if m.NetBytesPerSec <= 0 || m.CPUUnitsPerSec <= 0 || m.StoreParallelism <= 0 {
		t.Fatal("default model incomplete")
	}
}
