// Package sim provides the simulated-cluster cost model used to
// reproduce the paper's run-time figures (Figs. 6, 8, 9).
//
// The reproduction runs on a single machine, so wall-clock time cannot
// show a 32-worker SQL node feeding four Page Stores over a 25 Gbps
// fabric. Instead, every experiment measures exact work quantities (rows
// examined, predicate evaluations, hash/sort operations, bytes moved,
// storage-side records processed) and this model converts them into a
// simulated makespan:
//
//	T = serialCPU + max(parallelCPU/DOP, networkTime, storageTime)
//
// which captures the three effects the paper's run-time plots hinge on:
// PQ divides parallelizable SQL-node work by the degree of parallelism;
// the network becomes the bottleneck for full-page scans ("they must
// each transfer about 950 GB of data over the network, and bottleneck on
// I/O", §VII-A); and NDP removes that bottleneck while shifting record
// processing into the (parallel) Page Stores. Constants are stated, not
// fitted; EXPERIMENTS.md compares shapes, not absolute values.
package sim

// Model holds the cost constants.
type Model struct {
	// NetBytesPerSec is the SQL node's ingest bandwidth. The paper's
	// nodes have 25 Gbps NICs; the default is scaled down in proportion
	// to the database so that a full table scan is I/O-bound just as a
	// 950 GB transfer is on 25 Gbps.
	NetBytesPerSec float64
	// NetLatencyPerReq is the per-request storage round-trip time.
	// Point lookups (NL joins) are latency-bound and overlap across PQ
	// workers — the paper's "multiple worker threads performing lookups
	// on the inner table(s) concurrently" (§VII-E) — whereas big batch
	// reads are bandwidth-bound and are not helped by more workers.
	NetLatencyPerReq float64
	// CPUUnitsPerSec converts SQL-node work units into time.
	CPUUnitsPerSec float64
	// StoreRecordsPerSec is one Page Store worker's NDP record
	// processing rate.
	StoreRecordsPerSec float64
	// StoreParallelism is the total Page-Store-side concurrency
	// (stores × worker threads), the paper's levels 2+3 of parallelism.
	StoreParallelism float64
}

// DefaultModel matches the paper's small test cluster proportions: four
// Page Stores with multi-threaded NDP processing.
func DefaultModel() Model {
	// Calibration: a full table scan's transfer time is ~1/7 of its
	// serial SQL CPU time, mirroring the paper's micro-benchmark where
	// PQ-only reductions cap near 86% (not the 96.9% theoretical)
	// because the ~950 GB transfer saturates the 25 Gbps fabric at high
	// DOP (§VII-A, Fig. 6). The ratio is scale-invariant: both work and
	// bytes grow linearly with SF.
	return Model{
		NetBytesPerSec:     384 << 20, // scaled fabric
		NetLatencyPerReq:   100e-6,    // 100 µs per storage round trip
		CPUUnitsPerSec:     1e6,
		StoreRecordsPerSec: 4e6,
		StoreParallelism:   16, // 4 stores × 4 NDP workers
	}
}

// Work is the measured work of one query execution.
type Work struct {
	// NetBytes is bytes received by the SQL node from storage.
	NetBytes float64
	// NetRequests is the number of storage round trips (page reads,
	// batch reads, lookups).
	NetRequests float64
	// SerialCPUUnits is SQL-node work that PQ cannot divide (final
	// sorts, result assembly, leader-side merge).
	SerialCPUUnits float64
	// ParallelCPUUnits is SQL-node work PQ divides across workers
	// (scans, filters, joins, partial aggregation).
	ParallelCPUUnits float64
	// StoreRecords is the number of records Page Stores processed for
	// NDP (zero when NDP is off).
	StoreRecords float64
}

// Runtime computes the simulated makespan for the work at the given
// degree of parallelism.
func (m Model) Runtime(w Work, dop int) float64 {
	if dop < 1 {
		dop = 1
	}
	serial := w.SerialCPUUnits / m.CPUUnitsPerSec
	// Request latency overlaps across PQ workers; bandwidth does not.
	lat := w.NetRequests * m.NetLatencyPerReq
	parallel := (w.ParallelCPUUnits/m.CPUUnitsPerSec + lat) / float64(dop)
	netBW := w.NetBytes / m.NetBytesPerSec
	store := w.StoreRecords / m.StoreRecordsPerSec / m.StoreParallelism
	bottleneck := parallel
	if netBW > bottleneck {
		bottleneck = netBW
	}
	if store > bottleneck {
		bottleneck = store
	}
	return serial + bottleneck
}

// Reduction returns the percentage reduction of b versus a (positive
// means b is faster).
func Reduction(a, b float64) float64 {
	if a <= 0 {
		return 0
	}
	return (1 - b/a) * 100
}
