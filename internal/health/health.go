// Package health is the cluster health layer: typed invariant checks
// evaluated by per-role monitors, a phi-accrual-style failure detector
// fed by heartbeats, and the aggregation types behind /healthz, /ready,
// /cluster/health, and the taurus-doctor CLI.
//
// The package is a leaf (it imports only obs and the stdlib) so every
// tier — SAL, Log Store, Page Store, replica — can register probes
// without import cycles. Transport wiring (MsgPing/MsgHealthReport)
// lives in the cluster package, which imports this one.
package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"taurus/internal/obs"
)

// Status is a check's verdict. Ordering matters: higher is worse.
type Status int

const (
	// StatusOK means the invariant holds.
	StatusOK Status = iota
	// StatusWarn means the invariant is degrading: an operator should
	// look, the node still serves.
	StatusWarn
	// StatusCritical means the invariant is violated: the node (or a
	// dependency) needs intervention; readiness drops.
	StatusCritical
)

// String renders the status for tables and logs.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusWarn:
		return "warn"
	case StatusCritical:
		return "critical"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// MarshalJSON encodes the status as its string form.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes the string form (the doctor parses reports
// fetched over HTTP). Unknown strings decode as critical — an unknown
// verdict must not read as healthy.
func (s *Status) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"ok"`:
		*s = StatusOK
	case `"warn"`:
		*s = StatusWarn
	default:
		*s = StatusCritical
	}
	return nil
}

// Worse returns the worse of two statuses.
func Worse(a, b Status) Status {
	if b > a {
		return b
	}
	return a
}

// Check is one evaluated invariant: what was checked, the verdict, the
// numbers behind it, and the runbook key an operator follows when it is
// not OK.
type Check struct {
	// Name identifies the invariant, dotted by subsystem
	// (e.g. "pipeline.progress", "replica.lag").
	Name   string `json:"name"`
	Status Status `json:"status"`
	// Detail is the one-line human summary.
	Detail string `json:"detail,omitempty"`
	// Evidence carries the values the verdict was computed from, so a
	// non-OK check is debuggable from the report alone.
	Evidence map[string]string `json:"evidence,omitempty"`
	// Runbook keys the operator action table in the README
	// (e.g. "RB-PIPELINE-STUCK").
	Runbook string `json:"runbook,omitempty"`
}

// Checkf builds a Check with a formatted detail line.
func Checkf(name, runbook string, st Status, ev map[string]string, format string, args ...any) Check {
	return Check{Name: name, Status: st, Detail: fmt.Sprintf(format, args...),
		Evidence: ev, Runbook: runbook}
}

// Report is one node's full health view at one instant.
type Report struct {
	Node          string    `json:"node"`
	Role          string    `json:"role"`
	Time          time.Time `json:"time"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Ready         bool      `json:"ready"`
	Checks        []Check   `json:"checks"`
}

// Worst returns the worst status across the report's checks.
func (r Report) Worst() Status {
	w := StatusOK
	for _, c := range r.Checks {
		w = Worse(w, c.Status)
	}
	return w
}

// Probe evaluates one invariant. Probes run under the monitor's lock on
// the poller's goroutine (HTTP handler, heartbeat responder, or
// background loop), so they must be fast and must not block on I/O:
// read stats snapshots, compare, return. Probes that detect "no
// progress" keep their previous observation in a closure.
type Probe func() Check

// Monitor owns one node's probe set and evaluation cache. Evaluations
// are rate-limited (MinEvalInterval) so a polling storm costs one probe
// run per window; status transitions are recorded to the flight
// recorder and exported as taurus_health_check_status{check,node}.
// All methods are safe for concurrent use and safe on a nil receiver
// (a nil monitor reports an empty, ready, OK node).
type Monitor struct {
	node  string
	role  string
	start time.Time

	mu       sync.Mutex
	probes   []Probe
	minEval  time.Duration
	lastEval time.Time
	last     []Check
	prev     map[string]Status
	ready    func() bool

	events *obs.EventRing
	reg    *obs.Registry
	gauges map[string]*obs.Gauge

	loopStop chan struct{}
	loopDone chan struct{}
}

// MonitorOptions configures NewMonitor. Zero values select defaults.
type MonitorOptions struct {
	// Events receives a flight-recorder event on every check status
	// transition. Nil is inert.
	Events *obs.EventRing
	// Metrics receives taurus_health_check_status{check,node} gauges
	// (0 ok, 1 warn, 2 critical). Nil is inert.
	Metrics *obs.Registry
	// MinEvalInterval rate-limits probe evaluation (default 500ms):
	// polls inside the window serve the cached checks.
	MinEvalInterval time.Duration
}

// NewMonitor builds a monitor for one node of one role.
func NewMonitor(node, role string, opts MonitorOptions) *Monitor {
	if opts.MinEvalInterval <= 0 {
		opts.MinEvalInterval = 500 * time.Millisecond
	}
	return &Monitor{
		node: node, role: role, start: time.Now(),
		minEval: opts.MinEvalInterval,
		prev:    make(map[string]Status),
		events:  opts.Events,
		reg:     opts.Metrics,
		gauges:  make(map[string]*obs.Gauge),
	}
}

// Node returns the node name. Safe on nil.
func (m *Monitor) Node() string {
	if m == nil {
		return ""
	}
	return m.node
}

// Role returns the role name. Safe on nil.
func (m *Monitor) Role() string {
	if m == nil {
		return ""
	}
	return m.role
}

// AddProbe registers one invariant probe. Safe on nil (dropped).
func (m *Monitor) AddProbe(p Probe) {
	if m == nil || p == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.probes = append(m.probes, p)
}

// SetReady installs the readiness gate (e.g. "replica bootstrap
// finished"). Without one the node is gated only on its checks. Safe on
// nil.
func (m *Monitor) SetReady(f func() bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ready = f
}

// evaluate runs every probe if the cache expired. Caller holds m.mu.
func (m *Monitor) evaluate() {
	if time.Since(m.lastEval) < m.minEval && m.lastEval != (time.Time{}) {
		return
	}
	m.lastEval = time.Now()
	checks := make([]Check, 0, len(m.probes))
	for _, p := range m.probes {
		c := p()
		checks = append(checks, c)
		if prev, seen := m.prev[c.Name]; !seen || prev != c.Status {
			if seen || c.Status != StatusOK {
				m.events.Record("health.check", "%s %s: %s -> %s (%s)",
					m.node, c.Name, m.prev[c.Name], c.Status, c.Detail)
			}
			m.prev[c.Name] = c.Status
		}
		g := m.gauges[c.Name]
		if g == nil && m.reg != nil {
			g = m.reg.Gauge("taurus_health_check_status",
				"Latest status of one health check (0 ok, 1 warn, 2 critical).",
				obs.L("check", c.Name), obs.L("node", m.node))
			m.gauges[c.Name] = g
		}
		g.Set(float64(c.Status))
	}
	m.last = checks
}

// Report evaluates (cache permitting) and returns the node's health
// report. Safe on nil (empty ready report).
func (m *Monitor) Report() Report {
	if m == nil {
		return Report{Ready: true, Time: time.Now()}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evaluate()
	checks := make([]Check, len(m.last))
	copy(checks, m.last)
	r := Report{
		Node: m.node, Role: m.role, Time: time.Now(),
		UptimeSeconds: time.Since(m.start).Seconds(),
		Checks:        checks,
	}
	r.Ready = m.readyLocked(r)
	return r
}

func (m *Monitor) readyLocked(r Report) bool {
	if m.ready != nil && !m.ready() {
		return false
	}
	return r.Worst() != StatusCritical
}

// Worst evaluates (cache permitting) and returns the worst check
// status. Safe on nil (OK).
func (m *Monitor) Worst() Status {
	if m == nil {
		return StatusOK
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evaluate()
	w := StatusOK
	for _, c := range m.last {
		w = Worse(w, c.Status)
	}
	return w
}

// Ready reports readiness: the gate (if any) passes and no check is
// critical. Safe on nil (ready).
func (m *Monitor) Ready() bool {
	if m == nil {
		return true
	}
	return m.Report().Ready
}

// StartLoop evaluates the probes on an interval in the background, so
// transitions land in the flight recorder and metrics even when nobody
// polls the endpoints. Stop with StopLoop. Safe on nil.
func (m *Monitor) StartLoop(interval time.Duration) {
	if m == nil || interval <= 0 {
		return
	}
	m.mu.Lock()
	if m.loopStop != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.loopStop, m.loopDone = stop, done
	m.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.Worst()
			}
		}
	}()
}

// StopLoop stops the background evaluation loop. Safe on nil and
// without a running loop.
func (m *Monitor) StopLoop() {
	if m == nil {
		return
	}
	m.mu.Lock()
	stop, done := m.loopStop, m.loopDone
	m.loopStop, m.loopDone = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// ClusterView is the frontend's aggregated fleet health: its own report
// plus every tracked peer's detector state and last fetched report —
// the payload of GET /cluster/health and the doctor's input.
type ClusterView struct {
	Node  string       `json:"node"`
	Time  time.Time    `json:"time"`
	Self  Report       `json:"self"`
	Peers []PeerHealth `json:"peers"`
}

// Worst folds the whole view to one status: the self report, every
// peer's detector state (Suspect → warn, Dead → critical), the status
// its last pong carried, and its last report's checks.
func (v ClusterView) Worst() Status {
	w := v.Self.Worst()
	for _, p := range v.Peers {
		switch p.State {
		case PeerSuspect:
			w = Worse(w, StatusWarn)
		case PeerDead:
			w = Worse(w, StatusCritical)
		}
		w = Worse(w, p.PingStatus)
		if p.Report != nil {
			w = Worse(w, p.Report.Worst())
		}
	}
	return w
}

// sortEvidence renders evidence deterministically for logs/tables.
func sortEvidence(ev map[string]string) []string {
	keys := make([]string, 0, len(ev))
	for k := range ev {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k+"="+ev[k])
	}
	return out
}

// FormatCheck renders one check as a single log-friendly line.
func FormatCheck(c Check) string {
	s := fmt.Sprintf("%s %s", c.Name, c.Status)
	if c.Detail != "" {
		s += " " + c.Detail
	}
	for _, kv := range sortEvidence(c.Evidence) {
		s += " " + kv
	}
	if c.Runbook != "" && c.Status != StatusOK {
		s += " runbook=" + c.Runbook
	}
	return s
}
