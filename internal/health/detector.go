package health

import (
	"sort"
	"sync"
	"time"

	"taurus/internal/obs"
)

// PeerState is the failure detector's verdict for one peer.
type PeerState int

const (
	// PeerAlive: heartbeats are arriving on schedule.
	PeerAlive PeerState = iota
	// PeerSuspect: heartbeats stopped for at least SuspectThreshold (or
	// the phi score spiked far above the learned inter-arrival time).
	PeerSuspect
	// PeerDead: heartbeats stopped for at least 2x SuspectThreshold.
	PeerDead
)

// String renders the state for tables and metrics docs.
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	}
	return "unknown"
}

// MarshalJSON encodes the state as its string form.
func (s PeerState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes the string form; unknown strings decode as
// dead so a parse drift never reads as healthy.
func (s *PeerState) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"alive"`:
		*s = PeerAlive
	case `"suspect"`:
		*s = PeerSuspect
	default:
		*s = PeerDead
	}
	return nil
}

// phiSuspect is the accrual score above which a peer turns Suspect
// before the hard deadline: the silence is this many times the learned
// inter-arrival EWMA. High enough that a GC pause (phi ~2-3 at 1s
// heartbeats) never trips it.
const phiSuspect = 8.0

// PeerHealth is one peer's row in the cluster view.
type PeerHealth struct {
	Name  string    `json:"name"`
	Role  string    `json:"role"`
	State PeerState `json:"state"`
	// Phi is the accrual suspicion score: seconds of silence divided by
	// the EWMA of heartbeat inter-arrival seconds. ~1 is on schedule.
	Phi float64 `json:"phi"`
	// SilenceSeconds is how long since the last successful pong.
	SilenceSeconds float64 `json:"silence_seconds"`
	// PingStatus is the worst-check status the last pong carried, so an
	// alive-but-degraded peer is visible without the full report.
	PingStatus Status  `json:"ping_status"`
	Pings      uint64  `json:"pings"`
	Failures   uint64  `json:"failures"`
	Report     *Report `json:"report,omitempty"`
}

type peerEntry struct {
	name     string
	role     string
	last     time.Time // last successful pong (tracked-at before the first)
	ewma     float64   // seconds between pongs
	state    PeerState
	status   Status
	pings    uint64
	failures uint64
	report   *Report
	gauge    *obs.Gauge
	gaugeRol string
}

// Detector is a phi-accrual-style failure detector over heartbeat
// pongs. It is transport-agnostic: a pinger loop (cluster.RunHealthPinger
// over InProc or TCP) calls Observe/ObserveFailure and Sweep; anything
// may call Snapshot. States move Alive -> Suspect at SuspectThreshold of
// silence (or earlier when phi spikes) and Suspect -> Dead at 2x, so a
// killed node is provably Dead within the acceptance deadline; a pong
// from a Suspect/Dead peer revives it to Alive. Transitions are recorded
// to the flight recorder and exported as taurus_peer_state{peer,role}
// (0 alive, 1 suspect, 2 dead). Safe for concurrent use; nil receiver is
// inert.
type Detector struct {
	heartbeat time.Duration
	suspect   time.Duration
	events    *obs.EventRing
	reg       *obs.Registry
	now       func() time.Time // injectable clock for tests

	mu    sync.Mutex
	peers map[string]*peerEntry
}

// NewDetector builds a detector. heartbeat is the expected ping period
// (seeds the EWMA); suspect is the silence after which a peer turns
// Suspect, with Dead at twice that. Events/metrics may be nil.
func NewDetector(heartbeat, suspect time.Duration, events *obs.EventRing, reg *obs.Registry) *Detector {
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	if suspect <= 0 {
		suspect = 5 * time.Second
	}
	return &Detector{
		heartbeat: heartbeat,
		suspect:   suspect,
		events:    events,
		reg:       reg,
		now:       time.Now,
		peers:     make(map[string]*peerEntry),
	}
}

// SuspectThreshold returns the configured silence before Suspect.
func (d *Detector) SuspectThreshold() time.Duration {
	if d == nil {
		return 0
	}
	return d.suspect
}

// HeartbeatInterval returns the expected ping period.
func (d *Detector) HeartbeatInterval() time.Duration {
	if d == nil {
		return 0
	}
	return d.heartbeat
}

// Track starts monitoring a peer. The silence clock starts now, so a
// peer that never answers a single ping still walks Alive -> Suspect ->
// Dead. Tracking an already-tracked peer only updates its role (if the
// new one is non-empty). Safe on nil.
func (d *Detector) Track(name, role string) {
	if d == nil || name == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.peers[name]; ok {
		if role != "" {
			p.role = role
		}
		return
	}
	d.peers[name] = &peerEntry{
		name: name, role: role,
		last: d.now(),
		ewma: d.heartbeat.Seconds(),
	}
}

// Forget stops monitoring a peer (e.g. a replica detached cleanly) and
// removes its taurus_peer_state series from the registry — a detached
// peer must stop being exported, not read as alive forever. Safe on nil.
func (d *Detector) Forget(name string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.peers[name]; ok {
		d.unregisterLocked(p)
		delete(d.peers, name)
	}
}

// unregisterLocked retires p's taurus_peer_state series so a departed
// peer or a stale role binding stops scraping rather than freezing at
// its last value.
func (d *Detector) unregisterLocked(p *peerEntry) {
	if p.gauge != nil && d.reg != nil {
		d.reg.Remove("taurus_peer_state",
			obs.L("peer", p.name), obs.L("role", p.gaugeRol))
	}
	p.gauge = nil
}

// TrackedPeer names one peer a pinger loop should ping.
type TrackedPeer struct {
	Name string
	Role string
}

// Peers lists tracked peers (sorted by name) for the pinger loop. Safe
// on nil.
func (d *Detector) Peers() []TrackedPeer {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TrackedPeer, 0, len(d.peers))
	for _, p := range d.peers {
		out = append(out, TrackedPeer{Name: p.name, Role: p.role})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Observe records a successful pong. role (if non-empty) refines what
// the peer said it is; status is the worst-check status the pong
// carried. Untracked peers are auto-tracked. Safe on nil.
func (d *Detector) Observe(name, role string, status Status) {
	if d == nil || name == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.peers[name]
	if !ok {
		p = &peerEntry{name: name, last: d.now(), ewma: d.heartbeat.Seconds()}
		d.peers[name] = p
	}
	now := d.now()
	interval := now.Sub(p.last).Seconds()
	if p.pings == 0 {
		p.ewma = maxf(interval, d.heartbeat.Seconds())
	} else {
		p.ewma = 0.8*p.ewma + 0.2*interval
	}
	p.last = now
	p.pings++
	p.status = status
	if role != "" {
		p.role = role
	}
	d.transitionLocked(p, d.stateLocked(p, now))
}

// ObserveFailure records a failed ping attempt (connect refused,
// timeout). State stays silence-driven — failures are evidence in the
// snapshot, not an immediate verdict. Safe on nil.
func (d *Detector) ObserveFailure(name string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.peers[name]; ok {
		p.failures++
	}
}

// SetReport caches a peer's full health report (fetched every few
// heartbeats) for the cluster view. Safe on nil.
func (d *Detector) SetReport(name string, r Report) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.peers[name]; ok {
		rc := r
		p.report = &rc
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// stateLocked computes the silence-driven state for p at now.
func (d *Detector) stateLocked(p *peerEntry, now time.Time) PeerState {
	silence := now.Sub(p.last)
	switch {
	case silence >= 2*d.suspect:
		return PeerDead
	case silence >= d.suspect:
		return PeerSuspect
	case d.phiLocked(p, now) >= phiSuspect && silence >= 2*d.heartbeat:
		// Accrual fast path: the peer had a steady rhythm and went far
		// off it — suspect before the hard deadline.
		return PeerSuspect
	}
	return PeerAlive
}

func (d *Detector) phiLocked(p *peerEntry, now time.Time) float64 {
	base := maxf(p.ewma, 1e-3)
	return now.Sub(p.last).Seconds() / base
}

// transitionLocked applies a state change, emitting the flight-recorder
// event and updating the taurus_peer_state gauge.
func (d *Detector) transitionLocked(p *peerEntry, next PeerState) {
	if next == p.state {
		return
	}
	prev := p.state
	p.state = next
	d.events.Record("peer.state", "%s (%s): %s -> %s (silence=%.2fs phi=%.1f)",
		p.name, p.role, prev, next, d.now().Sub(p.last).Seconds(), d.phiLocked(p, d.now()))
	if d.reg != nil {
		// The role label can refine from "peer" to the real role after
		// the first pong; rebind the gauge and remove the old series so
		// the stale role stops being exported.
		if p.gauge == nil || p.gaugeRol != p.role {
			d.unregisterLocked(p)
			p.gauge = d.reg.Gauge("taurus_peer_state",
				"Failure detector state per peer (0 alive, 1 suspect, 2 dead).",
				obs.L("peer", p.name), obs.L("role", p.role))
			p.gaugeRol = p.role
		}
	}
	p.gauge.Set(float64(next))
}

// Sweep re-evaluates every peer's state against the clock. The pinger
// calls it once per heartbeat tick so Suspect/Dead transitions fire even
// when a peer is totally silent. Safe on nil.
func (d *Detector) Sweep() {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	for _, p := range d.peers {
		d.transitionLocked(p, d.stateLocked(p, now))
	}
}

// Snapshot sweeps and returns every peer's health row, sorted by name.
// Safe on nil.
func (d *Detector) Snapshot() []PeerHealth {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	out := make([]PeerHealth, 0, len(d.peers))
	for _, p := range d.peers {
		d.transitionLocked(p, d.stateLocked(p, now))
		ph := PeerHealth{
			Name: p.name, Role: p.role, State: p.state,
			Phi:            d.phiLocked(p, now),
			SilenceSeconds: now.Sub(p.last).Seconds(),
			PingStatus:     p.status,
			Pings:          p.pings,
			Failures:       p.failures,
		}
		if p.report != nil {
			rc := *p.report
			ph.Report = &rc
		}
		out = append(out, ph)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// setNow injects a fake clock (tests only).
func (d *Detector) setNow(now func() time.Time) { d.now = now }
