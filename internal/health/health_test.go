package health

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"taurus/internal/obs"
)

// scrape renders a registry's Prometheus exposition.
func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return rec.Body.String()
}

// newTestMonitor builds a monitor whose evaluation cache never serves
// stale results (1ns window), so each Report() re-runs the probes.
func newTestMonitor(events *obs.EventRing, reg *obs.Registry) *Monitor {
	return NewMonitor("node-1", "pagestore", MonitorOptions{
		Events: events, Metrics: reg, MinEvalInterval: time.Nanosecond,
	})
}

// TestMonitorReportAndTransitions checks probe evaluation, the status
// fold, readiness, and that transitions hit the flight recorder and the
// taurus_health_check_status gauge.
func TestMonitorReportAndTransitions(t *testing.T) {
	events := obs.NewEventRing(64)
	reg := obs.NewRegistry()
	m := newTestMonitor(events, reg)
	st := StatusOK
	m.AddProbe(func() Check {
		return Checkf("test.flap", "RB-TEST", st, map[string]string{"k": "v"}, "status is %s", st)
	})
	m.AddProbe(func() Check {
		return Checkf("test.steady", "RB-TEST", StatusOK, nil, "fine")
	})

	r := m.Report()
	if len(r.Checks) != 2 || r.Worst() != StatusOK || !r.Ready {
		t.Fatalf("healthy report wrong: %+v", r)
	}
	if r.Node != "node-1" || r.Role != "pagestore" {
		t.Errorf("identity wrong: %q %q", r.Node, r.Role)
	}

	st = StatusCritical
	time.Sleep(time.Millisecond) // step past the 1ns eval cache
	r = m.Report()
	if r.Worst() != StatusCritical || r.Ready {
		t.Fatalf("critical report wrong: worst=%v ready=%v", r.Worst(), r.Ready)
	}

	var sawTransition bool
	for _, e := range events.Events() {
		if e.Kind == "health.check" && strings.Contains(e.Detail, "test.flap") &&
			strings.Contains(e.Detail, "-> critical") {
			sawTransition = true
		}
	}
	if !sawTransition {
		t.Error("ok -> critical transition not in the flight recorder")
	}
	if text := scrape(t, reg); !strings.Contains(text,
		`taurus_health_check_status{check="test.flap",node="node-1"} 2`) {
		t.Errorf("gauge not exported:\n%s", text)
	}

	st = StatusOK
	time.Sleep(time.Millisecond)
	if m.Worst() != StatusOK || !m.Ready() {
		t.Error("monitor did not recover with the probe")
	}
}

// TestMonitorEvalCache checks a polling storm costs one probe run per
// MinEvalInterval window.
func TestMonitorEvalCache(t *testing.T) {
	m := NewMonitor("n", "r", MonitorOptions{MinEvalInterval: time.Hour})
	var runs int
	m.AddProbe(func() Check {
		runs++
		return Checkf("c", "", StatusOK, nil, "ok")
	})
	for i := 0; i < 50; i++ {
		m.Report()
	}
	if runs != 1 {
		t.Errorf("probe ran %d times under the cache window, want 1", runs)
	}
}

// TestMonitorReadyGate checks the explicit readiness gate (bootstrap
// not finished) forces 503 even with all checks OK.
func TestMonitorReadyGate(t *testing.T) {
	m := newTestMonitor(nil, nil)
	bootstrapped := false
	m.SetReady(func() bool { return bootstrapped })
	if m.Ready() {
		t.Fatal("ready before the gate opened")
	}
	rec := httptest.NewRecorder()
	m.ReadyHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ready", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /ready = %d, want 503", rec.Code)
	}
	bootstrapped = true
	rec = httptest.NewRecorder()
	m.ReadyHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ready", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /ready after gate = %d, want 200", rec.Code)
	}
}

// TestHealthzAlways200 checks liveness ignores check status: answering
// at all is the signal.
func TestHealthzAlways200(t *testing.T) {
	m := newTestMonitor(nil, nil)
	m.AddProbe(func() Check { return Checkf("bad", "RB", StatusCritical, nil, "down") })
	rec := httptest.NewRecorder()
	m.HealthzHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"critical"`) {
		t.Errorf("healthz body hides the status: %s", rec.Body.String())
	}
}

// TestClusterViewWorst checks the fold: suspect peers warn, dead peers
// and critical peer checks are critical.
func TestClusterViewWorst(t *testing.T) {
	ok := Report{Checks: []Check{{Name: "a", Status: StatusOK}}}
	cases := []struct {
		name string
		view ClusterView
		want Status
	}{
		{"empty", ClusterView{Self: ok}, StatusOK},
		{"suspect peer", ClusterView{Self: ok,
			Peers: []PeerHealth{{State: PeerSuspect}}}, StatusWarn},
		{"dead peer", ClusterView{Self: ok,
			Peers: []PeerHealth{{State: PeerDead}}}, StatusCritical},
		{"degraded pong", ClusterView{Self: ok,
			Peers: []PeerHealth{{State: PeerAlive, PingStatus: StatusWarn}}}, StatusWarn},
		{"critical peer check", ClusterView{Self: ok,
			Peers: []PeerHealth{{State: PeerAlive,
				Report: &Report{Checks: []Check{{Status: StatusCritical}}}}}}, StatusCritical},
		{"critical self", ClusterView{
			Self: Report{Checks: []Check{{Status: StatusCritical}}}}, StatusCritical},
	}
	for _, c := range cases {
		if got := c.view.Worst(); got != c.want {
			t.Errorf("%s: Worst() = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestClusterHandlerStatusCode checks /cluster/health answers 503 only
// once the fold is critical.
func TestClusterHandlerStatusCode(t *testing.T) {
	view := ClusterView{Self: Report{}}
	h := ClusterHandler(func() ClusterView { return view })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cluster/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy view = %d, want 200", rec.Code)
	}
	view.Peers = []PeerHealth{{Name: "ps-1", State: PeerDead}}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cluster/health", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead-peer view = %d, want 503", rec.Code)
	}
	var got ClusterView
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Peers) != 1 || got.Peers[0].State != PeerDead {
		t.Errorf("view did not round-trip: %+v", got)
	}
}

// TestStatusJSON checks the string encodings and that unknown values
// decode to the unhealthy end of each scale — parse drift between
// doctor and server versions must never read as healthy.
func TestStatusJSON(t *testing.T) {
	for _, s := range []Status{StatusOK, StatusWarn, StatusCritical} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Status
		if err := json.Unmarshal(b, &got); err != nil || got != s {
			t.Errorf("status %v round-tripped to %v (%v)", s, got, err)
		}
	}
	var st Status
	if err := json.Unmarshal([]byte(`"flourishing"`), &st); err != nil || st != StatusCritical {
		t.Errorf("unknown status decoded as %v, want critical", st)
	}
	var ps PeerState
	if err := json.Unmarshal([]byte(`"thriving"`), &ps); err != nil || ps != PeerDead {
		t.Errorf("unknown peer state decoded as %v, want dead", ps)
	}
}

// TestNilMonitor checks the nil receiver contract the role packages
// rely on before SetHealth is called.
func TestNilMonitor(t *testing.T) {
	var m *Monitor
	m.AddProbe(func() Check { return Check{} })
	m.SetReady(func() bool { return false })
	m.StartLoop(time.Second)
	m.StopLoop()
	if m.Worst() != StatusOK || !m.Ready() {
		t.Error("nil monitor is not OK/ready")
	}
	if r := m.Report(); !r.Ready || len(r.Checks) != 0 {
		t.Errorf("nil monitor report: %+v", r)
	}
}

// TestStartLoopRecordsUnpolled checks the background loop lands
// transitions in the recorder with nobody polling the endpoints.
func TestStartLoopRecordsUnpolled(t *testing.T) {
	events := obs.NewEventRing(16)
	m := NewMonitor("n", "r", MonitorOptions{Events: events, MinEvalInterval: time.Nanosecond})
	m.AddProbe(func() Check { return Checkf("c", "RB", StatusWarn, nil, "degraded") })
	m.StartLoop(time.Millisecond)
	defer m.StopLoop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, e := range events.Events() {
			if e.Kind == "health.check" && strings.Contains(e.Detail, "c:") {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background loop never recorded the warn transition")
}
