package health

import (
	"strings"
	"testing"
	"time"

	"taurus/internal/obs"
)

// fakeClock drives a Detector deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func attach(d *Detector, c *fakeClock) *fakeClock {
	d.setNow(c.now)
	return c
}

func peerByName(t *testing.T, d *Detector, name string) PeerHealth {
	t.Helper()
	for _, p := range d.Snapshot() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("peer %q not in snapshot", name)
	return PeerHealth{}
}

// TestDetectorDeadlines walks one peer Alive -> Suspect -> Dead on the
// hard silence deadlines, then revives it with a single pong.
func TestDetectorDeadlines(t *testing.T) {
	events := obs.NewEventRing(64)
	d := NewDetector(time.Second, 5*time.Second, events, nil)
	clk := attach(d, newFakeClock())
	d.Track("ps-1", "pagestore")

	d.Observe("ps-1", "pagestore", StatusOK)
	if st := peerByName(t, d, "ps-1").State; st != PeerAlive {
		t.Fatalf("after pong: %v, want alive", st)
	}

	clk.advance(4 * time.Second)
	d.Sweep()
	if st := peerByName(t, d, "ps-1").State; st != PeerAlive {
		t.Fatalf("at 4s silence: %v, want alive", st)
	}

	clk.advance(1500 * time.Millisecond) // 5.5s of silence
	d.Sweep()
	if st := peerByName(t, d, "ps-1").State; st != PeerSuspect {
		t.Fatalf("at 5.5s silence: %v, want suspect", st)
	}

	clk.advance(5 * time.Second) // 10.5s >= 2x suspect
	d.Sweep()
	p := peerByName(t, d, "ps-1")
	if p.State != PeerDead {
		t.Fatalf("at 10.5s silence: %v, want dead", p.State)
	}
	if p.SilenceSeconds < 10 {
		t.Errorf("silence = %.1fs, want >= 10", p.SilenceSeconds)
	}

	// One pong revives a dead peer.
	d.Observe("ps-1", "pagestore", StatusWarn)
	p = peerByName(t, d, "ps-1")
	if p.State != PeerAlive {
		t.Fatalf("after revival pong: %v, want alive", p.State)
	}
	if p.PingStatus != StatusWarn {
		t.Errorf("ping status = %v, want warn", p.PingStatus)
	}

	// Every transition (alive->suspect->dead->alive) hit the recorder.
	var transitions int
	for _, e := range events.Events() {
		if e.Kind == "peer.state" {
			transitions++
		}
	}
	if transitions != 3 {
		t.Errorf("recorded %d peer.state events, want 3", transitions)
	}
}

// TestDetectorSilentFromTrack checks a peer that never answers a single
// ping still walks to Dead: Track seeds the silence clock.
func TestDetectorSilentFromTrack(t *testing.T) {
	d := NewDetector(time.Second, 5*time.Second, nil, nil)
	clk := attach(d, newFakeClock())
	d.Track("log-9", "logstore")
	clk.advance(11 * time.Second)
	d.Sweep()
	if st := peerByName(t, d, "log-9").State; st != PeerDead {
		t.Fatalf("silent-from-track peer: %v, want dead", st)
	}
}

// TestDetectorPhiFastPath checks the accrual shortcut: a peer with a
// learned steady rhythm turns Suspect when phi spikes, well before the
// hard deadline.
func TestDetectorPhiFastPath(t *testing.T) {
	// Suspect threshold is a full minute, so only phi can trip early.
	d := NewDetector(time.Second, time.Minute, nil, nil)
	clk := attach(d, newFakeClock())
	d.Track("rep-1", "replica")
	for i := 0; i < 10; i++ {
		clk.advance(time.Second)
		d.Observe("rep-1", "replica", StatusOK)
	}
	// 9s of silence: phi ~9 over a ~1s EWMA, and >= 2x heartbeat.
	clk.advance(9 * time.Second)
	d.Sweep()
	p := peerByName(t, d, "rep-1")
	if p.State != PeerSuspect {
		t.Fatalf("phi fast path: state %v (phi %.1f), want suspect", p.State, p.Phi)
	}
	if p.Phi < phiSuspect {
		t.Errorf("phi = %.1f, want >= %.0f", p.Phi, phiSuspect)
	}
}

// TestDetectorObserveFailureDoesNotKill checks failed ping attempts are
// evidence only: a peer that answers (slowly) through failures stays
// Alive because state is silence-driven.
func TestDetectorObserveFailureDoesNotKill(t *testing.T) {
	d := NewDetector(time.Second, 5*time.Second, nil, nil)
	clk := attach(d, newFakeClock())
	d.Track("ps-2", "pagestore")
	for i := 0; i < 5; i++ {
		clk.advance(time.Second)
		d.ObserveFailure("ps-2")
		d.Observe("ps-2", "pagestore", StatusOK)
	}
	p := peerByName(t, d, "ps-2")
	if p.State != PeerAlive {
		t.Fatalf("state = %v, want alive", p.State)
	}
	if p.Failures != 5 || p.Pings != 5 {
		t.Errorf("failures/pings = %d/%d, want 5/5", p.Failures, p.Pings)
	}
}

// TestDetectorForget checks a cleanly-detached peer leaves the
// snapshot and the pinger's peer list.
func TestDetectorForget(t *testing.T) {
	d := NewDetector(time.Second, 5*time.Second, nil, nil)
	attach(d, newFakeClock())
	d.Track("rep-1", "replica")
	d.Track("rep-2", "replica")
	d.Forget("rep-1")
	if got := len(d.Peers()); got != 1 {
		t.Fatalf("%d tracked peers after Forget, want 1", got)
	}
	if d.Peers()[0].Name != "rep-2" {
		t.Errorf("wrong peer survived: %v", d.Peers())
	}
}

// TestDetectorGaugeExport checks taurus_peer_state lands in the
// registry with peer/role labels and tracks the state value.
func TestDetectorGaugeExport(t *testing.T) {
	reg := obs.NewRegistry()
	d := NewDetector(time.Second, 5*time.Second, nil, reg)
	clk := attach(d, newFakeClock())
	d.Track("ps-1", "pagestore")
	d.Observe("ps-1", "pagestore", StatusOK)
	clk.advance(11 * time.Second)
	d.Sweep()
	text := scrape(t, reg)
	want := `taurus_peer_state{peer="ps-1",role="pagestore"} 2`
	if !strings.Contains(text, want) {
		t.Errorf("exposition missing %q:\n%s", want, text)
	}
	// A forgotten peer's series leaves the exposition entirely — it must
	// not linger reading 0 (the "alive" encoding) after a clean detach.
	d.Forget("ps-1")
	if text := scrape(t, reg); strings.Contains(text, `peer="ps-1"`) {
		t.Errorf("forgotten peer still exported:\n%s", text)
	}
}

// TestDetectorRoleRebindRemovesStaleSeries checks the placeholder-role
// series is removed (not frozen at "alive") when the first pong refines
// the peer's role.
func TestDetectorRoleRebindRemovesStaleSeries(t *testing.T) {
	reg := obs.NewRegistry()
	d := NewDetector(time.Second, 5*time.Second, nil, reg)
	clk := attach(d, newFakeClock())
	d.Track("n-1", "peer")
	// Silence long enough to transition (and bind the gauge) under the
	// placeholder role, then a pong that both revives and renames.
	clk.advance(11 * time.Second)
	d.Sweep()
	if text := scrape(t, reg); !strings.Contains(text, `{peer="n-1",role="peer"}`) {
		t.Fatalf("placeholder-role series missing:\n%s", text)
	}
	d.Observe("n-1", "pagestore", StatusOK)
	text := scrape(t, reg)
	if strings.Contains(text, `role="peer"`) {
		t.Errorf("stale placeholder-role series still exported:\n%s", text)
	}
	if !strings.Contains(text, `taurus_peer_state{peer="n-1",role="pagestore"} 0`) {
		t.Errorf("rebound series missing:\n%s", text)
	}
}

// TestDetectorNil checks every method is inert on a nil receiver — the
// replica side holds a nil detector.
func TestDetectorNil(t *testing.T) {
	var d *Detector
	d.Track("x", "y")
	d.Observe("x", "y", StatusOK)
	d.ObserveFailure("x")
	d.SetReport("x", Report{})
	d.Forget("x")
	d.Sweep()
	if d.Snapshot() != nil || d.Peers() != nil {
		t.Error("nil detector returned non-nil slices")
	}
	if d.SuspectThreshold() != 0 || d.HeartbeatInterval() != 0 {
		t.Error("nil detector returned non-zero durations")
	}
}
