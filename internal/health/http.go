package health

import (
	"encoding/json"
	"net/http"
)

// HealthzHandler serves GET /healthz — liveness. The process answering
// at all is the signal, so the status code is always 200; the body
// carries the worst check status so curl output is still informative.
func (m *Monitor) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": m.Worst(),
			"node":   m.Node(),
			"role":   m.Role(),
		})
	})
}

// ReadyHandler serves GET /ready — readiness. 200 when the node's gate
// passes (recovery done, bootstrap finished) and no check is critical;
// 503 otherwise, with the failing checks in the body so the caller
// knows why.
func (m *Monitor) ReadyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := m.Report()
		code := http.StatusOK
		if !r.Ready {
			code = http.StatusServiceUnavailable
		}
		failing := make([]Check, 0)
		for _, c := range r.Checks {
			if c.Status != StatusOK {
				failing = append(failing, c)
			}
		}
		writeJSON(w, code, map[string]any{
			"ready":  r.Ready,
			"node":   r.Node,
			"role":   r.Role,
			"checks": failing,
		})
	})
}

// ReportHandler serves GET /health — the node's full check report.
func (m *Monitor) ReportHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, m.Report())
	})
}

// ClusterHandler serves GET /cluster/health from a view callback (the
// frontend aggregates its own report with the failure detector's peer
// table). Status code is 200 while everything is OK, 503 once the fold
// is critical (a dead peer, a critical check anywhere) so scripts can
// gate on the code alone.
func ClusterHandler(view func() ClusterView) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		v := view()
		code := http.StatusOK
		if v.Worst() == StatusCritical {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, v)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
