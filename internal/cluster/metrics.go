package cluster

import (
	"sync"
	"time"

	"taurus/internal/obs"
)

// String names the message type for metric labels and logs.
func (t MsgType) String() string {
	switch t {
	case MsgWriteLogs:
		return "MsgWriteLogs"
	case MsgReadPage:
		return "MsgReadPage"
	case MsgBatchRead:
		return "MsgBatchRead"
	case MsgLogAppend:
		return "MsgLogAppend"
	case MsgCreateSlice:
		return "MsgCreateSlice"
	case MsgResp:
		return "MsgResp"
	case MsgErr:
		return "MsgErr"
	case MsgPageLSN:
		return "MsgPageLSN"
	case MsgLogTruncate:
		return "MsgLogTruncate"
	case MsgLogRead:
		return "MsgLogRead"
	case MsgLSNAdvance:
		return "MsgLSNAdvance"
	case MsgSliceLSN:
		return "MsgSliceLSN"
	case MsgLogSubscribe:
		return "MsgLogSubscribe"
	case MsgLogUnsubscribe:
		return "MsgLogUnsubscribe"
	case MsgLogBatch:
		return "MsgLogBatch"
	case MsgFrontier:
		return "MsgFrontier"
	case MsgVersionPin:
		return "MsgVersionPin"
	case MsgPing:
		return "MsgPing"
	case MsgHealthReport:
		return "MsgHealthReport"
	}
	return "MsgUnknown"
}

// rpcInstruments is the per-MsgType instrument set, resolved once and
// cached so the per-call cost is a map read under RLock plus atomics.
type rpcInstruments struct {
	requests  *obs.Counter
	errors    *obs.Counter
	reqBytes  *obs.Counter
	respBytes *obs.Counter
	latency   *obs.Histogram
}

// RPCMetrics attributes transport traffic per message type: request
// count, request/response bytes, errors, and a latency histogram for
// each MsgType. side distinguishes the caller ("client") from the
// serving loop ("server") when both run in one process. A nil
// *RPCMetrics is valid and free.
type RPCMetrics struct {
	mu     sync.RWMutex
	reg    *obs.Registry
	side   string
	byType map[MsgType]*rpcInstruments
}

// NewRPCMetrics registers the per-type RPC metric families in reg.
// Returns nil (disabled) when reg is nil.
func NewRPCMetrics(reg *obs.Registry, side string) *RPCMetrics {
	if reg == nil {
		return nil
	}
	return &RPCMetrics{reg: reg, side: side, byType: make(map[MsgType]*rpcInstruments)}
}

func (m *RPCMetrics) instruments(t MsgType) *rpcInstruments {
	m.mu.RLock()
	ins := m.byType[t]
	m.mu.RUnlock()
	if ins != nil {
		return ins
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ins = m.byType[t]; ins != nil {
		return ins
	}
	labels := []obs.Label{obs.L("type", t.String()), obs.L("side", m.side)}
	ins = &rpcInstruments{
		requests:  m.reg.Counter("taurus_rpc_requests_total", "RPC requests by message type.", labels...),
		errors:    m.reg.Counter("taurus_rpc_errors_total", "RPC requests that returned an error, by message type.", labels...),
		reqBytes:  m.reg.Counter("taurus_rpc_request_bytes_total", "Request payload bytes (incl. framing) by message type.", labels...),
		respBytes: m.reg.Counter("taurus_rpc_response_bytes_total", "Response payload bytes (incl. framing) by message type.", labels...),
		latency:   m.reg.Histogram("taurus_rpc_latency_seconds", "RPC round-trip latency by message type.", nil, labels...),
	}
	m.byType[t] = ins
	return ins
}

// observe records one completed call. Safe on a nil receiver.
func (m *RPCMetrics) observe(t MsgType, reqLen, respLen int, d time.Duration, isErr bool) {
	if m == nil {
		return
	}
	ins := m.instruments(t)
	ins.requests.Inc()
	ins.reqBytes.Add(uint64(reqLen) + frameOverhead)
	ins.respBytes.Add(uint64(respLen) + frameOverhead)
	ins.latency.ObserveDuration(d)
	if isErr {
		ins.errors.Inc()
	}
}

// RPCTypeStats is a point-in-time per-MsgType traffic summary.
type RPCTypeStats struct {
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	RequestBytes uint64  `json:"request_bytes"`
	ReplyBytes   uint64  `json:"reply_bytes"`
	LatencyP50   float64 `json:"latency_p50_s"`
	LatencyP99   float64 `json:"latency_p99_s"`
	LatencyMax   float64 `json:"latency_max_s"`
}

// Snapshot returns per-MsgType stats keyed by type name. Safe on a nil
// receiver (returns nil).
func (m *RPCMetrics) Snapshot() map[string]RPCTypeStats {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]RPCTypeStats, len(m.byType))
	for t, ins := range m.byType {
		h := ins.latency.Snapshot()
		out[t.String()] = RPCTypeStats{
			Requests:     ins.requests.Value(),
			Errors:       ins.errors.Value(),
			RequestBytes: ins.reqBytes.Value(),
			ReplyBytes:   ins.respBytes.Value(),
			LatencyP50:   h.P50,
			LatencyP99:   h.P99,
			LatencyMax:   h.Max,
		}
	}
	return out
}
