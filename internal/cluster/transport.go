package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"taurus/internal/obs"
)

// Handler is the server side of a storage service: it receives a decoded
// request and returns a response struct (one of Ack, PageResp,
// BatchReadResp) or an error.
type Handler interface {
	Handle(req any) (any, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req any) (any, error)

// Handle calls f(req).
func (f HandlerFunc) Handle(req any) (any, error) { return f(req) }

// TracedHandler is optionally implemented by services that open
// server-side child spans. When a sampled frame arrives, transports
// prefer HandleTraced; plain Handle remains the untraced fast path.
type TracedHandler interface {
	Handler
	HandleTraced(tc obs.TraceContext, req any) (any, error)
}

// Transport routes requests to named nodes.
type Transport interface {
	// Call sends req to the node and returns its decoded response.
	Call(node string, req any) (any, error)
}

// TracedTransport is a Transport that can stamp a trace context onto
// the wire. InProc and TCPClient implement it.
type TracedTransport interface {
	Transport
	// CallTraced is Call with a propagated trace context attached to
	// the request frame.
	CallTraced(tc obs.TraceContext, node string, req any) (any, error)
}

// CallTraced sends req through t, attaching tc when the transport
// supports tracing and tc is sampled. Wrapper transports that only
// implement Call degrade to an untraced send.
func CallTraced(t Transport, tc obs.TraceContext, node string, req any) (any, error) {
	if tc.Valid() {
		if tt, ok := t.(TracedTransport); ok {
			return tt.CallTraced(tc, node, req)
		}
	}
	return t.Call(node, req)
}

// dispatch routes a decoded request to the handler, preferring the
// traced entry point when the frame carried a sampled context.
func dispatch(h Handler, tc obs.TraceContext, req any) (any, error) {
	if tc.Valid() {
		if th, ok := h.(TracedHandler); ok {
			return th.HandleTraced(tc, req)
		}
	}
	return h.Handle(req)
}

// spanContext returns the context children should inherit: the
// client-side rpc span when one was opened, else the caller's own.
func spanContext(sp *obs.SpanHandle, fallback obs.TraceContext) obs.TraceContext {
	if sp != nil {
		return sp.Context()
	}
	return fallback
}

// Counters accumulates traffic statistics. All fields are atomic; read
// with Snapshot.
type Counters struct {
	BytesSent     atomic.Uint64 // request bytes, SQL node → storage
	BytesReceived atomic.Uint64 // response bytes, storage → SQL node
	Requests      atomic.Uint64
	BatchReads    atomic.Uint64
	PageReads     atomic.Uint64
	LogWrites     atomic.Uint64
}

// CountersSnapshot is a point-in-time copy of the counters.
type CountersSnapshot struct {
	BytesSent     uint64
	BytesReceived uint64
	Requests      uint64
	BatchReads    uint64
	PageReads     uint64
	LogWrites     uint64
}

// Snapshot copies current values.
func (c *Counters) Snapshot() CountersSnapshot {
	return CountersSnapshot{
		BytesSent:     c.BytesSent.Load(),
		BytesReceived: c.BytesReceived.Load(),
		Requests:      c.Requests.Load(),
		BatchReads:    c.BatchReads.Load(),
		PageReads:     c.PageReads.Load(),
		LogWrites:     c.LogWrites.Load(),
	}
}

// Sub returns the delta s - o, for before/after measurements around a
// query.
func (s CountersSnapshot) Sub(o CountersSnapshot) CountersSnapshot {
	return CountersSnapshot{
		BytesSent:     s.BytesSent - o.BytesSent,
		BytesReceived: s.BytesReceived - o.BytesReceived,
		Requests:      s.Requests - o.Requests,
		BatchReads:    s.BatchReads - o.BatchReads,
		PageReads:     s.PageReads - o.PageReads,
		LogWrites:     s.LogWrites - o.LogWrites,
	}
}

func (c *Counters) account(t MsgType, reqLen, respLen int) {
	c.BytesSent.Add(uint64(reqLen) + frameOverhead)
	c.BytesReceived.Add(uint64(respLen) + frameOverhead)
	c.Requests.Add(1)
	switch t {
	case MsgBatchRead:
		c.BatchReads.Add(1)
	case MsgReadPage:
		c.PageReads.Add(1)
	case MsgWriteLogs, MsgLogAppend:
		c.LogWrites.Add(1)
	}
}

// frameOverhead approximates per-message framing (length prefix + type).
const frameOverhead = 5

// InProc is an in-process transport. Every call serializes the request
// and response through the wire codec, so byte accounting matches what a
// real network would carry, and handlers cannot accidentally share memory
// with callers.
type InProc struct {
	mu    sync.RWMutex
	nodes map[string]Handler
	// Stats is the traffic ledger for everything sent through this
	// transport.
	Stats Counters
	// Metrics, when non-nil, attributes every call per MsgType (count,
	// bytes, latency). Set before first use; nil is free.
	Metrics *RPCMetrics
	// Tracer, when non-nil, records a client-side rpc:<MsgType> span for
	// every sampled call. Set before first use; nil is free.
	Tracer *obs.Tracer
}

// NewInProc returns an empty in-process fabric.
func NewInProc() *InProc {
	return &InProc{nodes: make(map[string]Handler)}
}

// Register attaches a service implementation under a node name.
func (t *InProc) Register(node string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[node] = h
}

// Unregister detaches a node (a closed read replica); calls to it fail
// with unknown-node afterwards.
func (t *InProc) Unregister(node string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.nodes, node)
}

// Call implements Transport.
func (t *InProc) Call(node string, req any) (any, error) {
	return t.CallTraced(obs.TraceContext{}, node, req)
}

// CallTraced implements TracedTransport. The trace header is wrapped
// and unwrapped through the same wire form TCP carries, so the
// in-process fabric exercises identical bytes.
func (t *InProc) CallTraced(tc obs.TraceContext, node string, req any) (any, error) {
	t.mu.RLock()
	h, ok := t.nodes[node]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", node)
	}
	msgType, body, err := EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	var sp *obs.SpanHandle
	if tc.Valid() {
		sp = t.Tracer.StartSpan(tc, "rpc:"+msgType.String())
		defer sp.End()
	}
	wireType, wireBody := wrapTrace(msgType, body, spanContext(sp, tc))
	rawType, rawBody, wireTC, err := unwrapTrace(wireType, wireBody)
	if err != nil {
		return nil, err
	}
	decoded, err := DecodeRequest(rawType, rawBody)
	if err != nil {
		return nil, err
	}
	var t0 time.Time
	if t.Metrics != nil {
		t0 = time.Now()
	}
	resp, handlerErr := dispatch(h, wireTC, decoded)
	respType, respBody, err := EncodeResponse(resp, handlerErr)
	if err != nil {
		return nil, err
	}
	t.Stats.account(msgType, len(wireBody), len(respBody))
	if t.Metrics != nil {
		t.Metrics.observe(msgType, len(wireBody), len(respBody), time.Since(t0), handlerErr != nil)
	}
	return DecodeResponse(respType, respBody)
}
