package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"taurus/internal/obs"
)

// TCP transport: length-prefixed frames over net.Conn. Frame layout:
//
//	[4-byte little-endian body length][1-byte MsgType][body]
//
// The same codec as InProc, so servers can be moved between in-process
// and TCP deployment without behavioural change. cmd/taurus-server runs a
// Page Store behind this transport.

// maxFrame bounds a single message; batch reads of a thousand 16 KB pages
// fit comfortably.
const maxFrame = 64 << 20

func writeFrame(w io.Writer, t MsgType, body []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return MsgType(hdr[4]), body, nil
}

// Serve runs a service on the listener until the listener is closed.
// Each connection is handled by its own goroutine; requests on one
// connection are processed serially.
func Serve(l net.Listener, h Handler) error {
	return ServeMetrics(l, h, nil)
}

// ServeMetrics is Serve with optional per-MsgType attribution of every
// request handled (count, bytes, handler latency). m may be nil.
func ServeMetrics(l net.Listener, h Handler, m *RPCMetrics) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, h, m)
	}
}

func serveConn(conn net.Conn, h Handler, m *RPCMetrics) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	for {
		t, body, err := readFrame(br)
		if err != nil {
			return // connection closed or broken
		}
		t, body, tc, err := unwrapTrace(t, body)
		var req any
		if err == nil {
			req, err = DecodeRequest(t, body)
		}
		var resp any
		var handlerErr error
		var t0 time.Time
		if m != nil {
			t0 = time.Now()
		}
		if err != nil {
			handlerErr = err
		} else {
			resp, handlerErr = dispatch(h, tc, req)
		}
		respType, respBody, err := EncodeResponse(resp, handlerErr)
		if err != nil {
			respType, respBody = MsgErr, []byte(err.Error())
		}
		if m != nil {
			m.observe(t, len(body), len(respBody), time.Since(t0), handlerErr != nil)
		}
		if err := writeFrame(bw, respType, respBody); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// TCPClient is a Transport whose node names are "host:port" addresses.
// One pooled connection per address; calls on the same connection are
// serialized.
type TCPClient struct {
	mu    sync.Mutex
	conns map[string]*tcpConn
	// dialing marks addresses with a dial in flight; waiters block on
	// the channel instead of on mu, so a slow dial to one address never
	// stalls calls to others.
	dialing map[string]chan struct{}
	// Stats ledgers traffic exactly as InProc does.
	Stats Counters
	// Metrics, when non-nil, attributes every call per MsgType. Set
	// before first use; nil is free.
	Metrics *RPCMetrics
	// Tracer, when non-nil, records a client-side rpc:<MsgType> span for
	// every sampled call. Set before first use; nil is free.
	Tracer *obs.Tracer
	// DialTimeout bounds connection establishment; zero dials without a
	// bound. Set before first use.
	DialTimeout time.Duration
	// CallTimeout bounds each request/response round trip via connection
	// deadlines; a call that exceeds it fails and drops the pooled
	// connection. Zero leaves calls unbounded. Health pingers must set
	// this: a peer that black-holes traffic (partition, SIGSTOP) would
	// otherwise block a Call forever instead of failing. Set before
	// first use.
	CallTimeout time.Duration
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewTCPClient returns an empty client pool.
func NewTCPClient() *TCPClient {
	return &TCPClient{
		conns:   make(map[string]*tcpConn),
		dialing: make(map[string]chan struct{}),
	}
}

// Close shuts all pooled connections.
func (c *TCPClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tc := range c.conns {
		tc.conn.Close()
	}
	c.conns = make(map[string]*tcpConn)
}

// get returns the pooled connection for addr, dialing one if needed.
// The dial happens outside the pool lock: concurrent callers to the
// same address wait for the one in-flight dial, while callers to other
// addresses proceed untouched — a black-holed peer must not be able to
// stall the whole pool for up to DialTimeout per attempt.
func (c *TCPClient) get(addr string) (*tcpConn, error) {
	for {
		c.mu.Lock()
		if tc, ok := c.conns[addr]; ok {
			c.mu.Unlock()
			return tc, nil
		}
		pending, ok := c.dialing[addr]
		if ok {
			c.mu.Unlock()
			<-pending // another caller is dialing; re-check when it settles
			continue
		}
		pending = make(chan struct{})
		c.dialing[addr] = pending
		c.mu.Unlock()

		conn, err := net.DialTimeout("tcp", addr, c.DialTimeout)
		c.mu.Lock()
		delete(c.dialing, addr)
		close(pending)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		tc := &tcpConn{
			conn: conn,
			br:   bufio.NewReaderSize(conn, 1<<16),
			bw:   bufio.NewWriterSize(conn, 1<<16),
		}
		c.conns[addr] = tc
		c.mu.Unlock()
		return tc, nil
	}
}

// Call implements Transport over TCP.
func (c *TCPClient) Call(addr string, req any) (any, error) {
	return c.CallTraced(obs.TraceContext{}, addr, req)
}

// CallTraced implements TracedTransport: a sampled context rides the
// request frame as the optional trace header.
func (c *TCPClient) CallTraced(trace obs.TraceContext, addr string, req any) (any, error) {
	msgType, body, err := EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	var sp *obs.SpanHandle
	if trace.Valid() {
		sp = c.Tracer.StartSpan(trace, "rpc:"+msgType.String())
		defer sp.End()
	}
	wireType, wireBody := wrapTrace(msgType, body, spanContext(sp, trace))
	tc, err := c.get(addr)
	if err != nil {
		return nil, err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var t0 time.Time
	if c.Metrics != nil {
		t0 = time.Now()
	}
	if c.CallTimeout > 0 {
		tc.conn.SetDeadline(time.Now().Add(c.CallTimeout))
	}
	if err := writeFrame(tc.bw, wireType, wireBody); err != nil {
		c.drop(addr, tc)
		return nil, err
	}
	if err := tc.bw.Flush(); err != nil {
		c.drop(addr, tc)
		return nil, err
	}
	respType, respBody, err := readFrame(tc.br)
	if err != nil {
		c.drop(addr, tc)
		return nil, err
	}
	if c.CallTimeout > 0 {
		tc.conn.SetDeadline(time.Time{})
	}
	c.Stats.account(msgType, len(wireBody), len(respBody))
	c.Metrics.observe(msgType, len(wireBody), len(respBody), time.Since(t0), respType == MsgErr)
	return DecodeResponse(respType, respBody)
}

// drop retires tc after a failed call. The identity check matters: a
// second caller that failed on the same (already replaced) connection
// must not tear down the fresh one a third caller just dialed.
func (c *TCPClient) drop(addr string, tc *tcpConn) {
	tc.conn.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conns[addr] == tc {
		delete(c.conns, addr)
	}
}
