package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"taurus/internal/obs"
)

// TCP transport: length-prefixed frames over net.Conn. Frame layout:
//
//	[4-byte little-endian body length][1-byte MsgType][body]
//
// The same codec as InProc, so servers can be moved between in-process
// and TCP deployment without behavioural change. cmd/taurus-server runs a
// Page Store behind this transport.

// maxFrame bounds a single message; batch reads of a thousand 16 KB pages
// fit comfortably.
const maxFrame = 64 << 20

func writeFrame(w io.Writer, t MsgType, body []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return MsgType(hdr[4]), body, nil
}

// Serve runs a service on the listener until the listener is closed.
// Each connection is handled by its own goroutine; requests on one
// connection are processed serially.
func Serve(l net.Listener, h Handler) error {
	return ServeMetrics(l, h, nil)
}

// ServeMetrics is Serve with optional per-MsgType attribution of every
// request handled (count, bytes, handler latency). m may be nil.
func ServeMetrics(l net.Listener, h Handler, m *RPCMetrics) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, h, m)
	}
}

func serveConn(conn net.Conn, h Handler, m *RPCMetrics) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	for {
		t, body, err := readFrame(br)
		if err != nil {
			return // connection closed or broken
		}
		t, body, tc, err := unwrapTrace(t, body)
		var req any
		if err == nil {
			req, err = DecodeRequest(t, body)
		}
		var resp any
		var handlerErr error
		var t0 time.Time
		if m != nil {
			t0 = time.Now()
		}
		if err != nil {
			handlerErr = err
		} else {
			resp, handlerErr = dispatch(h, tc, req)
		}
		respType, respBody, err := EncodeResponse(resp, handlerErr)
		if err != nil {
			respType, respBody = MsgErr, []byte(err.Error())
		}
		if m != nil {
			m.observe(t, len(body), len(respBody), time.Since(t0), handlerErr != nil)
		}
		if err := writeFrame(bw, respType, respBody); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// TCPClient is a Transport whose node names are "host:port" addresses.
// One pooled connection per address; calls on the same connection are
// serialized.
type TCPClient struct {
	mu    sync.Mutex
	conns map[string]*tcpConn
	// Stats ledgers traffic exactly as InProc does.
	Stats Counters
	// Metrics, when non-nil, attributes every call per MsgType. Set
	// before first use; nil is free.
	Metrics *RPCMetrics
	// Tracer, when non-nil, records a client-side rpc:<MsgType> span for
	// every sampled call. Set before first use; nil is free.
	Tracer *obs.Tracer
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// NewTCPClient returns an empty client pool.
func NewTCPClient() *TCPClient {
	return &TCPClient{conns: make(map[string]*tcpConn)}
}

// Close shuts all pooled connections.
func (c *TCPClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tc := range c.conns {
		tc.conn.Close()
	}
	c.conns = make(map[string]*tcpConn)
}

func (c *TCPClient) get(addr string) (*tcpConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tc, ok := c.conns[addr]; ok {
		return tc, nil
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	c.conns[addr] = tc
	return tc, nil
}

// Call implements Transport over TCP.
func (c *TCPClient) Call(addr string, req any) (any, error) {
	return c.CallTraced(obs.TraceContext{}, addr, req)
}

// CallTraced implements TracedTransport: a sampled context rides the
// request frame as the optional trace header.
func (c *TCPClient) CallTraced(trace obs.TraceContext, addr string, req any) (any, error) {
	msgType, body, err := EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	var sp *obs.SpanHandle
	if trace.Valid() {
		sp = c.Tracer.StartSpan(trace, "rpc:"+msgType.String())
		defer sp.End()
	}
	wireType, wireBody := wrapTrace(msgType, body, spanContext(sp, trace))
	tc, err := c.get(addr)
	if err != nil {
		return nil, err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var t0 time.Time
	if c.Metrics != nil {
		t0 = time.Now()
	}
	if err := writeFrame(tc.bw, wireType, wireBody); err != nil {
		c.drop(addr)
		return nil, err
	}
	if err := tc.bw.Flush(); err != nil {
		c.drop(addr)
		return nil, err
	}
	respType, respBody, err := readFrame(tc.br)
	if err != nil {
		c.drop(addr)
		return nil, err
	}
	c.Stats.account(msgType, len(wireBody), len(respBody))
	c.Metrics.observe(msgType, len(wireBody), len(respBody), time.Since(t0), respType == MsgErr)
	return DecodeResponse(respType, respBody)
}

func (c *TCPClient) drop(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tc, ok := c.conns[addr]; ok {
		tc.conn.Close()
		delete(c.conns, addr)
	}
}
