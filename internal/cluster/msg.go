// Package cluster provides the network layer between the compute node
// (SAL) and the storage services (Log Stores and Page Stores): message
// codecs, an in-process transport with exact byte accounting, and a TCP
// transport.
//
// Both transports serialize every request and response through the same
// binary codec, so the byte counters measure exactly what would cross a
// real network. Those counters are the basis of the paper's
// network-traffic figures (Figs. 5 and 7): NDP's primary effect is that
// "data filtered out in Page Stores never travels over the wire".
package cluster

import (
	"encoding/binary"
	"fmt"

	"taurus/internal/health"
	"taurus/internal/obs"
)

// MsgType tags frames on the wire.
type MsgType uint8

const (
	// MsgWriteLogs carries redo records from the SAL to a Page Store
	// replica of one slice.
	MsgWriteLogs MsgType = iota + 1
	// MsgReadPage requests a single page at an LSN.
	MsgReadPage
	// MsgBatchRead requests a batch of pages at an LSN, optionally with
	// an NDP descriptor for near-data processing.
	MsgBatchRead
	// MsgLogAppend carries redo records to a Log Store for durability.
	MsgLogAppend
	// MsgCreateSlice asks a Page Store to host a new slice.
	MsgCreateSlice
	// MsgResp tags all successful responses; MsgErr tags failures.
	MsgResp
	MsgErr
	// MsgPageLSN asks a Page Store for a tenant's applied/persisted LSN
	// frontier (the input to the cluster-wide log GC watermark).
	MsgPageLSN
	// MsgLogTruncate asks a Log Store to garbage-collect records below
	// a watermark.
	MsgLogTruncate
	// MsgLogRead tails a Log Store: records above an LSN flow back to a
	// read replica ("They also serve log records to read replicas", §II).
	MsgLogRead
	// MsgLSNAdvance notifies a read replica that the master's durable
	// watermark advanced, so it can tail the Log Stores immediately
	// instead of waiting for its poll interval.
	MsgLSNAdvance
	// MsgSliceLSN asks a Page Store for the per-slice applied LSN
	// frontier of a tenant — the input to a read replica's visible LSN.
	MsgSliceLSN
	// MsgLogSubscribe attaches a read replica to a Log Store's push
	// stream: the store's hub multicasts framed record batches
	// (MsgLogBatch) to the subscriber's transport node from FromLSN on,
	// retiring the replica's MsgLogRead polling.
	MsgLogSubscribe
	// MsgLogUnsubscribe detaches a subscriber from the push stream.
	MsgLogUnsubscribe
	// MsgLogBatch is one pushed stream frame, Log Store → subscriber:
	// new records plus piggybacked durable-LSN and per-slice applied
	// frontiers (retiring MsgSliceLSN polling too).
	MsgLogBatch
	// MsgFrontier carries the master SAL's durable watermark and
	// per-slice applied frontier to the Log Stores — O(#LogStores) per
	// advance instead of O(#replicas) — where the stream hubs piggyback
	// it on the next pushed batch.
	MsgFrontier
	// MsgVersionPin lets a subscribed replica pin a Page Store version
	// floor (its visible LSN): version-chain trimming keeps the newest
	// image at or below every pin, so a lagging replica's reads stop
	// missing trimmed versions. LSN 0 clears the node's pin.
	MsgVersionPin
	// MsgPing is the health heartbeat: a tiny request answered from
	// memory whose pong carries the target's role and worst-check
	// status. The failure detector's Alive/Suspect/Dead verdicts are
	// driven by these.
	MsgPing
	// MsgHealthReport fetches a node's full health check report
	// (typed checks with evidence and runbook keys), sent every few
	// heartbeats and aggregated by the frontend into /cluster/health.
	MsgHealthReport
)

// Optional trace header. A request frame whose type byte has traceFlag
// set carries a fixed trace header before the body:
//
//	[type|0x80][8-byte LE TraceID][8-byte LE SpanID][1-byte flags][body]
//
// flags bit 0 = sampled. Untraced frames are byte-identical to the
// pre-trace wire format, and receivers ignore the flag bit for types
// they don't know — so old senders interoperate with new receivers and
// vice versa (mixed-version safe). Responses never carry the header:
// server-side spans stay in the server's own collector and are joined
// by trace ID at assembly time. MsgType values stay below 0x80.
const (
	traceFlag      MsgType = 0x80
	traceHeaderLen         = 17
)

// wrapTrace prefixes body with a trace header when tc is sampled;
// otherwise the frame is returned untouched.
func wrapTrace(t MsgType, body []byte, tc obs.TraceContext) (MsgType, []byte) {
	if !tc.Valid() {
		return t, body
	}
	out := make([]byte, traceHeaderLen+len(body))
	binary.LittleEndian.PutUint64(out[0:8], tc.TraceID)
	binary.LittleEndian.PutUint64(out[8:16], tc.SpanID)
	out[16] = 1 // sampled
	copy(out[traceHeaderLen:], body)
	return t | traceFlag, out
}

// unwrapTrace strips the trace header if the flag bit is set. Frames
// without the flag (every pre-trace sender) pass through unchanged
// with a zero context.
func unwrapTrace(t MsgType, body []byte) (MsgType, []byte, obs.TraceContext, error) {
	if t&traceFlag == 0 {
		return t, body, obs.TraceContext{}, nil
	}
	if len(body) < traceHeaderLen {
		return 0, nil, obs.TraceContext{}, fmt.Errorf("cluster: traced frame body %d bytes, shorter than %d-byte trace header", len(body), traceHeaderLen)
	}
	tc := obs.TraceContext{
		TraceID: binary.LittleEndian.Uint64(body[0:8]),
		SpanID:  binary.LittleEndian.Uint64(body[8:16]),
		Sampled: body[16]&1 != 0,
	}
	return t &^ traceFlag, body[traceHeaderLen:], tc, nil
}

// WriteLogsReq applies redo records to one slice replica.
type WriteLogsReq struct {
	Tenant  uint32
	SliceID uint32
	// Recs is the concatenated wal record encoding, already in LSN
	// order.
	Recs []byte
}

// ReadPageReq fetches one page version.
type ReadPageReq struct {
	Tenant  uint32
	SliceID uint32
	PageID  uint64
	// LSN selects the newest version ≤ LSN; 0 means latest.
	LSN uint64
}

// BatchReadReq is the NDP batch read of §IV-C4: a set of leaf page IDs
// from one slice, an LSN stamp, and an optional opaque NDP descriptor.
type BatchReadReq struct {
	Tenant  uint32
	SliceID uint32
	LSN     uint64
	PageIDs []uint64
	// Desc is the encoded NDP descriptor; empty requests plain pages.
	Desc []byte
	// Plugin names the DBMS-specific NDP plugin to interpret Desc.
	Plugin string
}

// BatchReadResp returns page images in request order. Pages may be
// regular images (NDP skipped under resource pressure), NDP pages, or
// header-only empty NDP pages.
type BatchReadResp struct {
	Pages [][]byte
	// Processed and Skipped count the NDP resource-control outcome.
	Processed uint32
	Skipped   uint32
}

// LogAppendReq appends records to a Log Store.
type LogAppendReq struct {
	Tenant uint32
	Recs   []byte
}

// CreateSliceReq provisions a slice on a Page Store.
type CreateSliceReq struct {
	Tenant  uint32
	SliceID uint32
}

// PageResp carries one page image.
type PageResp struct {
	Page []byte
}

// Ack carries the acknowledged LSN.
type Ack struct {
	LSN uint64
}

// PageLSNReq asks a Page Store node for the LSN frontier of a tenant's
// slices (Tenant 0 = all tenants).
type PageLSNReq struct {
	Tenant uint32
}

// PageLSNResp reports the node's frontier: the minimum applied and
// checkpoint-persisted LSN across the tenant's slices. PersistedLSN 0
// means at least one slice has no durable checkpoint.
type PageLSNResp struct {
	Slices       uint32
	AppliedLSN   uint64
	PersistedLSN uint64
}

// LogTruncateReq garbage-collects a Log Store below Watermark: records
// with LSN < Watermark are dropped, sealed segments wholly below it are
// deleted. The caller must have verified that every consumer (each Page
// Store replica of every slice) has durably persisted those records.
type LogTruncateReq struct {
	Tenant    uint32
	Watermark uint64
}

// LogGCResp reports one truncation: segments removed and bytes
// reclaimed on disk.
type LogGCResp struct {
	Removed uint32
	Bytes   uint64
}

// LogReadReq tails a Log Store: up to MaxRecords records with LSN >
// AfterLSN come back in LSN order. MaxRecords 0 means no bound.
type LogReadReq struct {
	Tenant     uint32
	AfterLSN   uint64
	MaxRecords uint32
}

// LogReadResp carries the tailed records (concatenated wal encoding, LSN
// order) plus the store's durable and GC watermarks, so a replica can
// tell an empty tail from a truncated one.
type LogReadResp struct {
	Recs []byte
	// Count is the number of records in Recs.
	Count        uint32
	DurableLSN   uint64
	TruncatedLSN uint64
}

// LSNAdvanceReq tells a read replica the master's durable watermark
// moved. Best-effort: a lost notification only delays the replica until
// its next poll.
type LSNAdvanceReq struct {
	Tenant     uint32
	DurableLSN uint64
}

// SliceLSNReq asks a Page Store node for every hosted slice's applied
// LSN for a tenant (0 = all tenants).
type SliceLSNReq struct {
	Tenant uint32
}

// SliceLSNEntry is one slice's applied frontier on one node.
type SliceLSNEntry struct {
	SliceID    uint32
	AppliedLSN uint64
}

// SliceLSNResp reports the node's per-slice applied LSNs. A replica
// takes the minimum per slice across the nodes hosting it: every record
// for that slice at or below the minimum is applied on every replica of
// the slice.
type SliceLSNResp struct {
	Slices []SliceLSNEntry
}

// LogSubscribeReq attaches Node (a transport-reachable name the store
// pushes MsgLogBatch frames to) to the store's stream from FromLSN
// (exclusive). Window bounds the per-subscriber batch queue: a
// subscriber that falls further behind than the queue absorbs is
// disconnected rather than wedging the multicast.
type LogSubscribeReq struct {
	Tenant  uint32
	Node    string
	FromLSN uint64
	Window  uint32
}

// LogSubscribeResp acknowledges a subscription. When TruncatedLSN >
// FromLSN the store's log GC already collected records the subscriber
// still needs: the subscription is NOT established and the replica must
// resync from a checkpoint, then resubscribe above the watermark.
type LogSubscribeResp struct {
	DurableLSN   uint64
	TruncatedLSN uint64
}

// LogUnsubscribeReq detaches Node from the store's stream.
type LogUnsubscribeReq struct {
	Tenant uint32
	Node   string
}

// LogBatchReq is one pushed stream frame: records (concatenated wal
// encoding, LSN order, possibly empty for a frontier-only advance) plus
// everything a replica needs to advance its visible LSN without polling
// — the store's contiguous durable prefix, the master's durable
// watermark, and the per-slice applied frontier relayed from the SAL.
type LogBatchReq struct {
	Tenant uint32
	Recs   []byte
	Count  uint32
	// StreamLSN is the store's hole-free durable prefix: every record at
	// or below it has been pushed (or predates the subscription).
	StreamLSN uint64
	// MasterDurableLSN / Frontier relay the SAL's MsgFrontier state.
	MasterDurableLSN uint64
	TruncatedLSN     uint64
	Frontier         []SliceLSNEntry
}

// FrontierReq is the master SAL's coalesced frontier advance, sent to
// the Log Stores: the durable (commit) watermark and each slice's
// applied-on-all-replicas LSN.
type FrontierReq struct {
	Tenant     uint32
	DurableLSN uint64
	Slices     []SliceLSNEntry
}

// VersionPinReq pins (LSN > 0) or clears (LSN 0) Node's version floor
// on a Page Store.
type VersionPinReq struct {
	Tenant uint32
	Node   string
	LSN    uint64
}

// Encoding helpers. Frames are [type byte][body]; the transports add
// their own length prefixes.

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) bytes() []byte {
	l := r.uvarint()
	if r.err != nil || r.off+int(l) > len(r.buf) {
		r.fail()
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+int(l)]...)
	r.off += int(l)
	return b
}

func (r *wireReader) str() string { return string(r.bytes()) }

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("cluster: truncated message")
	}
}

// EncodeRequest serializes a request struct into a frame body.
func EncodeRequest(req any) (MsgType, []byte, error) {
	switch m := req.(type) {
	case *WriteLogsReq:
		b := appendU32(nil, m.Tenant)
		b = appendU32(b, m.SliceID)
		b = appendBytes(b, m.Recs)
		return MsgWriteLogs, b, nil
	case *ReadPageReq:
		b := appendU32(nil, m.Tenant)
		b = appendU32(b, m.SliceID)
		b = appendU64(b, m.PageID)
		b = appendU64(b, m.LSN)
		return MsgReadPage, b, nil
	case *BatchReadReq:
		b := appendU32(nil, m.Tenant)
		b = appendU32(b, m.SliceID)
		b = appendU64(b, m.LSN)
		b = binary.AppendUvarint(b, uint64(len(m.PageIDs)))
		for _, id := range m.PageIDs {
			b = appendU64(b, id)
		}
		b = appendBytes(b, m.Desc)
		b = appendString(b, m.Plugin)
		return MsgBatchRead, b, nil
	case *LogAppendReq:
		b := appendU32(nil, m.Tenant)
		b = appendBytes(b, m.Recs)
		return MsgLogAppend, b, nil
	case *CreateSliceReq:
		b := appendU32(nil, m.Tenant)
		b = appendU32(b, m.SliceID)
		return MsgCreateSlice, b, nil
	case *PageLSNReq:
		return MsgPageLSN, appendU32(nil, m.Tenant), nil
	case *LogTruncateReq:
		b := appendU32(nil, m.Tenant)
		b = appendU64(b, m.Watermark)
		return MsgLogTruncate, b, nil
	case *LogReadReq:
		b := appendU32(nil, m.Tenant)
		b = appendU64(b, m.AfterLSN)
		b = appendU32(b, m.MaxRecords)
		return MsgLogRead, b, nil
	case *LSNAdvanceReq:
		b := appendU32(nil, m.Tenant)
		b = appendU64(b, m.DurableLSN)
		return MsgLSNAdvance, b, nil
	case *SliceLSNReq:
		return MsgSliceLSN, appendU32(nil, m.Tenant), nil
	case *LogSubscribeReq:
		b := appendU32(nil, m.Tenant)
		b = appendString(b, m.Node)
		b = appendU64(b, m.FromLSN)
		b = appendU32(b, m.Window)
		return MsgLogSubscribe, b, nil
	case *LogUnsubscribeReq:
		b := appendU32(nil, m.Tenant)
		b = appendString(b, m.Node)
		return MsgLogUnsubscribe, b, nil
	case *LogBatchReq:
		b := appendU32(nil, m.Tenant)
		b = appendU32(b, m.Count)
		b = appendU64(b, m.StreamLSN)
		b = appendU64(b, m.MasterDurableLSN)
		b = appendU64(b, m.TruncatedLSN)
		b = appendSliceLSNs(b, m.Frontier)
		b = appendBytes(b, m.Recs)
		return MsgLogBatch, b, nil
	case *FrontierReq:
		b := appendU32(nil, m.Tenant)
		b = appendU64(b, m.DurableLSN)
		b = appendSliceLSNs(b, m.Slices)
		return MsgFrontier, b, nil
	case *VersionPinReq:
		b := appendU32(nil, m.Tenant)
		b = appendString(b, m.Node)
		b = appendU64(b, m.LSN)
		return MsgVersionPin, b, nil
	case *PingReq:
		b := appendString(nil, m.Node)
		b = appendU64(b, m.Seq)
		return MsgPing, b, nil
	case *HealthReportReq:
		return MsgHealthReport, appendString(nil, m.Node), nil
	default:
		return 0, nil, fmt.Errorf("cluster: unknown request type %T", req)
	}
}

func appendSliceLSNs(b []byte, entries []SliceLSNEntry) []byte {
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = appendU32(b, e.SliceID)
		b = appendU64(b, e.AppliedLSN)
	}
	return b
}

func (r *wireReader) sliceLSNs() []SliceLSNEntry {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > 1<<20 {
		r.fail()
		return nil
	}
	out := make([]SliceLSNEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, SliceLSNEntry{SliceID: r.u32(), AppliedLSN: r.u64()})
	}
	return out
}

// DecodeRequest parses a frame body into the request struct for t.
func DecodeRequest(t MsgType, body []byte) (any, error) {
	r := &wireReader{buf: body}
	switch t {
	case MsgWriteLogs:
		m := &WriteLogsReq{Tenant: r.u32(), SliceID: r.u32(), Recs: r.bytes()}
		return m, r.err
	case MsgReadPage:
		m := &ReadPageReq{Tenant: r.u32(), SliceID: r.u32(), PageID: r.u64(), LSN: r.u64()}
		return m, r.err
	case MsgBatchRead:
		m := &BatchReadReq{Tenant: r.u32(), SliceID: r.u32(), LSN: r.u64()}
		n := r.uvarint()
		if n > 1<<20 {
			return nil, fmt.Errorf("cluster: implausible batch size %d", n)
		}
		m.PageIDs = make([]uint64, n)
		for i := range m.PageIDs {
			m.PageIDs[i] = r.u64()
		}
		m.Desc = r.bytes()
		m.Plugin = r.str()
		return m, r.err
	case MsgLogAppend:
		m := &LogAppendReq{Tenant: r.u32(), Recs: r.bytes()}
		return m, r.err
	case MsgCreateSlice:
		m := &CreateSliceReq{Tenant: r.u32(), SliceID: r.u32()}
		return m, r.err
	case MsgPageLSN:
		m := &PageLSNReq{Tenant: r.u32()}
		return m, r.err
	case MsgLogTruncate:
		m := &LogTruncateReq{Tenant: r.u32(), Watermark: r.u64()}
		return m, r.err
	case MsgLogRead:
		m := &LogReadReq{Tenant: r.u32(), AfterLSN: r.u64(), MaxRecords: r.u32()}
		return m, r.err
	case MsgLSNAdvance:
		m := &LSNAdvanceReq{Tenant: r.u32(), DurableLSN: r.u64()}
		return m, r.err
	case MsgSliceLSN:
		m := &SliceLSNReq{Tenant: r.u32()}
		return m, r.err
	case MsgLogSubscribe:
		m := &LogSubscribeReq{Tenant: r.u32(), Node: r.str(), FromLSN: r.u64(), Window: r.u32()}
		return m, r.err
	case MsgLogUnsubscribe:
		m := &LogUnsubscribeReq{Tenant: r.u32(), Node: r.str()}
		return m, r.err
	case MsgLogBatch:
		m := &LogBatchReq{Tenant: r.u32(), Count: r.u32(), StreamLSN: r.u64(),
			MasterDurableLSN: r.u64(), TruncatedLSN: r.u64()}
		m.Frontier = r.sliceLSNs()
		m.Recs = r.bytes()
		return m, r.err
	case MsgFrontier:
		m := &FrontierReq{Tenant: r.u32(), DurableLSN: r.u64()}
		m.Slices = r.sliceLSNs()
		return m, r.err
	case MsgVersionPin:
		m := &VersionPinReq{Tenant: r.u32(), Node: r.str(), LSN: r.u64()}
		return m, r.err
	case MsgPing:
		m := &PingReq{Node: r.str(), Seq: r.u64()}
		return m, r.err
	case MsgHealthReport:
		m := &HealthReportReq{Node: r.str()}
		return m, r.err
	default:
		return nil, fmt.Errorf("cluster: unknown request msg type %d", t)
	}
}

// EncodeResponse serializes a response struct (or error) into a frame.
func EncodeResponse(resp any, respErr error) (MsgType, []byte, error) {
	if respErr != nil {
		return MsgErr, []byte(respErr.Error()), nil
	}
	switch m := resp.(type) {
	case *Ack:
		return MsgResp, append([]byte{respAck}, appendU64(nil, m.LSN)...), nil
	case *PageResp:
		return MsgResp, append([]byte{respPage}, appendBytes(nil, m.Page)...), nil
	case *BatchReadResp:
		b := []byte{respBatch}
		b = appendU32(b, m.Processed)
		b = appendU32(b, m.Skipped)
		b = binary.AppendUvarint(b, uint64(len(m.Pages)))
		for _, p := range m.Pages {
			b = appendBytes(b, p)
		}
		return MsgResp, b, nil
	case *PageLSNResp:
		b := []byte{respPageLSN}
		b = appendU32(b, m.Slices)
		b = appendU64(b, m.AppliedLSN)
		b = appendU64(b, m.PersistedLSN)
		return MsgResp, b, nil
	case *LogGCResp:
		b := []byte{respLogGC}
		b = appendU32(b, m.Removed)
		b = appendU64(b, m.Bytes)
		return MsgResp, b, nil
	case *LogReadResp:
		b := []byte{respLogRead}
		b = appendU32(b, m.Count)
		b = appendU64(b, m.DurableLSN)
		b = appendU64(b, m.TruncatedLSN)
		b = appendBytes(b, m.Recs)
		return MsgResp, b, nil
	case *SliceLSNResp:
		b := []byte{respSliceLSN}
		b = binary.AppendUvarint(b, uint64(len(m.Slices)))
		for _, e := range m.Slices {
			b = appendU32(b, e.SliceID)
			b = appendU64(b, e.AppliedLSN)
		}
		return MsgResp, b, nil
	case *LogSubscribeResp:
		b := []byte{respLogSubscribe}
		b = appendU64(b, m.DurableLSN)
		b = appendU64(b, m.TruncatedLSN)
		return MsgResp, b, nil
	case *PingResp:
		b := []byte{respPing}
		b = appendString(b, m.Node)
		b = appendString(b, m.Role)
		b = appendU64(b, m.Seq)
		b = append(b, byte(m.Status))
		return MsgResp, b, nil
	case *HealthReportResp:
		b := []byte{respHealthReport}
		b = appendReport(b, m.Report)
		return MsgResp, b, nil
	default:
		return 0, nil, fmt.Errorf("cluster: unknown response type %T", resp)
	}
}

const (
	respAck = iota + 1
	respPage
	respBatch
	respPageLSN
	respLogGC
	respLogRead
	respSliceLSN
	respLogSubscribe
	respPing
	respHealthReport
)

// DecodeResponse parses a response frame.
func DecodeResponse(t MsgType, body []byte) (any, error) {
	if t == MsgErr {
		return nil, fmt.Errorf("cluster: remote error: %s", body)
	}
	if t != MsgResp {
		return nil, fmt.Errorf("cluster: unexpected response msg type %d", t)
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("cluster: empty response")
	}
	r := &wireReader{buf: body[1:]}
	switch body[0] {
	case respAck:
		m := &Ack{LSN: r.u64()}
		return m, r.err
	case respPage:
		m := &PageResp{Page: r.bytes()}
		return m, r.err
	case respBatch:
		m := &BatchReadResp{Processed: r.u32(), Skipped: r.u32()}
		n := r.uvarint()
		if n > 1<<20 {
			return nil, fmt.Errorf("cluster: implausible page count %d", n)
		}
		m.Pages = make([][]byte, n)
		for i := range m.Pages {
			m.Pages[i] = r.bytes()
		}
		return m, r.err
	case respPageLSN:
		m := &PageLSNResp{Slices: r.u32(), AppliedLSN: r.u64(), PersistedLSN: r.u64()}
		return m, r.err
	case respLogGC:
		m := &LogGCResp{Removed: r.u32(), Bytes: r.u64()}
		return m, r.err
	case respLogRead:
		m := &LogReadResp{Count: r.u32(), DurableLSN: r.u64(), TruncatedLSN: r.u64(), Recs: r.bytes()}
		return m, r.err
	case respSliceLSN:
		m := &SliceLSNResp{}
		n := r.uvarint()
		if n > 1<<20 {
			return nil, fmt.Errorf("cluster: implausible slice count %d", n)
		}
		for i := uint64(0); i < n; i++ {
			m.Slices = append(m.Slices, SliceLSNEntry{SliceID: r.u32(), AppliedLSN: r.u64()})
		}
		return m, r.err
	case respLogSubscribe:
		m := &LogSubscribeResp{DurableLSN: r.u64(), TruncatedLSN: r.u64()}
		return m, r.err
	case respPing:
		m := &PingResp{Node: r.str(), Role: r.str(), Seq: r.u64(),
			Status: health.Status(r.byteVal())}
		return m, r.err
	case respHealthReport:
		m := &HealthReportResp{Report: r.report()}
		return m, r.err
	default:
		return nil, fmt.Errorf("cluster: unknown response tag %d", body[0])
	}
}
