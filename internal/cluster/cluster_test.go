package cluster

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

// echoHandler returns canned responses per request type.
type echoHandler struct{}

func (echoHandler) Handle(req any) (any, error) {
	switch m := req.(type) {
	case *WriteLogsReq:
		return &Ack{LSN: uint64(len(m.Recs))}, nil
	case *ReadPageReq:
		return &PageResp{Page: []byte(fmt.Sprintf("page-%d@%d", m.PageID, m.LSN))}, nil
	case *BatchReadReq:
		resp := &BatchReadResp{Processed: uint32(len(m.PageIDs))}
		for _, id := range m.PageIDs {
			resp.Pages = append(resp.Pages, []byte(fmt.Sprintf("p%d", id)))
		}
		return resp, nil
	case *LogAppendReq:
		return &Ack{LSN: 42}, nil
	case *CreateSliceReq:
		return &Ack{}, nil
	default:
		return nil, fmt.Errorf("echo: bad request %T", req)
	}
}

func exerciseTransport(t *testing.T, tr Transport, node string) {
	t.Helper()
	// WriteLogs.
	resp, err := tr.Call(node, &WriteLogsReq{Tenant: 1, SliceID: 2, Recs: []byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*Ack).LSN != 6 {
		t.Errorf("WriteLogs ack = %d", resp.(*Ack).LSN)
	}
	// ReadPage.
	resp, err = tr.Call(node, &ReadPageReq{PageID: 7, LSN: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(resp.(*PageResp).Page); got != "page-7@9" {
		t.Errorf("ReadPage = %q", got)
	}
	// BatchRead with descriptor bytes.
	resp, err = tr.Call(node, &BatchReadReq{
		PageIDs: []uint64{1, 2, 3}, Desc: []byte{9, 9}, Plugin: "innodb", LSN: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	br := resp.(*BatchReadResp)
	if len(br.Pages) != 3 || string(br.Pages[2]) != "p3" || br.Processed != 3 {
		t.Errorf("BatchRead = %+v", br)
	}
	// LogAppend.
	resp, err = tr.Call(node, &LogAppendReq{Recs: []byte("x")})
	if err != nil || resp.(*Ack).LSN != 42 {
		t.Errorf("LogAppend = %v, %v", resp, err)
	}
	// CreateSlice.
	if _, err := tr.Call(node, &CreateSliceReq{Tenant: 1, SliceID: 3}); err != nil {
		t.Errorf("CreateSlice: %v", err)
	}
}

func TestInProcTransport(t *testing.T) {
	tr := NewInProc()
	tr.Register("ps1", echoHandler{})
	exerciseTransport(t, tr, "ps1")
	if _, err := tr.Call("nope", &ReadPageReq{}); err == nil {
		t.Error("unknown node should fail")
	}
	snap := tr.Stats.Snapshot()
	if snap.Requests != 5 || snap.BytesSent == 0 || snap.BytesReceived == 0 {
		t.Errorf("stats = %+v", snap)
	}
	if snap.BatchReads != 1 || snap.PageReads != 1 || snap.LogWrites != 2 {
		t.Errorf("typed counters = %+v", snap)
	}
	delta := tr.Stats.Snapshot().Sub(snap)
	if delta.Requests != 0 {
		t.Error("Sub of identical snapshots should be zero")
	}
}

func TestTCPTransport(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, echoHandler{})
	client := NewTCPClient()
	defer client.Close()
	exerciseTransport(t, client, l.Addr().String())
	snap := client.Stats.Snapshot()
	if snap.Requests != 5 {
		t.Errorf("requests = %d", snap.Requests)
	}
	if _, err := client.Call("127.0.0.1:1", &ReadPageReq{}); err == nil {
		t.Error("unreachable address should fail")
	}
}

// TestTCPCallTimeout: against a server that accepts and then goes
// silent (a black-holed peer), a client with CallTimeout must fail the
// call within the bound instead of blocking forever, and a later call
// must redial rather than reuse the dead connection.
func TestTCPCallTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the conn open, never answer
		}
	}()
	client := NewTCPClient()
	client.DialTimeout = time.Second
	client.CallTimeout = 50 * time.Millisecond
	defer client.Close()
	start := time.Now()
	if _, err := client.Call(l.Addr().String(), &ReadPageReq{PageID: 1}); err == nil {
		t.Fatal("call against a silent server should time out")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}
	// The timed-out connection was dropped; the next call redials.
	if _, err := client.Call(l.Addr().String(), &ReadPageReq{PageID: 1}); err == nil {
		t.Fatal("second call should also time out, not hang")
	}
}

func TestTCPErrorPropagation(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, HandlerFunc(func(req any) (any, error) {
		return nil, fmt.Errorf("storage exploded")
	}))
	client := NewTCPClient()
	defer client.Close()
	_, err = client.Call(l.Addr().String(), &ReadPageReq{PageID: 1})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("storage exploded")) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestRequestCodecRoundTrips(t *testing.T) {
	reqs := []any{
		&WriteLogsReq{Tenant: 3, SliceID: 9, Recs: []byte{1, 2, 3}},
		&ReadPageReq{Tenant: 1, SliceID: 2, PageID: 1 << 40, LSN: 77},
		&BatchReadReq{Tenant: 5, SliceID: 6, LSN: 12, PageIDs: []uint64{9, 8, 7}, Desc: []byte("desc"), Plugin: "innodb"},
		&LogAppendReq{Tenant: 2, Recs: []byte("recs")},
		&CreateSliceReq{Tenant: 4, SliceID: 44},
	}
	for _, req := range reqs {
		mt, body, err := EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(mt, body)
		if err != nil {
			t.Fatalf("%T: %v", req, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", req) {
			t.Errorf("round trip %T: %+v vs %+v", req, got, req)
		}
		// Truncations must error, not panic.
		for cut := 0; cut < len(body); cut++ {
			if _, err := DecodeRequest(mt, body[:cut]); err == nil && cut < len(body) {
				// Some prefixes may decode when trailing fields are
				// empty slices; only flag clearly-bad successes.
				_ = err
			}
		}
	}
	if _, _, err := EncodeRequest(struct{}{}); err == nil {
		t.Error("unknown request type should fail")
	}
	if _, err := DecodeRequest(200, nil); err == nil {
		t.Error("unknown msg type should fail")
	}
}

func TestResponseCodecRoundTrips(t *testing.T) {
	resps := []any{
		&Ack{LSN: 99},
		&PageResp{Page: []byte("pagebytes")},
		&BatchReadResp{Pages: [][]byte{[]byte("a"), nil, []byte("ccc")}, Processed: 2, Skipped: 1},
	}
	for _, resp := range resps {
		mt, body, err := EncodeResponse(resp, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResponse(mt, body)
		if err != nil {
			t.Fatalf("%T: %v", resp, err)
		}
		if fmt.Sprintf("%T", got) != fmt.Sprintf("%T", resp) {
			t.Errorf("type changed: %T vs %T", got, resp)
		}
	}
	// Error response.
	mt, body, _ := EncodeResponse(nil, fmt.Errorf("boom"))
	if _, err := DecodeResponse(mt, body); err == nil {
		t.Error("error response should decode to error")
	}
	if _, err := DecodeResponse(MsgResp, nil); err == nil {
		t.Error("empty body should fail")
	}
	if _, err := DecodeResponse(MsgResp, []byte{99}); err == nil {
		t.Error("unknown tag should fail")
	}
}
