package cluster

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"time"

	"taurus/internal/health"
)

// Health wire messages. MsgPing is the heartbeat: tiny, answered from
// memory, carrying just enough (role + worst-check status) for the
// failure detector; MsgHealthReport fetches the full check report and
// is sent every few heartbeats. Both ride the ordinary request path so
// a node that can answer a ping can, by construction, answer requests —
// the property a failure detector actually wants to measure.

// PingReq is one heartbeat from Node (the pinger's name), sequenced so
// logs can correlate ping and pong.
type PingReq struct {
	Node string
	Seq  uint64
}

// PingResp is the pong: who answered, what role it plays, and the worst
// status across its local health checks (so an alive-but-degraded node
// is visible without fetching the full report).
type PingResp struct {
	Node   string
	Role   string
	Seq    uint64
	Status health.Status
}

// HealthReportReq fetches the target's full health report. Node names
// the requester (for the target's logs; may be empty).
type HealthReportReq struct {
	Node string
}

// HealthReportResp carries the target's report.
type HealthReportResp struct {
	Report health.Report
}

// appendReport encodes a health.Report. Evidence maps are written in
// sorted key order so encoding is deterministic.
func appendReport(b []byte, r health.Report) []byte {
	b = appendString(b, r.Node)
	b = appendString(b, r.Role)
	b = appendU64(b, uint64(r.Time.UnixNano()))
	b = appendU64(b, math.Float64bits(r.UptimeSeconds))
	if r.Ready {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Checks)))
	for _, c := range r.Checks {
		b = appendString(b, c.Name)
		b = append(b, byte(c.Status))
		b = appendString(b, c.Detail)
		b = appendString(b, c.Runbook)
		keys := make([]string, 0, len(c.Evidence))
		for k := range c.Evidence {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = binary.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = appendString(b, k)
			b = appendString(b, c.Evidence[k])
		}
	}
	return b
}

func (r *wireReader) byteVal() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *wireReader) report() health.Report {
	var rep health.Report
	rep.Node = r.str()
	rep.Role = r.str()
	rep.Time = time.Unix(0, int64(r.u64()))
	rep.UptimeSeconds = math.Float64frombits(r.u64())
	rep.Ready = r.byteVal() == 1
	n := r.uvarint()
	if r.err != nil || n > 1<<16 {
		r.fail()
		return rep
	}
	rep.Checks = make([]health.Check, 0, n)
	for i := uint64(0); i < n; i++ {
		c := health.Check{Name: r.str(), Status: health.Status(r.byteVal()),
			Detail: r.str(), Runbook: r.str()}
		nk := r.uvarint()
		if r.err != nil || nk > 1<<16 {
			r.fail()
			return rep
		}
		if nk > 0 {
			c.Evidence = make(map[string]string, nk)
			for j := uint64(0); j < nk; j++ {
				k := r.str()
				c.Evidence[k] = r.str()
			}
		}
		rep.Checks = append(rep.Checks, c)
	}
	return rep
}

// PingerOptions tunes RunHealthPinger. Zero values select defaults.
type PingerOptions struct {
	// ReportEvery fetches the full health report every N-th heartbeat
	// (default 5); pings in between carry only the worst status.
	ReportEvery int
}

// RunHealthPinger drives a failure detector over a transport: every
// d.HeartbeatInterval() it pings each tracked peer (Observe on pong,
// ObserveFailure otherwise), periodically fetches full health reports,
// and sweeps the detector so Suspect/Dead transitions fire even when a
// peer is totally silent. self names the pinger in requests. Blocks
// until stop closes — run it on its own goroutine. The peer list is
// re-read from the detector each tick, so peers tracked or forgotten
// while the loop runs (replica attach/detach) are picked up live.
//
// Peers are pinged concurrently, at most one outstanding ping per peer:
// a peer whose transport call hangs (black-holed network, SIGSTOP)
// simply keeps its one goroutine blocked while every other peer keeps
// being pinged and Sweep keeps running — so the hung peer's growing
// silence walks it through Suspect to Dead on schedule instead of
// wedging the whole loop. Pair a TCP transport with DialTimeout/
// CallTimeout so those goroutines are reclaimed rather than parked
// until the peer returns.
func RunHealthPinger(t Transport, d *health.Detector, self string, stop <-chan struct{}, opts PingerOptions) {
	if t == nil || d == nil {
		return
	}
	reportEvery := opts.ReportEvery
	if reportEvery <= 0 {
		reportEvery = 5
	}
	interval := d.HeartbeatInterval()
	if interval <= 0 {
		interval = time.Second
	}
	ping := func(p health.TrackedPeer, seq uint64) {
		resp, err := t.Call(p.Name, &PingReq{Node: self, Seq: seq})
		if err != nil {
			d.ObserveFailure(p.Name)
			return
		}
		pong, ok := resp.(*PingResp)
		if !ok {
			d.ObserveFailure(p.Name)
			return
		}
		d.Observe(p.Name, pong.Role, pong.Status)
		if seq%uint64(reportEvery) == 0 {
			if rr, err := t.Call(p.Name, &HealthReportReq{Node: self}); err == nil {
				if hr, ok := rr.(*HealthReportResp); ok {
					d.SetReport(p.Name, hr.Report)
				}
			}
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var mu sync.Mutex
	inflight := make(map[string]bool)
	var seq uint64
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		seq++
		for _, p := range d.Peers() {
			mu.Lock()
			busy := inflight[p.Name]
			if !busy {
				inflight[p.Name] = true
			}
			mu.Unlock()
			if busy {
				// The previous ping to this peer has not returned yet; its
				// silence keeps growing, which is exactly what the detector
				// measures. Never stack a second call behind a hung one.
				continue
			}
			go func(p health.TrackedPeer, seq uint64) {
				defer func() {
					mu.Lock()
					delete(inflight, p.Name)
					mu.Unlock()
				}()
				ping(p, seq)
			}(p, seq)
		}
		d.Sweep()
	}
}
