package cluster

import (
	"net"
	"testing"

	"taurus/internal/obs"
)

// tracedEcho is an echoHandler that also records a server-side child
// span for propagated trace contexts, as the storage handlers do.
type tracedEcho struct {
	echoHandler
	tracer *obs.Tracer
}

func (h tracedEcho) HandleTraced(tc obs.TraceContext, req any) (any, error) {
	sp := h.tracer.StartSpan(tc, "server.handle")
	defer sp.End()
	return h.Handle(req)
}

// verifyPropagation drives one traced call and asserts the span tree:
// a client rpc span child of the caller's root, and a server span child
// of the rpc span, collected on the server's own tracer.
func verifyPropagation(t *testing.T, client *obs.Tracer, server *obs.Tracer, call func(tc obs.TraceContext) error) {
	t.Helper()
	root := client.StartTrace("test.root")
	if err := call(root.Context()); err != nil {
		t.Fatal(err)
	}
	root.End()
	spans := append(client.Spans(root.Context().TraceID), server.Spans(root.Context().TraceID)...)
	var rpc, srv *obs.Span
	for i := range spans {
		switch spans[i].Name {
		case "rpc:MsgLogAppend":
			rpc = &spans[i]
		case "server.handle":
			srv = &spans[i]
		}
	}
	if rpc == nil || srv == nil {
		t.Fatalf("missing spans: rpc=%v srv=%v (got %d spans)", rpc, srv, len(spans))
	}
	if rpc.Parent != root.Context().SpanID {
		t.Errorf("rpc span parent = %x, want root %x", rpc.Parent, root.Context().SpanID)
	}
	if srv.Parent != rpc.SpanID {
		t.Errorf("server span parent = %x, want rpc %x", srv.Parent, rpc.SpanID)
	}
	if srv.Node != server.Node() {
		t.Errorf("server span node = %q, want %q", srv.Node, server.Node())
	}
}

func TestTracePropagationInProc(t *testing.T) {
	clientT := obs.NewTracer("frontend", 0, 0)
	serverT := obs.NewTracer("ps1", 0, 0)
	tr := NewInProc()
	tr.Tracer = clientT
	tr.Register("ps1", tracedEcho{tracer: serverT})
	verifyPropagation(t, clientT, serverT, func(tc obs.TraceContext) error {
		_, err := CallTraced(tr, tc, "ps1", &LogAppendReq{Recs: []byte("x")})
		return err
	})
}

func TestTracePropagationTCP(t *testing.T) {
	clientT := obs.NewTracer("frontend", 0, 0)
	serverT := obs.NewTracer("store1", 0, 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, tracedEcho{tracer: serverT})
	client := NewTCPClient()
	client.Tracer = clientT
	defer client.Close()
	verifyPropagation(t, clientT, serverT, func(tc obs.TraceContext) error {
		_, err := CallTraced(client, tc, l.Addr().String(), &LogAppendReq{Recs: []byte("x")})
		return err
	})
}

// TestUntracedCallSkipsServerSpans checks that plain Call produces no
// spans anywhere even when tracers and traced handlers are wired: the
// sampled flag is decided at the root, not by the plumbing.
func TestUntracedCallSkipsServerSpans(t *testing.T) {
	clientT := obs.NewTracer("frontend", 0, 0)
	serverT := obs.NewTracer("ps1", 0, 0)
	tr := NewInProc()
	tr.Tracer = clientT
	tr.Register("ps1", tracedEcho{tracer: serverT})
	if _, err := tr.Call("ps1", &LogAppendReq{Recs: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if ids := clientT.RecentTraces(10); len(ids) != 0 {
		t.Errorf("client recorded traces for an untraced call: %v", ids)
	}
	if ids := serverT.RecentTraces(10); len(ids) != 0 {
		t.Errorf("server recorded traces for an untraced call: %v", ids)
	}
}

// TestTraceHeaderCodec exercises the frame-level trace header: untraced
// frames are byte-identical to pre-tracing frames (mixed-version safe),
// traced frames round-trip the context, and short traced frames error.
func TestTraceHeaderCodec(t *testing.T) {
	typ, body, err := EncodeRequest(&LogAppendReq{Recs: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	// Unsampled context: the frame must pass through untouched — the
	// same bytes an old binary would emit.
	wt, wb := wrapTrace(typ, body, obs.TraceContext{})
	if wt != typ || &wb[0] != &body[0] {
		t.Error("unsampled wrapTrace must return the frame unchanged")
	}
	// A pre-tracing frame (no flag bit) decodes with a zero context.
	ut, ub, tc, err := unwrapTrace(typ, body)
	if err != nil || ut != typ || tc.Valid() {
		t.Errorf("old frame decode: type=%v tc=%+v err=%v", ut, tc, err)
	}
	if req, err := DecodeRequest(ut, ub); err != nil {
		t.Fatal(err)
	} else if string(req.(*LogAppendReq).Recs) != "payload" {
		t.Error("old frame body corrupted")
	}
	// Sampled context round-trips and the stripped body decodes.
	want := obs.TraceContext{TraceID: 0xdeadbeef, SpanID: 0x1234, Sampled: true}
	wt, wb = wrapTrace(typ, body, want)
	if wt&traceFlag == 0 {
		t.Error("sampled frame missing trace flag")
	}
	ut, ub, tc, err = unwrapTrace(wt, wb)
	if err != nil || ut != typ || tc != want {
		t.Errorf("traced decode: type=%v tc=%+v err=%v", ut, tc, err)
	}
	if req, err := DecodeRequest(ut, ub); err != nil {
		t.Fatal(err)
	} else if string(req.(*LogAppendReq).Recs) != "payload" {
		t.Error("traced frame body corrupted")
	}
	// A flagged frame too short for the header must error, not panic.
	if _, _, _, err := unwrapTrace(typ|traceFlag, []byte{1, 2, 3}); err == nil {
		t.Error("short traced frame must error")
	}
}
