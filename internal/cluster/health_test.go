package cluster

import (
	"fmt"
	"testing"
	"time"

	"taurus/internal/health"
)

// TestHealthCodecRoundTrips checks the ping and report wire messages
// survive encode/decode, including evidence maps and non-OK statuses.
func TestHealthCodecRoundTrips(t *testing.T) {
	reqs := []any{
		&PingReq{Node: "frontend", Seq: 42},
		&HealthReportReq{Node: "frontend"},
		&HealthReportReq{},
	}
	for _, req := range reqs {
		mt, body, err := EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(mt, body)
		if err != nil {
			t.Fatalf("%T: %v", req, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", req) {
			t.Errorf("round trip %T: %+v vs %+v", got, got, req)
		}
	}

	now := time.Unix(1_700_000_000, 123_456_789)
	resps := []any{
		&PingResp{Node: "ps-1", Role: "pagestore", Seq: 42, Status: health.StatusWarn},
		&HealthReportResp{Report: health.Report{
			Node: "ps-1", Role: "pagestore", Time: now,
			UptimeSeconds: 12.5, Ready: true,
			Checks: []health.Check{
				{Name: "pagestore.checkpoint_age", Status: health.StatusCritical,
					Detail:   "checkpoint 5m old",
					Evidence: map[string]string{"age": "5m", "interval": "1m"},
					Runbook:  "RB-CHECKPOINT-AGE"},
				{Name: "pagestore.version_pin", Status: health.StatusOK},
			},
		}},
		&HealthReportResp{Report: health.Report{Node: "bare", Time: now}},
	}
	for _, resp := range resps {
		mt, body, err := EncodeResponse(resp, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResponse(mt, body)
		if err != nil {
			t.Fatalf("%T: %v", resp, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", resp) {
			t.Errorf("round trip %T:\n got %+v\nwant %+v", resp, got, resp)
		}
		// Truncations must error, not panic.
		for cut := 0; cut < len(body); cut++ {
			_, _ = DecodeResponse(mt, body[:cut])
		}
	}
}

// healthEcho answers pings and report fetches like a role server.
type healthEcho struct {
	node, role string
	status     health.Status
}

func (h *healthEcho) Handle(req any) (any, error) {
	switch m := req.(type) {
	case *PingReq:
		return &PingResp{Node: h.node, Role: h.role, Seq: m.Seq, Status: h.status}, nil
	case *HealthReportReq:
		return &HealthReportResp{Report: health.Report{
			Node: h.node, Role: h.role, Time: time.Now(), Ready: true,
			Checks: []health.Check{{Name: "echo.check", Status: h.status}},
		}}, nil
	}
	return nil, fmt.Errorf("healthEcho: bad request %T", req)
}

// TestRunHealthPinger drives the pinger over an InProc transport: an
// answering peer stays Alive with its role refined and its report
// cached; an unregistered peer accumulates failures and dies.
func TestRunHealthPinger(t *testing.T) {
	tr := NewInProc()
	tr.Register("ps-1", &healthEcho{node: "ps-1", role: "pagestore", status: health.StatusOK})

	d := health.NewDetector(5*time.Millisecond, 40*time.Millisecond, nil, nil)
	d.Track("ps-1", "")
	d.Track("ghost", "pagestore")

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// ReportEvery 2 so the report fetch happens fast.
		RunHealthPinger(tr, d, "frontend", stop, PingerOptions{ReportEvery: 2})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var alive, deadWithReport bool
		for _, p := range d.Snapshot() {
			if p.Name == "ps-1" && p.State == health.PeerAlive &&
				p.Role == "pagestore" && p.Report != nil {
				alive = true
			}
			if p.Name == "ghost" && p.State == health.PeerDead && p.Failures > 0 {
				deadWithReport = true
			}
		}
		if alive && deadWithReport {
			close(stop)
			<-done
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	t.Fatalf("pinger never converged: %+v", d.Snapshot())
}

// blockingTransport answers pings for every node except the ones in
// hang, whose calls park until the transport is released.
type blockingTransport struct {
	hang    map[string]bool
	release chan struct{}
}

func (b *blockingTransport) Call(node string, req any) (any, error) {
	if b.hang[node] {
		<-b.release
		return nil, fmt.Errorf("%s: released", node)
	}
	if m, ok := req.(*PingReq); ok {
		return &PingResp{Node: node, Role: "pagestore", Seq: m.Seq}, nil
	}
	return &HealthReportResp{Report: health.Report{Node: node, Ready: true}}, nil
}

// TestRunHealthPingerHungPeer is the partition/SIGSTOP regression: a
// peer whose transport call blocks forever (instead of failing fast)
// must not stall the loop — the healthy peer keeps being pinged and
// stays Alive, while the hung peer's silence walks it to Dead.
func TestRunHealthPingerHungPeer(t *testing.T) {
	tr := &blockingTransport{hang: map[string]bool{"hung": true}, release: make(chan struct{})}
	d := health.NewDetector(5*time.Millisecond, 40*time.Millisecond, nil, nil)
	d.Track("ok", "pagestore")
	d.Track("hung", "pagestore")

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunHealthPinger(tr, d, "frontend", stop, PingerOptions{})
	}()
	defer func() {
		close(stop)
		close(tr.release) // unpark the hung call's goroutine
		<-done
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var okAlive, hungDead bool
		for _, p := range d.Snapshot() {
			// The hung peer answered zero pings, so only a concurrent
			// pinger can have kept "ok" alive past the Dead deadline.
			if p.Name == "ok" && p.State == health.PeerAlive && p.Pings > 20 {
				okAlive = true
			}
			if p.Name == "hung" && p.State == health.PeerDead {
				hungDead = true
			}
		}
		if okAlive && hungDead {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("hung peer stalled the pinger: %+v", d.Snapshot())
}
