// Package txn implements transaction IDs, read views, and the undo log
// used for multi-version concurrency control.
//
// The split of responsibilities follows the paper exactly: the frontend
// keeps complete read views (active transaction lists) and the undo log;
// Page Stores receive only a single low watermark in the NDP descriptor,
// because "a complete list of active transactions is not included to
// reduce CPU overhead in Page Stores" (§IV-C1). Records at or above the
// watermark are ambiguous to storage and must be resolved here: "Such
// invisible rows must be returned to InnoDB, which is able to reconstruct
// the correct older version" (§IV-A).
package txn

import (
	"sync"
	"sync/atomic"

	"taurus/internal/obs"
)

// Manager allocates transaction IDs and tracks the active set.
type Manager struct {
	mu     sync.Mutex
	nextID uint64
	active map[uint64]bool
}

// NewManager returns a manager whose first transaction gets ID 1.
func NewManager() *Manager {
	return &Manager{nextID: 1, active: make(map[uint64]bool)}
}

// Txn is one transaction.
type Txn struct {
	ID  uint64
	mgr *Manager

	// maxLSN is the highest log sequence number assigned to any record
	// this transaction wrote (its commit watermark): commit waits for
	// durability up to here instead of the global allocator snapshot,
	// so a committer never waits for LSNs handed out to unrelated
	// concurrent writers after its own last write.
	maxLSN atomic.Uint64

	// trace is the statement's propagated trace context. The SQL layer
	// sets it before the first write; the engine and SAL read it on every
	// operation the transaction performs, so one sampled statement is
	// attributable across the write path. Zero when unsampled.
	trace obs.TraceContext
}

// SetTrace attaches the statement's trace context. Call before the
// transaction's first write.
func (t *Txn) SetTrace(tc obs.TraceContext) { t.trace = tc }

// Trace returns the attached trace context (zero when unsampled).
func (t *Txn) Trace() obs.TraceContext { return t.trace }

// ObserveLSN records a log record the transaction wrote. The write path
// calls it with each assigned LSN; the maximum is the commit watermark.
func (t *Txn) ObserveLSN(lsn uint64) {
	for {
		cur := t.maxLSN.Load()
		if lsn <= cur || t.maxLSN.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// MaxLSN returns the transaction's commit watermark (0 for a read-only
// transaction: nothing to wait for).
func (t *Txn) MaxLSN() uint64 { return t.maxLSN.Load() }

// Advance moves the ID allocator past id, so transactions started after
// a restart never reuse an ID that already stamped recovered rows —
// reuse would make old committed rows look like uncommitted writes of
// the new transaction's read views.
func (m *Manager) Advance(id uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.nextID <= id {
		m.nextID = id + 1
	}
}

// Current returns the highest transaction ID allocated so far (0 if
// none) — the checkpointed high-water mark Advance restores on restart.
func (m *Manager) Current() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextID - 1
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.active[id] = true
	return &Txn{ID: id, mgr: m}
}

// Commit ends the transaction, removing it from the active set.
func (t *Txn) Commit() {
	t.mgr.mu.Lock()
	defer t.mgr.mu.Unlock()
	delete(t.mgr.active, t.ID)
}

// ReadView is a consistent snapshot boundary.
type ReadView struct {
	// Low is the low watermark: all transactions below it are
	// committed. This single value is what travels to Page Stores.
	Low uint64
	// High is the next-unassigned ID at view creation; transactions at
	// or above it started later and are invisible.
	High uint64
	// Active is the set of concurrent transactions whose effects are
	// invisible despite being below High.
	Active map[uint64]bool
	// Own is the viewing transaction's ID; its writes are visible to
	// itself. Zero for read-only snapshot views.
	Own uint64
}

// View creates a read view for t (pass nil for a read-only snapshot).
func (m *Manager) View(t *Txn) *ReadView {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := &ReadView{High: m.nextID, Active: make(map[uint64]bool, len(m.active))}
	low := m.nextID
	for id := range m.active {
		v.Active[id] = true
		if id < low {
			low = id
		}
	}
	v.Low = low
	if t != nil {
		v.Own = t.ID
	}
	return v
}

// Visible reports whether a record version written by trxID is visible.
func (v *ReadView) Visible(trxID uint64) bool {
	if trxID == v.Own && trxID != 0 {
		return true
	}
	if trxID < v.Low {
		return true
	}
	if trxID >= v.High {
		return false
	}
	return !v.Active[trxID]
}

// UndoLog keeps previous row versions, keyed by (index, key-bytes). In
// InnoDB this is the undo tablespace reached via roll pointers; here a
// map of version chains is sufficient because undo never crosses to
// storage nodes: "A Page Store is unable to traverse a row's undo chain
// ... because the required undo records may reside in other Page Stores"
// (§IV-A).
type UndoLog struct {
	mu     sync.RWMutex
	chains map[uint64]map[string][]UndoRecord
}

// UndoRecord is one prior version of a row.
type UndoRecord struct {
	// TrxID is the transaction that wrote THIS version.
	TrxID uint64
	// Row is the encoded row payload of this version.
	Row []byte
	// Deleted marks versions representing a delete (tombstone).
	Deleted bool
}

// NewUndoLog returns an empty undo log.
func NewUndoLog() *UndoLog {
	return &UndoLog{chains: make(map[uint64]map[string][]UndoRecord)}
}

// Push records the version being replaced. Call before overwriting a row:
// the pushed version is the one readers with older views still need.
func (u *UndoLog) Push(indexID uint64, key []byte, rec UndoRecord) {
	u.mu.Lock()
	defer u.mu.Unlock()
	byKey, ok := u.chains[indexID]
	if !ok {
		byKey = make(map[string][]UndoRecord)
		u.chains[indexID] = byKey
	}
	// Newest first.
	byKey[string(key)] = append([]UndoRecord{rec}, byKey[string(key)]...)
}

// Resolve walks the version chain for a row whose current (in-page)
// version is invisible, returning the newest visible prior version.
// ok=false means no version is visible to the view (the row logically
// does not exist for this reader).
func (u *UndoLog) Resolve(indexID uint64, key []byte, view *ReadView) (UndoRecord, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	byKey, ok := u.chains[indexID]
	if !ok {
		return UndoRecord{}, false
	}
	for _, rec := range byKey[string(key)] {
		if view.Visible(rec.TrxID) {
			return rec, true
		}
	}
	return UndoRecord{}, false
}

// Len reports the total number of undo records (tests/metrics).
func (u *UndoLog) Len() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	n := 0
	for _, byKey := range u.chains {
		for _, chain := range byKey {
			n += len(chain)
		}
	}
	return n
}
