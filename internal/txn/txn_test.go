package txn

import "testing"

func TestVisibility(t *testing.T) {
	m := NewManager()
	t1 := m.Begin() // id 1
	t2 := m.Begin() // id 2
	t1.Commit()
	t3 := m.Begin() // id 3, active
	view := m.View(t3)

	if !view.Visible(t1.ID) {
		t.Error("committed t1 must be visible")
	}
	if view.Visible(t2.ID) {
		t.Error("active t2 must be invisible")
	}
	if !view.Visible(t3.ID) {
		t.Error("own writes must be visible")
	}
	t4 := m.Begin()
	if view.Visible(t4.ID) {
		t.Error("later transaction must be invisible")
	}
	// Low watermark: t2 (id 2) is the oldest active.
	if view.Low != t2.ID {
		t.Errorf("low watermark = %d, want %d", view.Low, t2.ID)
	}
}

func TestSnapshotViewNoOwner(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	view := m.View(nil)
	if view.Own != 0 {
		t.Error("snapshot view has no owner")
	}
	if view.Visible(t1.ID) {
		t.Error("active txn invisible to snapshot")
	}
	t1.Commit()
	view2 := m.View(nil)
	if !view2.Visible(t1.ID) {
		t.Error("committed txn visible to later snapshot")
	}
}

func TestLowWatermarkAdvances(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	v1 := m.View(nil)
	if v1.Low != t1.ID {
		t.Errorf("low = %d", v1.Low)
	}
	t1.Commit()
	v2 := m.View(nil)
	if v2.Low != v2.High {
		t.Errorf("with no active txns low should equal high, got %d/%d", v2.Low, v2.High)
	}
}

func TestUndoResolve(t *testing.T) {
	m := NewManager()
	u := NewUndoLog()
	writer1 := m.Begin()
	writer1.Commit()
	reader := m.View(nil) // sees writer1 only

	writer2 := m.Begin()
	// writer2 updates row "k": push the version writer1 wrote.
	u.Push(1, []byte("k"), UndoRecord{TrxID: writer1.ID, Row: []byte("v1")})

	// The in-page version (by writer2) is invisible to reader; undo
	// resolution returns v1.
	if reader.Visible(writer2.ID) {
		t.Fatal("active writer2 should be invisible")
	}
	rec, ok := u.Resolve(1, []byte("k"), reader)
	if !ok || string(rec.Row) != "v1" {
		t.Fatalf("resolve = %v %v", rec, ok)
	}

	// A brand-new row inserted by writer2 has no undo chain: invisible
	// and unresolvable → logically absent.
	if _, ok := u.Resolve(1, []byte("new"), reader); ok {
		t.Error("unresolvable row should be absent")
	}

	// After commit, new views see the page version directly; undo
	// remains for old views.
	writer2.Commit()
	newView := m.View(nil)
	if !newView.Visible(writer2.ID) {
		t.Error("committed writer2 visible to new view")
	}
}

func TestUndoChainOrder(t *testing.T) {
	m := NewManager()
	u := NewUndoLog()
	// Three writers in sequence, each pushing the prior version.
	w1 := m.Begin()
	w1.Commit()
	viewAfter1 := m.View(nil)
	w2 := m.Begin()
	u.Push(1, []byte("k"), UndoRecord{TrxID: w1.ID, Row: []byte("v1")})
	w2.Commit()
	viewAfter2 := m.View(nil)
	w3 := m.Begin()
	u.Push(1, []byte("k"), UndoRecord{TrxID: w2.ID, Row: []byte("v2")})

	// viewAfter2 sees w2's version; viewAfter1 sees w1's.
	rec, ok := u.Resolve(1, []byte("k"), viewAfter2)
	if !ok || string(rec.Row) != "v2" {
		t.Errorf("viewAfter2 resolved %q", rec.Row)
	}
	rec, ok = u.Resolve(1, []byte("k"), viewAfter1)
	if !ok || string(rec.Row) != "v1" {
		t.Errorf("viewAfter1 resolved %q", rec.Row)
	}
	w3.Commit()
	if u.Len() != 2 {
		t.Errorf("undo len = %d", u.Len())
	}
}

func TestDeletedTombstone(t *testing.T) {
	m := NewManager()
	u := NewUndoLog()
	w1 := m.Begin()
	w1.Commit()
	view := m.View(nil)
	w2 := m.Begin()
	u.Push(1, []byte("k"), UndoRecord{TrxID: w1.ID, Row: []byte("v1")})
	_ = w2
	rec, ok := u.Resolve(1, []byte("k"), view)
	if !ok || rec.Deleted {
		t.Error("old version should be a live row")
	}
}

func TestTxnLSNWatermark(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if tx.MaxLSN() != 0 {
		t.Fatalf("fresh transaction watermark = %d", tx.MaxLSN())
	}
	tx.ObserveLSN(7)
	tx.ObserveLSN(3) // stale observations never regress the watermark
	if tx.MaxLSN() != 7 {
		t.Fatalf("watermark = %d, want 7", tx.MaxLSN())
	}
	tx.ObserveLSN(12)
	if tx.MaxLSN() != 12 {
		t.Fatalf("watermark = %d, want 12", tx.MaxLSN())
	}
}
