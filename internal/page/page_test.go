package page

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPageHeader(t *testing.T) {
	p := New(42, 7, 1)
	if p.ID() != 42 || p.IndexID() != 7 || p.Level() != 1 {
		t.Fatalf("header fields wrong: id=%d idx=%d level=%d", p.ID(), p.IndexID(), p.Level())
	}
	if p.NumRecords() != 0 || p.FirstRecord() != 0 {
		t.Fatal("new page should be empty")
	}
	if p.PrevPage() != InvalidPageID || p.NextPage() != InvalidPageID {
		t.Fatal("page links should start invalid")
	}
	if p.IsNDP() {
		t.Fatal("regular page must not have NDP flag")
	}
	if len(p.Bytes()) != Size {
		t.Fatalf("regular page Bytes() = %d", len(p.Bytes()))
	}
	p.SetLSN(99)
	if p.LSN() != 99 {
		t.Fatal("LSN round trip")
	}
}

func TestFromBytesValidation(t *testing.T) {
	p := New(1, 1, 0)
	q, err := FromBytes(p.Bytes())
	if err != nil || q.ID() != 1 {
		t.Fatalf("FromBytes: %v", err)
	}
	if _, err := FromBytes(make([]byte, 10)); err == nil {
		t.Error("short buffer should fail")
	}
	bad := make([]byte, Size)
	if _, err := FromBytes(bad); err == nil {
		t.Error("zero magic should fail")
	}
}

func TestInsertAndIterOrder(t *testing.T) {
	p := New(1, 1, 0)
	// Insert c, a, b via InsertAfter to exercise chain maintenance:
	// a at head, b after a, c last.
	offC, err := p.InsertAfter(0, RecOrdinary, 10, []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	offA, err := p.InsertAfter(0, RecOrdinary, 11, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = p.InsertAfter(offA, RecOrdinary, 12, []byte("b")); err != nil {
		t.Fatal(err)
	}
	_ = offC
	var got []string
	p.Iter(func(r Record) bool {
		got = append(got, string(r.Payload))
		return true
	})
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if p.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", p.NumRecords())
	}
	recs := p.Records()
	if recs[0].TrxID != 11 || recs[2].TrxID != 10 {
		t.Error("trx ids misplaced")
	}
}

func TestAppendKeepsArrivalOrder(t *testing.T) {
	p := New(1, 1, 0)
	for i := 0; i < 10; i++ {
		if _, err := p.Append(RecOrdinary, uint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	recs := p.Records()
	for i, r := range recs {
		if r.Payload[0] != byte(i) {
			t.Fatalf("record %d payload %d", i, r.Payload[0])
		}
	}
}

func TestRecordTypesAndDeleteMark(t *testing.T) {
	p := New(1, 1, 0)
	off, _ := p.Append(RecNDPAggregate, 5, []byte("agg"))
	r := p.RecordAt(off)
	if r.Type != RecNDPAggregate || r.Deleted {
		t.Fatalf("record = %+v", r)
	}
	p.SetDeleteMark(off, true)
	r = p.RecordAt(off)
	if !r.Deleted || r.Type != RecNDPAggregate {
		t.Fatal("delete mark must not clobber type")
	}
	p.SetDeleteMark(off, false)
	if p.RecordAt(off).Deleted {
		t.Fatal("unmark failed")
	}
	p.SetTrxID(off, 77)
	if p.RecordAt(off).TrxID != 77 {
		t.Fatal("SetTrxID failed")
	}
}

func TestPageFull(t *testing.T) {
	p := New(1, 1, 0)
	payload := bytes.Repeat([]byte("x"), 100)
	n := 0
	for {
		if !p.HasRoomFor(len(payload)) {
			break
		}
		if _, err := p.Append(RecOrdinary, 0, payload); err != nil {
			t.Fatalf("append with room reported: %v", err)
		}
		n++
	}
	if _, err := p.Append(RecOrdinary, 0, payload); err == nil {
		t.Fatal("append to full page should fail")
	}
	if n < 100 {
		t.Fatalf("expected >100 records in a 16K page, got %d", n)
	}
	if p.NumRecords() != n {
		t.Fatalf("NumRecords %d != %d", p.NumRecords(), n)
	}
}

func TestUnlink(t *testing.T) {
	p := New(1, 1, 0)
	offA, _ := p.Append(RecOrdinary, 0, []byte("a"))
	p.Append(RecOrdinary, 0, []byte("b"))
	p.Append(RecOrdinary, 0, []byte("c"))
	// Unlink b (after a).
	if v := p.Unlink(offA); v == 0 {
		t.Fatal("unlink failed")
	}
	var got []string
	p.Iter(func(r Record) bool {
		got = append(got, string(r.Payload))
		return true
	})
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("after unlink: %v", got)
	}
	// Unlink head.
	p.Unlink(0)
	if p.NumRecords() != 1 || string(p.Records()[0].Payload) != "c" {
		t.Fatalf("after head unlink: %v", p.Records())
	}
	// Unlink at tail returns 0.
	last := p.FirstRecord()
	if v := p.Unlink(last); v != 0 {
		t.Fatal("unlink past end should return 0")
	}
	// Unlink from empty page.
	p.Unlink(0)
	if v := p.Unlink(0); v != 0 {
		t.Fatal("unlink on empty should return 0")
	}
}

func TestCompact(t *testing.T) {
	p := New(9, 3, 0)
	p.SetLSN(123)
	p.SetPrevPage(7)
	p.SetNextPage(8)
	var offs []int
	for i := 0; i < 6; i++ {
		off, _ := p.Append(RecOrdinary, uint64(i), []byte{byte('a' + i)})
		offs = append(offs, off)
	}
	p.SetDeleteMark(offs[1], true)
	p.SetDeleteMark(offs[4], true)
	before := p.FreeSpace()
	if dropped := p.Compact(); dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
	if p.FreeSpace() <= before {
		t.Error("compaction should reclaim space")
	}
	var got []byte
	p.Iter(func(r Record) bool {
		got = append(got, r.Payload[0])
		return true
	})
	if string(got) != "acdf" {
		t.Fatalf("after compact: %q", got)
	}
	if p.LSN() != 123 || p.PrevPage() != 7 || p.NextPage() != 8 || p.ID() != 9 {
		t.Error("compact must preserve header fields")
	}
}

func TestNDPPage(t *testing.T) {
	p := NewNDP(5, 2, 4096)
	if !p.IsNDP() {
		t.Fatal("NDP flag missing")
	}
	p.Append(RecNDPProjection, 1, []byte("narrow"))
	b := p.Bytes()
	if len(b) >= 4096 {
		t.Fatalf("NDP Bytes() should truncate to used size, got %d", len(b))
	}
	q, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsNDP() || q.NumRecords() != 1 || q.Records()[0].Type != RecNDPProjection {
		t.Fatal("NDP page round trip failed")
	}
	// Empty-page marker.
	e := NewNDP(6, 2, 0)
	e.SetFlags(FlagNDPEmpty)
	if !e.IsNDPEmpty() {
		t.Fatal("empty marker")
	}
	if len(e.Bytes()) != HeaderSize {
		t.Fatalf("empty NDP page should be header-only, got %d bytes", len(e.Bytes()))
	}
	// Skipped marker.
	s := New(7, 2, 0)
	s.SetFlags(FlagNDPSkipped)
	if !s.IsNDPSkipped() {
		t.Fatal("skipped marker")
	}
	// Capacity clamping.
	big := NewNDP(1, 1, MaxNDPSize*2)
	if len(big.buf) != MaxNDPSize {
		t.Fatalf("capacity should clamp to %d, got %d", MaxNDPSize, len(big.buf))
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := New(1, 1, 0)
	p.Append(RecOrdinary, 0, []byte("x"))
	q := p.Clone()
	q.Append(RecOrdinary, 0, []byte("y"))
	if p.NumRecords() != 1 || q.NumRecords() != 2 {
		t.Fatal("clone aliases original")
	}
}

// Property: inserting random records in sorted position (by payload) via
// InsertAfter always yields a sorted iteration, and record count and
// payloads survive.
func TestInsertSortedQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := New(1, 1, 0)
		n := 1 + r.Intn(60)
		var want []string
		for i := 0; i < n; i++ {
			payload := []byte(fmt.Sprintf("%04d", r.Intn(1000)))
			// Find insert position: last record < payload.
			prev := 0
			for off := p.FirstRecord(); off != 0; {
				rec := p.RecordAt(off)
				if bytes.Compare(rec.Payload, payload) >= 0 {
					break
				}
				prev = off
				off = rec.Next()
			}
			if _, err := p.InsertAfter(prev, RecOrdinary, uint64(i), payload); err != nil {
				return false
			}
			want = append(want, string(payload))
		}
		sort.Strings(want)
		var got []string
		p.Iter(func(rec Record) bool {
			got = append(got, string(rec.Payload))
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return p.NumRecords() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestIterEarlyStop(t *testing.T) {
	p := New(1, 1, 0)
	for i := 0; i < 5; i++ {
		p.Append(RecOrdinary, 0, []byte{byte(i)})
	}
	count := 0
	p.Iter(func(Record) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}
