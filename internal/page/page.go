// Package page implements the storage page and record formats.
//
// Regular pages are fixed-size 16 KB, like InnoDB's default. NDP pages
// are variable-length but share the same header and record structure so
// that "the existing InnoDB page cursor functions, which iterate over
// records in a page, remain unchanged" (§IV-C2). Records carry a type
// field in their header; the paper adds two values —
// REC_STATUS_NDP_PROJECTION and REC_STATUS_NDP_AGGREGATE (Listing 3) —
// which are reproduced here verbatim. Records are chained in index key
// order by a next-record offset, so an NDP scan of an index still
// satisfies ordering requirements.
package page

import (
	"encoding/binary"
	"fmt"
)

// Size is the fixed byte size of a regular page (InnoDB default 16 KB).
const Size = 16384

// HeaderSize is the fixed page header length shared by regular and NDP
// pages.
const HeaderSize = 56

// MaxNDPSize caps variable-length NDP pages. An NDP page derived from one
// 16 KB page can only shrink (filtering, projection) or grow by a few
// bytes per record (aggregate payloads); cross-page aggregation attaches
// only aggregate state. Offsets are 16-bit, so 64 KB is the hard ceiling.
const MaxNDPSize = 65536

// Record type codes. The first four are InnoDB's classical values; the
// last two are the NDP additions from the paper's Listing 3.
const (
	RecOrdinary      = 0
	RecNodePtr       = 1
	RecInfimum       = 2
	RecSupremum      = 3
	RecNDPProjection = 4
	RecNDPAggregate  = 5
)

// Header flag bits.
const (
	// FlagNDP marks a page produced by Page Store NDP processing.
	FlagNDP = 1 << 0
	// FlagNDPEmpty marks an NDP page whose records were all filtered
	// out; such pages are "indicated specially without requiring
	// explicit materialization" (§IV-C2) — the page carries a header
	// and no records.
	FlagNDPEmpty = 1 << 1
	// FlagNDPSkipped marks a page the Page Store returned unprocessed
	// because of resource control; it is a regular page image and the
	// frontend must complete the requested NDP work (§IV-D2).
	FlagNDPSkipped = 1 << 2
)

// Header field offsets within the page buffer.
const (
	offMagic    = 0  // uint32
	offPageID   = 4  // uint64
	offLSN      = 12 // uint64
	offIndexID  = 20 // uint64
	offLevel    = 28 // uint16
	offNRecs    = 30 // uint16
	offFlags    = 32 // uint8
	offFirstRec = 34 // uint16 (0 = empty)
	offFreeOff  = 36 // uint16 (next free heap byte)
	offPrevPage = 38 // uint64
	offNextPage = 46 // uint64
)

const magic = 0x54504731 // "TPG1"

// recHdrSize is the fixed prefix of every record: type byte, next-record
// offset, transaction ID.
const recHdrSize = 1 + 2 + 8

const deleteMarkBit = 0x80

// InvalidPageID marks absent page links.
const InvalidPageID = ^uint64(0)

// Page is a view over a page buffer. The zero value is invalid; use New
// or FromBytes.
type Page struct {
	buf []byte
}

// New formats a fresh regular page in a newly allocated 16 KB buffer.
func New(pageID, indexID uint64, level uint16) *Page {
	p := &Page{buf: make([]byte, Size)}
	p.init(pageID, indexID, level)
	return p
}

// NewNDP formats a variable-length NDP page with the given capacity.
func NewNDP(pageID, indexID uint64, capacity int) *Page {
	if capacity < HeaderSize {
		capacity = HeaderSize
	}
	if capacity > MaxNDPSize {
		capacity = MaxNDPSize
	}
	p := &Page{buf: make([]byte, capacity)}
	p.init(pageID, indexID, 0)
	p.SetFlags(FlagNDP)
	return p
}

func (p *Page) init(pageID, indexID uint64, level uint16) {
	binary.LittleEndian.PutUint32(p.buf[offMagic:], magic)
	binary.LittleEndian.PutUint64(p.buf[offPageID:], pageID)
	binary.LittleEndian.PutUint64(p.buf[offIndexID:], indexID)
	binary.LittleEndian.PutUint16(p.buf[offLevel:], level)
	binary.LittleEndian.PutUint16(p.buf[offFreeOff:], HeaderSize)
	binary.LittleEndian.PutUint64(p.buf[offPrevPage:], InvalidPageID)
	binary.LittleEndian.PutUint64(p.buf[offNextPage:], InvalidPageID)
}

// FromBytes wraps an existing page image, validating the magic.
func FromBytes(buf []byte) (*Page, error) {
	if len(buf) < HeaderSize {
		return nil, fmt.Errorf("page: buffer too small (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[offMagic:]) != magic {
		return nil, fmt.Errorf("page: bad magic")
	}
	return &Page{buf: buf}, nil
}

// Bytes returns the page image, truncated to the used length for NDP
// pages (they ship over the network, so trailing free space is dropped).
func (p *Page) Bytes() []byte {
	if p.IsNDP() {
		return p.buf[:p.FreeOff()]
	}
	return p.buf
}

// Clone returns a deep copy of the page.
func (p *Page) Clone() *Page {
	b := make([]byte, len(p.buf))
	copy(b, p.buf)
	return &Page{buf: b}
}

// Accessors.

func (p *Page) ID() uint64           { return binary.LittleEndian.Uint64(p.buf[offPageID:]) }
func (p *Page) LSN() uint64          { return binary.LittleEndian.Uint64(p.buf[offLSN:]) }
func (p *Page) SetLSN(lsn uint64)    { binary.LittleEndian.PutUint64(p.buf[offLSN:], lsn) }
func (p *Page) IndexID() uint64      { return binary.LittleEndian.Uint64(p.buf[offIndexID:]) }
func (p *Page) Level() uint16        { return binary.LittleEndian.Uint16(p.buf[offLevel:]) }
func (p *Page) NumRecords() int      { return int(binary.LittleEndian.Uint16(p.buf[offNRecs:])) }
func (p *Page) Flags() uint8         { return p.buf[offFlags] }
func (p *Page) SetFlags(f uint8)     { p.buf[offFlags] |= f }
func (p *Page) IsNDP() bool          { return p.Flags()&FlagNDP != 0 }
func (p *Page) IsNDPEmpty() bool     { return p.Flags()&FlagNDPEmpty != 0 }
func (p *Page) IsNDPSkipped() bool   { return p.Flags()&FlagNDPSkipped != 0 }
func (p *Page) FreeOff() int         { return int(binary.LittleEndian.Uint16(p.buf[offFreeOff:])) }
func (p *Page) PrevPage() uint64     { return binary.LittleEndian.Uint64(p.buf[offPrevPage:]) }
func (p *Page) NextPage() uint64     { return binary.LittleEndian.Uint64(p.buf[offNextPage:]) }
func (p *Page) SetPrevPage(v uint64) { binary.LittleEndian.PutUint64(p.buf[offPrevPage:], v) }
func (p *Page) SetNextPage(v uint64) { binary.LittleEndian.PutUint64(p.buf[offNextPage:], v) }

// FirstRecord returns the heap offset of the first record in key order,
// or 0 if the page is empty.
func (p *Page) FirstRecord() int {
	return int(binary.LittleEndian.Uint16(p.buf[offFirstRec:]))
}

func (p *Page) setFirstRecord(off int) {
	binary.LittleEndian.PutUint16(p.buf[offFirstRec:], uint16(off))
}

func (p *Page) setNumRecords(n int) {
	binary.LittleEndian.PutUint16(p.buf[offNRecs:], uint16(n))
}

func (p *Page) setFreeOff(off int) {
	binary.LittleEndian.PutUint16(p.buf[offFreeOff:], uint16(off))
}

// FreeSpace returns the bytes available in the heap.
func (p *Page) FreeSpace() int { return len(p.buf) - p.FreeOff() }

// Record is a decoded view of one record. Payload aliases the page
// buffer; callers that retain it across page mutations must copy.
type Record struct {
	Off     int
	Type    uint8
	Deleted bool
	TrxID   uint64
	Payload []byte
	next    int
}

// Next returns the heap offset of the next record in key order (0 = end).
func (r Record) Next() int { return r.next }

// RecordAt decodes the record at the given heap offset.
func (p *Page) RecordAt(off int) Record {
	t := p.buf[off]
	next := int(binary.LittleEndian.Uint16(p.buf[off+1:]))
	trx := binary.LittleEndian.Uint64(p.buf[off+3:])
	l, n := binary.Uvarint(p.buf[off+recHdrSize:])
	start := off + recHdrSize + n
	return Record{
		Off:     off,
		Type:    t &^ deleteMarkBit,
		Deleted: t&deleteMarkBit != 0,
		TrxID:   trx,
		Payload: p.buf[start : start+int(l)],
		next:    next,
	}
}

// recordSize returns the total heap footprint of a record with the given
// payload length.
func recordSize(payloadLen int) int {
	return recHdrSize + uvarintLen(uint64(payloadLen)) + payloadLen
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// HasRoomFor reports whether a record with the given payload size fits.
func (p *Page) HasRoomFor(payloadLen int) bool {
	return p.FreeSpace() >= recordSize(payloadLen)
}

// InsertAfter writes a new record into the heap, linking it after the
// record at prevOff (or at the head if prevOff is 0). Returns the new
// record's offset. The caller (the B+ tree) is responsible for choosing
// prevOff so that key order is preserved.
func (p *Page) InsertAfter(prevOff int, recType uint8, trxID uint64, payload []byte) (int, error) {
	need := recordSize(len(payload))
	if p.FreeSpace() < need {
		return 0, fmt.Errorf("page %d: full (%d free, %d needed)", p.ID(), p.FreeSpace(), need)
	}
	off := p.FreeOff()
	p.buf[off] = recType
	binary.LittleEndian.PutUint64(p.buf[off+3:], trxID)
	n := binary.PutUvarint(p.buf[off+recHdrSize:], uint64(len(payload)))
	copy(p.buf[off+recHdrSize+n:], payload)
	// Link into the order chain.
	if prevOff == 0 {
		binary.LittleEndian.PutUint16(p.buf[off+1:], uint16(p.FirstRecord()))
		p.setFirstRecord(off)
	} else {
		prevNext := binary.LittleEndian.Uint16(p.buf[prevOff+1:])
		binary.LittleEndian.PutUint16(p.buf[off+1:], prevNext)
		binary.LittleEndian.PutUint16(p.buf[prevOff+1:], uint16(off))
	}
	p.setFreeOff(off + need)
	p.setNumRecords(p.NumRecords() + 1)
	return off, nil
}

// Append adds a record at the tail of the order chain; used by bulk
// loading and by NDP page construction, where records arrive already in
// key order.
func (p *Page) Append(recType uint8, trxID uint64, payload []byte) (int, error) {
	return p.InsertAfter(p.lastRecord(), recType, trxID, payload)
}

func (p *Page) lastRecord() int {
	off := p.FirstRecord()
	if off == 0 {
		return 0
	}
	for {
		next := int(binary.LittleEndian.Uint16(p.buf[off+1:]))
		if next == 0 {
			return off
		}
		off = next
	}
}

// SetDeleteMark sets or clears the delete mark of the record at off.
// Delete-marked records stay in the chain (InnoDB purge reclaims them
// later; this reproduction reclaims on page rebuild).
func (p *Page) SetDeleteMark(off int, deleted bool) {
	if deleted {
		p.buf[off] |= deleteMarkBit
	} else {
		p.buf[off] &^= deleteMarkBit
	}
}

// SetTrxID overwrites the transaction id of the record at off.
func (p *Page) SetTrxID(off int, trxID uint64) {
	binary.LittleEndian.PutUint64(p.buf[off+3:], trxID)
}

// Unlink removes the record after prevOff (head if prevOff == 0) from the
// order chain without reclaiming heap space. Returns the unlinked offset.
func (p *Page) Unlink(prevOff int) int {
	var victim int
	if prevOff == 0 {
		victim = p.FirstRecord()
		if victim == 0 {
			return 0
		}
		next := binary.LittleEndian.Uint16(p.buf[victim+1:])
		p.setFirstRecord(int(next))
	} else {
		victim = int(binary.LittleEndian.Uint16(p.buf[prevOff+1:]))
		if victim == 0 {
			return 0
		}
		next := binary.LittleEndian.Uint16(p.buf[victim+1:])
		binary.LittleEndian.PutUint16(p.buf[prevOff+1:], next)
	}
	p.setNumRecords(p.NumRecords() - 1)
	return victim
}

// Iter walks the record chain in key order, calling fn for each record
// (including delete-marked ones); fn returning false stops the walk.
func (p *Page) Iter(fn func(Record) bool) {
	for off := p.FirstRecord(); off != 0; {
		r := p.RecordAt(off)
		if !fn(r) {
			return
		}
		off = r.next
	}
}

// Records returns all records in key order; primarily for tests.
func (p *Page) Records() []Record {
	out := make([]Record, 0, p.NumRecords())
	p.Iter(func(r Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Compact rebuilds the heap dropping delete-marked records and reclaiming
// free space; the order chain is preserved. Returns the number of records
// dropped.
func (p *Page) Compact() int {
	fresh := &Page{buf: make([]byte, len(p.buf))}
	fresh.init(p.ID(), p.IndexID(), p.Level())
	fresh.buf[offFlags] = p.buf[offFlags]
	fresh.SetLSN(p.LSN())
	fresh.SetPrevPage(p.PrevPage())
	fresh.SetNextPage(p.NextPage())
	dropped := 0
	p.Iter(func(r Record) bool {
		if r.Deleted {
			dropped++
			return true
		}
		if _, err := fresh.Append(r.Type, r.TrxID, r.Payload); err != nil {
			panic("page: compaction cannot overflow") // same or less data
		}
		return true
	})
	copy(p.buf, fresh.buf)
	return dropped
}
