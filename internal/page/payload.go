package page

import (
	"encoding/binary"
	"fmt"
)

// Record payload formats shared by the B+ tree, the storage engine, and
// the Page Store NDP plugin.
//
// Leaf records:   [uvarint keyLen][key bytes][row bytes]
//
// The key prefix is the memcmp-comparable encoding of the index key. It
// plays the role InnoDB's always-included primary key columns play in the
// paper (§V-A): even after NDP column projection, the key survives so the
// persistent cursor can re-position and ordering checks remain possible.
// The row bytes are the types row codec encoding of the index schema (for
// NDP-projected records, of the projected schema), possibly followed by
// an aggregate-state blob for RecNDPAggregate records.
//
// Node-pointer records: [uvarint keyLen][key bytes][8-byte child page ID]

// EncodeLeafPayload builds a leaf record payload.
func EncodeLeafPayload(dst, key, row []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	return append(dst, row...)
}

// SplitLeafPayload splits a leaf payload into its key and row parts.
func SplitLeafPayload(payload []byte) (key, row []byte, err error) {
	l, n := binary.Uvarint(payload)
	if n <= 0 || len(payload) < n+int(l) {
		return nil, nil, fmt.Errorf("page: corrupt leaf payload")
	}
	return payload[n : n+int(l)], payload[n+int(l):], nil
}

// EncodeNodePtr builds a node-pointer record payload.
func EncodeNodePtr(dst, key []byte, child uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	return binary.LittleEndian.AppendUint64(dst, child)
}

// SplitNodePtr splits a node-pointer payload into key and child page ID.
func SplitNodePtr(payload []byte) (key []byte, child uint64, err error) {
	l, n := binary.Uvarint(payload)
	if n <= 0 || len(payload) < n+int(l)+8 {
		return nil, 0, fmt.Errorf("page: corrupt node pointer payload")
	}
	key = payload[n : n+int(l)]
	child = binary.LittleEndian.Uint64(payload[n+int(l):])
	return key, child, nil
}
