package sal

import (
	"taurus/internal/obs"
)

// salMetrics holds the SAL's optional write/read-path instruments. The
// zero value (all nil) is fully inert: every instrument method is
// nil-receiver safe, so uninstrumented SALs pay at most a branch per
// blocked wait and nothing on the unblocked fast paths.
type salMetrics struct {
	// Write-path stage histograms, one series per stage label:
	//   stage_wait   – writer blocked on staging/apply backpressure
	//   seal         – window age, first staged record → seal
	//   append       – Log Store append round trip (network + fsync)
	//   durable_wait – commit blocked on the durable watermark
	//   apply_wait   – read blocked on a page's applied LSN
	//   apply        – Page Store apply round trip (all replicas)
	stageWait   *obs.Histogram
	seal        *obs.Histogram
	append      *obs.Histogram
	durableWait *obs.Histogram
	applyWait   *obs.Histogram
	apply       *obs.Histogram

	// Read-path fetch histograms.
	fetchPage  *obs.Histogram
	fetchBatch *obs.Histogram

	enabled bool
}

const writepathStageHist = "taurus_writepath_stage_seconds"

// initMetrics registers the SAL's instruments in reg and wires scrape-
// time gauges over the existing pipeline counters. No-op when reg is
// nil.
func (s *SAL) initMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram(writepathStageHist,
			"Write-path stage latency: stage_wait, seal, append, durable_wait, apply_wait, apply.",
			nil, obs.L("stage", name))
	}
	s.m = salMetrics{
		stageWait:   stage("stage_wait"),
		seal:        stage("seal"),
		append:      stage("append"),
		durableWait: stage("durable_wait"),
		applyWait:   stage("apply_wait"),
		apply:       stage("apply"),
		fetchPage: reg.Histogram("taurus_pagestore_fetch_seconds",
			"Page Store fetch round trip.", nil, obs.L("kind", "page")),
		fetchBatch: reg.Histogram("taurus_pagestore_fetch_seconds",
			"Page Store fetch round trip.", nil, obs.L("kind", "batch")),
		enabled: true,
	}
	reg.GaugeFunc("taurus_sal_durable_lsn", "Durable (commit) watermark.",
		func() float64 { return float64(s.durableAtomic.Load()) })
	reg.GaugeFunc("taurus_sal_allocated_lsn", "Last allocated LSN.",
		func() float64 { return float64(s.lsn.Load()) })
	reg.GaugeFunc("taurus_sal_pending_records", "Records staged or in flight, not yet applied.",
		func() float64 { return float64(s.pending.Load()) })
	reg.CounterFunc("taurus_sal_windows_flushed_total", "Sealed group-commit windows across all lanes.",
		func() float64 {
			var n uint64
			for _, ln := range s.lanes {
				n += ln.windows.Load()
			}
			return float64(n)
		})
	reg.CounterFunc("taurus_sal_backpressure_stalls_total", "Writer/flusher stalls on staging or in-flight budgets.",
		func() float64 { return float64(s.counters.backpressureStalls.Load()) })
	reg.CounterFunc("taurus_sal_commit_waits_total", "WaitDurable calls that actually blocked.",
		func() float64 { return float64(s.counters.commitWaits.Load()) })
	reg.CounterFunc("taurus_sal_apply_waits_total", "Reads that blocked on a page's applied LSN.",
		func() float64 { return float64(s.counters.applyWaits.Load()) })
	reg.CounterFunc("taurus_sal_replica_notifies_total", "Durable-watermark notifications sent to read replicas.",
		func() float64 { return float64(s.counters.replicaNotifies.Load()) })
	reg.CounterFunc("taurus_sal_frontier_notifies_total", "Applied-frontier relays sent to Log Stores for push-stream piggybacking.",
		func() float64 { return float64(s.counters.frontierNotifies.Load()) })
}
