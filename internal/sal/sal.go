// Package sal implements the Storage Abstraction Layer: "an independent
// component running on the database server [that] isolates the database
// frontend from the underlying complexity of remote storage; slicing of
// the database; ... The SAL writes log records to Log Stores; distributes
// them to Page Stores; and reads pages from Page Stores. The SAL is also
// responsible for creating, managing, and destroying slices in Page
// Stores; and routing page read requests to Page Stores" (§II).
//
// The write path is a slice-partitioned, pipelined group-commit engine
// (see pipeline.go): writers stage records into per-slice lanes without
// blocking on I/O (hot slices get dedicated lanes, cold ones share the
// default lane), each lane's flusher ships sealed windows to the Log
// Stores (durability, in triplicate) and then to the Page Store
// replicas (application, asynchronous), and commit waiters block only
// until the durable-LSN watermark covers their transaction's own max
// LSN. Readers wait per page, not per slice.
//
// For batch reads, "the Storage Abstraction Layer splits a batch read
// into multiple sub-batches, based on where the pages are located. Pages
// that belong to the same slice are assigned to the same sub-batch. SAL
// concurrently sends the sub-batches to Page Stores, with the effect that
// multiple Page Stores are engaged in parallel" (§VI-2).
package sal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/obs"
	"taurus/internal/wal"
)

// DefaultPagesPerSlice maps the paper's fixed 10 GB slices onto 16 KB
// pages (10 GB / 16 KB = 655,360). Tests and benchmarks shrink it so
// small databases still spread across several slices and Page Stores.
const DefaultPagesPerSlice = 655360

// Config describes the storage cluster layout from one frontend's
// perspective.
type Config struct {
	// Tenant is this database frontend's tenant id on the multi-tenant
	// storage services.
	Tenant uint32
	// Transport carries requests to storage nodes.
	Transport cluster.Transport
	// LogStores are the Log Store node names; writes go to all of them
	// ("in triplicate" with the default three).
	LogStores []string
	// PageStores is the pool of Page Store node names.
	PageStores []string
	// ReplicationFactor is how many Page Stores host each slice
	// (default 3, capped to len(PageStores)).
	ReplicationFactor int
	// PagesPerSlice sets the slice size in pages (default 10 GB worth).
	PagesPerSlice uint64
	// Plugin names the NDP plugin Page Stores should use for this
	// frontend's descriptors.
	Plugin string
	// FlushThreshold pins every lane's group-commit window size (min =
	// max = value). 0 enables the adaptive threshold: each lane sizes
	// its window from EWMAs of arrival rate × fsync latency — batch
	// roughly what arrives during one fsync — clamped to
	// [FlushThresholdMin, FlushThresholdMax]. Commit and read waiters
	// seal early, so the threshold is purely a batching optimization.
	FlushThreshold int
	// FlushThresholdMin / FlushThresholdMax clamp the adaptive
	// threshold (defaults 16 / 1024). Ignored when FlushThreshold pins
	// it.
	FlushThresholdMin int
	FlushThresholdMax int
	// MaxInFlightWindows bounds each lane's LOG-stage depth: how many
	// of the lane's sealed windows may be waiting for Log Store
	// acknowledgement at once (default 8). Beyond it, the lane's
	// flusher — and eventually its writers — stall (backpressure),
	// without touching other lanes.
	MaxInFlightWindows int
	// ApplyBacklogWindows bounds each lane's APPLY-stage backlog: how
	// many durable windows may be queued or in flight toward the Page
	// Stores (default 256). Beyond it the lane's writers stall BEFORE
	// staging — deliberately before, because an unstaged record cannot
	// pin the durable watermark, so one slice's slow replica throttles
	// only its own lane's writers and never delays other lanes'
	// commits.
	ApplyBacklogWindows int
	// MaxSliceLanes is how many dedicated write lanes hot slices can be
	// promoted into, besides the shared lane (default 2). Negative
	// disables promotion entirely (single shared lane — the old
	// global-window behavior, kept for before/after benchmarks).
	MaxSliceLanes int
	// Metrics, when non-nil, receives write-path stage histograms,
	// fetch-latency histograms, and pipeline gauges. nil disables
	// instrumentation at near-zero cost.
	Metrics *obs.Registry
	// Tracer, when non-nil, records pipeline spans (sal.window,
	// sal.apply, sal.durable_wait) for sampled statements and lets the
	// trace context ride the transport to the storage nodes. nil
	// disables tracing at near-zero cost.
	Tracer *obs.Tracer
	// Events, when non-nil, is the flight recorder for structural
	// transitions: lane promotions/demotions, window seals by reason,
	// sticky-error poisoning. nil is inert.
	Events *obs.EventRing
	// DisableLeastLoadedReads pins scan sub-batch routing to plain
	// round-robin instead of the least-loaded replica pick (the
	// routing-off baseline in BENCH_analytics.json).
	DisableLeastLoadedReads bool
	// NotifyFrontier forces frontier relays (cluster.FrontierReq — the
	// durable watermark plus per-slice applied LSNs) to the Log Stores
	// on every advance, whether or not an embedded replica registered a
	// watch. Server deployments set it: remote replicas subscribe to
	// the Log Stores' push streams directly and the SAL never sees
	// them. Embedded deployments leave it off — AddFrontierWatch arms
	// the relays when the first replica opens, so masters without
	// replicas pay nothing.
	NotifyFrontier bool
}

// SAL is the storage abstraction layer instance inside one frontend.
type SAL struct {
	cfg Config

	lsn atomic.Uint64
	rr  atomic.Uint64 // round-robin read replica selector (point reads)

	// router + fanOut serve the NDP scan read path: per-replica
	// in-flight/EWMA tracking, least-loaded sub-batch routing, retry
	// and straggler hedging.
	router *ReadRouter
	fanOut *FanOut

	// Write lanes: lanes[0] is the shared lane, the rest are dedicated
	// lanes hot slices get promoted into. The slice→lane assignment
	// lives in each sliceProgress.
	lanes   []*lane
	pending atomic.Int64 // records staged or in flight, not yet applied

	// Hot-slice promotion/demotion state, owned by the shared lane's
	// flusher goroutine: laneHeat tracks shared-lane slices approaching
	// promotion, dedHeat tracks promoted slices cooling toward
	// demotion, freeLanes is the dedicated-lane pool, and
	// lastLaneRecords remembers each lane's record counter at the last
	// policy round (deltas feed the cooling EWMAs).
	laneHeat        map[uint32]float64
	dedHeat         map[uint32]float64
	heatObserved    int
	freeLanes       []*lane
	lastLaneRecords []uint64

	// Per-slice replica sets, lane assignments, and LSN frontiers.
	slMu      sync.Mutex
	sliceProg map[uint32]*sliceProgress

	// Durable (commit) watermark. durFloor freezes it below the first
	// failed window; durMu also guards every lane's pendingQ so sealing
	// and watermark recomputation are atomic. repGen (also under
	// durMu) bumps when the replica subscription list changes, so the
	// notifier re-announces the current watermark to late subscribers.
	durMu         sync.Mutex
	durCond       *sync.Cond
	durable       uint64
	durFloor      uint64
	repGen        uint64
	durableAtomic atomic.Uint64

	// Flush drain.
	flushMu   sync.Mutex
	flushCond *sync.Cond

	// Shared apply plumbing: per-slice FIFO workers fed by every lane's
	// dispatcher. Worker queues are unbounded lists (backpressure is
	// the per-lane apply backlog bound, applied to writers before they
	// stage) so handing a durable window to the apply stage never
	// blocks the durability pipeline.
	quit         chan struct{}
	applyMu      sync.Mutex
	applyWorkers map[uint32]*sliceQueue
	dispatchWG   sync.WaitGroup
	sliceWG      sync.WaitGroup
	applyDone    chan struct{}

	// Registered read replicas: transport node names notified (best
	// effort) whenever the durable watermark advances, so log-tailing
	// replicas refresh immediately instead of waiting out their poll
	// interval.
	repMu        sync.Mutex
	replicaNodes []string
	notifierDone chan struct{}
	// Frontier relays to the Log Stores (push-stream distribution):
	// frontierWatch counts embedded replicas that want them (remote
	// ones force them via Config.NotifyFrontier); appliedGen bumps when
	// any slice's applied-on-all-replicas LSN advances, waking the
	// notifier to relay the new frontier.
	frontierWatch atomic.Int64
	appliedGen    atomic.Uint64

	errMu sync.Mutex
	err   error

	// Sampled-transaction trace contexts, registered by the SQL layer
	// around a traced statement and consulted by Write to attribute
	// staged records (btree-created records carry only the TrxID, not
	// the context). traceCount gates the map lookup so the unsampled
	// fast path costs one atomic load.
	traceMu    sync.Mutex
	txnTraces  map[uint64]obs.TraceContext
	traceCount atomic.Int64

	closed    atomic.Bool
	closeOnce sync.Once

	counters pipelineCounters
	m        salMetrics
}

// New validates the config, starts the write pipeline, and returns a
// SAL. Call Close to drain and stop it.
func New(cfg Config) (*SAL, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("sal: transport required")
	}
	if len(cfg.PageStores) == 0 {
		return nil, fmt.Errorf("sal: at least one page store required")
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.ReplicationFactor > len(cfg.PageStores) {
		cfg.ReplicationFactor = len(cfg.PageStores)
	}
	if cfg.PagesPerSlice == 0 {
		cfg.PagesPerSlice = DefaultPagesPerSlice
	}
	if cfg.FlushThreshold < 0 {
		cfg.FlushThreshold = 0
	}
	if cfg.FlushThresholdMin <= 0 {
		cfg.FlushThresholdMin = DefaultFlushThresholdMin
	}
	if cfg.FlushThresholdMax < cfg.FlushThresholdMin {
		cfg.FlushThresholdMax = DefaultFlushThresholdMax
		if cfg.FlushThresholdMax < cfg.FlushThresholdMin {
			cfg.FlushThresholdMax = cfg.FlushThresholdMin
		}
	}
	if cfg.MaxInFlightWindows <= 0 {
		cfg.MaxInFlightWindows = DefaultMaxInFlightWindows
	}
	if cfg.ApplyBacklogWindows <= 0 {
		cfg.ApplyBacklogWindows = DefaultApplyBacklogWindows
	}
	if cfg.MaxSliceLanes == 0 {
		cfg.MaxSliceLanes = DefaultMaxSliceLanes
	} else if cfg.MaxSliceLanes < 0 {
		cfg.MaxSliceLanes = 0
	}
	s := &SAL{
		cfg:       cfg,
		sliceProg: make(map[uint32]*sliceProgress),
	}
	s.router = NewReadRouter()
	s.router.SetLeastLoaded(!cfg.DisableLeastLoadedReads)
	s.fanOut = &FanOut{
		Transport: cfg.Transport,
		Tenant:    cfg.Tenant,
		Plugin:    cfg.Plugin,
		SliceOf:   s.SliceOf,
		NodesFor: func(sliceID uint32, ids []uint64) ([]string, error) {
			if err := s.waitAppliedPages(sliceID, ids...); err != nil {
				return nil, err
			}
			return s.placement(sliceID)
		},
		Router: s.router,
		Events: cfg.Events,
	}
	s.initMetrics(cfg.Metrics)
	if cfg.Metrics != nil {
		s.router.RegisterMetrics(cfg.Metrics, "master")
	}
	s.startPipeline()
	return s, nil
}

// SetLeastLoadedReads toggles least-loaded scan routing at runtime
// (benchmarks flip it to measure routing on vs. off).
func (s *SAL) SetLeastLoadedReads(on bool) { s.router.SetLeastLoaded(on) }

// RouterStats snapshots the scan read router: sub-batches routed,
// retried, hedged, and the per-store load trackers.
func (s *SAL) RouterStats() RouterStats { return s.router.Stats() }

// SliceOf maps a page to its slice.
func (s *SAL) SliceOf(pageID uint64) uint32 {
	return uint32(pageID / s.cfg.PagesPerSlice)
}

// ReplicaSet computes a slice's Page Store replica set: round-robin by
// slice id over the node pool, so consecutive slices land on different
// Page Stores and batch reads fan out (§VI-2). Exported because the
// read-replica tier routes its page reads with the same rule — the two
// must never diverge, or replicas would read from nodes that do not
// host the slice.
func ReplicaSet(pageStores []string, replicationFactor int, sliceID uint32) []string {
	n := len(pageStores)
	nodes := make([]string, 0, replicationFactor)
	for i := 0; i < replicationFactor; i++ {
		nodes = append(nodes, pageStores[(int(sliceID)+i)%n])
	}
	return nodes
}

// CurrentLSN returns the last allocated LSN.
func (s *SAL) CurrentLSN() uint64 { return s.lsn.Load() }

// ResumeLSN moves the LSN allocator to at least lsn, so a frontend
// restarted over a recovered log continues the sequence instead of
// reissuing LSNs the Log Stores already consider durable. The durable
// watermark follows: those records are already acknowledged on disk.
func (s *SAL) ResumeLSN(lsn uint64) {
	for {
		cur := s.lsn.Load()
		if cur >= lsn || s.lsn.CompareAndSwap(cur, lsn) {
			break
		}
	}
	s.durMu.Lock()
	if lsn > s.durable {
		s.durable = lsn
		s.durableAtomic.Store(lsn)
		s.durCond.Broadcast()
	}
	s.durMu.Unlock()
}

// Replay pushes already-durable log records back through the Page Store
// application path, rebuilding slice state after a restart. Records keep
// the LSNs they were logged with; nothing is re-logged. Catalog records
// are frontend-only and skipped. Records must arrive in LSN order (the
// order the recovery reader yields them). Replay runs synchronously —
// it is a recovery-time operation, before any pipeline traffic.
func (s *SAL) Replay(recs []wal.Record) error {
	var order []uint32
	groups := make(map[uint32]*sliceBatch)
	maxLSN := uint64(0)
	for i := range recs {
		rec := &recs[i]
		if rec.Type == wal.TypeCatalog {
			continue
		}
		sliceID := s.SliceOf(rec.PageID)
		g, ok := groups[sliceID]
		if !ok {
			g = &sliceBatch{pageMax: make(map[uint64]uint64)}
			groups[sliceID] = g
			order = append(order, sliceID)
		}
		g.enc = rec.Encode(g.enc)
		if g.minLSN == 0 {
			g.minLSN = rec.LSN
		}
		if rec.LSN > g.maxLSN {
			g.maxLSN = rec.LSN
		}
		g.count++
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
	}
	for _, sliceID := range order {
		nodes, err := s.placement(sliceID)
		if err != nil {
			return err
		}
		for _, node := range nodes {
			if _, err := s.cfg.Transport.Call(node, &cluster.WriteLogsReq{
				Tenant: s.cfg.Tenant, SliceID: sliceID, Recs: groups[sliceID].enc,
			}); err != nil {
				return fmt.Errorf("sal: replaying slice %d to %s: %w", sliceID, node, err)
			}
		}
		sp := s.progress(sliceID)
		sp.lastStaged.Store(groups[sliceID].maxLSN)
		sp.mu.Lock()
		if groups[sliceID].maxLSN > sp.applied {
			sp.applied = groups[sliceID].maxLSN
		}
		sp.mu.Unlock()
	}
	s.ResumeLSN(maxLSN)
	return nil
}

// GCWatermark computes the cluster-wide log GC watermark: every Page
// Store node is asked for the minimum LSN its slices have durably
// persisted (checkpointed), and the minimum across all nodes hosting
// this tenant's slices comes back. Log records at or below the
// watermark are reflected in a durable page checkpoint on every replica
// of every slice, so — catalog coverage aside, which is the frontend
// checkpoint's job — they are no longer needed for recovery: in Taurus,
// "log records can be purged once all slice replicas have applied
// them". Returns 0 when nothing may be collected: no node hosts slices
// yet, or some slice has no durable checkpoint.
func (s *SAL) GCWatermark() (uint64, error) {
	var watermark uint64
	seen := false
	for _, node := range s.cfg.PageStores {
		resp, err := s.cfg.Transport.Call(node, &cluster.PageLSNReq{Tenant: s.cfg.Tenant})
		if err != nil {
			return 0, fmt.Errorf("sal: page store %s lsn query: %w", node, err)
		}
		r := resp.(*cluster.PageLSNResp)
		if r.Slices == 0 {
			continue
		}
		if r.PersistedLSN == 0 {
			return 0, nil // an unpersisted slice pins the whole log
		}
		if !seen || r.PersistedLSN < watermark {
			watermark = r.PersistedLSN
		}
		seen = true
	}
	if !seen {
		return 0, nil
	}
	return watermark, nil
}

// GCResult totals one TruncateLogs sweep across the Log Stores.
type GCResult struct {
	SegmentsRemoved int
	BytesReclaimed  uint64
}

// TruncateLogs asks every Log Store to garbage-collect records below
// watermark. The caller is responsible for the watermark's safety: it
// must not exceed what the durable checkpoints (page slices and the
// frontend's catalog/meta checkpoint) cover.
func (s *SAL) TruncateLogs(watermark uint64) (GCResult, error) {
	var res GCResult
	if watermark == 0 {
		return res, nil
	}
	for _, node := range s.cfg.LogStores {
		resp, err := s.cfg.Transport.Call(node, &cluster.LogTruncateReq{
			Tenant: s.cfg.Tenant, Watermark: watermark,
		})
		if err != nil {
			return res, fmt.Errorf("sal: log store %s truncate: %w", node, err)
		}
		gc := resp.(*cluster.LogGCResp)
		res.SegmentsRemoved += int(gc.Removed)
		res.BytesReclaimed += gc.Bytes
	}
	return res, nil
}

// RegisterReplica subscribes a read replica (a transport node name that
// handles cluster.LSNAdvanceReq) to durable-watermark advances.
func (s *SAL) RegisterReplica(node string) {
	s.repMu.Lock()
	s.replicaNodes = append(s.replicaNodes, node)
	s.repMu.Unlock()
	// Wake the notifier so a replica registered after the last write
	// still learns the current watermark promptly.
	s.durMu.Lock()
	s.repGen++
	s.durCond.Broadcast()
	s.durMu.Unlock()
}

// UnregisterReplica removes a read replica subscription.
func (s *SAL) UnregisterReplica(node string) {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	for i, n := range s.replicaNodes {
		if n == node {
			s.replicaNodes = append(s.replicaNodes[:i], s.replicaNodes[i+1:]...)
			return
		}
	}
}

// AddFrontierWatch arms frontier relays to the Log Stores: while at
// least one watch is held (one per subscribed embedded replica), every
// durable or applied advance is relayed as a cluster.FrontierReq —
// O(#LogStores) per advance, independent of the replica count — and the
// Log Store hubs piggyback it on their pushed stream frames.
func (s *SAL) AddFrontierWatch() {
	s.frontierWatch.Add(1)
	// Wake the notifier so a replica attaching after the last write
	// still gets the current frontier relayed promptly.
	s.durMu.Lock()
	s.repGen++
	s.durCond.Broadcast()
	s.durMu.Unlock()
}

// RemoveFrontierWatch releases one frontier watch.
func (s *SAL) RemoveFrontierWatch() {
	s.frontierWatch.Add(-1)
}

// frontierActive reports whether frontier relays should be sent.
func (s *SAL) frontierActive() bool {
	return (s.cfg.NotifyFrontier || s.frontierWatch.Load() > 0) && len(s.cfg.LogStores) > 0
}

// noteApplied wakes the notifier after a slice's applied-on-all-
// replicas LSN advanced. Free when no frontier watch is armed.
func (s *SAL) noteApplied() {
	if !s.frontierActive() {
		return
	}
	s.appliedGen.Add(1)
	s.durMu.Lock()
	s.durCond.Broadcast()
	s.durMu.Unlock()
}

// AppliedFrontier snapshots the durable watermark and every known
// slice's applied-on-all-replicas LSN — the payload of a frontier
// relay, and the authority a pushed replica advances its visible LSN
// against (an LSN the SAL reports applied is applied on EVERY Page
// Store replica of the slice, so the replica needs no per-node
// minimum of its own).
func (s *SAL) AppliedFrontier() (uint64, []cluster.SliceLSNEntry) {
	s.slMu.Lock()
	sps := make(map[uint32]*sliceProgress, len(s.sliceProg))
	for id, sp := range s.sliceProg {
		sps[id] = sp
	}
	s.slMu.Unlock()
	entries := make([]cluster.SliceLSNEntry, 0, len(sps))
	for id, sp := range sps {
		entries = append(entries, cluster.SliceLSNEntry{SliceID: id, AppliedLSN: sp.appliedLSN()})
	}
	return s.durableAtomic.Load(), entries
}

// readReplica picks a replica for reads, round-robin.
func (s *SAL) readReplica(nodes []string) string {
	return nodes[int(s.rr.Add(1))%len(nodes)]
}

// ReadPage fetches one page image at the given LSN (0 = latest). It
// waits only until the slice has applied everything staged for THIS
// page — never for the slice's whole staged prefix, let alone a full
// pipeline flush — and with nothing pending the wait is a single atomic
// load.
func (s *SAL) ReadPage(pageID, lsn uint64) ([]byte, error) {
	sliceID := s.SliceOf(pageID)
	if err := s.waitAppliedPages(sliceID, pageID); err != nil {
		return nil, err
	}
	nodes, err := s.placement(sliceID)
	if err != nil {
		return nil, err
	}
	var t0 time.Time
	if s.m.enabled {
		t0 = time.Now()
	}
	resp, err := s.cfg.Transport.Call(s.readReplica(nodes), &cluster.ReadPageReq{
		Tenant: s.cfg.Tenant, SliceID: sliceID, PageID: pageID, LSN: lsn,
	})
	if err != nil {
		return nil, err
	}
	if s.m.enabled {
		s.m.fetchPage.ObserveDuration(time.Since(t0))
	}
	return resp.(*cluster.PageResp).Page, nil
}

// BatchResult is the reassembled result of a fanned-out batch read.
type BatchResult struct {
	// Pages holds one encoded page per requested ID, in request order.
	Pages [][]byte
	// Processed and Skipped total the NDP resource-control outcomes
	// across all sub-batches.
	Processed int
	Skipped   int
	// SubBatches is how many Page Store requests served the batch.
	SubBatches int
}

// BatchRead splits the page list into per-slice sub-batches, dispatches
// them concurrently, and reassembles the responses in request order.
// desc is the encoded NDP descriptor (nil for a plain batch read). Each
// sub-batch waits only until the pages it actually requests are
// applied.
func (s *SAL) BatchRead(pageIDs []uint64, lsn uint64, desc []byte) (*BatchResult, error) {
	return s.BatchReadTraced(pageIDs, lsn, desc, obs.TraceContext{})
}

// BatchReadTraced is BatchRead with a trace context: when tc is valid
// (a sampled scan), the per-slice sub-batch RPCs carry it so the Page
// Stores' server spans hang under the scan's fan-out tree.
func (s *SAL) BatchReadTraced(pageIDs []uint64, lsn uint64, desc []byte, tc obs.TraceContext) (*BatchResult, error) {
	var t0 time.Time
	if s.m.enabled {
		t0 = time.Now()
		defer func() { s.m.fetchBatch.ObserveDuration(time.Since(t0)) }()
	}
	return s.fanOut.BatchRead(tc, pageIDs, lsn, desc)
}
