package sal

import (
	"testing"

	"taurus/internal/cluster"
	"taurus/internal/core"
	"taurus/internal/core/ir"
	"taurus/internal/expr"
	"taurus/internal/logstore"
	"taurus/internal/page"
	"taurus/internal/pagestore"
	"taurus/internal/pstore"
	"taurus/internal/types"
	"taurus/internal/wal"
)

var idvSchema = types.NewSchema(
	types.Column{Name: "id", Kind: types.KindInt},
	types.Column{Name: "v", Kind: types.KindInt},
)

type fixture struct {
	tr     *cluster.InProc
	sal    *SAL
	logs   []*logstore.Store
	stores []*pagestore.Store
}

func newFixture(t testing.TB, pagesPerSlice uint64, rf int) *fixture {
	t.Helper()
	tr := cluster.NewInProc()
	f := &fixture{tr: tr}
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		ls := logstore.New(n)
		f.logs = append(f.logs, ls)
		tr.Register(n, ls)
	}
	psNames := []string{"ps1", "ps2", "ps3", "ps4"}
	for _, n := range psNames {
		ps := pagestore.New(n)
		f.stores = append(f.stores, ps)
		tr.Register(n, ps)
	}
	s, err := New(Config{
		Tenant: 1, Transport: tr, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: rf, PagesPerSlice: pagesPerSlice, Plugin: pagestore.PluginInnoDB,
		FlushThreshold: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.sal = s
	return f
}

// writePages formats nPages with rowsPerPage rows each through the SAL.
func (f *fixture) writePages(t testing.TB, nPages, rowsPerPage int) {
	t.Helper()
	id := int64(0)
	for p := 1; p <= nPages; p++ {
		if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: uint64(p), IndexID: 1}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rowsPerPage; r++ {
			key := types.EncodeKey(nil, types.Row{types.NewInt(id)})
			row := types.EncodeRow(nil, idvSchema, types.Row{types.NewInt(id), types.NewInt(id % 10)})
			if _, err := f.sal.Write(&wal.Record{
				Type: wal.TypeInsertRec, PageID: uint64(p), Off: wal.OffAppend,
				TrxID: 5, Payload: page.EncodeLeafPayload(nil, key, row),
			}); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFixture(t, 4, 3) // 4 pages per slice → multiple slices
	f.writePages(t, 10, 6)
	for p := 1; p <= 10; p++ {
		raw, err := f.sal.ReadPage(uint64(p), 0)
		if err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
		pg, err := page.FromBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		if pg.NumRecords() != 6 {
			t.Errorf("page %d has %d records", p, pg.NumRecords())
		}
	}
}

func TestTriplicatedLogs(t *testing.T) {
	f := newFixture(t, 100, 3)
	f.writePages(t, 2, 4)
	want := f.logs[0].Len()
	if want == 0 {
		t.Fatal("no log records stored")
	}
	for _, ls := range f.logs {
		if ls.Len() != want {
			t.Errorf("log store %d has %d records, want %d", 0, ls.Len(), want)
		}
		if ls.DurableLSN() != f.sal.CurrentLSN() {
			t.Errorf("durable LSN %d != current %d", ls.DurableLSN(), f.sal.CurrentLSN())
		}
	}
}

func TestReplication(t *testing.T) {
	f := newFixture(t, 1000, 3)
	f.writePages(t, 3, 5)
	// Each slice is on 3 of the 4 stores; count stores that can serve
	// page 1.
	served := 0
	for _, ps := range f.stores {
		if _, err := ps.ReadPage(1, 0, 1, 0); err == nil {
			served++
		}
	}
	if served != 3 {
		t.Errorf("page 1 served by %d stores, want 3", served)
	}
}

func TestSliceMapping(t *testing.T) {
	f := newFixture(t, 16, 2)
	if f.sal.SliceOf(0) != 0 || f.sal.SliceOf(15) != 0 || f.sal.SliceOf(16) != 1 {
		t.Error("slice mapping wrong")
	}
}

func TestBatchReadFansOutAcrossSlices(t *testing.T) {
	f := newFixture(t, 3, 1) // tiny slices, one replica → deterministic placement
	f.writePages(t, 9, 4)    // slices 0,1,2,3 (pages 1..9 → ids/3)
	ids := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	res, err := f.sal.BatchRead(ids, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SubBatches < 3 {
		t.Errorf("expected fan-out over ≥3 sub-batches, got %d", res.SubBatches)
	}
	for i, raw := range res.Pages {
		pg, err := page.FromBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		if pg.ID() != ids[i] {
			t.Errorf("position %d: page %d, want %d", i, pg.ID(), ids[i])
		}
	}
}

func TestBatchReadNDPThroughSAL(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.writePages(t, 8, 10)
	prog, err := ir.Compile(expr.GE(expr.Col(1, "v"), expr.ConstInt(9)), 2)
	if err != nil {
		t.Fatal(err)
	}
	d := &core.Descriptor{
		IndexID: 1, Cols: []types.Kind{types.KindInt, types.KindInt},
		FixedLens: []uint16{0, 0}, Predicate: prog.Encode(), LowWatermark: 100,
	}
	before := f.tr.Stats.Snapshot()
	res, err := f.sal.BatchRead([]uint64{1, 2, 3, 4, 5, 6, 7, 8}, f.sal.CurrentLSN(), d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	ndpBytes := f.tr.Stats.Snapshot().Sub(before).BytesReceived
	if res.Processed != 8 {
		t.Fatalf("processed %d", res.Processed)
	}
	total := 0
	for _, raw := range res.Pages {
		pg, err := page.FromBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !pg.IsNDP() {
			t.Error("expected NDP pages")
		}
		total += pg.NumRecords()
	}
	if total != 8 { // 80 rows, v==9 passes → 8
		t.Errorf("NDP records = %d, want 8", total)
	}
	// Compare network bytes against a plain batch read of the same pages.
	before = f.tr.Stats.Snapshot()
	if _, err := f.sal.BatchRead([]uint64{1, 2, 3, 4, 5, 6, 7, 8}, f.sal.CurrentLSN(), nil); err != nil {
		t.Fatal(err)
	}
	plainBytes := f.tr.Stats.Snapshot().Sub(before).BytesReceived
	if ndpBytes*5 > plainBytes {
		t.Errorf("NDP bytes %d should be ≪ plain bytes %d", ndpBytes, plainBytes)
	}
}

func TestLSNStampedBatchRead(t *testing.T) {
	f := newFixture(t, 100, 1)
	f.writePages(t, 1, 3)
	stamp := f.sal.CurrentLSN()
	// Concurrent writer moves the page forward.
	key := types.EncodeKey(nil, types.Row{types.NewInt(999)})
	row := types.EncodeRow(nil, idvSchema, types.Row{types.NewInt(999), types.NewInt(0)})
	if _, err := f.sal.Write(&wal.Record{
		Type: wal.TypeInsertRec, PageID: 1, Off: wal.OffAppend, TrxID: 6,
		Payload: page.EncodeLeafPayload(nil, key, row),
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	// Batch read at the old stamp sees 3 records; at latest sees 4.
	res, err := f.sal.BatchRead([]uint64{1}, stamp, nil)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := page.FromBytes(res.Pages[0])
	if pg.NumRecords() != 3 {
		t.Errorf("stamped read saw %d records, want 3", pg.NumRecords())
	}
	res, _ = f.sal.BatchRead([]uint64{1}, f.sal.CurrentLSN(), nil)
	pg, _ = page.FromBytes(res.Pages[0])
	if pg.NumRecords() != 4 {
		t.Errorf("fresh read saw %d records, want 4", pg.NumRecords())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing transport must fail")
	}
	if _, err := New(Config{Transport: cluster.NewInProc()}); err == nil {
		t.Error("missing page stores must fail")
	}
	s, err := New(Config{
		Transport: cluster.NewInProc(), PageStores: []string{"a"}, ReplicationFactor: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.ReplicationFactor != 1 {
		t.Error("replication factor should cap at store count")
	}
	if s.cfg.PagesPerSlice != DefaultPagesPerSlice {
		t.Error("default pages per slice not applied")
	}
}

// newDurableFixture builds a cluster whose Page Stores checkpoint to
// disk and whose Log Stores persist segments, for the GC watermark path.
func newDurableFixture(t testing.TB, pagesPerSlice uint64, rf int) *fixture {
	t.Helper()
	tr := cluster.NewInProc()
	f := &fixture{tr: tr}
	for _, n := range []string{"log1", "log2", "log3"} {
		ls, err := logstore.Open(n, t.TempDir(), logstore.WithNoSync(), logstore.WithSegmentBytes(256))
		if err != nil {
			t.Fatal(err)
		}
		f.logs = append(f.logs, ls)
		t.Cleanup(func() { ls.Close() })
		tr.Register(n, ls)
	}
	psNames := []string{"ps1", "ps2", "ps3", "ps4"}
	for _, n := range psNames {
		cs, err := pstore.Open(pstore.Options{Dir: t.TempDir(), NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		ps := pagestore.New(n, pagestore.WithCheckpoints(cs))
		f.stores = append(f.stores, ps)
		tr.Register(n, ps)
	}
	s, err := New(Config{
		Tenant: 1, Transport: tr, LogStores: []string{"log1", "log2", "log3"},
		PageStores: psNames, ReplicationFactor: rf, PagesPerSlice: pagesPerSlice,
		Plugin: pagestore.PluginInnoDB, FlushThreshold: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.sal = s
	return f
}

// TestGCWatermarkAndTruncate drives the cluster GC loop: the watermark
// is 0 until every slice replica has a durable checkpoint, equals the
// minimum persisted LSN afterwards, and TruncateLogs reclaims segments
// below it on every Log Store.
func TestGCWatermarkAndTruncate(t *testing.T) {
	f := newDurableFixture(t, 2, 3)
	// No slices yet: nothing to collect.
	if w, err := f.sal.GCWatermark(); err != nil || w != 0 {
		t.Fatalf("empty cluster watermark = %d (%v)", w, err)
	}
	f.writePages(t, 8, 4)
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	// Slices exist but none checkpointed: still pinned.
	if w, err := f.sal.GCWatermark(); err != nil || w != 0 {
		t.Fatalf("unpersisted watermark = %d (%v)", w, err)
	}
	var minPersisted uint64
	for _, ps := range f.stores {
		st, err := ps.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if slices, _, _ := ps.LSNInfo(1); slices == 0 {
			continue
		}
		if minPersisted == 0 || st.PersistedLSN < minPersisted {
			minPersisted = st.PersistedLSN
		}
	}
	w, err := f.sal.GCWatermark()
	if err != nil {
		t.Fatal(err)
	}
	if w == 0 || w != minPersisted {
		t.Fatalf("watermark = %d, want min persisted %d", w, minPersisted)
	}
	// A second write pass touches every slice again, so the next
	// checkpoint round moves the cluster watermark past the early
	// segments and GC has something to reclaim.
	f.writePages(t, 8, 4)
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, ps := range f.stores {
		if _, err := ps.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	w2, err := f.sal.GCWatermark()
	if err != nil {
		t.Fatal(err)
	}
	if w2 <= w {
		t.Fatalf("watermark did not advance: %d -> %d", w, w2)
	}
	w = w2
	segsBefore := f.logs[0].Segments()
	res, err := f.sal.TruncateLogs(w + 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsRemoved == 0 || res.BytesReclaimed == 0 {
		t.Fatalf("GC result = %+v", res)
	}
	for _, ls := range f.logs {
		if ls.TruncatedLSN() != w {
			t.Fatalf("log %s truncated to %d, want %d", ls.NodeStats().Name, ls.TruncatedLSN(), w)
		}
		if ls.Segments() >= segsBefore {
			t.Fatalf("log segments did not shrink: %d -> %d", segsBefore, ls.Segments())
		}
		// Records above the watermark survive.
		if recs := ls.ReadFrom(0); len(recs) == 0 || recs[0].LSN < w {
			t.Fatalf("GC overshot: first surviving LSN %v", recs)
		}
	}
	// A watermark of 0 is a no-op.
	if res, err := f.sal.TruncateLogs(0); err != nil || res.SegmentsRemoved != 0 {
		t.Fatalf("TruncateLogs(0) = %+v (%v)", res, err)
	}
}
