package sal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/logstore"
	"taurus/internal/page"
	"taurus/internal/pagestore"
	"taurus/internal/types"
	"taurus/internal/wal"
)

// hookTransport wraps another transport, letting a test delay or fail
// specific requests.
type hookTransport struct {
	inner cluster.Transport
	mu    sync.Mutex
	hook  func(node string, req any) error
}

func (h *hookTransport) Call(node string, req any) (any, error) {
	h.mu.Lock()
	hook := h.hook
	h.mu.Unlock()
	if hook != nil {
		if err := hook(node, req); err != nil {
			return nil, err
		}
	}
	return h.inner.Call(node, req)
}

func (h *hookTransport) setHook(f func(node string, req any) error) {
	h.mu.Lock()
	h.hook = f
	h.mu.Unlock()
}

// newHookedFixture is newFixture with a hookTransport in front of the
// in-process transport.
func newHookedFixture(t testing.TB, pagesPerSlice uint64, rf int, threshold int) (*fixture, *hookTransport) {
	t.Helper()
	tr := cluster.NewInProc()
	ht := &hookTransport{inner: tr}
	f := &fixture{tr: tr}
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		ls := logstore.New(n)
		f.logs = append(f.logs, ls)
		tr.Register(n, ls)
	}
	psNames := []string{"ps1", "ps2", "ps3", "ps4"}
	for _, n := range psNames {
		ps := pagestore.New(n)
		f.stores = append(f.stores, ps)
		tr.Register(n, ps)
	}
	s, err := New(Config{
		Tenant: 1, Transport: ht, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: rf, PagesPerSlice: pagesPerSlice, Plugin: pagestore.PluginInnoDB,
		FlushThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.sal = s
	t.Cleanup(func() { f.sal.Close() })
	return f, ht
}

func insertRec(pageID uint64, id int64) *wal.Record {
	key := types.EncodeKey(nil, types.Row{types.NewInt(id)})
	row := types.EncodeRow(nil, idvSchema, types.Row{types.NewInt(id), types.NewInt(id % 10)})
	return &wal.Record{
		Type: wal.TypeInsertRec, PageID: pageID, Off: wal.OffAppend,
		TrxID: 5, Payload: page.EncodeLeafPayload(nil, key, row),
	}
}

// TestConcurrentCommitters drives many writers through the pipeline,
// each waiting only for durability, and verifies that every record
// reaches all three Log Stores exactly once, in LSN order, and that the
// Page Store state converges.
func TestConcurrentCommitters(t *testing.T) {
	f, _ := newHookedFixture(t, 8, 3, 16)
	const writers = 8
	const perWriter = 50
	// One page per writer so slices see concurrent traffic.
	for w := 0; w < writers; w++ {
		if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: uint64(w + 1), IndexID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := insertRec(uint64(w+1), int64(w*perWriter+i))
				if _, err := f.sal.Write(rec); err != nil {
					errs[w] = err
					return
				}
				if err := f.sal.WaitDurable(rec.LSN); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	want := writers + writers*perWriter
	for _, ls := range f.logs {
		if ls.Len() != want {
			t.Fatalf("log store has %d records, want %d", ls.Len(), want)
		}
		recs := ls.ReadFrom(0)
		for i := 1; i < len(recs); i++ {
			if recs[i].LSN <= recs[i-1].LSN {
				t.Fatalf("log out of order at %d: %d after %d", i, recs[i].LSN, recs[i-1].LSN)
			}
		}
	}
	if f.sal.DurableLSN() != f.sal.CurrentLSN() {
		t.Fatalf("durable %d != current %d", f.sal.DurableLSN(), f.sal.CurrentLSN())
	}
	// After a full drain, every page holds its writer's rows.
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		raw, err := f.sal.ReadPage(uint64(w+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := page.FromBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		if pg.NumRecords() != perWriter {
			t.Fatalf("page %d has %d records, want %d", w+1, pg.NumRecords(), perWriter)
		}
	}
	st := f.sal.Stats()
	if st.WindowsFlushed == 0 || st.RecordsFlushed != uint64(want) {
		t.Fatalf("stats = %+v", st)
	}
	if st.PendingRecords != 0 || st.InFlightWindows != 0 {
		t.Fatalf("pipeline not drained: %+v", st)
	}
}

// TestCommitDoesNotWaitForApply blocks Page Store applies and verifies
// a commit still completes once the Log Stores acknowledge — the
// paper's separation of durability from application. The read path then
// blocks on the applied LSN until applies are released.
func TestCommitDoesNotWaitForApply(t *testing.T) {
	f, ht := newHookedFixture(t, 100, 2, 4)
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	ht.setHook(func(node string, req any) error {
		if _, ok := req.(*cluster.WriteLogsReq); ok {
			<-gate
		}
		return nil
	})
	rec := insertRec(1, 42)
	if _, err := f.sal.Write(rec); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.sal.WaitDurable(rec.LSN) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit stuck behind Page Store application")
	}
	if f.sal.DurableLSN() < rec.LSN {
		t.Fatalf("durable %d < committed %d", f.sal.DurableLSN(), rec.LSN)
	}
	// A read of the touched slice blocks until applies drain.
	readDone := make(chan error, 1)
	go func() {
		_, err := f.sal.ReadPage(1, 0)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("read returned (%v) before the slice applied", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-readDone; err != nil {
		t.Fatal(err)
	}
	raw, err := f.sal.ReadPage(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := page.FromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumRecords() != 1 {
		t.Fatalf("applied page has %d records", pg.NumRecords())
	}
}

// TestReadFastPathSkipsWait verifies that with nothing pending a read
// goes straight to the Page Store (no flush, no wait) — the atomic
// fast path.
func TestReadFastPathSkipsWait(t *testing.T) {
	f, _ := newHookedFixture(t, 100, 2, 8)
	f.writePages(t, 2, 3)
	before := f.sal.Stats()
	for i := 0; i < 10; i++ {
		if _, err := f.sal.ReadPage(1, 0); err != nil {
			t.Fatal(err)
		}
	}
	after := f.sal.Stats()
	if after.ApplyWaits != before.ApplyWaits {
		t.Fatalf("idle reads blocked %d times", after.ApplyWaits-before.ApplyWaits)
	}
	if after.WindowsFlushed != before.WindowsFlushed {
		t.Fatal("idle reads forced a flush")
	}
}

// TestPipelinePoisonedByLogFailure fails one Log Store and checks the
// sticky error reaches commit waiters, writers, and Flush — and that
// the durable watermark does not advance past the failure.
func TestPipelinePoisonedByLogFailure(t *testing.T) {
	f, ht := newHookedFixture(t, 100, 2, 4)
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	durableBefore := f.sal.DurableLSN()
	ht.setHook(func(node string, req any) error {
		if _, ok := req.(*cluster.LogAppendReq); ok && node == "log2" {
			return fmt.Errorf("injected: log2 down")
		}
		return nil
	})
	rec := insertRec(1, 7)
	if _, err := f.sal.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := f.sal.WaitDurable(rec.LSN); err == nil {
		t.Fatal("commit must fail when a Log Store append fails")
	}
	if f.sal.DurableLSN() != durableBefore {
		t.Fatalf("durable advanced over a failed window: %d -> %d", durableBefore, f.sal.DurableLSN())
	}
	if err := f.sal.Flush(); err == nil {
		t.Fatal("Flush must surface the sticky error")
	}
	if _, err := f.sal.Write(insertRec(1, 8)); err == nil {
		t.Fatal("Write must surface the sticky error")
	}
	if _, err := f.sal.ReadPage(1, 0); err == nil {
		t.Fatal("reads must surface the sticky error")
	}
}

// TestBackpressureBoundsStaging overfills the pipeline against gated
// Page Stores and verifies writers stall (counted) instead of queueing
// unboundedly.
func TestBackpressureBoundsStaging(t *testing.T) {
	tr := cluster.NewInProc()
	ht := &hookTransport{inner: tr}
	f := &fixture{tr: tr}
	psNames := []string{"ps1"}
	for _, n := range psNames {
		ps := pagestore.New(n)
		f.stores = append(f.stores, ps)
		tr.Register(n, ps)
	}
	s, err := New(Config{
		Tenant: 1, Transport: ht, PageStores: psNames, ReplicationFactor: 1,
		PagesPerSlice: 1 << 20, Plugin: pagestore.PluginInnoDB,
		FlushThreshold: 2, MaxInFlightWindows: 2, ApplyBacklogWindows: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.sal = s
	if _, err := s.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	ht.setHook(func(node string, req any) error {
		if _, ok := req.(*cluster.WriteLogsReq); ok {
			<-gate
		}
		return nil
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 64; i++ {
			if _, err := s.Write(insertRec(1, int64(i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// The writer must stall (bounded staging) rather than finish.
	select {
	case <-done:
		t.Fatal("64 writes completed against a gated 2x2 pipeline")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	<-done
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BackpressureStalls == 0 {
		t.Fatalf("no backpressure recorded: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDrainsAndRejects verifies Close flushes everything and that
// the SAL refuses use afterwards.
func TestCloseDrainsAndRejects(t *testing.T) {
	f, _ := newHookedFixture(t, 100, 2, 256) // threshold never reached
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.sal.Write(insertRec(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := f.sal.Close(); err != nil {
		t.Fatal(err)
	}
	if f.logs[0].Len() != 2 {
		t.Fatalf("Close did not drain: %d records durable", f.logs[0].Len())
	}
	if _, err := f.sal.Write(insertRec(1, 2)); err == nil {
		t.Fatal("Write after Close must fail")
	}
	if err := f.sal.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}

// TestWindowsPipelineAcrossSlices checks that a multi-slice workload
// produces multiple windows whose per-slice applies all land (ordering
// per slice is exercised by the page stores' idempotent-skip counters:
// any reordering would silently drop records and fail the read-back).
func TestWindowsPipelineAcrossSlices(t *testing.T) {
	f, _ := newHookedFixture(t, 2, 2, 4) // 2 pages per slice, tiny windows
	f.writePages(t, 12, 5)
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 12; p++ {
		raw, err := f.sal.ReadPage(uint64(p), 0)
		if err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
		pg, err := page.FromBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		if pg.NumRecords() != 5 {
			t.Fatalf("page %d has %d records, want 5", p, pg.NumRecords())
		}
	}
	skipped := uint64(0)
	for _, ps := range f.stores {
		skipped += ps.Snapshot().LogRecordsSkipped
	}
	if skipped != 0 {
		t.Fatalf("%d records were dropped as stale redeliveries — per-slice ordering broke", skipped)
	}
	if st := f.sal.Stats(); st.WindowsFlushed < 2 {
		t.Fatalf("expected multiple windows, got %+v", st)
	}
}

// drainWindows flushes and returns the SAL's stats after the drain.
func drainWindows(t *testing.T, f *fixture) PipelineStats {
	t.Helper()
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	return f.sal.Stats()
}

// promoteSlice drives enough single-slice traffic through the shared
// lane that the slice is promoted to a dedicated lane, and fails the
// test if it is not.
func promoteSlice(t *testing.T, f *fixture, pageID uint64, rows int) {
	t.Helper()
	for i := 0; i < rows; i++ {
		if _, err := f.sal.Write(insertRec(pageID, int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	st := drainWindows(t, f)
	if st.Promotions == 0 {
		t.Fatalf("hot slice not promoted after %d single-slice records: %+v", rows, st)
	}
}

// newLaneFixture is newHookedFixture with explicit lane and threshold
// control.
func newLaneFixture(t testing.TB, pagesPerSlice uint64, threshold, lanes int) (*fixture, *hookTransport) {
	t.Helper()
	tr := cluster.NewInProc()
	ht := &hookTransport{inner: tr}
	f := &fixture{tr: tr}
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		ls := logstore.New(n)
		f.logs = append(f.logs, ls)
		tr.Register(n, ls)
	}
	psNames := []string{"ps1", "ps2", "ps3", "ps4"}
	for _, n := range psNames {
		ps := pagestore.New(n)
		f.stores = append(f.stores, ps)
		tr.Register(n, ps)
	}
	s, err := New(Config{
		Tenant: 1, Transport: ht, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: 2, PagesPerSlice: pagesPerSlice, Plugin: pagestore.PluginInnoDB,
		FlushThreshold: threshold, MaxSliceLanes: lanes,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.sal = s
	t.Cleanup(func() { f.sal.Close() })
	return f, ht
}

// batchTouches reports whether an encoded log batch carries a record
// for the given page.
func batchTouches(t *testing.T, encoded []byte, pageID uint64) bool {
	t.Helper()
	recs, err := wal.DecodeAll(encoded)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.PageID == pageID {
			return true
		}
	}
	return false
}

// TestCommitWaitsOnlyOwnPrefix pins the per-transaction commit
// semantics: a committer waits on ITS max LSN, and that wait completes
// even while a later, unrelated writer's window is stuck in its fsync —
// under the old global-snapshot wait it would have blocked behind it.
func TestCommitWaitsOnlyOwnPrefix(t *testing.T) {
	f, ht := newLaneFixture(t, 100, 1, 0) // every record its own window
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	rec1 := insertRec(1, 1)
	lsn1, err := f.sal.Write(rec1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.sal.WaitDurable(lsn1); err != nil {
		t.Fatal(err)
	}
	// Gate any further log appends, then stage an unrelated record: the
	// global CurrentLSN moves past lsn1 while the new window can never
	// become durable.
	gate := make(chan struct{})
	ht.setHook(func(node string, req any) error {
		if m, ok := req.(*cluster.LogAppendReq); ok && batchTouches(t, m.Recs, 1) {
			<-gate
		}
		return nil
	})
	rec2 := insertRec(1, 2)
	lsn2, err := f.sal.Write(rec2)
	if err != nil {
		t.Fatal(err)
	}
	if lsn1 >= f.sal.CurrentLSN() || lsn2 <= lsn1 {
		t.Fatalf("per-txn wait LSN %d must be below global CurrentLSN %d", lsn1, f.sal.CurrentLSN())
	}
	// The earlier commit's wait target stays satisfied instantly.
	done := make(chan error, 1)
	go func() { done <- f.sal.WaitDurable(lsn1) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitDurable(own max LSN) blocked behind a later writer's fsync")
	}
	close(gate)
	if err := f.sal.WaitDurable(lsn2); err != nil {
		t.Fatal(err)
	}
}

// TestStickyErrorConfinedToFailingLane promotes a hot slice to its own
// lane, fails that lane's log appends, and verifies: the failing lane's
// unacked commit errors; a commit whose records sit in the healthy
// shared lane below the failure point still succeeds; and everything
// durable before the failure stays acknowledged.
func TestStickyErrorConfinedToFailingLane(t *testing.T) {
	f, ht := newLaneFixture(t, 8, 8, 1) // pages 1-7 slice 0, page 9 slice 1
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 9, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	promoteSlice(t, f, 1, 64) // slice 0 → dedicated lane 1
	preDurable := f.sal.DurableLSN()

	// Fail appends that carry the hot slice's records (lane 1's windows).
	ht.setHook(func(node string, req any) error {
		if m, ok := req.(*cluster.LogAppendReq); ok && batchTouches(t, m.Recs, 1) {
			return fmt.Errorf("injected: hot lane append failure")
		}
		return nil
	})
	// Shared-lane record first (lower LSN), hot-lane record second.
	coldLSN, err := f.sal.Write(insertRec(9, 500))
	if err != nil {
		t.Fatal(err)
	}
	hotLSN, err := f.sal.Write(insertRec(1, 501))
	if err != nil {
		t.Fatal(err)
	}
	if coldLSN >= hotLSN {
		t.Fatalf("test setup: cold LSN %d must precede hot LSN %d", coldLSN, hotLSN)
	}
	// The failing lane's commit errors.
	if err := f.sal.WaitDurable(hotLSN); err == nil {
		t.Fatal("commit of the failing lane's record must surface the sticky error")
	}
	// The healthy lane's commit, below the failure point, succeeds.
	if err := f.sal.WaitDurable(coldLSN); err != nil {
		t.Fatalf("healthy-lane commit below the failure point failed: %v", err)
	}
	if f.sal.DurableLSN() < preDurable {
		t.Fatal("pre-failure durability regressed")
	}
	if f.sal.DurableLSN() >= hotLSN {
		t.Fatalf("durable watermark %d advanced over the failed window at %d", f.sal.DurableLSN(), hotLSN)
	}
	// New writes are rejected everywhere: recovery is Open's job.
	if _, err := f.sal.Write(insertRec(9, 502)); err == nil {
		t.Fatal("Write must surface the sticky error")
	}
}

// TestCloseDrainsMultipleLanes stages sub-threshold records on both the
// shared and a promoted lane, gates the Page Store applies so windows
// from BOTH lanes are in flight, and verifies Close drains everything.
func TestCloseDrainsMultipleLanes(t *testing.T) {
	f, ht := newLaneFixture(t, 8, 64, 1)
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 9, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	promoteSlice(t, f, 1, 64)
	recordsBefore := f.logs[0].Len()

	gate := make(chan struct{})
	var gated atomic.Int32
	ht.setHook(func(node string, req any) error {
		if _, ok := req.(*cluster.WriteLogsReq); ok {
			gated.Add(1)
			<-gate
		}
		return nil
	})
	// Sub-threshold traffic on both lanes: nothing seals until Close.
	const perLane = 5
	for i := 0; i < perLane; i++ {
		if _, err := f.sal.Write(insertRec(1, int64(600+i))); err != nil {
			t.Fatal(err) // hot lane
		}
		if _, err := f.sal.Write(insertRec(9, int64(600+i))); err != nil {
			t.Fatal(err) // shared lane
		}
	}
	done := make(chan error, 1)
	go func() { done <- f.sal.Close() }()
	// Close must be blocked draining gated applies on both lanes.
	select {
	case err := <-done:
		t.Fatalf("Close returned (%v) with applies gated", err)
	case <-time.After(100 * time.Millisecond):
	}
	if gated.Load() == 0 {
		t.Fatal("no applies reached the gate")
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	want := recordsBefore + 2*perLane
	for _, ls := range f.logs {
		if ls.Len() != want {
			t.Fatalf("log store drained %d records, want %d", ls.Len(), want)
		}
		if ls.NodeStats().PendingHoles != 0 {
			t.Fatalf("pending holes after drain: %+v", ls.NodeStats())
		}
	}
	st := f.sal.Stats()
	if st.PendingRecords != 0 || st.InFlightWindows != 0 {
		t.Fatalf("pipeline not drained: %+v", st)
	}
	// Per-slice apply order survived the promotion handoff: nothing was
	// dropped as a stale redelivery.
	skipped := uint64(0)
	for _, ps := range f.stores {
		skipped += ps.Snapshot().LogRecordsSkipped
	}
	if skipped != 0 {
		t.Fatalf("%d records dropped as stale redeliveries across the lane handoff", skipped)
	}
}

// TestAdaptiveThresholdTracksLoad checks the adaptive flush threshold:
// with no pinned FlushThreshold, a lane's threshold moves off the
// initial value as arrival-rate and fsync EWMAs accumulate, and stays
// inside the configured clamp.
func TestAdaptiveThresholdTracksLoad(t *testing.T) {
	tr := cluster.NewInProc()
	f := &fixture{tr: tr}
	for _, n := range []string{"log1"} {
		ls := logstore.New(n)
		f.logs = append(f.logs, ls)
		tr.Register(n, ls)
	}
	for _, n := range []string{"ps1"} {
		tr.Register(n, pagestore.New(n))
	}
	s, err := New(Config{
		Tenant: 1, Transport: tr, LogStores: []string{"log1"}, PageStores: []string{"ps1"},
		ReplicationFactor: 1, PagesPerSlice: 1 << 20, Plugin: pagestore.PluginInnoDB,
		FlushThresholdMin: 4, FlushThresholdMax: 64, MaxSliceLanes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f.sal = s
	if _, err := s.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Commit-per-record traffic: tiny windows, in-memory "fsync" — the
	// threshold should clamp down toward the minimum.
	for i := 0; i < 200; i++ {
		lsn, err := s.Write(insertRec(1, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if len(st.Lanes) != 1 {
		t.Fatalf("lanes = %d, want 1 (MaxSliceLanes: -1)", len(st.Lanes))
	}
	lane := st.Lanes[0]
	if lane.FlushThreshold < 4 || lane.FlushThreshold > 64 {
		t.Fatalf("adaptive threshold %d escaped clamp [4,64]", lane.FlushThreshold)
	}
	if lane.ArrivalPerSec == 0 || lane.FsyncMicros == 0 {
		t.Fatalf("EWMAs not fed: %+v", lane)
	}
	if lane.SealsByReason[SealDemand]+lane.SealsByReason[SealThreshold] != lane.WindowsSealed {
		t.Fatalf("seal reasons don't add up: %+v", lane)
	}
}

// TestLaneDemotionAndRepromotion pins the full lane lifecycle: a hot
// slice is promoted to the single dedicated lane; when its traffic
// stops its heat EWMA decays below demoteShare and it hands back to the
// shared lane (freeing the lane); the next hot slice is then promoted
// into the freed lane. Per-slice apply order must survive both
// handoffs.
func TestLaneDemotionAndRepromotion(t *testing.T) {
	f, _ := newLaneFixture(t, 16, 8, 1) // pages 1..16 slice 0, 17.. slice 1
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 17, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	// Phase 1: slice 0 runs hot and is promoted.
	promoteSlice(t, f, 1, 64)
	st := f.sal.Stats()
	if st.Lanes[1].Slice != 0 {
		t.Fatalf("dedicated lane not assigned slice 0: %+v", st.Lanes[1])
	}
	// Phase 2: slice 0 goes quiet while slice 1 runs hot through the
	// shared lane. Every shared-lane seal decays slice 0's heat; once
	// it drops below demoteShare the slice is demoted, the lane frees,
	// and slice 1 is promoted into it.
	var demoted, repromoted bool
	for round := 0; round < 40 && !(demoted && repromoted); round++ {
		for i := 0; i < 8; i++ {
			if _, err := f.sal.Write(insertRec(17, int64(5000+round*8+i))); err != nil {
				t.Fatal(err)
			}
		}
		st = drainWindows(t, f)
		demoted = st.Demotions >= 1
		repromoted = st.Promotions >= 2
	}
	if !demoted {
		t.Fatalf("cooled slice never demoted: %+v", st)
	}
	if !repromoted {
		t.Fatalf("freed lane never re-promoted the next hot slice: %+v", st)
	}
	if st.Lanes[1].Slice != 1 {
		t.Fatalf("dedicated lane not reassigned to slice 1: %+v", st.Lanes[1])
	}
	// Phase 3: the demoted slice keeps writing through the shared lane.
	for i := 0; i < 16; i++ {
		if _, err := f.sal.Write(insertRec(1, int64(9000+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.sal.Flush(); err != nil {
		t.Fatal(err)
	}
	// Apply order survived both handoffs: no record was misfiled as a
	// stale redelivery, and both pages hold every insert.
	skipped := uint64(0)
	for _, ps := range f.stores {
		skipped += ps.Snapshot().LogRecordsSkipped
	}
	if skipped != 0 {
		t.Fatalf("%d records dropped as stale redeliveries across lane handoffs", skipped)
	}
	for _, pageID := range []uint64{1, 17} {
		raw, err := f.sal.ReadPage(pageID, 0)
		if err != nil {
			t.Fatalf("page %d: %v", pageID, err)
		}
		pg, err := page.FromBytes(raw)
		if err != nil {
			t.Fatal(err)
		}
		if pg.NumRecords() == 0 {
			t.Fatalf("page %d lost its records across the handoffs", pageID)
		}
	}
}

// TestBarrierCompletesUnderSustainedWrites pins the checkpoint drain
// semantics: Barrier waits for the prefix staged BEFORE the call to be
// durable and applied, and returns even though concurrent writers keep
// the pipeline's pending count permanently nonzero (Flush's pending ==
// 0 moment may never come).
func TestBarrierCompletesUnderSustainedWrites(t *testing.T) {
	f := newFixture(t, 16, 2)
	defer f.sal.Close()
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 1, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.sal.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: 17, IndexID: 1}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// A continuous committer on an unrelated slice.
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			lsn, err := f.sal.Write(insertRec(17, 100000+i))
			if err != nil {
				return
			}
			f.sal.WaitDurable(lsn)
		}
	}()
	var lastLSN uint64
	for i := 0; i < 20; i++ {
		lsn, err := f.sal.Write(insertRec(1, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = lsn
	}
	done := make(chan error, 1)
	go func() { done <- f.sal.Barrier() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Barrier starved under sustained writers")
	}
	// Everything staged before the barrier is applied: slice 0's
	// frontier covers the last pre-barrier record.
	st := f.sal.Stats()
	found := false
	for _, lane := range st.Lanes {
		for _, sl := range lane.Slices {
			if sl.Slice == 0 {
				found = true
				if sl.AppliedLSN < lastLSN {
					t.Fatalf("slice 0 applied %d < pre-barrier LSN %d", sl.AppliedLSN, lastLSN)
				}
			}
		}
	}
	if !found {
		t.Fatal("slice 0 missing from stats")
	}
	if st.DurableLSN < lastLSN {
		t.Fatalf("durable %d < pre-barrier LSN %d", st.DurableLSN, lastLSN)
	}
	close(stop)
	wg.Wait()
}
