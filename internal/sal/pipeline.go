// Slice-partitioned, pipelined group-commit write path.
//
// In the paper, the frontend acknowledges a transaction as soon as its
// log records are durable in triplicate on Log Stores; Page Store
// application is asynchronous ("Log Stores ... Once all of the log
// records belonging to a transaction have been made durable, transaction
// completion can be acknowledged", §II). Slices advance independently —
// that is the core of the Log Store / Page Store separation — so the
// write path is partitioned by slice into lanes:
//
//   - Every lane owns a staging buffer, a sealer (flusher), a window
//     stream with its own in-flight budget, and per-Log-Store FIFO
//     append workers. Cold slices share the default lane (lane 0);
//     a hot slice — one whose EWMA share of the shared lane's traffic
//     crosses promoteShare — is promoted to a dedicated lane, so a slow
//     Page Store replica behind slice A can exhaust only A's lane
//     budget and never stalls the staging, sealing, or apply stage of
//     slice B.
//   - Write assigns the LSN under the lane's stage lock and returns it
//     to the caller without doing any I/O; transactions track their own
//     max LSN and commit with WaitDurable(txnMaxLSN) instead of a
//     global allocator snapshot.
//   - The durable watermark stays a global LSN prefix (a transaction's
//     records may span lanes): it advances to the LSN below the lowest
//     record any lane still has staged or in flight. Lane batches reach
//     each Log Store in per-lane FIFO order but interleave in LSN space
//     across lanes; the Log Stores fill these "holes" idempotently (see
//     logstore's pending-hole filter).
//   - Page Store application happens after durability, asynchronously:
//     each lane's dispatcher fans its windows out to per-slice apply
//     workers (shared across lanes, FIFO per slice) which write all
//     replicas in parallel. A slice lives in exactly one lane at a
//     time; promotion installs a fence LSN so the new lane's batches
//     apply only after the old lane's are done — per-slice LSN order,
//     which the Page Stores' idempotent-skip depends on, is preserved
//     across the handoff.
//   - Readers wait per page, not per slice: staging records a
//     page→highest-staged-LSN entry (pruned as applies land), and a
//     read blocks only until the slice's applied LSN covers the pages
//     it touches — with the usual single-atomic fast path when nothing
//     is pending anywhere.
//
// Failure model: a Log Store append error poisons the failing lane and
// freezes the durable watermark below the failed window (durFloor).
// Commits already acknowledged stay acknowledged; commits waiting at or
// above the failure point get the sticky error; records below it in
// healthy lanes still become durable and their commits succeed. New
// writes are rejected everywhere — recovery is Open's job.
package sal

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/obs"
	"taurus/internal/wal"
)

// DefaultMaxInFlightWindows bounds how many sealed windows may be in
// one lane's LOG stage (awaiting Log Store acknowledgement) at once.
const DefaultMaxInFlightWindows = 8

// DefaultApplyBacklogWindows bounds how many durable windows may be
// queued toward one lane's Page Store replicas before the lane's
// writers stall. The two budgets are separate on purpose: durability
// progress (the commit path) must never wait on apply progress.
const DefaultApplyBacklogWindows = 256

// DefaultMaxSliceLanes is the default number of dedicated lanes hot
// slices can be promoted into (besides the shared lane 0).
const DefaultMaxSliceLanes = 2

// Adaptive flush threshold bounds: each lane sizes its group-commit
// window from EWMAs of arrival rate and fsync latency (batch what
// arrives during one fsync), clamped to this range.
const (
	DefaultFlushThresholdMin = 16
	DefaultFlushThresholdMax = 1024
	initialFlushThreshold    = 64
	ewmaAlpha                = 0.3
)

// Promotion policy: a slice is promoted out of the shared lane when its
// EWMA share of the lane's sealed records crosses promoteShare (and a
// dedicated lane is free). Nothing is promoted before the lane has
// sealed promoteMinObserved records — the first trickle of traffic is
// too noisy to classify. Demotion is the inverse: a promoted slice's
// EWMA share of recent traffic (its lane's records against everything
// sealed since the last policy round) is seeded at promoteShare and
// decays while the slice is quiet; below demoteShare the slice hands
// back to the shared lane and its lane returns to the pool. The wide
// promoteShare/demoteShare gap is hysteresis: a slice bouncing around
// the promotion threshold never thrashes between lanes.
const (
	heatAlpha          = 0.4
	promoteShare       = 0.5
	promoteMinObserved = 32
	demoteShare        = 0.05
)

// Seal reasons for the per-lane SealsByReason counters.
const (
	SealThreshold = "threshold"
	SealDemand    = "demand"
)

// sliceBatch is one slice's share of a window: the concatenated record
// encoding, its LSN range, and the per-page max LSN (read waiters are
// page-granular).
type sliceBatch struct {
	enc     []byte
	minLSN  uint64
	maxLSN  uint64
	count   int
	pageMax map[uint64]uint64
}

// window is one sealed group-commit unit moving through a lane.
type window struct {
	lane   *lane
	minLSN uint64
	maxLSN uint64
	count  int
	log    []byte                 // combined encoding for Log Stores
	slices map[uint32]*sliceBatch // per-slice encodings for Page Stores

	logRemaining   atomic.Int32
	applyRemaining atomic.Int32
	// inApply marks a window handed to the apply stage (counted in its
	// lane's apply backlog).
	inApply bool
	// failed marks a window whose Log Store append errored (or that
	// drained through a poisoned lane without appending): it must never
	// advance the durable watermark.
	failed atomic.Bool

	// trace is the sampled context the window's appends and applies
	// propagate (the sal.window span's own context when one was opened);
	// span is that window span, ended when the window turns durable.
	// Zero/nil when no staged record belonged to a sampled statement.
	trace obs.TraceContext
	span  *obs.SpanHandle
}

// stage is one lane's open staging buffer.
type stage struct {
	log    []byte
	slices map[uint32]*sliceBatch
	count  int
	minLSN uint64
	maxLSN uint64
	// firstAt is when the first record was staged (set only with metrics
	// enabled); seal age = seal time − firstAt.
	firstAt time.Time
	// trace is adopted from the first sampled writer whose record landed
	// in this stage: group commit batches many transactions into one
	// window, so the window links to one sampled statement (enough to
	// show where ITS commit time went).
	trace obs.TraceContext
}

func newStage() *stage {
	return &stage{slices: make(map[uint32]*sliceBatch)}
}

// lane is one write lane: a staging buffer, flusher, window stream, and
// per-Log-Store append workers. Lane 0 is the shared (default) lane;
// the rest are dedicated lanes hot slices get promoted into.
type lane struct {
	id int
	s  *SAL

	stageMu   sync.Mutex
	stageCond *sync.Cond
	stg       *stage

	notify      chan struct{}
	flusherDone chan struct{}
	sem         chan struct{} // per-lane in-flight window budget
	nodeChs     []chan *window
	nodeWG      sync.WaitGroup
	applyCh     chan *window

	// pendingQ holds sealed windows not yet durably acknowledged, in
	// seal (= per-lane LSN) order. Guarded by SAL.durMu: sealing and
	// durable-watermark recomputation must observe it atomically.
	pendingQ []*window

	logInflight  atomic.Int64
	inflight     atomic.Int64 // sealed windows not yet durable
	applyBacklog atomic.Int64 // durable windows not yet fully applied
	poisoned     atomic.Bool

	// assignedSlice is the promoted slice for dedicated lanes (-1 when
	// unassigned, and always -1 for the shared lane).
	assignedSlice atomic.Int64

	// thresh is the lane's current flush threshold. Adaptive unless the
	// config pinned it.
	thresh atomic.Int64

	// EWMA state behind the adaptive threshold.
	ewmaMu        sync.Mutex
	arrivalPerSec float64
	fsyncSeconds  float64
	lastSeal      time.Time

	// Counters.
	windows        atomic.Uint64
	records        atomic.Uint64
	sealsThreshold atomic.Uint64
	sealsDemand    atomic.Uint64
}

// sliceProgress tracks one slice's replica set, lane assignment, and
// LSN frontier on the frontend side.
type sliceProgress struct {
	// lastStaged is the highest LSN ever staged for this slice (updated
	// under the owning lane's stage lock, so it is monotone).
	lastStaged atomic.Uint64
	// laneID is the slice's current write lane. Flipped only by
	// promotion, under the shared lane's stage lock.
	laneID atomic.Int32
	// fence is the promotion handoff barrier: batches with minLSN above
	// it (new-lane batches) apply only once the applied LSN reaches it
	// (all old-lane batches landed). 0 = no handoff pending.
	fence atomic.Uint64

	mu      sync.Mutex
	cond    *sync.Cond
	applied uint64 // highest LSN applied on ALL replicas
	// pageStaged maps page → highest staged-but-not-yet-applied LSN;
	// entries are pruned as applies land, so a reader waits only for
	// the pages it actually touches.
	pageStaged map[uint64]uint64

	createOnce sync.Once
	nodes      []string
	createErr  error
}

func (sp *sliceProgress) appliedLSN() uint64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.applied
}

// applyJob is one window's batch for one slice.
type applyJob struct {
	w       *window
	sliceID uint32
	batch   *sliceBatch
}

// SliceApplyStats is one slice's frontier, for the per-lane stats.
type SliceApplyStats struct {
	Slice      uint32
	StagedLSN  uint64
	AppliedLSN uint64
	// ApplyLag is StagedLSN - AppliedLSN: how far the slice's Page
	// Store replicas trail the frontend's staging.
	ApplyLag uint64
	// PagesTracked is the number of pages with staged-but-unapplied
	// records (the read-wait map's size).
	PagesTracked int
}

// LaneStats is one write lane's observable state.
type LaneStats struct {
	Lane int
	// Slice is the dedicated slice this lane was promoted for (-1 for
	// the shared lane or an unassigned dedicated lane).
	Slice          int64
	WindowsSealed  uint64
	RecordsFlushed uint64
	// SealsByReason splits WindowsSealed into threshold-full seals and
	// demand seals (commit/read waiters, Flush).
	SealsByReason map[string]uint64
	// FlushThreshold is the lane's current (adaptive) threshold;
	// ArrivalPerSec and FsyncMicros are the EWMAs behind it.
	FlushThreshold int
	ArrivalPerSec  float64
	FsyncMicros    float64
	// InFlightWindows is the lane's log-stage depth (sealed, awaiting
	// Log Store acks); ApplyBacklog is its apply-stage depth (durable,
	// not yet on every replica).
	InFlightWindows int64
	ApplyBacklog    int64
	Poisoned        bool
	// Slices reports the apply frontier of every slice currently
	// assigned to this lane.
	Slices []SliceApplyStats
}

// PipelineStats is a snapshot of the write-path counters.
type PipelineStats struct {
	// WindowsFlushed / RecordsFlushed total sealed group-commit windows
	// and the records they carried, across all lanes.
	WindowsFlushed uint64
	RecordsFlushed uint64
	// BackpressureStalls counts the times a writer or a flusher had to
	// wait because a staging buffer or an in-flight window budget was
	// full.
	BackpressureStalls uint64
	// CommitWaits counts WaitDurable calls that actually blocked;
	// ApplyWaits counts reads that blocked on a page's applied LSN.
	CommitWaits uint64
	ApplyWaits  uint64
	// InFlightWindows / PendingRecords are the current pipeline depth
	// (all lanes).
	InFlightWindows int64
	PendingRecords  int64
	// DurableLSN is the commit watermark; AllocatedLSN the last LSN
	// handed out.
	DurableLSN   uint64
	AllocatedLSN uint64
	// Promotions counts slices moved from the shared lane to a
	// dedicated one; Demotions counts cooled slices handed back.
	Promotions uint64
	Demotions  uint64
	// ReplicaNotifies counts durable-watermark advance notifications
	// sent to registered read replicas; RegisteredReplicas is the
	// current subscription count.
	ReplicaNotifies    uint64
	RegisteredReplicas int
	// FrontierNotifies counts frontier relays sent to Log Stores (the
	// push-stream fan-out input); FrontierWatchers is the number of
	// embedded replicas holding a frontier watch.
	FrontierNotifies uint64
	FrontierWatchers int
	// Lanes is the per-lane breakdown (windows sealed, seals by reason,
	// adaptive threshold, apply lag per slice).
	Lanes []LaneStats
}

type pipelineCounters struct {
	backpressureStalls atomic.Uint64
	commitWaits        atomic.Uint64
	applyWaits         atomic.Uint64
	promotions         atomic.Uint64
	demotions          atomic.Uint64
	replicaNotifies    atomic.Uint64
	frontierNotifies   atomic.Uint64
}

// startPipeline launches every lane's flusher and per-Log-Store node
// workers, plus the shared apply-worker plumbing.
func (s *SAL) startPipeline() {
	s.quit = make(chan struct{})
	s.durCond = sync.NewCond(&s.durMu)
	s.flushCond = sync.NewCond(&s.flushMu)
	s.applyWorkers = make(map[uint32]*sliceQueue)
	s.applyDone = make(chan struct{})

	nLanes := 1 + s.cfg.MaxSliceLanes
	s.lanes = make([]*lane, nLanes)
	for i := range s.lanes {
		ln := &lane{id: i, s: s}
		ln.stageCond = sync.NewCond(&ln.stageMu)
		ln.stg = newStage()
		ln.notify = make(chan struct{}, 1)
		ln.flusherDone = make(chan struct{})
		ln.sem = make(chan struct{}, s.cfg.MaxInFlightWindows)
		ln.applyCh = make(chan *window, s.cfg.MaxInFlightWindows)
		ln.assignedSlice.Store(-1)
		ln.thresh.Store(int64(s.initialThreshold()))
		ln.nodeChs = make([]chan *window, len(s.cfg.LogStores))
		for j := range ln.nodeChs {
			ln.nodeChs[j] = make(chan *window, s.cfg.MaxInFlightWindows)
			ln.nodeWG.Add(1)
			go ln.logNodeWorker(s.cfg.LogStores[j], ln.nodeChs[j])
		}
		s.lanes[i] = ln
		s.dispatchWG.Add(1)
		go ln.applyDispatcher()
		go ln.flusher()
		go func(ln *lane) {
			// applyCh has two kinds of senders — node workers (normal
			// case) and the flusher (no Log Stores configured) — so it
			// closes only after both are done.
			<-ln.flusherDone
			ln.nodeWG.Wait()
			close(ln.applyCh)
		}(ln)
	}
	s.laneHeat = make(map[uint32]float64)
	s.dedHeat = make(map[uint32]float64)
	s.freeLanes = append([]*lane(nil), s.lanes[1:]...)
	s.lastLaneRecords = make([]uint64, nLanes)
	s.notifierDone = make(chan struct{})
	go s.lsnNotifier()
	go func() {
		// Per-slice apply workers are shared across lanes; their
		// channels close only after every lane's dispatcher is done.
		s.dispatchWG.Wait()
		s.applyMu.Lock()
		for _, q := range s.applyWorkers {
			q.close()
		}
		s.applyMu.Unlock()
		s.sliceWG.Wait()
		close(s.applyDone)
	}()
}

func (s *SAL) initialThreshold() int {
	if s.cfg.FlushThreshold > 0 {
		return s.cfg.FlushThreshold
	}
	t := initialFlushThreshold
	if t < s.cfg.FlushThresholdMin {
		t = s.cfg.FlushThresholdMin
	}
	if t > s.cfg.FlushThresholdMax {
		t = s.cfg.FlushThresholdMax
	}
	return t
}

// kick nudges a lane's flusher (non-blocking; one pending kick is
// enough).
func (ln *lane) kick() {
	select {
	case ln.notify <- struct{}{}:
	default:
	}
}

// kickAll nudges every lane's flusher.
func (s *SAL) kickAll() {
	for _, ln := range s.lanes {
		ln.kick()
	}
}

// laneFor returns the slice's current write lane (the shared lane for
// catalog records, which have no slice).
func (s *SAL) laneFor(sp *sliceProgress) *lane {
	if sp == nil {
		return s.lanes[0]
	}
	return s.lanes[sp.laneID.Load()]
}

// sticky returns the pipeline's poisoned state, if any.
func (s *SAL) sticky() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// poison records the first pipeline error, marks the failing lane, and
// wakes every waiter so it can observe the error. The failing lane
// keeps draining windows (without I/O) so Flush and Close terminate;
// healthy lanes keep appending and applying what was already staged,
// but new writes are rejected everywhere.
func (s *SAL) poison(ln *lane, err error) {
	ln.poisoned.Store(true)
	s.errMu.Lock()
	first := s.err == nil
	if first {
		s.err = err
	}
	s.errMu.Unlock()
	if first {
		s.cfg.Events.Record(obs.EventPoison, "lane %d: %v", ln.id, err)
	}
	s.broadcastAll()
}

// broadcastAll wakes every parked waiter (commit, flush, backpressured
// writer, reader) so it can re-check its condition.
func (s *SAL) broadcastAll() {
	s.durMu.Lock()
	s.durCond.Broadcast()
	s.durMu.Unlock()
	s.flushMu.Lock()
	s.flushCond.Broadcast()
	s.flushMu.Unlock()
	for _, ln := range s.lanes {
		ln.stageMu.Lock()
		ln.stageCond.Broadcast()
		ln.stageMu.Unlock()
	}
	s.slMu.Lock()
	for _, sp := range s.sliceProg {
		sp.mu.Lock()
		sp.cond.Broadcast()
		sp.mu.Unlock()
	}
	s.slMu.Unlock()
}

// progress returns (creating if needed) the slice's progress tracker.
func (s *SAL) progress(sliceID uint32) *sliceProgress {
	s.slMu.Lock()
	defer s.slMu.Unlock()
	sp, ok := s.sliceProg[sliceID]
	if !ok {
		sp = &sliceProgress{pageStaged: make(map[uint64]uint64)}
		sp.cond = sync.NewCond(&sp.mu)
		s.sliceProg[sliceID] = sp
	}
	return sp
}

// progressIfExists returns the slice's tracker without creating one.
func (s *SAL) progressIfExists(sliceID uint32) *sliceProgress {
	s.slMu.Lock()
	defer s.slMu.Unlock()
	return s.sliceProg[sliceID]
}

// placement returns the slice's replica set, provisioning the slice on
// its Page Stores exactly once. Replicas are chosen round-robin by slice
// id, so consecutive slices land on different Page Stores and batch
// reads fan out (§VI-2).
func (s *SAL) placement(sliceID uint32) ([]string, error) {
	sp := s.progress(sliceID)
	sp.createOnce.Do(func() {
		nodes := ReplicaSet(s.cfg.PageStores, s.cfg.ReplicationFactor, sliceID)
		for _, node := range nodes {
			if _, err := s.cfg.Transport.Call(node, &cluster.CreateSliceReq{
				Tenant: s.cfg.Tenant, SliceID: sliceID,
			}); err != nil {
				sp.createErr = fmt.Errorf("sal: creating slice %d on %s: %w", sliceID, node, err)
				return
			}
		}
		sp.nodes = nodes
	})
	return sp.nodes, sp.createErr
}

// SetTxnTrace registers a sampled statement's trace context under its
// transaction ID: records the transaction writes (which carry only the
// TrxID) stage into lanes, and the lane's window adopts the context so
// the statement's trace reaches the Log Store appends and Page Store
// applies it rode in. Pair with ClearTxnTrace when the statement ends.
func (s *SAL) SetTxnTrace(trxID uint64, tc obs.TraceContext) {
	if trxID == 0 || !tc.Valid() {
		return
	}
	s.traceMu.Lock()
	if s.txnTraces == nil {
		s.txnTraces = make(map[uint64]obs.TraceContext)
	}
	if _, ok := s.txnTraces[trxID]; !ok {
		s.traceCount.Add(1)
	}
	s.txnTraces[trxID] = tc
	s.traceMu.Unlock()
}

// ClearTxnTrace drops a registration made by SetTxnTrace.
func (s *SAL) ClearTxnTrace(trxID uint64) {
	if trxID == 0 {
		return
	}
	s.traceMu.Lock()
	if _, ok := s.txnTraces[trxID]; ok {
		delete(s.txnTraces, trxID)
		s.traceCount.Add(-1)
	}
	s.traceMu.Unlock()
}

// txnTrace looks a record's transaction up in the sampled set. The
// no-traces fast path is one atomic load.
func (s *SAL) txnTrace(trxID uint64) obs.TraceContext {
	if trxID == 0 || s.traceCount.Load() == 0 {
		return obs.TraceContext{}
	}
	s.traceMu.Lock()
	tc := s.txnTraces[trxID]
	s.traceMu.Unlock()
	return tc
}

// Write assigns an LSN to rec, appends it to its slice's lane, and
// returns the LSN — the caller (a transaction) records it as its commit
// watermark. No I/O happens on this path: durability is a separate wait
// (WaitDurable), and Page Store application is asynchronous. The caller
// applies the record to its own cached page after Write returns.
//
// Catalog records (TypeCatalog) are durability-only: they go to the Log
// Stores so the frontend's data dictionary can be rebuilt on restart,
// but they never touch a slice or a Page Store. They always ride the
// shared lane.
func (s *SAL) Write(rec *wal.Record) (uint64, error) {
	var sp *sliceProgress
	var sliceID uint32
	if rec.Type != wal.TypeCatalog {
		sliceID = s.SliceOf(rec.PageID)
		sp = s.progress(sliceID)
	}
	ln := s.laneFor(sp)
	var stallStart time.Time
	ln.stageMu.Lock()
	for {
		// Promotion may reassign the slice while we wait; follow it.
		if cur := s.laneFor(sp); cur != ln {
			ln.stageMu.Unlock()
			ln = cur
			ln.stageMu.Lock()
			continue
		}
		if err := s.sticky(); err != nil {
			ln.stageMu.Unlock()
			return 0, err
		}
		if s.isClosed() {
			ln.stageMu.Unlock()
			return 0, errClosed
		}
		// Backpressure: the lane's staging buffer holds at most two
		// flush windows' worth of records, and the lane's apply backlog
		// must be under its bound. Both stalls happen BEFORE the record
		// is staged: an unstaged record cannot pin the durable
		// watermark, so a lane throttled by its slice's slow replica
		// never delays other lanes' commits.
		if ln.stg.count < 2*int(ln.thresh.Load()) &&
			ln.applyBacklog.Load() < int64(s.cfg.ApplyBacklogWindows) {
			break
		}
		s.counters.backpressureStalls.Add(1)
		if s.m.enabled && stallStart.IsZero() {
			stallStart = time.Now()
		}
		ln.kick()
		ln.stageCond.Wait()
	}
	if !stallStart.IsZero() {
		s.m.stageWait.ObserveDuration(time.Since(stallStart))
	}
	// The LSN is allocated under the lane's stage lock so records enter
	// each lane's buffer in LSN order — the Page Stores' idempotent-skip
	// depends on in-order per-slice batches, and the durable-watermark
	// recomputation depends on allocation and staging being atomic.
	lsn := s.lsn.Add(1)
	rec.LSN = lsn
	if sp != nil {
		sb, ok := ln.stg.slices[sliceID]
		if !ok {
			sb = &sliceBatch{pageMax: make(map[uint64]uint64)}
			ln.stg.slices[sliceID] = sb
		}
		sb.enc = rec.Encode(sb.enc)
		if sb.minLSN == 0 {
			sb.minLSN = lsn
		}
		sb.maxLSN = lsn
		sb.count++
		sb.pageMax[rec.PageID] = lsn
		sp.lastStaged.Store(lsn)
		sp.mu.Lock()
		sp.pageStaged[rec.PageID] = lsn
		sp.mu.Unlock()
	}
	ln.stg.log = rec.Encode(ln.stg.log)
	if !ln.stg.trace.Valid() {
		if tc := s.txnTrace(rec.TrxID); tc.Valid() {
			ln.stg.trace = tc
		}
	}
	if ln.stg.count == 0 {
		ln.stg.minLSN = lsn
		if s.m.enabled {
			ln.stg.firstAt = time.Now()
		}
	}
	ln.stg.count++
	ln.stg.maxLSN = lsn
	s.pending.Add(1)
	full := ln.stg.count >= int(ln.thresh.Load())
	ln.stageMu.Unlock()
	if full {
		ln.kick()
	}
	return lsn, nil
}

// seal swaps the lane's staging buffer for a fresh one and registers
// the sealed window as durability-pending, atomically with respect to
// the durable-watermark recomputation (both under durMu). Returns nil
// if nothing is staged.
func (s *SAL) seal(ln *lane) *window {
	s.durMu.Lock()
	ln.stageMu.Lock()
	if ln.stg.count == 0 {
		ln.stageMu.Unlock()
		s.durMu.Unlock()
		return nil
	}
	w := &window{
		lane:   ln,
		minLSN: ln.stg.minLSN,
		maxLSN: ln.stg.maxLSN,
		count:  ln.stg.count,
		log:    ln.stg.log,
		slices: ln.stg.slices,
	}
	if tc := ln.stg.trace; tc.Valid() {
		w.span = s.cfg.Tracer.StartSpan(tc, "sal.window")
		w.span.Annotate("lane=%d recs=%d lsn=[%d,%d]", ln.id, w.count, w.minLSN, w.maxLSN)
		if w.span != nil {
			w.trace = w.span.Context()
		} else {
			// No collector on this node: still propagate the caller's
			// context so the storage-side spans attach to the statement.
			w.trace = tc
		}
	}
	if !ln.stg.firstAt.IsZero() {
		s.m.seal.ObserveDuration(time.Since(ln.stg.firstAt))
	}
	ln.stg = newStage()
	ln.stageCond.Broadcast() // release backpressured writers
	ln.stageMu.Unlock()
	ln.pendingQ = append(ln.pendingQ, w)
	s.durMu.Unlock()
	return w
}

// flusher seals the lane's windows on demand (threshold reached, a
// commit or read waiter kicked, or Flush) and launches them into the
// lane's pipeline. The shared lane's flusher additionally runs the
// hot-slice promotion policy after each seal.
func (ln *lane) flusher() {
	s := ln.s
	defer func() {
		for _, ch := range ln.nodeChs {
			close(ch)
		}
		close(ln.flusherDone)
	}()
	for {
		select {
		case <-s.quit:
			return
		case <-ln.notify:
		}
		for {
			// Group-commit batching: a sub-threshold window is sealed
			// only when no window of this lane is in the Log Store
			// stage, so records arriving during an fsync accumulate
			// into ONE next window instead of each paying a serial
			// fsync. Threshold-full windows pipeline up to the lane's
			// in-flight budget regardless.
			ln.stageMu.Lock()
			count := ln.stg.count
			ln.stageMu.Unlock()
			threshold := int(ln.thresh.Load())
			if count < threshold && ln.logInflight.Load() > 0 {
				break // re-kicked when the in-flight window turns durable
			}
			w := s.seal(ln)
			if w == nil {
				break
			}
			if w.count >= threshold {
				ln.sealsThreshold.Add(1)
				s.cfg.Events.Record(obs.EventWindowSeal, "lane %d: %s, %d recs, lsn [%d,%d]",
					ln.id, SealThreshold, w.count, w.minLSN, w.maxLSN)
			} else {
				ln.sealsDemand.Add(1)
				s.cfg.Events.Record(obs.EventWindowSeal, "lane %d: %s, %d recs, lsn [%d,%d]",
					ln.id, SealDemand, w.count, w.minLSN, w.maxLSN)
			}
			ln.observeArrival(w.count)
			if ln.id == 0 {
				s.maybePromote(w)
			}
			// Bounded per-lane in-flight budget: block (and count the
			// stall) when this lane's pipeline is full.
			select {
			case ln.sem <- struct{}{}:
			default:
				s.counters.backpressureStalls.Add(1)
				ln.sem <- struct{}{}
			}
			ln.inflight.Add(1)
			ln.windows.Add(1)
			ln.records.Add(uint64(w.count))
			w.applyRemaining.Store(int32(len(w.slices)))
			if len(ln.nodeChs) == 0 {
				// No Log Stores configured: the window is durable by
				// definition the moment it is sealed.
				ln.windowDurable(w)
				continue
			}
			ln.logInflight.Add(1)
			w.logRemaining.Store(int32(len(ln.nodeChs)))
			for _, ch := range ln.nodeChs {
				ch <- w
			}
		}
	}
}

// observeArrival feeds the lane's arrival-rate EWMA from a sealed
// window (flusher goroutine only writes lastSeal).
func (ln *lane) observeArrival(count int) {
	now := time.Now()
	ln.ewmaMu.Lock()
	defer ln.ewmaMu.Unlock()
	if !ln.lastSeal.IsZero() {
		if dt := now.Sub(ln.lastSeal).Seconds(); dt > 0 {
			rate := float64(count) / dt
			if ln.arrivalPerSec == 0 {
				ln.arrivalPerSec = rate
			} else {
				ln.arrivalPerSec = ewmaAlpha*rate + (1-ewmaAlpha)*ln.arrivalPerSec
			}
		}
	}
	ln.lastSeal = now
}

// observeFsync feeds the lane's fsync-latency EWMA from one Log Store
// append's measured SERVICE time — the duration of the Call itself,
// not seal-to-last-ack, which under a loaded pipeline would include
// queueing behind earlier windows and feed the threshold back into
// itself — and resizes the lane's flush threshold: batch roughly what
// arrives during one fsync, clamped to the configured bounds. A pinned
// threshold (Config.FlushThreshold) disables resizing.
func (ln *lane) observeFsync(lat float64) {
	s := ln.s
	ln.ewmaMu.Lock()
	defer ln.ewmaMu.Unlock()
	if ln.fsyncSeconds == 0 {
		ln.fsyncSeconds = lat
	} else {
		ln.fsyncSeconds = ewmaAlpha*lat + (1-ewmaAlpha)*ln.fsyncSeconds
	}
	if s.cfg.FlushThreshold > 0 {
		return // pinned
	}
	t := int(ln.arrivalPerSec * ln.fsyncSeconds)
	if t < s.cfg.FlushThresholdMin {
		t = s.cfg.FlushThresholdMin
	}
	if t > s.cfg.FlushThresholdMax {
		t = s.cfg.FlushThresholdMax
	}
	ln.thresh.Store(int64(t))
}

// maybePromote runs the hot-slice promotion AND demotion policy on a
// window the shared lane just sealed (shared-lane flusher goroutine
// only): each shared-lane slice's share of the window feeds a warming
// EWMA, each promoted slice's share of everything sealed since the last
// round feeds a cooling EWMA, and slices cross between the shared lane
// and the dedicated pool at the promoteShare/demoteShare thresholds.
func (s *SAL) maybePromote(w *window) {
	if len(s.lanes) <= 1 || w.count == 0 {
		return
	}
	s.heatObserved += w.count
	// Records sealed anywhere since the last policy round put this
	// window's share in context and drive the promoted slices' cooling.
	total := w.count
	deltas := make([]int, len(s.lanes))
	for i := 1; i < len(s.lanes); i++ {
		rec := s.lanes[i].records.Load()
		deltas[i] = int(rec - s.lastLaneRecords[i])
		s.lastLaneRecords[i] = rec
		total += deltas[i]
	}
	s.maybeDemote(deltas, total)
	for id := range s.laneHeat {
		if _, inWindow := w.slices[id]; !inWindow {
			s.laneHeat[id] *= 1 - heatAlpha
			if s.laneHeat[id] < 0.02 {
				delete(s.laneHeat, id)
			}
		}
	}
	hottest := uint32(0)
	best := 0.0
	for id, sb := range w.slices {
		if s.progress(id).laneID.Load() != 0 {
			// Already promoted: records staged in the shared lane just
			// before the flip can still appear in one more shared
			// window. Re-promoting would overwrite the slice's pending
			// handoff fence and break its apply order.
			delete(s.laneHeat, id)
			continue
		}
		share := float64(sb.count) / float64(w.count)
		h := share // first observation seeds the EWMA
		if old, ok := s.laneHeat[id]; ok {
			h = (1-heatAlpha)*old + heatAlpha*share
		}
		s.laneHeat[id] = h
		if h > best {
			best, hottest = h, id
		}
	}
	if best == 0 {
		return
	}
	if best < promoteShare || s.heatObserved < promoteMinObserved || len(s.freeLanes) == 0 {
		return
	}
	if s.promote(hottest, s.freeLanes[0]) {
		s.freeLanes = s.freeLanes[1:]
		delete(s.laneHeat, hottest)
		// Seed the cooling EWMA at the promotion threshold: the slice
		// must actually cool before it can be demoted (hysteresis).
		s.dedHeat[hottest] = promoteShare
	}
}

// maybeDemote cools every promoted slice's heat by its share of the
// traffic sealed since the last policy round and hands slices whose
// EWMA fell below demoteShare back to the shared lane, freeing their
// lanes for the next hot slice.
func (s *SAL) maybeDemote(deltas []int, total int) {
	for i := 1; i < len(s.lanes); i++ {
		ln := s.lanes[i]
		assigned := ln.assignedSlice.Load()
		if assigned < 0 || ln.poisoned.Load() {
			continue
		}
		sliceID := uint32(assigned)
		share := float64(deltas[i]) / float64(total)
		h, ok := s.dedHeat[sliceID]
		if !ok {
			h = promoteShare
		}
		h = (1-heatAlpha)*h + heatAlpha*share
		s.dedHeat[sliceID] = h
		if h >= demoteShare {
			continue
		}
		if s.demote(sliceID, ln) {
			delete(s.dedHeat, sliceID)
		}
	}
}

// promote moves a slice from the shared lane to a dedicated one. Under
// the shared lane's stage lock: every record already staged for the
// slice is at or below the fence (lastStaged), and every record written
// after the flip allocates its LSN in the new lane, strictly above it.
// The slice's apply worker holds back new-lane batches until the
// applied LSN reaches the fence, preserving per-slice apply order
// across the handoff.
func (s *SAL) promote(sliceID uint32, target *lane) bool {
	sp := s.progress(sliceID)
	shared := s.lanes[0]
	shared.stageMu.Lock()
	if sp.laneID.Load() != 0 || sp.fence.Load() != 0 {
		// Already promoted, or a previous handoff (a demotion's fence)
		// is still applying: a second flip now would clobber the
		// pending fence and break the slice's apply order. The policy
		// retries on a later round.
		shared.stageMu.Unlock()
		return false
	}
	if fence := sp.lastStaged.Load(); fence > 0 {
		sp.fence.Store(fence)
	}
	sp.laneID.Store(int32(target.id))
	shared.stageMu.Unlock()
	target.assignedSlice.Store(int64(sliceID))
	s.counters.promotions.Add(1)
	s.cfg.Events.Record(obs.EventLanePromote, "slice %d -> lane %d, fence %d",
		sliceID, target.id, sp.fence.Load())
	target.kick()
	return true
}

// demote hands a cooled slice back to the shared lane through the same
// fence machinery promotion uses, mirrored: under the dedicated lane's
// stage lock, everything already staged for the slice is at or below
// the fence, and every later record allocates in the shared lane
// strictly above it — the slice's apply worker holds the shared-lane
// batches until the dedicated lane's have all landed. The freed lane
// returns to the pool for the next hot slice.
func (s *SAL) demote(sliceID uint32, ln *lane) bool {
	sp := s.progress(sliceID)
	if sp.fence.Load() != 0 {
		return false // promotion handoff still applying; retry later
	}
	ln.stageMu.Lock()
	if sp.laneID.Load() != int32(ln.id) {
		ln.stageMu.Unlock()
		return false
	}
	if fence := sp.lastStaged.Load(); fence > 0 {
		sp.fence.Store(fence)
	}
	sp.laneID.Store(0)
	ln.stageMu.Unlock()
	ln.assignedSlice.Store(-1)
	s.freeLanes = append(s.freeLanes, ln)
	s.counters.demotions.Add(1)
	s.cfg.Events.Record(obs.EventLaneDemote, "slice %d: lane %d -> shared, fence %d",
		sliceID, ln.id, sp.fence.Load())
	// Writers parked on the dedicated lane's backpressure follow the
	// slice to the shared lane once woken.
	ln.stageMu.Lock()
	ln.stageCond.Broadcast()
	ln.stageMu.Unlock()
	return true
}

// logNodeWorker is one Log Store's FIFO append stream for one lane.
// Sequential calls per (lane, node) keep the lane's batches in LSN
// order on that node; different nodes (and different lanes) run in
// parallel, and node A can be appending window N+1 while node B is
// still on window N.
func (ln *lane) logNodeWorker(node string, ch chan *window) {
	s := ln.s
	defer ln.nodeWG.Done()
	for w := range ch {
		if ln.poisoned.Load() {
			// Draining a poisoned lane: nothing past the failure may be
			// acknowledged.
			w.failed.Store(true)
		} else {
			t0 := time.Now()
			_, err := cluster.CallTraced(s.cfg.Transport, w.trace, node, &cluster.LogAppendReq{
				Tenant: s.cfg.Tenant, Recs: w.log,
			})
			if err == nil {
				// The Call's own duration is the append service time
				// (network + logstore group-commit fsync) — measured
				// here rather than seal-to-last-ack so pipeline
				// queueing can't feed the adaptive threshold back into
				// itself.
				d := time.Since(t0)
				ln.observeFsync(d.Seconds())
				s.m.append.ObserveDuration(d)
			} else {
				w.failed.Store(true)
				// Freeze the watermark below this window BEFORE the
				// sticky error becomes visible, so a healthy-lane
				// waiter that wakes on the poison broadcast can tell
				// whether its LSN lies below the failure point (still
				// satisfiable) or not.
				s.durMu.Lock()
				if s.durFloor == 0 || w.minLSN < s.durFloor {
					s.durFloor = w.minLSN
				}
				s.durMu.Unlock()
				s.poison(ln, fmt.Errorf("sal: log store %s append: %w", node, err))
			}
		}
		if w.logRemaining.Add(-1) == 0 {
			// Last acknowledgement for this window. Per-lane-per-node
			// FIFO means window N's last ack strictly precedes window
			// N+1's, so the lane's windows turn durable (and reach the
			// apply stage) in order.
			ln.logInflight.Add(-1)
			ln.windowDurable(w)
			ln.kick() // release any deferred sub-threshold seal
		}
	}
}

// windowDurable retires the window from the durability-pending queue,
// recomputes the global durable watermark, releases the lane's
// log-stage budget slot, and hands the window to the apply stage. A
// failed window instead freezes the watermark below its first record:
// those records (and anything above them) were never acknowledged.
func (ln *lane) windowDurable(w *window) {
	s := ln.s
	s.durMu.Lock()
	for i, pw := range ln.pendingQ {
		if pw == w {
			ln.pendingQ = append(ln.pendingQ[:i], ln.pendingQ[i+1:]...)
			break
		}
	}
	if w.failed.Load() {
		if s.durFloor == 0 || w.minLSN < s.durFloor {
			s.durFloor = w.minLSN
		}
	} else {
		s.recomputeDurableLocked()
	}
	s.durCond.Broadcast()
	s.durMu.Unlock()
	// The window span covers seal → last Log Store acknowledgement (the
	// durability critical path); applies are separate child spans.
	w.span.End()
	// The log-stage budget frees at durability, NOT after apply:
	// durability (the commit path) never queues behind a slow replica.
	ln.inflight.Add(-1)
	<-ln.sem
	if w.failed.Load() || len(w.slices) == 0 {
		// Failed windows must not reach the Page Stores; catalog-only
		// windows have nothing to apply.
		s.windowComplete(w)
		return
	}
	ln.applyBacklog.Add(1)
	w.inApply = true
	ln.applyCh <- w
}

// recomputeDurableLocked advances the durable watermark to the LSN just
// below the lowest record any lane still holds staged or in flight
// (durFloor-capped once a window has failed). Caller holds durMu; the
// LSN snapshot is taken before inspecting the lanes so a concurrent
// allocation (which happens under its lane's stage lock, atomically
// with staging) can never be skipped over.
func (s *SAL) recomputeDurableLocked() {
	snap := s.lsn.Load()
	min := uint64(math.MaxUint64)
	for _, ln := range s.lanes {
		if fp := ln.firstPendingLocked(); fp < min {
			min = fp
		}
	}
	d := snap
	if min != math.MaxUint64 {
		d = min - 1
	}
	if s.durFloor > 0 && d >= s.durFloor {
		d = s.durFloor - 1
	}
	if d > s.durable {
		s.durable = d
		s.durableAtomic.Store(d)
	}
}

// firstPendingLocked returns the lowest LSN the lane still holds staged
// or sealed-but-unacknowledged (MaxUint64 when idle). Caller holds
// durMu (pendingQ); the stage is inspected under its own lock.
func (ln *lane) firstPendingLocked() uint64 {
	if len(ln.pendingQ) > 0 {
		return ln.pendingQ[0].minLSN
	}
	ln.stageMu.Lock()
	defer ln.stageMu.Unlock()
	if ln.stg.count > 0 {
		return ln.stg.minLSN
	}
	return math.MaxUint64
}

// sliceQueue is one slice's unbounded apply-job queue. Unbounded on
// purpose: the apply stage's backpressure is the per-lane apply-backlog
// bound applied to writers before they stage, so enqueueing here (from
// the durability path) must never block.
type sliceQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []applyJob
	closed bool
}

func newSliceQueue() *sliceQueue {
	q := &sliceQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *sliceQueue) push(job applyJob) {
	q.mu.Lock()
	q.jobs = append(q.jobs, job)
	q.cond.Signal()
	q.mu.Unlock()
}

// pop blocks for the next job; ok=false once the queue is closed AND
// drained.
func (q *sliceQueue) pop() (applyJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.jobs) == 0 {
		return applyJob{}, false
	}
	job := q.jobs[0]
	q.jobs = q.jobs[1:]
	return job, true
}

func (q *sliceQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// applyDispatcher fans the lane's durable windows out to the shared
// per-slice apply workers. The lane receives its windows in durable
// (per-lane LSN) order and each slice lives in one lane at a time
// (promotion fences the handoff), so each slice's batches reach its
// worker in LSN order.
//
// Application additionally waits for the GLOBAL durable watermark to
// cover the window: a lane-durable window may still have lower-LSN
// sibling records in another lane's unacknowledged window, and applying
// it early would let a crash-time Page Store checkpoint capture records
// whose siblings were lost (half a multi-page operation). The watermark
// advances at fsync speed — the log stage never waits on applies — so
// this gate costs at most cross-lane fsync skew, never a slow replica's
// latency. On a poisoned pipeline the gate can never be satisfied for
// uncovered windows; they drain without applying.
func (ln *lane) applyDispatcher() {
	s := ln.s
	defer s.dispatchWG.Done()
	for w := range ln.applyCh {
		s.durMu.Lock()
		for s.durable < w.maxLSN && s.sticky() == nil {
			// Another lane may be sitting on a sub-threshold stage with
			// lower LSNs; nudge every flusher like any durability
			// waiter would.
			s.kickAll()
			s.durCond.Wait()
		}
		covered := s.durable >= w.maxLSN
		s.durMu.Unlock()
		if !covered {
			if w.applyRemaining.Swap(0) > 0 {
				s.windowComplete(w)
			}
			continue
		}
		for sliceID, batch := range w.slices {
			s.sliceWorker(sliceID).push(applyJob{w: w, sliceID: sliceID, batch: batch})
		}
	}
}

// sliceWorker returns (creating if needed) the slice's apply worker
// queue. Workers are shared across lanes.
func (s *SAL) sliceWorker(sliceID uint32) *sliceQueue {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	q, ok := s.applyWorkers[sliceID]
	if !ok {
		q = newSliceQueue()
		s.applyWorkers[sliceID] = q
		s.sliceWG.Add(1)
		go s.sliceApplyWorker(sliceID, q)
	}
	return q
}

// sliceApplyWorker applies one slice's batches to all of its replicas,
// replicas in parallel, batches in LSN order. After a batch lands on
// every replica the slice's applied watermark advances, its pages'
// staged entries are pruned, and blocked readers wake. Around a
// promotion, batches from the new lane are stashed until the applied
// LSN reaches the handoff fence (all old-lane batches landed).
func (s *SAL) sliceApplyWorker(sliceID uint32, q *sliceQueue) {
	defer s.sliceWG.Done()
	sp := s.progress(sliceID)
	var stash []applyJob
	drainStash := func() {
		sort.Slice(stash, func(i, j int) bool { return stash[i].batch.minLSN < stash[j].batch.minLSN })
		for _, st := range stash {
			s.applyBatch(sp, sliceID, st)
		}
		stash = nil
	}
	for {
		job, ok := q.pop()
		if !ok {
			break
		}
		if fence := sp.fence.Load(); fence > 0 && job.batch.minLSN > fence &&
			sp.appliedLSN() < fence && !job.w.lane.poisoned.Load() {
			stash = append(stash, job)
			continue
		}
		s.applyBatch(sp, sliceID, job)
		if len(stash) > 0 {
			if fence := sp.fence.Load(); fence == 0 || sp.appliedLSN() >= fence || job.w.lane.poisoned.Load() {
				drainStash()
			}
		}
		if fence := sp.fence.Load(); fence > 0 && sp.appliedLSN() >= fence {
			sp.fence.Store(0)
		}
	}
	drainStash() // close/poison path: complete anything still held
}

// applyBatch writes one batch to every replica of the slice (replicas
// in parallel) and advances the slice's applied frontier. Batches of a
// poisoned lane drain without I/O.
func (s *SAL) applyBatch(sp *sliceProgress, sliceID uint32, job applyJob) {
	ln := job.w.lane
	if !ln.poisoned.Load() {
		nodes, err := s.placement(sliceID)
		if err != nil {
			s.poison(ln, err)
		} else {
			var t0 time.Time
			if s.m.enabled {
				t0 = time.Now()
			}
			// The per-slice apply fan-out is a child of the window it came
			// from; each replica write is an rpc span under it.
			applySpan := s.cfg.Tracer.StartSpan(job.w.trace, "sal.apply")
			applySpan.Annotate("slice=%d recs=%d replicas=%d", sliceID, job.batch.count, len(nodes))
			applyTC := job.w.trace
			if applySpan != nil {
				applyTC = applySpan.Context()
			}
			errs := make([]error, len(nodes))
			var wg sync.WaitGroup
			for i, node := range nodes {
				wg.Add(1)
				go func(i int, node string) {
					defer wg.Done()
					if _, err := cluster.CallTraced(s.cfg.Transport, applyTC, node, &cluster.WriteLogsReq{
						Tenant: s.cfg.Tenant, SliceID: sliceID, Recs: job.batch.enc,
					}); err != nil {
						errs[i] = fmt.Errorf("sal: page store %s apply: %w", node, err)
					}
				}(i, node)
			}
			wg.Wait()
			applySpan.End()
			if s.m.enabled {
				s.m.apply.ObserveDuration(time.Since(t0))
			}
			failed := false
			for _, err := range errs {
				if err != nil {
					s.poison(ln, err)
					failed = true
				}
			}
			if !failed {
				sp.mu.Lock()
				advanced := false
				if job.batch.maxLSN > sp.applied {
					sp.applied = job.batch.maxLSN
					advanced = true
				}
				for pageID := range job.batch.pageMax {
					if staged, ok := sp.pageStaged[pageID]; ok && staged <= sp.applied {
						delete(sp.pageStaged, pageID)
					}
				}
				sp.cond.Broadcast()
				sp.mu.Unlock()
				if advanced {
					s.noteApplied()
				}
			}
		}
	}
	if job.w.applyRemaining.Add(-1) == 0 {
		s.windowComplete(job.w)
	}
}

// windowComplete retires a fully-applied (or drained) window: its
// records are no longer pending, its lane's apply backlog shrinks, and
// writers stalled on that backlog wake. The log-stage budget was
// already released at durability.
func (s *SAL) windowComplete(w *window) {
	s.pending.Add(int64(-w.count))
	ln := w.lane
	if w.inApply {
		ln.applyBacklog.Add(-1)
		ln.stageMu.Lock()
		ln.stageCond.Broadcast()
		ln.stageMu.Unlock()
	}
	s.flushMu.Lock()
	s.flushCond.Broadcast()
	s.flushMu.Unlock()
}

// WaitDurable blocks until the durable watermark covers lsn: every
// record up to lsn has been acknowledged by all Log Stores (durable in
// triplicate). This is the transaction-commit wait — callers pass the
// transaction's own max LSN, so a committer never waits for LSNs handed
// out to unrelated writers after its last record. Page Store
// application may still be in flight. On a poisoned pipeline it returns
// nil if lsn was already covered (those records ARE durable), keeps
// waiting while lsn lies below the failure point (healthy lanes still
// advance the watermark there), and returns the sticky error otherwise.
func (s *SAL) WaitDurable(lsn uint64) error {
	return s.WaitDurableTraced(lsn, obs.TraceContext{})
}

// WaitDurableTraced is WaitDurable with the committing statement's
// trace context: a sampled commit records a sal.durable_wait span
// covering the blocked time (the fast path records nothing — there was
// no wait).
func (s *SAL) WaitDurableTraced(lsn uint64, tc obs.TraceContext) error {
	if s.durableAtomic.Load() >= lsn {
		return nil
	}
	if tc.Valid() {
		sp := s.cfg.Tracer.StartSpan(tc, "sal.durable_wait")
		sp.Annotate("lsn=%d", lsn)
		defer sp.End()
	}
	s.counters.commitWaits.Add(1)
	if s.m.enabled {
		t0 := time.Now()
		defer func() { s.m.durableWait.ObserveDuration(time.Since(t0)) }()
	}
	s.kickAll()
	s.durMu.Lock()
	defer s.durMu.Unlock()
	for s.durable < lsn {
		if err := s.sticky(); err != nil {
			if s.durFloor == 0 || lsn >= s.durFloor {
				return err
			}
			// lsn is below the first failed window: records covering it
			// sit in healthy lanes and will still become durable.
		}
		if s.isClosed() {
			return errClosed
		}
		s.durCond.Wait()
	}
	return nil
}

// DurableLSN returns the durable (commit) watermark.
func (s *SAL) DurableLSN() uint64 { return s.durableAtomic.Load() }

// StagedPageLSN returns the page's highest staged-but-not-yet-applied
// LSN (0 when every record for the page has been applied — or none was
// ever staged). The buffer pool's miss path uses it as the
// read-your-writes bound when joining another caller's in-flight fetch.
func (s *SAL) StagedPageLSN(pageID uint64) uint64 {
	if s.pending.Load() == 0 {
		return 0
	}
	sp := s.progressIfExists(s.SliceOf(pageID))
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.pageStaged[pageID]
}

// waitAppliedPages blocks until the slice's applied LSN covers every
// record staged for the given pages — a read waits only for the pages
// it touches, never for the slice's whole staged prefix. The fast path
// is a single atomic load: with nothing pending anywhere in the
// pipeline there is nothing to wait for.
func (s *SAL) waitAppliedPages(sliceID uint32, pageIDs ...uint64) error {
	if s.pending.Load() == 0 {
		return s.sticky()
	}
	sp := s.progress(sliceID)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	var target uint64
	for _, id := range pageIDs {
		if staged := sp.pageStaged[id]; staged > target {
			target = staged
		}
	}
	if target == 0 || sp.applied >= target {
		return nil
	}
	s.counters.applyWaits.Add(1)
	if s.m.enabled {
		t0 := time.Now()
		defer func() { s.m.applyWait.ObserveDuration(time.Since(t0)) }()
	}
	s.kickAll()
	for sp.applied < target {
		if err := s.sticky(); err != nil {
			return err
		}
		if s.isClosed() {
			return errClosed
		}
		sp.cond.Wait()
	}
	return nil
}

// lsnNotifier is the coalescing advance notifier. Two audiences:
//
//   - Legacy pull-tailing replicas registered via RegisterReplica get
//     cluster.LSNAdvanceReq (best effort — such a replica also polls).
//   - The Log Stores get cluster.FrontierReq relays — the durable
//     watermark plus the per-slice applied frontier — whenever a
//     frontier watch is armed (or Config.NotifyFrontier forces it).
//     Their push-stream hubs piggyback the frontier on pushed frames,
//     so N subscribed replicas cost the master O(#LogStores) per
//     advance instead of O(N).
//
// One goroutine, coalescing: however many windows turned durable (or
// slices finished applying) while a round was in flight, the next round
// sends only the newest state.
func (s *SAL) lsnNotifier() {
	defer close(s.notifierDone)
	var lastLSN, lastGen, lastApplied uint64
	for {
		s.durMu.Lock()
		for s.durable == lastLSN && s.repGen == lastGen &&
			s.appliedGen.Load() == lastApplied && !s.isClosed() {
			s.durCond.Wait()
		}
		d, gen := s.durable, s.repGen
		applied := s.appliedGen.Load()
		s.durMu.Unlock()
		if d == lastLSN && gen == lastGen && applied == lastApplied { // closed, nothing new
			return
		}
		lastLSN, lastGen, lastApplied = d, gen, applied
		s.repMu.Lock()
		nodes := append([]string(nil), s.replicaNodes...)
		s.repMu.Unlock()
		for _, node := range nodes {
			if _, err := s.cfg.Transport.Call(node, &cluster.LSNAdvanceReq{
				Tenant: s.cfg.Tenant, DurableLSN: d,
			}); err == nil {
				s.counters.replicaNotifies.Add(1)
			}
		}
		if s.frontierActive() {
			durable, slices := s.AppliedFrontier()
			req := &cluster.FrontierReq{Tenant: s.cfg.Tenant, DurableLSN: durable, Slices: slices}
			for _, node := range s.cfg.LogStores {
				if _, err := s.cfg.Transport.Call(node, req); err == nil {
					s.counters.frontierNotifies.Add(1)
				}
			}
		}
		if s.isClosed() {
			return
		}
	}
}

// Barrier waits until every record staged before the call is durable on
// the Log Stores and applied to every Page Store replica — without
// stopping new writers. Unlike Flush (which waits for pending == 0 and
// so can starve under sustained write traffic), Barrier snapshots the
// allocated-LSN frontier and each slice's staged frontier once, then
// waits only for that sealed prefix: the checkpointer's drain.
func (s *SAL) Barrier() error {
	lsn := s.lsn.Load()
	if err := s.WaitDurable(lsn); err != nil {
		return err
	}
	type target struct {
		sp  *sliceProgress
		lsn uint64
	}
	var targets []target
	s.slMu.Lock()
	for _, sp := range s.sliceProg {
		t := sp.lastStaged.Load()
		if t > lsn {
			// Staged after the barrier: not part of the snapshot.
			t = lsn
		}
		if t > 0 {
			targets = append(targets, target{sp, t})
		}
	}
	s.slMu.Unlock()
	for _, tg := range targets {
		tg.sp.mu.Lock()
		for tg.sp.applied < tg.lsn {
			if err := s.sticky(); err != nil {
				tg.sp.mu.Unlock()
				return err
			}
			if s.isClosed() {
				tg.sp.mu.Unlock()
				return errClosed
			}
			s.kickAll()
			tg.sp.cond.Wait()
		}
		tg.sp.mu.Unlock()
	}
	return s.sticky()
}

// Flush drains the pipeline: every record staged before the call is
// durable on the Log Stores AND applied to every Page Store replica
// when it returns, across all lanes. Checkpoints and shutdown use it;
// the regular commit path only needs WaitDurable.
func (s *SAL) Flush() error {
	if s.pending.Load() == 0 {
		return s.sticky()
	}
	s.kickAll()
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	for s.pending.Load() > 0 {
		if err := s.sticky(); err != nil {
			return err
		}
		s.flushCond.Wait()
		s.kickAll() // records staged since the last seal
	}
	return s.sticky()
}

var errClosed = fmt.Errorf("sal: closed")

func (s *SAL) isClosed() bool { return s.closed.Load() }

// Close drains the pipeline and stops its goroutines. The SAL must not
// be used afterwards.
func (s *SAL) Close() error {
	var err error
	s.closeOnce.Do(func() {
		// Fence new writers first, under every lane's stage lock: any
		// Write that staged its record before this point has pending >
		// 0 and is drained by the Flush below; any Write after it
		// observes closed and is rejected — a record can never slip in
		// behind the final drain.
		for _, ln := range s.lanes {
			ln.stageMu.Lock()
		}
		s.closed.Store(true)
		for _, ln := range s.lanes {
			ln.stageMu.Unlock()
		}
		// Wake anything parked so it observes the closed state.
		s.broadcastAll()
		err = s.Flush()
		close(s.quit)
		for _, ln := range s.lanes {
			<-ln.flusherDone
			ln.nodeWG.Wait()
		}
		<-s.applyDone
		<-s.notifierDone
	})
	return err
}

// Stats snapshots the write-path counters, including the per-lane
// breakdown (windows sealed, seals by reason, adaptive threshold, and
// each assigned slice's apply lag).
func (s *SAL) Stats() PipelineStats {
	st := PipelineStats{
		BackpressureStalls: s.counters.backpressureStalls.Load(),
		CommitWaits:        s.counters.commitWaits.Load(),
		ApplyWaits:         s.counters.applyWaits.Load(),
		PendingRecords:     s.pending.Load(),
		DurableLSN:         s.durableAtomic.Load(),
		AllocatedLSN:       s.lsn.Load(),
		Promotions:         s.counters.promotions.Load(),
		Demotions:          s.counters.demotions.Load(),
		ReplicaNotifies:    s.counters.replicaNotifies.Load(),
		FrontierNotifies:   s.counters.frontierNotifies.Load(),
	}
	st.FrontierWatchers = int(s.frontierWatch.Load())
	s.repMu.Lock()
	st.RegisteredReplicas = len(s.replicaNodes)
	s.repMu.Unlock()
	bySlice := make(map[int][]SliceApplyStats)
	s.slMu.Lock()
	ids := make([]uint32, 0, len(s.sliceProg))
	for id := range s.sliceProg {
		ids = append(ids, id)
	}
	s.slMu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sp := s.progressIfExists(id)
		if sp == nil {
			continue
		}
		laneID := int(sp.laneID.Load())
		staged := sp.lastStaged.Load()
		sp.mu.Lock()
		applied := sp.applied
		pages := len(sp.pageStaged)
		sp.mu.Unlock()
		lag := uint64(0)
		if staged > applied {
			lag = staged - applied
		}
		bySlice[laneID] = append(bySlice[laneID], SliceApplyStats{
			Slice: id, StagedLSN: staged, AppliedLSN: applied,
			ApplyLag: lag, PagesTracked: pages,
		})
	}
	for _, ln := range s.lanes {
		ln.ewmaMu.Lock()
		arrival, fsync := ln.arrivalPerSec, ln.fsyncSeconds
		ln.ewmaMu.Unlock()
		ls := LaneStats{
			Lane:           ln.id,
			Slice:          ln.assignedSlice.Load(),
			WindowsSealed:  ln.windows.Load(),
			RecordsFlushed: ln.records.Load(),
			SealsByReason: map[string]uint64{
				SealThreshold: ln.sealsThreshold.Load(),
				SealDemand:    ln.sealsDemand.Load(),
			},
			FlushThreshold:  int(ln.thresh.Load()),
			ArrivalPerSec:   arrival,
			FsyncMicros:     fsync * 1e6,
			InFlightWindows: ln.inflight.Load(),
			ApplyBacklog:    ln.applyBacklog.Load(),
			Poisoned:        ln.poisoned.Load(),
			Slices:          bySlice[ln.id],
		}
		st.Lanes = append(st.Lanes, ls)
		st.WindowsFlushed += ls.WindowsSealed
		st.RecordsFlushed += ls.RecordsFlushed
		st.InFlightWindows += ls.InFlightWindows
	}
	return st
}
