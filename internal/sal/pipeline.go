// Pipelined group-commit write path.
//
// In the paper, the frontend acknowledges a transaction as soon as its
// log records are durable in triplicate on Log Stores; Page Store
// application is asynchronous ("Log Stores ... Once all of the log
// records belonging to a transaction have been made durable, transaction
// completion can be acknowledged", §II). This file implements that
// separation:
//
//   - Write appends a record to the current staging buffer and returns
//     without doing any I/O. Backpressure (a bounded staging buffer and a
//     bounded window of in-flight flushes) is the only thing that can
//     make it wait.
//   - A flusher goroutine seals the staging buffer into a window and
//     hands it to one FIFO worker per Log Store node, so the triplicate
//     appends of one window run in parallel with each other AND with the
//     appends of the next window on other nodes (pipelining). Per-node
//     FIFO order is what keeps each Log Store's duplicate filter and the
//     durable-LSN watermark correct.
//   - When every Log Store has acknowledged a window, the durable
//     watermark advances and commit waiters blocked in WaitDurable up to
//     that LSN are released. Windows become durable strictly in order
//     because each node worker is FIFO.
//   - Page Store application happens after durability, asynchronously:
//     an apply dispatcher fans each window out to per-slice workers
//     (ordered per slice, so idempotent-skip filters never drop a fresh
//     record) which write all replicas of their slice in parallel.
//     Readers never force a flush; they wait until the slice's applied
//     LSN covers the last record staged for that slice.
//
// Failure model: any Log Store append or Page Store apply error poisons
// the SAL. Records whose window was already fully acknowledged stay
// acknowledged (they are durable); everything else — commit waiters,
// readers, writers — gets the sticky error. Recovery is Open's job.
package sal

import (
	"fmt"
	"sync"
	"sync/atomic"

	"taurus/internal/cluster"
	"taurus/internal/wal"
)

// DefaultMaxInFlightWindows bounds how many sealed windows may be in the
// pipeline (log append or page apply stage) at once.
const DefaultMaxInFlightWindows = 8

// sliceBatch is one slice's share of a window: the concatenated record
// encoding and the highest LSN in it.
type sliceBatch struct {
	enc    []byte
	maxLSN uint64
}

// window is one sealed group-commit unit moving through the pipeline.
type window struct {
	maxLSN uint64
	count  int
	log    []byte                 // combined encoding for Log Stores
	slices map[uint32]*sliceBatch // per-slice encodings for Page Stores

	logRemaining   atomic.Int32
	applyRemaining atomic.Int32
}

// stage is the open staging buffer writers append to.
type stage struct {
	log    []byte
	slices map[uint32]*sliceBatch
	count  int
	maxLSN uint64
}

func newStage() *stage {
	return &stage{slices: make(map[uint32]*sliceBatch)}
}

// sliceProgress tracks one slice's replica set and LSN frontier on the
// frontend side.
type sliceProgress struct {
	// lastStaged is the highest LSN ever staged for this slice (updated
	// under stageMu, so it is monotone).
	lastStaged atomic.Uint64

	mu      sync.Mutex
	cond    *sync.Cond
	applied uint64 // highest LSN applied on ALL replicas

	createOnce sync.Once
	nodes      []string
	createErr  error
}

// applyJob is one window's batch for one slice.
type applyJob struct {
	w       *window
	sliceID uint32
	batch   *sliceBatch
}

// PipelineStats is a snapshot of the write-path counters.
type PipelineStats struct {
	// WindowsFlushed / RecordsFlushed count sealed group-commit windows
	// and the records they carried.
	WindowsFlushed uint64
	RecordsFlushed uint64
	// BackpressureStalls counts the times a writer or the flusher had to
	// wait because the staging buffer or the in-flight window budget was
	// full.
	BackpressureStalls uint64
	// CommitWaits counts WaitDurable calls that actually blocked;
	// ApplyWaits counts reads that blocked on a slice's applied LSN.
	CommitWaits uint64
	ApplyWaits  uint64
	// InFlightWindows / PendingRecords are the current pipeline depth.
	InFlightWindows int64
	PendingRecords  int64
	// DurableLSN is the commit watermark; AllocatedLSN the last LSN
	// handed out.
	DurableLSN   uint64
	AllocatedLSN uint64
}

type pipelineCounters struct {
	windows            atomic.Uint64
	records            atomic.Uint64
	backpressureStalls atomic.Uint64
	commitWaits        atomic.Uint64
	applyWaits         atomic.Uint64
}

// startPipeline launches the flusher, the per-Log-Store node workers,
// and the apply dispatcher.
func (s *SAL) startPipeline() {
	s.notify = make(chan struct{}, 1)
	s.quit = make(chan struct{})
	s.flusherDone = make(chan struct{})
	s.sem = make(chan struct{}, s.cfg.MaxInFlightWindows)
	s.applyCh = make(chan *window, s.cfg.MaxInFlightWindows)
	s.applyDone = make(chan struct{})
	s.stage = newStage()
	s.stageCond = sync.NewCond(&s.stageMu)
	s.durCond = sync.NewCond(&s.durMu)
	s.flushCond = sync.NewCond(&s.flushMu)

	s.nodeChs = make([]chan *window, len(s.cfg.LogStores))
	for i := range s.nodeChs {
		s.nodeChs[i] = make(chan *window, s.cfg.MaxInFlightWindows)
		s.nodeWG.Add(1)
		go s.logNodeWorker(s.cfg.LogStores[i], s.nodeChs[i])
	}
	go s.flusher()
	go func() {
		// applyCh has two kinds of senders — node workers (normal case)
		// and the flusher (no Log Stores configured) — so it closes only
		// after both are done.
		<-s.flusherDone
		s.nodeWG.Wait()
		close(s.applyCh)
	}()
	go s.applyDispatcher()
}

// kick nudges the flusher (non-blocking; one pending kick is enough).
func (s *SAL) kick() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// sticky returns the pipeline's poisoned state, if any.
func (s *SAL) sticky() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// poison records the first pipeline error and wakes every waiter so it
// can observe it. The pipeline keeps draining windows (without I/O) so
// Flush and Close terminate.
func (s *SAL) poison(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.broadcastAll()
}

// broadcastAll wakes every parked waiter (commit, flush, backpressured
// writer, reader) so it can re-check its condition.
func (s *SAL) broadcastAll() {
	s.durMu.Lock()
	s.durCond.Broadcast()
	s.durMu.Unlock()
	s.flushMu.Lock()
	s.flushCond.Broadcast()
	s.flushMu.Unlock()
	s.stageMu.Lock()
	s.stageCond.Broadcast()
	s.stageMu.Unlock()
	s.slMu.Lock()
	for _, sp := range s.sliceProg {
		sp.mu.Lock()
		sp.cond.Broadcast()
		sp.mu.Unlock()
	}
	s.slMu.Unlock()
}

// progress returns (creating if needed) the slice's progress tracker.
func (s *SAL) progress(sliceID uint32) *sliceProgress {
	s.slMu.Lock()
	defer s.slMu.Unlock()
	sp, ok := s.sliceProg[sliceID]
	if !ok {
		sp = &sliceProgress{}
		sp.cond = sync.NewCond(&sp.mu)
		s.sliceProg[sliceID] = sp
	}
	return sp
}

// placement returns the slice's replica set, provisioning the slice on
// its Page Stores exactly once. Replicas are chosen round-robin by slice
// id, so consecutive slices land on different Page Stores and batch
// reads fan out (§VI-2).
func (s *SAL) placement(sliceID uint32) ([]string, error) {
	sp := s.progress(sliceID)
	sp.createOnce.Do(func() {
		n := len(s.cfg.PageStores)
		nodes := make([]string, 0, s.cfg.ReplicationFactor)
		for i := 0; i < s.cfg.ReplicationFactor; i++ {
			nodes = append(nodes, s.cfg.PageStores[(int(sliceID)+i)%n])
		}
		for _, node := range nodes {
			if _, err := s.cfg.Transport.Call(node, &cluster.CreateSliceReq{
				Tenant: s.cfg.Tenant, SliceID: sliceID,
			}); err != nil {
				sp.createErr = fmt.Errorf("sal: creating slice %d on %s: %w", sliceID, node, err)
				return
			}
		}
		sp.nodes = nodes
	})
	return sp.nodes, sp.createErr
}

// Write assigns an LSN to rec and appends it to the staging buffer. No
// I/O happens on this path: durability is a separate wait (WaitDurable),
// and Page Store application is asynchronous. The caller applies the
// record to its own cached page after Write returns.
//
// Catalog records (TypeCatalog) are durability-only: they go to the Log
// Stores so the frontend's data dictionary can be rebuilt on restart,
// but they never touch a slice or a Page Store.
func (s *SAL) Write(rec *wal.Record) error {
	s.stageMu.Lock()
	// Backpressure: the staging buffer holds at most two flush windows'
	// worth of records; beyond that, writers wait for the flusher.
	for s.stage.count >= 2*s.cfg.FlushThreshold {
		if err := s.sticky(); err != nil {
			s.stageMu.Unlock()
			return err
		}
		if s.isClosed() {
			s.stageMu.Unlock()
			return errClosed
		}
		s.counters.backpressureStalls.Add(1)
		s.kick()
		s.stageCond.Wait()
	}
	if err := s.sticky(); err != nil {
		s.stageMu.Unlock()
		return err
	}
	if s.isClosed() {
		s.stageMu.Unlock()
		return errClosed
	}
	// The LSN is allocated under stageMu so records enter the buffer in
	// LSN order — the Log Stores' duplicate filters and the Page Stores'
	// idempotent-skip both depend on in-order batches.
	rec.LSN = s.lsn.Add(1)
	if rec.Type != wal.TypeCatalog {
		sliceID := s.SliceOf(rec.PageID)
		sb, ok := s.stage.slices[sliceID]
		if !ok {
			sb = &sliceBatch{}
			s.stage.slices[sliceID] = sb
		}
		sb.enc = rec.Encode(sb.enc)
		sb.maxLSN = rec.LSN
		s.progress(sliceID).lastStaged.Store(rec.LSN)
	}
	s.stage.log = rec.Encode(s.stage.log)
	s.stage.count++
	s.stage.maxLSN = rec.LSN
	s.pending.Add(1)
	full := s.stage.count >= s.cfg.FlushThreshold
	s.stageMu.Unlock()
	if full {
		s.kick()
	}
	return nil
}

// seal swaps the staging buffer for a fresh one, returning the sealed
// window (nil if nothing is staged).
func (s *SAL) seal() *window {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if s.stage.count == 0 {
		return nil
	}
	w := &window{
		maxLSN: s.stage.maxLSN,
		count:  s.stage.count,
		log:    s.stage.log,
		slices: s.stage.slices,
	}
	s.stage = newStage()
	s.stageCond.Broadcast() // release backpressured writers
	return w
}

// flusher seals windows on demand (threshold reached, a commit or read
// waiter kicked, or Flush) and launches them into the pipeline.
func (s *SAL) flusher() {
	defer func() {
		for _, ch := range s.nodeChs {
			close(ch)
		}
		close(s.flusherDone)
	}()
	for {
		select {
		case <-s.quit:
			return
		case <-s.notify:
		}
		for {
			// Group-commit batching: a sub-threshold window is sealed
			// only when no window is in the Log Store stage, so records
			// arriving during an fsync accumulate into ONE next window
			// instead of each paying a serial fsync. Threshold-full
			// windows pipeline up to the in-flight budget regardless.
			s.stageMu.Lock()
			defer_ := s.stage.count < s.cfg.FlushThreshold && s.logInflight.Load() > 0
			s.stageMu.Unlock()
			if defer_ {
				break // re-kicked when the in-flight window turns durable
			}
			w := s.seal()
			if w == nil {
				break
			}
			// Bounded in-flight window budget: block (and count the
			// stall) when the pipeline is full.
			select {
			case s.sem <- struct{}{}:
			default:
				s.counters.backpressureStalls.Add(1)
				s.sem <- struct{}{}
			}
			s.inflight.Add(1)
			s.counters.windows.Add(1)
			s.counters.records.Add(uint64(w.count))
			w.applyRemaining.Store(int32(len(w.slices)))
			if len(s.nodeChs) == 0 {
				// No Log Stores configured: the window is durable by
				// definition the moment it is sealed.
				s.windowDurable(w)
				continue
			}
			s.logInflight.Add(1)
			w.logRemaining.Store(int32(len(s.nodeChs)))
			for _, ch := range s.nodeChs {
				ch <- w
			}
		}
	}
}

// logNodeWorker is one Log Store's FIFO append stream. Sequential calls
// per node keep batches in LSN order on that node; different nodes (and
// hence the triplicate appends of a window) run in parallel, and node A
// can be appending window N+1 while node B is still on window N.
func (s *SAL) logNodeWorker(node string, ch chan *window) {
	defer s.nodeWG.Done()
	for w := range ch {
		if s.sticky() == nil {
			if _, err := s.cfg.Transport.Call(node, &cluster.LogAppendReq{
				Tenant: s.cfg.Tenant, Recs: w.log,
			}); err != nil {
				s.poison(fmt.Errorf("sal: log store %s append: %w", node, err))
			}
		}
		if w.logRemaining.Add(-1) == 0 {
			// Last acknowledgement for this window. Per-node FIFO means
			// window N's last ack strictly precedes window N+1's, so
			// durability (and the applyCh send below) happen in window
			// order.
			s.logInflight.Add(-1)
			s.windowDurable(w)
			s.kick() // release any deferred sub-threshold seal
		}
	}
}

// windowDurable publishes the window's durability and hands it to the
// apply stage. On a poisoned pipeline the watermark stays put (the
// window may not be durable in triplicate) and the window just drains.
func (s *SAL) windowDurable(w *window) {
	if s.sticky() != nil {
		s.windowComplete(w)
		return
	}
	s.durMu.Lock()
	if w.maxLSN > s.durable {
		s.durable = w.maxLSN
		s.durableAtomic.Store(w.maxLSN)
		s.durCond.Broadcast()
	}
	s.durMu.Unlock()
	if len(w.slices) == 0 {
		s.windowComplete(w) // catalog-only window: nothing to apply
		return
	}
	s.applyCh <- w
}

// applyDispatcher fans durable windows out to per-slice apply workers.
// It receives windows in durable (LSN) order and each slice channel is
// FIFO, so a slice's batches apply in LSN order even though different
// slices — and different replicas of one slice — apply in parallel.
func (s *SAL) applyDispatcher() {
	workers := make(map[uint32]chan applyJob)
	for w := range s.applyCh {
		for sliceID, batch := range w.slices {
			ch, ok := workers[sliceID]
			if !ok {
				ch = make(chan applyJob, s.cfg.MaxInFlightWindows)
				workers[sliceID] = ch
				s.sliceWG.Add(1)
				go s.sliceApplyWorker(sliceID, ch)
			}
			ch <- applyJob{w: w, sliceID: sliceID, batch: batch}
		}
	}
	for _, ch := range workers {
		close(ch)
	}
	s.sliceWG.Wait()
	close(s.applyDone)
}

// sliceApplyWorker applies one slice's batches to all of its replicas,
// replicas in parallel, batches in order. After a batch lands on every
// replica the slice's applied watermark advances and blocked readers
// wake.
func (s *SAL) sliceApplyWorker(sliceID uint32, ch chan applyJob) {
	defer s.sliceWG.Done()
	sp := s.progress(sliceID)
	for job := range ch {
		if s.sticky() == nil {
			nodes, err := s.placement(sliceID)
			if err != nil {
				s.poison(err)
			} else {
				errs := make([]error, len(nodes))
				var wg sync.WaitGroup
				for i, node := range nodes {
					wg.Add(1)
					go func(i int, node string) {
						defer wg.Done()
						if _, err := s.cfg.Transport.Call(node, &cluster.WriteLogsReq{
							Tenant: s.cfg.Tenant, SliceID: sliceID, Recs: job.batch.enc,
						}); err != nil {
							errs[i] = fmt.Errorf("sal: page store %s apply: %w", node, err)
						}
					}(i, node)
				}
				wg.Wait()
				failed := false
				for _, err := range errs {
					if err != nil {
						s.poison(err)
						failed = true
					}
				}
				if !failed {
					sp.mu.Lock()
					if job.batch.maxLSN > sp.applied {
						sp.applied = job.batch.maxLSN
						sp.cond.Broadcast()
					}
					sp.mu.Unlock()
				}
			}
		}
		if job.w.applyRemaining.Add(-1) == 0 {
			s.windowComplete(job.w)
		}
	}
}

// windowComplete retires a window: its records are no longer pending and
// its in-flight budget slot frees up.
func (s *SAL) windowComplete(w *window) {
	s.pending.Add(int64(-w.count))
	s.inflight.Add(-1)
	<-s.sem
	s.flushMu.Lock()
	s.flushCond.Broadcast()
	s.flushMu.Unlock()
}

// WaitDurable blocks until the durable watermark covers lsn: every
// record up to lsn has been acknowledged by all Log Stores (durable in
// triplicate). This is the transaction-commit wait — Page Store
// application may still be in flight. It returns nil even on a poisoned
// pipeline if lsn was already covered (those records ARE durable).
func (s *SAL) WaitDurable(lsn uint64) error {
	if s.durableAtomic.Load() >= lsn {
		return nil
	}
	s.counters.commitWaits.Add(1)
	s.kick()
	s.durMu.Lock()
	defer s.durMu.Unlock()
	for s.durable < lsn {
		if err := s.sticky(); err != nil {
			return err
		}
		if s.isClosed() {
			return errClosed
		}
		s.durCond.Wait()
	}
	return nil
}

// DurableLSN returns the durable (commit) watermark.
func (s *SAL) DurableLSN() uint64 { return s.durableAtomic.Load() }

// waitApplied blocks until the slice's applied LSN covers everything
// staged for it, so a read sees the slice's own prior writes. The fast
// path is a single atomic load: with nothing pending anywhere in the
// pipeline there is nothing to wait for.
func (s *SAL) waitApplied(sliceID uint32) error {
	if s.pending.Load() == 0 {
		return s.sticky()
	}
	sp := s.progress(sliceID)
	target := sp.lastStaged.Load()
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.applied >= target {
		return nil
	}
	s.counters.applyWaits.Add(1)
	s.kick()
	for sp.applied < target {
		if err := s.sticky(); err != nil {
			return err
		}
		if s.isClosed() {
			return errClosed
		}
		sp.cond.Wait()
	}
	return nil
}

// Flush drains the pipeline: every record staged before the call is
// durable on the Log Stores AND applied to every Page Store replica when
// it returns. Checkpoints and shutdown use it; the regular commit path
// only needs WaitDurable.
func (s *SAL) Flush() error {
	if s.pending.Load() == 0 {
		return s.sticky()
	}
	s.kick()
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	for s.pending.Load() > 0 {
		if err := s.sticky(); err != nil {
			return err
		}
		s.flushCond.Wait()
		s.kick() // records staged since the last seal
	}
	return s.sticky()
}

var errClosed = fmt.Errorf("sal: closed")

func (s *SAL) isClosed() bool { return s.closed.Load() }

// Close drains the pipeline and stops its goroutines. The SAL must not
// be used afterwards.
func (s *SAL) Close() error {
	var err error
	s.closeOnce.Do(func() {
		// Fence new writers first, under stageMu: any Write that staged
		// its record before this point has pending > 0 and is drained by
		// the Flush below; any Write after it observes closed and is
		// rejected — a record can never slip in behind the final drain.
		s.stageMu.Lock()
		s.closed.Store(true)
		s.stageMu.Unlock()
		// Wake anything parked so it observes the closed state.
		s.broadcastAll()
		err = s.Flush()
		close(s.quit)
		<-s.flusherDone
		s.nodeWG.Wait()
		<-s.applyDone
	})
	return err
}

// Stats snapshots the write-path counters.
func (s *SAL) Stats() PipelineStats {
	return PipelineStats{
		WindowsFlushed:     s.counters.windows.Load(),
		RecordsFlushed:     s.counters.records.Load(),
		BackpressureStalls: s.counters.backpressureStalls.Load(),
		CommitWaits:        s.counters.commitWaits.Load(),
		ApplyWaits:         s.counters.applyWaits.Load(),
		InFlightWindows:    s.inflight.Load(),
		PendingRecords:     s.pending.Load(),
		DurableLSN:         s.durableAtomic.Load(),
		AllocatedLSN:       s.lsn.Load(),
	}
}
