package sal

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/obs"
)

// ReadRouter picks which Page Store replica serves each per-slice scan
// sub-batch. Every replica holds the same slice versions (the SAL
// replicates every log record to the full replica set), so reads are
// free to chase load: the router tracks in-flight requests and an EWMA
// of observed latency per store and sends the next sub-batch to the
// cheapest one. Round-robin remains available as a fallback (and as
// the bench's routing-off baseline).
type ReadRouter struct {
	leastLoaded atomic.Bool
	rr          atomic.Uint64
	routed      atomic.Uint64
	retried     atomic.Uint64
	hedged      atomic.Uint64

	mu    sync.Mutex
	nodes map[string]*nodeLoad
}

// nodeLoad is the per-store tracker behind routing decisions.
type nodeLoad struct {
	inflight atomic.Int64
	reqs     atomic.Uint64
	errs     atomic.Uint64
	// ewmaMicros holds math.Float64bits of the smoothed call latency.
	ewmaMicros atomic.Uint64
}

// ewmaAlpha weights new latency observations; ~0.2 settles in a few
// requests without thrashing on one outlier.
const routerEwmaAlpha = 0.2

// minLatencyMicros floors the EWMA in scoring so a store with no
// history yet doesn't look infinitely fast.
const minLatencyMicros = 1.0

// NewReadRouter builds a router with least-loaded routing enabled.
func NewReadRouter() *ReadRouter {
	r := &ReadRouter{nodes: make(map[string]*nodeLoad)}
	r.leastLoaded.Store(true)
	return r
}

// SetLeastLoaded toggles between least-loaded and round-robin picks.
func (r *ReadRouter) SetLeastLoaded(on bool) {
	if r != nil {
		r.leastLoaded.Store(on)
	}
}

// LeastLoaded reports the current routing mode.
func (r *ReadRouter) LeastLoaded() bool { return r != nil && r.leastLoaded.Load() }

func (r *ReadRouter) load(node string) *nodeLoad {
	r.mu.Lock()
	nl, ok := r.nodes[node]
	if !ok {
		nl = &nodeLoad{}
		r.nodes[node] = nl
	}
	r.mu.Unlock()
	return nl
}

func (nl *nodeLoad) ewma() float64 { return math.Float64frombits(nl.ewmaMicros.Load()) }

// score is the expected cost of sending one more request to the node:
// queue depth (including the request being scored) times smoothed
// per-request latency.
func (nl *nodeLoad) score() float64 {
	lat := nl.ewma()
	if lat < minLatencyMicros {
		lat = minLatencyMicros
	}
	return float64(nl.inflight.Load()+1) * lat
}

// Pick chooses a replica from nodes. Nil-safe: a nil router always
// returns the first node.
func (r *ReadRouter) Pick(nodes []string) string {
	if len(nodes) == 0 {
		return ""
	}
	if r == nil || len(nodes) == 1 {
		return nodes[0]
	}
	r.routed.Add(1)
	n := int(r.rr.Add(1))
	if !r.leastLoaded.Load() {
		return nodes[n%len(nodes)]
	}
	// Rotate the starting point so equally-scored stores share load
	// instead of everything collapsing onto the first name.
	best, bestScore := "", 0.0
	for i := 0; i < len(nodes); i++ {
		node := nodes[(n+i)%len(nodes)]
		if s := r.load(node).score(); best == "" || s < bestScore {
			best, bestScore = node, s
		}
	}
	return best
}

// Begin marks a request in flight on node and returns the completion
// callback that settles the latency/error accounting. Nil-safe.
func (r *ReadRouter) Begin(node string) func(error) {
	if r == nil {
		return func(error) {}
	}
	nl := r.load(node)
	nl.inflight.Add(1)
	t0 := time.Now()
	return func(err error) {
		nl.inflight.Add(-1)
		nl.reqs.Add(1)
		if err != nil {
			nl.errs.Add(1)
			return
		}
		us := float64(time.Since(t0).Microseconds())
		if us < minLatencyMicros {
			us = minLatencyMicros
		}
		for {
			old := nl.ewmaMicros.Load()
			cur := math.Float64frombits(old)
			next := us
			if cur > 0 {
				next = cur + routerEwmaAlpha*(us-cur)
			}
			if nl.ewmaMicros.CompareAndSwap(old, math.Float64bits(next)) {
				return
			}
		}
	}
}

// EWMALatency returns the smoothed request latency for node (0 if the
// node has no history yet).
func (r *ReadRouter) EWMALatency(node string) time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.load(node).ewma() * float64(time.Microsecond))
}

func (r *ReadRouter) noteRetry() {
	if r != nil {
		r.retried.Add(1)
	}
}

func (r *ReadRouter) noteHedge() {
	if r != nil {
		r.hedged.Add(1)
		r.retried.Add(1)
	}
}

// RouterNodeStats is one store's routing view.
type RouterNodeStats struct {
	Node              string  `json:"node"`
	InFlight          int64   `json:"in_flight"`
	Requests          uint64  `json:"requests"`
	Errors            uint64  `json:"errors"`
	EWMALatencyMicros float64 `json:"ewma_latency_micros"`
}

// RouterStats is a snapshot of scan routing activity, surfaced through
// DB.ScanRouting() and the server's /stats payloads.
type RouterStats struct {
	LeastLoaded bool `json:"least_loaded"`
	// ScanRouted counts replica picks; ScanRetried counts sub-batches
	// re-sent to another replica (failures plus hedges); ScanHedged is
	// the straggler-hedge subset of ScanRetried.
	ScanRouted  uint64            `json:"scan_routed"`
	ScanRetried uint64            `json:"scan_retried"`
	ScanHedged  uint64            `json:"scan_hedged"`
	Nodes       []RouterNodeStats `json:"nodes,omitempty"`
}

// Stats snapshots the router. Nil-safe.
func (r *ReadRouter) Stats() RouterStats {
	if r == nil {
		return RouterStats{}
	}
	st := RouterStats{
		LeastLoaded: r.leastLoaded.Load(),
		ScanRouted:  r.routed.Load(),
		ScanRetried: r.retried.Load(),
		ScanHedged:  r.hedged.Load(),
	}
	r.mu.Lock()
	for node, nl := range r.nodes {
		st.Nodes = append(st.Nodes, RouterNodeStats{
			Node:              node,
			InFlight:          nl.inflight.Load(),
			Requests:          nl.reqs.Load(),
			Errors:            nl.errs.Load(),
			EWMALatencyMicros: nl.ewma(),
		})
	}
	r.mu.Unlock()
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].Node < st.Nodes[j].Node })
	return st
}

// RegisterMetrics exports the router counters. role labels the frontend
// ("master" or the replica's name) so master and replica routers can
// share one exposition.
func (r *ReadRouter) RegisterMetrics(reg *obs.Registry, role string) {
	if r == nil || reg == nil {
		return
	}
	l := obs.L("role", role)
	reg.CounterFunc("taurus_scan_routed_total",
		"Per-slice scan sub-batches routed to a Page Store replica.",
		func() float64 { return float64(r.routed.Load()) }, l)
	reg.CounterFunc("taurus_scan_retried_total",
		"Scan sub-batches re-sent to another replica (failure or straggler hedge).",
		func() float64 { return float64(r.retried.Load()) }, l)
	reg.CounterFunc("taurus_scan_hedged_total",
		"Straggler hedges: backup scan sub-batches launched while the primary was still running.",
		func() float64 { return float64(r.hedged.Load()) }, l)
}

// FanOut is the batch-read dispatcher shared by the SAL and the
// read-replica tier: it splits a page list into per-slice sub-batches
// (§VI-2), routes each to a Page Store replica through the ReadRouter,
// issues them concurrently, retries failed sub-batches on the next
// replica, hedges stragglers, and reassembles the responses in request
// order.
type FanOut struct {
	Transport cluster.Transport
	Tenant    uint32
	Plugin    string
	SliceOf   func(pageID uint64) uint32
	// NodesFor runs any pre-read wait and returns the slice's full
	// replica set (in placement order).
	NodesFor func(sliceID uint32, ids []uint64) ([]string, error)
	Router   *ReadRouter
	Events   *obs.EventRing
	// HedgeFloor is the minimum straggler wait before a backup request
	// launches (the effective wait is max(HedgeFloor, 4x the primary's
	// EWMA latency)). Zero selects defaultHedgeFloor; negative disables
	// hedging.
	HedgeFloor time.Duration
}

const defaultHedgeFloor = 2 * time.Millisecond

// hedgeMultiple: a request this many times slower than the store's
// smoothed latency is a straggler.
const hedgeMultiple = 4

// BatchRead dispatches pageIDs and reassembles the responses. tc, when
// valid, propagates the caller's trace so per-slice server spans hang
// under the scan's fan-out tree.
func (f *FanOut) BatchRead(tc obs.TraceContext, pageIDs []uint64, lsn uint64, desc []byte) (*BatchResult, error) {
	type subBatch struct {
		sliceID uint32
		ids     []uint64
		pos     []int // positions in the original request
	}
	var order []uint32
	subs := make(map[uint32]*subBatch)
	for i, id := range pageIDs {
		sliceID := f.SliceOf(id)
		sb, ok := subs[sliceID]
		if !ok {
			sb = &subBatch{sliceID: sliceID}
			subs[sliceID] = sb
			order = append(order, sliceID)
		}
		sb.ids = append(sb.ids, id)
		sb.pos = append(sb.pos, i)
	}
	res := &BatchResult{Pages: make([][]byte, len(pageIDs)), SubBatches: len(order)}
	var wg sync.WaitGroup
	errs := make([]error, len(order))
	var mu sync.Mutex
	for oi, sliceID := range order {
		sb := subs[sliceID]
		nodes, err := f.NodesFor(sliceID, sb.ids)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(oi int, sb *subBatch, nodes []string) {
			defer wg.Done()
			br, err := f.callSub(tc, sb.sliceID, sb.ids, lsn, desc, nodes)
			if err != nil {
				errs[oi] = err
				return
			}
			if len(br.Pages) != len(sb.ids) {
				errs[oi] = fmt.Errorf("sal: sub-batch returned %d pages for %d ids", len(br.Pages), len(sb.ids))
				return
			}
			mu.Lock()
			for i, pos := range sb.pos {
				res.Pages[pos] = br.Pages[i]
			}
			res.Processed += int(br.Processed)
			res.Skipped += int(br.Skipped)
			mu.Unlock()
		}(oi, sb, nodes)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// callSub issues one per-slice sub-batch: primary request to the
// router's pick, straggler hedge to the next replica after the hedge
// delay, retry on the next untried replica when an attempt fails. The
// first successful response wins; late responses drain into the
// buffered channel and are dropped.
func (f *FanOut) callSub(tc obs.TraceContext, sliceID uint32, ids []uint64, lsn uint64, desc []byte, nodes []string) (*cluster.BatchReadResp, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sal: slice %d has no replicas", sliceID)
	}
	req := &cluster.BatchReadReq{
		Tenant: f.Tenant, SliceID: sliceID, LSN: lsn,
		PageIDs: ids, Desc: desc, Plugin: f.Plugin,
	}
	type subResult struct {
		resp *cluster.BatchReadResp
		err  error
		node string
	}
	ch := make(chan subResult, len(nodes))
	launch := func(node string) {
		go func() {
			done := f.Router.Begin(node)
			resp, err := cluster.CallTraced(f.Transport, tc, node, req)
			done(err)
			r := subResult{err: err, node: node}
			if err == nil {
				r.resp = resp.(*cluster.BatchReadResp)
			}
			ch <- r
		}()
	}
	tried := map[string]bool{}
	next := func() string {
		for _, n := range nodes {
			if !tried[n] {
				tried[n] = true
				return n
			}
		}
		return ""
	}
	primary := f.Router.Pick(nodes)
	tried[primary] = true
	launch(primary)
	inFlight := 1

	var hedgeC <-chan time.Time
	if len(nodes) > 1 && f.HedgeFloor >= 0 {
		delay := f.HedgeFloor
		if delay == 0 {
			delay = defaultHedgeFloor
		}
		if byEwma := hedgeMultiple * f.Router.EWMALatency(primary); byEwma > delay {
			delay = byEwma
		}
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			inFlight--
			if r.err == nil {
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if n := next(); n != "" {
				f.Router.noteRetry()
				f.Events.Record(obs.EventScanRetry,
					"slice %d: %s failed (%v), retrying on %s", sliceID, r.node, r.err, n)
				launch(n)
				inFlight++
			} else if inFlight == 0 {
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if n := next(); n != "" {
				f.Router.noteHedge()
				f.Events.Record(obs.EventScanRetry,
					"slice %d: %s straggling, hedging to %s", sliceID, primary, n)
				launch(n)
				inFlight++
			}
		}
	}
}
