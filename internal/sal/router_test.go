package sal

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/obs"
)

// TestRouterPicksLeastLoaded drives the score function: with one store
// carrying in-flight requests and a slow EWMA, picks go to the idle
// fast store.
func TestRouterPicksLeastLoaded(t *testing.T) {
	r := NewReadRouter()
	nodes := []string{"ps1", "ps2", "ps3"}
	// ps1 is busy and slow: two requests in flight, 10ms smoothed.
	done1 := r.Begin("ps1")
	done2 := r.Begin("ps1")
	slow := r.Begin("ps2")
	time.Sleep(2 * time.Millisecond)
	slow(nil) // gives ps2 a small but real EWMA
	_ = done1
	_ = done2
	// ps3 has no history (floored EWMA) and nothing in flight: with ps1
	// holding two in-flight requests, picks must avoid ps1.
	for i := 0; i < 8; i++ {
		if got := r.Pick(nodes); got == "ps1" {
			t.Fatalf("pick %d chose the loaded store ps1", i)
		}
	}
	// Round-robin mode ignores load: over 3 picks, every node shows up.
	r.SetLeastLoaded(false)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		seen[r.Pick(nodes)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin covered %d/3 nodes: %v", len(seen), seen)
	}
	st := r.Stats()
	if st.ScanRouted != 11 {
		t.Errorf("ScanRouted = %d, want 11", st.ScanRouted)
	}
	if st.LeastLoaded {
		t.Error("LeastLoaded still true after SetLeastLoaded(false)")
	}
}

// flakyTransport fails BatchRead calls addressed to broken nodes and
// answers from healthy ones, recording who was called.
type flakyTransport struct {
	mu     sync.Mutex
	broken map[string]bool
	calls  []string
}

func (f *flakyTransport) Call(node string, req any) (any, error) {
	f.mu.Lock()
	f.calls = append(f.calls, node)
	bad := f.broken[node]
	f.mu.Unlock()
	if bad {
		return nil, fmt.Errorf("transport: %s unreachable", node)
	}
	br := req.(*cluster.BatchReadReq)
	resp := &cluster.BatchReadResp{Pages: make([][]byte, len(br.PageIDs))}
	for i, id := range br.PageIDs {
		resp.Pages[i] = []byte{byte(id)}
	}
	return resp, nil
}

// TestFanOutRetriesOnFailure kills the routed-to replica and asserts
// the sub-batch lands on another replica, with the retry counted and a
// scan.retry event recorded.
func TestFanOutRetriesOnFailure(t *testing.T) {
	tr := &flakyTransport{broken: map[string]bool{"ps1": true}}
	router := NewReadRouter()
	events := obs.NewEventRing(16)
	f := &FanOut{
		Transport: tr, Tenant: 1, Plugin: "innodb",
		SliceOf:  func(pageID uint64) uint32 { return uint32(pageID / 4) },
		NodesFor: func(sliceID uint32, ids []uint64) ([]string, error) { return []string{"ps1", "ps2"}, nil },
		Router:   router, Events: events,
		HedgeFloor: -1, // isolate the failure-retry path
	}
	// Force the router to pick ps1 first: round-robin from a known
	// state is not guaranteed, so score ps2 as busy.
	router.SetLeastLoaded(true)
	undo := router.Begin("ps2")
	defer undo(nil)
	res, err := f.BatchRead(obs.TraceContext{}, []uint64{1, 2, 3}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) != 3 || res.SubBatches != 1 {
		t.Fatalf("pages=%d subBatches=%d", len(res.Pages), res.SubBatches)
	}
	for i, pg := range res.Pages {
		if len(pg) != 1 || pg[0] != byte(i+1) {
			t.Fatalf("page %d reassembled wrong: %v", i, pg)
		}
	}
	st := router.Stats()
	if st.ScanRetried != 1 || st.ScanHedged != 0 {
		t.Errorf("retried/hedged = %d/%d, want 1/0", st.ScanRetried, st.ScanHedged)
	}
	found := false
	for _, ev := range events.Events() {
		if ev.Kind == obs.EventScanRetry {
			found = true
		}
	}
	if !found {
		t.Error("no scan.retry event recorded")
	}
}

// TestFanOutAllReplicasDown: when every replica fails, the first error
// surfaces instead of hanging.
func TestFanOutAllReplicasDown(t *testing.T) {
	tr := &flakyTransport{broken: map[string]bool{"ps1": true, "ps2": true}}
	f := &FanOut{
		Transport: tr, Tenant: 1,
		SliceOf:    func(pageID uint64) uint32 { return 0 },
		NodesFor:   func(sliceID uint32, ids []uint64) ([]string, error) { return []string{"ps1", "ps2"}, nil },
		Router:     NewReadRouter(),
		HedgeFloor: -1,
	}
	_, err := f.BatchRead(obs.TraceContext{}, []uint64{1}, 0, nil)
	if err == nil {
		t.Fatal("BatchRead succeeded with every replica down")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("error lost the transport cause: %v", err)
	}
}

// TestFanOutSplitsPerSlice: page IDs interleaved across slices come
// back in request order with one sub-batch per slice.
func TestFanOutSplitsPerSlice(t *testing.T) {
	tr := &flakyTransport{}
	f := &FanOut{
		Transport: tr, Tenant: 1,
		SliceOf:    func(pageID uint64) uint32 { return uint32(pageID % 3) },
		NodesFor:   func(sliceID uint32, ids []uint64) ([]string, error) { return []string{"ps1"}, nil },
		Router:     NewReadRouter(),
		HedgeFloor: -1,
	}
	ids := []uint64{9, 4, 2, 6, 7, 5} // slices 0,1,2,0,1,2
	res, err := f.BatchRead(obs.TraceContext{}, ids, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SubBatches != 3 {
		t.Fatalf("SubBatches = %d, want 3", res.SubBatches)
	}
	for i, id := range ids {
		if res.Pages[i][0] != byte(id) {
			t.Fatalf("page %d = %v, want id %d (request order lost)", i, res.Pages[i], id)
		}
	}
}
