package sal

import (
	"fmt"
	"strings"
	"time"

	"taurus/internal/health"
)

// Durations after which a pipeline with in-flight windows and a frozen
// durable LSN is reported. Group-commit fsyncs complete in milliseconds,
// so multi-second silence under in-flight load is a wedged Log Store
// quorum, not burstiness.
const (
	stuckWarnAfter     = 5 * time.Second
	stuckCriticalAfter = 15 * time.Second
)

// Durations a saturated-and-stalled apply backlog must persist before
// the verdict escalates. Time-based, not probe-count-based: probe
// evaluation cadence is whatever pollers drive (/health, /ready, the
// heartbeat responder, the 1s loop), so counting evaluations would
// shrink the wall-clock window under heavy polling.
const (
	backlogWarnAfter     = 2 * time.Second
	backlogCriticalAfter = 4 * time.Second
)

// RegisterHealth installs the write pipeline's invariant probes on m.
//
//   - pipeline.progress (RB-PIPELINE-STUCK): while windows are in
//     flight the durable LSN must advance. Verdicts are time-based (no
//     progress for stuckWarnAfter / stuckCriticalAfter), so a single
//     slow fsync never trips it but a wedged Log Store quorum does.
//   - pipeline.poisoned (RB-PIPELINE-POISONED): a lane poisoned by a
//     sticky storage error is critical immediately — writes on it fail
//     until the storage fault is repaired.
//   - pipeline.apply_backlog (RB-APPLY-BACKLOG): per-lane apply backlog
//     vs the ApplyBacklogWindows bound. Sitting at the bound is
//     backpressure by design; the check fires only when a saturated
//     lane's slice apply frontier also stopped moving — durable windows
//     exist that no Page Store is absorbing.
func (s *SAL) RegisterHealth(m *health.Monitor) {
	var stuckSince time.Time
	var lastDurable uint64
	m.AddProbe(func() health.Check {
		st := s.Stats()
		const name, rb = "pipeline.progress", "RB-PIPELINE-STUCK"
		ev := map[string]string{
			"in_flight":   fmt.Sprintf("%d", st.InFlightWindows),
			"durable_lsn": fmt.Sprintf("%d", st.DurableLSN),
			"pending":     fmt.Sprintf("%d", st.PendingRecords),
		}
		stuck := st.InFlightWindows > 0 && st.DurableLSN == lastDurable
		lastDurable = st.DurableLSN
		if !stuck {
			stuckSince = time.Time{}
			return health.Checkf(name, rb, health.StatusOK, ev,
				"durable %d, %d window(s) in flight", st.DurableLSN, st.InFlightWindows)
		}
		if stuckSince.IsZero() {
			stuckSince = time.Now()
		}
		held := time.Since(stuckSince)
		ev["stuck_for"] = held.Round(time.Millisecond).String()
		switch {
		case held >= stuckCriticalAfter:
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"durable LSN frozen at %d for %s with %d window(s) in flight; Log Store quorum is not acking", st.DurableLSN, held.Round(time.Second), st.InFlightWindows)
		case held >= stuckWarnAfter:
			return health.Checkf(name, rb, health.StatusWarn, ev,
				"no durable progress for %s with windows in flight", held.Round(time.Second))
		}
		return health.Checkf(name, rb, health.StatusOK, ev,
			"durable %d, awaiting acks (%s)", st.DurableLSN, held.Round(time.Millisecond))
	})

	m.AddProbe(func() health.Check {
		st := s.Stats()
		const name, rb = "pipeline.poisoned", "RB-PIPELINE-POISONED"
		var poisoned []string
		for _, ln := range st.Lanes {
			if ln.Poisoned {
				poisoned = append(poisoned, fmt.Sprintf("%d", ln.Lane))
			}
		}
		ev := map[string]string{"lanes": fmt.Sprintf("%d", len(st.Lanes))}
		if len(poisoned) > 0 {
			ev["poisoned_lanes"] = strings.Join(poisoned, ",")
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"%d lane(s) poisoned by a sticky storage error: %s", len(poisoned), strings.Join(poisoned, ","))
		}
		return health.Checkf(name, rb, health.StatusOK, ev, "no poisoned lanes")
	})

	limit := int64(s.cfg.ApplyBacklogWindows)
	// lastApplied tracks each lane's minimum applied LSN so "saturated
	// and not draining" is distinguishable from plain backpressure.
	lastApplied := make(map[int]uint64)
	var satSince time.Time
	m.AddProbe(func() health.Check {
		st := s.Stats()
		const name, rb = "pipeline.apply_backlog", "RB-APPLY-BACKLOG"
		var maxBacklog int64
		saturatedStalled := false
		for _, ln := range st.Lanes {
			if ln.ApplyBacklog > maxBacklog {
				maxBacklog = ln.ApplyBacklog
			}
			var minApplied uint64
			for _, sl := range ln.Slices {
				if minApplied == 0 || sl.AppliedLSN < minApplied {
					minApplied = sl.AppliedLSN
				}
			}
			if ln.ApplyBacklog >= limit && minApplied == lastApplied[ln.Lane] {
				saturatedStalled = true
			}
			lastApplied[ln.Lane] = minApplied
		}
		ev := map[string]string{
			"max_backlog": fmt.Sprintf("%d", maxBacklog),
			"limit":       fmt.Sprintf("%d", limit),
		}
		if !saturatedStalled {
			satSince = time.Time{}
			return health.Checkf(name, rb, health.StatusOK, ev,
				"max backlog %d of %d", maxBacklog, limit)
		}
		if satSince.IsZero() {
			satSince = time.Now()
		}
		held := time.Since(satSince)
		ev["stalled_for"] = held.Round(time.Millisecond).String()
		switch {
		case held >= backlogCriticalAfter:
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"apply backlog pinned at the %d-window bound with a frozen apply frontier for %s; Page Stores are not absorbing", limit, held.Round(time.Second))
		case held >= backlogWarnAfter:
			return health.Checkf(name, rb, health.StatusWarn, ev,
				"apply backlog saturated and not draining for %s", held.Round(time.Second))
		}
		return health.Checkf(name, rb, health.StatusOK, ev,
			"max backlog %d of %d, frontier stalled %s", maxBacklog, limit, held.Round(time.Millisecond))
	})
}
