package wal

import (
	"encoding/binary"
	"fmt"
)

// CatalogKind enumerates durable catalog events.
type CatalogKind uint8

const (
	// CatalogCreateTable records a table definition (full schema plus
	// primary key ordinals) under its primary index id.
	CatalogCreateTable CatalogKind = iota + 1
	// CatalogCreateIndex records a secondary index: the indexed table
	// ordinals (primary key ordinals are appended by the engine).
	CatalogCreateIndex
	// CatalogBarrier is a recovery barrier: it declares that every
	// record with LSN in [IndexID, barrier's own LSN) belongs to a dead
	// write epoch and must be ignored by replay. Recovery logs one
	// after discarding a torn multi-lane tail — per-slice write lanes
	// interleave in LSN space, so a crash can leave a later lane's
	// window durable while an earlier lane's window was lost; none of
	// those records were ever acknowledged (the commit watermark cannot
	// pass a hole), but they remain in the logs and must not be
	// replayed once fresh records exist above them. The IndexID field
	// carries the void-from LSN.
	CatalogBarrier
)

// CatalogCol mirrors types.Column without importing it (wal sits below
// types in the dependency order).
type CatalogCol struct {
	Name     string
	Kind     uint8
	FixedLen uint32
	AvgLen   uint32
	NotNull  bool
}

// CatalogEntry is the payload of a TypeCatalog record. It carries
// everything the frontend needs to re-register a table or secondary
// index after a restart; current B+ tree roots are reconstructed from
// the FormatPage records in the same log.
type CatalogEntry struct {
	Kind    CatalogKind
	IndexID uint64
	// Table is the owning table name; Index names a secondary index.
	Table string
	Index string
	// Cols is the table schema (CatalogCreateTable only).
	Cols []CatalogCol
	// Ords are schema ordinals: the primary key columns for a table,
	// the indexed table columns for a secondary index.
	Ords []int
}

func appendCatString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// EncodeCatalog serializes the entry for a TypeCatalog record payload.
func (e *CatalogEntry) EncodeCatalog(dst []byte) []byte {
	dst = append(dst, byte(e.Kind))
	dst = binary.AppendUvarint(dst, e.IndexID)
	dst = appendCatString(dst, e.Table)
	dst = appendCatString(dst, e.Index)
	dst = binary.AppendUvarint(dst, uint64(len(e.Cols)))
	for _, c := range e.Cols {
		dst = appendCatString(dst, c.Name)
		dst = append(dst, c.Kind)
		dst = binary.AppendUvarint(dst, uint64(c.FixedLen))
		dst = binary.AppendUvarint(dst, uint64(c.AvgLen))
		if c.NotNull {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.Ords)))
	for _, o := range e.Ords {
		dst = binary.AppendUvarint(dst, uint64(o))
	}
	return dst
}

type catReader struct {
	buf []byte
	off int
}

func (r *catReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated catalog entry")
	}
	r.off += n
	return v, nil
}

func (r *catReader) str() (string, error) {
	l, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if r.off+int(l) > len(r.buf) {
		return "", fmt.Errorf("wal: truncated catalog string")
	}
	s := string(r.buf[r.off : r.off+int(l)])
	r.off += int(l)
	return s, nil
}

func (r *catReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("wal: truncated catalog entry")
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// DecodeCatalog parses a TypeCatalog record payload.
func DecodeCatalog(payload []byte) (*CatalogEntry, error) {
	r := &catReader{buf: payload}
	kind, err := r.byte()
	if err != nil {
		return nil, err
	}
	e := &CatalogEntry{Kind: CatalogKind(kind)}
	if e.Kind != CatalogCreateTable && e.Kind != CatalogCreateIndex && e.Kind != CatalogBarrier {
		return nil, fmt.Errorf("wal: unknown catalog kind %d", kind)
	}
	if e.IndexID, err = r.uvarint(); err != nil {
		return nil, err
	}
	if e.Table, err = r.str(); err != nil {
		return nil, err
	}
	if e.Index, err = r.str(); err != nil {
		return nil, err
	}
	ncols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ncols > 1<<16 {
		return nil, fmt.Errorf("wal: implausible catalog column count %d", ncols)
	}
	e.Cols = make([]CatalogCol, ncols)
	for i := range e.Cols {
		c := &e.Cols[i]
		if c.Name, err = r.str(); err != nil {
			return nil, err
		}
		if c.Kind, err = r.byte(); err != nil {
			return nil, err
		}
		fl, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		al, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		nn, err := r.byte()
		if err != nil {
			return nil, err
		}
		c.FixedLen, c.AvgLen, c.NotNull = uint32(fl), uint32(al), nn != 0
	}
	nords, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nords > 1<<16 {
		return nil, fmt.Errorf("wal: implausible catalog ordinal count %d", nords)
	}
	e.Ords = make([]int, nords)
	for i := range e.Ords {
		o, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		e.Ords[i] = int(o)
	}
	return e, nil
}
