// Package wal defines the redo log records that flow from the database
// master through the Storage Abstraction Layer to Log Stores (for
// durability) and Page Stores (to keep pages up to date), as described in
// the Taurus architecture overview (§II): "The master ... make[s]
// modifications to database pages persistent by synchronously writing log
// records ... A Page Store receives log records from multiple masters for
// the pages it hosts, and applies the log records to bring pages
// up-to-date."
//
// Records are physiological: they name a page and describe a deterministic
// mutation of it, so that every replica of a slice converges to an
// identical page image, byte for byte. This determinism is load-bearing —
// later log records reference record heap offsets produced by earlier
// ones.
package wal

import (
	"encoding/binary"
	"fmt"
)

// Type enumerates redo record types.
type Type uint8

const (
	// TypeFormatPage initializes a fresh page (B+ tree node).
	TypeFormatPage Type = iota + 1
	// TypeInsertRec inserts a record into a page after a given offset.
	TypeInsertRec
	// TypeDeleteMark sets or clears a record's delete mark.
	TypeDeleteMark
	// TypeSetTrxID rewrites a record's transaction id (used when an
	// update rewrites a row in place).
	TypeSetTrxID
	// TypeSetLinks updates a page's prev/next leaf links.
	TypeSetLinks
	// TypeCompact rebuilds a page dropping delete-marked records.
	TypeCompact
	// TypeUpdateRec replaces the record at Off with a new payload and
	// transaction id, keeping its position in the key-order chain. The
	// previous version is preserved in the frontend's undo log, not in
	// the redo stream.
	TypeUpdateRec
	// TypeCatalog carries a durable catalog event (CREATE TABLE /
	// CREATE INDEX) in Payload, so the frontend's data dictionary can be
	// rebuilt from the same log that rebuilds the pages. Catalog records
	// use PageID 0 (reserved), flow to Log Stores only, and are never
	// applied to pages.
	TypeCatalog
)

// Record is one redo log record. Field use depends on Type:
//
//	FormatPage: PageID, IndexID, Level
//	InsertRec:  PageID, Off (prev record offset), RecType, TrxID, Payload
//	DeleteMark: PageID, Off (record offset), Flag (1=mark, 0=clear)
//	SetTrxID:   PageID, Off, TrxID
//	SetLinks:   PageID, Prev, Next
//	Compact:    PageID
type Record struct {
	LSN     uint64
	Type    Type
	PageID  uint64
	IndexID uint64
	Level   uint16
	Off     uint32
	RecType uint8
	Flag    uint8
	TrxID   uint64
	Prev    uint64
	Next    uint64
	Payload []byte
}

// Encode appends the binary form of the record to dst.
func (r *Record) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.LSN)
	dst = append(dst, byte(r.Type))
	dst = binary.LittleEndian.AppendUint64(dst, r.PageID)
	switch r.Type {
	case TypeFormatPage:
		dst = binary.LittleEndian.AppendUint64(dst, r.IndexID)
		dst = binary.LittleEndian.AppendUint16(dst, r.Level)
	case TypeInsertRec:
		dst = binary.LittleEndian.AppendUint32(dst, r.Off)
		dst = append(dst, r.RecType)
		dst = binary.LittleEndian.AppendUint64(dst, r.TrxID)
		dst = binary.AppendUvarint(dst, uint64(len(r.Payload)))
		dst = append(dst, r.Payload...)
	case TypeDeleteMark:
		dst = binary.LittleEndian.AppendUint32(dst, r.Off)
		dst = append(dst, r.Flag)
	case TypeSetTrxID:
		dst = binary.LittleEndian.AppendUint32(dst, r.Off)
		dst = binary.LittleEndian.AppendUint64(dst, r.TrxID)
	case TypeSetLinks:
		dst = binary.LittleEndian.AppendUint64(dst, r.Prev)
		dst = binary.LittleEndian.AppendUint64(dst, r.Next)
	case TypeCompact:
		// No extra fields.
	case TypeUpdateRec:
		dst = binary.LittleEndian.AppendUint32(dst, r.Off)
		dst = binary.LittleEndian.AppendUint64(dst, r.TrxID)
		dst = binary.AppendUvarint(dst, uint64(len(r.Payload)))
		dst = append(dst, r.Payload...)
	case TypeCatalog:
		dst = binary.AppendUvarint(dst, uint64(len(r.Payload)))
		dst = append(dst, r.Payload...)
	}
	return dst
}

// Decode parses one record from buf, returning it and the bytes consumed.
func Decode(buf []byte) (Record, int, error) {
	var r Record
	if len(buf) < 17 {
		return r, 0, fmt.Errorf("wal: truncated header")
	}
	r.LSN = binary.LittleEndian.Uint64(buf)
	r.Type = Type(buf[8])
	r.PageID = binary.LittleEndian.Uint64(buf[9:])
	off := 17
	need := func(n int) error {
		if len(buf) < off+n {
			return fmt.Errorf("wal: truncated record body (type %d)", r.Type)
		}
		return nil
	}
	switch r.Type {
	case TypeFormatPage:
		if err := need(10); err != nil {
			return r, 0, err
		}
		r.IndexID = binary.LittleEndian.Uint64(buf[off:])
		r.Level = binary.LittleEndian.Uint16(buf[off+8:])
		off += 10
	case TypeInsertRec:
		if err := need(13); err != nil {
			return r, 0, err
		}
		r.Off = binary.LittleEndian.Uint32(buf[off:])
		r.RecType = buf[off+4]
		r.TrxID = binary.LittleEndian.Uint64(buf[off+5:])
		off += 13
		l, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return r, 0, fmt.Errorf("wal: truncated payload length")
		}
		off += n
		if err := need(int(l)); err != nil {
			return r, 0, err
		}
		r.Payload = append([]byte(nil), buf[off:off+int(l)]...)
		off += int(l)
	case TypeDeleteMark:
		if err := need(5); err != nil {
			return r, 0, err
		}
		r.Off = binary.LittleEndian.Uint32(buf[off:])
		r.Flag = buf[off+4]
		off += 5
	case TypeSetTrxID:
		if err := need(12); err != nil {
			return r, 0, err
		}
		r.Off = binary.LittleEndian.Uint32(buf[off:])
		r.TrxID = binary.LittleEndian.Uint64(buf[off+4:])
		off += 12
	case TypeSetLinks:
		if err := need(16); err != nil {
			return r, 0, err
		}
		r.Prev = binary.LittleEndian.Uint64(buf[off:])
		r.Next = binary.LittleEndian.Uint64(buf[off+8:])
		off += 16
	case TypeCompact:
	case TypeUpdateRec:
		if err := need(12); err != nil {
			return r, 0, err
		}
		r.Off = binary.LittleEndian.Uint32(buf[off:])
		r.TrxID = binary.LittleEndian.Uint64(buf[off+4:])
		off += 12
		l, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return r, 0, fmt.Errorf("wal: truncated payload length")
		}
		off += n
		if err := need(int(l)); err != nil {
			return r, 0, err
		}
		r.Payload = append([]byte(nil), buf[off:off+int(l)]...)
		off += int(l)
	case TypeCatalog:
		l, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return r, 0, fmt.Errorf("wal: truncated payload length")
		}
		off += n
		if err := need(int(l)); err != nil {
			return r, 0, err
		}
		r.Payload = append([]byte(nil), buf[off:off+int(l)]...)
		off += int(l)
	default:
		return r, 0, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	return r, off, nil
}

// DecodeAll parses a buffer of concatenated records.
func DecodeAll(buf []byte) ([]Record, error) {
	var out []Record
	for len(buf) > 0 {
		r, n, err := Decode(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		buf = buf[n:]
	}
	return out, nil
}
