package wal

import (
	"fmt"

	"taurus/internal/page"
)

// OffAppend is the sentinel Off value in InsertRec records meaning
// "append at the tail of the record chain". Splits and bulk loads use it
// so that replicas need not agree on heap offsets ahead of time — the
// resulting offsets are still identical because application is
// deterministic.
const OffAppend = ^uint32(0)

// Apply mutates pg according to rec and stamps the record's LSN onto the
// page. Every replica of a slice — and the compute node's buffer-pool
// copy — applies the same records through this single function, which is
// what makes Taurus's "log is the database" replication converge to
// byte-identical page images.
//
// TypeFormatPage is handled by the caller (it creates a page rather than
// mutating one); passing it here is an error.
func Apply(pg *page.Page, rec *Record) error {
	if pg.ID() != rec.PageID {
		return fmt.Errorf("wal: record for page %d applied to page %d", rec.PageID, pg.ID())
	}
	switch rec.Type {
	case TypeInsertRec:
		var err error
		if rec.Off == OffAppend {
			_, err = pg.Append(rec.RecType, rec.TrxID, rec.Payload)
		} else {
			_, err = pg.InsertAfter(int(rec.Off), rec.RecType, rec.TrxID, rec.Payload)
		}
		if err != nil {
			return err
		}
	case TypeDeleteMark:
		pg.SetDeleteMark(int(rec.Off), rec.Flag != 0)
	case TypeSetTrxID:
		pg.SetTrxID(int(rec.Off), rec.TrxID)
	case TypeSetLinks:
		pg.SetPrevPage(rec.Prev)
		pg.SetNextPage(rec.Next)
	case TypeCompact:
		pg.Compact()
	case TypeUpdateRec:
		// Locate the predecessor of the target record, unlink it, and
		// insert the new version in the same chain position. The scan
		// is deterministic, so replicas produce identical layouts.
		prev, found := 0, false
		for off := pg.FirstRecord(); off != 0; {
			r := pg.RecordAt(off)
			if off == int(rec.Off) {
				found = true
				break
			}
			prev = off
			off = r.Next()
		}
		if !found {
			return fmt.Errorf("wal: update target offset %d not found in page %d", rec.Off, rec.PageID)
		}
		old := pg.RecordAt(int(rec.Off))
		pg.Unlink(prev)
		if _, err := pg.InsertAfter(prev, old.Type, rec.TrxID, rec.Payload); err != nil {
			return err
		}
	case TypeFormatPage:
		return fmt.Errorf("wal: FormatPage must be handled by the page provider")
	case TypeCatalog:
		return fmt.Errorf("wal: catalog records are frontend-only and never touch pages")
	default:
		return fmt.Errorf("wal: unknown record type %d", rec.Type)
	}
	pg.SetLSN(rec.LSN)
	return nil
}
