package wal

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{LSN: 1, Type: TypeFormatPage, PageID: 10, IndexID: 3, Level: 2},
		{LSN: 2, Type: TypeInsertRec, PageID: 10, Off: 56, RecType: 0, TrxID: 99, Payload: []byte("hello")},
		{LSN: 3, Type: TypeInsertRec, PageID: 10, Off: 0, RecType: 1, TrxID: 0, Payload: nil},
		{LSN: 4, Type: TypeDeleteMark, PageID: 10, Off: 80, Flag: 1},
		{LSN: 5, Type: TypeSetTrxID, PageID: 10, Off: 80, TrxID: 123456},
		{LSN: 6, Type: TypeSetLinks, PageID: 10, Prev: 9, Next: 11},
		{LSN: 7, Type: TypeCompact, PageID: 10},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range sampleRecords() {
		buf := r.Encode(nil)
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		if n != len(buf) {
			t.Errorf("consumed %d of %d", n, len(buf))
		}
		if r.Payload == nil {
			r.Payload = got.Payload // nil vs empty tolerated
			if len(got.Payload) != 0 {
				t.Errorf("payload should be empty")
			}
		}
		if !reflect.DeepEqual(r, got) {
			t.Errorf("round trip: got %+v want %+v", got, r)
		}
	}
}

func TestDecodeAll(t *testing.T) {
	var buf []byte
	recs := sampleRecords()
	for i := range recs {
		buf = recs[i].Encode(buf)
	}
	got, err := DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d of %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].LSN != recs[i].LSN || got[i].Type != recs[i].Type {
			t.Errorf("record %d: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	r := Record{LSN: 2, Type: TypeInsertRec, PageID: 10, TrxID: 5, Payload: []byte("abcdef")}
	buf := r.Encode(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d should fail", cut)
		}
	}
	bad := append([]byte(nil), buf...)
	bad[8] = 200 // unknown type
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("unknown type should fail")
	}
	if _, err := DecodeAll(bad); err == nil {
		t.Fatal("DecodeAll should propagate errors")
	}
}

// Property: random records round-trip through the codec.
func TestRecordRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Record{
			LSN:    rng.Uint64(),
			Type:   Type(1 + rng.Intn(7)),
			PageID: rng.Uint64(),
		}
		switch r.Type {
		case TypeFormatPage:
			r.IndexID, r.Level = rng.Uint64(), uint16(rng.Intn(8))
		case TypeInsertRec:
			r.Off = rng.Uint32()
			r.RecType = uint8(rng.Intn(6))
			r.TrxID = rng.Uint64()
			r.Payload = make([]byte, rng.Intn(300))
			rng.Read(r.Payload)
		case TypeDeleteMark:
			r.Off, r.Flag = rng.Uint32(), uint8(rng.Intn(2))
		case TypeSetTrxID:
			r.Off, r.TrxID = rng.Uint32(), rng.Uint64()
		case TypeSetLinks:
			r.Prev, r.Next = rng.Uint64(), rng.Uint64()
		case TypeUpdateRec:
			r.Off = rng.Uint32()
			r.TrxID = rng.Uint64()
			r.Payload = make([]byte, rng.Intn(100))
			rng.Read(r.Payload)
		}
		buf := r.Encode(nil)
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if len(r.Payload) == 0 && len(got.Payload) == 0 {
			got.Payload, r.Payload = nil, nil
		}
		return reflect.DeepEqual(r, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
