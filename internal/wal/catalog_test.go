package wal

import (
	"reflect"
	"testing"
)

func TestCatalogRoundtrip(t *testing.T) {
	for _, e := range []*CatalogEntry{
		{
			Kind: CatalogCreateTable, IndexID: 7, Table: "worker",
			Cols: []CatalogCol{
				{Name: "id", Kind: 1, NotNull: true},
				{Name: "name", Kind: 5, AvgLen: 12},
				{Name: "code", Kind: 5, FixedLen: 3},
			},
			Ords: []int{0},
		},
		{Kind: CatalogCreateIndex, IndexID: 9, Table: "worker", Index: "worker_age", Ords: []int{1, 2}},
		{Kind: CatalogCreateTable, IndexID: 1, Table: "t"},
	} {
		got, err := DecodeCatalog(e.EncodeCatalog(nil))
		if err != nil {
			t.Fatalf("%+v: %v", e, err)
		}
		// Normalize nil vs empty slices for comparison.
		if len(got.Cols) == 0 {
			got.Cols = nil
		}
		if len(got.Ords) == 0 {
			got.Ords = nil
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, e)
		}
	}
}

func TestCatalogDecodeErrors(t *testing.T) {
	if _, err := DecodeCatalog(nil); err == nil {
		t.Fatal("empty payload must fail")
	}
	if _, err := DecodeCatalog([]byte{99}); err == nil {
		t.Fatal("unknown kind must fail")
	}
	e := &CatalogEntry{Kind: CatalogCreateTable, IndexID: 3, Table: "t",
		Cols: []CatalogCol{{Name: "c", Kind: 1}}}
	enc := e.EncodeCatalog(nil)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeCatalog(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
}

func TestCatalogRecordEncodeDecode(t *testing.T) {
	entry := &CatalogEntry{Kind: CatalogCreateTable, IndexID: 4, Table: "x", Ords: []int{0}}
	rec := Record{LSN: 42, Type: TypeCatalog, PageID: 0, Payload: entry.EncodeCatalog(nil)}
	buf := rec.Encode(nil)
	got, n, err := Decode(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if got.LSN != 42 || got.Type != TypeCatalog {
		t.Fatalf("got %+v", got)
	}
	e2, err := DecodeCatalog(got.Payload)
	if err != nil || e2.Table != "x" || e2.IndexID != 4 {
		t.Fatalf("catalog payload: %+v err=%v", e2, err)
	}
}
