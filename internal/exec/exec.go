// Package exec implements the Volcano-style query executor that sits
// above the storage engine, mirroring the MySQL execution layer the
// paper keeps unchanged: "iterators are initiated top-down in a tree,
// and data and result rows percolate bottom-up" (§III). Operators are
// unaware of NDP except through the scan operators, exactly as the
// paper's design demands ("the MySQL query execution layers above the
// storage engine are unaware of NDP processing").
package exec

import (
	"sync/atomic"

	"taurus/internal/engine"
	"taurus/internal/obs"
	"taurus/internal/txn"
	"taurus/internal/types"
)

// Ctx carries per-query execution state.
type Ctx struct {
	Eng  *engine.Engine
	View *txn.ReadView
	// Stats ledgers SQL-node executor work for the CPU-time figures.
	Stats ExecStats
	// Trace, when valid, is the statement's sampled trace context;
	// scan operators hang their fan-out spans under it.
	Trace obs.TraceContext
}

// NewCtx builds a context with a fresh read view.
func NewCtx(eng *engine.Engine) *Ctx {
	return &Ctx{Eng: eng, View: eng.Txm().View(nil)}
}

// ExecStats counts executor work on the SQL node.
type ExecStats struct {
	// OperatorRows counts rows passing through operators (every
	// operator boundary crossing is one unit of interpreter work).
	OperatorRows atomic.Uint64
	// ExprEvals counts expression evaluations in executor operators.
	ExprEvals atomic.Uint64
	// HashOps counts hash table inserts and probes.
	HashOps atomic.Uint64
	// SortRows counts rows passing through sort operators.
	SortRows atomic.Uint64
}

// Snapshot copies the counters.
func (s *ExecStats) Snapshot() ExecStatsSnapshot {
	return ExecStatsSnapshot{
		OperatorRows: s.OperatorRows.Load(),
		ExprEvals:    s.ExprEvals.Load(),
		HashOps:      s.HashOps.Load(),
		SortRows:     s.SortRows.Load(),
	}
}

// ExecStatsSnapshot is a plain copy.
type ExecStatsSnapshot struct {
	OperatorRows uint64
	ExprEvals    uint64
	HashOps      uint64
	SortRows     uint64
}

// Sub returns s - o.
func (s ExecStatsSnapshot) Sub(o ExecStatsSnapshot) ExecStatsSnapshot {
	return ExecStatsSnapshot{
		OperatorRows: s.OperatorRows - o.OperatorRows,
		ExprEvals:    s.ExprEvals - o.ExprEvals,
		HashOps:      s.HashOps - o.HashOps,
		SortRows:     s.SortRows - o.SortRows,
	}
}

// Operator is a Volcano iterator. Open prepares; Next returns the next
// row or nil at end-of-stream; Close releases resources. Returned rows
// may alias operator-internal buffers and are valid until the next Next
// call; Clone to retain.
type Operator interface {
	Open(ctx *Ctx) error
	Next() (types.Row, error)
	Close() error
	// Columns names the output columns (for EXPLAIN and result sets).
	Columns() []string
}

// Run drains an operator tree and returns all rows (cloned).
func Run(ctx *Ctx, op Operator) ([]types.Row, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []types.Row
	for {
		row, err := op.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row.Clone())
	}
}
