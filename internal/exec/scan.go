package exec

import (
	"fmt"

	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/types"
)

// scanBatchSize is the row-batch granularity between the engine's push
// cursor and the executor's pull iterator.
const scanBatchSize = 256

// TableScan adapts an engine index scan (regular or NDP) to the Operator
// interface. The engine cursor pushes rows; a bounded channel of row
// batches turns that into pull.
type TableScan struct {
	// Opts parameterize the engine scan. View is filled from the Ctx at
	// Open if unset.
	Opts engine.ScanOptions
	// Cols are the output column names (projected layout).
	Cols []string

	ctx     *Ctx
	batches chan []types.Row
	errCh   chan error
	stop    chan struct{}
	cur     []types.Row
	curIdx  int
	done    bool
}

// Columns implements Operator.
func (s *TableScan) Columns() []string { return s.Cols }

// Open starts the background cursor.
func (s *TableScan) Open(ctx *Ctx) error {
	s.ctx = ctx
	if s.Opts.View == nil {
		s.Opts.View = ctx.View
	}
	if s.Opts.NDP != nil && len(s.Opts.NDP.Aggs) > 0 {
		return fmt.Errorf("exec: TableScan cannot consume aggregate pushdown; use NDPAggScan")
	}
	s.batches = make(chan []types.Row, 4)
	s.errCh = make(chan error, 1)
	s.stop = make(chan struct{})
	go func() {
		defer close(s.batches)
		batch := make([]types.Row, 0, scanBatchSize)
		err := ctx.Eng.Scan(s.Opts, func(row types.Row, _ []core.AggState) error {
			batch = append(batch, row.Clone())
			if len(batch) == scanBatchSize {
				select {
				case s.batches <- batch:
					batch = make([]types.Row, 0, scanBatchSize)
					return nil
				case <-s.stop:
					return engine.ErrStopScan
				}
			}
			return nil
		})
		if err == nil && len(batch) > 0 {
			select {
			case s.batches <- batch:
			case <-s.stop:
			}
		}
		if err != nil {
			s.errCh <- err
		}
	}()
	return nil
}

// Next implements Operator.
func (s *TableScan) Next() (types.Row, error) {
	for {
		if s.curIdx < len(s.cur) {
			row := s.cur[s.curIdx]
			s.curIdx++
			s.ctx.Stats.OperatorRows.Add(1)
			return row, nil
		}
		if s.done {
			return nil, nil
		}
		batch, ok := <-s.batches
		if !ok {
			s.done = true
			select {
			case err := <-s.errCh:
				return nil, err
			default:
				return nil, nil
			}
		}
		s.cur, s.curIdx = batch, 0
	}
}

// Close stops the background cursor.
func (s *TableScan) Close() error {
	if s.stop != nil {
		close(s.stop)
		s.stop = nil
		// Drain so the goroutine can exit.
		for range s.batches {
		}
	}
	return nil
}
