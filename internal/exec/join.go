package exec

import (
	"taurus/internal/expr"
	"taurus/internal/types"
)

// JoinKind selects the join semantics.
type JoinKind uint8

const (
	// JoinInner emits matched pairs.
	JoinInner JoinKind = iota
	// JoinLeftOuter emits unmatched probe rows padded with NULLs.
	JoinLeftOuter
	// JoinSemi emits each probe row once if any build row matches.
	JoinSemi
	// JoinAnti emits each probe row once if NO build row matches.
	JoinAnti
)

// HashJoin builds a hash table over Build keyed by BuildKeys and probes
// with Probe rows keyed by ProbeKeys. ExtraCond optionally filters
// matched pairs; its ordinals address the concatenated (probe ++ build)
// row — this is how inequality conditions on otherwise-equi joins (TPC-H
// Q21's l2.suppkey <> l1.suppkey) are expressed.
//
// MySQL's hash join lacks Bloom-filter pushdown ("which would have
// allowed even further data reduction on the probe side", §VII-C), and
// so does this one — the limitation is part of what Fig. 7 measures.
type HashJoin struct {
	Kind      JoinKind
	Build     Operator
	Probe     Operator
	BuildKeys []int
	ProbeKeys []int
	ExtraCond *expr.Expr

	ctx      *Ctx
	table    map[string][]types.Row
	out      types.Row
	pending  []types.Row // matched build rows for the current probe row
	pendIdx  int
	curProbe types.Row
	buildW   int
}

// Columns implements Operator: probe columns then build columns (semi
// and anti joins emit probe columns only).
func (j *HashJoin) Columns() []string {
	if j.Kind == JoinSemi || j.Kind == JoinAnti {
		return j.Probe.Columns()
	}
	return append(append([]string{}, j.Probe.Columns()...), j.Build.Columns()...)
}

// Open materializes the build side.
func (j *HashJoin) Open(ctx *Ctx) error {
	j.ctx = ctx
	j.table = make(map[string][]types.Row)
	j.pending, j.pendIdx, j.curProbe = nil, 0, nil
	if err := j.Build.Open(ctx); err != nil {
		return err
	}
	j.buildW = len(j.Build.Columns())
	var keyBuf []byte
	for {
		row, err := j.Build.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keyBuf = joinKey(keyBuf[:0], row, j.BuildKeys)
		if keyBuf == nil {
			continue // NULL keys never match
		}
		ctx.Stats.HashOps.Add(1)
		j.table[string(keyBuf)] = append(j.table[string(keyBuf)], row.Clone())
	}
	if err := j.Build.Close(); err != nil {
		return err
	}
	return j.Probe.Open(ctx)
}

// joinKey encodes the key columns; returns nil if any is NULL.
func joinKey(dst []byte, row types.Row, cols []int) []byte {
	for _, c := range cols {
		if row[c].IsNull() {
			return nil
		}
		dst = types.EncodeKey(dst, types.Row{row[c]})
	}
	return dst
}

// Next implements Operator.
func (j *HashJoin) Next() (types.Row, error) {
	for {
		// Emit pending matches for the current probe row (ExtraCond
		// was already applied while collecting them).
		if j.pendIdx < len(j.pending) {
			build := j.pending[j.pendIdx]
			j.pendIdx++
			j.ctx.Stats.OperatorRows.Add(1)
			return j.combined(j.curProbe, build), nil
		}
		probe, err := j.Probe.Next()
		if err != nil || probe == nil {
			return nil, err
		}
		key := joinKey(nil, probe, j.ProbeKeys)
		var matches []types.Row
		if key != nil {
			j.ctx.Stats.HashOps.Add(1)
			matches = j.table[string(key)]
		}
		switch j.Kind {
		case JoinInner, JoinLeftOuter:
			j.pending, j.pendIdx = j.pending[:0], 0
			j.curProbe = probe.Clone()
			for _, b := range matches {
				if j.ExtraCond != nil {
					j.ctx.Stats.ExprEvals.Add(1)
					if !j.ExtraCond.EvalBool(j.combined(j.curProbe, b)) {
						continue
					}
				}
				j.pending = append(j.pending, b)
			}
			if len(j.pending) == 0 && j.Kind == JoinLeftOuter {
				j.ctx.Stats.OperatorRows.Add(1)
				return j.combined(j.curProbe, make(types.Row, j.buildW)), nil
			}
		case JoinSemi:
			if j.anyMatch(probe, matches) {
				j.ctx.Stats.OperatorRows.Add(1)
				return probe, nil
			}
		case JoinAnti:
			if !j.anyMatch(probe, matches) {
				j.ctx.Stats.OperatorRows.Add(1)
				return probe, nil
			}
		}
	}
}

// anyMatch applies ExtraCond over candidate matches for semi/anti joins.
func (j *HashJoin) anyMatch(probe types.Row, matches []types.Row) bool {
	if j.ExtraCond == nil {
		return len(matches) > 0
	}
	for _, b := range matches {
		j.ctx.Stats.ExprEvals.Add(1)
		if j.ExtraCond.EvalBool(j.combined(probe, b)) {
			return true
		}
	}
	return false
}

func (j *HashJoin) combined(probe, build types.Row) types.Row {
	if cap(j.out) < len(probe)+len(build) {
		j.out = make(types.Row, 0, len(probe)+len(build))
	}
	j.out = j.out[:0]
	j.out = append(j.out, probe...)
	j.out = append(j.out, build...)
	return j.out
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.table = nil
	return j.Probe.Close()
}

// IndexLookupJoin is the nested-loop join with an index on the inner
// table: for each outer row it runs an index range lookup. This is the
// plan shape behind the paper's Q4/Q19 analysis, where "NDP is not
// considered for table access methods that access only a few rows — for
// example, a point lookup" (§IV-B), and where regular lookups warm the
// buffer pool (the Q4 effect).
type IndexLookupJoin struct {
	Outer Operator
	// Lookup builds the inner scan row set for one outer row. Rows
	// returned are combined as (outer ++ inner).
	Lookup func(ctx *Ctx, outer types.Row) ([]types.Row, error)
	// InnerCols names the inner columns.
	InnerCols []string
	// On optionally filters combined rows.
	On *expr.Expr
	// Semi/Anti switch semantics (emit outer row only).
	Kind JoinKind

	ctx      *Ctx
	curOuter types.Row
	matches  []types.Row
	matchIdx int
	out      types.Row
}

// Columns implements Operator.
func (j *IndexLookupJoin) Columns() []string {
	if j.Kind == JoinSemi || j.Kind == JoinAnti {
		return j.Outer.Columns()
	}
	return append(append([]string{}, j.Outer.Columns()...), j.InnerCols...)
}

func (j *IndexLookupJoin) Open(ctx *Ctx) error {
	j.ctx = ctx
	j.curOuter, j.matches, j.matchIdx = nil, nil, 0
	return j.Outer.Open(ctx)
}

func (j *IndexLookupJoin) Next() (types.Row, error) {
	for {
		for j.matchIdx < len(j.matches) {
			inner := j.matches[j.matchIdx]
			j.matchIdx++
			out := j.combine(j.curOuter, inner)
			if j.On != nil {
				j.ctx.Stats.ExprEvals.Add(1)
				if !j.On.EvalBool(out) {
					continue
				}
			}
			j.ctx.Stats.OperatorRows.Add(1)
			return out, nil
		}
		outer, err := j.Outer.Next()
		if err != nil || outer == nil {
			return nil, err
		}
		matches, err := j.Lookup(j.ctx, outer)
		if err != nil {
			return nil, err
		}
		switch j.Kind {
		case JoinSemi, JoinAnti:
			matched := false
			for _, inner := range matches {
				if j.On == nil {
					matched = true
					break
				}
				j.ctx.Stats.ExprEvals.Add(1)
				if j.On.EvalBool(j.combine(outer, inner)) {
					matched = true
					break
				}
			}
			if (matched && j.Kind == JoinSemi) || (!matched && j.Kind == JoinAnti) {
				j.ctx.Stats.OperatorRows.Add(1)
				return outer, nil
			}
		default:
			j.curOuter = outer.Clone()
			j.matches, j.matchIdx = matches, 0
		}
	}
}

func (j *IndexLookupJoin) combine(outer, inner types.Row) types.Row {
	if cap(j.out) < len(outer)+len(inner) {
		j.out = make(types.Row, 0, len(outer)+len(inner))
	}
	j.out = j.out[:0]
	j.out = append(j.out, outer...)
	j.out = append(j.out, inner...)
	return j.out
}

func (j *IndexLookupJoin) Close() error { return j.Outer.Close() }
