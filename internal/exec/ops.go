package exec

import (
	"sort"

	"taurus/internal/expr"
	"taurus/internal/types"
)

// Filter passes rows satisfying Pred (the residual predicates the
// optimizer did not push down).
type Filter struct {
	Input Operator
	Pred  *expr.Expr

	ctx *Ctx
}

func (f *Filter) Columns() []string { return f.Input.Columns() }

func (f *Filter) Open(ctx *Ctx) error {
	f.ctx = ctx
	return f.Input.Open(ctx)
}

func (f *Filter) Next() (types.Row, error) {
	for {
		row, err := f.Input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		f.ctx.Stats.ExprEvals.Add(1)
		if f.Pred.EvalBool(row) {
			f.ctx.Stats.OperatorRows.Add(1)
			return row, nil
		}
	}
}

func (f *Filter) Close() error { return f.Input.Close() }

// Project computes output expressions over input rows.
type Project struct {
	Input Operator
	Exprs []*expr.Expr
	Names []string

	ctx *Ctx
	out types.Row
}

func (p *Project) Columns() []string { return p.Names }

func (p *Project) Open(ctx *Ctx) error {
	p.ctx = ctx
	p.out = make(types.Row, len(p.Exprs))
	return p.Input.Open(ctx)
}

func (p *Project) Next() (types.Row, error) {
	row, err := p.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	for i, e := range p.Exprs {
		p.ctx.Stats.ExprEvals.Add(1)
		p.out[i] = e.Eval(row)
	}
	p.ctx.Stats.OperatorRows.Add(1)
	return p.out, nil
}

func (p *Project) Close() error { return p.Input.Close() }

// Limit stops after N rows (with optional offset).
type Limit struct {
	Input  Operator
	Offset int
	N      int

	seen    int
	skipped int
}

func (l *Limit) Columns() []string { return l.Input.Columns() }

func (l *Limit) Open(ctx *Ctx) error {
	l.seen, l.skipped = 0, 0
	return l.Input.Open(ctx)
}

func (l *Limit) Next() (types.Row, error) {
	for l.skipped < l.Offset {
		row, err := l.Input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		l.skipped++
	}
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

func (l *Limit) Close() error { return l.Input.Close() }

// OrderKey is one sort key.
type OrderKey struct {
	Expr *expr.Expr
	Desc bool
}

// Sort materializes and sorts its input.
type Sort struct {
	Input Operator
	Keys  []OrderKey

	rows []types.Row
	pos  int
}

func (s *Sort) Columns() []string { return s.Input.Columns() }

func (s *Sort) Open(ctx *Ctx) error {
	if err := s.Input.Open(ctx); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	s.pos = 0
	for {
		row, err := s.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		ctx.Stats.SortRows.Add(1)
		s.rows = append(s.rows, row.Clone())
	}
	keys := make([][]types.Datum, len(s.rows))
	for i, r := range s.rows {
		ks := make([]types.Datum, len(s.Keys))
		for j, k := range s.Keys {
			ks[j] = k.Expr.Eval(r)
		}
		keys[i] = ks
	}
	idx := make([]int, len(s.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for j, k := range s.Keys {
			c := types.Compare(keys[idx[a]][j], keys[idx[b]][j])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([]types.Row, len(s.rows))
	for i, j := range idx {
		sorted[i] = s.rows[j]
	}
	s.rows = sorted
	return nil
}

func (s *Sort) Next() (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

func (s *Sort) Close() error {
	s.rows = nil
	return s.Input.Close()
}

// Values replays a fixed row set (tests, constant inputs).
type Values struct {
	Rows  []types.Row
	Names []string
	pos   int
}

func (v *Values) Columns() []string { return v.Names }
func (v *Values) Open(*Ctx) error   { v.pos = 0; return nil }
func (v *Values) Close() error      { return nil }
func (v *Values) Next() (types.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	r := v.Rows[v.pos]
	v.pos++
	return r, nil
}
