package exec

import (
	"taurus/internal/expr"
	"taurus/internal/types"
)

// AggFnKind enumerates executor-level aggregate functions.
type AggFnKind uint8

const (
	AggFnCountStar AggFnKind = iota
	AggFnCount
	AggFnSum
	AggFnAvg
	AggFnMin
	AggFnMax
)

// AggDef is one aggregate expression in a HashAgg.
type AggDef struct {
	Fn AggFnKind
	// Arg is the argument expression (nil for COUNT(*)).
	Arg *expr.Expr
	// Distinct makes COUNT/SUM consider distinct argument values only
	// (TPC-H Q16's count(distinct ps_suppkey)).
	Distinct bool
	Name     string
}

// aggCell is the running state for one AggDef within one group.
type aggCell struct {
	count    int64
	sum      types.Datum
	hasSum   bool
	minmax   types.Datum
	hasMM    bool
	distinct map[string]bool
}

// HashAgg is the general aggregation operator used when aggregation is
// not (or cannot be) pushed down: arbitrary grouping over any input.
type HashAgg struct {
	Input Operator
	// GroupBy are grouping expressions.
	GroupBy []*expr.Expr
	// GroupNames name the group columns in the output.
	GroupNames []string
	Aggs       []AggDef
	// Having filters output rows (ordinals into output layout).
	Having *expr.Expr

	results []types.Row
	pos     int
}

// Columns implements Operator.
func (h *HashAgg) Columns() []string {
	out := append([]string{}, h.GroupNames...)
	for _, a := range h.Aggs {
		out = append(out, a.Name)
	}
	return out
}

// Open drains the input and computes all groups.
func (h *HashAgg) Open(ctx *Ctx) error {
	if err := h.Input.Open(ctx); err != nil {
		return err
	}
	h.results, h.pos = nil, 0
	type group struct {
		key   types.Row
		cells []aggCell
	}
	groups := make(map[string]*group)
	var order []string
	var keyBuf []byte
	for {
		row, err := h.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		ctx.Stats.OperatorRows.Add(1)
		keyVals := make(types.Row, len(h.GroupBy))
		for i, g := range h.GroupBy {
			ctx.Stats.ExprEvals.Add(1)
			keyVals[i] = g.Eval(row)
		}
		keyBuf = keyBuf[:0]
		for _, v := range keyVals {
			keyBuf = types.EncodeKey(keyBuf, types.Row{v})
		}
		ctx.Stats.HashOps.Add(1)
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &group{key: keyVals, cells: make([]aggCell, len(h.Aggs))}
			groups[string(keyBuf)] = g
			order = append(order, string(keyBuf))
		}
		for i := range h.Aggs {
			h.accumulate(ctx, &g.cells[i], &h.Aggs[i], row)
		}
	}
	// Scalar aggregation over empty input still yields one row.
	if len(h.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{cells: make([]aggCell, len(h.Aggs))}
		order = append(order, "")
	}
	for _, k := range order {
		g := groups[k]
		out := make(types.Row, 0, len(g.key)+len(h.Aggs))
		out = append(out, g.key...)
		for i := range h.Aggs {
			out = append(out, finalizeCell(&g.cells[i], &h.Aggs[i]))
		}
		if h.Having == nil || h.Having.EvalBool(out) {
			h.results = append(h.results, out)
		}
	}
	return nil
}

func (h *HashAgg) accumulate(ctx *Ctx, c *aggCell, def *AggDef, row types.Row) {
	if def.Fn == AggFnCountStar {
		c.count++
		return
	}
	ctx.Stats.ExprEvals.Add(1)
	v := def.Arg.Eval(row)
	if v.IsNull() {
		return
	}
	if def.Distinct {
		if c.distinct == nil {
			c.distinct = make(map[string]bool)
		}
		key := string(types.EncodeKey(nil, types.Row{v}))
		if c.distinct[key] {
			return
		}
		c.distinct[key] = true
	}
	switch def.Fn {
	case AggFnCount:
		c.count++
	case AggFnSum, AggFnAvg:
		if !c.hasSum {
			c.sum, c.hasSum = v, true
		} else {
			c.sum = expr.Arith(expr.OpAdd, c.sum, v)
		}
		c.count++
	case AggFnMin:
		if !c.hasMM || types.Compare(v, c.minmax) < 0 {
			c.minmax, c.hasMM = v, true
		}
	case AggFnMax:
		if !c.hasMM || types.Compare(v, c.minmax) > 0 {
			c.minmax, c.hasMM = v, true
		}
	}
}

func finalizeCell(c *aggCell, def *AggDef) types.Datum {
	switch def.Fn {
	case AggFnCountStar, AggFnCount:
		return types.NewInt(c.count)
	case AggFnSum:
		if !c.hasSum {
			return types.Null()
		}
		return c.sum
	case AggFnAvg:
		if !c.hasSum || c.count == 0 {
			return types.Null()
		}
		return expr.Arith(expr.OpDiv, c.sum, types.NewInt(c.count))
	default:
		if !c.hasMM {
			return types.Null()
		}
		return c.minmax
	}
}

// Next implements Operator.
func (h *HashAgg) Next() (types.Row, error) {
	if h.pos >= len(h.results) {
		return nil, nil
	}
	r := h.results[h.pos]
	h.pos++
	return r, nil
}

// Close implements Operator.
func (h *HashAgg) Close() error {
	h.results = nil
	return h.Input.Close()
}
