package exec

import (
	"fmt"
	"sync"

	"taurus/internal/types"
)

// Parallel query (PQ), §VI: "a table or range scan can be
// range-partitioned into many sub-scans that are processed in parallel
// by a pool of worker threads. A sub-scan can be converted into an NDP
// scan". Combined with NDP this yields three levels of parallelism: PQ
// workers on the SQL node, sub-batches across Page Stores (the SAL's
// fan-out), and worker threads within each Page Store.

// Gather runs one operator per partition concurrently and merges their
// output streams (unordered). Each worker operator must be independent
// (its own scan over its own key sub-range).
type Gather struct {
	// Workers are the per-partition operator trees.
	Workers []Operator

	rows chan types.Row
	errs chan error
	stop chan struct{}
	wg   sync.WaitGroup
	done bool
}

// Columns implements Operator.
func (g *Gather) Columns() []string {
	if len(g.Workers) == 0 {
		return nil
	}
	return g.Workers[0].Columns()
}

// Open launches all workers.
func (g *Gather) Open(ctx *Ctx) error {
	if len(g.Workers) == 0 {
		return fmt.Errorf("exec: Gather needs workers")
	}
	g.rows = make(chan types.Row, 512)
	g.errs = make(chan error, len(g.Workers))
	g.stop = make(chan struct{})
	g.done = false
	for _, w := range g.Workers {
		g.wg.Add(1)
		go func(w Operator) {
			defer g.wg.Done()
			if err := w.Open(ctx); err != nil {
				g.errs <- err
				return
			}
			defer w.Close()
			for {
				row, err := w.Next()
				if err != nil {
					g.errs <- err
					return
				}
				if row == nil {
					return
				}
				select {
				case g.rows <- row.Clone():
				case <-g.stop:
					return
				}
			}
		}(w)
	}
	go func() {
		g.wg.Wait()
		close(g.rows)
	}()
	return nil
}

// Next implements Operator.
func (g *Gather) Next() (types.Row, error) {
	if g.done {
		return nil, nil
	}
	row, ok := <-g.rows
	if !ok {
		g.done = true
		select {
		case err := <-g.errs:
			return nil, err
		default:
			return nil, nil
		}
	}
	return row, nil
}

// Close stops all workers.
func (g *Gather) Close() error {
	if g.stop != nil {
		close(g.stop)
		g.stop = nil
		for range g.rows {
		}
	}
	return nil
}

// PartitionRanges splits the integer domain [lo, hi] of a leading key
// column into n contiguous sub-ranges for PQ sub-scans. Returned pairs
// are inclusive bounds.
func PartitionRanges(lo, hi int64, n int) [][2]int64 {
	if n < 1 {
		n = 1
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	span := hi - lo + 1
	if int64(n) > span {
		n = int(span)
	}
	out := make([][2]int64, 0, n)
	step := span / int64(n)
	rem := span % int64(n)
	cur := lo
	for i := 0; i < n; i++ {
		sz := step
		if int64(i) < rem {
			sz++
		}
		out = append(out, [2]int64{cur, cur + sz - 1})
		cur += sz
	}
	return out
}
