package exec

import (
	"fmt"

	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/expr"
	"taurus/internal/types"
)

// AggOutput describes how one result column of an aggregate scan is
// produced from the pushed core.AggSpec states.
type AggOutput struct {
	// Spec is the index into the pushed spec list for direct outputs.
	Spec int
	// AvgCount, when >= 0, makes this output AVG: Spec is the SUM state
	// and AvgCount the COUNT state — the paper's AVG decomposition
	// ("the sum of salary and the number of rows associated with the
	// sum—using which AVG(salary) can be computed", §III).
	AvgCount int
	// Name is the output column name.
	Name string
}

// NDPAggScan is the fused scan+aggregation operator used when the
// optimizer pushes aggregation down. It drives an engine NDP scan,
// merges partial states attached to NDP aggregate records, accumulates
// plain/base rows, and produces final rows (group-by columns followed by
// aggregate outputs).
//
// Grouped aggregation relies on the index delivering groups contiguously
// — the same requirement the optimizer enforces before pushing GROUP BY
// ("the index access chosen for T must satisfy the grouping column
// requirement", §V-C) — so it streams one group at a time.
type NDPAggScan struct {
	Opts    engine.ScanOptions // must carry NDP.Aggs (and GroupBy if grouped)
	Outputs []AggOutput
	// Having optionally filters final group rows (ordinals into the
	// output layout).
	Having *expr.Expr

	ctx     *Ctx
	results []types.Row
	pos     int
}

// Columns implements Operator.
func (s *NDPAggScan) Columns() []string {
	names := make([]string, 0, len(s.Opts.NDP.GroupBy)+len(s.Outputs))
	for range s.Opts.NDP.GroupBy {
		names = append(names, "") // group columns keep scan names; filled by planner via Cols if needed
	}
	for _, o := range s.Outputs {
		names = append(names, o.Name)
	}
	return names
}

// Open runs the scan to completion, accumulating groups. Grouped scans
// stream group-by-group; results are buffered because group count is
// small relative to input (the entire point of aggregation pushdown).
func (s *NDPAggScan) Open(ctx *Ctx) error {
	s.ctx = ctx
	if s.Opts.View == nil {
		s.Opts.View = ctx.View
	}
	ndp := s.Opts.NDP
	if ndp == nil || len(ndp.Aggs) == 0 {
		return fmt.Errorf("exec: NDPAggScan requires aggregate pushdown")
	}
	acc, err := core.NewAggregator(ndp.Aggs)
	if err != nil {
		return err
	}
	grouped := len(ndp.GroupBy) > 0
	var curKey types.Row
	haveGroup := false

	flush := func() {
		out := make(types.Row, 0, len(ndp.GroupBy)+len(s.Outputs))
		out = append(out, curKey...)
		states := acc.States()
		for _, o := range s.Outputs {
			out = append(out, finalize(o, ndp.Aggs, states))
		}
		if s.Having == nil || s.Having.EvalBool(out) {
			s.results = append(s.results, out)
		}
		acc.Reset()
	}

	err = ctx.Eng.Scan(s.Opts, func(row types.Row, states []core.AggState) error {
		ctx.Stats.OperatorRows.Add(1)
		if grouped {
			if haveGroup {
				same := true
				for i, g := range ndp.GroupBy {
					if types.Compare(curKey[i], row[g]) != 0 {
						same = false
						break
					}
				}
				if !same {
					flush()
					haveGroup = false
				}
			}
			if !haveGroup {
				curKey = curKey[:0]
				for _, g := range ndp.GroupBy {
					curKey = append(curKey, row[g])
				}
				curKey = curKey.Clone()
				haveGroup = true
			}
		}
		if states != nil {
			if err := acc.MergeStates(states); err != nil {
				return err
			}
		}
		acc.AccumulateRow(row)
		return nil
	})
	if err != nil {
		return err
	}
	if grouped {
		if haveGroup {
			flush()
		}
	} else {
		// Scalar aggregation always produces one row (SQL semantics for
		// aggregates over empty input).
		curKey = nil
		flush()
	}
	return nil
}

// finalize turns accumulated states into the output datum.
func finalize(o AggOutput, specs []core.AggSpec, states []core.AggState) types.Datum {
	if o.AvgCount >= 0 {
		sum := states[o.Spec]
		cnt := states[o.AvgCount].Count
		if !sum.Has || cnt == 0 {
			return types.Null()
		}
		return expr.Arith(expr.OpDiv, sum.Val, types.NewInt(cnt))
	}
	st := states[o.Spec]
	switch specs[o.Spec].Fn {
	case core.AggCountStar, core.AggCount:
		return types.NewInt(st.Count)
	default:
		if !st.Has {
			return types.Null()
		}
		return st.Val
	}
}

// Next implements Operator.
func (s *NDPAggScan) Next() (types.Row, error) {
	if s.pos >= len(s.results) {
		return nil, nil
	}
	row := s.results[s.pos]
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *NDPAggScan) Close() error {
	s.results = nil
	return nil
}
