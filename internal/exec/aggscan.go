package exec

import (
	"fmt"

	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/expr"
	"taurus/internal/types"
)

// AggOutput describes how one result column of an aggregate scan is
// produced from the pushed core.AggSpec states.
type AggOutput struct {
	// Spec is the index into the pushed spec list for direct outputs.
	Spec int
	// AvgCount, when >= 0, makes this output AVG: Spec is the SUM state
	// and AvgCount the COUNT state — the paper's AVG decomposition
	// ("the sum of salary and the number of rows associated with the
	// sum—using which AVG(salary) can be computed", §III).
	AvgCount int
	// Name is the output column name.
	Name string
}

// NDPAggScan is the fused scan+aggregation operator used when the
// optimizer pushes aggregation down. It drives an engine NDP scan,
// merges partial states attached to NDP aggregate records, accumulates
// plain/base rows, and produces final rows (group-by columns followed by
// aggregate outputs).
//
// Grouped aggregation relies on the index delivering groups contiguously
// — the same requirement the optimizer enforces before pushing GROUP BY
// ("the index access chosen for T must satisfy the grouping column
// requirement", §V-C) — so it streams one group at a time.
type NDPAggScan struct {
	Opts    engine.ScanOptions // must carry NDP.Aggs (and GroupBy if grouped)
	Outputs []AggOutput
	// Having optionally filters final group rows (ordinals into the
	// output layout).
	Having *expr.Expr

	ctx     *Ctx
	results []types.Row
	pos     int
}

// Columns implements Operator.
func (s *NDPAggScan) Columns() []string {
	names := make([]string, 0, len(s.Opts.NDP.GroupBy)+len(s.Outputs))
	for range s.Opts.NDP.GroupBy {
		names = append(names, "") // group columns keep scan names; filled by planner via Cols if needed
	}
	for _, o := range s.Outputs {
		names = append(names, o.Name)
	}
	return names
}

// partAcc accumulates one scan partition's groups, in that partition's
// key order. Each parallel worker owns exactly one partAcc, so no
// locking: the scan scheduler guarantees one goroutine per partition
// sink. A finished partition holds an ordered list of (group key,
// partial states) pairs; groups that span a slice boundary appear in
// two adjacent partitions and are re-merged by the ordered merge.
type partAcc struct {
	ndp      *engine.NDPPush
	stats    *ExecStats
	acc      *core.Aggregator
	grouped  bool
	curKey   types.Row
	have     bool
	keys     []types.Row
	states   [][]core.AggState
	scalarOK bool // scalar partition saw at least one record
}

func newPartAcc(ndp *engine.NDPPush, stats *ExecStats) (*partAcc, error) {
	acc, err := core.NewAggregator(ndp.Aggs)
	if err != nil {
		return nil, err
	}
	return &partAcc{ndp: ndp, stats: stats, acc: acc, grouped: len(ndp.GroupBy) > 0}, nil
}

// capture snapshots the current group's partial states (the aggregator
// exposes its internal slice, so copy before Reset).
func (a *partAcc) capture() {
	a.keys = append(a.keys, a.curKey)
	a.states = append(a.states, append([]core.AggState(nil), a.acc.States()...))
	a.acc.Reset()
	a.curKey = nil
	a.have = false
}

func (a *partAcc) emit(row types.Row, states []core.AggState) error {
	a.stats.OperatorRows.Add(1)
	if a.grouped {
		if a.have {
			same := true
			for i, g := range a.ndp.GroupBy {
				if types.Compare(a.curKey[i], row[g]) != 0 {
					same = false
					break
				}
			}
			if !same {
				a.capture()
			}
		}
		if !a.have {
			key := make(types.Row, 0, len(a.ndp.GroupBy))
			for _, g := range a.ndp.GroupBy {
				key = append(key, row[g])
			}
			a.curKey = key.Clone()
			a.have = true
		}
	} else {
		a.scalarOK = true
	}
	if states != nil {
		if err := a.acc.MergeStates(states); err != nil {
			return err
		}
	}
	a.acc.AccumulateRow(row)
	return nil
}

// finish flushes the partition's trailing group (grouped) or its
// single partial state (scalar).
func (a *partAcc) finish() {
	if a.grouped {
		if a.have {
			a.capture()
		}
		return
	}
	if a.scalarOK {
		a.capture()
	}
}

// Open runs the scan to completion, accumulating groups. The scan is
// partitioned by slice and fanned out across the engine's scan worker
// pool; each partition accumulates its own ordered partial groups and
// Open re-merges them in group-key order, so the result is identical
// to the serial scan: the index delivers groups contiguously in key
// order ("the index access chosen for T must satisfy the grouping
// column requirement", §V-C), and a subsequence of a key-ordered scan
// is still key-ordered. Results are buffered because group count is
// small relative to input (the entire point of aggregation pushdown).
func (s *NDPAggScan) Open(ctx *Ctx) error {
	s.ctx = ctx
	if s.Opts.View == nil {
		s.Opts.View = ctx.View
	}
	if !s.Opts.Trace.Valid() {
		s.Opts.Trace = ctx.Trace
	}
	ndp := s.Opts.NDP
	if ndp == nil || len(ndp.Aggs) == 0 {
		return fmt.Errorf("exec: NDPAggScan requires aggregate pushdown")
	}
	ps, err := ctx.Eng.PrepareNDPScan(s.Opts)
	if err != nil {
		return err
	}
	accs := make([]*partAcc, ps.Parts())
	for i := range accs {
		if accs[i], err = newPartAcc(ndp, &ctx.Stats); err != nil {
			return err
		}
	}
	if err := ps.Run(func(part int) engine.EmitFunc { return accs[part].emit }); err != nil {
		return err
	}
	for _, a := range accs {
		a.finish()
	}
	// Merge partitions on one fresh aggregator, reused group by group.
	merge, err := core.NewAggregator(ndp.Aggs)
	if err != nil {
		return err
	}
	flush := func(key types.Row) error {
		out := make(types.Row, 0, len(ndp.GroupBy)+len(s.Outputs))
		out = append(out, key...)
		states := merge.States()
		for _, o := range s.Outputs {
			out = append(out, finalize(o, ndp.Aggs, states))
		}
		if s.Having == nil || s.Having.EvalBool(out) {
			s.results = append(s.results, out)
		}
		merge.Reset()
		return nil
	}
	if len(ndp.GroupBy) == 0 {
		// Scalar: fold every partition's partial state; always one row
		// (SQL semantics for aggregates over empty input).
		for _, a := range accs {
			for _, st := range a.states {
				if err := merge.MergeStates(st); err != nil {
					return err
				}
			}
		}
		return flush(nil)
	}
	// Grouped: k-way ordered merge by group key. Each partition's
	// groups are already in ascending key order (index order), so
	// repeatedly taking the minimum key — merging every partition
	// holding that key, i.e. groups split across a slice boundary —
	// reproduces the serial scan's output order exactly.
	pos := make([]int, len(accs))
	for {
		var minKey types.Row
		for pi, a := range accs {
			if pos[pi] >= len(a.keys) {
				continue
			}
			if minKey == nil || compareKeys(a.keys[pos[pi]], minKey) < 0 {
				minKey = a.keys[pos[pi]]
			}
		}
		if minKey == nil {
			return nil
		}
		for pi, a := range accs {
			if pos[pi] < len(a.keys) && compareKeys(a.keys[pos[pi]], minKey) == 0 {
				if err := merge.MergeStates(a.states[pos[pi]]); err != nil {
					return err
				}
				pos[pi]++
			}
		}
		if err := flush(minKey); err != nil {
			return err
		}
	}
}

// compareKeys orders group keys columnwise (equal lengths by
// construction).
func compareKeys(a, b types.Row) int {
	for i := range a {
		if c := types.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// finalize turns accumulated states into the output datum.
func finalize(o AggOutput, specs []core.AggSpec, states []core.AggState) types.Datum {
	if o.AvgCount >= 0 {
		sum := states[o.Spec]
		cnt := states[o.AvgCount].Count
		if !sum.Has || cnt == 0 {
			return types.Null()
		}
		return expr.Arith(expr.OpDiv, sum.Val, types.NewInt(cnt))
	}
	st := states[o.Spec]
	switch specs[o.Spec].Fn {
	case core.AggCountStar, core.AggCount:
		return types.NewInt(st.Count)
	default:
		if !st.Has {
			return types.Null()
		}
		return st.Val
	}
}

// Next implements Operator.
func (s *NDPAggScan) Next() (types.Row, error) {
	if s.pos >= len(s.results) {
		return nil, nil
	}
	row := s.results[s.pos]
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *NDPAggScan) Close() error {
	s.results = nil
	return nil
}
