package exec

import (
	"testing"

	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/expr"
	"taurus/internal/testutil"
	"taurus/internal/types"
)

func workerCluster(t testing.TB, n int) (*testutil.Cluster, *engine.Table) {
	t.Helper()
	c, err := testutil.NewCluster(testutil.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.LoadWorkers(n)
	if err != nil {
		t.Fatal(err)
	}
	return c, tbl
}

func intRow(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestTableScanOperator(t *testing.T) {
	c, tbl := workerCluster(t, 300)
	ctx := NewCtx(c.Engine)
	scan := &TableScan{
		Opts: engine.ScanOptions{Index: tbl.Primary, Projection: []int{0, 1}},
		Cols: []string{"id", "age"},
	}
	rows, err := Run(ctx, scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 300 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d id %d", i, r[0].I)
		}
	}
	if got := scan.Columns(); len(got) != 2 || got[0] != "id" {
		t.Errorf("Columns = %v", got)
	}
}

func TestTableScanRejectsAggPushdown(t *testing.T) {
	c, tbl := workerCluster(t, 10)
	ctx := NewCtx(c.Engine)
	scan := &TableScan{Opts: engine.ScanOptions{
		Index: tbl.Primary,
		NDP:   &engine.NDPPush{Aggs: []core.AggSpec{{Fn: core.AggCountStar, ArgCol: -1}}},
	}}
	if err := scan.Open(ctx); err == nil {
		t.Fatal("TableScan must reject aggregate pushdown")
	}
}

func TestFilterProjectLimit(t *testing.T) {
	c, tbl := workerCluster(t, 200)
	ctx := NewCtx(c.Engine)
	var tree Operator = &TableScan{
		Opts: engine.ScanOptions{Index: tbl.Primary},
		Cols: []string{"id", "age", "join_date", "salary", "name"},
	}
	tree = &Filter{Input: tree, Pred: expr.LT(expr.Col(1, "age"), expr.ConstInt(30))}
	tree = &Project{
		Input: tree,
		Exprs: []*expr.Expr{expr.Col(0, "id"), expr.Mul(expr.Col(3, "salary"), expr.ConstInt(2))},
		Names: []string{"id", "double_salary"},
	}
	tree = &Limit{Input: tree, N: 5}
	rows, err := Run(ctx, tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("limit returned %d rows", len(rows))
	}
	if tree.Columns()[1] != "double_salary" {
		t.Error("projection names lost")
	}
}

func TestSortOperator(t *testing.T) {
	ctx := &Ctx{}
	v := &Values{
		Rows:  []types.Row{intRow(3, 1), intRow(1, 2), intRow(2, 3), intRow(1, 1)},
		Names: []string{"a", "b"},
	}
	s := &Sort{Input: v, Keys: []OrderKey{
		{Expr: expr.Col(0, "a")},
		{Expr: expr.Col(1, "b"), Desc: true},
	}}
	rows, err := Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 2}, {1, 1}, {2, 3}, {3, 1}}
	for i, w := range want {
		if rows[i][0].I != w[0] || rows[i][1].I != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rows[i], w)
		}
	}
}

func TestHashJoinKinds(t *testing.T) {
	ctx := &Ctx{}
	build := func() Operator {
		return &Values{Rows: []types.Row{intRow(1, 100), intRow(2, 200), intRow(2, 201)}, Names: []string{"k", "v"}}
	}
	probe := func() Operator {
		return &Values{Rows: []types.Row{intRow(1), intRow(2), intRow(3)}, Names: []string{"k"}}
	}
	// Inner: 1 match for k=1, 2 for k=2 → 3 rows.
	j := &HashJoin{Kind: JoinInner, Build: build(), Probe: probe(), BuildKeys: []int{0}, ProbeKeys: []int{0}}
	rows, err := Run(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("inner join: %d rows", len(rows))
	}
	if len(rows[0]) != 3 {
		t.Fatalf("combined width = %d", len(rows[0]))
	}
	// Left outer: k=3 padded with NULLs → 4 rows.
	j = &HashJoin{Kind: JoinLeftOuter, Build: build(), Probe: probe(), BuildKeys: []int{0}, ProbeKeys: []int{0}}
	rows, _ = Run(ctx, j)
	if len(rows) != 4 {
		t.Fatalf("left join: %d rows", len(rows))
	}
	foundNull := false
	for _, r := range rows {
		if r[0].I == 3 && r[1].IsNull() {
			foundNull = true
		}
	}
	if !foundNull {
		t.Error("left join should pad unmatched probe rows")
	}
	// Semi: k=1 and k=2 → 2 rows of probe width.
	j = &HashJoin{Kind: JoinSemi, Build: build(), Probe: probe(), BuildKeys: []int{0}, ProbeKeys: []int{0}}
	rows, _ = Run(ctx, j)
	if len(rows) != 2 || len(rows[0]) != 1 {
		t.Fatalf("semi join: %d rows width %d", len(rows), len(rows[0]))
	}
	// Anti: k=3 only.
	j = &HashJoin{Kind: JoinAnti, Build: build(), Probe: probe(), BuildKeys: []int{0}, ProbeKeys: []int{0}}
	rows, _ = Run(ctx, j)
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("anti join: %v", rows)
	}
}

func TestHashJoinExtraCond(t *testing.T) {
	ctx := &Ctx{}
	// Join on k, extra condition v > 150 (build col at combined ord 2).
	j := &HashJoin{
		Kind:      JoinInner,
		Build:     &Values{Rows: []types.Row{intRow(2, 100), intRow(2, 200)}, Names: []string{"k", "v"}},
		Probe:     &Values{Rows: []types.Row{intRow(2)}, Names: []string{"k"}},
		BuildKeys: []int{0}, ProbeKeys: []int{0},
		ExtraCond: expr.GT(expr.Col(2, "v"), expr.ConstInt(150)),
	}
	rows, err := Run(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2].I != 200 {
		t.Fatalf("extra cond: %v", rows)
	}
	// Left outer where all matches fail the condition → padded row.
	j = &HashJoin{
		Kind:      JoinLeftOuter,
		Build:     &Values{Rows: []types.Row{intRow(2, 100)}, Names: []string{"k", "v"}},
		Probe:     &Values{Rows: []types.Row{intRow(2)}, Names: []string{"k"}},
		BuildKeys: []int{0}, ProbeKeys: []int{0},
		ExtraCond: expr.GT(expr.Col(2, "v"), expr.ConstInt(150)),
	}
	rows, _ = Run(ctx, j)
	if len(rows) != 1 || !rows[0][1].IsNull() {
		t.Fatalf("left outer with failing extra cond: %v", rows)
	}
	// Semi/anti with the inequality pattern of Q21.
	j = &HashJoin{
		Kind:      JoinAnti,
		Build:     &Values{Rows: []types.Row{intRow(1, 7)}, Names: []string{"k", "s"}},
		Probe:     &Values{Rows: []types.Row{intRow(1, 7), intRow(1, 8)}, Names: []string{"k", "s"}},
		BuildKeys: []int{0}, ProbeKeys: []int{0},
		ExtraCond: expr.NE(expr.Col(3, "s2"), expr.Col(1, "s1")),
	}
	rows, _ = Run(ctx, j)
	if len(rows) != 1 || rows[0][1].I != 7 {
		t.Fatalf("anti with inequality: %v", rows)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	ctx := &Ctx{}
	j := &HashJoin{
		Kind:      JoinInner,
		Build:     &Values{Rows: []types.Row{{types.Null(), types.NewInt(1)}}, Names: []string{"k", "v"}},
		Probe:     &Values{Rows: []types.Row{{types.Null()}}, Names: []string{"k"}},
		BuildKeys: []int{0}, ProbeKeys: []int{0},
	}
	rows, err := Run(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatal("NULL keys must not join")
	}
}

func TestHashAgg(t *testing.T) {
	ctx := &Ctx{}
	in := &Values{
		Rows: []types.Row{
			intRow(1, 10), intRow(1, 20), intRow(2, 5), intRow(2, 5), intRow(2, 7),
		},
		Names: []string{"g", "v"},
	}
	agg := &HashAgg{
		Input:      in,
		GroupBy:    []*expr.Expr{expr.Col(0, "g")},
		GroupNames: []string{"g"},
		Aggs: []AggDef{
			{Fn: AggFnCountStar, Name: "cnt"},
			{Fn: AggFnSum, Arg: expr.Col(1, "v"), Name: "sum"},
			{Fn: AggFnAvg, Arg: expr.Col(1, "v"), Name: "avg"},
			{Fn: AggFnMin, Arg: expr.Col(1, "v"), Name: "min"},
			{Fn: AggFnMax, Arg: expr.Col(1, "v"), Name: "max"},
			{Fn: AggFnCount, Arg: expr.Col(1, "v"), Distinct: true, Name: "dcnt"},
		},
	}
	rows, err := Run(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d groups", len(rows))
	}
	byG := map[int64]types.Row{}
	for _, r := range rows {
		byG[r[0].I] = r
	}
	g1 := byG[1]
	if g1[1].I != 2 || g1[2].I != 30 || g1[3].I != 15 || g1[4].I != 10 || g1[5].I != 20 || g1[6].I != 2 {
		t.Errorf("group 1 = %v", g1)
	}
	g2 := byG[2]
	if g2[1].I != 3 || g2[2].I != 17 || g2[6].I != 2 {
		t.Errorf("group 2 = %v (distinct count should be 2)", g2)
	}
}

func TestHashAggScalarOnEmptyInput(t *testing.T) {
	ctx := &Ctx{}
	agg := &HashAgg{
		Input: &Values{Names: []string{"v"}},
		Aggs: []AggDef{
			{Fn: AggFnCountStar, Name: "cnt"},
			{Fn: AggFnSum, Arg: expr.Col(0, "v"), Name: "sum"},
		},
	}
	rows, err := Run(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I != 0 || !rows[0][1].IsNull() {
		t.Fatalf("scalar agg over empty input = %v", rows)
	}
}

func TestNDPAggScanScalar(t *testing.T) {
	c, tbl := workerCluster(t, 1000)
	ctx := NewCtx(c.Engine)
	pred := expr.LT(expr.Col(1, "age"), expr.ConstInt(40))

	// Reference with HashAgg over a regular scan.
	ref := &HashAgg{
		Input: &Filter{
			Input: &TableScan{Opts: engine.ScanOptions{Index: tbl.Primary}, Cols: []string{"id", "age", "join_date", "salary", "name"}},
			Pred:  pred,
		},
		Aggs: []AggDef{
			{Fn: AggFnAvg, Arg: expr.Col(3, "salary"), Name: "avg_salary"},
			{Fn: AggFnCountStar, Name: "cnt"},
		},
	}
	want, err := Run(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}

	// NDP path: push predicate, projection, SUM+COUNT decomposition.
	c.Engine.Pool().Clear()
	ndp := &NDPAggScan{
		Opts: engine.ScanOptions{
			Index: tbl.Primary, Predicate: pred, Projection: []int{0, 3},
			NDP: &engine.NDPPush{
				PushPredicate: true, PushProjection: true,
				Aggs: []core.AggSpec{
					{Fn: core.AggSum, ArgCol: 1},
					{Fn: core.AggCountStar, ArgCol: -1},
				},
			},
		},
		Outputs: []AggOutput{
			{Spec: 0, AvgCount: 1, Name: "avg_salary"},
			{Spec: 1, AvgCount: -1, Name: "cnt"},
		},
	}
	got, err := Run(ctx, ndp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("scalar agg rows = %d", len(got))
	}
	if !types.Equal(got[0][0], want[0][0]) || got[0][1].I != want[0][1].I {
		t.Fatalf("NDP agg = %v, want %v", got[0], want[0])
	}
}

func TestNDPAggScanGrouped(t *testing.T) {
	c, err := testutil.NewCluster(testutil.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schema := types.NewSchema(
		types.Column{Name: "grp", Kind: types.KindInt},
		types.Column{Name: "seq", Kind: types.KindInt},
		types.Column{Name: "val", Kind: types.KindInt},
	)
	tbl, err := c.Engine.CreateTable("g", schema, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	tx := c.Engine.Txm().Begin()
	want := map[int64]int64{}
	for g := int64(0); g < 7; g++ {
		for s := int64(0); s < 200; s++ {
			v := (g*7 + s) % 23
			want[g] += v
			if err := c.Engine.Insert(tbl, tx, intRow(g, s, v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tx.Commit()
	c.SAL.Flush()
	c.Engine.Pool().Clear()

	ctx := NewCtx(c.Engine)
	ndp := &NDPAggScan{
		Opts: engine.ScanOptions{
			Index: tbl.Primary, Projection: []int{0, 2},
			NDP: &engine.NDPPush{
				PushProjection: true,
				Aggs:           []core.AggSpec{{Fn: core.AggSum, ArgCol: 1}},
				GroupBy:        []int{0},
			},
		},
		Outputs: []AggOutput{{Spec: 0, AvgCount: -1, Name: "sum_val"}},
	}
	rows, err := Run(ctx, ndp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d groups, want 7", len(rows))
	}
	for _, r := range rows {
		if r[1].I != want[r[0].I] {
			t.Errorf("group %d: %d, want %d", r[0].I, r[1].I, want[r[0].I])
		}
	}
}

func TestIndexLookupJoin(t *testing.T) {
	c, tbl := workerCluster(t, 100)
	ctx := NewCtx(c.Engine)
	outer := &Values{
		Rows:  []types.Row{intRow(5), intRow(50), intRow(5000)},
		Names: []string{"want_id"},
	}
	j := &IndexLookupJoin{
		Outer:     outer,
		InnerCols: []string{"id", "age"},
		Lookup: func(ctx *Ctx, outerRow types.Row) ([]types.Row, error) {
			key := types.EncodeKey(nil, types.Row{outerRow[0]})
			var out []types.Row
			err := ctx.Eng.Scan(engine.ScanOptions{
				Index: tbl.Primary, Start: key, End: key, Projection: []int{0, 1},
			}, func(row types.Row, _ []core.AggState) error {
				out = append(out, row.Clone())
				return nil
			})
			return out, err
		},
	}
	rows, err := Run(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("lookup join: %d rows (id 5000 must not match)", len(rows))
	}
	if rows[0][1].I != 5 || rows[1][1].I != 50 {
		t.Fatalf("lookup join rows: %v", rows)
	}
}

func TestGatherParallelScan(t *testing.T) {
	c, tbl := workerCluster(t, 1000)
	ctx := NewCtx(c.Engine)
	ranges := PartitionRanges(0, 999, 4)
	if len(ranges) != 4 || ranges[0][0] != 0 || ranges[3][1] != 999 {
		t.Fatalf("ranges = %v", ranges)
	}
	var workers []Operator
	for _, rg := range ranges {
		pred := expr.Between(expr.Col(0, "id"), expr.ConstInt(rg[0]), expr.ConstInt(rg[1]))
		workers = append(workers, &TableScan{
			Opts: engine.ScanOptions{
				Index:     tbl.Primary,
				Start:     types.EncodeKey(nil, types.Row{types.NewInt(rg[0])}),
				End:       types.EncodeKey(nil, types.Row{types.NewInt(rg[1])}),
				Predicate: pred,
				NDP:       &engine.NDPPush{PushPredicate: true},
			},
			Cols: []string{"id", "age", "join_date", "salary", "name"},
		})
	}
	g := &Gather{Workers: workers}
	rows, err := Run(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1000 {
		t.Fatalf("parallel scan saw %d rows", len(rows))
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r[0].I] {
			t.Fatalf("duplicate id %d at partition boundary", r[0].I)
		}
		seen[r[0].I] = true
	}
}

func TestPartitionRangesEdgeCases(t *testing.T) {
	if got := PartitionRanges(1, 3, 10); len(got) != 3 {
		t.Errorf("over-partitioning: %v", got)
	}
	if got := PartitionRanges(5, 5, 2); len(got) != 1 || got[0] != [2]int64{5, 5} {
		t.Errorf("single value: %v", got)
	}
	got := PartitionRanges(0, 9, 3)
	if got[0][0] != 0 || got[2][1] != 9 {
		t.Errorf("coverage: %v", got)
	}
	// Contiguity.
	for i := 1; i < len(got); i++ {
		if got[i][0] != got[i-1][1]+1 {
			t.Errorf("gap between %v and %v", got[i-1], got[i])
		}
	}
}
