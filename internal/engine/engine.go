// Package engine implements the InnoDB-equivalent storage engine on the
// compute node: tables and indexes over B+ trees, redo logging through
// the SAL, the buffer pool, MVCC with undo, and — the heart of the
// paper — regular and NDP index scan cursors. "The InnoDB storage engine
// handles all of the complexities related to NDP scans, and shields the
// SQL executor from NDP" (§IV-C).
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"taurus/internal/buffer"
	"taurus/internal/obs"
	"taurus/internal/page"
	"taurus/internal/sal"
	"taurus/internal/txn"
	"taurus/internal/types"
	"taurus/internal/wal"

	"taurus/internal/btree"
)

// ReadView is the storage view of a read-only frontend (a read
// replica): instead of writing through a SAL, the engine reads pages
// from the shared Page Stores at the replica's visible LSN — the durable
// prefix the replica has confirmed applied by tailing the Log Stores.
type ReadView interface {
	// VisibleLSN is the highest LSN reads may observe right now.
	VisibleLSN() uint64
	// Refresh advances the visible LSN (tail the log, re-poll the Page
	// Stores) — the recovery path when a page version at the stamped
	// LSN has aged out of a Page Store's retention.
	Refresh() error
	// ReadPage fetches one page image at the given LSN.
	ReadPage(pageID, lsn uint64) ([]byte, error)
	// BatchRead is the NDP batch read at the given LSN.
	BatchRead(pageIDs []uint64, lsn uint64, desc []byte) (*sal.BatchResult, error)
	// BatchReadTraced is BatchRead carrying the scan's trace context so
	// per-slice sub-batch RPCs join the scan's fan-out tree.
	BatchReadTraced(pageIDs []uint64, lsn uint64, desc []byte, tc obs.TraceContext) (*sal.BatchResult, error)
	// SliceOf maps a page to its slice — the partitioning key of the
	// parallel scan scheduler. Must match the master's slice mapping.
	SliceOf(pageID uint64) uint32
}

// ErrReadOnly rejects writes on a read-replica engine.
var ErrReadOnly = fmt.Errorf("engine: read-only replica")

// Config sizes an Engine.
type Config struct {
	// SAL connects to the storage cluster (read-write frontends).
	SAL *sal.SAL
	// ReadView serves a read-only frontend instead: page reads at the
	// replica's visible LSN, every mutation rejected with ErrReadOnly.
	// Exactly one of SAL and ReadView must be set.
	ReadView ReadView
	// PoolPages is the buffer pool capacity in pages (paper setup: 20
	// GB pool for a 100 GB database, i.e. ~20% of data).
	PoolPages int
	// NDPMaxPagesLookAhead bounds both the NDP batch size and the NDP
	// page area, the paper's innodb_ndp_max_pages_look_ahead.
	NDPMaxPagesLookAhead int
	// ScanParallelism is the worker-pool width for partitioned NDP
	// scans (0 = GOMAXPROCS). 1 degenerates to the serial scan.
	ScanParallelism int
	// Tracer, when non-nil, records ndp.scan / per-slice ndp.slice_scan
	// spans for sampled scans.
	Tracer *obs.Tracer
	// Events, when non-nil, receives scan start/finish flight-recorder
	// events.
	Events *obs.EventRing
}

// Engine is one database frontend's storage engine.
type Engine struct {
	salc *sal.SAL
	view ReadView
	pool *buffer.Pool
	txm  *txn.Manager
	undo *txn.UndoLog

	mu         sync.RWMutex
	tables     map[string]*Table
	indexes    map[uint64]*Index
	nextIndex  uint64
	nextPageID atomic.Uint64

	lookAhead int
	scanPar   atomic.Int32

	tracer *obs.Tracer
	events *obs.EventRing

	// Metrics is the SQL-node work ledger backing the CPU-time figures.
	Metrics Metrics
}

// Table is a table with a primary index and optional secondaries.
type Table struct {
	Name        string
	Schema      *types.Schema
	PKCols      []int
	Primary     *Index
	Secondaries []*Index
}

// Index is one B+ tree index.
type Index struct {
	ID   uint64
	Name string
	// Table is the owning table name.
	Table string
	// Schema is the stored row layout of this index: the full table
	// schema for the primary; indexed columns + primary key columns for
	// secondaries.
	Schema *types.Schema
	// KeyCols are ordinals (into Schema) forming the sort key.
	KeyCols []int
	// TableOrds maps index schema ordinals back to table schema
	// ordinals (identity for the primary index).
	TableOrds []int
	Primary   bool
	Tree      *btree.Tree
}

// Metrics counts SQL-node work. The NDP CPU-reduction figures compare
// these with/without pushdown.
type Metrics struct {
	RowsExaminedSQL  atomic.Uint64 // records visibility-checked/decoded on the SQL node
	PredEvalsSQL     atomic.Uint64 // predicate evaluations on the SQL node
	RowsEmitted      atomic.Uint64
	UndoResolutions  atomic.Uint64
	NDPPagesConsumed atomic.Uint64 // NDP pages received and consumed
	SkippedCompleted atomic.Uint64 // pages whose NDP work the frontend completed
	LocalCopies      atomic.Uint64 // buffer-pool copies into the NDP area (I/O avoided)
	AggMergesSQL     atomic.Uint64
	BatchReads       atomic.Uint64
	RegularPageReads atomic.Uint64
}

// MetricsSnapshot is a plain copy for deltas.
type MetricsSnapshot struct {
	RowsExaminedSQL  uint64
	PredEvalsSQL     uint64
	RowsEmitted      uint64
	UndoResolutions  uint64
	NDPPagesConsumed uint64
	SkippedCompleted uint64
	LocalCopies      uint64
	AggMergesSQL     uint64
	BatchReads       uint64
	RegularPageReads uint64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		RowsExaminedSQL:  m.RowsExaminedSQL.Load(),
		PredEvalsSQL:     m.PredEvalsSQL.Load(),
		RowsEmitted:      m.RowsEmitted.Load(),
		UndoResolutions:  m.UndoResolutions.Load(),
		NDPPagesConsumed: m.NDPPagesConsumed.Load(),
		SkippedCompleted: m.SkippedCompleted.Load(),
		LocalCopies:      m.LocalCopies.Load(),
		AggMergesSQL:     m.AggMergesSQL.Load(),
		BatchReads:       m.BatchReads.Load(),
		RegularPageReads: m.RegularPageReads.Load(),
	}
}

// Sub returns s - o.
func (s MetricsSnapshot) Sub(o MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		RowsExaminedSQL:  s.RowsExaminedSQL - o.RowsExaminedSQL,
		PredEvalsSQL:     s.PredEvalsSQL - o.PredEvalsSQL,
		RowsEmitted:      s.RowsEmitted - o.RowsEmitted,
		UndoResolutions:  s.UndoResolutions - o.UndoResolutions,
		NDPPagesConsumed: s.NDPPagesConsumed - o.NDPPagesConsumed,
		SkippedCompleted: s.SkippedCompleted - o.SkippedCompleted,
		LocalCopies:      s.LocalCopies - o.LocalCopies,
		AggMergesSQL:     s.AggMergesSQL - o.AggMergesSQL,
		BatchReads:       s.BatchReads - o.BatchReads,
		RegularPageReads: s.RegularPageReads - o.RegularPageReads,
	}
}

// New creates an engine over the given SAL (or ReadView, for a read
// replica).
func New(cfg Config) (*Engine, error) {
	if (cfg.SAL == nil) == (cfg.ReadView == nil) {
		return nil, fmt.Errorf("engine: exactly one of SAL and ReadView required")
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 4096
	}
	if cfg.NDPMaxPagesLookAhead <= 0 {
		cfg.NDPMaxPagesLookAhead = buffer.DefaultNDPMaxPagesLookAhead
	}
	e := &Engine{
		salc:      cfg.SAL,
		view:      cfg.ReadView,
		pool:      buffer.New(cfg.PoolPages, cfg.NDPMaxPagesLookAhead),
		txm:       txn.NewManager(),
		undo:      txn.NewUndoLog(),
		tables:    make(map[string]*Table),
		indexes:   make(map[uint64]*Index),
		nextIndex: 1,
		lookAhead: cfg.NDPMaxPagesLookAhead,
		tracer:    cfg.Tracer,
		events:    cfg.Events,
	}
	e.scanPar.Store(int32(cfg.ScanParallelism))
	return e, nil
}

// SetScanParallelism resizes the partitioned-scan worker pool at
// runtime (0 = GOMAXPROCS, 1 = serial).
func (e *Engine) SetScanParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.scanPar.Store(int32(n))
}

// ScanParallelism reports the effective worker-pool width.
func (e *Engine) ScanParallelism() int {
	if n := int(e.scanPar.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Txm exposes the transaction manager.
func (e *Engine) Txm() *txn.Manager { return e.txm }

// Commit ends the transaction and waits until its own log records are
// durable in triplicate on the Log Stores — the paper's commit point.
// The wait target is the transaction's max LSN (tracked record by
// record through the write path), not a global allocator snapshot: a
// committer never waits for LSNs handed out to unrelated concurrent
// writers after its last write. Page Store application continues
// asynchronously; readers of the touched pages wait on applied LSNs,
// not on this commit. Concurrent committers of one lane still share a
// group-commit window (and one fsync).
func (e *Engine) Commit(tx *txn.Txn) error {
	tx.Commit()
	if e.salc == nil {
		return ErrReadOnly
	}
	return e.salc.WaitDurableTraced(tx.MaxLSN(), tx.Trace())
}

// ReadOnly reports whether the engine serves a read replica.
func (e *Engine) ReadOnly() bool { return e.view != nil }

// Pool exposes the buffer pool (experiments inspect residency).
func (e *Engine) Pool() *buffer.Pool { return e.pool }

// SAL exposes the storage abstraction layer.
func (e *Engine) SAL() *sal.SAL { return e.salc }

// LookAhead returns the configured NDP batch size.
func (e *Engine) LookAhead() int { return e.lookAhead }

// pager implements btree.Pager over the SAL + buffer pool.
type pager struct{ e *Engine }

func (p pager) Read(pageID uint64) (*page.Page, error) {
	if v := p.e.view; v != nil {
		// Read-replica miss path: fetch at the replica's visible LSN.
		// The bound plumbed into GetAsOf makes a reader whose visible
		// LSN advanced past an in-flight fetch's re-fetch instead of
		// joining a result bound to the older snapshot. A fetch that
		// fails because the stamped version aged out of the Page
		// Store's retention refreshes the visible LSN and retries once.
		lsn := v.VisibleLSN()
		return p.e.pool.GetAsOf(pageID,
			func() uint64 { return lsn },
			func(id uint64) (*page.Page, error) {
				raw, err := v.ReadPage(id, lsn)
				if err != nil {
					if rerr := v.Refresh(); rerr != nil {
						return nil, err
					}
					raw, err = v.ReadPage(id, v.VisibleLSN())
					if err != nil {
						return nil, err
					}
				}
				return page.FromBytes(raw)
			})
	}
	// The miss path carries a page-level read-your-writes bound: the
	// fetch (ReadPage) waits until the page's staged records are
	// applied, and a racing reader whose writer staged MORE for the
	// page meanwhile re-fetches instead of joining this fetch's result.
	return p.e.pool.GetAsOf(pageID,
		func() uint64 { return p.e.salc.StagedPageLSN(pageID) },
		func(id uint64) (*page.Page, error) {
			raw, err := p.e.salc.ReadPage(id, 0)
			if err != nil {
				return nil, err
			}
			return page.FromBytes(raw)
		})
}

func (p pager) Allocate() uint64 {
	// Page IDs start at 1; 0 is reserved.
	return p.e.nextPageID.Add(1)
}

func (p pager) Apply(rec *wal.Record) (*page.Page, error) {
	if p.e.view != nil {
		return nil, ErrReadOnly
	}
	// Log first (the SAL assigns the LSN and distributes), then apply
	// to the locally cached copy so the compute node sees its own write
	// immediately. The assigned LSN is left in rec.LSN for callers that
	// thread it back to their transaction's commit watermark.
	if _, err := p.e.salc.Write(rec); err != nil {
		return nil, err
	}
	if rec.Type == wal.TypeFormatPage {
		pg := page.New(rec.PageID, rec.IndexID, rec.Level)
		pg.SetLSN(rec.LSN)
		p.e.pool.Insert(pg)
		got, _ := p.e.pool.Lookup(rec.PageID)
		return got, nil
	}
	if pg, ok := p.e.pool.Lookup(rec.PageID); ok {
		if err := wal.Apply(pg, rec); err != nil {
			return nil, err
		}
		return pg, nil
	}
	// Not cached: the authoritative copy in the Page Store applies the
	// record on flush; the next Read refetches.
	return nil, nil
}

func (p pager) CurrentLSN() uint64 {
	if p.e.view != nil {
		return p.e.view.VisibleLSN()
	}
	return p.e.salc.CurrentLSN()
}

// CreateTable registers a table and builds its primary index tree. The
// definition is logged as a catalog record ahead of the tree's first
// page, so a restarted frontend can rebuild its data dictionary from
// the same durable log that rebuilds the pages.
func (e *Engine) CreateTable(name string, schema *types.Schema, pkCols []int) (*Table, error) {
	if e.view != nil {
		return nil, ErrReadOnly
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; ok {
		return nil, fmt.Errorf("engine: table %q exists", name)
	}
	if len(pkCols) == 0 {
		return nil, fmt.Errorf("engine: table %q needs a primary key", name)
	}
	idxID := e.nextIndex
	e.nextIndex++
	if _, err := e.logCatalog(&wal.CatalogEntry{
		Kind: wal.CatalogCreateTable, IndexID: idxID, Table: name,
		Cols: catalogCols(schema), Ords: pkCols,
	}); err != nil {
		return nil, err
	}
	tree, rootLSN, err := btree.CreateAt(pager{e}, idxID)
	if err != nil {
		return nil, err
	}
	ords := make([]int, schema.Len())
	for i := range ords {
		ords[i] = i
	}
	primary := &Index{
		ID: idxID, Name: name + "_pk", Table: name, Schema: schema,
		KeyCols: pkCols, TableOrds: ords, Primary: true, Tree: tree,
	}
	t := &Table{Name: name, Schema: schema, PKCols: pkCols, Primary: primary}
	e.tables[name] = t
	e.indexes[idxID] = primary
	// DDL is acknowledged durable: the catalog record and root page
	// must reach the Log Stores before CreateTable returns (the root's
	// LSN covers the catalog record logged just before it). Application
	// to the Page Stores is asynchronous like any other write.
	if err := e.salc.WaitDurable(rootLSN); err != nil {
		return nil, err
	}
	return t, nil
}

// CreateSecondaryIndex builds a secondary index on the given table
// columns. The stored layout is (indexed columns..., primary key
// columns...) and the sort key is the whole layout, making entries
// unique — InnoDB's secondary index structure.
func (e *Engine) CreateSecondaryIndex(table, name string, cols []int) (*Index, error) {
	if e.view != nil {
		return nil, ErrReadOnly
	}
	e.mu.Lock()
	t, ok := e.tables[table]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: no table %q", table)
	}
	ords := append(append([]int(nil), cols...), t.PKCols...)
	idxCols := make([]types.Column, len(ords))
	for i, o := range ords {
		idxCols[i] = t.Schema.Cols[o]
	}
	keyCols := make([]int, len(ords))
	for i := range keyCols {
		keyCols[i] = i
	}
	idxID := e.nextIndex
	e.nextIndex++
	if _, err := e.logCatalog(&wal.CatalogEntry{
		Kind: wal.CatalogCreateIndex, IndexID: idxID, Table: table, Index: name,
		Ords: cols,
	}); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	e.mu.Unlock()
	tree, rootLSN, err := btree.CreateAt(pager{e}, idxID)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		ID: idxID, Name: name, Table: table, Schema: types.NewSchema(idxCols...),
		KeyCols: keyCols, TableOrds: ords, Primary: false, Tree: tree,
	}
	e.mu.Lock()
	t.Secondaries = append(t.Secondaries, idx)
	e.indexes[idxID] = idx
	e.mu.Unlock()
	// Same durability point as CreateTable: a crash right after this
	// call must not lose the index.
	if err := e.salc.WaitDurable(rootLSN); err != nil {
		return nil, err
	}
	return idx, nil
}

// Table returns a registered table.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: no table %q", name)
	}
	return t, nil
}

// Index returns an index by ID.
func (e *Engine) Index(id uint64) (*Index, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	idx, ok := e.indexes[id]
	if !ok {
		return nil, fmt.Errorf("engine: no index %d", id)
	}
	return idx, nil
}

// keyOf encodes the index key for a full-index row.
func (idx *Index) keyOf(dst []byte, row types.Row) []byte {
	for _, k := range idx.KeyCols {
		dst = types.EncodeKey(dst, types.Row{row[k]})
	}
	return dst
}

// rowFor maps a table row into this index's stored layout.
func (idx *Index) rowFor(tableRow types.Row) types.Row {
	if idx.Primary {
		return tableRow
	}
	out := make(types.Row, len(idx.TableOrds))
	for i, o := range idx.TableOrds {
		out[i] = tableRow[o]
	}
	return out
}
