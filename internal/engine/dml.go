package engine

import (
	"bytes"
	"fmt"

	"taurus/internal/page"
	"taurus/internal/txn"
	"taurus/internal/types"
	"taurus/internal/wal"
)

// Insert adds a row to the table (and all its indexes) under t.
func (e *Engine) Insert(t *Table, tx *txn.Txn, row types.Row) error {
	if e.view != nil {
		return ErrReadOnly
	}
	if len(row) != t.Schema.Len() {
		return fmt.Errorf("engine: row arity %d != schema %d", len(row), t.Schema.Len())
	}
	key := t.Primary.keyOf(nil, row)
	rowBytes := types.EncodeRow(nil, t.Schema, row)
	lsn, err := t.Primary.Tree.Insert(key, rowBytes, tx.ID)
	if err != nil {
		return err
	}
	tx.ObserveLSN(lsn)
	for _, idx := range t.Secondaries {
		irow := idx.rowFor(row)
		ikey := idx.keyOf(nil, irow)
		ibytes := types.EncodeRow(nil, idx.Schema, irow)
		lsn, err := idx.Tree.Insert(ikey, ibytes, tx.ID)
		if err != nil {
			return err
		}
		tx.ObserveLSN(lsn)
	}
	return nil
}

// LoadSorted bulk-inserts rows that arrive in primary key order (the
// TPC-H generator produces them that way); it is Insert without
// per-row validation overhead, kept separate for clarity at call sites.
func (e *Engine) LoadSorted(t *Table, tx *txn.Txn, rows []types.Row) error {
	for _, r := range rows {
		if err := e.Insert(t, tx, r); err != nil {
			return err
		}
	}
	return nil
}

// findInLeaf locates the record with exactly key in the leaf, returning
// its offset (0 if absent).
func findInLeaf(leaf *page.Page, key []byte) int {
	found := 0
	leaf.Iter(func(r page.Record) bool {
		k, _, err := page.SplitLeafPayload(r.Payload)
		if err != nil {
			return false
		}
		switch bytes.Compare(k, key) {
		case 0:
			found = r.Off
			return false
		case 1:
			return false
		}
		return true
	})
	return found
}

// UpdateByPK rewrites the non-key columns of the row with the given
// primary key. The previous version goes to the undo log so older read
// views (and Page-Store-ambiguous records) can be resolved. Updates that
// change secondary-indexed or key columns are rejected — TPC-H is
// read-mostly and the paper's MVCC machinery only needs version churn.
func (e *Engine) UpdateByPK(t *Table, tx *txn.Txn, pk types.Row, newRow types.Row) error {
	if e.view != nil {
		return ErrReadOnly
	}
	key := types.EncodeKey(nil, pk)
	for _, idx := range t.Secondaries {
		for _, o := range idx.TableOrds[:len(idx.TableOrds)-len(t.PKCols)] {
			oldRow, err := e.readRowByPK(t, key)
			if err != nil {
				return err
			}
			if types.Compare(oldRow[o], newRow[o]) != 0 {
				return fmt.Errorf("engine: update would change secondary-indexed column %q", t.Schema.Cols[o].Name)
			}
		}
	}
	for i, k := range t.PKCols {
		if types.Compare(pk[i], newRow[k]) != 0 {
			return fmt.Errorf("engine: update must not change the primary key")
		}
	}
	leafID, err := t.Primary.Tree.SeekLeaf(key)
	if err != nil {
		return err
	}
	leaf, err := pager{e}.Read(leafID)
	if err != nil {
		return err
	}
	off := findInLeaf(leaf, key)
	if off == 0 {
		return fmt.Errorf("engine: update target not found")
	}
	old := leaf.RecordAt(off)
	_, oldRowBytes, err := page.SplitLeafPayload(old.Payload)
	if err != nil {
		return err
	}
	e.undo.Push(t.Primary.ID, key, txn.UndoRecord{
		TrxID: old.TrxID, Row: append([]byte(nil), oldRowBytes...), Deleted: old.Deleted,
	})
	newBytes := types.EncodeRow(nil, t.Schema, newRow)
	payload := page.EncodeLeafPayload(nil, key, newBytes)
	if !leaf.HasRoomFor(len(payload)) {
		// Reclaim delete-marked space first, then re-locate the target
		// (compaction moves offsets).
		if _, err := (pager{e}).Apply(&wal.Record{Type: wal.TypeCompact, PageID: leafID}); err != nil {
			return err
		}
		leaf, err = pager{e}.Read(leafID)
		if err != nil {
			return err
		}
		off = findInLeaf(leaf, key)
		if off == 0 {
			return fmt.Errorf("engine: update target lost during compaction")
		}
		if !leaf.HasRoomFor(len(payload)) {
			return fmt.Errorf("engine: page %d cannot fit updated row", leafID)
		}
	}
	rec := &wal.Record{
		Type: wal.TypeUpdateRec, PageID: leafID, Off: uint32(off),
		TrxID: tx.ID, Payload: payload,
	}
	if _, err := (pager{e}).Apply(rec); err != nil {
		return err
	}
	// The update record is the operation's last (it follows any
	// compaction), so its LSN is the transaction's watermark for it.
	tx.ObserveLSN(rec.LSN)
	return nil
}

// DeleteByPK delete-marks the row. Older views resolve the pre-delete
// version via undo; Page Stores treat the deleter's trx id like any
// other for ambiguity.
func (e *Engine) DeleteByPK(t *Table, tx *txn.Txn, pk types.Row) error {
	if e.view != nil {
		return ErrReadOnly
	}
	key := types.EncodeKey(nil, pk)
	leafID, err := t.Primary.Tree.SeekLeaf(key)
	if err != nil {
		return err
	}
	leaf, err := pager{e}.Read(leafID)
	if err != nil {
		return err
	}
	off := findInLeaf(leaf, key)
	if off == 0 {
		return fmt.Errorf("engine: delete target not found")
	}
	old := leaf.RecordAt(off)
	_, oldRowBytes, err := page.SplitLeafPayload(old.Payload)
	if err != nil {
		return err
	}
	e.undo.Push(t.Primary.ID, key, txn.UndoRecord{
		TrxID: old.TrxID, Row: append([]byte(nil), oldRowBytes...), Deleted: old.Deleted,
	})
	if _, err := (pager{e}).Apply(&wal.Record{
		Type: wal.TypeSetTrxID, PageID: leafID, Off: uint32(off), TrxID: tx.ID,
	}); err != nil {
		return err
	}
	rec := &wal.Record{
		Type: wal.TypeDeleteMark, PageID: leafID, Off: uint32(off), Flag: 1,
	}
	if _, err := (pager{e}).Apply(rec); err != nil {
		return err
	}
	// The delete-mark follows the SetTrxID record, so its LSN covers
	// both.
	tx.ObserveLSN(rec.LSN)
	return nil
}

// readRowByPK fetches the current (latest) version of a row.
func (e *Engine) readRowByPK(t *Table, key []byte) (types.Row, error) {
	leafID, err := t.Primary.Tree.SeekLeaf(key)
	if err != nil {
		return nil, err
	}
	leaf, err := pager{e}.Read(leafID)
	if err != nil {
		return nil, err
	}
	off := findInLeaf(leaf, key)
	if off == 0 {
		return nil, fmt.Errorf("engine: row not found")
	}
	_, rowBytes, err := page.SplitLeafPayload(leaf.RecordAt(off).Payload)
	if err != nil {
		return nil, err
	}
	row := make(types.Row, t.Schema.Len())
	if _, err := types.DecodeRow(rowBytes, t.Schema, row); err != nil {
		return nil, err
	}
	return row, nil
}
