package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"taurus/internal/cluster"
	"taurus/internal/core"
	"taurus/internal/expr"
	"taurus/internal/logstore"
	"taurus/internal/pagestore"
	"taurus/internal/sal"
	"taurus/internal/txn"
	"taurus/internal/types"
)

// testCluster wires a full in-process cluster: 3 log stores, 4 page
// stores, SAL, engine.
type testCluster struct {
	tr     *cluster.InProc
	eng    *Engine
	stores []*pagestore.Store
}

func newTestCluster(t testing.TB, poolPages int) *testCluster {
	t.Helper()
	tr := cluster.NewInProc()
	tc := &testCluster{tr: tr}
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		tr.Register(n, logstore.New(n))
	}
	psNames := []string{"ps1", "ps2", "ps3", "ps4"}
	for _, n := range psNames {
		ps := pagestore.New(n)
		tc.stores = append(tc.stores, ps)
		tr.Register(n, ps)
	}
	s, err := sal.New(sal.Config{
		Tenant: 1, Transport: tr, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: 3, PagesPerSlice: 64, Plugin: pagestore.PluginInnoDB,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{SAL: s, PoolPages: poolPages, NDPMaxPagesLookAhead: 8})
	if err != nil {
		t.Fatal(err)
	}
	tc.eng = eng
	return tc
}

var workerSchema = types.NewSchema(
	types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "age", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "join_date", Kind: types.KindDate, NotNull: true},
	types.Column{Name: "salary", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "name", Kind: types.KindString},
)

func loadWorkers(t testing.TB, tc *testCluster, n int) *Table {
	t.Helper()
	tbl, err := tc.eng.CreateTable("worker", workerSchema, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	tx := tc.eng.Txm().Begin()
	r := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(20 + r.Intn(40))),
			types.DateFromYMD(2005+r.Intn(10), 1+r.Intn(12), 1+r.Intn(28)),
			types.NewDecimal(int64(300000 + r.Intn(700000))),
			types.NewString(fmt.Sprintf("worker-%06d", i)),
		}
		if err := tc.eng.Insert(tbl, tx, row); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	if err := tc.eng.SAL().Flush(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func collectScan(t testing.TB, e *Engine, opts ScanOptions) ([]types.Row, [][]core.AggState) {
	t.Helper()
	var rows []types.Row
	var states [][]core.AggState
	err := e.Scan(opts, func(row types.Row, st []core.AggState) error {
		rows = append(rows, row.Clone())
		if st != nil {
			cp := make([]core.AggState, len(st))
			copy(cp, st)
			states = append(states, cp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows, states
}

func TestRegularScanAllRows(t *testing.T) {
	tc := newTestCluster(t, 4096)
	tbl := loadWorkers(t, tc, 500)
	rows, _ := collectScan(t, tc.eng, ScanOptions{Index: tbl.Primary})
	if len(rows) != 500 {
		t.Fatalf("scanned %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Fatalf("row %d has id %d — not in key order", i, r[0].I)
		}
	}
}

func TestRegularVsNDPScanEquivalence(t *testing.T) {
	tc := newTestCluster(t, 4096)
	tbl := loadWorkers(t, tc, 800)
	pred := expr.LT(expr.Col(1, "age"), expr.ConstInt(30))
	base := ScanOptions{Index: tbl.Primary, Predicate: pred, Projection: []int{0, 3}}

	regular, _ := collectScan(t, tc.eng, base)

	ndpOpts := base
	ndpOpts.NDP = &NDPPush{PushPredicate: true, PushProjection: true}
	ndp, _ := collectScan(t, tc.eng, ndpOpts)

	if len(regular) != len(ndp) {
		t.Fatalf("regular %d rows, NDP %d rows", len(regular), len(ndp))
	}
	for i := range regular {
		for c := range regular[i] {
			if !types.Equal(regular[i][c], ndp[i][c]) {
				t.Fatalf("row %d col %d: %v vs %v", i, c, regular[i][c], ndp[i][c])
			}
		}
	}
	if len(ndp) == 0 || len(ndp[0]) != 2 {
		t.Fatal("projection not applied")
	}
}

func TestNDPScanReducesNetworkBytes(t *testing.T) {
	tc := newTestCluster(t, 64) // small pool: force storage reads
	tbl := loadWorkers(t, tc, 2000)
	pred := expr.EQ(expr.Col(1, "age"), expr.ConstInt(25)) // ~2.5% selectivity
	tc.eng.Pool().Clear()
	before := tc.tr.Stats.Snapshot()
	collectScan(t, tc.eng, ScanOptions{Index: tbl.Primary, Predicate: pred, Projection: []int{0}})
	regBytes := tc.tr.Stats.Snapshot().Sub(before).BytesReceived

	tc.eng.Pool().Clear()
	before = tc.tr.Stats.Snapshot()
	collectScan(t, tc.eng, ScanOptions{
		Index: tbl.Primary, Predicate: pred, Projection: []int{0},
		NDP: &NDPPush{PushPredicate: true, PushProjection: true},
	})
	ndpBytes := tc.tr.Stats.Snapshot().Sub(before).BytesReceived
	if ndpBytes*5 > regBytes {
		t.Errorf("NDP bytes %d not ≪ regular bytes %d", ndpBytes, regBytes)
	}
}

func TestNDPScanWithAggregation(t *testing.T) {
	tc := newTestCluster(t, 4096)
	tbl := loadWorkers(t, tc, 1000)
	// SELECT SUM(salary), COUNT(*) WHERE age < 40 — scalar aggregation.
	pred := expr.LT(expr.Col(1, "age"), expr.ConstInt(40))

	// Reference: regular scan + frontend aggregation.
	var wantSum int64
	var wantCount int64
	rows, _ := collectScan(t, tc.eng, ScanOptions{Index: tbl.Primary, Predicate: pred})
	for _, r := range rows {
		wantSum += r[3].I
		wantCount++
	}

	// NDP scan with pushed SUM + COUNT, on a cold buffer pool so pages
	// actually travel through Page Store NDP processing.
	tc.eng.Pool().Clear()
	opts := ScanOptions{
		Index: tbl.Primary, Predicate: pred, Projection: []int{0, 3},
		NDP: &NDPPush{
			PushPredicate: true, PushProjection: true,
			Aggs: []core.AggSpec{
				{Fn: core.AggSum, ArgCol: 1}, // salary in projected layout
				{Fn: core.AggCountStar, ArgCol: -1},
			},
		},
	}
	var gotSum, gotCount int64
	err := tc.eng.Scan(opts, func(row types.Row, states []core.AggState) error {
		if states != nil {
			if states[0].Has {
				gotSum += states[0].Val.I
			}
			gotCount += states[1].Count
		}
		// Base and plain rows accumulate normally.
		gotSum += row[1].I
		gotCount++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotSum != wantSum || gotCount != wantCount {
		t.Fatalf("NDP agg sum/count = %d/%d, want %d/%d", gotSum, gotCount, wantSum, wantCount)
	}
	// Rows reaching the SQL node should be far fewer than matching rows.
	if m := tc.eng.Metrics.Snapshot(); m.AggMergesSQL == 0 {
		t.Error("expected aggregate records to have been merged")
	}
}

func TestNDPRangeScanViaSecondaryIndex(t *testing.T) {
	tc := newTestCluster(t, 4096)
	tbl := loadWorkers(t, tc, 1000)
	idx, err := tc.eng.CreateSecondaryIndex("worker", "worker_age", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild index content: inserts after index creation only; so
	// create the index before loading in real flows. Reload rows into
	// the index manually here.
	tx := tc.eng.Txm().Begin()
	rows, _ := collectScan(t, tc.eng, ScanOptions{Index: tbl.Primary})
	for _, r := range rows {
		irow := idx.rowFor(r)
		if _, err := idx.Tree.Insert(idx.keyOf(nil, irow), types.EncodeRow(nil, idx.Schema, irow), tx.ID); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()

	// Range scan age ∈ [25, 30] on the secondary index; predicate
	// mirrors the range (ordinals in the secondary layout: age=0,id=1).
	pred := expr.Between(expr.Col(0, "age"), expr.ConstInt(25), expr.ConstInt(30))
	lo := types.EncodeKey(nil, types.Row{types.NewInt(25)})
	hi := types.EncodeKey(nil, types.Row{types.NewInt(31)})
	got, _ := collectScan(t, tc.eng, ScanOptions{
		Index: idx, Start: lo, End: hi, Predicate: pred,
		NDP: &NDPPush{PushPredicate: true},
	})
	want := 0
	for _, r := range rows {
		if r[1].I >= 25 && r[1].I <= 30 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("secondary NDP range scan: %d rows, want %d", len(got), want)
	}
	// Verify ordering on the secondary key.
	for i := 1; i < len(got); i++ {
		if got[i-1][0].I > got[i][0].I {
			t.Fatal("secondary scan out of order")
		}
	}
}

func TestMVCCAmbiguousRecordsResolvedByFrontend(t *testing.T) {
	tc := newTestCluster(t, 4096)
	tbl := loadWorkers(t, tc, 200)

	// Reader view taken before the update.
	readerView := tc.eng.Txm().View(nil)

	// A writer updates salary of workers 0..49 (uncommitted).
	writer := tc.eng.Txm().Begin()
	for i := 0; i < 50; i++ {
		old, err := tc.eng.readRowByPK(tbl, types.EncodeKey(nil, types.Row{types.NewInt(int64(i))}))
		if err != nil {
			t.Fatal(err)
		}
		updated := old.Clone()
		updated[3] = types.NewDecimal(999999999)
		if err := tc.eng.UpdateByPK(tbl, writer, types.Row{types.NewInt(int64(i))}, updated); err != nil {
			t.Fatal(err)
		}
	}
	if err := tc.eng.SAL().Flush(); err != nil {
		t.Fatal(err)
	}

	// NDP scan under the old view: the Page Store must return the 50
	// updated records as ambiguous; the frontend resolves them via undo
	// to their ORIGINAL salaries.
	sumSalary := func(view *txn.ReadView, ndp *NDPPush) int64 {
		var sum int64
		err := tc.eng.Scan(ScanOptions{Index: tbl.Primary, View: view, NDP: ndp}, func(row types.Row, _ []core.AggState) error {
			sum += row[3].I
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	wantOld := sumSalary(readerView, nil)
	gotOldNDP := sumSalary(readerView, &NDPPush{PushPredicate: false})
	if gotOldNDP != wantOld {
		t.Fatalf("NDP scan under old view: %d, want %d", gotOldNDP, wantOld)
	}
	m := tc.eng.Metrics.Snapshot()
	if m.UndoResolutions == 0 {
		t.Error("expected undo resolutions for ambiguous records")
	}

	// After commit, a fresh view sees the new salaries (and they differ).
	writer.Commit()
	newView := tc.eng.Txm().View(nil)
	gotNew := sumSalary(newView, &NDPPush{})
	if gotNew == wantOld {
		t.Error("new view should see updated salaries")
	}
	wantNewRegular := sumSalary(newView, nil)
	if gotNew != wantNewRegular {
		t.Fatalf("NDP vs regular under new view: %d vs %d", gotNew, wantNewRegular)
	}
}

func TestDeleteVisibility(t *testing.T) {
	tc := newTestCluster(t, 4096)
	tbl := loadWorkers(t, tc, 100)
	oldView := tc.eng.Txm().View(nil)
	deleter := tc.eng.Txm().Begin()
	for i := 0; i < 10; i++ {
		if err := tc.eng.DeleteByPK(tbl, deleter, types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	deleter.Commit()
	newView := tc.eng.Txm().View(nil)

	countRows := func(view *txn.ReadView, ndp *NDPPush) int {
		n := 0
		err := tc.eng.Scan(ScanOptions{Index: tbl.Primary, View: view, NDP: ndp}, func(types.Row, []core.AggState) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	for _, ndp := range []*NDPPush{nil, {}} {
		if got := countRows(oldView, ndp); got != 100 {
			t.Errorf("old view (ndp=%v) sees %d rows, want 100", ndp != nil, got)
		}
		if got := countRows(newView, ndp); got != 90 {
			t.Errorf("new view (ndp=%v) sees %d rows, want 90", ndp != nil, got)
		}
	}
}

func TestBestEffortSkipStillCorrect(t *testing.T) {
	// Build a cluster whose Page Stores have controllable admission.
	tr := cluster.NewInProc()
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		tr.Register(n, logstore.New(n))
	}
	psNames := []string{"ps1", "ps2", "ps3", "ps4"}
	var controls []*pagestore.ResourceControl
	for _, n := range psNames {
		rc := pagestore.NewResourceControl(2, 64)
		controls = append(controls, rc)
		tr.Register(n, pagestore.New(n, pagestore.WithResourceControl(rc)))
	}
	s, err := sal.New(sal.Config{
		Tenant: 1, Transport: tr, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: 3, PagesPerSlice: 64, Plugin: pagestore.PluginInnoDB,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{SAL: s, PoolPages: 64, NDPMaxPagesLookAhead: 8})
	if err != nil {
		t.Fatal(err)
	}
	tc2 := &testCluster{tr: tr, eng: eng}
	tbl := loadWorkers(t, tc2, 1000)
	pred := expr.LT(expr.Col(1, "age"), expr.ConstInt(35))
	want, _ := collectScan(t, tc2.eng, ScanOptions{Index: tbl.Primary, Predicate: pred})

	check := func(label string) {
		tc2.eng.Pool().Clear()
		got, _ := collectScan(t, tc2.eng, ScanOptions{
			Index: tbl.Primary, Predicate: pred,
			NDP: &NDPPush{PushPredicate: true},
		})
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
		}
	}
	// All skipped.
	for _, rc := range controls {
		rc.SetForceSkip(true)
	}
	check("all skipped")
	m := tc2.eng.Metrics.Snapshot()
	if m.SkippedCompleted == 0 {
		t.Error("frontend should have completed skipped pages")
	}
	// Partial skip (page-scoped, not all-or-nothing).
	for _, rc := range controls {
		rc.SetForceSkip(false)
		rc.SetSkipEvery(3)
	}
	check("every 3rd skipped")
	// No skip.
	for _, rc := range controls {
		rc.SetSkipEvery(0)
	}
	check("none skipped")
}

func TestBufferPoolCopyAvoidsIO(t *testing.T) {
	tc := newTestCluster(t, 8192)
	tbl := loadWorkers(t, tc, 500)
	// Warm the pool with a regular scan.
	collectScan(t, tc.eng, ScanOptions{Index: tbl.Primary})
	before := tc.eng.Metrics.Snapshot()
	beforeNet := tc.tr.Stats.Snapshot()
	// NDP scan should copy cached pages instead of reading.
	collectScan(t, tc.eng, ScanOptions{
		Index: tbl.Primary, Predicate: expr.LT(expr.Col(1, "age"), expr.ConstInt(30)),
		NDP: &NDPPush{PushPredicate: true},
	})
	m := tc.eng.Metrics.Snapshot().Sub(before)
	if m.LocalCopies == 0 {
		t.Error("expected buffer-pool copies")
	}
	if m.BatchReads != 0 {
		t.Errorf("expected zero batch reads with a fully warm pool, got %d", m.BatchReads)
	}
	net := tc.tr.Stats.Snapshot().Sub(beforeNet)
	if net.BatchReads != 0 {
		t.Error("no network batch reads should have happened")
	}
}

func TestScanEarlyStop(t *testing.T) {
	tc := newTestCluster(t, 4096)
	tbl := loadWorkers(t, tc, 300)
	n := 0
	err := tc.eng.Scan(ScanOptions{Index: tbl.Primary}, func(types.Row, []core.AggState) error {
		n++
		if n == 10 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil || n != 10 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
	// NDP path too.
	n = 0
	err = tc.eng.Scan(ScanOptions{Index: tbl.Primary, NDP: &NDPPush{}}, func(types.Row, []core.AggState) error {
		n++
		if n == 10 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil || n != 10 {
		t.Fatalf("NDP early stop: n=%d err=%v", n, err)
	}
}

func TestGroupedNDPAggregation(t *testing.T) {
	tc := newTestCluster(t, 4096)
	// Table keyed by (grp, seq) so grouping column is the key prefix.
	schema := types.NewSchema(
		types.Column{Name: "grp", Kind: types.KindInt},
		types.Column{Name: "seq", Kind: types.KindInt},
		types.Column{Name: "val", Kind: types.KindInt},
	)
	tbl, err := tc.eng.CreateTable("g", schema, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	tx := tc.eng.Txm().Begin()
	r := rand.New(rand.NewSource(1))
	want := map[int64]int64{}
	for g := int64(0); g < 20; g++ {
		for s := int64(0); s < 100; s++ {
			v := r.Int63n(100)
			want[g] += v
			if err := tc.eng.Insert(tbl, tx, types.Row{types.NewInt(g), types.NewInt(s), types.NewInt(v)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	tx.Commit()
	tc.eng.SAL().Flush()

	// NDP scan with GROUP BY grp, SUM(val): executor-style streaming
	// consumption.
	got := map[int64]int64{}
	opts := ScanOptions{
		Index: tbl.Primary, Projection: []int{0, 2},
		NDP: &NDPPush{
			PushProjection: true,
			Aggs:           []core.AggSpec{{Fn: core.AggSum, ArgCol: 1}},
			GroupBy:        []int{0},
		},
	}
	err = tc.eng.Scan(opts, func(row types.Row, states []core.AggState) error {
		g := row[0].I
		if states != nil && states[0].Has {
			got[g] += states[0].Val.I
		}
		got[g] += row[1].I
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("groups: %d vs %d", len(got), len(want))
	}
	for g, w := range want {
		if got[g] != w {
			t.Errorf("group %d: %d, want %d", g, got[g], w)
		}
	}
}

// Property-style check: random predicates, NDP on/off, partial skips —
// all runs produce identical row sets.
func TestScanEquivalenceUnderSkewQuick(t *testing.T) {
	tc := newTestCluster(t, 128)
	tbl := loadWorkers(t, tc, 1500)
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		lo := int64(20 + r.Intn(20))
		hi := lo + int64(r.Intn(15))
		pred := expr.Between(expr.Col(1, "age"), expr.ConstInt(lo), expr.ConstInt(hi))
		tc.eng.Pool().Clear()
		want, _ := collectScan(t, tc.eng, ScanOptions{Index: tbl.Primary, Predicate: pred, Projection: []int{0}})
		tc.eng.Pool().Clear()
		got, _ := collectScan(t, tc.eng, ScanOptions{
			Index: tbl.Primary, Predicate: pred, Projection: []int{0},
			NDP: &NDPPush{PushPredicate: true, PushProjection: true},
		})
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs %d rows", trial, len(want), len(got))
		}
		for i := range want {
			if want[i][0].I != got[i][0].I {
				t.Fatalf("trial %d row %d: %v vs %v", trial, i, want[i], got[i])
			}
		}
	}
}

// TestCommitWaitsOnTxnMaxLSN pins the statement-level MVCC commit
// semantics: a transaction's commit wait target is its OWN max LSN —
// strictly below the global allocator after an unrelated concurrent
// writer logs more records — and committing with it succeeds.
func TestCommitWaitsOnTxnMaxLSN(t *testing.T) {
	tc := newTestCluster(t, 256)
	tbl, err := tc.eng.CreateTable("worker", workerSchema, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	mkRow := func(id int64) types.Row {
		return types.Row{
			types.NewInt(id), types.NewInt(30),
			types.DateFromYMD(2012, 1, 15),
			types.NewDecimal(310000),
			types.NewString(fmt.Sprintf("w%d", id)),
		}
	}
	tx1 := tc.eng.Txm().Begin()
	if err := tc.eng.Insert(tbl, tx1, mkRow(1)); err != nil {
		t.Fatal(err)
	}
	if tx1.MaxLSN() == 0 {
		t.Fatal("insert did not thread its LSN back to the transaction")
	}
	// An unrelated writer advances the global allocator.
	tx2 := tc.eng.Txm().Begin()
	for i := int64(2); i < 10; i++ {
		if err := tc.eng.Insert(tbl, tx2, mkRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tx1.MaxLSN() >= tc.eng.SAL().CurrentLSN() {
		t.Fatalf("per-txn wait LSN %d must be below global CurrentLSN %d",
			tx1.MaxLSN(), tc.eng.SAL().CurrentLSN())
	}
	if tx2.MaxLSN() <= tx1.MaxLSN() {
		t.Fatalf("later writer's watermark %d not above earlier %d", tx2.MaxLSN(), tx1.MaxLSN())
	}
	if err := tc.eng.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	// Commit durability covers exactly the transaction's own prefix.
	if tc.eng.SAL().DurableLSN() < tx1.MaxLSN() {
		t.Fatalf("durable %d below committed transaction's max LSN %d",
			tc.eng.SAL().DurableLSN(), tx1.MaxLSN())
	}
	if err := tc.eng.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	// Updates and deletes thread their LSNs too.
	tx3 := tc.eng.Txm().Begin()
	if err := tc.eng.UpdateByPK(tbl, tx3, types.Row{types.NewInt(1)}, mkRow(1)); err != nil {
		t.Fatal(err)
	}
	afterUpdate := tx3.MaxLSN()
	if afterUpdate <= tx2.MaxLSN() {
		t.Fatalf("update watermark %d not past prior writes", afterUpdate)
	}
	if err := tc.eng.DeleteByPK(tbl, tx3, types.Row{types.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	if tx3.MaxLSN() <= afterUpdate {
		t.Fatalf("delete did not advance the watermark: %d", tx3.MaxLSN())
	}
	if err := tc.eng.Commit(tx3); err != nil {
		t.Fatal(err)
	}
}
