package engine

import "taurus/internal/obs"

// RegisterMetrics surfaces the engine's SQL-node work ledger as
// scrape-time counter families. The role label distinguishes engines
// when one process hosts several (master + replicas).
func (e *Engine) RegisterMetrics(reg *obs.Registry, role string) {
	if reg == nil {
		return
	}
	labels := []obs.Label{obs.L("role", role)}
	counter := func(name, help string, load func() uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(load()) }, labels...)
	}
	counter("taurus_engine_rows_examined_total", "Records visibility-checked/decoded on the SQL node.",
		e.Metrics.RowsExaminedSQL.Load)
	counter("taurus_engine_rows_emitted_total", "Rows emitted to clients.",
		e.Metrics.RowsEmitted.Load)
	counter("taurus_engine_pred_evals_total", "Predicate evaluations on the SQL node.",
		e.Metrics.PredEvalsSQL.Load)
	counter("taurus_engine_batch_reads_total", "Batch reads issued by scans.",
		e.Metrics.BatchReads.Load)
	counter("taurus_engine_page_reads_total", "Regular (non-batch) page reads.",
		e.Metrics.RegularPageReads.Load)
	counter("taurus_engine_ndp_pages_total", "NDP pages received and consumed.",
		e.Metrics.NDPPagesConsumed.Load)
	counter("taurus_engine_undo_resolutions_total", "Version-chain resolutions through the undo log.",
		e.Metrics.UndoResolutions.Load)
}
