package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"taurus/internal/core"
	"taurus/internal/core/ir"
	"taurus/internal/expr"
	"taurus/internal/obs"
	"taurus/internal/page"
	"taurus/internal/sal"
	"taurus/internal/txn"
	"taurus/internal/types"
)

// ErrStopScan may be returned by an EmitFunc to end the scan early
// (LIMIT); Scan then returns nil.
var ErrStopScan = errors.New("engine: stop scan")

// NDPPush describes the pushdowns requested for an NDP scan. The three
// decisions — projection, predicate, aggregation — "are taken
// independently" (§III).
type NDPPush struct {
	// PushPredicate ships ScanOptions.Predicate to Page Stores as IR.
	PushPredicate bool
	// PushProjection ships ScanOptions.Projection.
	PushProjection bool
	// Aggs are the pushed aggregates (arg ordinals in the scan's output
	// layout). Empty means no NDP aggregation.
	Aggs []core.AggSpec
	// GroupBy are grouping ordinals in the output layout; the planner
	// guarantees the index satisfies the grouping order.
	GroupBy []int
}

// ScanOptions parameterize one index scan.
type ScanOptions struct {
	Index *Index
	// Start/End are inclusive encoded key bounds; nil = open. Bounds
	// position the scan; row-level range filtering is the predicate's
	// job (the planner derives bounds from predicate conjuncts and
	// keeps the full predicate).
	Start, End []byte
	// View is the MVCC read view.
	View *txn.ReadView
	// Predicate is the pushed-to-storage-engine condition ("classical"
	// pushdown); ordinals refer to the index schema. The scan always
	// applies it to rows it processes on the SQL node; with
	// NDP.PushPredicate it is also evaluated in Page Stores.
	Predicate *expr.Expr
	// Projection lists output ordinals into the index schema; empty
	// emits full index rows.
	Projection []int
	// NDP enables the NDP scan path (nil = regular InnoDB-style scan,
	// one page read at a time, no batch reads).
	NDP *NDPPush
	// LookAhead overrides the engine's NDP batch size.
	LookAhead int
	// Parallelism overrides the engine's partitioned-scan worker-pool
	// width (PrepareNDPScan path only; 0 = engine default).
	Parallelism int
	// Trace, when valid, is the sampled trace the scan's spans and
	// batch-read RPCs attach to.
	Trace obs.TraceContext
}

// EmitFunc receives scan output. For NDP aggregate records, states holds
// the partial aggregation attached to the row: the executor merges it and
// then processes row normally ("InnoDB then calls the SQL executor's
// appropriate aggregation function and provides the special value",
// §V-C). states is nil for plain rows.
//
// row aliases scan-internal buffers and is only valid until the callback
// returns; Clone it to retain (hash join builds, sorts).
type EmitFunc func(row types.Row, states []core.AggState) error

// Scan runs a forward index scan, regular or NDP.
func (e *Engine) Scan(opts ScanOptions, emit EmitFunc) error {
	if opts.Index == nil {
		return fmt.Errorf("engine: scan needs an index")
	}
	if opts.View == nil {
		opts.View = e.txm.View(nil)
	}
	if opts.NDP != nil {
		if len(opts.NDP.Aggs) > 0 && opts.NDP.PushProjection != (len(opts.Projection) > 0) {
			return fmt.Errorf("engine: pushed aggregation requires pushed projection to agree with the output layout")
		}
		err := e.ndpScan(opts, emit)
		if errors.Is(err, ErrStopScan) {
			return nil
		}
		return err
	}
	err := e.regularScan(opts, emit)
	if errors.Is(err, ErrStopScan) {
		return nil
	}
	return err
}

// scanState bundles per-scan reusable buffers.
type scanState struct {
	opts    ScanOptions
	emit    EmitFunc
	fullRow types.Row
	outRow  types.Row
	outOrds []int
	proc    *core.Processor // NDP record decoding (NDP scans only)
}

func newScanState(opts ScanOptions, emit EmitFunc) *scanState {
	s := &scanState{
		opts:    opts,
		emit:    emit,
		fullRow: make(types.Row, opts.Index.Schema.Len()),
	}
	if len(opts.Projection) > 0 {
		s.outOrds = opts.Projection
		s.outRow = make(types.Row, len(opts.Projection))
	}
	return s
}

// project maps a full index row to the output layout.
func (s *scanState) project(row types.Row) types.Row {
	if s.outOrds == nil {
		return row
	}
	for i, o := range s.outOrds {
		s.outRow[i] = row[o]
	}
	return s.outRow
}

// processFullRecord applies the complete frontend pipeline (visibility,
// undo, predicate, projection) to a regular record and emits it. Used by
// regular scans, skipped pages, buffer-pool copies, and ambiguous
// records — the four §V-B1 cases where "InnoDB may [evaluate NDP
// predicates] by calling SQL executor functions".
func (e *Engine) processFullRecord(s *scanState, rec page.Record, key, rowBytes []byte) error {
	e.Metrics.RowsExaminedSQL.Add(1)
	view := s.opts.View
	visible := view.Visible(rec.TrxID)
	deleted := rec.Deleted
	if !visible {
		e.Metrics.UndoResolutions.Add(1)
		u, ok := e.undo.Resolve(s.opts.Index.ID, key, view)
		if !ok {
			return nil // row does not exist for this view
		}
		if u.Deleted {
			return nil
		}
		rowBytes = u.Row
		deleted = false
	}
	if deleted {
		return nil
	}
	if _, err := types.DecodeRow(rowBytes, s.opts.Index.Schema, s.fullRow); err != nil {
		return err
	}
	if s.opts.Predicate != nil {
		e.Metrics.PredEvalsSQL.Add(1)
		if !s.opts.Predicate.EvalBool(s.fullRow) {
			return nil
		}
	}
	e.Metrics.RowsEmitted.Add(1)
	return s.emit(s.project(s.fullRow), nil)
}

// regularScan walks the leaf chain one page at a time through the buffer
// pool — "a regular InnoDB scan does not perform batch reads" (§I) — so
// every missed page costs one full-page network read and lands in the
// shared buffer pool (warming it, unlike NDP pages; cf. the Q4
// experiment, §VII-D).
func (e *Engine) regularScan(opts ScanOptions, emit EmitFunc) error {
	s := newScanState(opts, emit)
	var leafID uint64
	var err error
	if opts.Start != nil {
		leafID, err = opts.Index.Tree.SeekLeaf(opts.Start)
	} else {
		leafID, err = opts.Index.Tree.FirstLeaf()
	}
	if err != nil {
		return err
	}
	for leafID != page.InvalidPageID {
		pg, err := (pager{e}).Read(leafID)
		if err != nil {
			return err
		}
		e.Metrics.RegularPageReads.Add(1)
		var pageErr error
		done := false
		pg.Iter(func(rec page.Record) bool {
			key, rowBytes, err := page.SplitLeafPayload(rec.Payload)
			if err != nil {
				pageErr = err
				return false
			}
			if opts.Start != nil && strings.Compare(string(key), string(opts.Start)) < 0 {
				return true
			}
			if opts.End != nil && strings.Compare(string(key), string(opts.End)) > 0 {
				done = true
				return false
			}
			if err := e.processFullRecord(s, rec, key, rowBytes); err != nil {
				pageErr = err
				return false
			}
			return true
		})
		if pageErr != nil {
			return pageErr
		}
		if done {
			return nil
		}
		leafID = pg.NextPage()
	}
	return nil
}

// batchRead routes an NDP batch read through the SAL (read-write
// frontend) or the replica's read view.
func (e *Engine) batchRead(pageIDs []uint64, lsn uint64, desc []byte, tc obs.TraceContext) (*sal.BatchResult, error) {
	if e.view != nil {
		return e.view.BatchReadTraced(pageIDs, lsn, desc, tc)
	}
	return e.salc.BatchReadTraced(pageIDs, lsn, desc, tc)
}

// sliceOf maps a page to its slice through whichever storage view the
// engine has.
func (e *Engine) sliceOf(pageID uint64) uint32 {
	if e.view != nil {
		return e.view.SliceOf(pageID)
	}
	return e.salc.SliceOf(pageID)
}

// buildDescriptor assembles the NDP descriptor for this scan (§IV-C1).
func (e *Engine) buildDescriptor(opts ScanOptions) (*core.Descriptor, error) {
	idx := opts.Index
	d := &core.Descriptor{
		IndexID:      idx.ID,
		Cols:         make([]types.Kind, idx.Schema.Len()),
		FixedLens:    make([]uint16, idx.Schema.Len()),
		LowWatermark: opts.View.Low,
	}
	for i, c := range idx.Schema.Cols {
		d.Cols[i] = c.Kind
		d.FixedLens[i] = uint16(c.FixedLen)
	}
	ndp := opts.NDP
	if ndp.PushProjection && len(opts.Projection) > 0 {
		d.Projection = make([]uint16, len(opts.Projection))
		for i, o := range opts.Projection {
			d.Projection[i] = uint16(o)
		}
	}
	if ndp.PushPredicate && opts.Predicate != nil {
		prog, err := ir.Compile(opts.Predicate, idx.Schema.Len())
		if err != nil {
			return nil, fmt.Errorf("engine: predicate not NDP-compilable: %w", err)
		}
		d.Predicate = prog.Encode()
	}
	d.Aggs = ndp.Aggs
	if len(ndp.GroupBy) > 0 {
		d.GroupBy = make([]uint16, len(ndp.GroupBy))
		for i, g := range ndp.GroupBy {
			d.GroupBy[i] = uint16(g)
		}
	}
	return d, nil
}

// ndpScan is the NDP scan cursor of §IV-C4: collect leaf page IDs from
// level-1 pages under the share-locked sub-tree, stamp the LSN, release
// the locks, then issue batch reads through the SAL; consume NDP pages,
// complete skipped work, and resolve ambiguous records.
func (e *Engine) ndpScan(opts ScanOptions, emit EmitFunc) error {
	s := newScanState(opts, emit)
	desc, err := e.buildDescriptor(opts)
	if err != nil {
		return err
	}
	proc, err := core.NewProcessorFromDescriptor(desc)
	if err != nil {
		return err
	}
	s.proc = proc
	descBytes := desc.Encode()

	lookAhead := opts.LookAhead
	if lookAhead <= 0 {
		lookAhead = e.lookAhead
	}
	// Collect the full in-range leaf list once, under the shared tree
	// lock, with one LSN stamp. Client-side chunking into look-ahead
	// sized batch reads bounds the NDP page area exactly as
	// innodb_ndp_max_pages_look_ahead does.
	batch, err := opts.Index.Tree.CollectBatch(opts.Start, opts.End, 1<<30)
	if err != nil {
		return err
	}
	return e.scanChunks(s, batch.LeafIDs, batch.LSN, descBytes, lookAhead, opts.Trace, nil)
}

// scanChunks runs the §IV-C4 chunked batch-read loop over one ordered
// leaf list — the whole scan when serial, one slice partition when
// fanned out. stop, when non-nil, is the partitioned scan's shared
// cancel flag: a sibling partition's error ends this one at the next
// chunk boundary.
func (e *Engine) scanChunks(s *scanState, leafIDs []uint64, lsn uint64, descBytes []byte, lookAhead int, tc obs.TraceContext, stop *atomic.Bool) error {
	for base := 0; base < len(leafIDs); base += lookAhead {
		if stop != nil && stop.Load() {
			return nil
		}
		chunk := leafIDs[base:min(base+lookAhead, len(leafIDs))]
		// Buffer-pool check (§IV-C4): cached pages are copied to the
		// NDP page area instead of being read over the network.
		cached := make(map[uint64]*page.Page)
		missing := make([]uint64, 0, len(chunk))
		for _, id := range chunk {
			if pg, ok := e.pool.Lookup(id); ok {
				cached[id] = pg.Clone()
				e.Metrics.LocalCopies.Add(1)
			} else {
				missing = append(missing, id)
			}
		}
		fetched := make(map[uint64][]byte, len(missing))
		if len(missing) > 0 {
			e.Metrics.BatchReads.Add(1)
			res, err := e.batchRead(missing, lsn, descBytes, tc)
			if err != nil {
				// The stamped version may have aged out of the Page
				// Stores' retention under heavy concurrent writes;
				// retry at latest (a replica refreshes its visible LSN
				// instead — it must never read past it). Row visibility
				// is still governed by MVCC, so results remain correct.
				if e.view != nil {
					if rerr := e.view.Refresh(); rerr != nil {
						return err
					}
					res, err = e.view.BatchReadTraced(missing, e.view.VisibleLSN(), descBytes, tc)
				} else {
					res, err = e.salc.BatchReadTraced(missing, 0, descBytes, tc)
				}
				if err != nil {
					return err
				}
			}
			for i, id := range missing {
				fetched[id] = res.Pages[i]
			}
		}
		for _, id := range chunk {
			if err := e.pool.AllocNDP(); err != nil {
				return err
			}
			err := func() error {
				defer e.pool.ReleaseNDP()
				if pg, ok := cached[id]; ok {
					// Case 4 of §V-B1: NDP page copied from a cached
					// regular page; the frontend does all NDP work.
					e.Metrics.SkippedCompleted.Add(1)
					return e.consumeRegularAsNDP(s, pg)
				}
				pg, err := page.FromBytes(fetched[id])
				if err != nil {
					return err
				}
				return e.consumeNDPPage(s, pg)
			}()
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// PartitionedScan is a prepared NDP scan split into per-slice
// partitions. Each partition is the in-range leaf subsequence of one
// slice, in key order; consecutive leaves share slices (page IDs are
// allocated roughly sequentially), so partitions map onto distinct
// Page Store replica sets and fan out across the storage fleet.
//
// Row order within a partition matches the serial scan; order ACROSS
// partitions is the caller's job (NDPAggScan re-merges grouped partials
// by key), which is why only order-insensitive consumers use this path.
type PartitionedScan struct {
	e         *Engine
	opts      ScanOptions
	descBytes []byte
	proc      *core.Processor
	lsn       uint64
	lookAhead int
	parts     []scanPartition
}

// scanPartition is one slice's contiguous, key-ordered leaf run.
type scanPartition struct {
	slice   uint32
	leafIDs []uint64
}

// PrepareNDPScan collects and stamps the scan's leaf list once (shared
// tree lock, one LSN — exactly like the serial cursor) and partitions
// it by slice for parallel dispatch.
func (e *Engine) PrepareNDPScan(opts ScanOptions) (*PartitionedScan, error) {
	if opts.Index == nil {
		return nil, fmt.Errorf("engine: scan needs an index")
	}
	if opts.View == nil {
		opts.View = e.txm.View(nil)
	}
	if opts.NDP == nil {
		return nil, fmt.Errorf("engine: partitioned scan requires NDP options")
	}
	if len(opts.NDP.Aggs) > 0 && opts.NDP.PushProjection != (len(opts.Projection) > 0) {
		return nil, fmt.Errorf("engine: pushed aggregation requires pushed projection to agree with the output layout")
	}
	desc, err := e.buildDescriptor(opts)
	if err != nil {
		return nil, err
	}
	proc, err := core.NewProcessorFromDescriptor(desc)
	if err != nil {
		return nil, err
	}
	lookAhead := opts.LookAhead
	if lookAhead <= 0 {
		lookAhead = e.lookAhead
	}
	batch, err := opts.Index.Tree.CollectBatch(opts.Start, opts.End, 1<<30)
	if err != nil {
		return nil, err
	}
	p := &PartitionedScan{
		e:         e,
		opts:      opts,
		descBytes: desc.Encode(),
		proc:      proc,
		lsn:       batch.LSN,
		lookAhead: lookAhead,
	}
	for _, id := range batch.LeafIDs {
		sliceID := e.sliceOf(id)
		if n := len(p.parts); n > 0 && p.parts[n-1].slice == sliceID {
			p.parts[n-1].leafIDs = append(p.parts[n-1].leafIDs, id)
		} else {
			p.parts = append(p.parts, scanPartition{slice: sliceID, leafIDs: []uint64{id}})
		}
	}
	return p, nil
}

// Parts reports how many per-slice partitions the scan fans out into.
func (p *PartitionedScan) Parts() int { return len(p.parts) }

// LSN is the scan's stamped read LSN: on a replica it was taken from
// the visible LSN and reads never go past it.
func (p *PartitionedScan) LSN() uint64 { return p.lsn }

// Run dispatches the partitions across a bounded worker pool and waits
// for them all. emitFor returns partition i's sink; partitions run
// concurrently, so distinct sinks must not share state. The per-worker
// chunk size divides the scan's look-ahead by the pool width so the
// concurrent NDP page area stays within the serial scan's bound.
func (p *PartitionedScan) Run(emitFor func(part int) EmitFunc) error {
	e := p.e
	if len(p.parts) == 0 {
		return nil
	}
	workers := p.opts.Parallelism
	if workers <= 0 {
		workers = e.ScanParallelism()
	}
	if workers > len(p.parts) {
		workers = len(p.parts)
	}
	if workers < 1 {
		workers = 1
	}
	perLook := p.lookAhead
	if workers > 1 {
		if perLook = p.lookAhead / workers; perLook < 1 {
			perLook = 1
		}
	}
	tc := p.opts.Trace
	var root *obs.SpanHandle
	if e.tracer != nil && tc.Valid() {
		root = e.tracer.StartSpan(tc, "ndp.scan")
		root.Annotate("index=%s partitions=%d parallelism=%d lsn=%d",
			p.opts.Index.Name, len(p.parts), workers, p.lsn)
		tc = root.Context()
	}
	e.events.Record(obs.EventScanStart, "index %s: %d slice partitions, %d workers, lsn %d",
		p.opts.Index.Name, len(p.parts), workers, p.lsn)
	t0 := time.Now()

	var stop atomic.Bool
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if stop.Load() {
					continue
				}
				part := p.parts[i]
				ptc := tc
				var span *obs.SpanHandle
				if e.tracer != nil && tc.Valid() {
					span = e.tracer.StartSpan(tc, "ndp.slice_scan")
					span.Annotate("slice=%d leaves=%d", part.slice, len(part.leafIDs))
					ptc = span.Context()
				}
				s := newScanState(p.opts, emitFor(i))
				s.proc = p.proc
				err := e.scanChunks(s, part.leafIDs, p.lsn, p.descBytes, perLook, ptc, &stop)
				span.End()
				if err != nil {
					if errors.Is(err, ErrStopScan) {
						stop.Store(true)
					} else {
						fail(err)
					}
				}
			}
		}()
	}
	for i := range p.parts {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	e.events.Record(obs.EventScanFinish, "index %s: %d partitions done in %s (err=%v)",
		p.opts.Index.Name, len(p.parts), time.Since(t0).Round(time.Microsecond), firstErr)
	root.End()
	return firstErr
}

// consumeNDPPage dispatches on what the Page Store returned.
func (e *Engine) consumeNDPPage(s *scanState, pg *page.Page) error {
	switch {
	case pg.IsNDPEmpty():
		return nil
	case !pg.IsNDP():
		// Resource-control skip (§IV-D2): a regular page image; the
		// frontend completes the NDP processing.
		e.Metrics.SkippedCompleted.Add(1)
		return e.consumeRegularAsNDP(s, pg)
	}
	e.Metrics.NDPPagesConsumed.Add(1)
	var iterErr error
	pg.Iter(func(rec page.Record) bool {
		switch rec.Type {
		case page.RecOrdinary:
			// Ambiguous (or unfiltered) record: full frontend pipeline.
			key, rowBytes, err := page.SplitLeafPayload(rec.Payload)
			if err != nil {
				iterErr = err
				return false
			}
			if err := e.processFullRecord(s, rec, key, rowBytes); err != nil {
				iterErr = err
				return false
			}
		case page.RecNDPProjection:
			// Already filtered, projected, and visible.
			_, rowBytes, err := page.SplitLeafPayload(rec.Payload)
			if err != nil {
				iterErr = err
				return false
			}
			row := s.outRow
			if row == nil {
				row = make(types.Row, s.proc.OutSchema().Len())
			}
			if _, err := types.DecodeRow(rowBytes, s.proc.OutSchema(), row); err != nil {
				iterErr = err
				return false
			}
			e.Metrics.RowsEmitted.Add(1)
			if err := s.emit(row, nil); err != nil {
				iterErr = err
				return false
			}
		case page.RecNDPAggregate:
			_, row, states, err := s.proc.DecodeAggRecord(rec.Payload)
			if err != nil {
				iterErr = err
				return false
			}
			e.Metrics.AggMergesSQL.Add(1)
			e.Metrics.RowsEmitted.Add(1)
			if err := s.emit(row, states); err != nil {
				iterErr = err
				return false
			}
		default:
			iterErr = fmt.Errorf("engine: unexpected record type %d in NDP page %d", rec.Type, pg.ID())
			return false
		}
		return true
	})
	return iterErr
}

// consumeRegularAsNDP runs the full frontend pipeline over a regular page
// image (skipped page or buffer-pool copy).
func (e *Engine) consumeRegularAsNDP(s *scanState, pg *page.Page) error {
	var iterErr error
	pg.Iter(func(rec page.Record) bool {
		key, rowBytes, err := page.SplitLeafPayload(rec.Payload)
		if err != nil {
			iterErr = err
			return false
		}
		if err := e.processFullRecord(s, rec, key, rowBytes); err != nil {
			iterErr = err
			return false
		}
		return true
	})
	return iterErr
}
