package engine

import (
	"fmt"
	"sort"

	"taurus/internal/btree"
	"taurus/internal/types"
	"taurus/internal/wal"
)

// catalogCols converts a schema into the wal-level catalog columns.
func catalogCols(schema *types.Schema) []wal.CatalogCol {
	out := make([]wal.CatalogCol, schema.Len())
	for i, c := range schema.Cols {
		out[i] = wal.CatalogCol{
			Name: c.Name, Kind: uint8(c.Kind),
			FixedLen: uint32(c.FixedLen), AvgLen: uint32(c.AvgLen),
			NotNull: c.NotNull,
		}
	}
	return out
}

// schemaOf converts catalog columns back into a schema.
func schemaOf(cols []wal.CatalogCol) *types.Schema {
	out := make([]types.Column, len(cols))
	for i, c := range cols {
		out[i] = types.Column{
			Name: c.Name, Kind: types.Kind(c.Kind),
			FixedLen: int(c.FixedLen), AvgLen: int(c.AvgLen),
			NotNull: c.NotNull,
		}
	}
	return types.NewSchema(out...)
}

// logCatalog writes a durable catalog record through the SAL,
// returning its assigned LSN.
func (e *Engine) logCatalog(entry *wal.CatalogEntry) (uint64, error) {
	return e.salc.Write(&wal.Record{Type: wal.TypeCatalog, Payload: entry.EncodeCatalog(nil)})
}

// RecoveryStats summarizes what Recover rebuilt.
type RecoveryStats struct {
	Tables  int
	Indexes int
	// Records is the total log records scanned.
	Records int
	// MaxLSN, MaxTrxID are the highest sequence numbers observed; the
	// caller resumes the SAL's LSN allocator and the transaction
	// manager above them.
	MaxLSN   uint64
	MaxTrxID uint64
}

// RootRecord names one index's current B+ tree root for a checkpoint.
type RootRecord struct {
	IndexID uint64
	PageID  uint64
	// Level is the root page's B+ tree level (height - 1).
	Level uint16
}

// RecoveryBase is a checkpointed starting point for recovery: the data
// dictionary and allocator state as of a checkpoint, so RecoverFrom
// only needs the log tail above it instead of the whole history. It is
// produced by CheckpointBase and persisted by the caller (the embedded
// deployment stores it in the frontend's pstore meta checkpoint).
type RecoveryBase struct {
	// Catalog holds encoded wal.CatalogEntry payloads in creation order
	// (tables before their secondary indexes).
	Catalog [][]byte
	// Roots holds each index's root at checkpoint time; a FormatPage
	// record in the tail overrides it only by formatting a higher root
	// (a root split after the checkpoint).
	Roots []RootRecord
	// Allocator high-water marks at checkpoint time.
	MaxLSN     uint64
	MaxTrxID   uint64
	MaxPageID  uint64
	MaxIndexID uint64
}

// CheckpointBase snapshots the engine's dictionary and allocators for a
// checkpoint. The MaxLSN field is left to the caller (the SAL owns the
// LSN allocator).
func (e *Engine) CheckpointBase() RecoveryBase {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var base RecoveryBase
	base.MaxTrxID = e.txm.Current()
	base.MaxPageID = e.nextPageID.Load()
	base.MaxIndexID = e.nextIndex - 1
	// Deterministic order: tables by primary index ID (creation order),
	// each followed by its secondaries.
	tables := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Primary.ID < tables[j].Primary.ID })
	addRoot := func(idx *Index) {
		base.Roots = append(base.Roots, RootRecord{
			IndexID: idx.ID, PageID: idx.Tree.Root(), Level: uint16(idx.Tree.Height() - 1),
		})
	}
	for _, t := range tables {
		entry := &wal.CatalogEntry{
			Kind: wal.CatalogCreateTable, IndexID: t.Primary.ID,
			Table: t.Name, Cols: catalogCols(t.Schema), Ords: t.PKCols,
		}
		base.Catalog = append(base.Catalog, entry.EncodeCatalog(nil))
		addRoot(t.Primary)
		secs := append([]*Index(nil), t.Secondaries...)
		sort.Slice(secs, func(i, j int) bool { return secs[i].ID < secs[j].ID })
		for _, idx := range secs {
			entry := &wal.CatalogEntry{
				Kind: wal.CatalogCreateIndex, IndexID: idx.ID,
				Table: t.Name, Index: idx.Name,
				Ords: idx.TableOrds[:len(idx.TableOrds)-len(t.PKCols)],
			}
			base.Catalog = append(base.Catalog, entry.EncodeCatalog(nil))
			addRoot(idx)
		}
	}
	return base
}

// Recover rebuilds the engine's data dictionary from a durable log: the
// catalog records re-register tables and secondary indexes, and each
// index's current B+ tree root is located from the FormatPage records
// (the unique page formatted at the index's highest level — a root
// split always formats the new, higher root after its children, so at
// equal level the earliest page formatted wins, which also tolerates a
// crash between a root split's halves). ID allocators (page, index,
// transaction) resume above everything the log mentions. The page
// images themselves are rebuilt separately, by replaying the same
// records through the Page Store apply path (sal.Replay).
//
// Recover must run on a freshly created engine, before any DDL.
func (e *Engine) Recover(recs []wal.Record) (RecoveryStats, error) {
	return e.RecoverFrom(nil, recs)
}

// RecoverFrom rebuilds the dictionary from a checkpoint base plus the
// log tail above it. With a nil base it degenerates to full-log
// recovery (Recover). The two may overlap: a tail record that
// re-registers an entry already in the base (the corrupt-checkpoint
// fallback replays from LSN 0 under a valid base) is skipped by index
// ID, and a base root loses to a tail FormatPage only at a strictly
// higher level — the base reflects checkpoint-time state, so at equal
// level it is the newer fact.
func (e *Engine) RecoverFrom(base *RecoveryBase, recs []wal.Record) (RecoveryStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var st RecoveryStats
	if len(e.tables) > 0 {
		return st, fmt.Errorf("engine: Recover on a non-empty engine")
	}
	type rootInfo struct {
		level  uint16
		pageID uint64
	}
	roots := make(map[uint64]rootInfo)
	var entries []*wal.CatalogEntry
	var maxPage, maxTrx, maxIndex uint64
	seenEntry := make(map[uint64]bool)
	if base != nil {
		st.MaxLSN = base.MaxLSN
		maxPage, maxTrx, maxIndex = base.MaxPageID, base.MaxTrxID, base.MaxIndexID
		for _, r := range base.Roots {
			roots[r.IndexID] = rootInfo{level: r.Level, pageID: r.PageID}
		}
		for _, payload := range base.Catalog {
			entry, err := wal.DecodeCatalog(payload)
			if err != nil {
				return st, fmt.Errorf("engine: checkpointed catalog: %w", err)
			}
			entries = append(entries, entry)
			seenEntry[entry.IndexID] = true
			if entry.IndexID > maxIndex {
				maxIndex = entry.IndexID
			}
		}
	}
	for i := range recs {
		rec := &recs[i]
		st.Records++
		if rec.LSN > st.MaxLSN {
			st.MaxLSN = rec.LSN
		}
		if rec.PageID > maxPage {
			maxPage = rec.PageID
		}
		if rec.TrxID > maxTrx {
			maxTrx = rec.TrxID
		}
		switch rec.Type {
		case wal.TypeCatalog:
			entry, err := wal.DecodeCatalog(rec.Payload)
			if err != nil {
				return st, fmt.Errorf("engine: recovering catalog: %w", err)
			}
			if entry.Kind == wal.CatalogBarrier {
				// Recovery barriers carry a void-from LSN in IndexID,
				// not an index id; they define nothing.
				continue
			}
			if seenEntry[entry.IndexID] {
				continue // already in the checkpoint base
			}
			entries = append(entries, entry)
			seenEntry[entry.IndexID] = true
			if entry.IndexID > maxIndex {
				maxIndex = entry.IndexID
			}
		case wal.TypeFormatPage:
			if rec.IndexID > maxIndex {
				maxIndex = rec.IndexID
			}
			ri, ok := roots[rec.IndexID]
			if !ok || rec.Level > ri.level {
				roots[rec.IndexID] = rootInfo{level: rec.Level, pageID: rec.PageID}
			}
		}
	}
	e.nextPageID.Store(maxPage)
	if maxIndex >= e.nextIndex {
		e.nextIndex = maxIndex + 1
	}
	e.txm.Advance(maxTrx)
	st.MaxTrxID = maxTrx

	// treeFor attaches to the recovered root, or creates a fresh tree if
	// the log holds the catalog entry but no page yet (a crash between a
	// DDL's catalog record and its root FormatPage).
	treeFor := func(indexID uint64) (*btree.Tree, error) {
		if ri, ok := roots[indexID]; ok {
			return btree.Attach(pager{e}, indexID, ri.pageID, int(ri.level)+1), nil
		}
		return btree.Create(pager{e}, indexID)
	}
	for _, entry := range entries {
		switch entry.Kind {
		case wal.CatalogCreateTable:
			if _, ok := e.tables[entry.Table]; ok {
				return st, fmt.Errorf("engine: recovered table %q twice", entry.Table)
			}
			schema := schemaOf(entry.Cols)
			for _, o := range entry.Ords {
				if o < 0 || o >= schema.Len() {
					return st, fmt.Errorf("engine: recovered table %q: bad pk ordinal %d", entry.Table, o)
				}
			}
			tree, err := treeFor(entry.IndexID)
			if err != nil {
				return st, err
			}
			ords := make([]int, schema.Len())
			for i := range ords {
				ords[i] = i
			}
			primary := &Index{
				ID: entry.IndexID, Name: entry.Table + "_pk", Table: entry.Table,
				Schema: schema, KeyCols: entry.Ords, TableOrds: ords,
				Primary: true, Tree: tree,
			}
			t := &Table{Name: entry.Table, Schema: schema, PKCols: entry.Ords, Primary: primary}
			e.tables[entry.Table] = t
			e.indexes[entry.IndexID] = primary
			st.Tables++
		case wal.CatalogCreateIndex:
			t, ok := e.tables[entry.Table]
			if !ok {
				return st, fmt.Errorf("engine: recovered index %q for unknown table %q", entry.Index, entry.Table)
			}
			ords := append(append([]int(nil), entry.Ords...), t.PKCols...)
			idxCols := make([]types.Column, len(ords))
			for i, o := range ords {
				if o < 0 || o >= t.Schema.Len() {
					return st, fmt.Errorf("engine: recovered index %q: bad ordinal %d", entry.Index, o)
				}
				idxCols[i] = t.Schema.Cols[o]
			}
			keyCols := make([]int, len(ords))
			for i := range keyCols {
				keyCols[i] = i
			}
			tree, err := treeFor(entry.IndexID)
			if err != nil {
				return st, err
			}
			idx := &Index{
				ID: entry.IndexID, Name: entry.Index, Table: entry.Table,
				Schema: types.NewSchema(idxCols...), KeyCols: keyCols,
				TableOrds: ords, Primary: false, Tree: tree,
			}
			t.Secondaries = append(t.Secondaries, idx)
			e.indexes[entry.IndexID] = idx
			st.Indexes++
		}
	}
	return st, nil
}

// HasIndex reports whether an index id is registered (the read
// replica's DDL tailer uses it to skip entries it already attached).
func (e *Engine) HasIndex(id uint64) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.indexes[id]
	return ok
}

// AttachTable registers a table tailed from the master's log on a read
// replica: the catalog entry supplies the definition, root the current
// B+ tree root (already existing in the shared Page Stores — nothing is
// created). Idempotent by index id.
func (e *Engine) AttachTable(entry *wal.CatalogEntry, root RootRecord) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.indexes[entry.IndexID]; ok {
		return nil
	}
	if _, ok := e.tables[entry.Table]; ok {
		return fmt.Errorf("engine: attached table %q twice", entry.Table)
	}
	schema := schemaOf(entry.Cols)
	for _, o := range entry.Ords {
		if o < 0 || o >= schema.Len() {
			return fmt.Errorf("engine: attached table %q: bad pk ordinal %d", entry.Table, o)
		}
	}
	tree := btree.Attach(pager{e}, entry.IndexID, root.PageID, int(root.Level)+1)
	ords := make([]int, schema.Len())
	for i := range ords {
		ords[i] = i
	}
	primary := &Index{
		ID: entry.IndexID, Name: entry.Table + "_pk", Table: entry.Table,
		Schema: schema, KeyCols: entry.Ords, TableOrds: ords,
		Primary: true, Tree: tree,
	}
	e.tables[entry.Table] = &Table{Name: entry.Table, Schema: schema, PKCols: entry.Ords, Primary: primary}
	e.indexes[entry.IndexID] = primary
	if entry.IndexID >= e.nextIndex {
		e.nextIndex = entry.IndexID + 1
	}
	return nil
}

// AttachIndex registers a tailed secondary index on a read replica (see
// AttachTable). The owning table must already be attached.
func (e *Engine) AttachIndex(entry *wal.CatalogEntry, root RootRecord) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.indexes[entry.IndexID]; ok {
		return nil
	}
	t, ok := e.tables[entry.Table]
	if !ok {
		return fmt.Errorf("engine: attached index %q for unknown table %q", entry.Index, entry.Table)
	}
	ords := append(append([]int(nil), entry.Ords...), t.PKCols...)
	idxCols := make([]types.Column, len(ords))
	for i, o := range ords {
		if o < 0 || o >= t.Schema.Len() {
			return fmt.Errorf("engine: attached index %q: bad ordinal %d", entry.Index, o)
		}
		idxCols[i] = t.Schema.Cols[o]
	}
	keyCols := make([]int, len(ords))
	for i := range keyCols {
		keyCols[i] = i
	}
	tree := btree.Attach(pager{e}, entry.IndexID, root.PageID, int(root.Level)+1)
	idx := &Index{
		ID: entry.IndexID, Name: entry.Index, Table: entry.Table,
		Schema: types.NewSchema(idxCols...), KeyCols: keyCols,
		TableOrds: ords, Primary: false, Tree: tree,
	}
	t.Secondaries = append(t.Secondaries, idx)
	e.indexes[entry.IndexID] = idx
	if entry.IndexID >= e.nextIndex {
		e.nextIndex = entry.IndexID + 1
	}
	return nil
}

// AdvanceRoot re-binds an index to a higher root tailed from the log (a
// root split on the master). A FormatPage at a level below the current
// height is an interior/leaf page, not a new root; it is ignored.
// Returns whether the root moved.
func (e *Engine) AdvanceRoot(indexID, pageID uint64, level uint16) bool {
	e.mu.RLock()
	idx, ok := e.indexes[indexID]
	e.mu.RUnlock()
	if !ok {
		return false
	}
	if int(level)+1 <= idx.Tree.Height() {
		return false
	}
	idx.Tree.SetRoot(pageID, int(level)+1)
	return true
}

// Tables lists the registered table names (recovery reporting, stats
// refresh after restart).
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for name := range e.tables {
		out = append(out, name)
	}
	return out
}
