// Package replica implements the read-replica frontend tier: "Read
// replicas ... serve read-only queries from the same Log Stores and
// Page Stores as the master" (§II). A replica does not accept writes
// and owns no write pipeline; instead it tails the Log Stores to learn
// what the master logged, polls the Page Stores' per-slice applied
// frontiers, and advances a replica-visible LSN — the largest durable
// prefix every touched slice has confirmed applied. Reads are served
// from the shared Page Stores at that LSN through the regular engine
// read paths (B+ tree traversal, buffer pool, NDP batch reads), so a
// SELECT on a replica sees a consistent snapshot that trails the
// master by the replication lag, never a torn or non-durable state.
//
// The tailer learns three things from the log stream:
//
//   - which pages changed (cached copies older than the new visible LSN
//     are evicted, so the next read refetches the fresh image);
//   - catalog records — DDL the master ran after the replica opened —
//     which attach new tables/indexes to the replica's engine;
//   - FormatPage records at a higher B+ tree level, which announce root
//     splits and re-bind the replica's tree to the new root.
//
// Advances are driven by LSN-advance notifications from the master's
// SAL (cluster.LSNAdvanceReq, best effort) plus a poll interval
// fallback, so a replica works both embedded next to its master and as
// a standalone process tailing remote storage nodes over TCP.
//
// Two distribution modes exist. The legacy pull mode polls: MsgLogRead
// against the Log Stores and MsgSliceLSN against every Page Store, per
// refresh cycle, per replica — a per-replica RPC tax that grows with
// the fleet. Push mode (Config.Subscribe) inverts the flow: the replica
// subscribes once (MsgLogSubscribe) and a Log Store streams framed
// record batches (MsgLogBatch) that piggyback the master's durable
// watermark and the per-slice applied frontier, so the steady-state
// poll rate is zero and the master's distribution cost stays flat as
// replicas are added. A push replica also pins a version floor on the
// Page Stores (MsgVersionPin) so a lagging snapshot read is never
// dropped by version retention, and rebases on the master's checkpoint
// when log GC overran a detached tail.
package replica

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/engine"
	"taurus/internal/health"
	"taurus/internal/obs"
	"taurus/internal/sal"
	"taurus/internal/wal"
)

// Config describes the shared storage cluster from the replica's
// perspective. PageStores, ReplicationFactor, and PagesPerSlice must
// match the master's SAL configuration: the replica computes the same
// round-robin slice placement to route page reads.
type Config struct {
	Transport         cluster.Transport
	Tenant            uint32
	LogStores         []string
	PageStores        []string
	ReplicationFactor int
	PagesPerSlice     uint64
	// Plugin names the NDP plugin for batch-read descriptors (default
	// "innodb", matching the master's SAL).
	Plugin string
	// RefreshInterval is the poll fallback cadence (default 25ms);
	// master notifications usually refresh sooner.
	RefreshInterval time.Duration
	// MaxTailRecords bounds one Log Store tail request (default 4096).
	MaxTailRecords int
	// Metrics, when non-nil, receives the replica's lag gauges and
	// catch-up/refresh histograms; Name labels them when several
	// replicas share one registry.
	Metrics *obs.Registry
	Name    string
	// Tracer, when non-nil, samples replica.refresh root spans so the
	// MsgLogRead/MsgSliceLSN traffic of a tail cycle is attributable to
	// the loop that issued it. nil disables tracing.
	Tracer *obs.Tracer
	// Events, when non-nil, records structural events (resyncs, tailed
	// catalog barriers) in the flight recorder. nil is inert.
	Events *obs.EventRing
	// DisableLeastLoadedReads pins scan sub-batch routing to plain
	// round-robin instead of the least-loaded replica pick.
	DisableLeastLoadedReads bool
	// Subscribe selects push mode: instead of pull-tailing, the replica
	// subscribes to a Log Store's push stream and consumes MsgLogBatch
	// frames addressed to Node. Requires Node to be registered as a
	// cluster.Handler reachable by the Log Stores.
	Subscribe bool
	// Node is the cluster address this replica answers on — the push
	// stream's destination. Required when Subscribe is set.
	Node string
	// Window is the stream's flow-control window in frames (0 uses the
	// Log Store default): how far the store lets this replica fall
	// behind before disconnecting it.
	Window uint32
	// PinStride re-pins the Page Store version floor every this many
	// records of visible-LSN advance (default 256). Push mode only.
	PinStride uint64
	// LoadCheckpoint, when set, rebases the replica on the master's
	// latest checkpoint after log GC overran its detached tail: the hook
	// re-attaches DDL the replica missed and returns the checkpoint's
	// applied LSN. nil degrades to the pull tailer's blind reset at the
	// truncation watermark.
	LoadCheckpoint func() (uint64, error)
}

// Stats is the replica's observable state.
type Stats struct {
	// VisibleLSN is the snapshot reads are currently served at;
	// DurableLSN is the master's durable watermark as far as the
	// replica knows (notified, or inferred from applied frontiers);
	// TailedLSN is the contiguous log prefix the replica has consumed.
	VisibleLSN uint64
	DurableLSN uint64
	TailedLSN  uint64
	// LagRecords is DurableLSN - VisibleLSN (LSNs are dense, so this
	// counts records); LagBytes is the encoded size of the tailed
	// records not yet visible.
	LagRecords uint64
	LagBytes   uint64
	// Refreshes counts tail/advance cycles; Notifies counts master
	// LSN-advance notifications received; RecordsTailed counts log
	// records consumed.
	Refreshes     uint64
	Notifies      uint64
	RecordsTailed uint64
	// PagesInvalidated counts cached pages evicted because records
	// covering them became visible; TablesAttached and RootAdvances
	// count DDL tailed from the master; Resyncs counts hard resets
	// after the master's log GC overran the replica's tail.
	PagesInvalidated uint64
	TablesAttached   uint64
	RootAdvances     uint64
	Resyncs          uint64
	// StreamBatches counts pushed stream frames received (push mode);
	// CkptResyncs counts checkpoint rebases after log GC overran a
	// detached tail; Subscribed reports an active push stream.
	StreamBatches uint64
	CkptResyncs   uint64
	Subscribed    bool
}

// ddlEvent is a catalog or FormatPage record awaiting visibility.
type ddlEvent struct {
	lsn uint64
	rec wal.Record
}

// lsnSize tracks one pending record's encoded size for the lag-bytes
// gauge.
type lsnSize struct {
	lsn  uint64
	size int
}

// tailRec is one tailed record with its encoded size.
type tailRec struct {
	rec  wal.Record
	size int
}

// Replica is one read-replica frontend's storage view. It implements
// engine.ReadView (reads at the visible LSN) and cluster.Handler
// (LSN-advance notifications from the master's SAL).
type Replica struct {
	cfg Config

	eng      *engine.Engine
	onAttach func(table string)

	visible  atomic.Uint64
	notified atomic.Uint64 // highest master-notified durable LSN
	rr       atomic.Uint64 // round-robin read replica selector (point reads)

	// router + fanOut serve the NDP scan read path (least-loaded
	// sub-batch routing, retry, straggler hedging) — the replica's own
	// trackers, since its load profile differs from the master's.
	router *sal.ReadRouter
	fanOut *sal.FanOut

	// refreshMu serializes whole refresh cycles (background loop and
	// on-demand Refresh calls). refreshTC (guarded by refreshMu) is the
	// current cycle's sampled trace context, attached to every storage
	// RPC the cycle issues; zero when the cycle is unsampled.
	refreshMu sync.Mutex
	refreshTC obs.TraceContext

	// mu guards the tail state.
	mu           sync.Mutex
	tailed       uint64              // contiguous consumed log prefix
	buf          map[uint64]tailRec  // out-of-order tailed records
	slicePending map[uint32][]uint64 // slice → sorted pending LSNs
	pagePending  map[uint64][]uint64 // page → sorted pending LSNs
	ddlQ         []ddlEvent
	pendingDDL   map[uint64]*wal.CatalogEntry // index id → entry awaiting root
	byteQ        []lsnSize
	pendingBytes uint64
	maxTrx       uint64
	// frontier is the pushed per-slice applied frontier (push mode): the
	// master SAL reports a slice here only after every Page Store
	// replica of it confirmed the apply.
	frontier map[uint32]uint64

	// Push-mode stream state: subscribed flags an active stream;
	// lastBatch is the UnixNano arrival of the newest frame (watchdog
	// input); subSeq rotates the Log Store choice across (re)subscribes;
	// pinned is the last version-pin LSN sent to the Page Stores.
	subscribed atomic.Bool
	lastBatch  atomic.Int64
	subSeq     atomic.Uint64
	pinned     atomic.Uint64

	// health answers MsgPing/MsgHealthReport; nil answers pings with an
	// empty OK report. Armed by SetHealth.
	health *health.Monitor

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	stats struct {
		refreshes        atomic.Uint64
		notifies         atomic.Uint64
		recordsTailed    atomic.Uint64
		pagesInvalidated atomic.Uint64
		tablesAttached   atomic.Uint64
		rootAdvances     atomic.Uint64
		resyncs          atomic.Uint64
		lagBytes         atomic.Uint64
		durableFloor     atomic.Uint64
		streamBatches    atomic.Uint64
		ckptResyncs      atomic.Uint64
	}

	// Optional instruments, armed when cfg.Metrics is set; nil is inert.
	mRefresh *obs.Histogram
	mCatchup *obs.Histogram
}

// New validates the config and returns a stopped replica; call Bind,
// then Start.
func New(cfg Config) (*Replica, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("replica: transport required")
	}
	if len(cfg.LogStores) == 0 || len(cfg.PageStores) == 0 {
		return nil, fmt.Errorf("replica: log and page stores required")
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.ReplicationFactor > len(cfg.PageStores) {
		cfg.ReplicationFactor = len(cfg.PageStores)
	}
	if cfg.PagesPerSlice == 0 {
		cfg.PagesPerSlice = sal.DefaultPagesPerSlice
	}
	if cfg.Plugin == "" {
		cfg.Plugin = "innodb"
	}
	if cfg.RefreshInterval <= 0 {
		cfg.RefreshInterval = 25 * time.Millisecond
	}
	if cfg.MaxTailRecords <= 0 {
		cfg.MaxTailRecords = 4096
	}
	if cfg.Subscribe && cfg.Node == "" {
		return nil, fmt.Errorf("replica: Subscribe requires Node (the registered cluster address)")
	}
	if cfg.PinStride == 0 {
		cfg.PinStride = 256
	}
	r := &Replica{
		cfg:          cfg,
		buf:          make(map[uint64]tailRec),
		slicePending: make(map[uint32][]uint64),
		pagePending:  make(map[uint64][]uint64),
		pendingDDL:   make(map[uint64]*wal.CatalogEntry),
		frontier:     make(map[uint32]uint64),
		kick:         make(chan struct{}, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	r.router = sal.NewReadRouter()
	r.router.SetLeastLoaded(!cfg.DisableLeastLoadedReads)
	r.fanOut = &sal.FanOut{
		Transport: cfg.Transport,
		Tenant:    cfg.Tenant,
		Plugin:    cfg.Plugin,
		SliceOf:   r.SliceOf,
		NodesFor: func(sliceID uint32, ids []uint64) ([]string, error) {
			// No pre-read wait: the snapshot LSN is already proven
			// applied everywhere.
			return r.placement(sliceID), nil
		},
		Router: r.router,
		Events: cfg.Events,
	}
	r.registerMetrics(cfg.Metrics, cfg.Name)
	if cfg.Metrics != nil {
		role := cfg.Name
		if role == "" {
			role = "replica"
		}
		r.router.RegisterMetrics(cfg.Metrics, role)
	}
	return r, nil
}

// Bind attaches the replica to its engine. onAttach (optional) runs
// after a tailed CREATE TABLE is attached — the embedded deployment
// refreshes optimizer statistics there. Must be called before Start.
func (r *Replica) Bind(eng *engine.Engine, onAttach func(table string)) {
	r.eng = eng
	r.onAttach = onAttach
}

// Start positions the tail at startLSN (a checkpoint watermark the
// bootstrap already covers, or 0 for a full-log bootstrap), refreshes
// until the visible LSN reaches catchUpTo (the master's durable
// watermark at open time, so the replica opens serving everything
// committed before it; pass 0 to skip), and launches the background
// tailer.
func (r *Replica) Start(startLSN, catchUpTo uint64) error {
	if r.eng == nil {
		return fmt.Errorf("replica: Start before Bind")
	}
	r.mu.Lock()
	r.tailed = startLSN
	r.mu.Unlock()
	r.visible.Store(startLSN)
	// CAS-max: the master's SAL may have pushed a (higher) watermark
	// notification between registration and here.
	r.noteDurable(startLSN)
	var t0 time.Time
	if r.mCatchup != nil {
		t0 = time.Now()
	}
	for {
		if err := r.Refresh(); err != nil {
			return err
		}
		if r.visible.Load() >= catchUpTo {
			break
		}
		// Waiting on the master's asynchronous Page Store applies; they
		// complete at replica-apply speed, independent of new writes.
		time.Sleep(time.Millisecond)
	}
	if r.mCatchup != nil {
		r.mCatchup.ObserveDuration(time.Since(t0))
	}
	go r.loop()
	return nil
}

// Close stops the background tailer and, in push mode, detaches from
// the stream and clears this replica's Page Store version pins (both
// best effort — the hub also drops us on the first failed push, and a
// stale pin is bounded by the stores' hard version cap).
func (r *Replica) Close() {
	close(r.stop)
	<-r.done
	if r.cfg.Subscribe {
		for _, node := range r.cfg.LogStores {
			r.cfg.Transport.Call(node, &cluster.LogUnsubscribeReq{Tenant: r.cfg.Tenant, Node: r.cfg.Node})
		}
		r.pinAll(0)
	}
}

// SliceOf maps a page to its slice (the master's rule).
func (r *Replica) SliceOf(pageID uint64) uint32 {
	return uint32(pageID / r.cfg.PagesPerSlice)
}

// placement computes the slice's replica set with the master SAL's
// round-robin rule (shared: sal.ReplicaSet). The replica never creates
// slices — it only reads ones the master already provisioned.
func (r *Replica) placement(sliceID uint32) []string {
	return sal.ReplicaSet(r.cfg.PageStores, r.cfg.ReplicationFactor, sliceID)
}

func (r *Replica) readNode(nodes []string) string {
	return nodes[int(r.rr.Add(1))%len(nodes)]
}

// VisibleLSN implements engine.ReadView.
func (r *Replica) VisibleLSN() uint64 { return r.visible.Load() }

// ReadPage implements engine.ReadView: one page image at the given LSN
// from a Page Store replica of its slice.
func (r *Replica) ReadPage(pageID, lsn uint64) ([]byte, error) {
	sliceID := r.SliceOf(pageID)
	resp, err := r.cfg.Transport.Call(r.readNode(r.placement(sliceID)), &cluster.ReadPageReq{
		Tenant: r.cfg.Tenant, SliceID: sliceID, PageID: pageID, LSN: lsn,
	})
	if err != nil {
		return nil, err
	}
	return resp.(*cluster.PageResp).Page, nil
}

// BatchRead implements engine.ReadView: the NDP batch read, split into
// per-slice sub-batches dispatched concurrently (the SAL's shared
// §VI-2 fan-out), at the replica's snapshot LSN. No pre-read wait: the
// snapshot LSN is already proven applied everywhere.
func (r *Replica) BatchRead(pageIDs []uint64, lsn uint64, desc []byte) (*sal.BatchResult, error) {
	return r.fanOut.BatchRead(obs.TraceContext{}, pageIDs, lsn, desc)
}

// BatchReadTraced implements engine.ReadView: BatchRead with the scan's
// trace context riding the sub-batch RPCs.
func (r *Replica) BatchReadTraced(pageIDs []uint64, lsn uint64, desc []byte, tc obs.TraceContext) (*sal.BatchResult, error) {
	return r.fanOut.BatchRead(tc, pageIDs, lsn, desc)
}

// SetLeastLoadedReads toggles least-loaded scan routing at runtime.
func (r *Replica) SetLeastLoadedReads(on bool) { r.router.SetLeastLoaded(on) }

// RouterStats snapshots this replica frontend's scan read router.
func (r *Replica) RouterStats() sal.RouterStats { return r.router.Stats() }

// Handle implements cluster.Handler: LSN-advance notifications from the
// master's SAL (pull mode) and pushed stream frames from a Log Store
// hub (push mode).
func (r *Replica) Handle(req any) (any, error) {
	switch m := req.(type) {
	case *cluster.LSNAdvanceReq:
		r.noteDurable(m.DurableLSN)
		r.stats.notifies.Add(1)
		r.kickLoop()
		return &cluster.Ack{LSN: m.DurableLSN}, nil
	case *cluster.LogBatchReq:
		return r.handleBatch(m)
	case *cluster.PingReq:
		return &cluster.PingResp{Node: r.nodeName(), Role: "replica",
			Seq: m.Seq, Status: r.health.Worst()}, nil
	case *cluster.HealthReportReq:
		return &cluster.HealthReportResp{Report: r.healthReport()}, nil
	default:
		return nil, fmt.Errorf("replica: unsupported request %T", req)
	}
}

// noteDurable CAS-maxes the master durable watermark.
func (r *Replica) noteDurable(lsn uint64) {
	for {
		cur := r.notified.Load()
		if lsn <= cur || r.notified.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// kickLoop nudges the background tailer.
func (r *Replica) kickLoop() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// handleBatch ingests one pushed stream frame: records enter the tail
// buffer (the same dedupe as pull tailing, so replayed or overlapping
// delivery is safe), and the piggybacked durable watermark and applied
// frontier replace this replica's polling. The actual advance runs on
// the tailer goroutine — the sender's RPC returns immediately, so the
// stream's flow-control window measures transport backlog, not apply
// backlog.
func (r *Replica) handleBatch(m *cluster.LogBatchReq) (any, error) {
	r.lastBatch.Store(time.Now().UnixNano())
	r.stats.streamBatches.Add(1)
	if len(m.Recs) > 0 {
		r.ingest(m.Recs)
	}
	r.noteDurable(m.MasterDurableLSN)
	r.mu.Lock()
	for _, e := range m.Frontier {
		if e.AppliedLSN > r.frontier[e.SliceID] {
			r.frontier[e.SliceID] = e.AppliedLSN
		}
	}
	tailed := r.tailed
	r.mu.Unlock()
	if m.TruncatedLSN > tailed {
		// The store GC'd past our tail mid-stream (a gap the
		// subscribe-time check missed); force a resubscribe, which runs
		// the checkpoint-resync path.
		r.subscribed.Store(false)
	}
	r.kickLoop()
	return &cluster.Ack{LSN: tailed}, nil
}

// loop is the background tailer. Pull mode refreshes (tail + poll) on
// master notification or on the poll interval; push mode keeps the
// subscription healthy and advances from pushed state on each frame.
func (r *Replica) loop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.RefreshInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-r.kick:
		case <-t.C:
		}
		if r.cfg.Subscribe {
			r.pushCycle()
		} else {
			r.Refresh() // best effort; next round retries
		}
	}
}

// pushCycle is one push-mode round: advance from pushed state, watch
// the stream's health, resubscribe when it went dead. While detached
// (stream refused or unreachable) it falls back to one pull refresh so
// the replica stays live, and retries the subscription next round.
func (r *Replica) pushCycle() {
	if r.subscribed.Load() {
		r.advance()
		idle := time.Duration(time.Now().UnixNano() - r.lastBatch.Load())
		r.mu.Lock()
		behind := r.notified.Load() > r.tailed
		r.mu.Unlock()
		// Declare the stream dead when frames stop while the master is
		// known to be ahead (fast path), or after a long silent window
		// regardless (catches a store that died while the master idled).
		if (behind && idle > 8*r.cfg.RefreshInterval) || idle > 40*r.cfg.RefreshInterval {
			r.subscribed.Store(false)
		}
	}
	if !r.subscribed.Load() {
		if err := r.subscribe(); err != nil {
			r.Refresh()
			return
		}
		r.advance()
	}
}

// subscribe attaches to one Log Store's push stream, rotating the store
// choice across attempts. A refusal because log GC overran the tail
// rebases on the master's checkpoint, then retries once.
func (r *Replica) subscribe() error {
	store := r.cfg.LogStores[int(r.subSeq.Add(1))%len(r.cfg.LogStores)]
	for attempt := 0; ; attempt++ {
		r.mu.Lock()
		from := r.tailed
		r.mu.Unlock()
		resp, err := r.cfg.Transport.Call(store, &cluster.LogSubscribeReq{
			Tenant: r.cfg.Tenant, Node: r.cfg.Node, FromLSN: from, Window: r.cfg.Window,
		})
		if err != nil {
			return err
		}
		sub := resp.(*cluster.LogSubscribeResp)
		if sub.TruncatedLSN > from {
			if attempt > 0 {
				return fmt.Errorf("replica %s: %s truncated to %d, past the checkpoint rebase at %d",
					r.cfg.Name, store, sub.TruncatedLSN, from)
			}
			r.checkpointResync(sub.TruncatedLSN)
			continue
		}
		// Attached. The ack's durable watermark seeds the floor until the
		// first pushed frame arrives.
		r.noteDurable(sub.DurableLSN)
		r.lastBatch.Store(time.Now().UnixNano())
		r.subscribed.Store(true)
		r.maybeRepin(r.visible.Load())
		return nil
	}
}

// advance runs one push-mode advance cycle under the refresh lock (the
// same serialization Refresh uses). It does not count as a refresh:
// refreshes in push mode measure on-demand cycles only — engine
// retention-miss retries and detached liveness fallbacks.
func (r *Replica) advance() {
	r.refreshMu.Lock()
	var t0 time.Time
	if r.mRefresh != nil {
		t0 = time.Now()
	}
	attached, _ := r.advanceLocked()
	if r.mRefresh != nil {
		r.mRefresh.ObserveDuration(time.Since(t0))
	}
	r.refreshMu.Unlock()
	for _, table := range attached {
		if r.onAttach != nil {
			r.onAttach(table)
		}
	}
}

// maybeRepin re-pins the replica's Page Store version floor when the
// visible LSN advanced a stride past the last pin. The pin keeps the
// version a lagging snapshot read needs alive on the stores, ending the
// refresh-and-retry storms version retention otherwise causes. Push
// mode only; pull replicas keep the retry behaviour.
func (r *Replica) maybeRepin(visible uint64) {
	if !r.cfg.Subscribe || visible == 0 {
		return
	}
	if p := r.pinned.Load(); p != 0 && visible < p+r.cfg.PinStride {
		return
	}
	r.pinAll(visible)
}

// pinAll sends the version pin (or, with 0, the clear) to every Page
// Store, best effort.
func (r *Replica) pinAll(lsn uint64) {
	for _, node := range r.cfg.PageStores {
		r.cfg.Transport.Call(node, &cluster.VersionPinReq{
			Tenant: r.cfg.Tenant, Node: r.cfg.Node, LSN: lsn,
		})
	}
	if lsn > 0 {
		r.pinned.Store(lsn)
	}
}

// checkpointResync rebases the replica after log GC overran its
// detached tail: records in (tailed, truncated] are gone from the Log
// Store, but everything they did is applied and checkpointed on the
// Page Stores. The LoadCheckpoint hook re-attaches DDL the replica
// missed and returns the checkpoint's applied LSN; reads resume at that
// frontier immediately, and the stream resumes above it.
func (r *Replica) checkpointResync(truncated uint64) {
	newTail := truncated
	var ckpt uint64
	if r.cfg.LoadCheckpoint != nil {
		if lsn, err := r.cfg.LoadCheckpoint(); err == nil {
			ckpt = lsn
			if ckpt > newTail {
				newTail = ckpt
			}
		}
	}
	r.resetTail(newTail)
	// CAS-max: everything at or below the checkpoint frontier is applied
	// on every Page Store, so reads may resume there right away.
	for {
		v := r.visible.Load()
		if ckpt <= v || r.visible.CompareAndSwap(v, ckpt) {
			break
		}
	}
	r.stats.ckptResyncs.Add(1)
	r.cfg.Events.Record(obs.EventCheckpointResync,
		"%s: log GC overran detached tail (truncated=%d), rebased on checkpoint applied=%d",
		r.cfg.Name, truncated, ckpt)
}

// Refresh implements engine.ReadView: run one synchronous tail/advance
// cycle. Also the body of the background loop.
func (r *Replica) Refresh() error {
	r.refreshMu.Lock()
	var t0 time.Time
	if r.mRefresh != nil {
		t0 = time.Now()
	}
	// A sampled cycle gets its own root span; the cycle's MsgLogRead and
	// MsgSliceLSN calls carry its context, so cross-node collectors
	// attribute that tail traffic to this loop iteration.
	sp := r.cfg.Tracer.MaybeTrace("replica.refresh")
	r.refreshTC = sp.Context()
	attached, err := r.refreshLocked()
	if sp != nil {
		sp.Annotate("visible=%d", r.visible.Load())
		sp.End()
	}
	r.refreshTC = obs.TraceContext{}
	if r.mRefresh != nil {
		r.mRefresh.ObserveDuration(time.Since(t0))
	}
	r.refreshMu.Unlock()
	// Post-attach callbacks run outside the refresh cycle: they scan
	// the new table at the just-published visible LSN, which can itself
	// trigger a nested Refresh on a retention miss.
	for _, table := range attached {
		if r.onAttach != nil {
			r.onAttach(table)
		}
	}
	return err
}

// refreshLocked is one pull-mode tail/advance cycle: poll the Log
// Stores for records and the Page Stores for applied frontiers, then
// advance. Push-mode replicas run this only on demand — engine
// retention-miss retries, Start's catch-up, and the detached liveness
// fallback. Returns tables attached this cycle (their post-attach
// callbacks run after the lock drops).
func (r *Replica) refreshLocked() ([]string, error) {
	r.stats.refreshes.Add(1)
	if err := r.tail(); err != nil {
		return nil, err
	}
	applied, reached, floor, err := r.pollApplied()
	if err != nil {
		return nil, err
	}
	if n := r.notified.Load(); n > floor {
		floor = n
	}
	// Trust a poll only for slices whose ENTIRE replica set answered: a
	// node that timed out may lag the reported minimum, and a read
	// round-robined to it later would silently serve an older version
	// (the Page Store's at-LSN read has no applied-LSN check). Such a
	// slice just holds the visible LSN until its nodes answer again.
	guard := func(sliceID uint32) bool {
		for _, node := range r.placement(sliceID) {
			if !reached[node] {
				return false
			}
		}
		return true
	}
	return r.advanceCore(applied, guard, floor)
}

// advanceLocked is one push-mode advance cycle: visibility is computed
// from the pushed per-slice frontier and durable watermark — no storage
// RPCs. The pushed frontier needs no reachability guard: the master's
// SAL reports a slice applied only after every Page Store replica of it
// confirmed the apply.
func (r *Replica) advanceLocked() ([]string, error) {
	r.mu.Lock()
	applied := make(map[uint32]uint64, len(r.frontier))
	for sliceID, lsn := range r.frontier {
		applied[sliceID] = lsn
	}
	r.mu.Unlock()
	return r.advanceCore(applied, nil, r.notified.Load())
}

// advanceCore advances the visible LSN from the pending state given a
// per-slice applied frontier and a durable floor, batch-invalidates
// cached pages the advance covered, and applies newly visible DDL.
// guard, when non-nil, vetoes trimming a slice's pending entries (pull
// mode's partial-poll protection).
func (r *Replica) advanceCore(applied map[uint32]uint64, guard func(uint32) bool, floor uint64) ([]string, error) {
	r.stats.durableFloor.Store(floor)

	r.mu.Lock()
	// Drop pending entries the Page Stores have confirmed applied.
	for sliceID, lsns := range r.slicePending {
		min, ok := applied[sliceID]
		if !ok {
			continue
		}
		if guard != nil && !guard(sliceID) {
			continue
		}
		i := sort.Search(len(lsns), func(i int) bool { return lsns[i] > min })
		if i == 0 {
			continue
		}
		if i == len(lsns) {
			delete(r.slicePending, sliceID)
		} else {
			r.slicePending[sliceID] = lsns[i:]
		}
	}
	// The visible LSN is the largest durable prefix with no touched
	// slice still waiting for an apply: everything at or below it is
	// durable AND applied on every replica of every slice it touched.
	candidate := r.tailed
	if floor < candidate {
		candidate = floor
	}
	for _, lsns := range r.slicePending {
		if len(lsns) > 0 && lsns[0]-1 < candidate {
			candidate = lsns[0] - 1
		}
	}
	newVisible := r.visible.Load()
	if candidate > newVisible {
		newVisible = candidate
	}

	// Collect cached pages whose records became visible; they are
	// evicted in one batched pass (one shard lock per shard, not per
	// page) after r.mu drops, so the next read refetches the newer image
	// from the Page Stores. The floor — the highest now-visible record
	// touching the page — also blocks an older in-flight fetch from
	// (re)caching a stale image after this pass.
	var invPages, invFloors []uint64
	for pageID, lsns := range r.pagePending {
		i := sort.Search(len(lsns), func(i int) bool { return lsns[i] > newVisible })
		if i == 0 {
			continue
		}
		invPages = append(invPages, pageID)
		invFloors = append(invFloors, lsns[i-1])
		if i == len(lsns) {
			delete(r.pagePending, pageID)
		} else {
			r.pagePending[pageID] = lsns[i:]
		}
	}
	// Retire the lag-bytes queue below the new snapshot.
	for len(r.byteQ) > 0 && r.byteQ[0].lsn <= newVisible {
		r.pendingBytes -= uint64(r.byteQ[0].size)
		r.byteQ = r.byteQ[1:]
	}
	r.stats.lagBytes.Store(r.pendingBytes)
	maxTrx := r.maxTrx
	// DDL at or below the snapshot attaches now.
	var ddl []ddlEvent
	for len(r.ddlQ) > 0 && r.ddlQ[0].lsn <= newVisible {
		ddl = append(ddl, r.ddlQ[0])
		r.ddlQ = r.ddlQ[1:]
	}
	r.mu.Unlock()

	if len(invPages) > 0 {
		r.eng.Pool().InvalidateBatch(invPages, invFloors)
		r.stats.pagesInvalidated.Add(uint64(len(invPages)))
	}
	// Transactions tailed from the log are committed on the master;
	// advance the ID allocator so their rows are visible to read views.
	r.eng.Txm().Advance(maxTrx)
	r.visible.Store(newVisible)
	r.maybeRepin(newVisible)
	attached, done, derr := r.applyDDL(ddl)
	if derr != nil {
		// Re-queue everything not fully applied so a transient failure
		// cannot permanently lose a table: the next cycle retries.
		r.mu.Lock()
		r.ddlQ = append(append([]ddlEvent(nil), ddl[done:]...), r.ddlQ...)
		r.mu.Unlock()
	}
	return attached, derr
}

// tail pulls new records from every Log Store and consumes the
// contiguous prefix. Polling all stores per cycle lets one store's
// pending lane hole be filled by a sibling that already has the
// record. Acknowledged records live on every Log Store (triplicate
// writes), so one reachable store is enough for the durable prefix —
// an error surfaces only when every store failed.
func (r *Replica) tail() error {
	for {
		progress := false
		reached := 0
		var firstErr error
		for _, node := range r.cfg.LogStores {
			r.mu.Lock()
			after := r.tailed
			r.mu.Unlock()
			resp, err := cluster.CallTraced(r.cfg.Transport, r.refreshTC, node, &cluster.LogReadReq{
				Tenant: r.cfg.Tenant, AfterLSN: after,
				MaxRecords: uint32(r.cfg.MaxTailRecords),
			})
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			reached++
			lr := resp.(*cluster.LogReadResp)
			if lr.TruncatedLSN > after {
				// The master's log GC overran our tail: the records we
				// missed are applied and checkpointed everywhere, but we
				// no longer know which pages they touched. Hard reset —
				// drop the whole page cache and resume above the GC
				// watermark.
				r.resync(lr.TruncatedLSN)
				progress = true
				continue
			}
			if r.ingest(lr.Recs) {
				progress = true
			}
		}
		if reached == 0 {
			return firstErr
		}
		if !progress {
			return nil
		}
	}
}

// resync hard-resets the tail above the GC watermark (pull mode's
// overrun recovery).
func (r *Replica) resync(truncated uint64) {
	if !r.resetTail(truncated) {
		return
	}
	r.cfg.Events.Record(obs.EventReplicaResync, "%s: log GC overran tail, reset to %d, page cache dropped",
		r.cfg.Name, truncated)
}

// resetTail repositions the tail at truncated, dropping buffered and
// pending state at or below it plus the whole page cache (we no longer
// know which pages the missed records touched). Returns false when the
// tail was already past truncated.
func (r *Replica) resetTail(truncated uint64) bool {
	r.mu.Lock()
	if truncated <= r.tailed {
		r.mu.Unlock()
		return false
	}
	r.tailed = truncated
	for lsn := range r.buf {
		if lsn <= truncated {
			delete(r.buf, lsn)
		}
	}
	for sliceID, lsns := range r.slicePending {
		i := sort.Search(len(lsns), func(i int) bool { return lsns[i] > truncated })
		if i == len(lsns) {
			delete(r.slicePending, sliceID)
		} else if i > 0 {
			r.slicePending[sliceID] = lsns[i:]
		}
	}
	r.mu.Unlock()
	r.eng.Pool().Clear()
	r.stats.resyncs.Add(1)
	return true
}

// ingest merges a tailed batch and consumes the contiguous prefix.
// Returns whether the tail advanced or new records were buffered.
func (r *Replica) ingest(encoded []byte) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	progress := false
	buf := encoded
	for len(buf) > 0 {
		rec, n, err := wal.Decode(buf)
		if err != nil {
			break // torn response; next cycle re-reads
		}
		size := n
		buf = buf[n:]
		if rec.LSN <= r.tailed {
			continue
		}
		if _, ok := r.buf[rec.LSN]; ok {
			continue
		}
		r.buf[rec.LSN] = tailRec{rec: rec, size: size}
		progress = true
	}
	// Consume the contiguous prefix. LSNs are dense, so a gap means a
	// record some lane has not delivered to this store yet (a sibling
	// store may fill it this same cycle).
	for {
		tr, ok := r.buf[r.tailed+1]
		if !ok {
			break
		}
		delete(r.buf, r.tailed+1)
		r.tailed++
		progress = true
		// Accounted here (consume order = LSN order) so the lag-bytes
		// queue retires in order even when stores delivered records
		// out of order.
		r.byteQ = append(r.byteQ, lsnSize{lsn: tr.rec.LSN, size: tr.size})
		r.pendingBytes += uint64(tr.size)
		r.consume(tr.rec)
	}
	return progress
}

// consume registers one in-order tailed record in the pending state.
// Caller holds r.mu.
func (r *Replica) consume(rec wal.Record) {
	r.stats.recordsTailed.Add(1)
	if rec.TrxID > r.maxTrx {
		r.maxTrx = rec.TrxID
	}
	if rec.Type == wal.TypeCatalog {
		if entry, err := wal.DecodeCatalog(rec.Payload); err == nil && entry.Kind == wal.CatalogBarrier {
			// A recovery barrier declares [VoidFrom, barrierLSN) a dead
			// epoch: records in it were never acknowledged and no Page
			// Store will ever apply them. Purge them from the pending
			// state or the visible LSN would stall below the void.
			r.cfg.Events.Record(obs.EventCatalogBarrier, "%s: tailed barrier at %d voids [%d,%d)",
				r.cfg.Name, rec.LSN, entry.IndexID, rec.LSN)
			r.purgeVoid(entry.IndexID, rec.LSN)
			return
		}
		r.ddlQ = append(r.ddlQ, ddlEvent{lsn: rec.LSN, rec: rec})
		return
	}
	sliceID := r.SliceOf(rec.PageID)
	r.slicePending[sliceID] = append(r.slicePending[sliceID], rec.LSN)
	// Records are consumed in LSN order, so appends keep both sorted.
	r.pagePending[rec.PageID] = append(r.pagePending[rec.PageID], rec.LSN)
	if rec.Type == wal.TypeFormatPage {
		r.ddlQ = append(r.ddlQ, ddlEvent{lsn: rec.LSN, rec: rec})
	}
}

// purgeVoid drops pending state inside a dead epoch [from, to). Caller
// holds r.mu.
func (r *Replica) purgeVoid(from, to uint64) {
	dead := func(lsn uint64) bool { return lsn >= from && lsn < to }
	for sliceID, lsns := range r.slicePending {
		kept := lsns[:0]
		for _, lsn := range lsns {
			if !dead(lsn) {
				kept = append(kept, lsn)
			}
		}
		if len(kept) == 0 {
			delete(r.slicePending, sliceID)
		} else {
			r.slicePending[sliceID] = kept
		}
	}
	for pageID, lsns := range r.pagePending {
		keptLSNs := lsns[:0]
		for _, lsn := range lsns {
			if !dead(lsn) {
				keptLSNs = append(keptLSNs, lsn)
			}
		}
		if len(keptLSNs) == 0 {
			delete(r.pagePending, pageID)
		} else {
			r.pagePending[pageID] = keptLSNs
		}
	}
	kept := r.ddlQ[:0]
	for _, ev := range r.ddlQ {
		if !dead(ev.lsn) {
			kept = append(kept, ev)
		}
	}
	r.ddlQ = kept
}

// pollApplied queries every Page Store node for per-slice applied LSNs.
// Returns each slice's minimum across the nodes hosting it (records at
// or below it are applied on every replica of the slice) and the
// overall maximum (a proven lower bound on the master's durable
// watermark: the SAL applies a window only after the global durable
// watermark covers it).
func (r *Replica) pollApplied() (map[uint32]uint64, map[string]bool, uint64, error) {
	applied := make(map[uint32]uint64)
	reached := make(map[string]bool, len(r.cfg.PageStores))
	var floor uint64
	var firstErr error
	for _, node := range r.cfg.PageStores {
		resp, err := cluster.CallTraced(r.cfg.Transport, r.refreshTC, node, &cluster.SliceLSNReq{Tenant: r.cfg.Tenant})
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("replica: page store %s: %w", node, err)
			}
			continue
		}
		reached[node] = true
		for _, e := range resp.(*cluster.SliceLSNResp).Slices {
			if cur, ok := applied[e.SliceID]; !ok || e.AppliedLSN < cur {
				applied[e.SliceID] = e.AppliedLSN
			}
			if e.AppliedLSN > floor {
				floor = e.AppliedLSN
			}
		}
	}
	if len(reached) == 0 {
		// No frontier at all: don't advance on nothing.
		return applied, reached, floor, firstErr
	}
	return applied, reached, floor, nil
}

// applyDDL attaches newly visible DDL to the engine: catalog entries
// wait for their root's FormatPage, FormatPage records for known
// indexes advance roots (root splits on the master). Returns tables
// attached (their stats callbacks run later) and how many events were
// fully applied — on error the caller re-queues the rest.
func (r *Replica) applyDDL(events []ddlEvent) ([]string, int, error) {
	var attached []string
	for i, ev := range events {
		switch ev.rec.Type {
		case wal.TypeCatalog:
			entry, err := wal.DecodeCatalog(ev.rec.Payload)
			if err != nil {
				return attached, i, fmt.Errorf("replica: tailed catalog record: %w", err)
			}
			if r.eng.HasIndex(entry.IndexID) {
				continue
			}
			r.mu.Lock()
			r.pendingDDL[entry.IndexID] = entry
			r.mu.Unlock()
		case wal.TypeFormatPage:
			r.mu.Lock()
			entry := r.pendingDDL[ev.rec.IndexID]
			if entry != nil {
				delete(r.pendingDDL, ev.rec.IndexID)
			}
			r.mu.Unlock()
			if entry == nil {
				if r.eng.AdvanceRoot(ev.rec.IndexID, ev.rec.PageID, ev.rec.Level) {
					r.stats.rootAdvances.Add(1)
				}
				continue
			}
			root := engine.RootRecord{IndexID: ev.rec.IndexID, PageID: ev.rec.PageID, Level: ev.rec.Level}
			var err error
			switch entry.Kind {
			case wal.CatalogCreateTable:
				err = r.eng.AttachTable(entry, root)
				if err == nil {
					attached = append(attached, entry.Table)
				}
			case wal.CatalogCreateIndex:
				err = r.eng.AttachIndex(entry, root)
			}
			if err != nil {
				// Restore the consumed catalog entry so the retry sees
				// this FormatPage as the pending root again.
				r.mu.Lock()
				r.pendingDDL[ev.rec.IndexID] = entry
				r.mu.Unlock()
				return attached, i, err
			}
			r.stats.tablesAttached.Add(1)
		}
	}
	return attached, len(events), nil
}

// Stats snapshots the replica's counters.
func (r *Replica) Stats() Stats {
	r.mu.Lock()
	tailed := r.tailed
	r.mu.Unlock()
	st := Stats{
		VisibleLSN:       r.visible.Load(),
		DurableLSN:       r.stats.durableFloor.Load(),
		TailedLSN:        tailed,
		LagBytes:         r.stats.lagBytes.Load(),
		Refreshes:        r.stats.refreshes.Load(),
		Notifies:         r.stats.notifies.Load(),
		RecordsTailed:    r.stats.recordsTailed.Load(),
		PagesInvalidated: r.stats.pagesInvalidated.Load(),
		TablesAttached:   r.stats.tablesAttached.Load(),
		RootAdvances:     r.stats.rootAdvances.Load(),
		Resyncs:          r.stats.resyncs.Load(),
		StreamBatches:    r.stats.streamBatches.Load(),
		CkptResyncs:      r.stats.ckptResyncs.Load(),
		Subscribed:       r.subscribed.Load(),
	}
	if st.DurableLSN > st.VisibleLSN {
		st.LagRecords = st.DurableLSN - st.VisibleLSN
	}
	return st
}
