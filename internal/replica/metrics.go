package replica

import "taurus/internal/obs"

// registerMetrics arms the replica's instruments: visible-LSN lag
// gauges (scrape-time, over the existing atomics) and the
// catch-up/refresh histograms observed by Start and Refresh. No-op when
// reg is nil.
func (r *Replica) registerMetrics(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	if name == "" {
		name = "replica"
	}
	labels := []obs.Label{obs.L("replica", name)}
	r.mRefresh = reg.Histogram("taurus_replica_refresh_seconds",
		"One tail/advance refresh cycle.", nil, labels...)
	r.mCatchup = reg.Histogram("taurus_replica_catchup_seconds",
		"Start-time catch-up to the master's durable watermark.", nil, labels...)
	reg.GaugeFunc("taurus_replica_visible_lsn", "Snapshot LSN reads are served at.",
		func() float64 { return float64(r.visible.Load()) }, labels...)
	reg.GaugeFunc("taurus_replica_lag_records", "Master durable watermark minus visible LSN (LSNs are dense).",
		func() float64 {
			floor, visible := r.stats.durableFloor.Load(), r.visible.Load()
			if floor <= visible {
				return 0
			}
			return float64(floor - visible)
		}, labels...)
	reg.GaugeFunc("taurus_replica_lag_bytes", "Encoded bytes tailed but not yet visible.",
		func() float64 { return float64(r.stats.lagBytes.Load()) }, labels...)
	counter := func(metric, help string, load func() uint64) {
		reg.CounterFunc(metric, help, func() float64 { return float64(load()) }, labels...)
	}
	counter("taurus_replica_refreshes_total", "Tail/advance cycles run.", r.stats.refreshes.Load)
	counter("taurus_replica_notifies_total", "Master LSN-advance notifications received.", r.stats.notifies.Load)
	counter("taurus_replica_records_tailed_total", "Log records consumed from the Log Stores.", r.stats.recordsTailed.Load)
	counter("taurus_replica_pages_invalidated_total", "Cached pages evicted as records became visible.", r.stats.pagesInvalidated.Load)
	counter("taurus_replica_resyncs_total", "Hard resets after log GC overran the tail.", r.stats.resyncs.Load)
	counter("taurus_replica_stream_batches_total", "Pushed stream frames received (push mode).", r.stats.streamBatches.Load)
	counter("taurus_replica_ckpt_resyncs_total", "Checkpoint rebases after log GC overran a detached tail.", r.stats.ckptResyncs.Load)
	reg.GaugeFunc("taurus_replica_subscribed", "1 when attached to a Log Store push stream.",
		func() float64 {
			if r.subscribed.Load() {
				return 1
			}
			return 0
		}, labels...)
}
