package replica

import (
	"fmt"
	"time"

	"taurus/internal/health"
)

// SetHealth attaches the monitor that answers MsgPing status and
// MsgHealthReport. Pair with RegisterHealth, which installs the
// replica's invariant probes on it.
func (r *Replica) SetHealth(m *health.Monitor) { r.health = m }

// nodeName is the replica's cluster identity: the registered push node
// name in push mode, "replica" otherwise.
func (r *Replica) nodeName() string {
	if r.cfg.Node != "" {
		return r.cfg.Node
	}
	return "replica"
}

// healthReport builds the MsgHealthReport payload. Without a monitor it
// still identifies the node.
func (r *Replica) healthReport() health.Report {
	if r.health == nil {
		return health.Report{Node: r.nodeName(), Role: "replica",
			Time: time.Now(), Ready: true}
	}
	return r.health.Report()
}

// Durations a degrading condition must persist before a verdict
// escalates. Time-based, not probe-count-based: evaluation cadence is
// whatever pollers drive (/health, /ready, heartbeat responder, the 1s
// loop), so counting evaluations would shrink the wall-clock window
// under heavy polling.
const (
	lagWarnAfter          = 2 * time.Second
	lagCriticalAfter      = 4 * time.Second
	detachedCriticalAfter = 3 * time.Second
)

// RegisterHealth installs the replica's invariant probes on m.
//
//   - replica.lag (RB-REPLICA-LAG): the visible LSN must chase the
//     master's durable watermark. Lag that keeps growing while the
//     visible LSN stands still means the apply side is wedged, not
//     merely that writes are fast.
//   - replica.stream (RB-REPLICA-STREAM): in push mode the replica
//     should hold an active subscription; detached is a warning while
//     the watchdog resubscribes and critical once it persists.
func (r *Replica) RegisterHealth(m *health.Monitor) {
	var lastLag, lastVisible uint64
	var wedgedSince time.Time
	m.AddProbe(func() health.Check {
		st := r.Stats()
		const name, rb = "replica.lag", "RB-REPLICA-LAG"
		ev := map[string]string{
			"visible_lsn": fmt.Sprintf("%d", st.VisibleLSN),
			"durable_lsn": fmt.Sprintf("%d", st.DurableLSN),
			"lag_records": fmt.Sprintf("%d", st.LagRecords),
			"lag_bytes":   fmt.Sprintf("%d", st.LagBytes),
		}
		wedged := st.LagRecords > 0 && st.LagRecords > lastLag &&
			st.VisibleLSN == lastVisible && lastVisible != 0
		lastLag, lastVisible = st.LagRecords, st.VisibleLSN
		if !wedged {
			wedgedSince = time.Time{}
			return health.Checkf(name, rb, health.StatusOK, ev,
				"visible %d, lag %d records", st.VisibleLSN, st.LagRecords)
		}
		if wedgedSince.IsZero() {
			wedgedSince = time.Now()
		}
		held := time.Since(wedgedSince)
		ev["wedged_for"] = held.Round(time.Millisecond).String()
		switch {
		case held >= lagCriticalAfter:
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"lag grew to %d records with a frozen visible LSN for %s; apply is wedged", st.LagRecords, held.Round(time.Second))
		case held >= lagWarnAfter:
			return health.Checkf(name, rb, health.StatusWarn, ev,
				"lag growing while visible LSN stalls (%s)", held.Round(time.Second))
		}
		return health.Checkf(name, rb, health.StatusOK, ev,
			"visible %d, lag %d records (stalling %s)", st.VisibleLSN, st.LagRecords, held.Round(time.Millisecond))
	})

	var detachedSince time.Time
	m.AddProbe(func() health.Check {
		st := r.Stats()
		const name, rb = "replica.stream", "RB-REPLICA-STREAM"
		if !r.cfg.Subscribe {
			return health.Checkf(name, rb, health.StatusOK, nil, "pull mode")
		}
		ev := map[string]string{
			"subscribed":     fmt.Sprintf("%t", st.Subscribed),
			"stream_batches": fmt.Sprintf("%d", st.StreamBatches),
			"ckpt_resyncs":   fmt.Sprintf("%d", st.CkptResyncs),
		}
		if st.Subscribed {
			detachedSince = time.Time{}
			return health.Checkf(name, rb, health.StatusOK, ev,
				"subscribed, %d frames", st.StreamBatches)
		}
		if detachedSince.IsZero() {
			detachedSince = time.Now()
		}
		held := time.Since(detachedSince)
		ev["detached_for"] = held.Round(time.Millisecond).String()
		if held >= detachedCriticalAfter {
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"push stream detached for %s; resubscription is failing", held.Round(time.Second))
		}
		return health.Checkf(name, rb, health.StatusWarn, ev,
			"push stream detached; watchdog resubscribing")
	})
}
