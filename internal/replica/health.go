package replica

import (
	"fmt"
	"time"

	"taurus/internal/health"
)

// SetHealth attaches the monitor that answers MsgPing status and
// MsgHealthReport. Pair with RegisterHealth, which installs the
// replica's invariant probes on it.
func (r *Replica) SetHealth(m *health.Monitor) { r.health = m }

// nodeName is the replica's cluster identity: the registered push node
// name in push mode, "replica" otherwise.
func (r *Replica) nodeName() string {
	if r.cfg.Node != "" {
		return r.cfg.Node
	}
	return "replica"
}

// healthReport builds the MsgHealthReport payload. Without a monitor it
// still identifies the node.
func (r *Replica) healthReport() health.Report {
	if r.health == nil {
		return health.Report{Node: r.nodeName(), Role: "replica",
			Time: time.Now(), Ready: true}
	}
	return r.health.Report()
}

// RegisterHealth installs the replica's invariant probes on m.
//
//   - replica.lag (RB-REPLICA-LAG): the visible LSN must chase the
//     master's durable watermark. Lag that strictly grows across
//     consecutive probes while the visible LSN stands still means the
//     apply side is wedged, not merely that writes are fast.
//   - replica.stream (RB-REPLICA-STREAM): in push mode the replica
//     should hold an active subscription; detached is a warning while
//     the watchdog resubscribes and critical once it persists.
func (r *Replica) RegisterHealth(m *health.Monitor) {
	var lastLag, lastVisible uint64
	var lagStreak int
	m.AddProbe(func() health.Check {
		st := r.Stats()
		const name, rb = "replica.lag", "RB-REPLICA-LAG"
		ev := map[string]string{
			"visible_lsn": fmt.Sprintf("%d", st.VisibleLSN),
			"durable_lsn": fmt.Sprintf("%d", st.DurableLSN),
			"lag_records": fmt.Sprintf("%d", st.LagRecords),
			"lag_bytes":   fmt.Sprintf("%d", st.LagBytes),
		}
		wedged := st.LagRecords > 0 && st.LagRecords > lastLag &&
			st.VisibleLSN == lastVisible && lastVisible != 0
		if wedged {
			lagStreak++
		} else {
			lagStreak = 0
		}
		lastLag, lastVisible = st.LagRecords, st.VisibleLSN
		switch {
		case lagStreak >= 4:
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"lag grew to %d records with a frozen visible LSN (%d probes); apply is wedged", st.LagRecords, lagStreak)
		case lagStreak >= 2:
			return health.Checkf(name, rb, health.StatusWarn, ev,
				"lag growing while visible LSN stalls (%d probes)", lagStreak)
		}
		return health.Checkf(name, rb, health.StatusOK, ev,
			"visible %d, lag %d records", st.VisibleLSN, st.LagRecords)
	})

	var detachedStreak int
	m.AddProbe(func() health.Check {
		st := r.Stats()
		const name, rb = "replica.stream", "RB-REPLICA-STREAM"
		if !r.cfg.Subscribe {
			return health.Checkf(name, rb, health.StatusOK, nil, "pull mode")
		}
		ev := map[string]string{
			"subscribed":     fmt.Sprintf("%t", st.Subscribed),
			"stream_batches": fmt.Sprintf("%d", st.StreamBatches),
			"ckpt_resyncs":   fmt.Sprintf("%d", st.CkptResyncs),
		}
		if st.Subscribed {
			detachedStreak = 0
			return health.Checkf(name, rb, health.StatusOK, ev,
				"subscribed, %d frames", st.StreamBatches)
		}
		detachedStreak++
		if detachedStreak >= 3 {
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"push stream detached for %d probes; resubscription is failing", detachedStreak)
		}
		return health.Checkf(name, rb, health.StatusWarn, ev,
			"push stream detached; watchdog resubscribing")
	})
}
