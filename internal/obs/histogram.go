package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are exponential (base-2) upper bounds in
// seconds, from 1µs to ~16.8s. 25 finite buckets plus +Inf keeps the
// per-histogram footprint near 200 bytes while resolving both
// microsecond fsyncs and multi-second stalls.
var DefaultLatencyBuckets = ExpBuckets(1e-6, 2, 25)

// DefaultSizeBuckets are exponential (base-4) upper bounds in bytes,
// from 64B to ~1GiB.
var DefaultSizeBuckets = ExpBuckets(64, 4, 13)

// ExpBuckets returns n exponential bucket upper bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a fixed-bucket histogram with atomic bucket counters, a
// running sum, and a running max. Observations are float64s (seconds
// for latency histograms, bytes for size histograms). All methods are
// safe for concurrent use and safe on a nil receiver.
type Histogram struct {
	bounds  []float64 // finite upper bounds, ascending
	buckets []atomic.Uint64
	inf     atomic.Uint64 // count above the last finite bound
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	maxBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram with the given finite upper bounds
// (nil selects DefaultLatencyBuckets). Bounds are sorted defensively.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b))}
}

// Observe records one observation. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records d as seconds. Safe on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Merge folds another histogram's current state into h — bucket counts
// and sums add, max takes the larger — so per-shard or per-node
// histograms can be aggregated into one distribution (the doctor and
// bench reports merge scrapes this way). Both histograms must share the
// same bucket bounds; mismatched shapes are ignored rather than
// producing a corrupt distribution. Merge is linearizable per bucket,
// not across buckets: merging while o is still being observed is safe
// but the folded-in view may split one concurrent observation across a
// snapshot boundary. Safe on nil receiver and nil argument.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || h == o {
		return
	}
	if len(h.bounds) != len(o.bounds) {
		return
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return
		}
	}
	for i := range o.buckets {
		h.buckets[i].Add(o.buckets[i].Load())
	}
	h.inf.Add(o.inf.Load())
	// Fold the shared aggregates through the same CAS discipline
	// Observe uses, so a concurrent scraper never reads a torn sum.
	delta := math.Float64frombits(o.sumBits.Load())
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	om := math.Float64frombits(o.maxBits.Load())
	for {
		old := h.maxBits.Load()
		if om <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(om)) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // finite upper bounds
	Counts []uint64  // per-bucket counts, len(Bounds)+1 (last is +Inf)
	Count  uint64
	Sum    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
}

// Snapshot copies the histogram state and computes p50/p90/p99 by
// linear interpolation within the containing bucket. Safe on a nil
// receiver (returns a zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Bounds = h.bounds
	s.Counts = make([]uint64, len(h.buckets)+1)
	// Count is derived from the bucket loads read here, never from a
	// separate atomic: a snapshot taken mid-Observe then always agrees
	// with itself (the +Inf cumulative bucket equals _count, which the
	// exposition validator enforces).
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
		s.Count += s.Counts[i]
	}
	s.Counts[len(h.buckets)] = h.inf.Load()
	s.Count += s.Counts[len(h.buckets)]
	s.Sum = math.Float64frombits(h.sumBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucketed
// counts, interpolating linearly inside the containing bucket. The +Inf
// bucket is reported as the observed max.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(s.Bounds) {
			return s.Max
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if hi > s.Max && s.Max > lo {
			hi = s.Max
		}
		if c == 0 {
			return hi
		}
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Max
}

// Mean returns the arithmetic mean of all observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
