package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// processStart anchors taurus_uptime_seconds; set once at init so every
// registry in the process reports the same restart boundary.
var processStart = time.Now()

// BuildVersion resolves the best available build identifier: the module
// version when built from a tagged module, else the embedded VCS
// revision (short form), else "dev".
func BuildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "dev"
}

// RegisterBuildInfo exports taurus_build_info{version,go} (constant 1,
// the standard info-metric idiom) and taurus_uptime_seconds on r, so
// scrapes can tell nodes, binaries, and restarts apart. Call once per
// registry; repeated calls are idempotent because the registry
// deduplicates by name+labels. Safe on a nil registry.
func RegisterBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("taurus_build_info",
		"Build metadata; value is always 1, the labels carry the info.",
		func() float64 { return 1 },
		L("version", BuildVersion()), L("go", runtime.Version()))
	r.GaugeFunc("taurus_uptime_seconds",
		"Seconds since this process started.",
		func() float64 { return time.Since(processStart).Seconds() })
}
