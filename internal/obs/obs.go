// Package obs is a dependency-free observability layer: a metrics
// registry of atomic counters, gauges, and log-bucketed histograms with
// Prometheus text-format export, plus lightweight span tracing for
// slow-operation logging.
//
// Design goals, in order:
//
//  1. Hot-path cost near zero: instruments are plain atomics, looked up
//     once at component init and stored in struct fields. All instrument
//     methods are nil-receiver safe so uninstrumented components pay a
//     single predictable branch.
//  2. No third-party dependencies (stdlib only).
//  3. Valid Prometheus text exposition, verified by ValidateExposition
//     (shared by unit tests and the CI smoke check).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v  atomic.Uint64
	fn func() float64 // non-nil for CounterFunc-backed series
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	if c.fn != nil {
		return uint64(c.fn())
	}
	return c.v.Load()
}

func (c *Counter) value() float64 {
	if c.fn != nil {
		return c.fn()
	}
	return float64(c.v.Load())
}

// Gauge is an atomic float64 gauge.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64 // non-nil for GaugeFunc-backed series
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value. Safe on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// series is one labeled instance of a metric family.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is a named metric with one or more labeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
	order  []string // insertion order for stable export
}

// Registry is a set of metric families. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use, and all
// lookup methods are get-or-create: asking for the same name+labels
// twice returns the same instrument.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns (creating if needed) the series for name+labels, after
// checking the family's kind. A kind conflict on an existing name is a
// programming error and panics. init runs under the registry lock, so
// the instrument a series carries is fully built before any concurrent
// scrape can observe the series — scrapers snapshot under the same
// lock.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, init func(*series)) *series {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: labels}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	init(s)
	return s
}

// Counter returns the counter named name with the given labels,
// creating it if needed. Safe on a nil registry (returns a nil
// instrument, whose methods are no-ops).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels, func(s *series) {
		if s.ctr == nil {
			s.ctr = &Counter{}
		}
	})
	if s == nil {
		return nil
	}
	return s.ctr
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. Used to surface pre-existing atomic counters without rewriting
// them. Safe on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, kindCounter, labels, func(s *series) {
		s.ctr = &Counter{fn: fn}
	})
}

// Gauge returns the gauge named name with the given labels, creating it
// if needed. Safe on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels, func(s *series) {
		if s.gauge == nil {
			s.gauge = &Gauge{}
		}
	})
	if s == nil {
		return nil
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. Safe on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, kindGauge, labels, func(s *series) {
		s.gauge = &Gauge{fn: fn}
	})
}

// Remove deletes the series with the given labels from the named
// family, so a departed entity (a forgotten peer, a rebound role) stops
// being exported instead of freezing at its last value. The instrument
// keeps working for any holder of the pointer; it just no longer
// scrapes. Removing an unknown series or family is a no-op. Safe on a
// nil registry.
func (r *Registry) Remove(name string, labels ...Label) {
	if r == nil {
		return
	}
	key := labelKey(sortLabels(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return
	}
	if _, ok := f.series[key]; !ok {
		return
	}
	delete(f.series, key)
	for i, k := range f.order {
		if k == key {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// Histogram returns the histogram named name with the given labels,
// creating it with the given bucket upper bounds if needed (nil buckets
// selects DefaultLatencyBuckets). Safe on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels, func(s *series) {
		if s.hist == nil {
			s.hist = NewHistogram(buckets)
		}
	})
	if s == nil {
		return nil
	}
	return s.hist
}
