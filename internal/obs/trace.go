package obs

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"
	"time"
)

// Trace is a lightweight single-goroutine span recorder: a sequence of
// named stages measured from one Start. It allocates one small struct
// and appends to a slice — cheap enough to create per operation when a
// slow-op log is armed. All methods are safe on a nil receiver, so
// callers can thread an optional *Trace without branching.
type Trace struct {
	op     string
	start  time.Time
	last   time.Time
	stages []TraceStage
}

// TraceStage is one completed span within a Trace.
type TraceStage struct {
	Name string
	Dur  time.Duration
}

// NewTrace starts a trace for the named operation.
func NewTrace(op string) *Trace {
	now := time.Now()
	return &Trace{op: op, start: now, last: now}
}

// Step closes the stage that began at the previous Step (or at Start)
// and names it. Safe on a nil receiver.
func (t *Trace) Step(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.stages = append(t.stages, TraceStage{Name: name, Dur: now.Sub(t.last)})
	t.last = now
}

// Total returns elapsed time since the trace started. Safe on a nil
// receiver.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Stages returns the completed spans. Safe on a nil receiver.
func (t *Trace) Stages() []TraceStage {
	if t == nil {
		return nil
	}
	return t.stages
}

// String renders the trace as a one-line structured breakdown:
//
//	op="INSERT ..." total=12.3ms stages=parse:0.1ms,apply:2.0ms,commit:10.2ms
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "op=%q total=%s stages=", t.op, t.Total().Round(time.Microsecond))
	for i, s := range t.stages {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%s", s.Name, s.Dur.Round(time.Microsecond))
	}
	return b.String()
}

// SlowOpLog emits one structured line for every operation whose total
// duration meets or exceeds Threshold. A nil *SlowOpLog (or a zero
// threshold) is disabled and costs one branch per operation.
type SlowOpLog struct {
	threshold time.Duration
	logger    *log.Logger
	fired     atomic.Uint64
}

// NewSlowOpLog builds a slow-op log with the given threshold. A zero or
// negative threshold returns nil (disabled). logger defaults to
// log.Default().
func NewSlowOpLog(threshold time.Duration, logger *log.Logger) *SlowOpLog {
	if threshold <= 0 {
		return nil
	}
	if logger == nil {
		logger = log.Default()
	}
	return &SlowOpLog{threshold: threshold, logger: logger}
}

// Enabled reports whether operations should build traces at all. Safe
// on a nil receiver.
func (l *SlowOpLog) Enabled() bool { return l != nil }

// Observe logs the trace if it exceeded the threshold, returning
// whether it fired. Safe on nil receiver and nil trace.
func (l *SlowOpLog) Observe(t *Trace) bool { return l.ObserveTraced(t, 0) }

// ObserveTraced is Observe for statements that also ran under a sampled
// distributed trace: when traceID is non-zero the SLOW-OP line carries
// it (same hex form /trace/<id> accepts), so a slow-op entry jumps
// straight to its cross-node span breakdown. Safe on nil receiver and
// nil trace.
func (l *SlowOpLog) ObserveTraced(t *Trace, traceID uint64) bool {
	if l == nil || t == nil {
		return false
	}
	total := t.Total()
	if total < l.threshold {
		return false
	}
	l.fired.Add(1)
	if traceID != 0 {
		l.logger.Printf("SLOW-OP trace=%016x %s", traceID, t.String())
	} else {
		l.logger.Printf("SLOW-OP %s", t.String())
	}
	return true
}

// Fired returns how many operations have been logged. Safe on a nil
// receiver.
func (l *SlowOpLog) Fired() uint64 {
	if l == nil {
		return 0
	}
	return l.fired.Load()
}
