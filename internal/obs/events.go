package obs

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// EventRing is a flight recorder: a fixed-size ring of structural
// events (lane promotions, window seals, checkpoints, GC truncations,
// replica resyncs, sticky-error poisoning, catalog barriers). It costs
// one short critical section per event and bounded memory forever, so
// it stays on in production; when something goes wrong the last N
// structural transitions are retrievable from /events or dumped to the
// log. All methods are safe for concurrent use and on a nil receiver.

// Event kinds recorded by the stack. Free-form kinds are allowed; these
// constants keep producers and dashboards in agreement.
const (
	EventLanePromote    = "lane.promote"
	EventLaneDemote     = "lane.demote"
	EventWindowSeal     = "window.seal"
	EventCheckpoint     = "checkpoint"
	EventLogGC          = "log.gc"
	EventReplicaResync  = "replica.resync"
	EventPoison         = "sal.poison"
	EventCatalogBarrier = "catalog.barrier"
	// Push-stream lifecycle: a replica subscribed to a Log Store's
	// stream, detached cleanly, or was disconnected (flow control or
	// push failure); EventCheckpointResync marks a replica rebasing on
	// a Page Store checkpoint after log GC overran its detached tail.
	EventStreamAttach     = "stream.attach"
	EventStreamDetach     = "stream.detach"
	EventStreamDisconnect = "stream.disconnect"
	EventCheckpointResync = "replica.ckpt_resync"

	// Parallel NDP scans: EventScanStart/EventScanFinish bracket one
	// partitioned scan's fan-out; EventScanRetry marks a per-slice
	// sub-batch re-sent to another Page Store replica (failure or
	// straggler hedge).
	EventScanStart  = "scan.start"
	EventScanFinish = "scan.finish"
	EventScanRetry  = "scan.retry"

	// Health layer: EventPeerState marks a failure-detector transition
	// (alive/suspect/dead) for one peer; EventHealthCheck marks an
	// invariant check changing status on one node.
	EventPeerState   = "peer.state"
	EventHealthCheck = "health.check"
)

// Event is one recorded structural transition.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail"`
}

// EventRing holds the most recent events in insertion order.
type EventRing struct {
	mu   sync.Mutex
	ring []Event
	next int
	full bool
	seq  uint64
}

// DefaultEventRingSize bounds per-node flight-recorder memory.
const DefaultEventRingSize = 1024

// NewEventRing builds a recorder. capacity <= 0 selects
// DefaultEventRingSize.
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventRingSize
	}
	return &EventRing{ring: make([]Event, 0, capacity)}
}

// Record appends one event. The sequence number is assigned under the
// ring lock, so Seq order is the order events entered the ring even
// with concurrent writers. Safe on nil.
func (r *EventRing) Record(kind, format string, args ...any) {
	if r == nil {
		return
	}
	detail := fmt.Sprintf(format, args...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev := Event{Seq: r.seq, Time: time.Now(), Kind: kind, Detail: detail}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
		return
	}
	r.ring[r.next] = ev
	r.next = (r.next + 1) % len(r.ring)
	r.full = true
}

// Events returns retained events oldest-first. Safe on nil.
func (r *EventRing) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if r.full {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}

// EventsSince returns retained events with Seq > since, oldest first.
// A cursor that has fallen out of the ring returns everything retained;
// the caller can detect the gap because the first event's Seq is then
// > since+1. Safe on nil.
func (r *EventRing) EventsSince(since uint64) []Event {
	if r == nil {
		return nil
	}
	all := r.Events()
	// Events are Seq-ascending; binary-search the cut instead of
	// filtering so a hot poller with a fresh cursor is O(log n).
	lo, hi := 0, len(all)
	for lo < hi {
		mid := (lo + hi) / 2
		if all[mid].Seq <= since {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return all[lo:]
}

// Len returns how many events are retained. Safe on nil.
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Handler serves GET /events as a JSON event list, oldest first. A
// ?since=<seq> cursor returns only events recorded after that sequence
// number, so pollers resume from their last-seen Seq instead of
// re-downloading the ring. Safe on nil (serves an empty list).
func (r *EventRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var events []Event
		if s := req.URL.Query().Get("since"); s != "" {
			since, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
			events = r.EventsSince(since)
		} else {
			events = r.Events()
		}
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(events)
	})
}

// Dump writes every retained event to the logger, oldest first — the
// black-box readout after a failure. logger defaults to log.Default().
// Safe on nil.
func (r *EventRing) Dump(logger *log.Logger) {
	if r == nil {
		return
	}
	if logger == nil {
		logger = log.Default()
	}
	events := r.Events()
	logger.Printf("FLIGHT-RECORDER %d events", len(events))
	for _, ev := range events {
		logger.Printf("FLIGHT-RECORDER #%d %s %s %s",
			ev.Seq, ev.Time.Format(time.RFC3339Nano), ev.Kind, ev.Detail)
	}
}
