package obs

import (
	"bytes"
	"log"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("taurus_test_total", "test counter")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if same := r.Counter("taurus_test_total", "test counter"); same != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("taurus_test_gauge", "test gauge", L("node", "a"))
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", got)
	}
	r.GaugeFunc("taurus_fn_gauge", "fn gauge", func() float64 { return 42 })
	r.CounterFunc("taurus_fn_total", "fn counter", func() float64 { return 7 })
}

// TestRemoveSeries checks Remove drops exactly one labeled series from
// the exposition, leaves siblings intact, keeps the exposition valid,
// and tolerates unknown names, unknown labels, and a nil registry.
func TestRemoveSeries(t *testing.T) {
	r := NewRegistry()
	r.Gauge("taurus_test_state", "state", L("peer", "a"), L("role", "x")).Set(1)
	r.Gauge("taurus_test_state", "state", L("peer", "b"), L("role", "y")).Set(2)
	r.Remove("taurus_test_state", L("role", "x"), L("peer", "a")) // label order must not matter
	r.Remove("taurus_test_state", L("peer", "ghost"), L("role", "z"))
	r.Remove("taurus_no_such_family", L("peer", "a"))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Contains(text, `peer="a"`) {
		t.Errorf("removed series still exported:\n%s", text)
	}
	if !strings.Contains(text, `taurus_test_state{peer="b",role="y"} 2`) {
		t.Errorf("sibling series lost:\n%s", text)
	}
	if _, err := ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid after Remove: %v", err)
	}
	// Re-registering the removed series starts a fresh instrument.
	if got := r.Gauge("taurus_test_state", "state", L("peer", "a"), L("role", "x")).Value(); got != 0 {
		t.Errorf("recreated series = %v, want 0", got)
	}
	var nilReg *Registry
	nilReg.Remove("taurus_test_state", L("peer", "a"))
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Add(1)
	g := r.Gauge("x", "")
	g.Set(1)
	h := r.Histogram("x_seconds", "", nil)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments must be inert")
	}
	var tr *Trace
	tr.Step("a")
	if tr.Total() != 0 || tr.String() != "" {
		t.Fatal("nil trace must be inert")
	}
	var sl *SlowOpLog
	if sl.Observe(tr) || sl.Enabled() || sl.Fired() != 0 {
		t.Fatal("nil slow-op log must be inert")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("taurus_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("taurus_conflict", "")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(ExpBuckets(1e-6, 1.2, 120))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-4) // 0.1ms .. 100ms uniform
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Max-0.1) > 1e-9 {
		t.Fatalf("max = %v, want 0.1", s.Max)
	}
	if rel := math.Abs(s.P50-0.05) / 0.05; rel > 0.25 {
		t.Fatalf("p50 = %v, want ~0.05 (rel err %v)", s.P50, rel)
	}
	if rel := math.Abs(s.P99-0.099) / 0.099; rel > 0.25 {
		t.Fatalf("p99 = %v, want ~0.099 (rel err %v)", s.P99, rel)
	}
	if mean := s.Mean(); math.Abs(mean-0.05) > 0.005 {
		t.Fatalf("mean = %v, want ~0.05", mean)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1e-3)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	if math.Abs(s.Sum-8.0) > 1e-6 {
		t.Fatalf("sum = %v, want 8.0", s.Sum)
	}
}

func TestPrometheusExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("taurus_reqs_total", "requests", L("type", "MsgWriteLogs")).Add(10)
	r.Counter("taurus_reqs_total", "requests", L("type", `quo"te\back`)).Add(2)
	r.Gauge("taurus_lag", "lag").Set(3.5)
	h := r.Histogram("taurus_lat_seconds", "latency", nil, L("stage", "append"))
	h.Observe(0.001)
	h.Observe(0.004)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	fams, err := ValidateExposition(text)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{"taurus_reqs_total", "taurus_lag", "taurus_lat_seconds", "taurus_lat_seconds_max"} {
		if _, ok := fams[want]; !ok {
			t.Fatalf("family %q missing from exposition", want)
		}
	}
	if !strings.Contains(text, `taurus_lat_seconds_bucket{stage="append",le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket:\n%s", text)
	}
	if !strings.Contains(text, `taurus_lat_seconds_count{stage="append"} 2`) {
		t.Fatalf("missing _count:\n%s", text)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []string{
		"taurus_x 1\n", // sample without TYPE
		"# TYPE taurus_x counter\ntaurus_x notanumber\n",
		"# TYPE taurus_x widget\ntaurus_x 1\n",
		"# TYPE taurus_x histogram\ntaurus_x_count 3\ntaurus_x_sum 1\n", // no +Inf bucket
		"",
	}
	for _, c := range cases {
		if _, err := ValidateExposition(c); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}

func TestTraceAndSlowOpLog(t *testing.T) {
	tr := NewTrace("INSERT INTO t")
	time.Sleep(2 * time.Millisecond)
	tr.Step("parse")
	tr.Step("commit")
	if len(tr.Stages()) != 2 {
		t.Fatalf("stages = %d, want 2", len(tr.Stages()))
	}
	s := tr.String()
	if !strings.Contains(s, `op="INSERT INTO t"`) || !strings.Contains(s, "parse:") {
		t.Fatalf("trace string = %q", s)
	}

	var buf bytes.Buffer
	slow := NewSlowOpLog(time.Millisecond, log.New(&buf, "", 0))
	if !slow.Observe(tr) {
		t.Fatal("slow-op should fire above threshold")
	}
	if !strings.Contains(buf.String(), "SLOW-OP") {
		t.Fatalf("log output = %q", buf.String())
	}
	if slow.Fired() != 1 {
		t.Fatalf("fired = %d", slow.Fired())
	}

	buf.Reset()
	fast := NewTrace("SELECT 1")
	fast.Step("all")
	quiet := NewSlowOpLog(time.Hour, log.New(&buf, "", 0))
	if quiet.Observe(fast) {
		t.Fatal("slow-op must stay silent below threshold")
	}
	if buf.Len() != 0 {
		t.Fatalf("unexpected output %q", buf.String())
	}
	if NewSlowOpLog(0, nil) != nil {
		t.Fatal("zero threshold must disable the log")
	}
}
