package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the distributed-tracing half of obs: a propagated
// TraceContext, a concurrency-safe per-node span collector (Tracer),
// and a pure assembler that joins spans collected on different nodes
// into one tree. Unlike Trace (single-goroutine stage timer), spans
// here may start and end on different goroutines and different
// processes — the SAL pipeline hands a window's context from the
// staging writer to the flusher to per-Log-Store workers, and the
// cluster transport carries it across the wire.

// TraceContext is the propagated identity of one trace position: which
// trace, which span is the current parent, and whether the trace is
// sampled. The zero value means "not traced" and makes every
// downstream operation a no-op.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// Valid reports whether the context belongs to a sampled trace.
func (tc TraceContext) Valid() bool { return tc.Sampled && tc.TraceID != 0 }

// Span is one completed timed operation inside a trace, tagged with
// the node that recorded it.
type Span struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64 // 0 for a root span
	Node    string
	Name    string
	Start   time.Time
	Dur     time.Duration
	Notes   []string
}

// idState is a process-wide splitmix64 stream for trace/span IDs:
// one atomic add plus a few multiplies per ID, no locks, seeded from
// the clock once so restarts don't collide.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano()) | 1) }

func nextID() uint64 {
	z := idState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Tracer is a per-node span collector: it decides sampling, allocates
// IDs, and keeps completed spans in a fixed-size ring so memory is
// bounded no matter how long the node runs. All methods are safe for
// concurrent use and safe on a nil receiver (tracing disabled).
type Tracer struct {
	node string
	rate float64 // probability a MaybeTrace call samples; clamped [0,1]

	mu   sync.Mutex
	ring []Span
	next int
	full bool
}

// DefaultSpanRingSize bounds per-node completed-span memory.
const DefaultSpanRingSize = 4096

// NewTracer builds a collector for the named node. sampleRate is the
// probability that MaybeTrace starts a trace (0 disables rate-based
// sampling; forced traces still record). capacity <= 0 selects
// DefaultSpanRingSize.
func NewTracer(node string, sampleRate float64, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanRingSize
	}
	if sampleRate < 0 {
		sampleRate = 0
	}
	if sampleRate > 1 {
		sampleRate = 1
	}
	return &Tracer{node: node, rate: sampleRate, ring: make([]Span, 0, capacity)}
}

// Node returns the node name spans are tagged with. Safe on nil.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Rate returns the configured sampling rate. Safe on nil (0).
func (t *Tracer) Rate() float64 {
	if t == nil {
		return 0
	}
	return t.rate
}

// ShouldSample rolls the sampling dice. Safe on nil (never samples).
func (t *Tracer) ShouldSample() bool {
	if t == nil || t.rate <= 0 {
		return false
	}
	if t.rate >= 1 {
		return true
	}
	// Top 53 bits of a splitmix64 draw → uniform [0,1).
	return float64(nextID()>>11)/(1<<53) < t.rate
}

// SpanHandle is an in-flight span. A nil handle is valid and inert, so
// call sites never branch on whether tracing is on.
type SpanHandle struct {
	t    *Tracer
	span Span
	done atomic.Bool
}

// StartTrace begins a new sampled trace rooted at this node and
// returns its root span. Used by forced traces (taurus-sql -trace) and
// by call sites that already rolled ShouldSample. Safe on nil.
func (t *Tracer) StartTrace(name string) *SpanHandle {
	if t == nil {
		return nil
	}
	id := nextID()
	return &SpanHandle{t: t, span: Span{
		TraceID: id, SpanID: id, Node: t.node, Name: name, Start: time.Now(),
	}}
}

// MaybeTrace starts a new root span with probability rate, returning
// nil otherwise. Safe on nil.
func (t *Tracer) MaybeTrace(name string) *SpanHandle {
	if !t.ShouldSample() {
		return nil
	}
	return t.StartTrace(name)
}

// StartSpan opens a child span under parent. Returns nil (inert) when
// the parent context is unsampled, so unsampled requests cost one
// branch. Safe on nil.
func (t *Tracer) StartSpan(parent TraceContext, name string) *SpanHandle {
	if t == nil || !parent.Valid() {
		return nil
	}
	return &SpanHandle{t: t, span: Span{
		TraceID: parent.TraceID, SpanID: nextID(), Parent: parent.SpanID,
		Node: t.node, Name: name, Start: time.Now(),
	}}
}

// Context returns the propagated context for children of this span.
// A nil handle yields the zero (unsampled) context.
func (h *SpanHandle) Context() TraceContext {
	if h == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: h.span.TraceID, SpanID: h.span.SpanID, Sampled: true}
}

// Annotate attaches a formatted note to the span. Safe on nil.
func (h *SpanHandle) Annotate(format string, args ...any) {
	if h == nil {
		return
	}
	h.span.Notes = append(h.span.Notes, fmt.Sprintf(format, args...))
}

// End completes the span and records it in the tracer's ring. Ending
// twice records once. Safe on nil.
func (h *SpanHandle) End() {
	if h == nil || !h.done.CompareAndSwap(false, true) {
		return
	}
	h.span.Dur = time.Since(h.span.Start)
	h.t.record(h.span)
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	t.full = true
}

// Spans returns every retained span belonging to traceID, oldest
// first. Safe on nil.
func (t *Tracer) Spans(traceID uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	t.scan(func(s Span) {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	})
	return out
}

// RecentTraces returns up to n distinct trace IDs, most recently
// completed first. Safe on nil.
func (t *Tracer) RecentTraces(n int) []uint64 {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var chron []uint64
	t.scan(func(s Span) { chron = append(chron, s.TraceID) })
	seen := make(map[uint64]bool)
	var out []uint64
	for i := len(chron) - 1; i >= 0 && len(out) < n; i-- {
		if !seen[chron[i]] {
			seen[chron[i]] = true
			out = append(out, chron[i])
		}
	}
	return out
}

// scan visits retained spans oldest-first. Caller holds t.mu.
func (t *Tracer) scan(fn func(Span)) {
	if t.full {
		for i := t.next; i < len(t.ring); i++ {
			fn(t.ring[i])
		}
	}
	for i := 0; i < t.next; i++ {
		fn(t.ring[i])
	}
	if !t.full {
		for _, s := range t.ring {
			fn(s)
		}
	}
}

// TraceNode is one span plus its children in an assembled trace tree.
type TraceNode struct {
	Span     Span
	Children []*TraceNode
}

// AssembleTrace joins spans (possibly fetched from several nodes) into
// a forest: roots are spans whose parent is absent from the set.
// Children are ordered by start time. Pure function, no Tracer needed.
func AssembleTrace(spans []Span) []*TraceNode {
	nodes := make(map[uint64]*TraceNode, len(spans))
	for _, s := range spans {
		nodes[s.SpanID] = &TraceNode{Span: s}
	}
	var roots []*TraceNode
	for _, s := range spans {
		n := nodes[s.SpanID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var order func(ns []*TraceNode)
	order = func(ns []*TraceNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Span.Start.Before(ns[j].Span.Start) })
		for _, n := range ns {
			order(n.Children)
		}
	}
	order(roots)
	return roots
}

// FormatTrace renders an assembled forest as an indented breakdown:
//
//	sql.insert 11.2ms [frontend]
//	  sal.window 9.8ms [frontend] recs=3
//	    rpc:MsgLogAppend 4.1ms [frontend]
//	      logstore.append 3.9ms [log1]
func FormatTrace(roots []*TraceNode) string {
	var b strings.Builder
	var walk func(n *TraceNode, depth int)
	walk = func(n *TraceNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %s [%s]", n.Span.Name, n.Span.Dur.Round(time.Microsecond), n.Span.Node)
		for _, note := range n.Span.Notes {
			b.WriteByte(' ')
			b.WriteString(note)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// spanJSON is the wire form served by the /trace endpoints. IDs are
// hex strings so they survive JSON number precision limits.
type spanJSON struct {
	TraceID string   `json:"trace_id"`
	SpanID  string   `json:"span_id"`
	Parent  string   `json:"parent,omitempty"`
	Node    string   `json:"node"`
	Name    string   `json:"name"`
	StartNS int64    `json:"start_ns"`
	DurNS   int64    `json:"dur_ns"`
	Notes   []string `json:"notes,omitempty"`
}

func toJSON(spans []Span) []spanJSON {
	out := make([]spanJSON, 0, len(spans))
	for _, s := range spans {
		j := spanJSON{
			TraceID: strconv.FormatUint(s.TraceID, 16),
			SpanID:  strconv.FormatUint(s.SpanID, 16),
			Node:    s.Node, Name: s.Name,
			StartNS: s.Start.UnixNano(), DurNS: int64(s.Dur), Notes: s.Notes,
		}
		if s.Parent != 0 {
			j.Parent = strconv.FormatUint(s.Parent, 16)
		}
		out = append(out, j)
	}
	return out
}

// SpansFromJSON decodes a /trace/<id> response body back into spans,
// for the cross-node assembler.
func SpansFromJSON(body []byte) ([]Span, error) {
	var raw []spanJSON
	if err := json.Unmarshal(body, &raw); err != nil {
		return nil, err
	}
	out := make([]Span, 0, len(raw))
	for _, j := range raw {
		tid, err := strconv.ParseUint(j.TraceID, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad trace_id %q: %w", j.TraceID, err)
		}
		sid, err := strconv.ParseUint(j.SpanID, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad span_id %q: %w", j.SpanID, err)
		}
		var pid uint64
		if j.Parent != "" {
			if pid, err = strconv.ParseUint(j.Parent, 16, 64); err != nil {
				return nil, fmt.Errorf("obs: bad parent %q: %w", j.Parent, err)
			}
		}
		out = append(out, Span{
			TraceID: tid, SpanID: sid, Parent: pid, Node: j.Node, Name: j.Name,
			Start: time.Unix(0, j.StartNS), Dur: time.Duration(j.DurNS), Notes: j.Notes,
		})
	}
	return out, nil
}

// TraceHandler serves GET /trace/<hex-id> as a JSON span list. fetch
// is usually Tracer.Spans, or a merge over several tracers on an
// embedded node hosting multiple roles.
func TraceHandler(fetch func(traceID uint64) []Span) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		idStr := r.URL.Path[strings.LastIndexByte(r.URL.Path, '/')+1:]
		id, err := strconv.ParseUint(idStr, 16, 64)
		if err != nil || id == 0 {
			http.Error(w, "bad trace id (want hex uint64)", http.StatusBadRequest)
			return
		}
		spans := fetch(id)
		if len(spans) == 0 {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(toJSON(spans))
	})
}

// TracesHandler serves GET /traces?recent=N as a JSON list of hex
// trace IDs, newest first.
func TracesHandler(recent func(n int) []uint64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 16
		if q := r.URL.Query().Get("recent"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "bad recent param", http.StatusBadRequest)
				return
			}
			n = v
		}
		ids := recent(n)
		out := make([]string, 0, len(ids))
		for _, id := range ids {
			out = append(out, strconv.FormatUint(id, 16))
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
}
