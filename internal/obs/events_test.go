package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestEventRingWraparound(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 10; i++ {
		r.Record(EventWindowSeal, "seal %d", i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want capacity 4", len(evs))
	}
	// Oldest first, and only the newest 4 survive.
	for i, ev := range evs {
		if want := fmt.Sprintf("seal %d", i+6); ev.Detail != want {
			t.Errorf("event %d = %q, want %q", i, ev.Detail, want)
		}
		if i > 0 && evs[i-1].Seq >= ev.Seq {
			t.Errorf("seq not increasing: %d then %d", evs[i-1].Seq, ev.Seq)
		}
	}
}

// TestEventRingConcurrent hammers the ring from many goroutines (run
// with -race): sequence numbers must come out strictly increasing and
// the ring must hold exactly the newest capacity events.
func TestEventRingConcurrent(t *testing.T) {
	const writers, perWriter = 8, 200
	r := NewEventRing(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(EventLanePromote, "w%d-%d", w, i)
			}
		}(w)
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("len = %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap in retained window: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if got, want := evs[len(evs)-1].Seq, uint64(writers*perWriter); got != want {
		t.Errorf("last seq = %d, want %d (every Record got a unique seq)", got, want)
	}
}

func TestEventsHandler(t *testing.T) {
	r := NewEventRing(8)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	// Empty ring serves an empty JSON list, not null.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
	if body := rec.Body.String(); body != "[]\n" && body != "[]" {
		t.Errorf("empty ring body = %q, want []", body)
	}

	r.Record(EventCheckpoint, "ckpt at %d", 7)
	r.Record(EventLogGC, "gc below %d", 5)
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
	var evs []Event
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatalf("decoding /events: %v (%s)", err, rec.Body.String())
	}
	if len(evs) != 2 || evs[0].Kind != EventCheckpoint || evs[1].Kind != EventLogGC {
		t.Errorf("events = %+v", evs)
	}
	if evs[0].Detail != "ckpt at 7" {
		t.Errorf("detail = %q", evs[0].Detail)
	}
}

func TestEventRingNilSafe(t *testing.T) {
	var r *EventRing
	r.Record(EventPoison, "nope")
	if evs := r.Events(); evs != nil {
		t.Errorf("nil ring events = %v", evs)
	}
	if evs := r.EventsSince(0); evs != nil {
		t.Errorf("nil ring EventsSince = %v", evs)
	}
	r.Dump(nil)
}

// TestEventsSince checks the cursor read: only events with Seq > since
// come back, a cursor at the head returns nothing, and a cursor that
// fell out of a wrapped ring returns everything retained with the gap
// detectable from the first Seq.
func TestEventsSince(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 3; i++ {
		r.Record(EventWindowSeal, "seal %d", i)
	}
	// Mid-ring cursor: seq 1 already read, expect 2 and 3.
	evs := r.EventsSince(1)
	if len(evs) != 2 || evs[0].Seq != 2 || evs[1].Seq != 3 {
		t.Fatalf("EventsSince(1) = %+v", evs)
	}
	// Cursor at the head: nothing new.
	if evs := r.EventsSince(3); len(evs) != 0 {
		t.Fatalf("EventsSince(head) = %+v", evs)
	}
	// Cursor past the head (clock skew, stale bookmark): nothing new.
	if evs := r.EventsSince(99); len(evs) != 0 {
		t.Fatalf("EventsSince(past head) = %+v", evs)
	}

	// Wrap the ring: 10 events through capacity 4 retains seqs 7-10.
	for i := 3; i < 10; i++ {
		r.Record(EventWindowSeal, "seal %d", i)
	}
	evs = r.EventsSince(8)
	if len(evs) != 2 || evs[0].Seq != 9 || evs[1].Seq != 10 {
		t.Fatalf("EventsSince(8) after wrap = %+v", evs)
	}
	// Cursor that fell out of the ring: everything retained comes back,
	// and first.Seq > since+1 marks the gap.
	evs = r.EventsSince(2)
	if len(evs) != 4 || evs[0].Seq != 7 {
		t.Fatalf("EventsSince(fallen-out) = %+v", evs)
	}
	if evs[0].Seq <= 2+1 {
		t.Error("gap not detectable: first seq should exceed since+1")
	}
}

// TestEventsHandlerSinceParam checks GET /events?since=<seq> serves the
// cursor read and rejects a malformed cursor with 400.
func TestEventsHandlerSinceParam(t *testing.T) {
	r := NewEventRing(8)
	for i := 0; i < 5; i++ {
		r.Record(EventCheckpoint, "ckpt %d", i)
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/events?since=3", nil))
	var evs []Event
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatalf("decoding: %v (%s)", err, rec.Body.String())
	}
	if len(evs) != 2 || evs[0].Seq != 4 || evs[1].Seq != 5 {
		t.Fatalf("?since=3 = %+v", evs)
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/events?since=banana", nil))
	if rec.Code != 400 {
		t.Errorf("bad cursor = %d, want 400", rec.Code)
	}
}
