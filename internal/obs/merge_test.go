package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestHistogramMerge checks the fold semantics: buckets, count, sum,
// and max combine; mismatched bucket shapes are ignored; nil and
// self-merge are inert.
func TestHistogramMerge(t *testing.T) {
	bounds := []float64{1, 10, 100}
	a := NewHistogram(bounds)
	b := NewHistogram(bounds)
	for _, v := range []float64{0.5, 5, 50} {
		a.Observe(v)
	}
	for _, v := range []float64{5, 500} {
		b.Observe(v)
	}
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 5 {
		t.Fatalf("merged count = %d, want 5", s.Count)
	}
	if want := 0.5 + 5 + 50 + 5 + 500; s.Sum != want {
		t.Errorf("merged sum = %g, want %g", s.Sum, want)
	}
	if s.Max != 500 {
		t.Errorf("merged max = %g, want 500", s.Max)
	}
	// Bucket loads: (<=1)=1, (<=10)=2, (<=100)=1, +Inf=1.
	if got := fmt.Sprint(s.Counts); got != "[1 2 1 1]" {
		t.Errorf("merged buckets = %v", s.Counts)
	}

	// Mismatched shapes must not corrupt the destination.
	c := NewHistogram([]float64{1, 2})
	c.Observe(1)
	before := a.Snapshot().Count
	a.Merge(c)
	if a.Snapshot().Count != before {
		t.Error("mismatched-bounds merge changed the histogram")
	}

	a.Merge(nil)
	a.Merge(a)
	var nilH *Histogram
	nilH.Merge(b)
	if a.Snapshot().Count != before {
		t.Error("nil/self merge changed the histogram")
	}
}

// TestHistogramMergeConcurrent folds shard histograms into an aggregate
// while the shards are still being observed and the aggregate is being
// snapshotted — run with -race. The invariant: after everything joins,
// the aggregate's count equals its bucket loads' total and every
// pre-merge observation is present.
func TestHistogramMergeConcurrent(t *testing.T) {
	bounds := []float64{0.25, 0.5, 1}
	const shards, perShard = 4, 1000
	agg := NewHistogram(bounds)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		shard := NewHistogram(bounds)
		for i := 0; i < perShard/2; i++ {
			shard.Observe(0.3) // half the load lands before the merges start
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < perShard/2; i++ {
				shard.Observe(0.7)
			}
		}()
		go func() {
			defer wg.Done()
			agg.Merge(shard)
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			agg.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := agg.Snapshot()
	var total uint64
	for _, n := range s.Counts {
		total += n
	}
	if s.Count != total {
		t.Fatalf("count %d != bucket total %d after concurrent merges", s.Count, total)
	}
	if s.Count < shards*perShard/2 {
		t.Errorf("count = %d, want >= %d (pre-merge observations lost)", s.Count, shards*perShard/2)
	}
}

// TestRegistryScrapeWhileUpdate hammers one registry from writers
// (creating and updating counters, gauges, histograms — colliding on
// names so the get-or-create path is exercised) while scrapers render
// /metrics — run with -race. Every scrape must also stay a valid
// exposition.
func TestRegistryScrapeWhileUpdate(t *testing.T) {
	reg := NewRegistry()
	// Seed one family so the very first scrape (possibly before any
	// writer's first iteration) is a non-empty, valid exposition.
	reg.Counter("taurus_test_ops_total", "ops", L("worker", "0")).Inc()
	stop := make(chan struct{})
	var writers, scrapers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter("taurus_test_ops_total", "ops",
					L("worker", fmt.Sprintf("%d", w%2))).Inc()
				reg.Gauge("taurus_test_depth", "depth",
					L("worker", fmt.Sprintf("%d", w%2))).Set(float64(i))
				reg.Histogram("taurus_test_latency_seconds", "lat", nil,
					L("worker", fmt.Sprintf("%d", w%2))).Observe(0.01)
				reg.GaugeFunc("taurus_test_func", "fn", func() float64 { return 1 })
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 50; i++ {
				rec := httptest.NewRecorder()
				reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
				if _, err := ValidateExposition(rec.Body.String()); err != nil {
					t.Errorf("scrape %d invalid: %v", i, err)
					return
				}
			}
		}()
	}
	// Writers spin until the scrapers finish their rounds.
	scrapers.Wait()
	close(stop)
	writers.Wait()
}
