package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// formatValue renders a float the way Prometheus expects: +Inf/-Inf/NaN
// spelled out, otherwise shortest round-trip representation.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
}

// famSnap is a scrape-time copy of one family's structure: name/kind
// plus the instrument pointers, captured under the registry lock so a
// concurrent lookup can neither grow the series map under the iteration
// nor expose a half-built series. The instruments themselves are
// atomics and are read lock-free afterwards.
type famSnap struct {
	name, help string
	kind       metricKind
	series     []seriesSnap
}

type seriesSnap struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// WritePrometheus writes the whole registry in Prometheus text
// exposition format (version 0.0.4). Histograms are emitted as native
// histogram families (_bucket/_sum/_count) plus a companion
// <name>_max gauge family. Safe on a nil registry (writes nothing) and
// safe against concurrent registration/updates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.order))
	for _, n := range r.order {
		f := r.families[n]
		fs := famSnap{name: f.name, help: f.help, kind: f.kind,
			series: make([]seriesSnap, 0, len(f.order))}
		for _, key := range f.order {
			s := f.series[key]
			fs.series = append(fs.series, seriesSnap{
				labels: s.labels, ctr: s.ctr, gauge: s.gauge, hist: s.hist})
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		switch f.kind {
		case kindCounter, kindGauge:
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
			for _, s := range f.series {
				var v float64
				if f.kind == kindCounter {
					v = s.ctr.value()
				} else {
					v = s.gauge.Value()
				}
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(formatValue(v))
				b.WriteByte('\n')
			}
		case kindHistogram:
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name)
			for _, s := range f.series {
				snap := s.hist.Snapshot()
				cum := uint64(0)
				for i, bound := range snap.Bounds {
					cum += snap.Counts[i]
					b.WriteString(f.name + "_bucket")
					writeLabels(&b, s.labels, L("le", formatValue(bound)))
					fmt.Fprintf(&b, " %d\n", cum)
				}
				cum += snap.Counts[len(snap.Bounds)]
				b.WriteString(f.name + "_bucket")
				writeLabels(&b, s.labels, L("le", "+Inf"))
				fmt.Fprintf(&b, " %d\n", cum)
				b.WriteString(f.name + "_sum")
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %s\n", formatValue(snap.Sum))
				b.WriteString(f.name + "_count")
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", snap.Count)
			}
			fmt.Fprintf(&b, "# HELP %s_max Maximum observation of %s.\n# TYPE %s_max gauge\n", f.name, f.name, f.name)
			for _, s := range f.series {
				b.WriteString(f.name + "_max")
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %s\n", formatValue(s.hist.Snapshot().Max))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+-?\d+)?$`)
	labelPairRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// baseFamily strips histogram/summary sample suffixes to recover the
// declared family name.
func baseFamily(sample string, declared map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count", "_total"} {
		if strings.HasSuffix(sample, suf) {
			base := strings.TrimSuffix(sample, suf)
			if _, ok := declared[base]; ok {
				return base
			}
		}
	}
	return sample
}

// ValidateExposition checks text against the Prometheus text exposition
// format: well-formed HELP/TYPE comments, parseable sample lines,
// samples only for declared families, and for histogram families a
// +Inf bucket whose cumulative count matches _count. It returns the set
// of declared family names.
func ValidateExposition(text string) (map[string]string, error) {
	declared := map[string]string{} // family -> type
	infCount := map[string]uint64{} // family+labels(sans le) -> +Inf cumulative
	cntCount := map[string]uint64{} // family+labels -> _count value
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := declared[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				declared[name] = typ
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("line %d: malformed sample line %q", lineNo, line)
		}
		name, labelBody, valStr := m[1], m[3], m[4]
		val, err := strconv.ParseFloat(strings.TrimPrefix(valStr, "+"), 64)
		if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			return nil, fmt.Errorf("line %d: bad sample value %q", lineNo, valStr)
		}
		fam := baseFamily(name, declared)
		if _, ok := declared[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		var le string
		var restLabels []string
		if labelBody != "" {
			for _, pair := range splitLabelPairs(labelBody) {
				lm := labelPairRe.FindStringSubmatch(pair)
				if lm == nil {
					return nil, fmt.Errorf("line %d: malformed label pair %q", lineNo, pair)
				}
				if lm[1] == "le" {
					le = lm[2]
				} else {
					restLabels = append(restLabels, pair)
				}
			}
		}
		if declared[fam] == "histogram" {
			sort.Strings(restLabels)
			skey := fam + "|" + strings.Join(restLabels, ",")
			switch {
			case strings.HasSuffix(name, "_bucket") && le == "+Inf":
				infCount[skey] = uint64(val)
			case strings.HasSuffix(name, "_count"):
				cntCount[skey] = uint64(val)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for skey, cnt := range cntCount {
		inf, ok := infCount[skey]
		if !ok {
			return nil, fmt.Errorf("histogram series %q missing le=\"+Inf\" bucket", skey)
		}
		if inf != cnt {
			return nil, fmt.Errorf("histogram series %q: +Inf bucket %d != _count %d", skey, inf, cnt)
		}
	}
	if len(declared) == 0 {
		return nil, fmt.Errorf("no metric families declared")
	}
	return declared, nil
}

// splitLabelPairs splits a{...} label body on commas outside quotes.
func splitLabelPairs(body string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range body {
		switch {
		case escaped:
			cur.WriteRune(r)
			escaped = false
		case r == '\\' && inQuote:
			cur.WriteRune(r)
			escaped = true
		case r == '"':
			cur.WriteRune(r)
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
