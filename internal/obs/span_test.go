package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer("nodeA", 0, 0)
	root := tr.StartTrace("root")
	child := tr.StartSpan(root.Context(), "child")
	child.Annotate("k=%d", 7)
	grand := tr.StartSpan(child.Context(), "grand")
	grand.End()
	child.End()
	root.End()

	id := root.Context().TraceID
	spans := tr.Spans(id)
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	roots := AssembleTrace(spans)
	if len(roots) != 1 || roots[0].Span.Name != "root" {
		t.Fatalf("roots = %+v", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Span.Name != "child" {
		t.Fatalf("child missing: %+v", roots[0].Children)
	}
	if len(roots[0].Children[0].Children) != 1 {
		t.Fatal("grandchild missing")
	}
	out := FormatTrace(roots)
	if !strings.Contains(out, "root") || !strings.Contains(out, "  child") ||
		!strings.Contains(out, "    grand") || !strings.Contains(out, "k=7") {
		t.Errorf("FormatTrace:\n%s", out)
	}
	if ids := tr.RecentTraces(4); len(ids) != 1 || ids[0] != id {
		t.Errorf("RecentTraces = %v, want [%x]", ids, id)
	}
}

func TestTracerNilAndUnsampled(t *testing.T) {
	var tr *Tracer
	if sp := tr.StartTrace("x"); sp != nil {
		t.Error("nil tracer StartTrace must return nil")
	}
	sp := tr.MaybeTrace("x")
	sp.Annotate("a=%d", 1) // nil-safe
	sp.End()
	if tc := sp.Context(); tc.Valid() {
		t.Error("nil span context must be invalid")
	}
	// Rate 0: MaybeTrace never samples, StartTrace still forces.
	tr = NewTracer("n", 0, 0)
	if sp := tr.MaybeTrace("x"); sp != nil {
		t.Error("rate-0 MaybeTrace must not sample")
	}
	if sp := tr.StartTrace("x"); sp == nil {
		t.Error("StartTrace must force a trace at rate 0")
	}
	// StartSpan without a valid parent records nothing.
	if sp := tr.StartSpan(TraceContext{}, "orphan"); sp != nil {
		t.Error("StartSpan with invalid parent must return nil")
	}
	// Rate 1: MaybeTrace always samples.
	tr = NewTracer("n", 1, 0)
	if sp := tr.MaybeTrace("x"); sp == nil {
		t.Error("rate-1 MaybeTrace must sample")
	}
}

// TestTracerConcurrent exercises the span ring from many goroutines
// (run with -race); the ring must stay bounded.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer("n", 0, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				root := tr.StartTrace("r")
				c := tr.StartSpan(root.Context(), "c")
				c.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	n := 0
	for _, id := range tr.RecentTraces(64) {
		n += len(tr.Spans(id))
	}
	if n == 0 || n > 32 {
		t.Errorf("retained spans = %d, want in (0, 32]", n)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	tr := NewTracer("nodeA", 0, 0)
	root := tr.StartTrace("root")
	child := tr.StartSpan(root.Context(), "child")
	child.Annotate("lsn=%d", 42)
	child.End()
	root.End()
	id := root.Context().TraceID

	srv := httptest.NewRecorder()
	TraceHandler(tr.Spans).ServeHTTP(srv,
		httptest.NewRequest("GET", "/trace/"+traceIDHex(id), nil))
	if srv.Code != 200 {
		t.Fatalf("GET /trace/<id>: %d %s", srv.Code, srv.Body.String())
	}
	spans, err := SpansFromJSON(srv.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	roots := AssembleTrace(spans)
	if len(roots) != 1 || len(roots[0].Children) != 1 {
		t.Errorf("round-tripped tree broken: %+v", roots)
	}
	if roots[0].Children[0].Span.Notes[0] != "lsn=42" {
		t.Errorf("notes lost: %+v", roots[0].Children[0].Span)
	}

	// Unknown trace: 404.
	rec := httptest.NewRecorder()
	TraceHandler(tr.Spans).ServeHTTP(rec, httptest.NewRequest("GET", "/trace/abcdef", nil))
	if rec.Code != 404 {
		t.Errorf("unknown trace = %d, want 404", rec.Code)
	}
}

func traceIDHex(id uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[id&0xf]
		id >>= 4
	}
	return strings.TrimLeft(string(b[:]), "0")
}
