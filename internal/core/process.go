package core

import (
	"fmt"

	"taurus/internal/core/ir"
	"taurus/internal/page"
	"taurus/internal/types"
)

// Processor is the compiled, reusable form of one NDP descriptor: the
// decoded descriptor plus the JIT-compiled predicate and aggregate
// argument programs. Page Stores cache Processors in the descriptor
// cache (§IV-D1) so that "instead of decoding descriptors and converting
// LLVM bitcode for each NDP request, the first request caches the result
// which is reused subsequently."
//
// A Processor is immutable after construction and safe to share; per-page
// evaluation state is created per call (worker threads process pages
// "concurrently, independently, and in any order", §IV-D).
type Processor struct {
	Desc       *Descriptor
	fullSchema *types.Schema
	outSchema  *types.Schema
	pred       *ir.Compiled // template; cloned per ProcessPage call
}

// NewProcessor decodes descriptor bytes and compiles its programs.
func NewProcessor(descBytes []byte) (*Processor, error) {
	d, err := DecodeDescriptor(descBytes)
	if err != nil {
		return nil, err
	}
	return NewProcessorFromDescriptor(d)
}

// NewProcessorFromDescriptor builds a Processor from a decoded descriptor.
func NewProcessorFromDescriptor(d *Descriptor) (*Processor, error) {
	p := &Processor{
		Desc:       d,
		fullSchema: d.RowSchema(),
		outSchema:  d.OutputSchema(),
	}
	if d.HasPredicate() {
		prog, err := ir.Decode(d.Predicate)
		if err != nil {
			return nil, fmt.Errorf("core: predicate IR: %w", err)
		}
		if prog.NumCols > len(d.Cols) {
			return nil, fmt.Errorf("core: predicate needs %d cols, row has %d", prog.NumCols, len(d.Cols))
		}
		p.pred = ir.CompileProgram(prog)
	}
	return p, nil
}

// PageStats counts what happened to one page (or batch) during NDP
// processing; the network/CPU accounting in the experiment harness is
// built on these.
type PageStats struct {
	RecordsIn  int // records examined
	Ambiguous  int // returned unprocessed for frontend MVCC handling
	Deleted    int // visible delete-marked records skipped
	Filtered   int // visible records dropped by the pushed predicate
	RecordsOut int // records in the NDP page (all kinds)
}

// ProcessPage converts one regular leaf page into an NDP page per the
// descriptor: visibility split, predicate filtering, column projection,
// and per-page (grouped or scalar) aggregation, in that order (§V).
// The input page is not modified.
func (p *Processor) ProcessPage(src *page.Page) (*page.Page, PageStats, error) {
	var st PageStats
	if src.IsNDP() {
		return nil, st, fmt.Errorf("core: page %d is already an NDP page", src.ID())
	}
	if src.Level() != 0 {
		return nil, st, fmt.Errorf("core: page %d is not a leaf (level %d)", src.ID(), src.Level())
	}
	d := p.Desc
	if src.IndexID() != d.IndexID {
		return nil, st, fmt.Errorf("core: page index %d does not match descriptor index %d", src.IndexID(), d.IndexID)
	}
	out := page.NewNDP(src.ID(), src.IndexID(), len(src.Bytes())+2048)
	out.SetLSN(src.LSN())
	// Preserve leaf chain links: the frontend cursor drives iteration
	// through them exactly as it does for regular pages.
	out.SetPrevPage(src.PrevPage())
	out.SetNextPage(src.NextPage())

	var pred *ir.Compiled
	if p.pred != nil {
		pred = p.pred.Clone()
	}
	var agg *Aggregator
	if d.HasAggregation() {
		var err error
		agg, err = NewAggregator(d.Aggs)
		if err != nil {
			return nil, st, err
		}
	}

	fullRow := make(types.Row, p.fullSchema.Len())
	var projScratch []byte

	// Pending last-visible-row of the current aggregation group: its key
	// bytes, encoded (projected) row bytes, and decoded output row.
	// "Visible records—except the last record in a group—are summed up,
	// and discarded; and the summation is attached to the last record"
	// (§V-C).
	type pending struct {
		key []byte
		row []byte
		out types.Row
	}
	var pend *pending
	var groupKey types.Row

	flush := func() error {
		if pend == nil {
			return nil
		}
		payload := page.EncodeLeafPayload(nil, pend.key, pend.row)
		payload = EncodeAggStates(payload, agg.States())
		if _, err := out.Append(page.RecNDPAggregate, 0, payload); err != nil {
			return err
		}
		st.RecordsOut++
		agg.Reset()
		pend = nil
		return nil
	}

	var procErr error
	src.Iter(func(rec page.Record) bool {
		st.RecordsIn++
		if rec.TrxID >= d.LowWatermark {
			// Ambiguous: the Page Store cannot decide visibility; the
			// whole record is returned unchanged, full width, because
			// "InnoDB requires the entire record to construct the old
			// record version using its 'undo' log" (§V-A).
			off, err := out.Append(rec.Type, rec.TrxID, rec.Payload)
			if err != nil {
				procErr = err
				return false
			}
			if rec.Deleted {
				// An uncommitted delete: the frontend decides whether
				// the deletion is visible to its read view.
				out.SetDeleteMark(off, true)
			}
			st.Ambiguous++
			st.RecordsOut++
			return true
		}
		if rec.Deleted {
			st.Deleted++
			return true
		}
		key, rowBytes, err := page.SplitLeafPayload(rec.Payload)
		if err != nil {
			procErr = err
			return false
		}
		if _, err := types.DecodeRow(rowBytes, p.fullSchema, fullRow); err != nil {
			procErr = err
			return false
		}
		if pred != nil && !pred.RunBool(fullRow) {
			st.Filtered++
			return true
		}
		// Projection.
		outRow := fullRow
		outBytes := rowBytes
		recType := uint8(page.RecOrdinary)
		if d.HasProjection() {
			outRow = make(types.Row, len(d.Projection))
			for i, o := range d.Projection {
				outRow[i] = fullRow[o]
			}
			projScratch = types.EncodeRow(projScratch[:0], p.outSchema, outRow)
			outBytes = projScratch
			recType = page.RecNDPProjection
		}
		if agg == nil {
			payload := page.EncodeLeafPayload(nil, key, outBytes)
			if _, err := out.Append(recType, rec.TrxID, payload); err != nil {
				procErr = err
				return false
			}
			st.RecordsOut++
			return true
		}
		// Aggregation path: group switch detection on the group-by
		// columns of the output layout. Ambiguous records do not break
		// groups (they were appended above and skipped here).
		if pend != nil {
			same := true
			for i, g := range d.GroupBy {
				if types.Compare(groupKey[i], outRow[g]) != 0 {
					same = false
					break
				}
			}
			if !same {
				if err := flush(); err != nil {
					procErr = err
					return false
				}
			} else {
				// Previous pending row joins the accumulated state.
				agg.AccumulateRow(pend.out)
				pend = nil
			}
		}
		if pend == nil {
			groupKey = groupKey[:0]
			for _, g := range d.GroupBy {
				groupKey = append(groupKey, outRow[g])
			}
		}
		pend = &pending{
			key: append([]byte(nil), key...),
			row: append([]byte(nil), outBytes...),
			out: outRow.Clone(),
		}
		return true
	})
	if procErr != nil {
		return nil, st, procErr
	}
	if agg != nil {
		if err := flush(); err != nil {
			return nil, st, err
		}
	}
	if out.NumRecords() == 0 {
		// "If NDP predicate filtering removes all of the records in a
		// page, the resulting empty page is indicated specially without
		// requiring explicit materialization" (§IV-C2).
		out = page.NewNDP(src.ID(), src.IndexID(), 0)
		out.SetLSN(src.LSN())
		out.SetPrevPage(src.PrevPage())
		out.SetNextPage(src.NextPage())
		out.SetFlags(page.FlagNDPEmpty)
	}
	return out, st, nil
}

// DecodeAggRecord splits an NDP aggregate record payload into its key,
// base row bytes, decoded base row, and partial states.
func (p *Processor) DecodeAggRecord(payload []byte) (key []byte, row types.Row, states []AggState, err error) {
	key, rest, err := page.SplitLeafPayload(payload)
	if err != nil {
		return nil, nil, nil, err
	}
	row = make(types.Row, p.outSchema.Len())
	n, err := types.DecodeRow(rest, p.outSchema, row)
	if err != nil {
		return nil, nil, nil, err
	}
	states, _, err = DecodeAggStates(rest[n:], len(p.Desc.Aggs))
	if err != nil {
		return nil, nil, nil, err
	}
	return key, row, states, nil
}

// OutSchema exposes the post-NDP row schema.
func (p *Processor) OutSchema() *types.Schema { return p.outSchema }

// FullSchema exposes the pre-NDP row schema.
func (p *Processor) FullSchema() *types.Schema { return p.fullSchema }

// MergeScalarBatch performs cross-page aggregation over the NDP pages of
// one batch I/O request, in batch order. It applies only to scalar
// aggregation (no GROUP BY): "If GROUP BY clause is absent ..., even
// logically non-adjacent pages can be aggregated ... cross-page
// aggregation happens only to the pages of the same I/O request" (§V-C).
//
// Each input page's trailing aggregate record is consumed: its partial
// state merges into the carry, and its base row is folded in once a later
// page supplies a newer base. The final carry is attached to the last
// contributing page as a single aggregate record, reproducing the
// paper's NDP(P1, P2) example. Pages are modified in place.
func (p *Processor) MergeScalarBatch(pages []*page.Page) error {
	d := p.Desc
	if !d.HasAggregation() || len(d.GroupBy) != 0 {
		return nil // grouped or non-aggregating batches are left alone
	}
	carry, err := NewAggregator(d.Aggs)
	if err != nil {
		return err
	}
	type base struct {
		key  []byte
		row  []byte
		out  types.Row
		page *page.Page
	}
	var pend *base
	touched := false
	for _, pg := range pages {
		if pg == nil || !pg.IsNDP() || pg.IsNDPEmpty() {
			continue
		}
		payload, ok := popTrailingAggRecord(pg)
		if !ok {
			continue
		}
		key, row, states, err := p.DecodeAggRecord(payload)
		if err != nil {
			return err
		}
		if pend != nil {
			carry.AccumulateRow(pend.out)
		}
		if err := carry.MergeStates(states); err != nil {
			return err
		}
		rowBytes := types.EncodeRow(nil, p.outSchema, row)
		pend = &base{key: append([]byte(nil), key...), row: rowBytes, out: row, page: pg}
		touched = true
	}
	if !touched {
		return nil
	}
	if pend != nil {
		payload := page.EncodeLeafPayload(nil, pend.key, pend.row)
		payload = EncodeAggStates(payload, carry.States())
		if _, err := pend.page.Append(page.RecNDPAggregate, 0, payload); err != nil {
			return fmt.Errorf("core: cross-page merge overflow: %w", err)
		}
	}
	// Pages that lost their only record become empty-marked.
	for _, pg := range pages {
		if pg != nil && pg.IsNDP() && !pg.IsNDPEmpty() && pg.NumRecords() == 0 {
			pg.SetFlags(page.FlagNDPEmpty)
		}
	}
	return nil
}

// popTrailingAggRecord unlinks and returns the payload of the page's last
// record if it is an NDP aggregate record.
func popTrailingAggRecord(pg *page.Page) ([]byte, bool) {
	prev, last := 0, 0
	var lastRec page.Record
	for off := pg.FirstRecord(); off != 0; {
		r := pg.RecordAt(off)
		prev, last = last, off
		lastRec = r
		off = r.Next()
	}
	if last == 0 || lastRec.Type != page.RecNDPAggregate {
		return nil, false
	}
	payload := append([]byte(nil), lastRec.Payload...)
	pg.Unlink(prev)
	return payload, true
}
