package ir

import (
	"fmt"

	"taurus/internal/expr"
)

// NDP eligibility.
//
// "Not all data types and operators are supported by the LLVM engine in
// Page Stores... The optimizer takes a conservative approach, and
// maintains explicit lists of allowed data types, operators, and
// functions" (§V-B1). ndpAllowedOps is that explicit list; anything
// outside it stays behind as a residual predicate evaluated by the SQL
// executor. SUBSTRING is deliberately excluded, mirroring the paper's
// point that the storage engine supports fewer functions than the
// frontend.
var ndpAllowedOps = map[expr.Op]bool{
	expr.OpConst: true, expr.OpCol: true,
	expr.OpEQ: true, expr.OpNE: true, expr.OpLT: true,
	expr.OpLE: true, expr.OpGT: true, expr.OpGE: true,
	expr.OpAnd: true, expr.OpOr: true, expr.OpNot: true,
	expr.OpAdd: true, expr.OpSub: true, expr.OpMul: true, expr.OpDiv: true,
	expr.OpNeg:  true,
	expr.OpLike: true, expr.OpNotLike: true,
	expr.OpIn: true, expr.OpBetween: true,
	expr.OpIsNull: true, expr.OpIsNotNull: true,
	expr.OpYear: true,
}

// Eligible reports whether the whole expression tree can be compiled to
// NDP IR. Expressions with user-defined or unsupported functions are
// rejected; the optimizer keeps them as residual predicates.
func Eligible(e *expr.Expr) bool {
	if e == nil {
		return false
	}
	if !ndpAllowedOps[e.Op] {
		return false
	}
	for _, k := range e.Kids {
		if !Eligible(k) {
			return false
		}
	}
	return true
}

// Compiler state for one program.
type compiler struct {
	prog    Program
	nextReg int
}

// Compile lowers an expression tree into an IR program. numCols is the
// input row arity the program will run against (the NDP descriptor's
// column list length). Compilation fails for trees that are not Eligible.
func Compile(e *expr.Expr, numCols int) (*Program, error) {
	if !Eligible(e) {
		return nil, fmt.Errorf("ir: expression not NDP-eligible: %s", e)
	}
	c := &compiler{}
	c.prog.NumCols = numCols
	res, err := c.emit(e)
	if err != nil {
		return nil, err
	}
	c.add(Instr{Op: OpRet, B: res})
	c.prog.NumRegs = c.nextReg
	if err := c.prog.Validate(); err != nil {
		return nil, fmt.Errorf("ir: compiler produced invalid program: %w", err)
	}
	return &c.prog, nil
}

func (c *compiler) reg() uint16 {
	r := c.nextReg
	c.nextReg++
	if r > 0xFFFF {
		panic("ir: register overflow")
	}
	return uint16(r)
}

func (c *compiler) add(in Instr) int {
	c.prog.Instrs = append(c.prog.Instrs, in)
	return len(c.prog.Instrs) - 1
}

// emit compiles e and returns the register holding its value.
func (c *compiler) emit(e *expr.Expr) (uint16, error) {
	switch e.Op {
	case expr.OpConst:
		r := c.reg()
		c.prog.Consts = append(c.prog.Consts, e.Val)
		c.add(Instr{Op: OpConst, A: r, B: uint16(len(c.prog.Consts) - 1)})
		return r, nil
	case expr.OpCol:
		r := c.reg()
		c.add(Instr{Op: OpLoadCol, A: r, B: uint16(e.Col)})
		return r, nil
	case expr.OpEQ, expr.OpNE, expr.OpLT, expr.OpLE, expr.OpGT, expr.OpGE:
		b, err := c.emit(e.Kids[0])
		if err != nil {
			return 0, err
		}
		d, err := c.emit(e.Kids[1])
		if err != nil {
			return 0, err
		}
		r := c.reg()
		c.add(Instr{Op: OpCmp, Sub: uint8(cmpKindOf(e.Op)), A: r, B: b, C: d})
		return r, nil
	case expr.OpAnd, expr.OpOr:
		// Short-circuit form, mirroring Listing 4's "shortcut may
		// happen" branch: evaluate the left side, move it to the result
		// register, branch past the right side on a definite outcome,
		// otherwise combine with full three-valued logic.
		left, err := c.emit(e.Kids[0])
		if err != nil {
			return 0, err
		}
		r := c.reg()
		c.add(Instr{Op: OpMov, A: r, B: left})
		brOp := OpBrFalse
		combine := OpAnd
		if e.Op == expr.OpOr {
			brOp = OpBrTrue
			combine = OpOr
		}
		brAt := c.add(Instr{Op: brOp, B: left}) // target patched below
		right, err := c.emit(e.Kids[1])
		if err != nil {
			return 0, err
		}
		c.add(Instr{Op: combine, A: r, B: left, C: right})
		c.prog.Instrs[brAt].C = uint16(len(c.prog.Instrs))
		return r, nil
	case expr.OpNot:
		b, err := c.emit(e.Kids[0])
		if err != nil {
			return 0, err
		}
		r := c.reg()
		c.add(Instr{Op: OpNot, A: r, B: b})
		return r, nil
	case expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv:
		b, err := c.emit(e.Kids[0])
		if err != nil {
			return 0, err
		}
		d, err := c.emit(e.Kids[1])
		if err != nil {
			return 0, err
		}
		r := c.reg()
		c.add(Instr{Op: OpArith, Sub: uint8(arithKindOf(e.Op)), A: r, B: b, C: d})
		return r, nil
	case expr.OpNeg:
		b, err := c.emit(e.Kids[0])
		if err != nil {
			return 0, err
		}
		r := c.reg()
		c.add(Instr{Op: OpNeg, A: r, B: b})
		return r, nil
	case expr.OpLike, expr.OpNotLike:
		if e.Kids[1].Op != expr.OpConst {
			return 0, fmt.Errorf("ir: LIKE pattern must be a constant")
		}
		b, err := c.emit(e.Kids[0])
		if err != nil {
			return 0, err
		}
		c.prog.Consts = append(c.prog.Consts, e.Kids[1].Val)
		r := c.reg()
		sub := uint8(0)
		if e.Op == expr.OpNotLike {
			sub = 1
		}
		c.add(Instr{Op: OpLike, Sub: sub, A: r, B: b, C: uint16(len(c.prog.Consts) - 1)})
		return r, nil
	case expr.OpIn:
		b, err := c.emit(e.Kids[0])
		if err != nil {
			return 0, err
		}
		start := uint16(len(c.prog.Consts))
		for _, k := range e.Kids[1:] {
			if k.Op != expr.OpConst {
				return 0, fmt.Errorf("ir: IN list elements must be constants")
			}
			c.prog.Consts = append(c.prog.Consts, k.Val)
		}
		end := uint16(len(c.prog.Consts))
		c.prog.Lists = append(c.prog.Lists, [2]uint16{start, end})
		r := c.reg()
		c.add(Instr{Op: OpIn, A: r, B: b, C: uint16(len(c.prog.Lists) - 1)})
		return r, nil
	case expr.OpBetween:
		x, err := c.emit(e.Kids[0])
		if err != nil {
			return 0, err
		}
		lo, err := c.emit(e.Kids[1])
		if err != nil {
			return 0, err
		}
		hi, err := c.emit(e.Kids[2])
		if err != nil {
			return 0, err
		}
		r := c.reg()
		c.add(Instr{Op: OpBetween, A: r, B: x, C: lo, D: hi})
		return r, nil
	case expr.OpIsNull, expr.OpIsNotNull:
		b, err := c.emit(e.Kids[0])
		if err != nil {
			return 0, err
		}
		r := c.reg()
		sub := uint8(0)
		if e.Op == expr.OpIsNotNull {
			sub = 1
		}
		c.add(Instr{Op: OpIsNull, Sub: sub, A: r, B: b})
		return r, nil
	case expr.OpYear:
		b, err := c.emit(e.Kids[0])
		if err != nil {
			return 0, err
		}
		r := c.reg()
		c.add(Instr{Op: OpYear, A: r, B: b})
		return r, nil
	default:
		return 0, fmt.Errorf("ir: op %v not compilable", e.Op)
	}
}

func cmpKindOf(op expr.Op) CmpKind {
	switch op {
	case expr.OpEQ:
		return CmpEQ
	case expr.OpNE:
		return CmpNE
	case expr.OpLT:
		return CmpLT
	case expr.OpLE:
		return CmpLE
	case expr.OpGT:
		return CmpGT
	default:
		return CmpGE
	}
}

func arithKindOf(op expr.Op) ArithKind {
	switch op {
	case expr.OpAdd:
		return ArithAdd
	case expr.OpSub:
		return ArithSub
	case expr.OpMul:
		return ArithMul
	default:
		return ArithDiv
	}
}
