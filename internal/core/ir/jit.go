package ir

import (
	"taurus/internal/expr"
	"taurus/internal/types"
)

// arithFused is the arithmetic kernel shared with the tree walker so the
// JIT cannot drift from frontend semantics.
func arithFused(op expr.Op, a, b types.Datum) types.Datum {
	return expr.Arith(op, a, b)
}

// JIT compilation.
//
// The paper's Page Stores just-in-time compile the received LLVM bitcode
// into architecture-specific native code before the first call (§V-B2,
// step 4). Pure-Go cannot emit machine code, so the closest equivalent is
// direct-threaded code: each instruction becomes a fused closure with its
// operands, constants, and branch targets pre-resolved, and execution is
// an indirect call chain with no opcode decoding. The speedup of Compiled
// over NewVM (interpreted) reproduces the compiled-vs-interpreted gap the
// paper relies on, and BenchmarkIRVsInterpreter quantifies it.

// Compiled is a JIT-compiled program. Create per worker thread via
// Program.Compile; not safe for concurrent use because of the register
// file, matching how Page Store worker threads each JIT (or fetch from
// the descriptor cache and clone) their own executable state.
type Compiled struct {
	steps []step
	regs  []types.Datum
}

// step executes one fused instruction and returns the next step index.
type step func(regs []types.Datum, row types.Row) int

const stepReturn = -1

// CompileProgram lowers a validated program into threaded code.
func CompileProgram(p *Program) *Compiled {
	c := &Compiled{
		steps: make([]step, len(p.Instrs)),
		regs:  make([]types.Datum, p.NumRegs),
	}
	for i, in := range p.Instrs {
		c.steps[i] = fuse(p, i, in)
	}
	return c
}

// Clone returns an executable copy sharing the immutable threaded code
// but with a private register file; used by the descriptor cache to hand
// each worker thread its own evaluator without re-JITting.
func (c *Compiled) Clone() *Compiled {
	return &Compiled{steps: c.steps, regs: make([]types.Datum, len(c.regs))}
}

// Run evaluates the compiled program against row.
func (c *Compiled) Run(row types.Row) types.Datum {
	regs := c.regs
	pc := 0
	for pc >= 0 {
		pc = c.steps[pc](regs, row)
	}
	return regs[len(regs)-1] // by convention fuse(OpRet) stores here
}

// RunBool evaluates the program as a WHERE predicate (NULL → false).
func (c *Compiled) RunBool(row types.Row) bool {
	v := c.Run(row)
	return !v.IsNull() && v.I != 0
}

// fuse builds the closure for instruction i. Operand indices, constants,
// list slices, and jump targets are captured at compile time.
func fuse(p *Program, i int, in Instr) step {
	next := i + 1
	a, b, cc, d := int(in.A), int(in.B), int(in.C), int(in.D)
	switch in.Op {
	case OpLoadCol:
		return func(regs []types.Datum, row types.Row) int {
			regs[a] = row[b]
			return next
		}
	case OpConst:
		v := p.Consts[in.B]
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = v
			return next
		}
	case OpCmp:
		k := CmpKind(in.Sub)
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = evalCmp(k, regs[b], regs[cc])
			return next
		}
	case OpAnd:
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = evalAnd(regs[b], regs[cc])
			return next
		}
	case OpOr:
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = evalOr(regs[b], regs[cc])
			return next
		}
	case OpNot:
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = evalNot(regs[b])
			return next
		}
	case OpArith:
		op := arithExprOp(ArithKind(in.Sub))
		return func(regs []types.Datum, _ types.Row) int {
			x, y := regs[b], regs[cc]
			if x.IsNull() || y.IsNull() {
				regs[a] = types.Null()
			} else {
				regs[a] = arithFused(op, x, y)
			}
			return next
		}
	case OpNeg:
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = evalNeg(regs[b])
			return next
		}
	case OpLike:
		pattern := p.Consts[in.C].S
		negate := in.Sub == 1
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = evalLike(regs[b], pattern, negate)
			return next
		}
	case OpIn:
		lr := p.Lists[in.C]
		list := p.Consts[lr[0]:lr[1]]
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = evalIn(regs[b], list)
			return next
		}
	case OpBetween:
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = evalBetween(regs[b], regs[cc], regs[d])
			return next
		}
	case OpIsNull:
		negate := in.Sub == 1
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = evalIsNull(regs[b], negate)
			return next
		}
	case OpYear:
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = evalYear(regs[b])
			return next
		}
	case OpMov:
		return func(regs []types.Datum, _ types.Row) int {
			regs[a] = regs[b]
			return next
		}
	case OpBrFalse:
		return func(regs []types.Datum, _ types.Row) int {
			v := regs[b]
			if !v.IsNull() && v.I == 0 {
				return cc
			}
			return next
		}
	case OpBrTrue:
		return func(regs []types.Datum, _ types.Row) int {
			v := regs[b]
			if !v.IsNull() && v.I != 0 {
				return cc
			}
			return next
		}
	case OpJmp:
		return func(_ []types.Datum, _ types.Row) int { return cc }
	case OpRet:
		last := p.NumRegs - 1
		return func(regs []types.Datum, _ types.Row) int {
			regs[last] = regs[b]
			return stepReturn
		}
	default:
		panic("ir: unfusable opcode")
	}
}
