package ir

import (
	"taurus/internal/expr"
	"taurus/internal/types"
)

// VM executes an IR program by switch dispatch. This is the "LLVM
// interpretation" half of the paper's hybrid ("combines LLVM
// interpretation and execution", §V-B2): correct but slower than the
// JIT-compiled form, and used by Page Stores before a program has been
// JITed (or in tests, to cross-check the JIT).
type VM struct {
	prog *Program
	regs []types.Datum
}

// NewVM prepares a VM with a private register file for the program. A VM
// is not safe for concurrent use; Page Store worker threads each hold
// their own.
func NewVM(p *Program) *VM {
	return &VM{prog: p, regs: make([]types.Datum, p.NumRegs)}
}

// Run evaluates the program against row and returns the result datum
// (tri-state boolean for predicates).
func (vm *VM) Run(row types.Row) types.Datum {
	regs := vm.regs
	prog := vm.prog
	pc := 0
	for {
		in := prog.Instrs[pc]
		switch in.Op {
		case OpLoadCol:
			regs[in.A] = row[in.B]
		case OpConst:
			regs[in.A] = prog.Consts[in.B]
		case OpCmp:
			regs[in.A] = evalCmp(CmpKind(in.Sub), regs[in.B], regs[in.C])
		case OpAnd:
			regs[in.A] = evalAnd(regs[in.B], regs[in.C])
		case OpOr:
			regs[in.A] = evalOr(regs[in.B], regs[in.C])
		case OpNot:
			regs[in.A] = evalNot(regs[in.B])
		case OpArith:
			a, b := regs[in.B], regs[in.C]
			if a.IsNull() || b.IsNull() {
				regs[in.A] = types.Null()
			} else {
				regs[in.A] = expr.Arith(arithExprOp(ArithKind(in.Sub)), a, b)
			}
		case OpNeg:
			regs[in.A] = evalNeg(regs[in.B])
		case OpLike:
			regs[in.A] = evalLike(regs[in.B], prog.Consts[in.C].S, in.Sub == 1)
		case OpIn:
			lr := prog.Lists[in.C]
			regs[in.A] = evalIn(regs[in.B], prog.Consts[lr[0]:lr[1]])
		case OpBetween:
			regs[in.A] = evalBetween(regs[in.B], regs[in.C], regs[in.D])
		case OpIsNull:
			regs[in.A] = evalIsNull(regs[in.B], in.Sub == 1)
		case OpYear:
			regs[in.A] = evalYear(regs[in.B])
		case OpMov:
			regs[in.A] = regs[in.B]
		case OpBrFalse:
			v := regs[in.B]
			if !v.IsNull() && v.I == 0 {
				pc = int(in.C)
				continue
			}
		case OpBrTrue:
			v := regs[in.B]
			if !v.IsNull() && v.I != 0 {
				pc = int(in.C)
				continue
			}
		case OpJmp:
			pc = int(in.C)
			continue
		case OpRet:
			return regs[in.B]
		}
		pc++
	}
}

// RunBool evaluates the program as a WHERE predicate (NULL → false).
func (vm *VM) RunBool(row types.Row) bool {
	v := vm.Run(row)
	return !v.IsNull() && v.I != 0
}

// Shared evaluation helpers used by both the VM and the JIT so the two
// paths cannot diverge.

var (
	dTrue  = types.NewInt(1)
	dFalse = types.NewInt(0)
)

func evalCmp(k CmpKind, a, b types.Datum) types.Datum {
	if a.IsNull() || b.IsNull() {
		return types.Null()
	}
	c := types.Compare(a, b)
	var ok bool
	switch k {
	case CmpEQ:
		ok = c == 0
	case CmpNE:
		ok = c != 0
	case CmpLT:
		ok = c < 0
	case CmpLE:
		ok = c <= 0
	case CmpGT:
		ok = c > 0
	case CmpGE:
		ok = c >= 0
	}
	if ok {
		return dTrue
	}
	return dFalse
}

func evalAnd(a, b types.Datum) types.Datum {
	if !a.IsNull() && a.I == 0 {
		return dFalse
	}
	if !b.IsNull() && b.I == 0 {
		return dFalse
	}
	if a.IsNull() || b.IsNull() {
		return types.Null()
	}
	return dTrue
}

func evalOr(a, b types.Datum) types.Datum {
	if !a.IsNull() && a.I != 0 {
		return dTrue
	}
	if !b.IsNull() && b.I != 0 {
		return dTrue
	}
	if a.IsNull() || b.IsNull() {
		return types.Null()
	}
	return dFalse
}

func evalNot(a types.Datum) types.Datum {
	if a.IsNull() {
		return types.Null()
	}
	if a.I != 0 {
		return dFalse
	}
	return dTrue
}

func evalNeg(a types.Datum) types.Datum {
	if a.IsNull() {
		return types.Null()
	}
	if a.K == types.KindFloat {
		return types.NewFloat(-a.F)
	}
	return types.Datum{K: a.K, I: -a.I}
}

func evalLike(a types.Datum, pattern string, negate bool) types.Datum {
	if a.IsNull() {
		return types.Null()
	}
	m := expr.LikeMatch(a.S, pattern)
	if negate {
		m = !m
	}
	if m {
		return dTrue
	}
	return dFalse
}

func evalIn(x types.Datum, list []types.Datum) types.Datum {
	if x.IsNull() {
		return types.Null()
	}
	sawNull := false
	for _, v := range list {
		if v.IsNull() {
			sawNull = true
			continue
		}
		if types.Compare(x, v) == 0 {
			return dTrue
		}
	}
	if sawNull {
		return types.Null()
	}
	return dFalse
}

func evalBetween(x, lo, hi types.Datum) types.Datum {
	if x.IsNull() || lo.IsNull() || hi.IsNull() {
		return types.Null()
	}
	if types.Compare(x, lo) >= 0 && types.Compare(x, hi) <= 0 {
		return dTrue
	}
	return dFalse
}

func evalIsNull(a types.Datum, negate bool) types.Datum {
	isNull := a.IsNull()
	if negate {
		isNull = !isNull
	}
	if isNull {
		return dTrue
	}
	return dFalse
}

func evalYear(a types.Datum) types.Datum {
	if a.IsNull() {
		return types.Null()
	}
	return types.NewInt(int64(expr.YearOfEpochDays(int32(a.I))))
}

func arithExprOp(k ArithKind) expr.Op {
	switch k {
	case ArithAdd:
		return expr.OpAdd
	case ArithSub:
		return expr.OpSub
	case ArithMul:
		return expr.OpMul
	default:
		return expr.OpDiv
	}
}
