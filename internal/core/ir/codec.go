package ir

import (
	"encoding/binary"
	"fmt"
	"math"

	"taurus/internal/types"
)

// Binary encoding of IR programs.
//
// The encoded program is embedded in the NDP descriptor, which Page
// Stores receive as "a type-less byte stream" (§IV-D) — so this codec is
// self-describing and defensively decoded. Layout:
//
//	magic "TIR1"
//	uvarint numRegs, numCols
//	uvarint nConsts, then each datum (kind byte + payload)
//	uvarint nLists, then each [start,end) pair
//	uvarint nInstrs, then each instruction (op, sub, a, b, c, d)

var irMagic = [4]byte{'T', 'I', 'R', '1'}

// Encode serializes the program.
func (p *Program) Encode() []byte {
	buf := make([]byte, 0, 16+len(p.Instrs)*8)
	buf = append(buf, irMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(p.NumRegs))
	buf = binary.AppendUvarint(buf, uint64(p.NumCols))
	buf = binary.AppendUvarint(buf, uint64(len(p.Consts)))
	for _, d := range p.Consts {
		buf = appendDatum(buf, d)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Lists)))
	for _, l := range p.Lists {
		buf = binary.AppendUvarint(buf, uint64(l[0]))
		buf = binary.AppendUvarint(buf, uint64(l[1]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Instrs)))
	for _, in := range p.Instrs {
		buf = append(buf, byte(in.Op), in.Sub)
		buf = binary.AppendUvarint(buf, uint64(in.A))
		buf = binary.AppendUvarint(buf, uint64(in.B))
		buf = binary.AppendUvarint(buf, uint64(in.C))
		buf = binary.AppendUvarint(buf, uint64(in.D))
	}
	return buf
}

// Decode parses and validates an encoded program.
func Decode(buf []byte) (*Program, error) {
	r := reader{buf: buf}
	var magic [4]byte
	if err := r.bytes(magic[:]); err != nil || magic != irMagic {
		return nil, fmt.Errorf("ir: bad magic")
	}
	p := &Program{}
	numRegs, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	numCols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if numRegs > 1<<16 || numCols > 1<<16 {
		return nil, fmt.Errorf("ir: implausible register/column counts %d/%d", numRegs, numCols)
	}
	p.NumRegs, p.NumCols = int(numRegs), int(numCols)
	nConsts, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nConsts > 1<<20 {
		return nil, fmt.Errorf("ir: implausible constant pool size %d", nConsts)
	}
	p.Consts = make([]types.Datum, nConsts)
	for i := range p.Consts {
		p.Consts[i], err = r.datum()
		if err != nil {
			return nil, err
		}
	}
	nLists, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nLists > nConsts+1 {
		return nil, fmt.Errorf("ir: implausible list count %d", nLists)
	}
	p.Lists = make([][2]uint16, nLists)
	for i := range p.Lists {
		s, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		e, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if s > math.MaxUint16 || e > math.MaxUint16 {
			return nil, fmt.Errorf("ir: list range overflow")
		}
		p.Lists[i] = [2]uint16{uint16(s), uint16(e)}
	}
	nInstrs, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nInstrs > 1<<20 {
		return nil, fmt.Errorf("ir: implausible instruction count %d", nInstrs)
	}
	p.Instrs = make([]Instr, nInstrs)
	for i := range p.Instrs {
		var op, sub byte
		if op, err = r.byte(); err != nil {
			return nil, err
		}
		if sub, err = r.byte(); err != nil {
			return nil, err
		}
		var a, b, c, d uint64
		if a, err = r.uvarint(); err != nil {
			return nil, err
		}
		if b, err = r.uvarint(); err != nil {
			return nil, err
		}
		if c, err = r.uvarint(); err != nil {
			return nil, err
		}
		if d, err = r.uvarint(); err != nil {
			return nil, err
		}
		if a > math.MaxUint16 || b > math.MaxUint16 || c > math.MaxUint16 || d > math.MaxUint16 {
			return nil, fmt.Errorf("ir: instr %d operand overflow", i)
		}
		p.Instrs[i] = Instr{Op: Opcode(op), Sub: sub, A: uint16(a), B: uint16(b), C: uint16(c), D: uint16(d)}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func appendDatum(buf []byte, d types.Datum) []byte {
	buf = append(buf, byte(d.K))
	switch d.K {
	case types.KindNull:
	case types.KindInt, types.KindDecimal, types.KindDate:
		buf = binary.AppendVarint(buf, d.I)
	case types.KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(d.F))
		buf = append(buf, b[:]...)
	case types.KindString:
		buf = binary.AppendUvarint(buf, uint64(len(d.S)))
		buf = append(buf, d.S...)
	}
	return buf
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("ir: truncated program")
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) bytes(dst []byte) error {
	if r.off+len(dst) > len(r.buf) {
		return fmt.Errorf("ir: truncated program")
	}
	copy(dst, r.buf[r.off:])
	r.off += len(dst)
	return nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("ir: truncated uvarint")
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("ir: truncated varint")
	}
	r.off += n
	return v, nil
}

func (r *reader) datum() (types.Datum, error) {
	k, err := r.byte()
	if err != nil {
		return types.Null(), err
	}
	switch types.Kind(k) {
	case types.KindNull:
		return types.Null(), nil
	case types.KindInt, types.KindDecimal, types.KindDate:
		v, err := r.varint()
		if err != nil {
			return types.Null(), err
		}
		return types.Datum{K: types.Kind(k), I: v}, nil
	case types.KindFloat:
		var b [8]byte
		if err := r.bytes(b[:]); err != nil {
			return types.Null(), err
		}
		return types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[:]))), nil
	case types.KindString:
		l, err := r.uvarint()
		if err != nil {
			return types.Null(), err
		}
		if r.off+int(l) > len(r.buf) {
			return types.Null(), fmt.Errorf("ir: truncated string constant")
		}
		s := string(r.buf[r.off : r.off+int(l)])
		r.off += int(l)
		return types.NewString(s), nil
	default:
		return types.Null(), fmt.Errorf("ir: unknown datum kind %d", k)
	}
}
