// Package ir implements the predicate intermediate representation that
// Taurus ships from the compute node to Page Stores.
//
// The paper converts pushed-down predicates into LLVM bitcode on the
// compute node and just-in-time compiles them to native code on storage
// nodes (§V-B2, Listing 4). This reproduction substitutes a small
// register-based IR with the same structure: expressions are compiled
// bottom-up into instructions over virtual registers, with explicit
// short-circuit branches ("shortcut may happen" in the paper's listing);
// the encoded program travels inside the NDP descriptor; and the Page
// Store side "JITs" the program into an array of fused Go closures
// (direct-threaded code) before the first call, caching the result in the
// descriptor cache. A plain switch-dispatch VM is kept as the
// interpretation fallback, and both must agree with the frontend's
// tree-walking evaluator on every input — the paper's correctness
// requirement that storage-side evaluation produce exactly the result of
// the hypothetical frontend evaluation.
package ir

import (
	"fmt"

	"taurus/internal/types"
)

// Opcode is an IR instruction opcode.
type Opcode uint8

const (
	// OpLoadCol loads input column B into register A.
	OpLoadCol Opcode = iota
	// OpConst loads constant-pool entry B into register A.
	OpConst
	// OpCmp compares registers B and C with predicate Sub, storing the
	// tri-state boolean (0/1/NULL) in A. Mirrors llvm icmp/fcmp.
	OpCmp
	// OpAnd / OpOr combine tri-state booleans in B and C into A with SQL
	// three-valued logic. OpNot negates B into A.
	OpAnd
	OpOr
	OpNot
	// OpArith applies arithmetic Sub (see ArithKind) to B and C into A.
	OpArith
	// OpNeg arithmetically negates B into A.
	OpNeg
	// OpLike matches register B against the constant-pool pattern C,
	// storing the boolean in A. Sub=1 negates (NOT LIKE).
	OpLike
	// OpIn tests register B for membership in the constant-pool value
	// set C (a list constant), storing the tri-state result in A.
	OpIn
	// OpBetween tests B ∈ [C, D] into A (inclusive).
	OpBetween
	// OpIsNull stores into A whether B is NULL; Sub=1 inverts.
	OpIsNull
	// OpYear extracts the calendar year of the date in B into A.
	OpYear
	// OpMov copies register B into A (the reproduction's phi node).
	OpMov
	// OpBrFalse jumps to instruction C when register B is definitely
	// false (non-NULL zero). OpBrTrue jumps when definitely true.
	OpBrFalse
	OpBrTrue
	// OpJmp jumps unconditionally to C.
	OpJmp
	// OpRet returns register B as the program result.
	OpRet
)

// CmpKind enumerates comparison predicates for OpCmp.Sub.
type CmpKind uint8

const (
	CmpEQ CmpKind = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// ArithKind enumerates arithmetic operators for OpArith.Sub.
type ArithKind uint8

const (
	ArithAdd ArithKind = iota
	ArithSub
	ArithMul
	ArithDiv
)

// Instr is one IR instruction. A is the destination register; B and C are
// operand registers or, for branch targets and pool references, indices;
// D is a third operand register (OpBetween only). Sub refines the opcode.
type Instr struct {
	Op  Opcode
	Sub uint8
	A   uint16
	B   uint16
	C   uint16
	D   uint16
}

// Program is a compiled predicate: a straight-line instruction sequence
// with branches, a constant pool, and register/column requirements. The
// result is the tri-state boolean (or scalar) left by OpRet.
type Program struct {
	Instrs []Instr
	// Consts is the constant pool. List constants (for OpIn) are stored
	// as consecutive pool entries referenced via ListRanges.
	Consts []types.Datum
	// Lists maps an OpIn C-operand to a [start,end) range in Consts.
	Lists [][2]uint16
	// NumRegs is the register file size needed to run the program.
	NumRegs int
	// NumCols is the minimum input row arity.
	NumCols int
}

func (p *Program) String() string {
	out := ""
	for i, in := range p.Instrs {
		out += fmt.Sprintf("%3d: %s\n", i, formatInstr(in))
	}
	return out
}

var cmpNames = [...]string{"eq", "ne", "slt", "sle", "sgt", "sge"}
var arithNames = [...]string{"add", "sub", "mul", "div"}

func formatInstr(in Instr) string {
	switch in.Op {
	case OpLoadCol:
		return fmt.Sprintf("%%r%d = load col %d", in.A, in.B)
	case OpConst:
		return fmt.Sprintf("%%r%d = const #%d", in.A, in.B)
	case OpCmp:
		return fmt.Sprintf("%%r%d = icmp %s %%r%d, %%r%d", in.A, cmpNames[in.Sub], in.B, in.C)
	case OpAnd:
		return fmt.Sprintf("%%r%d = and %%r%d, %%r%d", in.A, in.B, in.C)
	case OpOr:
		return fmt.Sprintf("%%r%d = or %%r%d, %%r%d", in.A, in.B, in.C)
	case OpNot:
		return fmt.Sprintf("%%r%d = not %%r%d", in.A, in.B)
	case OpArith:
		return fmt.Sprintf("%%r%d = %s %%r%d, %%r%d", in.A, arithNames[in.Sub], in.B, in.C)
	case OpNeg:
		return fmt.Sprintf("%%r%d = neg %%r%d", in.A, in.B)
	case OpLike:
		neg := ""
		if in.Sub == 1 {
			neg = "not_"
		}
		return fmt.Sprintf("%%r%d = %slike %%r%d, pat #%d", in.A, neg, in.B, in.C)
	case OpIn:
		return fmt.Sprintf("%%r%d = in %%r%d, list %d", in.A, in.B, in.C)
	case OpBetween:
		return fmt.Sprintf("%%r%d = between %%r%d, %%r%d, %%r%d", in.A, in.B, in.C, in.D)
	case OpIsNull:
		if in.Sub == 1 {
			return fmt.Sprintf("%%r%d = isnotnull %%r%d", in.A, in.B)
		}
		return fmt.Sprintf("%%r%d = isnull %%r%d", in.A, in.B)
	case OpYear:
		return fmt.Sprintf("%%r%d = year %%r%d", in.A, in.B)
	case OpMov:
		return fmt.Sprintf("%%r%d = mov %%r%d", in.A, in.B)
	case OpBrFalse:
		return fmt.Sprintf("br_false %%r%d, %d", in.B, in.C)
	case OpBrTrue:
		return fmt.Sprintf("br_true %%r%d, %d", in.B, in.C)
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.C)
	case OpRet:
		return fmt.Sprintf("ret %%r%d", in.B)
	default:
		return fmt.Sprintf("op%d", in.Op)
	}
}

// Validate checks that the program is well formed: register and column
// operands in bounds, branch targets valid, pool references valid, and the
// program ends in (or always reaches) OpRet. Page Stores validate every
// received program before execution — they cannot trust that the opaque
// descriptor bytes came from a well-behaved frontend.
func (p *Program) Validate() error {
	n := len(p.Instrs)
	if n == 0 {
		return fmt.Errorf("ir: empty program")
	}
	checkReg := func(r uint16) error {
		if int(r) >= p.NumRegs {
			return fmt.Errorf("ir: register r%d out of range (%d regs)", r, p.NumRegs)
		}
		return nil
	}
	checkTarget := func(t uint16) error {
		if int(t) >= n {
			return fmt.Errorf("ir: branch target %d out of range (%d instrs)", t, n)
		}
		return nil
	}
	sawRet := false
	for i, in := range p.Instrs {
		var err error
		switch in.Op {
		case OpLoadCol:
			if int(in.B) >= p.NumCols {
				return fmt.Errorf("ir: instr %d loads column %d beyond NumCols %d", i, in.B, p.NumCols)
			}
			err = checkReg(in.A)
		case OpConst:
			if int(in.B) >= len(p.Consts) {
				return fmt.Errorf("ir: instr %d references const #%d beyond pool %d", i, in.B, len(p.Consts))
			}
			err = checkReg(in.A)
		case OpCmp:
			if in.Sub > uint8(CmpGE) {
				return fmt.Errorf("ir: instr %d bad cmp predicate %d", i, in.Sub)
			}
			err = firstErr(checkReg(in.A), checkReg(in.B), checkReg(in.C))
		case OpAnd, OpOr, OpArith:
			if in.Op == OpArith && in.Sub > uint8(ArithDiv) {
				return fmt.Errorf("ir: instr %d bad arith kind %d", i, in.Sub)
			}
			err = firstErr(checkReg(in.A), checkReg(in.B), checkReg(in.C))
		case OpNot, OpNeg, OpIsNull, OpYear, OpMov:
			err = firstErr(checkReg(in.A), checkReg(in.B))
		case OpLike:
			if int(in.C) >= len(p.Consts) {
				return fmt.Errorf("ir: instr %d LIKE pattern #%d beyond pool", i, in.C)
			}
			if p.Consts[in.C].K != types.KindString {
				return fmt.Errorf("ir: instr %d LIKE pattern is not a string", i)
			}
			err = firstErr(checkReg(in.A), checkReg(in.B))
		case OpIn:
			if int(in.C) >= len(p.Lists) {
				return fmt.Errorf("ir: instr %d IN list %d beyond %d lists", i, in.C, len(p.Lists))
			}
			lr := p.Lists[in.C]
			if lr[0] > lr[1] || int(lr[1]) > len(p.Consts) {
				return fmt.Errorf("ir: instr %d IN list range [%d,%d) invalid", i, lr[0], lr[1])
			}
			err = firstErr(checkReg(in.A), checkReg(in.B))
		case OpBetween:
			err = firstErr(checkReg(in.A), checkReg(in.B), checkReg(in.C), checkReg(in.D))
		case OpBrFalse, OpBrTrue:
			err = firstErr(checkReg(in.B), checkTarget(in.C))
		case OpJmp:
			err = checkTarget(in.C)
		case OpRet:
			err = checkReg(in.B)
			sawRet = true
		default:
			return fmt.Errorf("ir: instr %d unknown opcode %d", i, in.Op)
		}
		if err != nil {
			return fmt.Errorf("ir: instr %d: %w", i, err)
		}
	}
	if !sawRet {
		return fmt.Errorf("ir: program has no ret")
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
