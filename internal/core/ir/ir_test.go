package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"taurus/internal/expr"
	"taurus/internal/types"
)

// mustCompile compiles or fails the test.
func mustCompile(t *testing.T, e *expr.Expr, cols int) *Program {
	t.Helper()
	p, err := Compile(e, cols)
	if err != nil {
		t.Fatalf("Compile(%s): %v", e, err)
	}
	return p
}

func TestCompileSimplePredicate(t *testing.T) {
	// The paper's Listing 4 predicate: (a > 1 AND b > 2) OR c >= 3.
	e := expr.Or(
		expr.And(expr.GT(expr.Col(0, "a"), expr.ConstInt(1)),
			expr.GT(expr.Col(1, "b"), expr.ConstInt(2))),
		expr.GE(expr.Col(2, "c"), expr.ConstInt(3)))
	p := mustCompile(t, e, 3)
	vm := NewVM(p)
	jit := CompileProgram(p)
	cases := []struct {
		a, b, c int64
		want    bool
	}{
		{2, 3, 0, true},  // left arm true
		{2, 1, 0, false}, // left fails on b, right fails
		{0, 9, 3, true},  // right arm true (shortcut on a)
		{0, 0, 2, false}, // all fail
		{2, 3, 9, true},  // both arms true
	}
	for _, c := range cases {
		row := types.Row{types.NewInt(c.a), types.NewInt(c.b), types.NewInt(c.c)}
		if got := vm.RunBool(row); got != c.want {
			t.Errorf("VM(%v) = %v, want %v", row, got, c.want)
		}
		if got := jit.RunBool(row); got != c.want {
			t.Errorf("JIT(%v) = %v, want %v", row, got, c.want)
		}
	}
	// The disassembly should show the short-circuit branches.
	asm := p.String()
	if !strings.Contains(asm, "br_false") || !strings.Contains(asm, "br_true") {
		t.Errorf("expected short-circuit branches in:\n%s", asm)
	}
}

func TestShortCircuitSkipsRightSide(t *testing.T) {
	// With a=false the AND must not read column 1; give it an
	// out-of-range ordinal masked by numCols=2 and a row where reading
	// col 1 would be observable. We verify by confirming correct result
	// with a NULL right side that would otherwise poison the result.
	e := expr.And(expr.GT(expr.Col(0, "a"), expr.ConstInt(10)),
		expr.EQ(expr.Col(1, "b"), expr.ConstInt(1)))
	p := mustCompile(t, e, 2)
	vm := NewVM(p)
	row := types.Row{types.NewInt(0), types.Null()}
	// false AND NULL = false: the shortcut and the 3VL combine agree.
	if vm.RunBool(row) {
		t.Error("false AND NULL should be false")
	}
	v := vm.Run(row)
	if v.IsNull() || v.I != 0 {
		t.Errorf("false AND NULL = %v, want definite false", v)
	}
}

func TestEligible(t *testing.T) {
	ok := expr.And(expr.GT(expr.Col(0, "a"), expr.ConstInt(1)),
		expr.Like(expr.Col(1, "s"), expr.ConstString("x%")))
	if !Eligible(ok) {
		t.Error("simple predicate should be eligible")
	}
	bad := expr.EQ(expr.New(expr.OpSubstr, expr.Col(0, "s"), expr.ConstInt(1), expr.ConstInt(2)),
		expr.ConstString("ab"))
	if Eligible(bad) {
		t.Error("SUBSTRING is not in the NDP allowed list (§V-B1)")
	}
	if Eligible(nil) {
		t.Error("nil is not eligible")
	}
	if _, err := Compile(bad, 1); err == nil {
		t.Error("Compile should reject ineligible trees")
	}
}

func TestCompileRejectsNonConstPatterns(t *testing.T) {
	// LIKE with a non-constant pattern and IN with non-constant list
	// elements are rejected (MySQL would allow them; our Page Store
	// engine keeps them residual).
	e := expr.Like(expr.Col(0, "a"), expr.Col(1, "b"))
	if _, err := Compile(e, 2); err == nil {
		t.Error("LIKE col should not compile")
	}
	e2 := expr.In(expr.Col(0, "a"), expr.Col(1, "b"))
	if _, err := Compile(e2, 2); err == nil {
		t.Error("IN col should not compile")
	}
}

// randExpr builds a random NDP-eligible predicate over numeric columns
// 0..2 (int), 3 (date), 4 (string).
func randExpr(r *rand.Rand, depth int) *expr.Expr {
	if depth <= 0 {
		// Leaf comparison.
		switch r.Intn(6) {
		case 0:
			return expr.GT(expr.Col(r.Intn(3), ""), expr.ConstInt(r.Int63n(100)-50))
		case 1:
			return expr.LE(expr.Col(r.Intn(3), ""), expr.ConstInt(r.Int63n(100)-50))
		case 2:
			return expr.Between(expr.Col(r.Intn(3), ""), expr.ConstInt(-20), expr.ConstInt(int64(r.Intn(40))))
		case 3:
			return expr.EQ(expr.Year(expr.Col(3, "")), expr.ConstInt(int64(1992+r.Intn(8))))
		case 4:
			pats := []string{"a%", "%b", "%c%", "a_c", "%"}
			return expr.Like(expr.Col(4, ""), expr.ConstString(pats[r.Intn(len(pats))]))
		default:
			return expr.In(expr.Col(r.Intn(3), ""),
				expr.ConstInt(r.Int63n(20)), expr.ConstInt(r.Int63n(20)), expr.ConstInt(r.Int63n(20)))
		}
	}
	switch r.Intn(4) {
	case 0:
		return expr.And(randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return expr.Or(randExpr(r, depth-1), randExpr(r, depth-1))
	case 2:
		return expr.Not(randExpr(r, depth-1))
	default:
		// Arithmetic comparison: col+col*k > c
		lhs := expr.Add(expr.Col(r.Intn(3), ""), expr.Mul(expr.Col(r.Intn(3), ""), expr.ConstInt(int64(r.Intn(5)))))
		return expr.GT(lhs, expr.ConstInt(r.Int63n(200)-100))
	}
}

func randRow(r *rand.Rand) types.Row {
	row := make(types.Row, 5)
	for i := 0; i < 3; i++ {
		if r.Intn(8) == 0 {
			row[i] = types.Null()
		} else {
			row[i] = types.NewInt(r.Int63n(100) - 50)
		}
	}
	row[3] = types.NewDate(int32(8000 + r.Intn(4000)))
	ss := []string{"abc", "axc", "bbb", "", "cab", "aaa"}
	row[4] = types.NewString(ss[r.Intn(len(ss))])
	return row
}

// Property: tree-walker ≡ IR VM ≡ JIT ≡ decode(encode) of the program,
// for random predicates and rows — the paper's §V-B2 correctness
// requirement ("filtering... on Page Stores produce the same result as
// that produced by the hypothetical non-NDP evaluation on the SQL node").
func TestThreeWayEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 1+r.Intn(3))
		p, err := Compile(e, 5)
		if err != nil {
			t.Logf("compile error: %v", err)
			return false
		}
		dec, err := Decode(p.Encode())
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		vm := NewVM(p)
		vmDec := NewVM(dec)
		jit := CompileProgram(dec)
		for i := 0; i < 20; i++ {
			row := randRow(r)
			want := e.Eval(row)
			for name, got := range map[string]types.Datum{
				"vm": vm.Run(row), "vmDec": vmDec.Run(row), "jit": jit.Run(row),
			} {
				if want.IsNull() != got.IsNull() || (!want.IsNull() && want.I != got.I) {
					t.Logf("seed %d %s: expr=%s row=%v want=%v got=%v", seed, name, e, row, want, got)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	e := expr.AndAll(
		expr.GE(expr.Col(0, "d"), expr.Const(types.DateFromYMD(1994, 1, 1))),
		expr.LT(expr.Col(0, "d"), expr.Const(types.DateFromYMD(1995, 1, 1))),
		expr.Between(expr.Col(1, "disc"), expr.Const(types.NewDecimal(5)), expr.Const(types.NewDecimal(7))),
		expr.LT(expr.Col(2, "qty"), expr.Const(types.NewFloat(24))),
		expr.In(expr.Col(3, "mode"), expr.ConstString("MAIL"), expr.ConstString("SHIP")),
	)
	p := mustCompile(t, e, 4)
	enc := p.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Instrs) != len(p.Instrs) || dec.NumRegs != p.NumRegs || dec.NumCols != p.NumCols {
		t.Fatal("round trip changed program shape")
	}
	for i := range p.Instrs {
		if p.Instrs[i] != dec.Instrs[i] {
			t.Fatalf("instr %d differs: %v vs %v", i, p.Instrs[i], dec.Instrs[i])
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	e := expr.GT(expr.Col(0, "a"), expr.ConstInt(1))
	p := mustCompile(t, e, 1)
	enc := p.Encode()
	if _, err := Decode(enc[:3]); err == nil {
		t.Error("truncated magic should fail")
	}
	for cut := 4; cut < len(enc); cut += 3 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
	bad := append([]byte{}, enc...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		p    Program
	}{
		{"empty", Program{NumRegs: 1}},
		{"no ret", Program{NumRegs: 1, NumCols: 1, Instrs: []Instr{{Op: OpLoadCol}}}},
		{"reg oob", Program{NumRegs: 1, NumCols: 1, Instrs: []Instr{{Op: OpLoadCol, A: 5}, {Op: OpRet}}}},
		{"col oob", Program{NumRegs: 2, NumCols: 1, Instrs: []Instr{{Op: OpLoadCol, A: 0, B: 3}, {Op: OpRet}}}},
		{"const oob", Program{NumRegs: 2, NumCols: 1, Instrs: []Instr{{Op: OpConst, A: 0, B: 9}, {Op: OpRet}}}},
		{"target oob", Program{NumRegs: 2, NumCols: 1, Instrs: []Instr{{Op: OpJmp, C: 99}, {Op: OpRet}}}},
		{"bad cmp", Program{NumRegs: 2, NumCols: 1, Instrs: []Instr{{Op: OpCmp, Sub: 99}, {Op: OpRet}}}},
		{"bad opcode", Program{NumRegs: 2, NumCols: 1, Instrs: []Instr{{Op: Opcode(200)}, {Op: OpRet}}}},
		{"in list oob", Program{NumRegs: 2, NumCols: 1, Instrs: []Instr{{Op: OpIn, C: 2}, {Op: OpRet}}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
}

func TestDisassemblyIsStable(t *testing.T) {
	e := expr.And(expr.GT(expr.Col(0, "a"), expr.ConstInt(1)), expr.GE(expr.Col(1, "b"), expr.ConstInt(2)))
	p := mustCompile(t, e, 2)
	asm := p.String()
	for _, want := range []string{"load col 0", "icmp sgt", "icmp sge", "ret"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func BenchmarkIRVsInterpreter(b *testing.B) {
	// The §V-B2 ablation: classical tree-walking evaluation vs the IR
	// interpreter vs JIT-compiled threaded code, on the TPC-H Q6-shaped
	// predicate.
	e := expr.AndAll(
		expr.GE(expr.Col(0, "l_shipdate"), expr.Const(types.DateFromYMD(1994, 1, 1))),
		expr.LT(expr.Col(0, "l_shipdate"), expr.Const(types.DateFromYMD(1995, 1, 1))),
		expr.Between(expr.Col(1, "l_discount"), expr.Const(types.NewDecimal(5)), expr.Const(types.NewDecimal(7))),
		expr.LT(expr.Col(2, "l_quantity"), expr.Const(types.NewDecimal(2400))),
	)
	p, err := Compile(e, 3)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]types.Row, 1024)
	r := rand.New(rand.NewSource(1))
	for i := range rows {
		rows[i] = types.Row{
			types.NewDate(int32(8400 + r.Intn(2000))),
			types.NewDecimal(int64(r.Intn(11))),
			types.NewDecimal(int64(100 * (1 + r.Intn(50)))),
		}
	}
	b.Run("TreeWalk", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			if e.EvalBool(rows[i%len(rows)]) {
				n++
			}
		}
	})
	b.Run("IRInterp", func(b *testing.B) {
		vm := NewVM(p)
		n := 0
		for i := 0; i < b.N; i++ {
			if vm.RunBool(rows[i%len(rows)]) {
				n++
			}
		}
	})
	b.Run("IRJit", func(b *testing.B) {
		jit := CompileProgram(p)
		n := 0
		for i := 0; i < b.N; i++ {
			if jit.RunBool(rows[i%len(rows)]) {
				n++
			}
		}
	})
}
